package lpmem

import (
	"fmt"

	"lpmem/internal/core"
	"lpmem/internal/energy"
	"lpmem/internal/hier"
	"lpmem/internal/isa"
	"lpmem/internal/stackmem"
	"lpmem/internal/stats"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"

	icache "lpmem/internal/cache"
)

// runE1 regenerates the address-clustering table (DATE'03 1B.1): for each
// application, memory energy monolithic vs optimally partitioned vs
// clustered-then-partitioned.
func runE1() (*Result, error) {
	apps, err := kernelTraces(1)
	if err != nil {
		return nil, err
	}
	comps, err := compositeApps(1)
	if err != nil {
		return nil, err
	}
	apps = append(apps, comps...)
	apps = append(apps, profileApps()...)

	opt := core.DefaultOptions()
	table := stats.NewTable("app", "monolithic", "partitioned", "clustered", "vs-part %", "vs-mono %")
	var savings, appSavings []float64
	for _, app := range apps {
		rep, err := core.Optimize(app.trace, app.cycles, opt)
		if err != nil {
			return nil, err
		}
		s := rep.SavingVsPartitioned()
		savings = append(savings, s)
		// The paper evaluates full embedded applications; the composite
		// apps and profile apps are our equivalents of that class, while
		// single kernels are a harder (already-compact) setting.
		if len(app.name) > 4 && (app.name[:4] == "app-" || app.name[:5] == "prof-") {
			appSavings = append(appSavings, s)
		}
		table.AddRow(app.name, float64(rep.MonolithicE), float64(rep.PartitionedE),
			float64(rep.ClusteredE), s, rep.SavingVsMonolithic())
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("clustering vs partitioning-alone: application-class avg %.1f%%, max %.1f%%; whole-suite avg %.1f%% (paper: avg 25%%, max 57%% over 5 applications)",
			stats.Mean(appSavings), stats.Max(savings), stats.Mean(savings)),
	}, nil
}

// runE8 regenerates the layer-assignment comparison (10F.1) on phased
// multi-kernel applications.
func runE8() (*Result, error) {
	combos := [][]string{
		{"fir", "dct", "adpcm", "histogram", "crc32"},
		{"matmul", "autocorr", "sort", "strsearch"},
		{"fir", "dct", "adpcm", "histogram", "crc32", "matmul", "autocorr", "sort"},
	}
	layers := hier.DefaultLayers(energy.DefaultMemoryModel())
	table := stats.NewTable("app", "off-chip", "static", "lifetime", "lifetime/static")
	var ratios []float64
	for i, parts := range combos {
		merged := trace.New(1 << 16)
		var regions []hier.Region
		for _, p := range parts {
			k, err := workloads.ByName(p)
			if err != nil {
				return nil, err
			}
			inst := k.Build(1)
			res, err := workloads.Run(inst)
			if err != nil {
				return nil, err
			}
			for _, a := range res.Trace.Accesses {
				merged.Append(a)
			}
			for _, arr := range inst.Arrays {
				regions = append(regions, hier.Region{Name: p + "." + arr.Name, Base: arr.Base, Size: arr.Size})
			}
		}
		infos := hier.Profile(merged, regions)
		off, static, lifetime, err := hier.Evaluate(infos, layers)
		if err != nil {
			return nil, err
		}
		ratio := float64(lifetime) / float64(static)
		ratios = append(ratios, ratio)
		table.AddRow(fmt.Sprintf("app%d(%d arrays)", i+1, len(infos)),
			float64(off), float64(static), float64(lifetime), ratio)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("lifetime-aware / static energy ratio: mean %.2f (paper: ~0.5)",
			stats.Mean(ratios)),
	}, nil
}

// runE9 regenerates the stack-memory table (10F.3) across the kernel
// suite.
func runE9() (*Result, error) {
	cfg := stackmem.Config{
		StackLo:   isa.DefaultStackTop - isa.DefaultStackSize,
		StackHi:   isa.DefaultStackTop + 16,
		StackSRAM: 2048,
		Cache:     icache.Config{Sets: 64, Ways: 4, LineSize: 32, WriteBack: true, WriteAllocate: true},
	}
	cm := energy.DefaultCacheModel()
	mm := energy.DefaultMemoryModel()
	apps, err := kernelTraces(1)
	if err != nil {
		return nil, err
	}
	// Whole applications mix call-heavy control code with flat kernels,
	// which is the workload class of the paper's SPEC/MediaBench numbers;
	// the flat kernels alone have (realistically) no stack traffic.
	comps, err := compositeApps(1)
	if err != nil {
		return nil, err
	}
	apps = append(apps, comps...)
	table := stats.NewTable("workload", "stack frac %", "cache saving %", "net saving %", "misses base", "misses split")
	var best float64
	for _, app := range apps {
		r, err := stackmem.Simulate(app.trace, cfg, cm, mm)
		if err != nil {
			return nil, err
		}
		if r.CacheSaving() > best && r.StackFraction < 0.99 {
			best = r.CacheSaving()
		}
		table.AddRow(app.name, 100*r.StackFraction, r.CacheSaving(), r.TotalSaving(),
			r.BaseMisses, r.SplitMisses)
	}
	return &Result{
		Table:   table,
		Summary: fmt.Sprintf("best mixed-workload L1 D-cache saving %.1f%% (paper: up to 32.5%%)", best),
	}, nil
}
