package lpmem

import (
	"fmt"
	"math/rand"

	"lpmem/internal/clocktree"
	"lpmem/internal/ssta"
	"lpmem/internal/stats"
)

// runE14 regenerates the clock-tree delay-uncertainty comparison (1F.4):
// weighted skew uncertainty of the classic geometric topology versus the
// criticality-driven topology, plus the reduction seen by the single most
// critical pair.
func runE14() (*Result, error) {
	table := stats.NewTable("benchmark", "geometric U", "critical U", "reduction %", "top-pair reduction %")
	var best, bestTop float64
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + int(seed)*4
		sinks := make([]clocktree.Sink, n)
		for i := range sinks {
			sinks[i] = clocktree.Sink{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		var pairs []clocktree.CritPair
		for len(pairs) < n/3 {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			pairs = append(pairs, clocktree.CritPair{A: a, B: b, Weight: 1 + 4*rng.Float64()})
		}
		geo, err := clocktree.BuildGeometric(sinks)
		if err != nil {
			return nil, err
		}
		crit, err := clocktree.BuildCritical(sinks, pairs)
		if err != nil {
			return nil, err
		}
		ug, err := geo.Uncertainty(pairs)
		if err != nil {
			return nil, err
		}
		uc, err := crit.Uncertainty(pairs)
		if err != nil {
			return nil, err
		}
		// The most critical single pair.
		top := pairs[0]
		for _, p := range pairs[1:] {
			if p.Weight > top.Weight {
				top = p
			}
		}
		tg, err := geo.UncommonLength(top.A, top.B)
		if err != nil {
			return nil, err
		}
		tc, err := crit.UncommonLength(top.A, top.B)
		if err != nil {
			return nil, err
		}
		red := stats.PercentSaving(ug, uc)
		topRed := stats.PercentSaving(tg, tc)
		if red > best {
			best = red
		}
		if topRed > bestTop {
			bestTop = topRed
		}
		table.AddRow(fmt.Sprintf("bench%d (%d sinks)", seed, n), ug, uc, red, topRed)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("weighted uncertainty reduced up to %.0f%%, most-critical pair up to %.0f%% (paper: up to 48%% overall, 90%% for critical paths)",
			best, bestTop),
	}, nil
}

// runE15 regenerates the statistical-timing-bounds validation (1F.3):
// Monte Carlo quantiles of benchmark circuits against the linear-time
// lower/upper bounds, with the bound spread as the error measure.
func runE15() (*Result, error) {
	table := stats.NewTable("circuit", "quantile", "lower", "MC exact", "upper", "spread %")
	var spreads []float64
	for _, sz := range []struct{ layers, width int }{{6, 4}, {10, 8}, {14, 10}} {
		c := ssta.RandomCircuit(int64(sz.layers), sz.layers, sz.width)
		grid := ssta.DefaultGridFor(c)
		lo, hi, err := ssta.Bounds(c, grid)
		if err != nil {
			return nil, err
		}
		mc, err := ssta.MonteCarlo(c, 6000, 1)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("L%dxW%d", sz.layers, sz.width)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := ssta.SampleQuantile(mc, q)
			l, h := lo.Quantile(q), hi.Quantile(q)
			spread := 100 * (h - l) / exact
			spreads = append(spreads, spread)
			table.AddRow(name, q, l, exact, h, spread)
		}
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("bounds bracket the Monte Carlo delay with mean spread %.1f%% of the exact value (paper: \"only a small error\", linear run time)",
			stats.Mean(spreads)),
	}, nil
}
