package lpmem

import (
	"fmt"

	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/reconfig"
	"lpmem/internal/stats"
	"lpmem/internal/waycache"
)

// runE4 regenerates the reconfigurable-array data-scheduling comparison
// (1B.4): energy breakdown of the naive execution vs the two-level data
// scheduler, for the multimedia pipeline and the six-context variant.
func runE4() (*Result, error) {
	arch := reconfig.DefaultArch(energy.DefaultMemoryModel())
	table := stats.NewTable("app", "variant", "data E", "transfer E", "config E", "total", "saving %")
	apps := []struct {
		name string
		app  *reconfig.App
	}{
		{"jpeg-pipe x16", reconfig.MultimediaApp(16)},
		{"jpeg-pipe x64", reconfig.MultimediaApp(64)},
		{"mpeg-wide x16", reconfig.WideApp(16)},
	}
	var last float64
	for _, a := range apps {
		base, err := reconfig.Baseline(a.app, arch)
		if err != nil {
			return nil, err
		}
		sched, _, err := reconfig.Schedule(a.app, arch)
		if err != nil {
			return nil, err
		}
		s := stats.PercentSaving(float64(base.Total()), float64(sched.Total()))
		last = s
		table.AddRow(a.name, "baseline", float64(base.Data), float64(base.Transfer), float64(base.Config), float64(base.Total()), 0.0)
		table.AddRow(a.name, "scheduled", float64(sched.Data), float64(sched.Transfer), float64(sched.Config), float64(sched.Total()), s)
	}
	return &Result{
		Table:   table,
		Summary: fmt.Sprintf("two-level scheduling cuts total energy by %.1f%% on the wide app (paper: qualitative reduction)", last),
	}, nil
}

// runE7 regenerates the way-determination table (10E.4): average cache
// power reduction at 8/16/32 ways over the kernel suite.
func runE7() (*Result, error) {
	apps, err := kernelTraces(1)
	if err != nil {
		return nil, err
	}
	cm := energy.DefaultCacheModel()
	table := stats.NewTable("ways", "avg coverage", "avg saving %", "min saving %", "max saving %")
	var rows []float64
	for _, ways := range []int{8, 16, 32} {
		cfg := cache.Config{Sets: 16, Ways: ways, LineSize: 32, WriteBack: true, WriteAllocate: true}
		var savings, coverages []float64
		for _, app := range apps {
			r, err := waycache.Simulate(app.trace, cfg, 16, cm)
			if err != nil {
				return nil, err
			}
			savings = append(savings, r.Saving())
			coverages = append(coverages, r.Coverage)
		}
		avg := stats.Mean(savings)
		rows = append(rows, avg)
		table.AddRow(ways, stats.Mean(coverages), avg, stats.Min(savings), stats.Max(savings))
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("avg cache power reduction %.0f/%.0f/%.0f%% at 8/16/32 ways (paper: 66/72/76%%)",
			rows[0], rows[1], rows[2]),
	}, nil
}
