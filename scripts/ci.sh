#!/usr/bin/env bash
# CI gate: formatting, vet, lpmemlint, build, and the full test suite under the race
# detector — the race run is the correctness backstop for the concurrent
# experiment runner (internal/runner) and the lpmemd HTTP service.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== lpmemlint"
go run ./cmd/lpmemlint ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "CI OK"
