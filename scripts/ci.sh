#!/usr/bin/env bash
# CI gate, split into individually callable stages so workflow failures
# are attributable to one step and local iteration can run just what it
# needs:
#
#   ./scripts/ci.sh                 # all = fmt vet lint build test chaos fuzz trace sweep serve
#   ./scripts/ci.sh fmt vet         # any subset, in the order given
#   ./scripts/ci.sh quick           # fmt vet lint build + tests WITHOUT -race
#   ./scripts/ci.sh bench           # lpmembench -check against committed baselines
#   ./scripts/ci.sh chaos           # seeded fault-injection sweep of the registry
#   ./scripts/ci.sh fuzz            # short smoke of every native fuzz target
#   ./scripts/ci.sh trace           # binary/text trace round-trip + replay gate
#   ./scripts/ci.sh sweep           # design-space sweep resume/determinism gate
#   ./scripts/ci.sh serve           # lpmemd + loadgen end-to-end smoke
#
# The race run is the correctness backstop for the concurrent experiment
# runner (internal/runner) and the lpmemd HTTP service; `quick` trades it
# (and the chaos/fuzz stages) away for local edit-compile-test speed.
# `bench` is the regression gate: it re-runs every experiment and compares
# tables against testdata/golden/ and costs against the committed BENCH
# file (see scripts/README.md). `chaos` runs `lpmem chaos` under a fixed
# seed so the robustness invariants (no deadlocks, no goroutine leaks,
# well-formed partial reports, deterministic fault placement) gate every
# change to the runner/service stack. `fuzz` runs each fuzz target for a
# few seconds on top of its checked-in corpus — a smoke, not a campaign.
# `trace` is the binary-format gate: every testdata/traces/*.txt file
# and a few kernel dumps are converted text -> binary -> text and must
# come back byte-identical, and both formats must replay through the
# cache to identical statistics under two geometries.
# `sweep` runs the banks, memtech and nuca design-space sweeps twice
# against one result store each and fails unless the second run re-executes zero
# points and prints a byte-identical Pareto frontier — the
# incremental-sweep contract.
# `serve` boots a real lpmemd (shared result store, admission control,
# access log), drives a short `lpmem loadgen` burst against it with
# -verify, and requires zero failed requests, shed accounting that
# matches the server's own counters, and a clean SIGINT shutdown.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=bin
mkdir -p "$BIN"

# Leave the tree as we found it: helper binaries and the bench report are
# build products, not sources. CI jobs that upload them as artifacts set
# KEEP_ARTIFACTS=1 to skip the cleanup.
cleanup() {
    if [ "${KEEP_ARTIFACTS:-0}" != "1" ]; then
        rm -rf "$BIN" bench-check.json lint-report.json
    fi
}
trap cleanup EXIT

stage_fmt() {
    echo "== gofmt"
    local unformatted
    unformatted=$(gofmt -l .)
    if [ -n "$unformatted" ]; then
        echo "gofmt needed on:" >&2
        echo "$unformatted" >&2
        exit 1
    fi
}

stage_vet() {
    echo "== go vet"
    go vet ./...
}

stage_lint() {
    echo "== lpmemlint (full suite, escape evidence)"
    # Build once; `go run` would relink the analyzer on every invocation.
    go build -o "$BIN/lpmemlint" ./cmd/lpmemlint
    # Full nine-analyzer run with compiler corroboration; keep the JSON
    # report as a CI artifact while the exit code still gates. `tee`
    # would mask the exit status without pipefail (set above).
    "$BIN/lpmemlint" -escape-evidence -json ./... | tee lint-report.json
}

stage_lint_quick() {
    echo "== lpmemlint (fast five)"
    go build -o "$BIN/lpmemlint" ./cmd/lpmemlint
    # The syntactic API-hygiene wave only: no escape-evidence compile,
    # no deep expression walking — the local edit-compile-test loop.
    "$BIN/lpmemlint" -enable determinism,errwrap,floatcompare,panicfree,registry ./...
}

stage_build() {
    echo "== go build"
    go build ./...
}

stage_test() {
    echo "== go test -race -vet=all"
    go test -race -vet=all ./...
}

stage_test_norace() {
    echo "== go test (no race; quick mode)"
    go test -vet=all ./...
}

stage_bench() {
    echo "== lpmembench -check"
    go build -o "$BIN/lpmembench" ./cmd/lpmembench
    # Keep the JSON report as a CI artifact; the exit code still gates.
    "$BIN/lpmembench" -check -json -v | tee bench-check.json
}

stage_chaos() {
    echo "== lpmem chaos (seeded fault-injection sweep)"
    go build -o "$BIN/lpmem" ./cmd/lpmem
    "$BIN/lpmem" chaos -seed 1 -plan all
    # A second seed targeted at the technology experiments, so the
    # memtech stack (gating machine, banked DRAM) sees its own fault
    # placements rather than only whatever seed 1 lands on it.
    "$BIN/lpmem" chaos -seed 23 -plan all E21 E22 E23
    # And one aimed at the CMP suite: the NUCA LLC replays multi-core
    # traces under perturbed energy models, so its conservation
    # invariants (per-core sums, occupancy, capacity ratio) get their
    # own fault placements.
    "$BIN/lpmem" chaos -seed 24 -plan all E24 E25 E26
}

stage_fuzz() {
    echo "== fuzz smoke"
    # One target per invocation: go test only allows a single -fuzz
    # pattern to actually fuzz at a time.
    go test -run='^$' -fuzz='^FuzzReadText$' -fuzztime=10s ./internal/trace/
    go test -run='^$' -fuzz='^FuzzReadBinary$' -fuzztime=10s ./internal/trace/
    go test -run='^$' -fuzz='^FuzzDifferentialRoundTrip$' -fuzztime=10s ./internal/compress/
    go test -run='^$' -fuzz='^FuzzDecompress$' -fuzztime=10s ./internal/compress/
}

stage_trace() {
    echo "== trace format gate (lossless interconversion + replay equivalence)"
    go build -o "$BIN/lpmem" ./cmd/lpmem
    local dir name txt
    dir=$(mktemp -d)
    # Gate inputs: every checked-in text trace, plus a few kernel dumps
    # so the binary path is also exercised on real generated traces.
    cp testdata/traces/*.txt "$dir/"
    for kernel in dct matmul hashlookup; do
        "$BIN/lpmem" trace "$kernel" >"$dir/kernel-$kernel.txt"
    done
    for txt in "$dir"/*.txt; do
        name=$(basename "$txt" .txt)
        # Canonical text form: comments/whitespace dropped, one access
        # per line. Round-trips are compared against this, not the raw
        # file, so hand-written traces may carry comments.
        "$BIN/lpmem" trace cat "$txt" >"$dir/$name.canon"
        # text -> binary -> text must be byte-identical to the canon.
        "$BIN/lpmem" trace convert -i "$txt" -o "$dir/$name.lpmt"
        "$BIN/lpmem" trace convert -i "$dir/$name.lpmt" -o "$dir/$name.rt"
        if ! cmp -s "$dir/$name.canon" "$dir/$name.rt"; then
            echo "trace $name: text->binary->text round-trip not byte-identical" >&2
            diff -u "$dir/$name.canon" "$dir/$name.rt" >&2 || true
            rm -rf "$dir"
            exit 1
        fi
        # Both formats must replay to identical cache statistics, under
        # the default geometry and a deliberately different one.
        for flags in "" "-sets 16 -ways 2 -line 16 -write-through"; do
            # shellcheck disable=SC2086
            "$BIN/lpmem" trace replay $flags "$txt" >"$dir/$name.stats.txt"
            # shellcheck disable=SC2086
            "$BIN/lpmem" trace replay $flags "$dir/$name.lpmt" >"$dir/$name.stats.bin"
            if ! cmp -s "$dir/$name.stats.txt" "$dir/$name.stats.bin"; then
                echo "trace $name: replay stats diverged between formats (flags: ${flags:-default})" >&2
                diff -u "$dir/$name.stats.txt" "$dir/$name.stats.bin" >&2 || true
                rm -rf "$dir"
                exit 1
            fi
        done
        echo "  $name: round-trip identical, replay identical"
    done
    rm -rf "$dir"
}

stage_serve() {
    echo "== serve smoke (lpmemd + loadgen + graceful shutdown)"
    go build -o "$BIN/lpmemd" ./cmd/lpmemd
    go build -o "$BIN/lpmem" ./cmd/lpmem
    local dir port pid
    dir=$(mktemp -d)
    port="${LPMEMD_SMOKE_PORT:-18903}"
    "$BIN/lpmemd" -addr "127.0.0.1:$port" \
        -store "$dir/results.jsonl" \
        -admit 4 -admit-queue 8 \
        -access-log "$dir/access.log" \
        >"$dir/lpmemd.log" 2>&1 &
    pid=$!
    # A short burst over every request kind. loadgen exits non-zero on
    # any failed request or on shed accounting that disagrees with the
    # server's admission counters (-verify), so the stage inherits the
    # ISSUE's "zero failed, consistent sheds" gate from its exit code.
    if ! "$BIN/lpmem" loadgen -addr "http://127.0.0.1:$port" \
        -clients 4 -requests 300 -duration 30s \
        -mix one=8,batch=1,list=1 -ids E17,E22,E4 \
        -probe 10s -verify; then
        echo "serve smoke: loadgen failed" >&2
        kill "$pid" 2>/dev/null || true
        cat "$dir/lpmemd.log" >&2
        rm -rf "$dir"
        exit 1
    fi
    # Graceful shutdown: SIGINT must drain and exit 0.
    kill -INT "$pid"
    if ! wait "$pid"; then
        echo "serve smoke: lpmemd did not exit cleanly on SIGINT" >&2
        cat "$dir/lpmemd.log" >&2
        rm -rf "$dir"
        exit 1
    fi
    if ! grep -q "lpmemd: done" "$dir/lpmemd.log"; then
        echo "serve smoke: shutdown summary missing from server log" >&2
        cat "$dir/lpmemd.log" >&2
        rm -rf "$dir"
        exit 1
    fi
    # The loadgen-minted request IDs must land in the access log: the
    # request-ID middleware and structured logging are part of the gate.
    if ! grep -q '"request_id":"lg-' "$dir/access.log"; then
        echo "serve smoke: loadgen request IDs missing from access log" >&2
        rm -rf "$dir"
        exit 1
    fi
    # The shared store must have real content for the warm-replica path.
    if [ ! -s "$dir/results.jsonl" ]; then
        echo "serve smoke: result store is empty after the burst" >&2
        rm -rf "$dir"
        exit 1
    fi
    rm -rf "$dir"
}

stage_sweep() {
    echo "== lpmem sweep (resume determinism gate)"
    go build -o "$BIN/lpmem" ./cmd/lpmem
    local dir space
    dir=$(mktemp -d)
    # Cold run populates each store; the resumed run must re-execute
    # nothing and reproduce the frontier byte-for-byte.
    for space in banks memtech nuca; do
        "$BIN/lpmem" sweep -space "$space" -resume "$dir/$space.jsonl" -pareto \
            >"$dir/front1.txt" 2>"$dir/sum1.txt"
        "$BIN/lpmem" sweep -space "$space" -resume "$dir/$space.jsonl" -pareto \
            >"$dir/front2.txt" 2>"$dir/sum2.txt"
        cat "$dir/sum1.txt" "$dir/sum2.txt"
        if ! grep -q "evaluated 0," "$dir/sum2.txt"; then
            echo "sweep $space resume re-executed points" >&2
            rm -rf "$dir"
            exit 1
        fi
        if ! diff -u "$dir/front1.txt" "$dir/front2.txt"; then
            echo "sweep $space frontier not byte-identical across resume" >&2
            rm -rf "$dir"
            exit 1
        fi
    done
    rm -rf "$dir"
}

run_stage() {
    case "$1" in
        fmt)   stage_fmt ;;
        vet)   stage_vet ;;
        lint)  stage_lint ;;
        build) stage_build ;;
        test)  stage_test ;;
        bench) stage_bench ;;
        chaos) stage_chaos ;;
        fuzz)  stage_fuzz ;;
        trace) stage_trace ;;
        sweep) stage_sweep ;;
        serve) stage_serve ;;
        quick) stage_fmt; stage_vet; stage_lint_quick; stage_build; stage_test_norace ;;
        all)   stage_fmt; stage_vet; stage_lint; stage_build; stage_test; stage_chaos; stage_fuzz; stage_trace; stage_sweep; stage_serve ;;
        *)
            echo "usage: $0 [fmt|vet|lint|build|test|bench|chaos|fuzz|trace|sweep|serve|quick|all] ..." >&2
            exit 2
            ;;
    esac
}

if [ "$#" -eq 0 ]; then
    run_stage all
else
    for stage in "$@"; do
        run_stage "$stage"
    done
fi

echo "CI OK"
