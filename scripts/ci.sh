#!/usr/bin/env bash
# CI gate, split into individually callable stages so workflow failures
# are attributable to one step and local iteration can run just what it
# needs:
#
#   ./scripts/ci.sh                 # all = fmt vet lint build test
#   ./scripts/ci.sh fmt vet         # any subset, in the order given
#   ./scripts/ci.sh quick           # fmt vet lint build + tests WITHOUT -race
#   ./scripts/ci.sh bench           # lpmembench -check against committed baselines
#
# The race run is the correctness backstop for the concurrent experiment
# runner (internal/runner) and the lpmemd HTTP service; `quick` trades it
# away for local edit-compile-test speed. `bench` is the regression gate:
# it re-runs every experiment and compares tables against testdata/golden/
# and costs against the committed BENCH file (see scripts/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=bin
mkdir -p "$BIN"

stage_fmt() {
    echo "== gofmt"
    local unformatted
    unformatted=$(gofmt -l .)
    if [ -n "$unformatted" ]; then
        echo "gofmt needed on:" >&2
        echo "$unformatted" >&2
        exit 1
    fi
}

stage_vet() {
    echo "== go vet"
    go vet ./...
}

stage_lint() {
    echo "== lpmemlint"
    # Build once; `go run` would relink the analyzer on every invocation.
    go build -o "$BIN/lpmemlint" ./cmd/lpmemlint
    "$BIN/lpmemlint" ./...
}

stage_build() {
    echo "== go build"
    go build ./...
}

stage_test() {
    echo "== go test -race"
    go test -race ./...
}

stage_test_norace() {
    echo "== go test (no race; quick mode)"
    go test ./...
}

stage_bench() {
    echo "== lpmembench -check"
    go build -o "$BIN/lpmembench" ./cmd/lpmembench
    # Keep the JSON report as a CI artifact; the exit code still gates.
    "$BIN/lpmembench" -check -json -v | tee bench-check.json
}

run_stage() {
    case "$1" in
        fmt)   stage_fmt ;;
        vet)   stage_vet ;;
        lint)  stage_lint ;;
        build) stage_build ;;
        test)  stage_test ;;
        bench) stage_bench ;;
        quick) stage_fmt; stage_vet; stage_lint; stage_build; stage_test_norace ;;
        all)   stage_fmt; stage_vet; stage_lint; stage_build; stage_test ;;
        *)
            echo "usage: $0 [fmt|vet|lint|build|test|bench|quick|all] ..." >&2
            exit 2
            ;;
    esac
}

if [ "$#" -eq 0 ]; then
    run_stage all
else
    for stage in "$@"; do
        run_stage "$stage"
    done
fi

echo "CI OK"
