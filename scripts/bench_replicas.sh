#!/usr/bin/env bash
# Multi-replica serving bench: measures how lpmemd throughput scales when
# replicas share one content-addressed result store, and that admission
# control keeps admitted-request latency sane under overload.
#
#   ./scripts/bench_replicas.sh            # run, print the report
#   OUT=BENCH_PR10.json ./scripts/bench_replicas.sh   # also write JSON
#
# Method. Serving a warm result is I/O- and store-bound, not CPU-bound,
# so replica scaling is measured in a concurrency-bound regime:
# -service-delay D adds a context-cancellable synthetic delay to every
# admitted request (a stand-in for downstream service time — device
# models, storage, network hops) and -admit C bounds concurrency, which
# pins one replica's warm-path throughput at ~C/D regardless of host
# core count. Two replicas sharing the store should then serve ~2x. The
# "cpu_bound" contrast runs the same fleet with no delay and no
# admission bound: on a small host both replicas contend for the same
# cores, so throughput stays roughly flat — which is exactly the
# behaviour the shared-store + admission design exists to move past.
#
# The overload leg drives one bounded replica far past its capacity and
# checks two things: requests beyond capacity+queue are shed (never
# failed), and the p99 of *admitted* requests stays within 2x the
# unloaded baseline — i.e. shedding protects the latency of the work
# the replica does accept.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=bin
mkdir -p "$BIN"
go build -o "$BIN/lpmemd" ./cmd/lpmemd
go build -o "$BIN/lpmem" ./cmd/lpmem

DIR=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

PORT1="${LPMEMD_BENCH_PORT:-18910}"
PORT2=$((PORT1 + 1))
IDS="E17,E22,E4"
DELAY=20ms
ADMIT=4
DUR="${BENCH_DURATION:-5s}"

start_replica() { # port, extra flags...
    local port=$1
    shift
    "$BIN/lpmemd" -addr "127.0.0.1:$port" "$@" >"$DIR/lpmemd-$port.log" 2>&1 &
    PIDS+=($!)
}

stop_replicas() {
    for pid in "${PIDS[@]:-}"; do
        kill -INT "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    PIDS=()
}

# rps/p99/shed/failed extractors for the loadgen summary line.
summary() { grep '^loadgen: total=' "$1" | tail -1; }
field() { summary "$1" | sed -n "s/.*$2=\([0-9.]*\).*/\1/p"; }

loadgen() { # outfile, args...
    local out=$1
    shift
    "$BIN/lpmem" loadgen -probe 10s -ids "$IDS" -mix one=1 "$@" | tee "$out"
}

echo "== warm the shared store"
start_replica "$PORT1" -store "$DIR/results.jsonl"
loadgen "$DIR/warmup.txt" -addr "http://127.0.0.1:$PORT1" -clients 2 -requests 50 -duration 30s >/dev/null
stop_replicas

echo "== concurrency-bound scaling: 1 replica (admit=$ADMIT, delay=$DELAY)"
start_replica "$PORT1" -store "$DIR/results.jsonl" -admit "$ADMIT" -admit-queue 64 -service-delay "$DELAY"
loadgen "$DIR/one.txt" -addr "http://127.0.0.1:$PORT1" -clients 8 -duration "$DUR"
stop_replicas

echo "== concurrency-bound scaling: 2 replicas, shared store"
start_replica "$PORT1" -store "$DIR/results.jsonl" -admit "$ADMIT" -admit-queue 64 -service-delay "$DELAY"
start_replica "$PORT2" -store "$DIR/results.jsonl" -admit "$ADMIT" -admit-queue 64 -service-delay "$DELAY"
loadgen "$DIR/two.txt" -addr "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2" -clients 16 -duration "$DUR"
stop_replicas

echo "== cpu-bound contrast: 1 replica, no delay, no admission bound"
start_replica "$PORT1" -store "$DIR/results.jsonl"
loadgen "$DIR/cpu1.txt" -addr "http://127.0.0.1:$PORT1" -clients 8 -duration "$DUR"
stop_replicas

echo "== cpu-bound contrast: 2 replicas, no delay, no admission bound"
start_replica "$PORT1" -store "$DIR/results.jsonl"
start_replica "$PORT2" -store "$DIR/results.jsonl"
loadgen "$DIR/cpu2.txt" -addr "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2" -clients 16 -duration "$DUR"
stop_replicas

echo "== overload: unloaded baseline (clients <= capacity)"
start_replica "$PORT1" -store "$DIR/results.jsonl" -admit "$ADMIT" -admit-queue 2 -service-delay "$DELAY"
loadgen "$DIR/base.txt" -addr "http://127.0.0.1:$PORT1" -clients 2 -duration "$DUR"

echo "== overload: 16 closed-loop clients against capacity $ADMIT + queue 2"
loadgen "$DIR/over.txt" -addr "http://127.0.0.1:$PORT1" -clients 16 -duration "$DUR" -verify
stop_replicas

R1=$(field "$DIR/one.txt" rps)
R2=$(field "$DIR/two.txt" rps)
C1=$(field "$DIR/cpu1.txt" rps)
C2=$(field "$DIR/cpu2.txt" rps)
BP99=$(summary "$DIR/base.txt" | sed -n 's/.*p99=\([0-9.]*\)ms.*/\1/p')
OP99=$(summary "$DIR/over.txt" | sed -n 's/.*p99=\([0-9.]*\)ms.*/\1/p')
OSHED=$(field "$DIR/over.txt" shed)
OFAIL=$(field "$DIR/over.txt" failed)

SPEEDUP=$(awk -v a="$R1" -v b="$R2" 'BEGIN { printf "%.2f", b / a }')
CPUSPEEDUP=$(awk -v a="$C1" -v b="$C2" 'BEGIN { printf "%.2f", b / a }')
P99RATIO=$(awk -v a="$BP99" -v b="$OP99" 'BEGIN { printf "%.2f", b / a }')

echo
echo "scaling (admit=$ADMIT, delay=$DELAY):  1 replica $R1 rps, 2 replicas $R2 rps  -> ${SPEEDUP}x"
echo "cpu-bound contrast:                    1 replica $C1 rps, 2 replicas $C2 rps  -> ${CPUSPEEDUP}x"
echo "overload: admitted p99 ${OP99}ms vs unloaded ${BP99}ms -> ${P99RATIO}x (shed=$OSHED failed=$OFAIL)"

FAIL=0
awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.7) }' || {
    echo "FAIL: 2-replica speedup ${SPEEDUP}x < 1.7x" >&2
    FAIL=1
}
awk -v r="$P99RATIO" 'BEGIN { exit !(r <= 2.0) }' || {
    echo "FAIL: overloaded admitted p99 is ${P99RATIO}x the unloaded baseline (> 2x)" >&2
    FAIL=1
}
if [ "$OFAIL" != "0" ]; then
    echo "FAIL: overload run had $OFAIL failed requests (sheds must be 429s, not errors)" >&2
    FAIL=1
fi

if [ -n "${OUT:-}" ]; then
    cat >"$OUT" <<EOF
{
  "schema": "lpmem-replica-bench/1",
  "go_version": "$(go env GOVERSION)",
  "host_cpus": $(getconf _NPROCESSORS_ONLN),
  "config": {
    "ids": "$IDS",
    "service_delay": "$DELAY",
    "admit": $ADMIT,
    "duration": "$DUR"
  },
  "scaling": {
    "note": "concurrency-bound regime: -service-delay models downstream service time, so warm-path throughput is admission-bound (~admit/delay per replica) rather than bound by this host's core count",
    "one_replica_rps": $R1,
    "two_replica_rps": $R2,
    "speedup": $SPEEDUP,
    "cpu_bound_one_replica_rps": $C1,
    "cpu_bound_two_replica_rps": $C2,
    "cpu_bound_speedup": $CPUSPEEDUP
  },
  "overload": {
    "unloaded_p99_ms": $BP99,
    "overloaded_admitted_p99_ms": $OP99,
    "p99_ratio": $P99RATIO,
    "shed": $OSHED,
    "failed": $OFAIL
  }
}
EOF
    echo "wrote $OUT"
fi

exit "$FAIL"
