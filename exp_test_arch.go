package lpmem

import (
	"fmt"

	"lpmem/internal/pipecache"
	"lpmem/internal/stats"
	"lpmem/internal/testcomp"
)

// runE17 regenerates the pipelined-cache exploration (8E.1): best
// conventional vs best pipelined banked organization per capacity, with
// the MOPS figure of merit.
func runE17() (*Result, error) {
	tech := pipecache.DefaultTech()
	table := stats.NewTable("capacity", "variant", "banks", "cycle ns", "area", "energy", "MOPS", "gain %")
	var gains []float64
	for _, size := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		dFlat, flat, err := pipecache.Best(size, false, tech)
		if err != nil {
			return nil, err
		}
		dPipe, piped, err := pipecache.Best(size, true, tech)
		if err != nil {
			return nil, err
		}
		gain := stats.PercentSaving(flat.MOPS, piped.MOPS) * -1 // improvement
		gains = append(gains, gain)
		name := fmt.Sprintf("%dKiB", size>>10)
		table.AddRow(name, "conventional", dFlat.Banks, flat.Cycle, flat.Area, flat.Energy, flat.MOPS, 0.0)
		table.AddRow(name, "pipelined", dPipe.Banks, piped.Cycle, piped.Area, piped.Energy, piped.MOPS, gain)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("pipelined banked caches improve MOPS by %.0f%% on average (paper: 40-50%%)",
			stats.Mean(gains)),
	}, nil
}

// runE18 regenerates the scan test-data compression results (2C.1 +
// 2C.3): LZW compression ratios under don't-care-aware fill policies, and
// test-time reduction from vector stitching.
func runE18() (*Result, error) {
	table := stats.NewTable("benchmark", "care %", "LZW 0-fill", "LZW repeat", "LZW random", "stitch saving %")
	var bestRatios, stitchSavings []float64
	for i, cfg := range []struct {
		n, length int
		care      float64
	}{
		{100, 512, 0.02},
		{100, 512, 0.05},
		{150, 1024, 0.10},
	} {
		ps := testcomp.Generate(int64(i+1), cfg.n, cfg.length, cfg.care)
		ratios := map[testcomp.FillPolicy]float64{}
		for _, pol := range []testcomp.FillPolicy{testcomp.FillZero, testcomp.FillRepeat, testcomp.FillRandom} {
			stream := testcomp.Fill(ps, pol, 7)
			ratios[pol] = testcomp.Ratio(len(stream), testcomp.LZWEncode(stream))
		}
		st := testcomp.Stitch(ps, testcomp.Responses(ps, 7))
		best := ratios[testcomp.FillZero]
		if ratios[testcomp.FillRepeat] > best {
			best = ratios[testcomp.FillRepeat]
		}
		bestRatios = append(bestRatios, best)
		stitchSavings = append(stitchSavings, 100*st.Saving())
		table.AddRow(fmt.Sprintf("scan%d (%dx%d)", i+1, cfg.n, cfg.length),
			100*cfg.care, ratios[testcomp.FillZero], ratios[testcomp.FillRepeat],
			ratios[testcomp.FillRandom], 100*st.Saving())
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("don't-care-aware LZW reaches %.1fx mean compression (paper 2C.3: high ratios from don't-cares); stitching cuts test time by %.0f%% mean (paper 2C.1: significant reductions, no hardware)",
			stats.Mean(bestRatios), stats.Mean(stitchSavings)),
	}, nil
}
