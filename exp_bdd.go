package lpmem

import (
	"fmt"

	"lpmem/internal/bdd"
	"lpmem/internal/stats"
)

// runE16 regenerates the exact-BDD-minimization comparison (8D.2): for a
// set of order-sensitive benchmark functions, the optimal size, the
// sifting-heuristic size, and the branch-and-bound effort with a single
// lower bound versus the combined bounds.
func runE16() (*Result, error) {
	type fn struct {
		name  string
		build func() (*bdd.TruthTable, error)
	}
	var funcs []struct {
		name string
		tt   *bdd.TruthTable
	}
	for _, f := range []fn{
		{"mux2", func() (*bdd.TruthTable, error) { return bdd.Multiplexer(2) }},
		{"add4", func() (*bdd.TruthTable, error) { return bdd.AdderCarry(4) }},
		{"hwb8", func() (*bdd.TruthTable, error) { return bdd.HiddenWeightedBit(8) }},
		{"parity8", func() (*bdd.TruthTable, error) { return bdd.Parity(8) }},
	} {
		tt, err := f.build()
		if err != nil {
			return nil, err
		}
		funcs = append(funcs, struct {
			name string
			tt   *bdd.TruthTable
		}{f.name, tt})
	}

	table := stats.NewTable("function", "identity", "sifted", "optimum", "expanded 1-bound", "expanded 3-bounds", "effort saved %")
	var savings []float64
	for _, f := range funcs {
		ident, err := f.tt.SizeForOrder(bdd.IdentityOrder(f.tt.N))
		if err != nil {
			return nil, err
		}
		_, sifted, err := bdd.Sift(f.tt, bdd.IdentityOrder(f.tt.N))
		if err != nil {
			return nil, err
		}
		one, err := bdd.Minimize(f.tt, bdd.OneBound())
		if err != nil {
			return nil, err
		}
		all, err := bdd.Minimize(f.tt, bdd.AllBounds())
		if err != nil {
			return nil, err
		}
		if one.Size != all.Size {
			return nil, fmt.Errorf("E16: bound sets disagree on %s", f.name)
		}
		s := stats.PercentSaving(float64(one.Expanded), float64(all.Expanded))
		savings = append(savings, s)
		table.AddRow(f.name, ident, sifted, all.Size, one.Expanded, all.Expanded, s)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("combined lower bounds cut branch-and-bound expansions by %.0f%% on average without losing optimality (paper: avoids unnecessary computations)",
			stats.Mean(savings)),
	}, nil
}
