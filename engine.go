package lpmem

import (
	"context"
	"time"

	"lpmem/internal/runner"
)

// RegistryVersion participates in every runner cache key, coupling cached
// tables to the code that produced them. Bump it whenever an experiment
// harness or one of its substrates changes behaviour, so a long-lived
// lpmemd process can never serve stale results after a redeploy.
const RegistryVersion = "2026-08-07.1"

// Engine is the experiment-typed instantiation of the generic concurrent
// runner: bounded worker pool, per-experiment timeouts and cancellation,
// panic containment, content-keyed result cache, counter snapshot.
type Engine = runner.Engine[*Result]

// Metrics is the engine's counter snapshot (see runner.Metrics).
type Metrics = runner.Metrics

// NewEngine creates an experiment engine. Zero-valued options mean
// GOMAXPROCS workers, no per-experiment timeout, caching enabled.
func NewEngine(opts runner.Options) *Engine {
	return runner.New[*Result](opts)
}

// CacheKey is the engine cache key for one experiment.
func CacheKey(id string) string { return id + "@" + RegistryVersion }

// Jobs adapts registry experiments to runner jobs. The experiments
// themselves predate context plumbing, so cancellation is honoured at
// job boundaries (and by the engine's deadline enforcement) rather than
// inside a harness.
func Jobs(exps []Experiment) []runner.Job[*Result] {
	jobs := make([]runner.Job[*Result], len(exps))
	for i, e := range exps {
		e := e
		jobs[i] = runner.Job[*Result]{
			ID:  e.ID,
			Key: CacheKey(e.ID),
			Run: func(ctx context.Context) (*Result, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return e.Run()
			},
		}
	}
	return jobs
}

// Report pairs a registry entry with its run outcome.
type Report struct {
	Experiment Experiment
	Outcome    runner.Outcome[*Result]
}

// RunBatch runs the experiments through the engine and returns one
// report per experiment, in input order.
func RunBatch(ctx context.Context, eng *Engine, exps []Experiment) []Report {
	outs := eng.Run(ctx, Jobs(exps))
	reports := make([]Report, len(exps))
	for i := range exps {
		reports[i] = Report{Experiment: exps[i], Outcome: outs[i]}
	}
	return reports
}

// ResultJSON is the structured envelope for one experiment run, shared
// by `lpmem run -json` and lpmemd's HTTP responses.
type ResultJSON struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	PaperClaim string     `json:"paper_claim"`
	Summary    string     `json:"summary,omitempty"`
	Header     []string   `json:"header,omitempty"`
	Rows       [][]string `json:"rows,omitempty"`
	DurationMS float64    `json:"duration_ms"`
	Cached     bool       `json:"cached"`
	Error      string     `json:"error,omitempty"`
}

// JSON flattens a report into its wire envelope.
func (r Report) JSON() ResultJSON {
	j := ResultJSON{
		ID:         r.Experiment.ID,
		Title:      r.Experiment.Title,
		PaperClaim: r.Experiment.PaperClaim,
		DurationMS: float64(r.Outcome.Duration) / float64(time.Millisecond),
		Cached:     r.Outcome.Cached,
	}
	if r.Outcome.Err != nil {
		j.Error = r.Outcome.Err.Error()
		return j
	}
	if res := r.Outcome.Value; res != nil {
		j.Summary = res.Summary
		if res.Table != nil {
			j.Header = res.Table.Header()
			j.Rows = res.Table.ToRows()
		}
	}
	return j
}
