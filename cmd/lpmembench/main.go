// Command lpmembench is the regression gate for the experiment registry:
// it pins every experiment's regenerated paper table to a committed
// golden snapshot and its runtime cost to a committed perf baseline.
//
// Usage:
//
//	lpmembench -check                 # compare live tree against baselines
//	lpmembench -record                # refresh goldens + perf baseline
//	lpmembench -check -json           # machine-readable drift report
//	lpmembench -check -filter E1,E11  # restrict to a subset
//	lpmembench -record -iterations 5  # more damping for a cleaner record
//
// -check measures every (selected) experiment through the real runner
// engine with caching disabled, diffs tables and summaries exactly
// against testdata/golden/, diffs wall time and allocations against the
// committed BENCH file within a calibrated ±% tolerance, and exits 1 on
// any drift. -record rewrites both artifact families; commit the result
// when the change is deliberate. See scripts/README.md for the workflow.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"runtime"
	"strings"

	"lpmem"
	"lpmem/internal/regress"
)

// defaultBaseline is the committed perf file this PR records into;
// future PRs re-record into a BENCH_PR<n>.json of their own and update
// this default.
const defaultBaseline = "BENCH_PR9.json"

const defaultGoldenDir = "testdata/golden"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	record, check bool
	jsonOut       bool
	verbose       bool
	filter        string
	iterations    int
	baseline      string
	goldenDir     string
	tolerance     float64
}

// report is the -json envelope of a check run.
type report struct {
	OK           bool                  `json:"ok"`
	Mode         string                `json:"mode"`
	Iterations   int                   `json:"iterations"`
	TolerancePct float64               `json:"tolerance_pct"`
	Scale        float64               `json:"scale,omitempty"`
	Drifts       []regress.Drift       `json:"drifts"`
	Measurements []regress.Measurement `json:"measurements"`
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	var cfg config
	fs := flag.NewFlagSet("lpmembench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&cfg.record, "record", false, "re-measure and rewrite the goldens and the perf baseline")
	fs.BoolVar(&cfg.check, "check", false, "measure the live tree and compare against committed baselines")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit a machine-readable JSON report")
	fs.BoolVar(&cfg.verbose, "v", false, "log per-experiment progress to stderr")
	fs.StringVar(&cfg.filter, "filter", "", "comma-separated experiment IDs (default: full registry)")
	fs.IntVar(&cfg.iterations, "iterations", 3, "timing iterations per experiment; min-of-N damps noise")
	fs.StringVar(&cfg.baseline, "baseline", defaultBaseline, "perf baseline JSON path")
	fs.StringVar(&cfg.goldenDir, "golden", defaultGoldenDir, "golden snapshot directory")
	fs.Float64Var(&cfg.tolerance, "tolerance", regress.DefaultTolerances().Pct, "allowed wall/alloc growth in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.record == cfg.check {
		fmt.Fprintln(stderr, "lpmembench: exactly one of -record or -check is required")
		fs.Usage()
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "lpmembench: unexpected arguments %v\n", fs.Args())
		return 2
	}

	exps, err := selectExperiments(cfg.filter)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	progress := func(string) {}
	if cfg.verbose {
		progress = func(id string) { fmt.Fprintf(stderr, "lpmembench: measuring %s\n", id) }
	}

	if cfg.record {
		return doRecord(cfg, exps, progress, stdout, stderr)
	}
	return doCheck(cfg, exps, progress, stdout, stderr)
}

// selectExperiments resolves -filter against the registry.
func selectExperiments(filter string) ([]lpmem.Experiment, error) {
	if filter == "" {
		return lpmem.Experiments(), nil
	}
	var exps []lpmem.Experiment
	for _, id := range strings.Split(filter, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		exp, err := lpmem.ByID(id)
		if err != nil {
			return nil, err
		}
		exps = append(exps, exp)
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("lpmembench: -filter %q selects no experiments", filter)
	}
	return exps, nil
}

// doRecord refreshes the golden snapshots and the perf baseline for the
// selected experiments, preserving non-selected entries and the
// optimization log of an existing baseline file.
func doRecord(cfg config, exps []lpmem.Experiment, progress func(string), stdout, stderr io.Writer) int {
	meas, err := regress.MeasureAll(exps, cfg.iterations, progress)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	base := &regress.Baseline{}
	if prev, err := regress.ReadBaseline(cfg.baseline); err == nil {
		base = prev
	} else if !errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(stderr, "lpmembench: ignoring existing baseline: %v\n", err)
	}
	base.GoVersion = runtime.Version()
	base.Iterations = cfg.iterations
	base.TolerancePct = cfg.tolerance
	base.CalibrationNS = regress.Calibrate(cfg.iterations)
	for _, m := range meas {
		if err := regress.WriteGolden(cfg.goldenDir, m.Snapshot); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		base.Upsert(regress.ExperimentBaseline{
			ID: m.ID, WallNS: m.WallNS, Allocs: m.Allocs, Bytes: m.Bytes,
			Headline: m.Snapshot.Summary,
		})
	}
	if err := regress.WriteBaseline(cfg.baseline, base); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if cfg.jsonOut {
		rep := report{OK: true, Mode: "record", Iterations: cfg.iterations,
			TolerancePct: cfg.tolerance, Drifts: []regress.Drift{}, Measurements: meas}
		return emitJSON(stdout, stderr, rep, 0)
	}
	fmt.Fprintf(stdout, "recorded %d experiments to %s (goldens in %s, calibration %.1fms)\n",
		len(meas), cfg.baseline, cfg.goldenDir, float64(base.CalibrationNS)/1e6)
	for _, m := range meas {
		fmt.Fprintf(stdout, "  %-4s %8.1fms %9d allocs  %s\n",
			m.ID, float64(m.WallNS)/1e6, m.Allocs, m.Snapshot.Summary)
	}
	return 0
}

// doCheck measures the live tree and diffs it against the committed
// goldens and perf baseline, exiting 1 on any drift.
func doCheck(cfg config, exps []lpmem.Experiment, progress func(string), stdout, stderr io.Writer) int {
	var drifts []regress.Drift
	base, err := regress.ReadBaseline(cfg.baseline)
	if err != nil {
		drifts = append(drifts, regress.Drift{Kind: "error", Detail: err.Error()})
	}

	var meas []regress.Measurement
	if len(drifts) == 0 {
		meas, err = regress.MeasureAll(exps, cfg.iterations, progress)
		if err != nil {
			drifts = append(drifts, regress.Drift{Kind: "error", Detail: err.Error()})
		}
	}

	var scale float64
	if len(drifts) == 0 {
		scale = regress.Scale(base.CalibrationNS, regress.Calibrate(cfg.iterations))
		tol := regress.DefaultTolerances()
		tol.Pct = cfg.tolerance
		selected := make(map[string]bool, len(exps))
		for _, e := range exps {
			selected[e.ID] = true
		}
		for _, m := range meas {
			golden, err := regress.ReadGolden(cfg.goldenDir, m.ID)
			if err != nil {
				drifts = append(drifts, regress.Drift{ID: m.ID, Kind: "missing-golden", Detail: err.Error()})
			} else {
				drifts = append(drifts, regress.CompareSnapshot(golden, m.Snapshot)...)
			}
			eb, ok := base.ByID(m.ID)
			if !ok {
				drifts = append(drifts, regress.Drift{ID: m.ID, Kind: "missing-baseline",
					Detail: fmt.Sprintf("no perf record in %s; re-record", cfg.baseline)})
				continue
			}
			drifts = append(drifts, regress.CompareCost(eb, m, tol, scale)...)
		}
		// A full-registry check also flags stale artifacts: goldens or
		// baseline records for experiments that no longer exist.
		if cfg.filter == "" {
			if ids, err := regress.GoldenIDs(cfg.goldenDir); err == nil {
				for _, id := range ids {
					if !selected[id] {
						drifts = append(drifts, regress.Drift{ID: id, Kind: "extra-golden",
							Detail: "golden file has no registry experiment; delete or re-record"})
					}
				}
			}
			for _, eb := range base.Experiments {
				if !selected[eb.ID] {
					drifts = append(drifts, regress.Drift{ID: eb.ID, Kind: "extra-baseline",
						Detail: "baseline record has no registry experiment; re-record"})
				}
			}
		}
	}

	ok := len(drifts) == 0
	if cfg.jsonOut {
		rep := report{OK: ok, Mode: "check", Iterations: cfg.iterations,
			TolerancePct: cfg.tolerance, Scale: scale, Drifts: drifts, Measurements: meas}
		if rep.Drifts == nil {
			rep.Drifts = []regress.Drift{}
		}
		if rep.Measurements == nil {
			rep.Measurements = []regress.Measurement{}
		}
		code := 0
		if !ok {
			code = 1
		}
		return emitJSON(stdout, stderr, rep, code)
	}
	for _, m := range meas {
		fmt.Fprintf(stdout, "  %-4s %8.1fms %9d allocs\n", m.ID, float64(m.WallNS)/1e6, m.Allocs)
	}
	if !ok {
		fmt.Fprintf(stderr, "lpmembench: %d drift(s) from committed baselines:\n", len(drifts))
		for _, d := range drifts {
			fmt.Fprintf(stderr, "  %s\n", d)
		}
		fmt.Fprintln(stderr, "lpmembench: if the change is deliberate, re-record with `go run ./cmd/lpmembench -record` and commit")
		return 1
	}
	fmt.Fprintf(stdout, "lpmembench: %d experiments match goldens and perf baseline (scale %.2f)\n",
		len(meas), scale)
	return 0
}

func emitJSON(stdout, stderr io.Writer, rep report, code int) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return code
}
