package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lpmem/internal/regress"
)

// fastArgs restricts runs to the two cheapest experiments with a single
// iteration so the end-to-end tests stay quick.
func fastArgs(dir string, extra ...string) []string {
	args := []string{
		"-filter", "E4,E17",
		"-iterations", "1",
		"-baseline", filepath.Join(dir, "bench.json"),
		"-golden", filepath.Join(dir, "golden"),
	}
	return append(args, extra...)
}

// TestRecordThenCheck: a fresh record must immediately pass its own
// check, and the artifacts must land on disk.
func TestRecordThenCheck(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run(append(fastArgs(dir), "-record"), &out, &errOut); code != 0 {
		t.Fatalf("record exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"golden/E4.json", "golden/E17.json", "bench.json"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("record did not produce %s: %v", want, err)
		}
	}
	out.Reset()
	errOut.Reset()
	if code := run(append(fastArgs(dir), "-check"), &out, &errOut); code != 0 {
		t.Fatalf("check after record exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "match goldens and perf baseline") {
		t.Fatalf("check output: %s", out.String())
	}
}

// TestCheckDetectsTableDrift: corrupting a committed golden row makes
// the check exit non-zero and name the drift.
func TestCheckDetectsTableDrift(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run(append(fastArgs(dir), "-record"), &out, &errOut); code != 0 {
		t.Fatalf("record exit %d, stderr: %s", code, errOut.String())
	}
	path := filepath.Join(dir, "golden", "E17.json")
	var snap regress.Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Rows[0][len(snap.Rows[0])-1] = "corrupted"
	if err := regress.WriteGolden(filepath.Join(dir, "golden"), snap); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run(append(fastArgs(dir), "-check"), &out, &errOut); code != 1 {
		t.Fatalf("check with corrupt golden exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "E17") || !strings.Contains(errOut.String(), "rows") {
		t.Fatalf("drift report: %s", errOut.String())
	}
}

// TestCheckJSONReport: -json emits a structured report whose OK flag
// matches the exit code.
func TestCheckJSONReport(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run(append(fastArgs(dir), "-record", "-json"), &out, &errOut); code != 0 {
		t.Fatalf("record exit %d, stderr: %s", code, errOut.String())
	}
	var rec report
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("record -json: %v\n%s", err, out.String())
	}
	if !rec.OK || rec.Mode != "record" || len(rec.Measurements) != 2 {
		t.Fatalf("record report: %+v", rec)
	}

	out.Reset()
	errOut.Reset()
	if code := run(append(fastArgs(dir), "-check", "-json"), &out, &errOut); code != 0 {
		t.Fatalf("check exit %d, stderr: %s", code, errOut.String())
	}
	var chk report
	if err := json.Unmarshal(out.Bytes(), &chk); err != nil {
		t.Fatalf("check -json: %v\n%s", err, out.String())
	}
	if !chk.OK || chk.Mode != "check" || len(chk.Drifts) != 0 || len(chk.Measurements) != 2 {
		t.Fatalf("check report: %+v", chk)
	}
}

// TestCheckMissingBaseline: checking without committed artifacts fails
// with a diagnostic rather than succeeding vacuously.
func TestCheckMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run(append(fastArgs(dir), "-check"), &out, &errOut); code != 1 {
		t.Fatalf("check without baseline exit %d, want 1", code)
	}
}

// TestUsageErrors: flag misuse exits 2.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                              // neither mode
		{"-record", "-check"},           // both modes
		{"-check", "stray"},             // positional args
		{"-record", "-filter", "E99"},   // unknown experiment
		{"-record", "-filter", " , , "}, // empty selection
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Fatalf("args %v exit %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}
