package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lpmem/internal/lint"
)

// TestList: -list prints every analyzer in the suite and exits 0.
func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

// TestUnknownAnalyzer: a bad -enable name is a usage error (exit 2).
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-enable", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestJSONEnvelope: -json emits the versioned report envelope, not a
// bare diagnostics array, even for a clean run.
func TestJSONEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks a real package")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-enable", "registry", "./internal/lint"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	var report lint.Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("output is not a report envelope: %v\n%s", err, out.String())
	}
	if report.Schema != lint.ReportSchema {
		t.Errorf("schema = %q, want %q", report.Schema, lint.ReportSchema)
	}
	if len(report.Analyzers) != 1 || report.Analyzers[0] != "registry" {
		t.Errorf("analyzers = %v, want [registry]", report.Analyzers)
	}
	if report.Diagnostics == nil {
		t.Error("diagnostics must marshal as [], not null")
	}
}
