// Command lpmemlint runs the project-specific static analyzer suite
// (internal/lint) over the module. It is the CI gate for the invariants
// the compiler cannot check: determinism of model code, completeness of
// the experiment registry, float-comparison hygiene, panic-free library
// code, error wrapping, allocation discipline in hot loops, lock and
// goroutine hygiene, and request-bounded buffer sizing.
//
// Usage:
//
//	go run ./cmd/lpmemlint ./...
//	go run ./cmd/lpmemlint -list
//	go run ./cmd/lpmemlint -json -enable determinism,registry ./internal/... .
//	go run ./cmd/lpmemlint -escape-evidence -enable hotalloc ./internal/cache
//
// -escape-evidence additionally runs `go build -gcflags=-m` over the
// named packages and attaches the compiler's heap messages to hotalloc
// findings on the same lines, so each report carries proof rather than
// heuristic suspicion.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lpmem/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpmemlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listFlag    = fs.Bool("list", false, "print available analyzers and exit")
		jsonFlag    = fs.Bool("json", false, "emit the lpmemlint report envelope as JSON")
		enableFlag  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disableFlag = fs.String("disable", "", "comma-separated analyzers to skip")
		escapeFlag  = fs.Bool("escape-evidence", false, "corroborate hotalloc findings with go build -gcflags=-m output")
		verboseFlag = fs.Bool("v", false, "also report suppression counts and type-check noise")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: lpmemlint [flags] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Packages default to ./... relative to the module root.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *enableFlag != "" {
		var err error
		analyzers, err = lint.ByName(*enableFlag)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if *disableFlag != "" {
		skip, err := lint.ByName(*disableFlag)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		skipped := make(map[string]bool)
		for _, a := range skip {
			skipped[a.Name] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if !skipped[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(stderr, "lpmemlint: no analyzers selected")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "lpmemlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "lpmemlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "lpmemlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "lpmemlint: no packages matched", patterns)
		return 2
	}

	if *escapeFlag {
		idx, err := lint.CollectEscape(loader.ModRoot, patterns)
		if err != nil {
			// Evidence is corroboration, not a prerequisite: report the
			// failure and run without it rather than blocking the gate.
			fmt.Fprintln(stderr, "lpmemlint: escape evidence unavailable:", err)
		} else {
			lint.AttachEscape(pkgs, idx)
			if *verboseFlag {
				fmt.Fprintf(stderr, "lpmemlint: escape evidence for %d source line(s)\n", idx.Len())
			}
		}
	}

	res := lint.Run(pkgs, analyzers)

	if *verboseFlag {
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(stderr, "lpmemlint: typecheck %s: %v\n", p.RelPath, te)
			}
		}
		fmt.Fprintf(stderr, "lpmemlint: %d package(s), %d finding(s), %d suppressed by directives\n",
			len(pkgs), len(res.Diagnostics), res.Suppressed)
	}

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Report(analyzers, len(pkgs))); err != nil {
			fmt.Fprintln(stderr, "lpmemlint:", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
