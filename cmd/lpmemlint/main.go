// Command lpmemlint runs the project-specific static analyzer suite
// (internal/lint) over the module. It is the CI gate for the invariants
// the compiler cannot check: determinism of model code, completeness of
// the experiment registry, float-comparison hygiene, panic-free library
// code, and error wrapping.
//
// Usage:
//
//	go run ./cmd/lpmemlint ./...
//	go run ./cmd/lpmemlint -list
//	go run ./cmd/lpmemlint -json -enable determinism,registry ./internal/... .
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lpmem/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lpmemlint", flag.ContinueOnError)
	var (
		listFlag    = fs.Bool("list", false, "print available analyzers and exit")
		jsonFlag    = fs.Bool("json", false, "emit diagnostics as a JSON array")
		enableFlag  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disableFlag = fs.String("disable", "", "comma-separated analyzers to skip")
		verboseFlag = fs.Bool("v", false, "also report suppression counts and type-check noise")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: lpmemlint [flags] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Packages default to ./... relative to the module root.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *enableFlag != "" {
		var err error
		analyzers, err = lint.ByName(*enableFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *disableFlag != "" {
		skip, err := lint.ByName(*disableFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		skipped := make(map[string]bool)
		for _, a := range skip {
			skipped[a.Name] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if !skipped[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "lpmemlint: no analyzers selected")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpmemlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpmemlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpmemlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "lpmemlint: no packages matched", patterns)
		return 2
	}

	res := lint.Run(pkgs, analyzers)

	if *verboseFlag {
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "lpmemlint: typecheck %s: %v\n", p.RelPath, te)
			}
		}
		fmt.Fprintf(os.Stderr, "lpmemlint: %d package(s), %d finding(s), %d suppressed by directives\n",
			len(pkgs), len(res.Diagnostics), res.Suppressed)
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if res.Diagnostics == nil {
			res.Diagnostics = []lint.Diagnostic{}
		}
		if err := enc.Encode(res.Diagnostics); err != nil {
			fmt.Fprintln(os.Stderr, "lpmemlint:", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
