package main

// lpmem trace subcommands: the CLI surface of the two trace formats.
//
//	lpmem trace <kernel> [seed]       run a kernel, dump its trace as text
//	lpmem trace convert -i IN -o OUT  interconvert text and binary losslessly
//	lpmem trace info FILE             header, counts and density of a trace
//	lpmem trace cat FILE              print any trace as text
//	lpmem trace replay FILE           stream a trace through a cache, print stats
//
// Formats are sniffed from the 4-byte LPMT magic, so every subcommand
// accepts either representation; "-" means stdin/stdout. replay is the
// zero-allocation path: a binary input streams through the cache via
// trace.Reader without ever materialising a []Access, which is what the
// CI trace stage uses to prove both formats replay identically.

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"lpmem/internal/cache"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// runTrace dispatches the trace subcommands; a non-subcommand first
// argument is a kernel name (the original `lpmem trace <kernel>` form).
func runTrace(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: lpmem trace <kernel> [seed] | convert | info | cat | replay (see lpmem trace -h)")
		return 2
	}
	switch args[0] {
	case "convert":
		return traceConvert(args[1:], stdout, stderr)
	case "info":
		return traceInfo(args[1:], stdout, stderr)
	case "cat":
		return traceCat(args[1:], stdout, stderr)
	case "replay":
		return traceReplay(args[1:], stdout, stderr)
	}
	return traceKernel(args, stdout, stderr)
}

// traceKernel implements the original `lpmem trace <kernel> [seed]`.
func traceKernel(args []string, stdout, stderr io.Writer) int {
	seed := int64(1)
	if len(args) >= 2 {
		s, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			fmt.Fprintf(stderr, "bad seed %q: %v\n", args[1], err)
			return 2
		}
		seed = s
	}
	k, err := workloads.ByName(args[0])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	res, err := workloads.Run(k.Build(seed))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := res.Trace.WriteText(stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// openInput resolves "-" to stdin.
func openInput(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// openOutput resolves "-" to stdout.
func openOutput(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "-" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// sniffFormat peeks at a buffered reader and reports "binary" or
// "text". An empty input is a valid, empty text trace.
func sniffFormat(br *bufio.Reader) string {
	head, _ := br.Peek(4)
	if trace.HasBinaryMagic(head) {
		return "binary"
	}
	return "text"
}

// readTrace materialises a trace in either format from a reader.
func readTrace(br *bufio.Reader) (*trace.Trace, string, error) {
	format := sniffFormat(br)
	var t *trace.Trace
	var err error
	if format == "binary" {
		t, err = trace.ReadBinary(br)
	} else {
		t, err = trace.ReadText(br)
	}
	return t, format, err
}

// traceConvert implements `lpmem trace convert`.
func traceConvert(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "-", "input trace (text or binary; - = stdin)")
	out := fs.String("o", "-", "output path (- = stdout)")
	to := fs.String("to", "auto", "output format: text, binary, or auto (the opposite of the input)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "lpmem trace convert: unexpected arguments %v\n", fs.Args())
		return 2
	}
	switch *to {
	case "auto", "text", "binary":
	default:
		fmt.Fprintf(stderr, "lpmem trace convert: -to %q (want auto, text or binary)\n", *to)
		return 2
	}
	r, err := openInput(*in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Read-side close: the error carries nothing once the read succeeded.
	defer func() { _ = r.Close() }()
	t, from, err := readTrace(bufio.NewReader(r))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	target := *to
	if target == "auto" {
		if from == "text" {
			target = "binary"
		} else {
			target = "text"
		}
	}
	w, closeOut, err := openOutput(*out, stdout)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if target == "binary" {
		err = t.WriteBinary(w)
	} else {
		err = t.WriteText(w)
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// traceInfo implements `lpmem trace info FILE`: header, per-kind access
// counts, address range and on-disk density. Binary inputs stream
// through trace.Reader, so info on a multi-gigabyte trace holds one
// block in memory.
func traceInfo(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: lpmem trace info FILE")
		return 2
	}
	r, err := openInput(args[0])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Read-side close: the error carries nothing once the read succeeded.
	defer func() { _ = r.Close() }()
	var fileBytes int64 = -1
	if f, ok := r.(*os.File); ok {
		if st, err := f.Stat(); err == nil && st.Mode().IsRegular() {
			fileBytes = st.Size()
		}
	}
	br := bufio.NewReader(r)
	format := sniffFormat(br)

	var counts [3]uint64
	var total uint64
	var lo, hi uint32
	var blocks uint64
	var maxCore uint8
	multiCore := false
	scan := func(a *trace.Access) {
		if a.Kind <= trace.Fetch {
			counts[a.Kind]++
		}
		if total == 0 || a.Addr < lo {
			lo = a.Addr
		}
		if total == 0 || a.Addr > hi {
			hi = a.Addr
		}
		if a.Core > maxCore {
			maxCore = a.Core
		}
		total++
	}
	if format == "binary" {
		tr, err := trace.NewReader(br)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		for tr.Next() {
			scan(tr.Access())
		}
		if err := tr.Err(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		blocks = tr.Blocks()
		multiCore = tr.MultiCore()
		fmt.Fprintf(stdout, "format:     binary (LPMT v%d)\n", tr.Version())
	} else {
		t, err := trace.ReadText(br)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		for i := range t.Accesses {
			scan(&t.Accesses[i])
		}
		multiCore = t.MultiCore
		fmt.Fprintf(stdout, "format:     text\n")
	}
	if multiCore {
		fmt.Fprintf(stdout, "cores:      %d (multi-core)\n", int(maxCore)+1)
	}
	fmt.Fprintf(stdout, "accesses:   %d\n", total)
	fmt.Fprintf(stdout, "reads:      %d\n", counts[trace.Read])
	fmt.Fprintf(stdout, "writes:     %d\n", counts[trace.Write])
	fmt.Fprintf(stdout, "fetches:    %d\n", counts[trace.Fetch])
	if total > 0 {
		fmt.Fprintf(stdout, "addr range: [0x%x, 0x%x]\n", lo, hi)
	}
	if format == "binary" {
		fmt.Fprintf(stdout, "blocks:     %d\n", blocks)
	}
	if fileBytes >= 0 && total > 0 {
		fmt.Fprintf(stdout, "file bytes: %d (%.2f B/access)\n", fileBytes, float64(fileBytes)/float64(total))
	}
	return 0
}

// traceCat implements `lpmem trace cat FILE`: any format to text.
func traceCat(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: lpmem trace cat FILE")
		return 2
	}
	r, err := openInput(args[0])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Read-side close: the error carries nothing once the read succeeded.
	defer func() { _ = r.Close() }()
	t, _, err := readTrace(bufio.NewReader(r))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := t.WriteText(stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// traceReplay implements `lpmem trace replay FILE`: run the trace's
// data accesses through a cache and print the statistics on one
// diff-friendly line. The CI trace stage replays each trace in both
// formats and requires identical output.
func traceReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sets := fs.Int("sets", 64, "cache sets (power of two)")
	ways := fs.Int("ways", 4, "cache associativity")
	line := fs.Int("line", 32, "cache line size in bytes (power of two)")
	writeThrough := fs.Bool("write-through", false, "write-through instead of write-back")
	noAllocate := fs.Bool("no-allocate", false, "store misses do not allocate the line")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: lpmem trace replay [flags] FILE")
		return 2
	}
	cfg := cache.Config{
		Sets: *sets, Ways: *ways, LineSize: *line,
		WriteBack: !*writeThrough, WriteAllocate: !*noAllocate,
	}
	c, err := cache.New(cfg, nil)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	r, err := openInput(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Read-side close: the error carries nothing once the read succeeded.
	defer func() { _ = r.Close() }()
	br := bufio.NewReader(r)
	var cur trace.Cursor
	if sniffFormat(br) == "binary" {
		// The streaming path: the binary trace replays without ever
		// materialising a []Access.
		cur, err = trace.NewReader(br)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		t, err := trace.ReadText(br)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		cur = t.Cursor()
	}
	st, err := c.ReplayCursor(cur)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "accesses=%d hits=%d misses=%d refills=%d writebacks=%d writethroughs=%d hitrate=%.6f\n",
		st.Accesses, st.Hits, st.Misses, st.Refills, st.WriteBacks, st.WriteThroughs, st.HitRate())
	return 0
}
