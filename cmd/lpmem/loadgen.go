package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lpmem/internal/stats"
)

// `lpmem loadgen` drives an lpmemd fleet with a configurable open- or
// closed-loop workload and reports throughput, latency percentiles, and
// the shed rate. It is the client half of the serving subsystem: request
// IDs it mints show up in the servers' access logs, 429 responses it
// counts can be cross-checked against the servers' admission counters
// (-verify), and the multi-replica bench script is a thin wrapper
// around it.

// lgKind is one request flavour in the workload mix.
type lgKind struct {
	name   string
	weight int
}

// lgTally accumulates per-kind results. Latencies are recorded for
// served (2xx) requests only: shed requests return immediately and
// would make the percentiles look better under overload, which is
// exactly backwards.
type lgTally struct {
	requests, ok, shed, failed int
	latMS                      []float64
}

func (t *lgTally) add(o *lgTally) {
	t.requests += o.requests
	t.ok += o.ok
	t.shed += o.shed
	t.failed += o.failed
	t.latMS = append(t.latMS, o.latMS...)
}

// percentile returns the q-quantile (0..1) of sorted ms samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// parseMix turns "one=8,batch=1,list=1" into a weighted kind list.
func parseMix(spec string) ([]lgKind, error) {
	known := map[string]bool{"one": true, "batch": true, "list": true, "health": true}
	var mix []lgKind
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, "=")
		w := 1
		if found {
			if _, err := fmt.Sscanf(wstr, "%d", &w); err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown mix kind %q (want one, batch, list, health)", name)
		}
		if w > 0 {
			mix = append(mix, lgKind{name, w})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty request mix %q", spec)
	}
	return mix, nil
}

// pickKind draws one kind from the weighted mix.
func pickKind(rng *rand.Rand, mix []lgKind) string {
	total := 0
	for _, k := range mix {
		total += k.weight
	}
	n := rng.Intn(total)
	for _, k := range mix {
		if n < k.weight {
			return k.name
		}
		n -= k.weight
	}
	return mix[len(mix)-1].name
}

// admissionShed reads the lifetime shed counter from one replica's
// /metrics (0 when admission control is off).
func admissionShed(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	var m struct {
		Admission *struct {
			Shed uint64 `json:"shed"`
		} `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, err
	}
	if m.Admission == nil {
		return 0, nil
	}
	return m.Admission.Shed, nil
}

// runLoadgen implements `lpmem loadgen`.
func runLoadgen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addrs := fs.String("addr", "http://localhost:8093", "comma list of lpmemd base URLs, round-robined")
	clients := fs.Int("clients", 4, "concurrent client goroutines")
	rate := fs.Float64("rate", 0, "total request arrival rate per second (0 = closed loop)")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	requests := fs.Int("requests", 0, "stop after this many requests (0 = duration governs)")
	mixSpec := fs.String("mix", "one=8,batch=1,list=1", "weighted request mix: one, batch, list, health")
	idsSpec := fs.String("ids", "E17,E22,E4", "experiment IDs the one/batch kinds draw from")
	seed := fs.Int64("seed", 1, "workload seed; same seed, same request sequence per client")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	probe := fs.Duration("probe", 0, "wait up to this long for every replica's /healthz before starting")
	verify := fs.Bool("verify", false, "cross-check client-observed 429s against the servers' shed counters")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	bases := strings.Split(*addrs, ",")
	for i := range bases {
		bases[i] = strings.TrimRight(strings.TrimSpace(bases[i]), "/")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(stderr, "lpmem loadgen: %v\n", err)
		return 2
	}
	ids := strings.Split(*idsSpec, ",")
	if *clients < 1 {
		fmt.Fprintln(stderr, "lpmem loadgen: -clients must be >= 1")
		return 2
	}

	client := &http.Client{Timeout: *timeout}

	if *probe > 0 {
		deadline := time.Now().Add(*probe)
		for _, base := range bases {
			for {
				resp, err := client.Get(base + "/healthz")
				if err == nil {
					_ = resp.Body.Close()
					break
				}
				if time.Now().After(deadline) {
					fmt.Fprintf(stderr, "lpmem loadgen: %s not ready after %v: %v\n", base, *probe, err)
					return 1
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	}

	shedBefore := make([]uint64, len(bases))
	if *verify {
		for i, base := range bases {
			if shedBefore[i], err = admissionShed(client, base); err != nil {
				fmt.Fprintf(stderr, "lpmem loadgen: read %s/metrics: %v\n", base, err)
				return 1
			}
		}
	}

	// Open-loop arrivals: one shared ticker distributes ticks across the
	// client pool, so the total arrival rate is -rate regardless of
	// -clients. Closed loop (-rate 0) lets every client fire back-to-back.
	var pace <-chan time.Time
	if *rate > 0 {
		tk := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer tk.Stop()
		pace = tk.C
	}

	var (
		issued  atomic.Int64
		stop    = make(chan struct{})
		tallies = make([]map[string]*lgTally, *clients)
		wg      sync.WaitGroup
	)
	timeUp := time.AfterFunc(*duration, func() { close(stop) })
	defer timeUp.Stop()

	start := time.Now()
	for c := 0; c < *clients; c++ {
		tallies[c] = map[string]*lgTally{}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
			seq := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if pace != nil {
					select {
					case <-pace:
					case <-stop:
						return
					}
				}
				if *requests > 0 && issued.Add(1) > int64(*requests) {
					return
				}
				base := bases[rng.Intn(len(bases))]
				kind := pickKind(rng, mix)
				var (
					method = http.MethodGet
					url    string
				)
				switch kind {
				case "one":
					url = base + "/experiments/" + strings.TrimSpace(ids[rng.Intn(len(ids))])
				case "batch":
					a, b := rng.Intn(len(ids)), rng.Intn(len(ids))
					url = base + "/run?ids=" + strings.TrimSpace(ids[a]) + "," + strings.TrimSpace(ids[b])
					method = http.MethodPost
				case "list":
					url = base + "/experiments"
				case "health":
					url = base + "/healthz"
				}
				seq++
				req, err := http.NewRequest(method, url, nil)
				if err != nil {
					continue
				}
				req.Header.Set("X-Request-ID", fmt.Sprintf("lg-%d-%06d", c, seq))
				t := tallies[c][kind]
				if t == nil {
					t = &lgTally{}
					tallies[c][kind] = t
				}
				t.requests++
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					t.failed++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					t.shed++
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					t.ok++
					t.latMS = append(t.latMS, ms)
				default:
					t.failed++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge per-client tallies; no locks were needed while running.
	perKind := map[string]*lgTally{}
	total := &lgTally{}
	for _, m := range tallies {
		for kind, t := range m {
			if perKind[kind] == nil {
				perKind[kind] = &lgTally{}
			}
			perKind[kind].add(t)
			total.add(t)
		}
	}
	sort.Float64s(total.latMS)

	type kindReport struct {
		Kind     string  `json:"kind"`
		Requests int     `json:"requests"`
		OK       int     `json:"ok"`
		Shed     int     `json:"shed"`
		Failed   int     `json:"failed"`
		P50MS    float64 `json:"p50_ms"`
		P99MS    float64 `json:"p99_ms"`
	}
	var kinds []kindReport
	for _, name := range []string{"one", "batch", "list", "health"} {
		t := perKind[name]
		if t == nil {
			continue
		}
		sort.Float64s(t.latMS)
		kinds = append(kinds, kindReport{
			Kind: name, Requests: t.requests, OK: t.ok, Shed: t.shed, Failed: t.failed,
			P50MS: percentile(t.latMS, 0.50), P99MS: percentile(t.latMS, 0.99),
		})
	}
	report := struct {
		Addrs      []string     `json:"addrs"`
		Clients    int          `json:"clients"`
		DurationS  float64      `json:"duration_s"`
		Requests   int          `json:"requests"`
		OK         int          `json:"ok"`
		Shed       int          `json:"shed"`
		Failed     int          `json:"failed"`
		RPS        float64      `json:"rps"`
		ShedRate   float64      `json:"shed_rate"`
		P50MS      float64      `json:"p50_ms"`
		P90MS      float64      `json:"p90_ms"`
		P99MS      float64      `json:"p99_ms"`
		MaxMS      float64      `json:"max_ms"`
		Kinds      []kindReport `json:"kinds"`
		ServerShed *uint64      `json:"server_shed,omitempty"`
	}{
		Addrs: bases, Clients: *clients,
		DurationS: elapsed.Seconds(),
		Requests:  total.requests, OK: total.ok, Shed: total.shed, Failed: total.failed,
		RPS:   float64(total.ok) / elapsed.Seconds(),
		P50MS: percentile(total.latMS, 0.50),
		P90MS: percentile(total.latMS, 0.90),
		P99MS: percentile(total.latMS, 0.99),
		MaxMS: percentile(total.latMS, 1.0),
		Kinds: kinds,
	}
	if total.requests > 0 {
		report.ShedRate = float64(total.shed) / float64(total.requests)
	}

	verifyFailed := false
	if *verify {
		var serverShed uint64
		for i, base := range bases {
			after, err := admissionShed(client, base)
			if err != nil {
				fmt.Fprintf(stderr, "lpmem loadgen: read %s/metrics: %v\n", base, err)
				return 1
			}
			serverShed += after - shedBefore[i]
		}
		report.ServerShed = &serverShed
		if int(serverShed) != total.shed {
			verifyFailed = true
			fmt.Fprintf(stderr, "lpmem loadgen: shed mismatch: clients saw %d 429s, servers shed %d\n",
				total.shed, serverShed)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		tbl := stats.NewTable("kind", "requests", "ok", "shed", "failed", "p50_ms", "p99_ms")
		for _, k := range kinds {
			tbl.AddRow(k.Kind, k.Requests, k.OK, k.Shed, k.Failed, k.P50MS, k.P99MS)
		}
		fmt.Fprint(stdout, tbl.String())
	}
	// The summary line is stable and grep-friendly: the bench script and
	// the CI serve stage parse it.
	fmt.Fprintf(stdout,
		"loadgen: total=%d ok=%d shed=%d failed=%d rps=%.1f p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms\n",
		report.Requests, report.OK, report.Shed, report.Failed, report.RPS,
		report.P50MS, report.P90MS, report.P99MS, report.MaxMS)

	if total.failed > 0 || verifyFailed {
		return 1
	}
	return 0
}
