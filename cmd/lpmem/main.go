// Command lpmem runs the reproduction experiments of the DATE'03 low-power
// track and prints their tables, and provides workload tooling.
//
// Usage:
//
//	lpmem list               # list experiments
//	lpmem run E1 [E7 ...]    # run selected experiments
//	lpmem run all            # run everything
//	lpmem kernels            # list workload kernels
//	lpmem trace <kernel>     # run a kernel and dump its memory trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"lpmem"
	"lpmem/internal/workloads"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range lpmem.Experiments() {
			fmt.Printf("%-4s %-60s %s\n", e.ID, e.Title, e.PaperClaim)
		}
	case "run":
		ids := args[1:]
		if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
			ids = nil
			for _, e := range lpmem.Experiments() {
				ids = append(ids, e.ID)
			}
		}
		for _, id := range ids {
			exp, err := lpmem.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("=== %s: %s\n", exp.ID, exp.Title)
			fmt.Printf("paper claim: %s\n\n", exp.PaperClaim)
			res, err := exp.Run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", exp.ID, err)
				os.Exit(1)
			}
			fmt.Print(res.Table.String())
			fmt.Printf("\n>>> %s\n\n", res.Summary)
		}
	case "kernels":
		for _, k := range workloads.All() {
			inst := k.Build(1)
			fmt.Printf("%-12s %3d instructions, %d data regions\n",
				k.Name, inst.Prog.Len(), len(inst.Arrays))
		}
	case "trace":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "usage: lpmem trace <kernel> [seed]")
			os.Exit(2)
		}
		seed := int64(1)
		if len(args) >= 3 {
			s, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", args[2], err)
				os.Exit(2)
			}
			seed = s
		}
		k, err := workloads.ByName(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := workloads.Run(k.Build(seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.Trace.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `lpmem — DATE'03 low-power track reproduction driver

usage:
  lpmem list             list experiments
  lpmem run all          run every experiment
  lpmem run E1 E7 ...    run selected experiments
  lpmem kernels          list workload kernels
  lpmem trace <kernel>   dump a kernel memory trace
`)
}
