// Command lpmem runs the reproduction experiments of the DATE'03 low-power
// track and prints their tables, and provides workload tooling.
//
// Usage:
//
//	lpmem list                          # list experiments
//	lpmem run [flags] E1 [E7 ...]       # run selected experiments
//	lpmem run all                       # run everything
//	lpmem run -parallel 8 -json all     # parallel batch, JSON envelopes
//	lpmem loadgen -addr http://h:8093   # drive an lpmemd fleet with load
//	lpmem kernels                       # list workload kernels
//	lpmem trace <kernel>                # run a kernel and dump its trace
//
// Experiments execute on the concurrent runner engine (internal/runner):
// -parallel sets the worker-pool size, -timeout bounds each experiment,
// and -json swaps the text tables for the same JSON envelopes lpmemd
// serves. If any requested experiment fails, every remaining experiment
// still runs and lpmem exits with status 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lpmem"
	"lpmem/internal/runner"
	"lpmem/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "list":
		for _, e := range lpmem.Experiments() {
			fmt.Fprintf(stdout, "%-4s %-60s %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return 0
	case "run":
		return runExperiments(args[1:], stdout, stderr)
	case "chaos":
		return runChaos(args[1:], stdout, stderr)
	case "sweep":
		return runSweep(args[1:], stdout, stderr)
	case "loadgen":
		return runLoadgen(args[1:], stdout, stderr)
	case "kernels":
		for _, k := range workloads.All() {
			inst := k.Build(1)
			fmt.Fprintf(stdout, "%-12s %3d instructions, %d data regions\n",
				k.Name, inst.Prog.Len(), len(inst.Arrays))
		}
		return 0
	case "trace":
		return runTrace(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
}

// runExperiments implements `lpmem run`: resolve IDs, execute the batch
// on the engine, render text or JSON, and report failures via exit code.
func runExperiments(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit JSON envelopes instead of text tables")
	timeout := fs.Duration("timeout", 0, "per-experiment deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ids := fs.Args()
	var exps []lpmem.Experiment
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		exps = lpmem.Experiments()
	} else {
		for _, id := range ids {
			exp, err := lpmem.ByID(id)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			exps = append(exps, exp)
		}
	}

	eng := lpmem.NewEngine(runner.Options{Workers: *parallel, Timeout: *timeout})
	reports := lpmem.RunBatch(context.Background(), eng, exps)

	failed := 0
	if *jsonOut {
		envs := make([]lpmem.ResultJSON, len(reports))
		for i, r := range reports {
			envs[i] = r.JSON()
			if envs[i].Error != "" {
				failed++
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(envs); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		for _, r := range reports {
			fmt.Fprintf(stdout, "=== %s: %s\n", r.Experiment.ID, r.Experiment.Title)
			fmt.Fprintf(stdout, "paper claim: %s\n\n", r.Experiment.PaperClaim)
			if err := r.Outcome.Err; err != nil {
				fmt.Fprintf(stderr, "%s failed: %v\n", r.Experiment.ID, err)
				failed++
				continue
			}
			fmt.Fprint(stdout, r.Outcome.Value.Table.String())
			fmt.Fprintf(stdout, "\n>>> %s\n\n", r.Outcome.Value.Summary)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "lpmem: %d of %d experiments failed\n", failed, len(reports))
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `lpmem — DATE'03 low-power track reproduction driver

usage:
  lpmem list                      list experiments
  lpmem run [flags] all           run every experiment
  lpmem run [flags] E1 E7 ...     run selected experiments
  lpmem chaos [flags] [ids|all]   fault-injection robustness sweep
  lpmem sweep [flags]             design-space exploration (Pareto frontiers)
  lpmem loadgen [flags]           drive an lpmemd fleet, report latency/shed stats
  lpmem kernels                   list workload kernels
  lpmem trace <kernel> [seed]     dump a kernel memory trace (text format)
  lpmem trace convert [flags]     interconvert text and binary traces losslessly
  lpmem trace info FILE           header, access counts and density of a trace
  lpmem trace cat FILE            print a trace (either format) as text
  lpmem trace replay [flags] FILE stream a trace through a cache, print stats

run flags:
  -parallel N    worker-pool size (default GOMAXPROCS)
  -json          emit JSON envelopes instead of text tables
  -timeout D     per-experiment deadline (e.g. 90s; default none)

chaos flags:
  -seed N        fault-plan seed (default 1); same seed, same faults
  -plan KINDS    'all' or a comma list (delay,error,panic,corrupt,slowstart,cancel)
  -rate R        fraction of experiments faulted (default 0.6)
  -runs N        identical sweeps compared for determinism (default 2)
  -retries N     per-experiment retry budget (default 2)
  -json          emit sweep reports as JSON

loadgen flags:
  -addr URLS     comma list of lpmemd base URLs, round-robined
  -clients N     concurrent clients (default 4); -rate R total req/s (0 = closed loop)
  -duration D    load window (default 10s); -requests N hard request cap
  -mix SPEC      weighted kinds, e.g. one=8,batch=1,list=1 (also: health)
  -ids LIST      experiment IDs drawn by one/batch (default E17,E22,E4)
  -seed N        workload seed; -timeout D per-request deadline
  -probe D       wait for every replica's /healthz before starting
  -verify        cross-check client 429s against server shed counters
  -json          emit the report as JSON

sweep flags:
  -space NAME    design space: banks, cache, bus, memhier, memtech (-list to enumerate)
  -points N      Latin-hypercube sample size (default 0 = full grid)
  -seed N        sampling seed (default 1)
  -resume FILE   JSONL result store; reruns skip already-evaluated points
  -pareto        print only the Pareto frontier table
  -objectives L  frontier objectives (default energy_pj,latency,area)
  -parallel N    worker-pool size; -batch N points per batch; -timeout D
  -json          emit the sweep envelope as JSON; -v batch progress

trace convert flags:
  -i FILE        input trace, text or binary, sniffed (- = stdin)
  -o FILE        output path (- = stdout)
  -to FMT        text | binary | auto (default: the opposite of the input)

trace replay flags:
  -sets N -ways N -line N         cache geometry (default 64x4, 32B lines)
  -write-through -no-allocate     write policies (default write-back, allocate)

exit status: 0 on success, 1 if any experiment failed (run), any
robustness invariant was violated (chaos), or any sweep point failed
(sweep), 2 on usage errors.
`)
}
