package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepJSONGolden: `lpmem sweep -json` over the bus space (the
// smallest full grid) must match the checked-in golden envelope
// byte-for-byte — the sweep envelope deliberately carries no wall-clock
// field, so no normalization is needed. Regenerate with
// `go test ./cmd/lpmem -run Golden -update` after a deliberate model
// change.
func TestSweepJSONGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runSweep([]string{"-space", "bus", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.Bytes()

	golden := filepath.Join("testdata", "sweep_bus.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sweep golden mismatch (run with -update after a deliberate change)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The envelope must also be structurally valid.
	var env struct {
		Space      string   `json:"space"`
		Objectives []string `json:"objectives"`
		Total      int      `json:"total"`
		Evaluated  int      `json:"evaluated"`
		Failed     int      `json:"failed"`
		Frontier   struct {
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
		} `json:"frontier"`
	}
	if err := json.Unmarshal(got, &env); err != nil {
		t.Fatal(err)
	}
	if env.Space != "bus" || env.Total == 0 || env.Failed != 0 {
		t.Fatalf("envelope: %+v", env)
	}
	if len(env.Frontier.Rows) == 0 {
		t.Fatal("empty frontier")
	}
	if env.Evaluated != env.Total {
		t.Fatalf("storeless sweep evaluated %d of %d", env.Evaluated, env.Total)
	}
}

// TestSweepResumeByteIdentical is the acceptance criterion end-to-end:
// a fresh sweep against an empty store, then a second run against the
// same store, must re-execute zero points and print a byte-identical
// frontier table.
func TestSweepResumeByteIdentical(t *testing.T) {
	store := filepath.Join(t.TempDir(), "sweep.jsonl")
	runOnce := func() (string, string) {
		var out, errOut bytes.Buffer
		if code := runSweep([]string{"-space", "bus", "-resume", store, "-pareto"}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errOut.String())
		}
		return out.String(), errOut.String()
	}
	front1, summary1 := runOnce()
	front2, summary2 := runOnce()
	if front1 != front2 {
		t.Fatalf("resume frontier differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", front1, front2)
	}
	if !strings.Contains(summary1, "cached 0") {
		t.Fatalf("first run should start cold: %s", summary1)
	}
	if !strings.Contains(summary2, "evaluated 0") {
		t.Fatalf("second run re-executed points: %s", summary2)
	}
}

// TestSweepSampled: -points samples the space instead of sweeping the
// grid, deterministically per seed.
func TestSweepSampled(t *testing.T) {
	run := func(seed string) string {
		var out, errOut bytes.Buffer
		if code := runSweep([]string{"-space", "banks", "-points", "20", "-seed", seed, "-json"}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errOut.String())
		}
		return out.String()
	}
	a, b := run("5"), run("5")
	if a != b {
		t.Fatal("same-seed sampled sweeps differ")
	}
	var env struct {
		Total int `json:"total"`
	}
	if err := json.Unmarshal([]byte(a), &env); err != nil {
		t.Fatal(err)
	}
	if env.Total == 0 || env.Total > 20 {
		t.Fatalf("sampled sweep total = %d, want 1..20", env.Total)
	}
}

// TestSweepListAndErrors: -list enumerates the spaces; bad flags and
// unknown spaces exit 2.
func TestSweepListAndErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runSweep([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, want := range []string{"banks", "cache", "bus", "memhier", "memtech", "nuca"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output misses %q:\n%s", want, out.String())
		}
	}
	if code := runSweep([]string{"-space", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown space exit %d", code)
	}
	if code := runSweep([]string{"-objectives", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown objective exit %d", code)
	}
	if code := runSweep([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exit %d", code)
	}
}
