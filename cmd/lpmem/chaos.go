// chaos.go implements `lpmem chaos`: a replayable fault-injection sweep
// over the experiment registry that asserts the runner engine's
// robustness invariants — it must never deadlock, never leak goroutines,
// and always return a well-formed per-experiment report, no matter which
// combination of delays, transient errors, panics, corrupted cells,
// slow starts and mid-job cancellations the seeded plan deals out.
//
// The sweep runs twice with the same seed and compares fault placement
// and outcomes, so any order-dependence that sneaks into the injector or
// the retry path fails the command.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"time"

	"lpmem"
	"lpmem/internal/faultinject"
	"lpmem/internal/runner"
)

// chaosIDReport is the per-experiment row of a sweep report.
type chaosIDReport struct {
	ID       string `json:"id"`
	Fault    string `json:"fault"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
}

// chaosSweep is the machine-readable result of one full sweep.
type chaosSweep struct {
	Seed           int64             `json:"seed"`
	Failed         int               `json:"failed"`
	GoroutineDelta int               `json:"goroutine_delta"`
	FaultCounts    map[string]uint64 `json:"fault_counts"`
	Metrics        lpmem.Metrics     `json:"metrics"`
	IDs            []chaosIDReport   `json:"experiments"`
	Violations     []string          `json:"violations,omitempty"`
}

// runChaos implements `lpmem chaos`.
func runChaos(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "fault-plan seed; identical seeds place identical faults")
	planStr := fs.String("plan", "all", "fault kinds: 'all' or comma list of "+faultinject.KindNames())
	rate := fs.Float64("rate", 0.6, "fraction of experiments faulted, in [0,1]")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	retries := fs.Int("retries", 2, "per-experiment retry budget")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-attempt deadline")
	maxDelay := fs.Duration("maxdelay", 25*time.Millisecond, "cap for injected delays")
	maxTime := fs.Duration("maxtime", 10*time.Minute, "sweep watchdog: exceeding it is reported as a deadlock")
	runs := fs.Int("runs", 2, "number of identical sweeps to compare for determinism")
	jsonOut := fs.Bool("json", false, "emit the sweep reports as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	kinds, err := faultinject.ParseKinds(*planStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *rate < 0 || *rate > 1 {
		fmt.Fprintf(stderr, "chaos: rate %v outside [0,1]\n", *rate)
		return 2
	}
	ids := fs.Args()
	var exps []lpmem.Experiment
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		exps = lpmem.Experiments()
	} else {
		for _, id := range ids {
			exp, err := lpmem.ByID(id)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			exps = append(exps, exp)
		}
	}

	plan := faultinject.Plan{Seed: *seed, Rate: *rate, Kinds: kinds, MaxDelay: *maxDelay}
	var sweeps []chaosSweep
	for i := 0; i < *runs; i++ {
		sweep, deadlocked := chaosOnce(exps, plan, runner.Options{
			Workers: *parallel, Timeout: *timeout, NoCache: true,
			Retries: *retries, RetryBaseDelay: 5 * time.Millisecond,
			RetrySeed:        *seed,
			BreakerThreshold: 5, BreakerCooldown: time.Second,
		}, *maxTime)
		if deadlocked {
			fmt.Fprintf(stderr, "chaos: DEADLOCK: sweep %d did not finish within %v\n", i+1, *maxTime)
			return 1
		}
		sweeps = append(sweeps, sweep)
	}
	violations := crossRunViolations(sweeps)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]interface{}{
			"plan":       plan.Seed,
			"sweeps":     sweeps,
			"violations": violations,
		})
	} else {
		renderChaos(stdout, sweeps, violations)
	}
	bad := len(violations)
	for _, s := range sweeps {
		bad += len(s.Violations)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "chaos: %d invariant violation(s)\n", bad)
		return 1
	}
	fmt.Fprintf(stdout, "chaos OK: %d sweep(s) of %d experiments under seed %d, zero leaks, deterministic placement\n",
		len(sweeps), len(exps), *seed)
	return 0
}

// chaosOnce runs one full sweep under a fresh injector and engine,
// validating the in-run invariants (well-formed report, no leaks).
func chaosOnce(exps []lpmem.Experiment, plan faultinject.Plan, opts runner.Options, maxTime time.Duration) (chaosSweep, bool) {
	in := faultinject.New(plan)
	eng := lpmem.NewEngine(opts)
	jobs := make([]runner.Job[*lpmem.Result], len(exps))
	for i, e := range exps {
		e := e
		base := func(ctx context.Context) (*lpmem.Result, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return e.Run()
		}
		jobs[i] = runner.Job[*lpmem.Result]{
			ID:  e.ID,
			Run: faultinject.Wrap(in, e.ID, base, corruptResult),
		}
	}

	var outs []runner.Outcome[*lpmem.Result]
	done := make(chan struct{})
	var delta int
	go func() {
		defer close(done)
		delta = faultinject.GoroutineDelta(5*time.Second, func() {
			outs = eng.Run(context.Background(), jobs)
		})
	}()
	select {
	case <-done:
	case <-time.After(maxTime):
		return chaosSweep{}, true
	}

	sweep := chaosSweep{
		Seed:           plan.Seed,
		GoroutineDelta: delta,
		FaultCounts:    in.Counts(),
		Metrics:        eng.Metrics(),
	}
	if delta > 0 {
		sweep.Violations = append(sweep.Violations,
			fmt.Sprintf("goroutine leak: %d goroutines outlived the sweep", delta))
	}
	if len(outs) != len(exps) {
		sweep.Violations = append(sweep.Violations,
			fmt.Sprintf("report truncated: %d outcomes for %d experiments", len(outs), len(exps)))
		return sweep, false
	}
	for i, out := range outs {
		row := chaosIDReport{
			ID:       exps[i].ID,
			Fault:    in.Decide(exps[i].ID).Kind.String(),
			Attempts: in.Attempts(exps[i].ID),
		}
		if out.Err != nil {
			row.Error = out.Err.Error()
			sweep.Failed++
		}
		sweep.IDs = append(sweep.IDs, row)
		// Well-formedness: order preserved, and every envelope either
		// carries an error or a renderable table, and serialises cleanly.
		if out.ID != exps[i].ID {
			sweep.Violations = append(sweep.Violations,
				fmt.Sprintf("report order broken: slot %d has %s, want %s", i, out.ID, exps[i].ID))
		}
		env := lpmem.Report{Experiment: exps[i], Outcome: out}.JSON()
		if env.Error == "" && (len(env.Header) == 0 || len(env.Rows) == 0) {
			sweep.Violations = append(sweep.Violations,
				fmt.Sprintf("%s: envelope has neither error nor table", exps[i].ID))
		}
		if _, err := json.Marshal(env); err != nil {
			sweep.Violations = append(sweep.Violations,
				fmt.Sprintf("%s: envelope does not serialise: %v", exps[i].ID, err))
		}
	}
	return sweep, false
}

// corruptResult is the Corrupt-fault hook: it flips one table cell of a
// successful result to garbage, leaving the envelope structurally valid.
func corruptResult(res *lpmem.Result, r *rand.Rand) *lpmem.Result {
	if res != nil && res.Table != nil {
		faultinject.CorruptTableCell(res.Table, r)
	}
	return res
}

// crossRunViolations compares sweeps pairwise: identical seeds must give
// identical fault placement, attempt counts and failure patterns.
func crossRunViolations(sweeps []chaosSweep) []string {
	var v []string
	if len(sweeps) < 2 {
		return v
	}
	ref := sweeps[0]
	for run := 1; run < len(sweeps); run++ {
		cur := sweeps[run]
		if len(cur.IDs) != len(ref.IDs) {
			v = append(v, fmt.Sprintf("run %d: %d rows vs %d in run 1", run+1, len(cur.IDs), len(ref.IDs)))
			continue
		}
		for i := range ref.IDs {
			a, b := ref.IDs[i], cur.IDs[i]
			if a.ID != b.ID || a.Fault != b.Fault {
				v = append(v, fmt.Sprintf("run %d: fault placement moved: %s=%s vs %s=%s",
					run+1, a.ID, a.Fault, b.ID, b.Fault))
			}
			if a.Attempts != b.Attempts {
				v = append(v, fmt.Sprintf("run %d: %s attempts %d vs %d", run+1, a.ID, b.Attempts, a.Attempts))
			}
			if (a.Error == "") != (b.Error == "") {
				v = append(v, fmt.Sprintf("run %d: %s outcome flipped (%q vs %q)", run+1, a.ID, a.Error, b.Error))
			}
		}
	}
	return v
}

// renderChaos prints the human-readable sweep summary.
func renderChaos(w io.Writer, sweeps []chaosSweep, violations []string) {
	for i, s := range sweeps {
		fmt.Fprintf(w, "sweep %d: %d experiments, %d failed, goroutine delta %d\n",
			i+1, len(s.IDs), s.Failed, s.GoroutineDelta)
		fmt.Fprintf(w, "  faults injected: %v\n", s.FaultCounts)
		fmt.Fprintf(w, "  engine: executed=%d retries=%d panics=%d breaker_opens=%d\n",
			s.Metrics.Executed, s.Metrics.Retries, s.Metrics.Panics, s.Metrics.BreakerOpens)
		for _, row := range s.IDs {
			if row.Fault == "none" && row.Error == "" {
				continue
			}
			status := "recovered"
			if row.Error != "" {
				status = "FAILED"
			}
			fmt.Fprintf(w, "  %-4s fault=%-9s attempts=%d %s\n", row.ID, row.Fault, row.Attempts, status)
		}
		for _, v := range s.Violations {
			fmt.Fprintf(w, "  VIOLATION: %s\n", v)
		}
	}
	for _, v := range violations {
		fmt.Fprintf(w, "CROSS-RUN VIOLATION: %s\n", v)
	}
}
