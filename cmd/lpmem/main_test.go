package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"lpmem"
)

var update = flag.Bool("update", false, "rewrite golden files")

// durationRE blanks the only non-deterministic envelope field so JSON
// output can be golden-tested byte-for-byte.
var durationRE = regexp.MustCompile(`"duration_ms": [0-9.e+-]+`)

func normalize(b []byte) []byte {
	return durationRE.ReplaceAll(b, []byte(`"duration_ms": 0`))
}

// TestRunJSONGolden: `lpmem run -json E16` must match the checked-in
// golden envelope (modulo wall time). Regenerate with `go test
// ./cmd/lpmem -run Golden -update` after a deliberate registry change.
func TestRunJSONGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"run", "-json", "E16"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := normalize(out.Bytes())

	golden := filepath.Join("testdata", "run_e16.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The output must also be structurally valid.
	var envs []lpmem.ResultJSON
	if err := json.Unmarshal(out.Bytes(), &envs); err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0].ID != "E16" || len(envs[0].Rows) == 0 {
		t.Fatalf("envelope: %+v", envs)
	}
}

// TestRunJSONAllGolden: `lpmem run -json all` must reproduce the
// checked-in full-registry envelope byte-for-byte (modulo wall time).
// This locks the complete JSON surface shipped in PR 1 — every
// experiment's id, title, claim, summary, header and rows, and the array
// framing lpmemd shares — so an envelope change can only happen
// deliberately. Regenerate with `go test ./cmd/lpmem -run Golden -update`.
func TestRunJSONAllGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run; skipped in -short mode")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"run", "-json", "all"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := normalize(out.Bytes())

	golden := filepath.Join("testdata", "run_all.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("full-registry golden mismatch (run with -update after a deliberate change)\n--- got ---\n%.2000s\n--- want ---\n%.2000s", got, want)
	}

	var envs []lpmem.ResultJSON
	if err := json.Unmarshal(out.Bytes(), &envs); err != nil {
		t.Fatal(err)
	}
	if len(envs) != len(lpmem.Experiments()) {
		t.Fatalf("envelope count %d, want %d", len(envs), len(lpmem.Experiments()))
	}
	for i, exp := range lpmem.Experiments() {
		if envs[i].ID != exp.ID || envs[i].Error != "" || len(envs[i].Rows) == 0 {
			t.Fatalf("envelope %d: %+v", i, envs[i])
		}
	}
}

// TestRunTextOutput: the default text rendering keeps its table shape.
func TestRunTextOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"run", "E16"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"=== E16:", "paper claim:", ">>> "} {
		if !strings.Contains(s, want) {
			t.Fatalf("text output missing %q:\n%s", want, s)
		}
	}
}

// TestRunUnknownExperiment: unknown IDs exit 1 with a diagnostic.
func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"run", "E99"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut.String(), "E99") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

// TestListAndUsage: `list` covers the registry; bad commands exit 2.
func TestListAndUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if got := strings.Count(out.String(), "\n"); got != len(lpmem.Experiments()) {
		t.Fatalf("list printed %d lines", got)
	}
	if code := run([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("bogus command exit %d", code)
	}
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("empty args exit %d", code)
	}
}
