package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chaosJSON mirrors the -json report shape the test asserts on.
type chaosJSON struct {
	Sweeps []struct {
		Failed         int               `json:"failed"`
		GoroutineDelta int               `json:"goroutine_delta"`
		FaultCounts    map[string]uint64 `json:"fault_counts"`
		Experiments    []struct {
			ID       string `json:"id"`
			Fault    string `json:"fault"`
			Attempts int    `json:"attempts"`
			Error    string `json:"error,omitempty"`
		} `json:"experiments"`
		Violations []string `json:"violations,omitempty"`
	} `json:"sweeps"`
	Violations []string `json:"violations,omitempty"`
}

// TestChaosSubsetDeterministic: a seeded sweep over fast experiments
// exits 0, reports zero violations and leaks, and places at least one
// fault at rate 1.
func TestChaosSubsetDeterministic(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"chaos", "-seed", "1", "-rate", "1", "-runs", "2", "-json",
		"-maxdelay", "5ms", "E12", "E16", "E13", "E5"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	// stdout is the JSON document followed by the OK line; decode greedily.
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	var rep chaosJSON
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, out.String())
	}
	if len(rep.Sweeps) != 2 || len(rep.Violations) != 0 {
		t.Fatalf("report: %+v", rep)
	}
	for i, s := range rep.Sweeps {
		if len(s.Violations) != 0 || s.GoroutineDelta != 0 {
			t.Fatalf("sweep %d: %+v", i, s)
		}
		if len(s.Experiments) != 4 {
			t.Fatalf("sweep %d rows: %+v", i, s.Experiments)
		}
		var faulted int
		for _, e := range s.Experiments {
			if e.Fault != "none" {
				faulted++
			}
		}
		if faulted != 4 {
			t.Fatalf("sweep %d: rate 1 faulted only %d of 4", i, faulted)
		}
	}
	// Determinism: both sweeps agree row-by-row on fault and attempts.
	for i := range rep.Sweeps[0].Experiments {
		a, b := rep.Sweeps[0].Experiments[i], rep.Sweeps[1].Experiments[i]
		if a.ID != b.ID || a.Fault != b.Fault || a.Attempts != b.Attempts {
			t.Fatalf("sweeps diverge at row %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestChaosSeedMovesFaults: different seeds produce different placements
// over the same experiment set.
func TestChaosSeedMovesFaults(t *testing.T) {
	placements := func(seed string) string {
		var out, errOut bytes.Buffer
		code := run([]string{"chaos", "-seed", seed, "-rate", "0.5", "-runs", "1", "-json",
			"-maxdelay", "2ms", "E12", "E16", "E13", "E5", "E6", "E15"}, &out, &errOut)
		if code != 0 {
			t.Fatalf("seed %s exit %d: %s", seed, code, errOut.String())
		}
		var rep chaosJSON
		if err := json.NewDecoder(bytes.NewReader(out.Bytes())).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, e := range rep.Sweeps[0].Experiments {
			sb.WriteString(e.ID + "=" + e.Fault + ";")
		}
		return sb.String()
	}
	if placements("1") == placements("7") {
		t.Fatal("seeds 1 and 7 produced identical fault placement")
	}
}

// TestChaosUsageErrors: bad plans and rates exit 2.
func TestChaosUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"chaos", "-plan", "meteor"}, &out, &errOut); code != 2 {
		t.Fatalf("bad plan exit %d", code)
	}
	if !strings.Contains(errOut.String(), "unknown fault kind") {
		t.Fatalf("stderr: %s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"chaos", "-rate", "1.5"}, &out, &errOut); code != 2 {
		t.Fatalf("bad rate exit %d", code)
	}
	if code := run([]string{"chaos", "E99"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown id exit %d", code)
	}
}
