package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lpmem"
	"lpmem/internal/httpapi"
	"lpmem/internal/runner"
)

// lgServer starts one in-process lpmemd replica for loadgen to drive.
func lgServer(t *testing.T, opts ...httpapi.Option) *httptest.Server {
	t.Helper()
	eng := lpmem.NewEngine(runner.Options{Workers: 2})
	ts := httptest.NewServer(httpapi.New(eng, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadgenClosedLoop: a short closed-loop burst against a healthy
// replica reports only successes and exits 0.
func TestLoadgenClosedLoop(t *testing.T) {
	ts := lgServer(t)
	var out, errOut bytes.Buffer
	code := run([]string{"loadgen",
		"-addr", ts.URL,
		"-clients", "2",
		"-duration", "300ms",
		"-ids", "E17",
		"-mix", "one=4,list=1,health=1",
		"-probe", "2s",
		"-json",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	// Output is a JSON report followed by the summary line.
	body := out.String()
	idx := strings.LastIndex(body, "loadgen: total=")
	if idx < 0 {
		t.Fatalf("missing summary line:\n%s", body)
	}
	var rep struct {
		Requests int     `json:"requests"`
		OK       int     `json:"ok"`
		Shed     int     `json:"shed"`
		Failed   int     `json:"failed"`
		RPS      float64 `json:"rps"`
		P99MS    float64 `json:"p99_ms"`
		Kinds    []struct {
			Kind     string `json:"kind"`
			Requests int    `json:"requests"`
		} `json:"kinds"`
	}
	if err := json.Unmarshal([]byte(body[:idx]), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, body)
	}
	if rep.Requests == 0 || rep.OK != rep.Requests || rep.Shed != 0 || rep.Failed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.RPS <= 0 || rep.P99MS <= 0 {
		t.Fatalf("derived stats: %+v", rep)
	}
	if len(rep.Kinds) == 0 {
		t.Fatal("no per-kind breakdown")
	}
}

// TestLoadgenRequestCapAndRate: -requests bounds the total issued even
// in open-loop mode.
func TestLoadgenRequestCap(t *testing.T) {
	ts := lgServer(t)
	var out, errOut bytes.Buffer
	code := run([]string{"loadgen",
		"-addr", ts.URL,
		"-clients", "3",
		"-duration", "10s",
		"-requests", "25",
		"-ids", "E17",
		"-mix", "one=1",
		"-json",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var rep struct {
		Requests int `json:"requests"`
	}
	body := out.String()
	idx := strings.LastIndex(body, "loadgen: total=")
	if err := json.Unmarshal([]byte(body[:idx]), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Requests > 25 {
		t.Fatalf("request cap not honoured: %d", rep.Requests)
	}
}

// TestLoadgenVerifySheds: driving an overloaded replica sheds requests,
// and -verify agrees with the server's own accounting.
func TestLoadgenVerifySheds(t *testing.T) {
	ts := lgServer(t,
		httpapi.WithAdmission(1, 0),
		httpapi.WithServiceDelay(30*time.Millisecond),
	)
	var out, errOut bytes.Buffer
	code := run([]string{"loadgen",
		"-addr", ts.URL,
		"-clients", "6",
		"-duration", "500ms",
		"-ids", "E17",
		"-mix", "one=1",
		"-verify",
		"-json",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var rep struct {
		Shed       int     `json:"shed"`
		Failed     int     `json:"failed"`
		ServerShed *uint64 `json:"server_shed"`
	}
	body := out.String()
	idx := strings.LastIndex(body, "loadgen: total=")
	if err := json.Unmarshal([]byte(body[:idx]), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatal("overloaded replica shed nothing")
	}
	if rep.Failed != 0 {
		t.Fatalf("sheds must not count as failures: %+v", rep)
	}
	if rep.ServerShed == nil || int(*rep.ServerShed) != rep.Shed {
		t.Fatalf("verify mismatch: %+v", rep)
	}
}

// TestLoadgenUsageErrors: bad mixes and client counts are usage errors.
func TestLoadgenUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"loadgen", "-mix", "bogus=1"}, &out, &errOut); code != 2 {
		t.Fatalf("bad mix: exit %d", code)
	}
	if code := run([]string{"loadgen", "-clients", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("zero clients: exit %d", code)
	}
}
