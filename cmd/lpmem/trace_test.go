package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTemp drops content into a temp file and returns its path.
func writeTemp(t *testing.T, name string, content []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const sampleText = "# hand-crafted\nR 10 4 ff\nW 20 2 1\nF 0 4 deadbeef\nR ffffffff 1 0\n"

// canonText is sampleText after one parse/serialise cycle (comments
// dropped): the canonical form round-trips must reproduce byte-for-byte.
const canonText = "R 10 4 ff\nW 20 2 1\nF 0 4 deadbeef\nR ffffffff 1 0\n"

// TestTraceKernelDump: the original `lpmem trace <kernel>` form still
// emits a parseable text trace.
func TestTraceKernelDump(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"trace", "fir"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if out.Len() == 0 || !strings.ContainsAny(out.String()[:1], "RWF") {
		t.Fatalf("kernel dump does not look like a text trace: %.80q", out.String())
	}
	if code := run([]string{"trace", "nosuchkernel"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown kernel exit %d", code)
	}
	if code := run([]string{"trace", "fir", "notanumber"}, &out, &errOut); code != 2 {
		t.Fatalf("bad seed exit %d", code)
	}
}

// TestTraceConvertRoundTrip: text -> binary -> text must be lossless
// and byte-identical to the canonical text form, and the intermediate
// file must carry the binary magic.
func TestTraceConvertRoundTrip(t *testing.T) {
	txt := writeTemp(t, "in.txt", []byte(sampleText))
	bin := filepath.Join(t.TempDir(), "out.lpmt")
	var out, errOut bytes.Buffer
	if code := run([]string{"trace", "convert", "-i", txt, "-o", bin}, &out, &errOut); code != 0 {
		t.Fatalf("to-binary exit %d, stderr: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("LPMT")) {
		t.Fatalf("converted file lacks LPMT magic: %x", raw[:8])
	}
	out.Reset()
	if code := run([]string{"trace", "convert", "-i", bin, "-o", "-"}, &out, &errOut); code != 0 {
		t.Fatalf("to-text exit %d, stderr: %s", code, errOut.String())
	}
	if out.String() != canonText {
		t.Fatalf("round trip changed the trace:\n got %q\nwant %q", out.String(), canonText)
	}
}

// TestTraceConvertExplicitTarget: -to overrides auto-detection, so
// text -> text is a canonicaliser.
func TestTraceConvertExplicitTarget(t *testing.T) {
	txt := writeTemp(t, "in.txt", []byte(sampleText))
	var out, errOut bytes.Buffer
	if code := run([]string{"trace", "convert", "-i", txt, "-to", "text"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if out.String() != canonText {
		t.Fatalf("canonicalise: got %q, want %q", out.String(), canonText)
	}
	if code := run([]string{"trace", "convert", "-to", "yaml"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -to exit %d", code)
	}
	if code := run([]string{"trace", "convert", "-i", filepath.Join(t.TempDir(), "missing")}, &out, &errOut); code != 1 {
		t.Fatalf("missing input exit %d", code)
	}
}

// TestTraceCat prints both formats as identical text.
func TestTraceCat(t *testing.T) {
	txt := writeTemp(t, "in.txt", []byte(sampleText))
	bin := filepath.Join(t.TempDir(), "out.lpmt")
	var out, errOut bytes.Buffer
	if code := run([]string{"trace", "convert", "-i", txt, "-o", bin}, &out, &errOut); code != 0 {
		t.Fatalf("convert exit %d: %s", code, errOut.String())
	}
	var fromText, fromBin bytes.Buffer
	if code := run([]string{"trace", "cat", txt}, &fromText, &errOut); code != 0 {
		t.Fatalf("cat text exit %d: %s", code, errOut.String())
	}
	if code := run([]string{"trace", "cat", bin}, &fromBin, &errOut); code != 0 {
		t.Fatalf("cat binary exit %d: %s", code, errOut.String())
	}
	if fromText.String() != canonText || fromBin.String() != canonText {
		t.Fatalf("cat output diverged:\n text %q\n bin  %q\nwant %q", fromText.String(), fromBin.String(), canonText)
	}
}

// TestTraceInfo reports format, counts and range for both formats.
func TestTraceInfo(t *testing.T) {
	txt := writeTemp(t, "in.txt", []byte(sampleText))
	bin := filepath.Join(t.TempDir(), "out.lpmt")
	var out, errOut bytes.Buffer
	if code := run([]string{"trace", "convert", "-i", txt, "-o", bin}, &out, &errOut); code != 0 {
		t.Fatalf("convert exit %d: %s", code, errOut.String())
	}
	out.Reset()
	if code := run([]string{"trace", "info", txt}, &out, &errOut); code != 0 {
		t.Fatalf("info text exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"format:     text", "accesses:   4", "reads:      2", "writes:     1", "fetches:    1", "addr range: [0x0, 0xffffffff]"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("info(text) missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := run([]string{"trace", "info", bin}, &out, &errOut); code != 0 {
		t.Fatalf("info binary exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"format:     binary (LPMT v1)", "accesses:   4", "blocks:     1", "file bytes:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("info(binary) missing %q:\n%s", want, out.String())
		}
	}
}

// TestTraceReplayFormatEquivalence is the CLI face of the CI trace
// stage: replaying the same trace in both formats must print identical
// cache statistics.
func TestTraceReplayFormatEquivalence(t *testing.T) {
	// A kernel trace gives the replay real locality structure.
	var dump, errOut bytes.Buffer
	if code := run([]string{"trace", "dct"}, &dump, &errOut); code != 0 {
		t.Fatalf("kernel dump exit %d: %s", code, errOut.String())
	}
	txt := writeTemp(t, "dct.txt", dump.Bytes())
	bin := filepath.Join(t.TempDir(), "dct.lpmt")
	var out bytes.Buffer
	if code := run([]string{"trace", "convert", "-i", txt, "-o", bin}, &out, &errOut); code != 0 {
		t.Fatalf("convert exit %d: %s", code, errOut.String())
	}
	var fromText, fromBin bytes.Buffer
	if code := run([]string{"trace", "replay", txt}, &fromText, &errOut); code != 0 {
		t.Fatalf("replay text exit %d: %s", code, errOut.String())
	}
	if code := run([]string{"trace", "replay", bin}, &fromBin, &errOut); code != 0 {
		t.Fatalf("replay binary exit %d: %s", code, errOut.String())
	}
	if fromText.String() != fromBin.String() {
		t.Fatalf("replay stats diverged between formats:\n text: %s bin:  %s", fromText.String(), fromBin.String())
	}
	if !strings.HasPrefix(fromText.String(), "accesses=") || !strings.Contains(fromText.String(), "hitrate=") {
		t.Fatalf("replay output shape: %s", fromText.String())
	}
	// Geometry flags change the outcome but not the equivalence.
	fromText.Reset()
	fromBin.Reset()
	args := []string{"trace", "replay", "-sets", "8", "-ways", "1", "-line", "16", "-write-through"}
	if code := run(append(args, txt), &fromText, &errOut); code != 0 {
		t.Fatalf("replay text (flags) exit %d: %s", code, errOut.String())
	}
	if code := run(append(args, bin), &fromBin, &errOut); code != 0 {
		t.Fatalf("replay binary (flags) exit %d: %s", code, errOut.String())
	}
	if fromText.String() != fromBin.String() {
		t.Fatalf("flagged replay stats diverged:\n text: %s bin:  %s", fromText.String(), fromBin.String())
	}
	// Bad geometry is a runtime error, not a panic.
	if code := run([]string{"trace", "replay", "-sets", "3", txt}, &out, &errOut); code != 1 {
		t.Fatalf("bad geometry exit %d", code)
	}
}

// TestTraceUsageErrors: arity and argument validation.
func TestTraceUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"trace"}, &out, &errOut); code != 2 {
		t.Fatalf("bare trace exit %d", code)
	}
	if code := run([]string{"trace", "info"}, &out, &errOut); code != 2 {
		t.Fatalf("info arity exit %d", code)
	}
	if code := run([]string{"trace", "cat"}, &out, &errOut); code != 2 {
		t.Fatalf("cat arity exit %d", code)
	}
	if code := run([]string{"trace", "replay"}, &out, &errOut); code != 2 {
		t.Fatalf("replay arity exit %d", code)
	}
	if code := run([]string{"trace", "convert", "-i", "a", "-o", "b", "extra"}, &out, &errOut); code != 2 {
		t.Fatalf("convert extra args exit %d", code)
	}
}
