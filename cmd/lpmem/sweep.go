package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"lpmem/internal/stats"
	"lpmem/internal/sweep"
)

// sweepEnvelope is the `lpmem sweep -json` wire format. It carries no
// wall-clock field on purpose: a sweep's JSON output is a pure function
// of (space, points, seed, store state), so it can be golden-tested
// byte-for-byte like the experiment envelopes.
type sweepEnvelope struct {
	Space       string       `json:"space"`
	Version     string       `json:"version"`
	Objectives  []string     `json:"objectives"`
	Axes        []string     `json:"axes"`
	Total       int          `json:"total"`
	Evaluated   int          `json:"evaluated"`
	Cached      int          `json:"cached"`
	Failed      int          `json:"failed"`
	Frontier    *stats.Table `json:"frontier"`
	Sensitivity *stats.Table `json:"sensitivity"`
	Results     *stats.Table `json:"results"`
}

// runSweep implements `lpmem sweep`: enumerate or sample the named
// design space, evaluate it in parallel (incrementally against -resume's
// store), and report the Pareto frontier and per-axis sensitivity.
func runSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	space := fs.String("space", "banks", "design space to sweep (see -list)")
	points := fs.Int("points", 0, "Latin-hypercube sample size (0 = full grid)")
	seed := fs.Int64("seed", 1, "sampling seed (only used with -points)")
	resume := fs.String("resume", "", "JSONL result store: reuse evaluated points, append new ones")
	pareto := fs.Bool("pareto", false, "print only the Pareto frontier table")
	objectives := fs.String("objectives", "", "comma list of frontier objectives (default energy_pj,latency,area)")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "points per scheduling batch (0 = 32)")
	timeout := fs.Duration("timeout", 0, "per-point deadline (0 = none)")
	jsonOut := fs.Bool("json", false, "emit the sweep envelope as JSON")
	list := fs.Bool("list", false, "list available design spaces and exit")
	verbose := fs.Bool("v", false, "stream per-batch progress to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, ad := range sweep.Adapters() {
			sp := ad.Space()
			fmt.Fprintf(stdout, "%-8s %4d grid points, %d axes  %s\n",
				ad.Name(), sp.GridSize(), len(sp.Axes), ad.Describe())
			for _, a := range sp.Axes {
				switch a.Kind {
				case sweep.EnumAxis:
					fmt.Fprintf(stdout, "           %-8s enum  %v\n", a.Name, a.Values)
				default:
					fmt.Fprintf(stdout, "           %-8s %-5s [%g, %g]\n", a.Name, a.Kind, a.Min, a.Max)
				}
			}
			for _, c := range sp.Constraints {
				fmt.Fprintf(stdout, "           constraint: %s\n", c.Name)
			}
		}
		return 0
	}

	ad, err := sweep.ByName(*space)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	objs, err := sweep.ParseObjectives(*objectives)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	sp := ad.Space()
	var pts []sweep.Point
	if *points > 0 {
		pts, err = sp.Sample(*points, *seed)
	} else {
		pts, err = sp.Grid()
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var store *sweep.Store
	if *resume != "" {
		store, err = sweep.OpenStore(*resume)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() { _ = store.Close() }()
		if n := store.Skipped(); n > 0 {
			fmt.Fprintf(stderr, "sweep: store %s: skipped %d torn/unparseable line(s)\n", *resume, n)
		}
	}

	cfg := sweep.Config{
		Workers:   *parallel,
		BatchSize: *batch,
		Timeout:   *timeout,
		Store:     store,
	}
	if *verbose {
		cfg.OnProgress = func(p sweep.Progress) {
			fmt.Fprintf(stderr, "sweep: batch %d/%d, %d/%d points (cached %d, failed %d)\n",
				p.Batch, p.Batches, p.Done, p.Total, p.Cached, p.Failed)
		}
	}
	res, err := sweep.Run(context.Background(), ad, pts, cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	front := sweep.Frontier(res.Outcomes, objs)
	frontTable, err := sweep.FrontierTable(sp.Axes, front, objs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	summary := fmt.Sprintf("space %s: %d points (evaluated %d, cached %d, failed %d), frontier %d",
		ad.Name(), res.Total, res.Evaluated, res.Cached, res.Failed, len(front))

	switch {
	case *jsonOut:
		axes := make([]string, len(sp.Axes))
		for i, a := range sp.Axes {
			axes[i] = a.Name
		}
		env := sweepEnvelope{
			Space:       ad.Name(),
			Version:     sweep.StoreVersion,
			Objectives:  objs,
			Axes:        axes,
			Total:       res.Total,
			Evaluated:   res.Evaluated,
			Cached:      res.Cached,
			Failed:      res.Failed,
			Frontier:    frontTable,
			Sensitivity: sweep.Sensitivity(sp.Axes, res.Outcomes),
			Results:     sweep.ResultsTable(sp.Axes, res.Outcomes),
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	case *pareto:
		// Frontier only on stdout — the CI resume gate byte-diffs this.
		fmt.Fprintln(stderr, summary)
		fmt.Fprint(stdout, frontTable.String())
	default:
		fmt.Fprintln(stdout, summary)
		fmt.Fprintf(stdout, "\nPareto frontier over %v:\n", objs)
		fmt.Fprint(stdout, frontTable.String())
		fmt.Fprintln(stdout, "\nPer-axis sensitivity:")
		fmt.Fprint(stdout, sweep.Sensitivity(sp.Axes, res.Outcomes).String())
	}
	if res.Failed > 0 {
		fmt.Fprintf(stderr, "lpmem: %d of %d sweep points failed\n", res.Failed, res.Total)
		return 1
	}
	return 0
}
