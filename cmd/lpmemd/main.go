// Command lpmemd serves the DATE'03 reproduction experiments over HTTP.
// Results are computed on a bounded parallel worker pool, cached by
// experiment ID + registry version, and exposed as JSON.
//
// Usage:
//
//	lpmemd [-addr :8093] [-parallel N] [-timeout 2m]
//
// Endpoints:
//
//	GET  /experiments        list the registry
//	GET  /experiments/E7     run (or serve cached) one experiment
//	POST /run?ids=E1,E7      run a batch in parallel ("all" = registry)
//	GET  /metrics            engine + HTTP counters
//	GET  /healthz            liveness probe
//
// The server drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lpmem"
	"lpmem/internal/httpapi"
	"lpmem/internal/runner"
)

func main() {
	addr := flag.String("addr", ":8093", "listen address")
	parallel := flag.Int("parallel", 0, "experiment worker-pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-experiment deadline (0 = none)")
	flag.Parse()

	eng := lpmem.NewEngine(runner.Options{Workers: *parallel, Timeout: *timeout})
	api := httpapi.New(eng)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "lpmemd: serving %d experiments on %s (workers=%d, registry %s)\n",
		len(lpmem.Experiments()), *addr, eng.Workers(), lpmem.RegistryVersion)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "lpmemd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "lpmemd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "lpmemd: shutdown: %v\n", err)
		os.Exit(1)
	}
	m := eng.Metrics()
	fmt.Fprintf(os.Stderr, "lpmemd: done (executed=%d cache_hits=%d failures=%d)\n",
		m.Executed, m.CacheHits, m.Failures)
}
