// Command lpmemd serves the DATE'03 reproduction experiments over HTTP.
// Results are computed on a bounded parallel worker pool, cached by
// experiment ID + registry version, and exposed as JSON.
//
// Usage:
//
//	lpmemd [-addr :8093] [-parallel N] [-timeout 2m] [-retries 2]
//	       [-breaker-threshold 3] [-breaker-cooldown 30s]
//	       [-request-timeout 5m]
//	       [-store results.jsonl] [-sweep-store sweeps.jsonl]
//	       [-admit N] [-admit-queue N] [-service-delay 0]
//	       [-access-log path|-]
//
// Endpoints:
//
//	GET  /experiments        list the registry
//	GET  /experiments/E7     run (or serve cached/stored) one experiment
//	POST /run?ids=E1,E7      run a batch in parallel ("all" = registry);
//	                         &stream=1 streams per-result SSE events
//	POST /sweeps             start a design-space sweep in the background;
//	                         ?stream=1 follows its progress over SSE
//	GET  /sweeps             list accepted sweeps
//	GET  /sweeps/spaces      list the sweepable design spaces
//	GET  /sweeps/S1          sweep status + Pareto frontier when settled;
//	                         ?stream=1 follows progress over SSE
//	GET  /metrics            engine + HTTP + admission + store counters
//	GET  /healthz            health probe; 503 "degraded" while any
//	                         experiment's circuit breaker is open
//
// Horizontal scaling: -store points replicas at one shared append-only
// result file, so an experiment computed by any replica is served warm
// by all of them; -sweep-store does the same for sweep evaluations.
// -admit bounds how many requests run at once (with -admit-queue more
// allowed to wait); beyond that the replica sheds load with 429 +
// Retry-After instead of letting latency collapse. -service-delay adds
// a synthetic per-admitted-request delay for load experiments on small
// hosts; production deployments leave it at 0.
//
// Failed experiments degrade responses instead of killing them: batch
// bodies carry a per-ID error envelope and a status of ok/partial/failed,
// transient failures are retried with seeded backoff, and repeatedly
// failing experiments trip a per-ID circuit breaker that fails fast
// until its cooldown expires.
//
// The server drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lpmem"
	"lpmem/internal/httpapi"
	"lpmem/internal/resultstore"
	"lpmem/internal/runner"
	"lpmem/internal/sweep"
)

func main() {
	addr := flag.String("addr", ":8093", "listen address")
	parallel := flag.Int("parallel", 0, "experiment worker-pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-experiment attempt deadline (0 = none)")
	retries := flag.Int("retries", 2, "retry budget per experiment run (0 = no retries)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that open an experiment's circuit breaker (0 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker fails fast before a probe")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-HTTP-request run deadline (0 = none)")
	storePath := flag.String("store", "", "shared result-store file for multi-replica serving (\"\" = none)")
	storeSync := flag.Bool("store-sync", false, "fsync the result store after every append")
	sweepStorePath := flag.String("sweep-store", "", "shared sweep-store file; \"\" keeps sweeps in memory")
	admit := flag.Int("admit", 0, "max concurrently admitted requests (0 = unbounded, admission disabled)")
	admitQueue := flag.Int("admit-queue", 0, "requests allowed to wait for an admission slot before shedding")
	serviceDelay := flag.Duration("service-delay", 0, "synthetic per-admitted-request delay for load experiments (0 = off)")
	accessLog := flag.String("access-log", "", "structured access-log destination: a path, or \"-\" for stderr")
	flag.Parse()

	eng := lpmem.NewEngine(runner.Options{
		Workers: *parallel, Timeout: *timeout,
		Retries:          *retries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	opts := []httpapi.Option{
		httpapi.WithRequestTimeout(*requestTimeout),
		httpapi.WithAdmission(*admit, *admitQueue),
		httpapi.WithServiceDelay(*serviceDelay),
	}
	if *storePath != "" {
		store, err := resultstore.Open(*storePath, resultstore.Options{Sync: *storeSync})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpmemd: open result store: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = store.Close() }()
		opts = append(opts, httpapi.WithResultStore(store))
	}
	if *sweepStorePath != "" {
		ss, err := sweep.OpenStore(*sweepStorePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpmemd: open sweep store: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = ss.Close() }()
		opts = append(opts, httpapi.WithSweepStore(ss))
	}
	if *accessLog != "" {
		var w io.Writer = os.Stderr
		if *accessLog != "-" {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lpmemd: open access log: %v\n", err)
				os.Exit(1)
			}
			defer func() { _ = f.Close() }()
			w = f
		}
		opts = append(opts, httpapi.WithAccessLog(w))
	}
	api := httpapi.New(eng, opts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "lpmemd: serving %d experiments on %s (workers=%d, registry %s)\n",
		len(lpmem.Experiments()), *addr, eng.Workers(), lpmem.RegistryVersion)
	if *storePath != "" {
		fmt.Fprintf(os.Stderr, "lpmemd: shared result store %s\n", *storePath)
	}
	if *admit > 0 {
		fmt.Fprintf(os.Stderr, "lpmemd: admission capacity=%d queue=%d\n", *admit, *admitQueue)
	}

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "lpmemd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "lpmemd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "lpmemd: shutdown: %v\n", err)
		os.Exit(1)
	}
	m := eng.Metrics()
	fmt.Fprintf(os.Stderr, "lpmemd: done (executed=%d cache_hits=%d failures=%d)\n",
		m.Executed, m.CacheHits, m.Failures)
}
