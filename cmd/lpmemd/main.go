// Command lpmemd serves the DATE'03 reproduction experiments over HTTP.
// Results are computed on a bounded parallel worker pool, cached by
// experiment ID + registry version, and exposed as JSON.
//
// Usage:
//
//	lpmemd [-addr :8093] [-parallel N] [-timeout 2m] [-retries 2]
//	       [-breaker-threshold 3] [-breaker-cooldown 30s]
//	       [-request-timeout 5m]
//
// Endpoints:
//
//	GET  /experiments        list the registry
//	GET  /experiments/E7     run (or serve cached) one experiment
//	POST /run?ids=E1,E7      run a batch in parallel ("all" = registry)
//	POST /sweeps             start a design-space sweep in the background
//	GET  /sweeps             list accepted sweeps
//	GET  /sweeps/spaces      list the sweepable design spaces
//	GET  /sweeps/S1          sweep status + Pareto frontier when settled
//	GET  /metrics            engine + HTTP counters + breaker states
//	GET  /healthz            health probe; 503 "degraded" while any
//	                         experiment's circuit breaker is open
//
// Sweeps run asynchronously on the same worker pool sizing and share an
// in-memory result store, so re-submitting a space is incremental: only
// never-evaluated points execute.
//
// Failed experiments degrade responses instead of killing them: batch
// bodies carry a per-ID error envelope and a status of ok/partial/failed,
// transient failures are retried with seeded backoff, and repeatedly
// failing experiments trip a per-ID circuit breaker that fails fast
// until its cooldown expires.
//
// The server drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lpmem"
	"lpmem/internal/httpapi"
	"lpmem/internal/runner"
)

func main() {
	addr := flag.String("addr", ":8093", "listen address")
	parallel := flag.Int("parallel", 0, "experiment worker-pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-experiment attempt deadline (0 = none)")
	retries := flag.Int("retries", 2, "retry budget per experiment run (0 = no retries)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that open an experiment's circuit breaker (0 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker fails fast before a probe")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-HTTP-request run deadline (0 = none)")
	flag.Parse()

	eng := lpmem.NewEngine(runner.Options{
		Workers: *parallel, Timeout: *timeout,
		Retries:          *retries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	api := httpapi.New(eng, httpapi.WithRequestTimeout(*requestTimeout))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "lpmemd: serving %d experiments on %s (workers=%d, registry %s)\n",
		len(lpmem.Experiments()), *addr, eng.Workers(), lpmem.RegistryVersion)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "lpmemd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "lpmemd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "lpmemd: shutdown: %v\n", err)
		os.Exit(1)
	}
	m := eng.Metrics()
	fmt.Fprintf(os.Stderr, "lpmemd: done (executed=%d cache_hits=%d failures=%d)\n",
		m.Executed, m.CacheHits, m.Failures)
}
