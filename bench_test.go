package lpmem

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"

	"lpmem/internal/runner"
)

// benchEngineOnce hoists the engine shared by every per-experiment
// benchmark: constructing one per benchmark both skewed small benchmarks
// with setup cost and left each run with its own (empty) metrics, hiding
// whether the no-cache contract actually held.
var benchEngineOnce = sync.OnceValue(func() *Engine {
	return NewEngine(runner.Options{Workers: 1, NoCache: true})
})

// benchExperiment runs one registry experiment under testing.B, routed
// through the shared runner engine (cache disabled so every iteration
// measures the full pipeline: workload execution, optimization,
// evaluation). After the loop it asserts the engine served nothing from
// cache — a benchmark that silently measured cached runs would report
// nonsense numbers. The first iteration logs the regenerated table so
// `go test -bench -v` reproduces the paper's numbers.
func benchExperiment(b *testing.B, id string) {
	exp, err := ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	eng := benchEngineOnce()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports := RunBatch(ctx, eng, []Experiment{exp})
		if err := reports[0].Outcome.Err; err != nil {
			b.Fatal(err)
		}
		if reports[0].Outcome.Cached {
			b.Fatalf("%s iteration %d served from cache; benchmarks must measure real runs", id, i)
		}
		if i == 0 {
			res := reports[0].Outcome.Value
			b.Logf("%s — %s\npaper claim: %s\n%s\n%s",
				exp.ID, exp.Title, exp.PaperClaim, res.Table.String(), res.Summary)
		}
	}
	b.StopTimer()
	if hits := eng.Metrics().CacheHits; hits != 0 {
		b.Fatalf("bench engine recorded %d cache hits; the no-cache contract is broken", hits)
	}
}

// BenchmarkRunnerAll compares a sequential full-registry run against the
// parallel worker pool; the ratio of the two is the engine's speedup and
// is tracked as part of the perf trajectory. The cache is disabled so
// both variants execute all twenty experiments every iteration.
func BenchmarkRunnerAll(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := NewEngine(runner.Options{Workers: bc.workers, NoCache: true})
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				for _, r := range RunBatch(ctx, eng, Experiments()) {
					if r.Outcome.Err != nil {
						b.Fatalf("%s: %v", r.Experiment.ID, r.Outcome.Err)
					}
					if r.Outcome.Cached {
						b.Fatalf("%s served from cache in a no-cache benchmark", r.Experiment.ID)
					}
				}
			}
			b.StopTimer()
			if hits := eng.Metrics().CacheHits; hits != 0 {
				b.Fatalf("engine recorded %d cache hits; the no-cache contract is broken", hits)
			}
		})
	}
}

// BenchmarkE1AddressClustering regenerates DATE'03 1B.1's energy table.
func BenchmarkE1AddressClustering(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2DataCompression regenerates DATE'03 1B.2's energy table.
func BenchmarkE2DataCompression(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3IMemEncoding regenerates DATE'03 1B.3's transition table.
func BenchmarkE3IMemEncoding(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4ReconfigSchedule regenerates DATE'03 1B.4's breakdown.
func BenchmarkE4ReconfigSchedule(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5ShieldedBus regenerates DATE'03 6F.3's comparison.
func BenchmarkE5ShieldedBus(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Chromatic regenerates DATE'03 8B.3's transition table.
func BenchmarkE6Chromatic(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7WayDetermination regenerates DATE'03 10E.4's power table.
func BenchmarkE7WayDetermination(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8LayerAssignment regenerates DATE'03 10F.1's energy table.
func BenchmarkE8LayerAssignment(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9StackMemory regenerates DATE'03 10F.3's cache-energy table.
func BenchmarkE9StackMemory(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10NoCMapping regenerates DATE'03 8B.2's mapping table.
func BenchmarkE10NoCMapping(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11CtgDvs regenerates DATE'03 2B.2's DVS table.
func BenchmarkE11CtgDvs(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12MRPFilter regenerates DATE'03 8B.4's adder-count table.
func BenchmarkE12MRPFilter(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13DESMasking regenerates DATE'03 2B.1's masking comparison.
func BenchmarkE13DESMasking(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14ClockTree regenerates DATE'03 1F.4's uncertainty table.
func BenchmarkE14ClockTree(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15TimingBounds regenerates DATE'03 1F.3's bounds validation.
func BenchmarkE15TimingBounds(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16BDDMinimization regenerates DATE'03 8D.2's effort table.
func BenchmarkE16BDDMinimization(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17PipelinedCache regenerates DATE'03 8E.1's MOPS table.
func BenchmarkE17PipelinedCache(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18TestCompression regenerates DATE'03 2C's compression tables.
func BenchmarkE18TestCompression(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19CacheDesign regenerates DATE'03 8A.1's exploration table.
func BenchmarkE19CacheDesign(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20Checkpointing regenerates DATE'03 9E.3's fault-tolerance table.
func BenchmarkE20Checkpointing(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkE21CellTypes regenerates the cell-type energy inversion table.
func BenchmarkE21CellTypes(b *testing.B) { benchExperiment(b, "E21") }

// BenchmarkE22PowerGating regenerates the gating break-even table.
func BenchmarkE22PowerGating(b *testing.B) { benchExperiment(b, "E22") }

// BenchmarkE23DRAMBanking regenerates the DRAM row-buffer locality table.
func BenchmarkE23DRAMBanking(b *testing.B) { benchExperiment(b, "E23") }

// BenchmarkE24SharingPatterns regenerates the CMP sharing-pattern table.
func BenchmarkE24SharingPatterns(b *testing.B) { benchExperiment(b, "E24") }

// BenchmarkE25NUCAMapping regenerates the static-vs-distance mapping table.
func BenchmarkE25NUCAMapping(b *testing.B) { benchExperiment(b, "E25") }

// BenchmarkE26NUCACompression regenerates the compression-capacity table.
func BenchmarkE26NUCACompression(b *testing.B) { benchExperiment(b, "E26") }

// TestAllExperimentsRun is the integration test: every experiment in the
// registry must run to completion and produce a non-empty table and a
// summary mentioning the paper.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy; skipped in -short mode")
	}
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := exp.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Table == nil || len(res.Table.String()) == 0 {
				t.Fatal("empty table")
			}
			if !strings.Contains(res.Summary, "paper") {
				t.Errorf("summary should reference the paper claim: %q", res.Summary)
			}
			t.Logf("%s: %s", exp.ID, res.Summary)
		})
	}
}

// TestByIDErrors covers the registry lookup.
func TestByIDErrors(t *testing.T) {
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if e, err := ByID("E7"); err != nil || e.ID != "E7" {
		t.Fatalf("E7 lookup failed: %v", err)
	}
}
