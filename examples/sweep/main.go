// Sweep: walk a design space the way the DATE'03 authors did.
//
// The experiments replay the papers' chosen designs; this example asks
// the question that preceded those choices — across every bank count
// and block size, which memory partitions are actually worth building?
// It sweeps the full banks space in parallel, persists every evaluated
// point to a JSONL store, extracts the energy/latency/area Pareto
// frontier, and then re-runs the sweep to show that a warm store makes
// the second pass free.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"lpmem/internal/sweep"
)

func main() {
	ad, err := sweep.ByName("banks")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sp := ad.Space()
	pts, err := sp.Grid()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("space %q: %d axes, %d grid points\n", ad.Name(), len(sp.Axes), len(pts))

	dir, err := os.MkdirTemp("", "lpmem-sweep")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	storePath := filepath.Join(dir, "store.jsonl")

	// Pass 1: cold store, every point executes on the worker pool.
	res := mustRun(ad, pts, storePath)
	fmt.Printf("cold run:   evaluated %d, cached %d\n", res.Evaluated, res.Cached)

	// Pass 2: warm store, nothing executes — the incremental contract.
	res = mustRun(ad, pts, storePath)
	fmt.Printf("resume run: evaluated %d, cached %d\n\n", res.Evaluated, res.Cached)

	objectives := sweep.MetricNames()
	front := sweep.Frontier(res.Outcomes, objectives)
	table, err := sweep.FrontierTable(sp.Axes, front, objectives)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Pareto frontier over %v (%d of %d points):\n", objectives, len(front), res.Total)
	fmt.Print(table.String())

	fmt.Println("\nPer-axis sensitivity (which knob matters):")
	fmt.Print(sweep.Sensitivity(sp.Axes, res.Outcomes).String())
}

// mustRun sweeps the points against the store at path, reopening it so
// each pass sees exactly what the previous one flushed.
func mustRun(ad sweep.Adapter, pts []sweep.Point, path string) *sweep.Result {
	store, err := sweep.OpenStore(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() { _ = store.Close() }()
	res, err := sweep.Run(context.Background(), ad, pts, sweep.Config{Store: store})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}
