// Mediacodec: size the memory system of a media-codec SoC.
//
// The scenario is the one the DATE'03 1B session motivates: a battery
// powered device running filter/transform/codec kernels. The example
// builds a composite codec application from the workload suite and walks
// the full memory-energy toolbox:
//
//  1. address clustering + partitioning of the scratchpad space (1B.1)
//  2. differential write-back compression for the D-cache (1B.2)
//  3. lifetime-aware layer assignment across the hierarchy (10F.1)
package main

import (
	"fmt"
	"log"

	"lpmem/internal/cache"
	"lpmem/internal/compress"
	"lpmem/internal/core"
	"lpmem/internal/energy"
	"lpmem/internal/hier"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

func main() {
	// Build the codec application: FIR front end, DCT transform, ADPCM
	// coder, running back to back in one address space.
	parts := []string{"fir", "dct", "adpcm"}
	merged := trace.New(1 << 16)
	var regions []hier.Region
	var cycles uint64
	for _, p := range parts {
		k, err := workloads.ByName(p)
		if err != nil {
			log.Fatal(err)
		}
		inst := k.Build(7)
		res, err := workloads.Run(inst)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range res.Trace.Accesses {
			merged.Append(a)
		}
		for _, arr := range inst.Arrays {
			regions = append(regions, hier.Region{Name: p + "." + arr.Name, Base: arr.Base, Size: arr.Size})
		}
		cycles += res.Cycles
	}
	fmt.Printf("codec app: %d accesses over %d arrays\n\n", merged.Len(), len(regions))

	// --- 1. Scratchpad banking with address clustering.
	rep, err := core.Optimize(merged, cycles, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scratchpad banking (1B.1):")
	fmt.Printf("  monolithic %0.f -> partitioned %.0f -> clustered %.0f (%.1f%% vs partitioned)\n",
		float64(rep.MonolithicE), float64(rep.PartitionedE), float64(rep.ClusteredE),
		rep.SavingVsPartitioned())
	fmt.Printf("  banks: %v\n\n", rep.ClusteredPartition)

	// --- 2. Write-back compression on the D-cache boundary.
	cfg := cache.Config{Sets: 128, Ways: 4, LineSize: 32, WriteBack: true, WriteAllocate: true}
	traffic, stats, err := compress.MeasureTraffic(merged, cfg, compress.Differential{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("write-back compression (1B.2):")
	fmt.Printf("  D-cache hit rate %.3f, boundary %d lines\n", stats.HitRate(), traffic.Lines)
	fmt.Printf("  boundary bytes %d -> %d (%.1f%% saved)\n\n",
		traffic.RawBytes, traffic.CompressedBytes, 100*traffic.Saving())

	// --- 3. Layer assignment across scratchpad / SRAM / off-chip.
	infos := hier.Profile(merged, regions)
	layers := hier.DefaultLayers(energy.DefaultMemoryModel())
	off, static, lifetime, err := hier.Evaluate(infos, layers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layer assignment (10F.1):")
	fmt.Printf("  all off-chip %.0f, static greedy %.0f, lifetime-aware %.0f (%.2fx of static)\n",
		float64(off), float64(static), float64(lifetime), float64(lifetime)/float64(static))
	asg, err := hier.Assign(infos, layers, true)
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range infos {
		fmt.Printf("  %-14s %6d B  %7d accesses -> %s\n",
			in.Name, in.Size, in.Accesses(), layers[asg.Layer[in.Name]].Name)
	}
}
