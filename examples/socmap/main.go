// Socmap: system-level energy co-design of a multimedia SoC.
//
// Two system-level passes from DATE'03: map the IP cores of a video/audio
// application onto a 4x4 mesh NoC (8B.2), and voltage-schedule its control
// software, modeled as a conditional task graph, onto the embedded CPUs
// (2B.2).
package main

import (
	"fmt"
	"log"

	"lpmem/internal/ctg"
	"lpmem/internal/noc"
)

func main() {
	// --- NoC mapping.
	mesh := noc.DefaultMesh()
	graph := noc.MMSGraph()
	adhoc := mesh.CommEnergy(graph, noc.RowMajor(graph.N))
	res, err := noc.MapBnB(mesh, graph, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("NoC mapping of the multimedia core graph (4x4 mesh):")
	fmt.Printf("  ad-hoc (row major): %12.0f\n", float64(adhoc))
	fmt.Printf("  branch-and-bound:   %12.0f  (%.1f%% saved, %d nodes explored)\n",
		float64(res.Energy), 100*(1-float64(res.Energy)/float64(adhoc)), res.Visited)
	fmt.Println("  tile layout (ip@tile):")
	for y := mesh.H - 1; y >= 0; y-- {
		fmt.Print("   ")
		for x := 0; x < mesh.W; x++ {
			tile := y*mesh.W + x
			ip := -1
			for i, t := range res.Mapping {
				if t == tile {
					ip = i
					break
				}
			}
			fmt.Printf(" %3d", ip)
		}
		fmt.Println()
	}

	// --- CTG voltage scheduling of the control software.
	g := ctg.CruiseController()
	const procs = 2
	rr := ctg.RoundRobin(len(g.Tasks), procs)
	worst := 0.0
	for _, sc := range g.Scenarios() {
		if ms := g.Makespan(rr, procs, nil, sc); ms > worst {
			worst = ms
		}
	}
	g.Deadline = worst * 1.15

	nominal := g.Energy(nil)
	stretch, err := g.DVS(rr, procs)
	if err != nil {
		log.Fatal(err)
	}
	ga, err := ctg.MapGA(g, procs, ctg.DefaultGAConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconditional-task-graph voltage scheduling (2 CPUs, 1.15x deadline):")
	fmt.Printf("  nominal energy:      %8.1f\n", nominal)
	fmt.Printf("  DVS on round robin:  %8.1f  (%.1f%% saved)\n",
		g.Energy(stretch), 100*(1-g.Energy(stretch)/nominal))
	fmt.Printf("  GA mapping + DVS:    %8.1f  (%.1f%% saved)\n",
		ga.Energy, 100*(1-ga.Energy/nominal))
	fmt.Println("  per-task stretch (GA mapping):")
	for i, t := range g.Tasks {
		fmt.Printf("   %-12s cpu%d  x%.2f\n", t.Name, ga.Mapping[i], ga.Stretch[i])
	}
}
