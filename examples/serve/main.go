// Example serve: the lpmemd HTTP API end to end in one process.
//
// It starts the same handler `cmd/lpmemd` serves on a loopback listener,
// then walks the API the way a client would. Against a real daemon the
// equivalent session is:
//
//	go run ./cmd/lpmemd -addr :8093 &
//	curl -s localhost:8093/experiments | head
//	curl -s localhost:8093/experiments/E16        # first call computes
//	curl -s localhost:8093/experiments/E16        # second call is cached
//	curl -s -X POST 'localhost:8093/run?ids=E12,E16'
//	curl -s localhost:8093/metrics
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"lpmem"
	"lpmem/internal/httpapi"
	"lpmem/internal/runner"
)

func main() {
	eng := lpmem.NewEngine(runner.Options{Timeout: 2 * time.Minute})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpapi.New(eng).Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer func() { _ = srv.Close() }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("lpmemd handler listening on %s (workers=%d)\n\n", base, eng.Workers())

	show := func(label, method, path string) {
		req, err := http.NewRequest(method, base+path, nil)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		const max = 400
		if len(body) > max {
			body = append(body[:max], []byte("...\n")...)
		}
		fmt.Printf("## %s — %s %s (%s, %v)\n%s\n",
			label, method, path, resp.Status, time.Since(start).Round(time.Millisecond), body)
	}

	show("registry listing", "GET", "/experiments")
	show("run one experiment (computed)", "GET", "/experiments/E16")
	show("run it again (cache hit)", "GET", "/experiments/E16")
	show("parallel batch", "POST", "/run?ids=E12,E16")
	show("metrics", "GET", "/metrics")
}
