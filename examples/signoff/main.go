// Signoff: variation-aware timing closure of a block.
//
// Two DATE'03 timing-track tools working together: statistical timing
// bounds replace corner-based STA (1F.3), and the clock tree is rebuilt so
// the most critical register pairs share as much of their clock path as
// possible (1F.4).
package main

import (
	"fmt"
	"log"

	"lpmem/internal/clocktree"
	"lpmem/internal/ssta"
)

func main() {
	// --- Statistical timing of the logic.
	circuit := ssta.RandomCircuit(42, 10, 8)
	grid := ssta.DefaultGridFor(circuit)
	lo, hi, err := ssta.Bounds(circuit, grid)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := ssta.MonteCarlo(circuit, 5000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("statistical timing (80 gates, within-die variation):")
	fmt.Printf("  %8s %10s %10s %10s\n", "quantile", "lower", "MC exact", "upper")
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Printf("  %8.3f %10.3f %10.3f %10.3f\n",
			q, lo.Quantile(q), ssta.SampleQuantile(mc, q), hi.Quantile(q))
	}
	fmt.Printf("  sign-off at 99.9%%: clock period >= %.3f (guaranteed by the upper bound)\n\n",
		hi.Quantile(0.999))

	// --- Clock tree for the block's registers.
	var sinks []clocktree.Sink
	for i := 0; i < 24; i++ {
		sinks = append(sinks, clocktree.Sink{
			X: float64(i%6) * 20, Y: float64(i/6) * 25,
		})
	}
	pairs := []clocktree.CritPair{
		{A: 0, B: 23, Weight: 5}, // the cross-die critical path
		{A: 3, B: 20, Weight: 4},
		{A: 7, B: 16, Weight: 3},
		{A: 2, B: 9, Weight: 1},
	}
	geo, err := clocktree.BuildGeometric(sinks)
	if err != nil {
		log.Fatal(err)
	}
	crit, err := clocktree.BuildCritical(sinks, pairs)
	if err != nil {
		log.Fatal(err)
	}
	ug, err := geo.Uncertainty(pairs)
	if err != nil {
		log.Fatal(err)
	}
	uc, err := crit.Uncertainty(pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clock tree skew uncertainty (weighted, non-common path length):")
	fmt.Printf("  geometric topology:          %8.1f\n", ug)
	fmt.Printf("  criticality-driven topology: %8.1f  (%.1f%% lower)\n", uc, 100*(ug-uc)/ug)
	for _, p := range pairs {
		g, _ := geo.UncommonLength(p.A, p.B)
		c, _ := crit.UncommonLength(p.A, p.B)
		fmt.Printf("  pair (%2d,%2d) w=%.0f: %7.1f -> %7.1f\n", p.A, p.B, p.Weight, g, c)
	}
}
