// Quickstart: run one embedded kernel on the µRISC core, profile its
// memory accesses, and optimize the memory architecture with address
// clustering + partitioning — the library's primary flow — in ~30 lines.
package main

import (
	"fmt"
	"log"

	"lpmem/internal/core"
	"lpmem/internal/workloads"
)

func main() {
	// 1. Pick a workload and execute it (trace + golden-model check).
	kernel, err := workloads.ByName("histogram")
	if err != nil {
		log.Fatal(err)
	}
	res, err := workloads.Run(kernel.Build(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %s: %d instructions, %d cycles, %d memory accesses\n",
		kernel.Name, res.Retired, res.Cycles, res.Trace.Len())

	// 2. Optimize the data-memory architecture.
	report, err := core.Optimize(res.Trace, res.Cycles, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Read the results.
	fmt.Printf("monolithic SRAM energy:     %10.0f\n", float64(report.MonolithicE))
	fmt.Printf("optimal partitioning:       %10.0f\n", float64(report.PartitionedE))
	fmt.Printf("clustering + partitioning:  %10.0f\n", float64(report.ClusteredE))
	fmt.Printf("clustering saves %.1f%% vs partitioning alone, %.1f%% vs monolithic\n",
		report.SavingVsPartitioned(), report.SavingVsMonolithic())
	fmt.Printf("bank layout: %v\n", report.ClusteredPartition)
}
