// Busdesign: choose encodings for the buses of an SoC.
//
// Two decisions from the DATE'03 interconnect sessions: which code to put
// on the external address bus (energy and signal integrity, 6F.3), and
// whether chromatic encoding pays off on the DVI pixel link (8B.3).
package main

import (
	"fmt"

	"lpmem/internal/buscode"
	"lpmem/internal/energy"
)

func main() {
	// --- Address bus: mostly sequential line refills with rare jumps.
	addrs := make([]uint32, 0, 30000)
	addr := uint32(0x10_0000)
	for i := 0; i < 30000; i++ {
		if i%200 == 199 { // a jump every ~200 refills
			addr = uint32(0x40_0000 + i*64)
		} else {
			addr += 32
		}
		addrs = append(addrs, addr)
	}
	bus := energy.DefaultBusModel()
	fmt.Println("external address bus (32-bit, line refill stream):")
	fmt.Printf("  %-10s %5s %12s %10s %10s %9s\n", "scheme", "lines", "transitions", "couplings", "energy", "overhead")
	for _, enc := range []buscode.Encoder{
		&buscode.Binary{},
		&buscode.Gray{},
		&buscode.T0{Stride: 32},
		&buscode.BusInvert{},
		&buscode.Shielded{Stride: 32},
	} {
		m := buscode.Measure(enc, addrs)
		e := bus.TransitionEnergy(m.Transitions) +
			energy.PJ(float64(bus.PerTransition)*bus.CouplingFactor*float64(m.Couplings))
		fmt.Printf("  %-10s %5d %12d %10d %10.0f %8.2f%%\n",
			enc.Name(), m.Lines, m.Transitions, m.Couplings, float64(e),
			100*m.PerfOverhead(len(addrs)))
	}

	// --- DVI pixel link: natural image content.
	fmt.Println("\nDVI pixel link (24-bit RGB):")
	for _, img := range []struct {
		name   string
		pixels []buscode.RGB
	}{
		{"busy texture", buscode.SmoothRGB(1, 30000, 8, 6)},
		{"natural photo", buscode.SmoothRGB(1, 30000, 2, 1)},
		{"sky gradient", buscode.MidtoneRGB(1, 30000, 128, 0.7, 0.3)},
	} {
		raw := buscode.MeasurePixels(buscode.RawPixel{}, img.pixels)
		chr := buscode.MeasurePixels(&buscode.Chromatic{}, img.pixels)
		fmt.Printf("  %-14s raw %8d -> chromatic %8d transitions (%.1f%% saved, +3 lines)\n",
			img.name, raw.Transitions, chr.Transitions,
			100*(1-float64(chr.Transitions)/float64(raw.Transitions)))
	}
}
