package lpmem

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"lpmem/internal/runner"
)

// TestJobsCacheKeys: every registry job carries a cache key that couples
// the experiment ID to the registry version.
func TestJobsCacheKeys(t *testing.T) {
	jobs := Jobs(Experiments())
	if len(jobs) != len(Experiments()) {
		t.Fatalf("%d jobs for %d experiments", len(jobs), len(Experiments()))
	}
	for _, j := range jobs {
		if j.Key != CacheKey(j.ID) || !strings.Contains(j.Key, RegistryVersion) {
			t.Fatalf("job %s has key %q", j.ID, j.Key)
		}
	}
}

// TestRunBatchEnvelope: one real experiment through the engine produces
// a complete JSON envelope, and a second run is a cache hit with the
// identical table.
func TestRunBatchEnvelope(t *testing.T) {
	eng := NewEngine(runner.Options{Workers: 2})
	exp, err := ByID("E16")
	if err != nil {
		t.Fatal(err)
	}
	first := RunBatch(context.Background(), eng, []Experiment{exp})
	if len(first) != 1 || first[0].Outcome.Err != nil {
		t.Fatalf("run failed: %+v", first)
	}
	env := first[0].JSON()
	if env.ID != "E16" || env.Title == "" || env.PaperClaim == "" {
		t.Fatalf("envelope header incomplete: %+v", env)
	}
	if env.Summary == "" || len(env.Header) == 0 || len(env.Rows) == 0 {
		t.Fatalf("envelope body incomplete: %+v", env)
	}
	if env.Cached || env.Error != "" {
		t.Fatalf("first run must be fresh and clean: %+v", env)
	}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"E16"`, `"paper_claim"`, `"rows"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("marshalled envelope missing %s: %s", want, b)
		}
	}

	second := RunBatch(context.Background(), eng, []Experiment{exp})
	if !second[0].Outcome.Cached {
		t.Fatal("second run must be served from cache")
	}
	if second[0].Outcome.Value.Table.String() != first[0].Outcome.Value.Table.String() {
		t.Fatal("cached table differs from the original")
	}
	m := eng.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.Executed != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestResultMarshalJSON: a raw Result marshals with the table expanded
// via stats.Table.MarshalJSON rather than as an opaque struct.
func TestResultMarshalJSON(t *testing.T) {
	exp, err := ByID("E16")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"header"`) || !strings.Contains(string(b), `"rows"`) {
		t.Fatalf("Result JSON missing table content: %.200s", b)
	}
}

// TestParallelDeterminism runs the full registry twice through the
// parallel runner (cache disabled) and asserts byte-identical rendered
// tables per experiment. This guards the seeded-rand convention in
// DESIGN.md against shared-state regressions now that experiments run
// concurrently.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry x2 is heavy; skipped in -short mode")
	}
	eng := NewEngine(runner.Options{Workers: 4, NoCache: true})
	snapshot := func() map[string]string {
		out := make(map[string]string)
		for _, r := range RunBatch(context.Background(), eng, Experiments()) {
			if r.Outcome.Err != nil {
				t.Fatalf("%s: %v", r.Experiment.ID, r.Outcome.Err)
			}
			out[r.Experiment.ID] = r.Outcome.Value.Table.String() + "\n" + r.Outcome.Value.Summary
		}
		return out
	}
	a := snapshot()
	b := snapshot()
	for id, tbl := range a {
		if b[id] != tbl {
			t.Errorf("%s: parallel runs disagree\nfirst:\n%s\nsecond:\n%s", id, tbl, b[id])
		}
	}
}
