package lpmem

import (
	"fmt"

	"lpmem/internal/cachedesign"
	"lpmem/internal/stats"
	"lpmem/internal/workloads"
)

// runE19 regenerates the cache design-space exploration comparison (8A.1):
// for each benchmark, the smallest cache meeting a miss-rate target found
// by the exhaustive design-simulate-analyze loop versus the direct
// (monotonicity-exploiting) method, and the number of simulations each
// needed.
func runE19() (*Result, error) {
	table := stats.NewTable("kernel", "target mr", "exhaustive B", "sims", "direct B", "sims", "sims saved %")
	var savings []float64
	for _, bench := range []struct {
		kernel string
		target float64
	}{
		{"matmul", 0.03}, {"histogram", 0.03}, {"fir", 0.03},
		{"listchase", 0.15}, {"hashlookup", 0.10}, {"qsort", 0.03},
	} {
		k, err := workloads.ByName(bench.kernel)
		if err != nil {
			return nil, err
		}
		res, err := workloads.Run(k.Build(1))
		if err != nil {
			return nil, err
		}
		e := cachedesign.NewExplorer(res.Trace)
		space := cachedesign.DefaultSpace()
		ex, err := e.Exhaustive(space, bench.target)
		if err != nil {
			return nil, err
		}
		exSims := e.Simulations
		e.Reset()
		dir, err := e.Direct(space, bench.target)
		if err != nil {
			return nil, err
		}
		dirSims := e.Simulations
		s := stats.PercentSaving(float64(exSims), float64(dirSims))
		savings = append(savings, s)
		table.AddRow(bench.kernel, bench.target, ex.SizeBytes(), exSims, dir.SizeBytes(), dirSims, s)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("direct exploration meets every target with %.0f%% fewer simulations than design-simulate-analyze (paper: avoids slow iterative convergence)",
			stats.Mean(savings)),
	}, nil
}
