package lpmem

import (
	"fmt"

	"lpmem/internal/cache"
	"lpmem/internal/compress"
	"lpmem/internal/energy"
	"lpmem/internal/stats"
	"lpmem/internal/vliw"
	"lpmem/internal/workloads"
)

// E2 energy accounting constants: the memory-system energy of a platform
// is cache access energy + boundary traffic (memory array + global bus,
// charged per byte) + the compression unit's per-line overhead.
const (
	e2MemPerByte   = energy.PJ(3.0)
	e2BusPerByte   = energy.PJ(1.5)
	e2CodecPerLine = energy.PJ(8.0)
)

// e2Platform describes one evaluation platform of the 1B.2 experiment.
type e2Platform struct {
	name  string
	cache cache.Config
}

func e2Platforms() []e2Platform {
	return []e2Platform{
		// Lx-ST200-like: 16 KiB 4-way D-cache, 32 B lines.
		{"lx-vliw", cache.Config{Sets: 128, Ways: 4, LineSize: 32, WriteBack: true, WriteAllocate: true}},
		// SimpleScalar-MIPS-like: 8 KiB 2-way D-cache, 32 B lines.
		{"mips", cache.Config{Sets: 128, Ways: 2, LineSize: 32, WriteBack: true, WriteAllocate: true}},
	}
}

// e2Energy folds a traffic measurement into total memory-system energy.
func e2Energy(tr compress.Traffic, st cache.Stats, cfg cache.Config, compressed bool) energy.PJ {
	cm := energy.DefaultCacheModel()
	e := cm.ConventionalAccess(cfg.Ways) * energy.PJ(st.Accesses)
	bytes := tr.RawBytes
	if compressed {
		bytes = tr.CompressedBytes
		e += e2CodecPerLine * energy.PJ(tr.Lines)
	}
	e += (e2MemPerByte + e2BusPerByte) * energy.PJ(bytes)
	return e
}

// runE2 regenerates the data-compression table (1B.2): per platform and
// benchmark, memory-system energy without and with the differential
// write-back compressor.
func runE2() (*Result, error) {
	codec := compress.Differential{}
	table := stats.NewTable("platform", "kernel", "hit rate", "boundary -%", "base E", "comp E", "saving %")
	// The paper benchmarks MediaBench/Ptolemy media codes; the summary is
	// computed over the comparable media/DSP subset (the pointer-chasing
	// stress kernels are reported in the table but fall outside the
	// paper's workload class).
	mediaSet := map[string]bool{
		"fir": true, "dct": true, "adpcm": true, "matmul": true,
		"histogram": true, "crc32": true, "strsearch": true,
	}
	savings := map[string][]float64{}
	for _, p := range e2Platforms() {
		for _, k := range workloads.All() {
			inst := k.Build(1)
			var traceRes *workloads.Result
			if p.name == "lx-vliw" {
				// Run under the VLIW engine (identical trace, Lx-like timing).
				vr, err := vliw.Run(vliw.LxConfig(), inst.Prog, inst.Init, inst.MaxSteps)
				if err != nil {
					return nil, err
				}
				traceRes = &workloads.Result{Trace: vr.Trace, Cycles: vr.Cycles}
			} else {
				r, err := workloads.Run(inst)
				if err != nil {
					return nil, err
				}
				traceRes = r
			}
			tr, st, err := compress.MeasureTraffic(traceRes.Trace, p.cache, codec)
			if err != nil {
				return nil, err
			}
			base := e2Energy(tr, st, p.cache, false)
			comp := e2Energy(tr, st, p.cache, true)
			s := stats.PercentSaving(float64(base), float64(comp))
			if mediaSet[k.Name] {
				savings[p.name] = append(savings[p.name], s)
			}
			table.AddRow(p.name, k.Name, st.HitRate(), 100*tr.Saving(), float64(base), float64(comp), s)
		}
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("media-suite memory-system energy saving: lx-vliw %.1f..%.1f%%, mips %.1f..%.1f%% (paper: 10-22%% Lx, 11-14%% MIPS)",
			stats.Min(savings["lx-vliw"]), stats.Max(savings["lx-vliw"]),
			stats.Min(savings["mips"]), stats.Max(savings["mips"])),
	}, nil
}
