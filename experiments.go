// Package lpmem ties the library's subsystems into the eleven reproducible
// experiments of the DATE'03 low-power track (see DESIGN.md for the full
// index). Each experiment regenerates one abstract's headline table; the
// benchmarks in bench_test.go and the lpmem CLI both drive this registry.
package lpmem

import (
	"fmt"

	"lpmem/internal/stats"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// Result is the outcome of one experiment run.
type Result struct {
	// Table is the regenerated paper-style table.
	Table *stats.Table
	// Summary is the headline comparison against the paper's claim.
	Summary string
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (E1..E11).
	ID string
	// Title is a human-readable name.
	Title string
	// PaperClaim is the abstract's headline number.
	PaperClaim string
	// Run regenerates the table.
	Run func() (*Result, error)
}

// Experiments returns the full registry in ID order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:         "E1",
			Title:      "Address clustering before memory partitioning",
			PaperClaim: "avg -25% energy (max -57%) vs partitioning alone (1B.1)",
			Run:        runE1,
		},
		{
			ID:         "E2",
			Title:      "Differential cache-line compression",
			PaperClaim: "-10..22% (VLIW Lx), -11..14% (MIPS) memory-system energy (1B.2)",
			Run:        runE2,
		},
		{
			ID:         "E3",
			Title:      "Instruction-memory encoding transformations",
			PaperClaim: "up to -50% fetch-path bus transitions (1B.3)",
			Run:        runE3,
		},
		{
			ID:         "E4",
			Title:      "Two-level data scheduling on a multi-context reconfigurable array",
			PaperClaim: "reduced data + reconfiguration energy (1B.4)",
			Run:        runE4,
		},
		{
			ID:         "E5",
			Title:      "Shielded low-overhead address-bus encoding",
			PaperClaim: "full shielding with 1 extra line, ~0.36% perf cost (6F.3)",
			Run:        runE5,
		},
		{
			ID:         "E6",
			Title:      "Chromatic encoding of DVI pixel streams",
			PaperClaim: "up to -75% transitions, 3 redundant bits per pixel (8B.3)",
			Run:        runE6,
		},
		{
			ID:         "E7",
			Title:      "Way determination for high-associativity D-caches",
			PaperClaim: "-66/-72/-76% cache power at 8/16/32 ways (10E.4)",
			Run:        runE7,
		},
		{
			ID:         "E8",
			Title:      "Lifetime-aware memory-hierarchy layer assignment",
			PaperClaim: "about half the hierarchy energy (10F.1)",
			Run:        runE8,
		},
		{
			ID:         "E9",
			Title:      "Stack-based on-chip memory",
			PaperClaim: "up to -32.5% L1 D-cache energy (10F.3)",
			Run:        runE9,
		},
		{
			ID:         "E10",
			Title:      "Energy-aware NoC mapping with routing flexibility",
			PaperClaim: "-51.7% communication energy vs ad-hoc mapping (8B.2)",
			Run:        runE10,
		},
		{
			ID:         "E11",
			Title:      "DVS on conditional task graphs + GA mapping",
			PaperClaim: "-24% (DVS), up to -51% (mapping+DVS) (2B.2)",
			Run:        runE11,
		},
		{
			ID:         "E12",
			Title:      "Multiplierless filter synthesis with MRP transformation",
			PaperClaim: "-70% adders vs direct form, -16% vs CSE (8B.4)",
			Run:        runE12,
		},
		{
			ID:         "E13",
			Title:      "Selective energy masking of DES encryption",
			PaperClaim: "masks critical ops with 83% less energy than dual-rail (2B.1)",
			Run:        runE13,
		},
		{
			ID:         "E14",
			Title:      "Delay-uncertainty-driven clock tree topology",
			PaperClaim: "up to -90% uncertainty on critical paths, -48% via layout (1F.4)",
			Run:        runE14,
		},
		{
			ID:         "E15",
			Title:      "Statistical timing analysis using linear-time bounds",
			PaperClaim: "provable lower/upper delay bounds with small error (1F.3)",
			Run:        runE15,
		},
		{
			ID:         "E16",
			Title:      "Exact BDD minimization with combined lower bounds",
			PaperClaim: "combined bounds avoid unnecessary B&B computations (8D.2)",
			Run:        runE16,
		},
		{
			ID:         "E17",
			Title:      "High-bandwidth pipelined banked caches",
			PaperClaim: "+40-50% MOPS over conventional caches (8E.1)",
			Run:        runE17,
		},
		{
			ID:         "E18",
			Title:      "Scan test-data compression: don't-care LZW + stitching",
			PaperClaim: "high LZW ratios from don't-cares (2C.3); test-time cuts with no hardware (2C.1)",
			Run:        runE18,
		},
		{
			ID:         "E19",
			Title:      "Analytical cache design-space exploration",
			PaperClaim: "directly computes qualifying cache configs, avoiding slow iteration (8A.1)",
			Run:        runE19,
		},
		{
			ID:         "E20",
			Title:      "Energy-aware adaptive checkpointing",
			PaperClaim: "lower power and higher timely-completion likelihood under faults (9E.3)",
			Run:        runE20,
		},
		{
			ID:         "E21",
			Title:      "SRAM cell-type energy under leakage-dominated scaling",
			PaperClaim: "leakage dominates scaled nodes; low-standby cells invert the energy ranking (arXiv 1805.09127)",
			Run:        runE21,
		},
		{
			ID:         "E22",
			Title:      "Power-gating break-even vs idle-interval distribution",
			PaperClaim: "gating pays only past a wake-cost break-even idle interval (CACTI power-gating modes)",
			Run:        runE22,
		},
		{
			ID:         "E23",
			Title:      "DRAM row-buffer locality vs bank count",
			PaperClaim: "banking converts row conflicts to open-row hits at standby-power cost (arXiv 1805.09127)",
			Run:        runE23,
		},
		{
			ID:         "E24",
			Title:      "Shared-LLC sensitivity to CMP sharing patterns",
			PaperClaim: "shared working sets keep one LLC copy for all cores; private sets split capacity (arXiv 2201.00774)",
			Run:        runE24,
		},
		{
			ID:         "E25",
			Title:      "Static vs distance-aware NUCA bank mapping",
			PaperClaim: "bank distance is a first-order NUCA latency term; locality mapping recovers it (arXiv 2201.00774)",
			Run:        runE25,
		},
		{
			ID:         "E26",
			Title:      "Compression policy vs NUCA effective capacity",
			PaperClaim: "line compression enlarges effective LLC capacity, converting misses to hits (arXiv 2201.00774)",
			Run:        runE26,
		},
	}
}

// ByID returns one experiment from the registry.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("lpmem: unknown experiment %q", id)
}

// appTrace is a named workload trace shared by several experiments.
type appTrace struct {
	name   string
	trace  *trace.Trace
	cycles uint64
}

// traceTransform mirrors workloads.TraceTransform for the traces this
// package assembles itself (synthetic address profiles, merged
// composite applications), which never pass through workloads.Run. The
// cross-format equivalence test sets both hooks to the same binary
// round-trip so every trace an experiment consumes has been through
// the columnar encoder and decoder. Set only with no experiments in
// flight.
var traceTransform func(*trace.Trace) *trace.Trace

// transformedTrace applies traceTransform when set.
func transformedTrace(t *trace.Trace) *trace.Trace {
	if traceTransform == nil {
		return t
	}
	return traceTransform(t)
}

// kernelTraces runs every kernel once and returns the traces.
func kernelTraces(seed int64) ([]appTrace, error) {
	var out []appTrace
	for _, k := range workloads.All() {
		res, err := workloads.Run(k.Build(seed))
		if err != nil {
			return nil, err
		}
		out = append(out, appTrace{name: k.Name, trace: res.Trace, cycles: res.Cycles})
	}
	return out, nil
}

// compositeApps merges kernels into multi-phase applications, the setting
// of the 1B.1 evaluation (full embedded programs with many data
// structures of diverse heat).
func compositeApps(seed int64) ([]appTrace, error) {
	combos := []struct {
		name  string
		parts []string
	}{
		{"app-media", []string{"fir", "dct", "adpcm"}},
		{"app-net", []string{"crc32", "strsearch", "histogram", "hashlookup"}},
		{"app-ptr", []string{"listchase", "spmv", "fibcall"}},
		{"app-rtos", []string{"fibcall", "qsort", "listchase", "histogram"}},
		{"app-dsp", []string{"fft", "autocorr", "huffman", "bitcount"}},
	}
	var out []appTrace
	for _, c := range combos {
		merged := trace.New(1 << 16)
		var cycles uint64
		for _, p := range c.parts {
			k, err := workloads.ByName(p)
			if err != nil {
				return nil, err
			}
			res, err := workloads.Run(k.Build(seed))
			if err != nil {
				return nil, err
			}
			for _, a := range res.Trace.Accesses {
				merged.Append(a)
			}
			cycles += res.Cycles
		}
		out = append(out, appTrace{name: c.name, trace: transformedTrace(merged), cycles: cycles})
	}
	return out, nil
}

// profileApps synthesizes address profiles with the statistical shape of
// large embedded applications (a small hot working set scattered through
// a large cold image), where the 1B.1 abstract reports its biggest wins.
func profileApps() []appTrace {
	mk := func(name string, seed int64, image uint32, hotEvery int, hotWeight float64, n int) appTrace {
		var regions []trace.Region
		const blk = 1024
		for i := uint32(0); i < image/blk; i++ {
			if int(i)%hotEvery == 0 {
				// Hot region: frequently and sequentially walked
				// (a live buffer or table).
				regions = append(regions, trace.Region{
					Base: i * blk, Size: blk, Weight: hotWeight, Stride: 4,
				})
			} else {
				// Cold region: occasional scattered touches, so the
				// touched image stays large (heap, rarely used state).
				regions = append(regions, trace.Region{
					Base: i * blk, Size: blk, Weight: 1, Stride: 0,
				})
			}
		}
		tr := trace.Synthesize(trace.SynthConfig{Seed: seed, N: n, Regions: regions, WriteFraction: 0.3})
		return appTrace{name: name, trace: transformedTrace(tr), cycles: uint64(n) * 3}
	}
	return []appTrace{
		mk("prof-sparse", 11, 128<<10, 16, 150, 100_000),
		mk("prof-medium", 12, 128<<10, 8, 50, 100_000),
		mk("prof-dense", 13, 64<<10, 4, 8, 100_000),
	}
}
