package lpmem

import (
	"fmt"
	"math/rand"

	"lpmem/internal/buscode"
	"lpmem/internal/cache"
	"lpmem/internal/imem"
	"lpmem/internal/stats"
	"lpmem/internal/trace"
)

// runE3 regenerates the instruction-memory transformation table (1B.3):
// per benchmark, fetch-path bus transitions before and after the trained
// field re-encoding.
func runE3() (*Result, error) {
	apps, err := kernelTraces(1)
	if err != nil {
		return nil, err
	}
	table := stats.NewTable("kernel", "base transitions", "transformed", "saving %")
	var savings []float64
	for _, app := range apps {
		var stream []uint32
		for _, a := range app.trace.Accesses {
			if a.Kind == trace.Fetch {
				stream = append(stream, a.Value)
			}
		}
		base, xf, err := imem.Evaluate(stream, stream, imem.MuRISCFields())
		if err != nil {
			return nil, err
		}
		s := stats.PercentSaving(float64(base), float64(xf))
		savings = append(savings, s)
		table.AddRow(app.name, base, xf, s)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("transition saving: avg %.1f%%, max %.1f%% (paper: up to ~50%%)",
			stats.Mean(savings), stats.Max(savings)),
	}, nil
}

// fetchAddrs extracts the instruction-address stream of an app.
func fetchAddrs(t *trace.Trace) []uint32 {
	var out []uint32
	for _, a := range t.Accesses {
		if a.Kind == trace.Fetch {
			out = append(out, a.Addr)
		}
	}
	return out
}

// runE5 regenerates the address-bus encoding comparison (6F.3) on the
// *memory-side* instruction address bus: the CPU-side fetch stream is
// filtered through a small I-cache, and the encoders drive the resulting
// line-refill address stream. That is where the paper's scheme lives —
// refill traffic is overwhelmingly sequential (code is laid out and first
// touched in address order), which is why its cycle overhead is tiny.
func runE5() (*Result, error) {
	apps, err := kernelTraces(1)
	if err != nil {
		return nil, err
	}
	const lineSize = 32
	var refills []uint32
	for _, app := range apps {
		ic := cache.MustNew(cache.Config{Sets: 32, Ways: 2, LineSize: lineSize, WriteBack: false, WriteAllocate: true}, nil)
		for _, fa := range fetchAddrs(app.trace) {
			if ic.Lookup(fa) == -1 {
				refills = append(refills, fa&^uint32(lineSize-1))
			}
			ic.Access(fa, false, 4, 0)
		}
	}
	// Steady-state external traffic (refill bursts, DMA, frame scans):
	// long sequential runs with occasional jumps.
	burst := func(seed int64, n int, jumpFrac float64) []uint32 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]uint32, n)
		addr := uint32(0x8000)
		for i := range out {
			if rng.Float64() < jumpFrac {
				addr = uint32(rng.Intn(1<<24)) &^ (lineSize - 1)
			} else {
				addr += lineSize
			}
			out[i] = addr
		}
		return out
	}
	streams := []struct {
		name  string
		addrs []uint32
	}{
		{"kernel-refills", refills},
		{"extbus-j0.2%", burst(5, 50_000, 0.002)},
		{"extbus-j2%", burst(6, 50_000, 0.02)},
	}
	encoders := func() []buscode.Encoder {
		return []buscode.Encoder{
			&buscode.Binary{},
			&buscode.Gray{},
			&buscode.T0{Stride: lineSize},
			&buscode.BusInvert{},
			&buscode.Shielded{Stride: lineSize},
		}
	}
	table := stats.NewTable("stream", "scheme", "lines", "transitions", "couplings", "perf overhead %")
	var headline buscode.Measurement
	var headlineN int
	for _, st := range streams {
		for _, enc := range encoders() {
			m := buscode.Measure(enc, st.addrs)
			if enc.Name() == "shielded" && st.name == "extbus-j0.2%" {
				headline = m
				headlineN = len(st.addrs)
			}
			table.AddRow(st.name, enc.Name(), m.Lines, m.Transitions, m.Couplings, 100*m.PerfOverhead(len(st.addrs)))
		}
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("shielded on steady-state external bus: %d couplings (guaranteed 0), 1 extra line, %.2f%% cycle overhead (paper: 1 line, ~0.36%% perf)",
			headline.Couplings, 100*headline.PerfOverhead(headlineN)),
	}, nil
}

// runE6 regenerates the chromatic-encoding table (8B.3) over image types
// of increasing tonal locality.
func runE6() (*Result, error) {
	type img struct {
		name   string
		pixels []buscode.RGB
	}
	images := []img{
		{"texture(s=8)", buscode.SmoothRGB(7, 20000, 8, 6)},
		{"natural(s=3)", buscode.SmoothRGB(7, 20000, 3, 2)},
		{"smooth(s=1.5)", buscode.SmoothRGB(7, 20000, 1.5, 0.8)},
		{"gradient(s=0.8)", buscode.SmoothRGB(7, 20000, 0.8, 0.4)},
		{"midtone-128", buscode.MidtoneRGB(7, 20000, 128, 0.8, 0.3)},
		{"midtone-64", buscode.MidtoneRGB(7, 20000, 64, 0.8, 0.3)},
	}
	table := stats.NewTable("image", "raw transitions", "chromatic", "saving %")
	var maxSaving float64
	for _, im := range images {
		raw := buscode.MeasurePixels(buscode.RawPixel{}, im.pixels)
		chr := buscode.MeasurePixels(&buscode.Chromatic{}, im.pixels)
		s := stats.PercentSaving(float64(raw.Transitions), float64(chr.Transitions))
		if s > maxSaving {
			maxSaving = s
		}
		table.AddRow(im.name, raw.Transitions, chr.Transitions, s)
	}
	return &Result{
		Table:   table,
		Summary: fmt.Sprintf("max transition saving %.1f%% with 3 redundant bits/pixel (paper: up to 75%%)", maxSaving),
	}, nil
}
