package lpmem

import (
	"fmt"

	"lpmem/internal/desmask"
	"lpmem/internal/stats"
)

// runE13 regenerates the DES energy-masking comparison (2B.1): total
// energy, protection overhead and first-order DPA leakage of the
// unprotected datapath, the full dual-rail datapath, and the selective
// secure-instruction masking the paper proposes.
func runE13() (*Result, error) {
	const (
		key  = 0x133457799BBCDFF1
		n    = 400
		seed = 1
	)
	p := desmask.DefaultEnergyParams()
	un := desmask.Measure(desmask.Unprotected, key, n, seed, p)
	dual := desmask.Measure(desmask.DualRailAll, key, n, seed, p)
	sel := desmask.Measure(desmask.SelectiveMask, key, n, seed, p)

	table := stats.NewTable("variant", "total E", "overhead %", "DPA leakage |r|")
	for _, m := range []desmask.Measurement{un, dual, sel} {
		over := 100 * (float64(m.TotalEnergy) - float64(un.TotalEnergy)) / float64(un.TotalEnergy)
		table.AddRow(m.Variant.String(), float64(m.TotalEnergy), over, m.Leakage)
	}
	saving := desmask.MaskingOverheadSaving(un, dual, sel)
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("selective masking: leakage %.3f (vs %.3f unprotected), protection overhead %.0f%% below dual-rail (paper: 83%% less energy than dual-rail)",
			sel.Leakage, un.Leakage, saving),
	}, nil
}
