package lpmem

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"lpmem/internal/energy"
	"lpmem/internal/memtech"
	"lpmem/internal/stats"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"

	icache "lpmem/internal/cache"
)

// memtechKernels is the workload subset the technology experiments
// price: a media pipeline, a table-driven scanner, a pointer chaser and
// a control-heavy sorter — the access-pattern spread the cell-type and
// DRAM questions are sensitive to, kept small so E21–E23 stay cheap.
var memtechKernels = []string{"fir", "dct", "crc32", "listchase", "qsort"}

// memtechTraces runs the subset once at the shared seed.
func memtechTraces() ([]appTrace, error) {
	var out []appTrace
	for _, name := range memtechKernels {
		k, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		res, err := workloads.Run(k.Build(1))
		if err != nil {
			return nil, err
		}
		out = append(out, appTrace{name: name, trace: res.Trace, cycles: res.Cycles})
	}
	return out, nil
}

// runE21 prices the kernel suite's data traffic against one 64 KiB SRAM
// built from each ITRS cell type at the 65 nm node, splitting dynamic
// from leakage energy. The question the table answers is the modern
// inversion of every DATE'03 trade-off: once leakage dominates, the
// cell library — not the access count — decides total energy.
func runE21() (*Result, error) {
	apps, err := memtechTraces()
	if err != nil {
		return nil, err
	}
	const arrayBytes = 64 << 10
	models := make(map[memtech.CellType]*memtech.Model, 3)
	for _, cell := range memtech.CellTypes() {
		cfg, err := memtech.Preset("sram-" + string(cell) + "-65")
		if err != nil {
			return nil, err
		}
		m, err := memtech.New(energy.DefaultMemoryModel(), cfg)
		if err != nil {
			return nil, err
		}
		models[cell] = m
	}

	table := stats.NewTable("app", "hp", "lop", "lstp", "best", "hp leak %", "lstp vs hp %")
	var savings, leakShares []float64
	for _, app := range apps {
		var reads, writes uint64
		for _, a := range app.trace.Accesses {
			switch a.Kind {
			case trace.Read:
				reads++
			case trace.Write:
				writes++
			}
		}
		total := make(map[memtech.CellType]energy.PJ, 3)
		best := memtech.CellHP
		for _, cell := range memtech.CellTypes() {
			m := models[cell]
			total[cell] = m.TotalEnergy(arrayBytes, reads, writes, app.cycles)
			if total[cell] < total[best] {
				best = cell
			}
		}
		hp := models[memtech.CellHP]
		leakShare := 100 * float64(hp.LeakageEnergy(arrayBytes, app.cycles)) /
			float64(total[memtech.CellHP])
		saving := stats.PercentSaving(float64(total[memtech.CellHP]), float64(total[memtech.CellLSTP]))
		savings = append(savings, saving)
		leakShares = append(leakShares, leakShare)
		table.AddRow(app.name, float64(total[memtech.CellHP]), float64(total[memtech.CellLOP]),
			float64(total[memtech.CellLSTP]), string(best), leakShare, saving)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("65 nm, 64 KiB array: leakage is %.1f%% of hp total energy (avg); lstp cuts total energy %.1f%% avg vs hp (paper: leakage dominates scaled nodes)",
			stats.Mean(leakShares), stats.Mean(savings)),
	}, nil
}

// idleDistributions synthesizes the named idle-interval populations E22
// sweeps, seeded per distribution name so each is independent of the
// others and of evaluation order (the fault injector's construction).
func idleDistributions() []struct {
	name string
	idle []uint64
} {
	draw := func(name string, n int, gen func(r *rand.Rand) uint64) []uint64 {
		h := fnv.New64a()
		fmt.Fprintf(h, "e22|%s", name)
		r := rand.New(rand.NewSource(int64(h.Sum64())))
		out := make([]uint64, n)
		for i := range out {
			out[i] = 1 + gen(r)
		}
		return out
	}
	exp := func(mean float64) func(r *rand.Rand) uint64 {
		return func(r *rand.Rand) uint64 { return uint64(r.ExpFloat64() * mean) }
	}
	return []struct {
		name string
		idle []uint64
	}{
		// A busy memory: short gaps only, gating should stay away.
		{"busy", draw("busy", 2000, func(r *rand.Rand) uint64 { return uint64(r.Intn(50)) })},
		// Exponential gaps around the break-even scale.
		{"exp-250", draw("exp-250", 2000, exp(250))},
		// Bimodal: mostly short bursts, a long-idle tail (the classic
		// interactive-device shape gating was invented for).
		{"bimodal", draw("bimodal", 2000, func(r *rand.Rand) uint64 {
			if r.Intn(5) == 0 {
				return 500 + uint64(r.Intn(4500))
			}
			return uint64(r.Intn(20))
		})},
		// Idle-heavy: long exponential gaps, gating's best case.
		{"idle-heavy", draw("idle-heavy", 500, exp(4000))},
	}
}

// runE22 measures where power gating breaks even: for each idle-interval
// distribution it compares ungated leakage against the oracle policy
// (gate exactly the intervals longer than break-even — never loses) and
// the reactive timeout policy (gate after break-even cycles of
// idleness — pays the wake cost on intervals that die just after the
// threshold), wake penalties included in both.
func runE22() (*Result, error) {
	m, err := memtech.FromPreset("sram-lstp-gated-65")
	if err != nil {
		return nil, err
	}
	const arrayBytes = 16 << 10
	g := m.Gating(arrayBytes)

	table := stats.NewTable("distribution", "intervals", "ungated", "oracle", "timeout",
		"oracle save %", "timeout save %", "wakes", "stall cycles")
	var oracleSaves, timeoutSaves []float64
	for _, d := range idleDistributions() {
		oracle := g.OracleGated(d.idle)
		timeout := g.TimeoutGated(d.idle, uint64(g.BreakEven()))
		oracleSaves = append(oracleSaves, oracle.Saving())
		timeoutSaves = append(timeoutSaves, timeout.Saving())
		table.AddRow(d.name, len(d.idle), float64(oracle.Ungated), float64(oracle.Gated),
			float64(timeout.Gated), oracle.Saving(), timeout.Saving(),
			oracle.Wakes, oracle.WakeStallCycles)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("break-even %.0f idle cycles (wake %d cycles); oracle gating saves %.1f%% avg static energy, reactive timeout %.1f%% (paper: CACTI-style %v%% perf-loss budget)",
			g.BreakEven(), g.WakeLatency, stats.Mean(oracleSaves), stats.Mean(timeoutSaves),
			100*m.Cfg.PowerGatingPerformanceLoss),
	}, nil
}

// e23MissTraffic replays an app through a small L1 and returns the
// line-granular miss traffic (refills as reads, write-backs as writes)
// plus the replay stats — the stream a main memory actually serves.
func e23MissTraffic(app appTrace, lineSize int) (*trace.Trace, icache.Stats, error) {
	c, err := icache.New(icache.Config{
		Sets: 64, Ways: 4, LineSize: lineSize, WriteBack: true, WriteAllocate: true,
	}, nil)
	if err != nil {
		return nil, icache.Stats{}, err
	}
	miss := trace.New(4096)
	c.OnRefill = func(addr uint32, data []byte) {
		miss.Append(trace.Access{Addr: addr, Width: uint8(len(data)), Kind: trace.Read})
	}
	c.OnWriteBack = func(addr uint32, data []byte) {
		miss.Append(trace.Access{Addr: addr, Width: uint8(len(data)), Kind: trace.Write})
	}
	st := c.Replay(app.trace)
	return miss, st, nil
}

// runE23 drives each app's L1 miss traffic into the banked DRAM model at
// 1–8 banks and reports row-buffer behaviour and energy: banking turns
// row conflicts back into hits (each bank keeps its own row open) at the
// cost of per-bank background power, so the energy-optimal bank count is
// a property of the traffic's row locality, not a constant.
func runE23() (*Result, error) {
	apps, err := memtechTraces()
	if err != nil {
		return nil, err
	}
	cfg, err := memtech.Preset("dram-ddr3-65")
	if err != nil {
		return nil, err
	}
	// Page interleaving at L1-line granularity: a 1 KiB page keeps the
	// row/bank structure visible to kilobyte-scale kernel footprints.
	cfg.PageSize = 1024

	table := stats.NewTable("app", "banks", "lines", "row hit %", "conflicts", "energy", "vs 1 bank %")
	var bestSavings []float64
	for _, app := range apps {
		miss, cst, err := e23MissTraffic(app, 32)
		if err != nil {
			return nil, err
		}
		if miss.Len() == 0 {
			continue
		}
		var oneBank float64
		best := 0.0
		for _, banks := range []int{1, 2, 4, 8} {
			bc := cfg
			bc.UCABankCount = banks
			m, err := memtech.New(energy.DefaultMemoryModel(), bc)
			if err != nil {
				return nil, err
			}
			d, err := memtech.NewDRAM(m)
			if err != nil {
				return nil, err
			}
			st := d.Replay(miss)
			e := float64(d.Energy(st, app.cycles))
			if banks == 1 {
				oneBank = e
			}
			saving := stats.PercentSaving(oneBank, e)
			if saving > best {
				best = saving
			}
			table.AddRow(app.name, banks, cst.Refills+cst.WriteBacks,
				100*st.HitRate(), st.RowConflicts, e, saving)
		}
		bestSavings = append(bestSavings, best)
	}
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("banking the DRAM recovers row locality: best bank count saves %.1f%% avg main-memory energy vs a single bank (paper: row conflicts become open-row hits at standby-power cost)",
			stats.Mean(bestSavings)),
	}, nil
}
