package lpmem

import (
	"testing"

	"lpmem/internal/cache"
	"lpmem/internal/cluster"
	"lpmem/internal/compress"
	"lpmem/internal/core"
	"lpmem/internal/ctg"
	"lpmem/internal/energy"
	"lpmem/internal/noc"
	"lpmem/internal/partition"
	"lpmem/internal/stats"
	"lpmem/internal/waycache"
	"lpmem/internal/workloads"
)

// Ablation benchmarks: each sweeps one design choice called out in
// DESIGN.md and logs the resulting curve once, so `go test -bench
// Ablation -v` documents the sensitivity of every headline result.

// BenchmarkAblationBankBudget sweeps the partitioner's bank budget (E1's
// main hardware knob) on the listchase profile.
func BenchmarkAblationBankBudget(b *testing.B) {
	k, _ := workloads.ByName("listchase")
	res := workloads.MustRun(k.Build(1))
	spec, _, err := partition.SpecFromTrace(res.Trace, 64, res.Cycles)
	if err != nil {
		b.Fatal(err)
	}
	m := energy.DefaultMemoryModel()
	for i := 0; i < b.N; i++ {
		curve, err := partition.Tradeoff(spec, 12, m)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tb := stats.NewTable("budget", "banks used", "energy")
			for _, p := range curve {
				tb.AddRow(p.MaxBanks, p.BanksUsed, float64(p.Energy))
			}
			knee := partition.Knee(curve, 0.02)
			b.Logf("bank-budget tradeoff (listchase):\n%sknee at %d banks", tb.String(), knee.MaxBanks)
		}
	}
}

// BenchmarkAblationClusterAffinity sweeps the clustering affinity weight:
// 0 is pure frequency ordering; large weights let cold blocks ride along
// with hot partners and hurt the heat gradient.
func BenchmarkAblationClusterAffinity(b *testing.B) {
	k, _ := workloads.ByName("hashlookup")
	res := workloads.MustRun(k.Build(1))
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("affinity weight", "saving vs partitioned %")
		for _, w := range []float64{0, 0.05, 0.5, 5, 50} {
			opt := core.DefaultOptions()
			opt.Cluster.AffinityWeight = w
			rep, err := core.Optimize(res.Trace, res.Cycles, opt)
			if err != nil {
				b.Fatal(err)
			}
			tb.AddRow(w, rep.SavingVsPartitioned())
		}
		if i == 0 {
			b.Logf("affinity-weight ablation (hashlookup):\n%s", tb.String())
		}
	}
}

// BenchmarkAblationBlockSize sweeps the clustering/partitioning
// granularity.
func BenchmarkAblationBlockSize(b *testing.B) {
	k, _ := workloads.ByName("listchase")
	res := workloads.MustRun(k.Build(1))
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("block size", "saving vs partitioned %")
		for _, bs := range []uint32{32, 64, 128, 256} {
			opt := core.DefaultOptions()
			opt.BlockSize = bs
			rep, err := core.Optimize(res.Trace, res.Cycles, opt)
			if err != nil {
				b.Fatal(err)
			}
			tb.AddRow(bs, rep.SavingVsPartitioned())
		}
		if i == 0 {
			b.Logf("block-size ablation (listchase):\n%s", tb.String())
		}
	}
}

// BenchmarkAblationWDUSize sweeps the way-determination table size (E7).
func BenchmarkAblationWDUSize(b *testing.B) {
	k, _ := workloads.ByName("fir")
	res := workloads.MustRun(k.Build(1))
	cfg := cache.Config{Sets: 16, Ways: 16, LineSize: 32, WriteBack: true, WriteAllocate: true}
	cm := energy.DefaultCacheModel()
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("WDU entries", "coverage", "saving %")
		for _, entries := range []int{2, 4, 8, 16, 32} {
			r, err := waycache.Simulate(res.Trace, cfg, entries, cm)
			if err != nil {
				b.Fatal(err)
			}
			tb.AddRow(entries, r.Coverage, r.Saving())
		}
		if i == 0 {
			b.Logf("WDU-size ablation (fir, 16-way):\n%s", tb.String())
		}
	}
}

// BenchmarkAblationNoCMappers compares branch-and-bound against simulated
// annealing on the MMS graph (E10).
func BenchmarkAblationNoCMappers(b *testing.B) {
	m := noc.DefaultMesh()
	g := noc.MMSGraph()
	adhoc := m.CommEnergy(g, noc.RowMajor(g.N))
	for i := 0; i < b.N; i++ {
		bnb, err := noc.MapBnB(m, g, 2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		sa, err := noc.MapAnneal(m, g, 1, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tb := stats.NewTable("mapper", "energy", "saving vs adhoc %", "nodes/iters")
			tb.AddRow("adhoc", float64(adhoc), 0.0, 0)
			tb.AddRow("anneal", float64(sa.Energy), stats.PercentSaving(float64(adhoc), float64(sa.Energy)), sa.Visited)
			tb.AddRow("bnb", float64(bnb.Energy), stats.PercentSaving(float64(adhoc), float64(bnb.Energy)), bnb.Visited)
			b.Logf("NoC mapper ablation (MMS):\n%s", tb.String())
		}
	}
}

// BenchmarkAblationDiscreteDVS quantifies the loss of a 4-point voltage
// menu versus continuous scaling (E11).
func BenchmarkAblationDiscreteDVS(b *testing.B) {
	g := ctg.CruiseController()
	const procs = 2
	mapping := ctg.RoundRobin(len(g.Tasks), procs)
	for i := 0; i < b.N; i++ {
		cont, err := g.DVS(mapping, procs)
		if err != nil {
			b.Fatal(err)
		}
		disc, err := g.DVSDiscrete(mapping, procs, ctg.DefaultLevels())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			nominal := g.Energy(nil)
			tb := stats.NewTable("variant", "energy", "saving %")
			tb.AddRow("nominal", nominal, 0.0)
			tb.AddRow("discrete-4-levels", g.Energy(disc), stats.PercentSaving(nominal, g.Energy(disc)))
			tb.AddRow("continuous", g.Energy(cont), stats.PercentSaving(nominal, g.Energy(cont)))
			b.Logf("DVS discretization ablation:\n%s", tb.String())
		}
	}
}

// BenchmarkAblationLineSize sweeps the cache line size under the
// differential compressor (E2): longer lines compress better per line but
// move more speculative bytes.
func BenchmarkAblationLineSize(b *testing.B) {
	k, _ := workloads.ByName("adpcm")
	res := workloads.MustRun(k.Build(1))
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("line size", "boundary lines", "byte saving %")
		for _, ls := range []int{16, 32, 64} {
			cfg := cache.Config{Sets: 4096 / (2 * ls), Ways: 2, LineSize: ls, WriteBack: true, WriteAllocate: true}
			tr, _, err := compress.MeasureTraffic(res.Trace, cfg, compress.Differential{})
			if err != nil {
				b.Fatal(err)
			}
			tb.AddRow(ls, tr.Lines, 100*tr.Saving())
		}
		if i == 0 {
			b.Logf("line-size ablation (adpcm, 4KiB cache):\n%s", tb.String())
		}
	}
}

// BenchmarkAblationClusterVsIdentity verifies the identity clustering is a
// true no-op baseline: partitioning the identity-remapped trace equals
// partitioning the original.
func BenchmarkAblationClusterVsIdentity(b *testing.B) {
	k, _ := workloads.ByName("histogram")
	res := workloads.MustRun(k.Build(1))
	m := energy.DefaultMemoryModel()
	for i := 0; i < b.N; i++ {
		data := res.Trace.Data()
		id, err := cluster.IdentityBaseline(data, 64)
		if err != nil {
			b.Fatal(err)
		}
		specA, _, err := partition.SpecFromTrace(id.Remap(data), 64, res.Cycles)
		if err != nil {
			b.Fatal(err)
		}
		_, eA, err := partition.Optimal(specA, 4, m)
		if err != nil {
			b.Fatal(err)
		}
		specB, _, err := partition.SpecFromTrace(data, 64, res.Cycles)
		if err != nil {
			b.Fatal(err)
		}
		_, eB, err := partition.Optimal(specB, 4, m)
		if err != nil {
			b.Fatal(err)
		}
		if eA != eB {
			b.Fatalf("identity remap changed optimal energy: %v != %v", eA, eB)
		}
	}
}
