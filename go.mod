module lpmem

go 1.22
