package lpmem

import (
	"fmt"

	"lpmem/internal/checkpoint"
	"lpmem/internal/stats"
)

// runE20 regenerates the adaptive-checkpointing comparison (9E.3): across
// actual-vs-nominal fault-rate mismatches, the probability of timely
// completion for the fixed-interval baseline versus the adaptive policy,
// and the energy effect of adding DVS on a slack-rich task.
func runE20() (*Result, error) {
	const runs = 6000
	table := stats.NewTable("scenario", "policy", "completion", "energy", "ckpts")
	var worstGap float64

	// Completion under design-time fault-rate mis-estimation (tight
	// task, actual rate fixed at 0.05): the fixed interval is derived
	// from the nominal assumption; the adaptive policy recovers from the
	// mis-estimate by tracking observed faults.
	for _, mis := range []struct {
		name    string
		nominal float64
	}{
		{"tuned (nominal = actual)", 0.05},
		{"faults underestimated 4x", 0.0125},
		{"faults overestimated 4x", 0.2},
	} {
		tk := checkpoint.Task{Compute: 100, Deadline: 140, CheckpointCost: 0.8, FaultRate: 0.05}
		tk.NominalRate = mis.nominal
		fixed, err := checkpoint.Simulate(tk, checkpoint.FixedInterval, runs, 1)
		if err != nil {
			return nil, err
		}
		adaptive, err := checkpoint.Simulate(tk, checkpoint.Adaptive, runs, 1)
		if err != nil {
			return nil, err
		}
		table.AddRow(mis.name, "fixed", fixed.CompletionProb, fixed.MeanEnergy, fixed.MeanCheckpoints)
		table.AddRow(mis.name, "adaptive", adaptive.CompletionProb, adaptive.MeanEnergy, adaptive.MeanCheckpoints)
		if gap := adaptive.CompletionProb - fixed.CompletionProb; gap > worstGap {
			worstGap = gap
		}
	}

	// Energy with DVS on a slack-rich task.
	rich := checkpoint.Task{Compute: 100, Deadline: 190, CheckpointCost: 0.8, FaultRate: 0.05}
	adaptive, err := checkpoint.Simulate(rich, checkpoint.Adaptive, runs, 2)
	if err != nil {
		return nil, err
	}
	dvs, err := checkpoint.Simulate(rich, checkpoint.AdaptiveDVS, runs, 2)
	if err != nil {
		return nil, err
	}
	table.AddRow("slack-rich (D=1.9C)", "adaptive", adaptive.CompletionProb, adaptive.MeanEnergy, adaptive.MeanCheckpoints)
	table.AddRow("slack-rich (D=1.9C)", "adaptive+dvs", dvs.CompletionProb, dvs.MeanEnergy, dvs.MeanCheckpoints)
	saving := stats.PercentSaving(adaptive.MeanEnergy, dvs.MeanEnergy)
	return &Result{
		Table: table,
		Summary: fmt.Sprintf("adaptive checkpointing raises timely completion by up to %.1f pp under fault-rate mismatch; DVS cuts energy %.0f%% on the slack-rich task at equal completion (paper: higher completion likelihood and lower power)",
			100*worstGap, saving),
	}, nil
}
