package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func job(id string, fn func(ctx context.Context) (int, error)) Job[int] {
	return Job[int]{ID: id, Key: id + "@test", Run: fn}
}

func constJob(id string, v int) Job[int] {
	return job(id, func(context.Context) (int, error) { return v, nil })
}

// TestRunOrderAndValues: outcomes come back in input order with the
// values the jobs produced.
func TestRunOrderAndValues(t *testing.T) {
	e := New[int](Options{Workers: 4, NoCache: true})
	var jobs []Job[int]
	for i := 0; i < 20; i++ {
		jobs = append(jobs, constJob(fmt.Sprintf("J%d", i), i*i))
	}
	out := e.Run(context.Background(), jobs)
	if len(out) != 20 {
		t.Fatalf("got %d outcomes", len(out))
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("J%d: %v", i, o.Err)
		}
		if o.ID != fmt.Sprintf("J%d", i) || o.Value != i*i {
			t.Fatalf("outcome %d = %+v, want J%d/%d", i, o, i, i*i)
		}
	}
	m := e.Metrics()
	if m.Executed != 20 || m.Successes != 20 || m.Failures != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestPoolSizing: a pool of N workers never runs more than N jobs at
// once, and defaults to at least one worker.
func TestPoolSizing(t *testing.T) {
	const workers = 3
	e := New[int](Options{Workers: workers, NoCache: true})
	var cur, peak atomic.Int64
	var jobs []Job[int]
	for i := 0; i < 24; i++ {
		jobs = append(jobs, job(fmt.Sprintf("J%d", i), func(context.Context) (int, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return 0, nil
		}))
	}
	e.Run(context.Background(), jobs)
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", got, workers)
	}
	if def := New[int](Options{}); def.Workers() < 1 {
		t.Fatalf("default pool size %d", def.Workers())
	}
}

// TestCancellationMidBatch: cancelling the batch context stops dispatch;
// unstarted jobs report the context error instead of running.
func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New[int](Options{Workers: 1, NoCache: true})
	var ran atomic.Int64
	release := make(chan struct{})
	var jobs []Job[int]
	jobs = append(jobs, job("J0", func(context.Context) (int, error) {
		ran.Add(1)
		cancel()
		close(release)
		return 1, nil
	}))
	for i := 1; i < 10; i++ {
		jobs = append(jobs, job(fmt.Sprintf("J%d", i), func(context.Context) (int, error) {
			ran.Add(1)
			return 1, nil
		}))
	}
	out := e.Run(ctx, jobs)
	<-release
	// The first job may be reported as completed or as cancelled (its
	// own cancel() races the result delivery); what matters is that the
	// remaining jobs were not dispatched.
	var cancelled int
	for _, o := range out[1:] {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job observed the cancellation")
	}
	if got := ran.Load(); got == 10 {
		t.Fatal("cancellation did not stop dispatch")
	}
	if m := e.Metrics(); m.Cancelled == 0 {
		t.Fatalf("metrics must count cancellations: %+v", m)
	}
}

// TestCacheDeterminism: the second run of the same keys is served
// entirely from cache — same values, zero new executions.
func TestCacheDeterminism(t *testing.T) {
	e := New[int](Options{Workers: 4})
	var execs atomic.Int64
	mk := func() []Job[int] {
		var jobs []Job[int]
		for i := 0; i < 8; i++ {
			i := i
			jobs = append(jobs, job(fmt.Sprintf("J%d", i), func(context.Context) (int, error) {
				execs.Add(1)
				return 100 + i, nil
			}))
		}
		return jobs
	}
	first := e.Run(context.Background(), mk())
	if got := execs.Load(); got != 8 {
		t.Fatalf("first batch executed %d jobs", got)
	}
	second := e.Run(context.Background(), mk())
	if got := execs.Load(); got != 8 {
		t.Fatalf("second batch re-executed: %d total executions", got)
	}
	for i := range first {
		if first[i].Value != second[i].Value {
			t.Fatalf("cache returned a different value for %s", first[i].ID)
		}
		if first[i].Cached || !second[i].Cached {
			t.Fatalf("cached flags wrong: first=%v second=%v", first[i].Cached, second[i].Cached)
		}
	}
	m := e.Metrics()
	if m.CacheHits != 8 || m.CacheMisses != 8 {
		t.Fatalf("hit/miss accounting wrong: %+v", m)
	}
	if e.CacheLen() != 8 {
		t.Fatalf("cache holds %d entries", e.CacheLen())
	}
	e.InvalidateCache()
	if e.CacheLen() != 0 {
		t.Fatal("InvalidateCache left entries behind")
	}
}

// TestPanicContainment: a panicking job becomes a structured error and
// the rest of the batch completes normally.
func TestPanicContainment(t *testing.T) {
	e := New[int](Options{Workers: 2, NoCache: true})
	jobs := []Job[int]{
		constJob("ok1", 1),
		job("boom", func(context.Context) (int, error) { panic("kaboom") }),
		constJob("ok2", 2),
	}
	out := e.Run(context.Background(), jobs)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", out[0].Err, out[2].Err)
	}
	var pe *PanicError
	if !errors.As(out[1].Err, &pe) {
		t.Fatalf("want PanicError, got %v", out[1].Err)
	}
	if pe.ID != "boom" || !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("panic error incomplete: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lost the stack trace")
	}
	if m := e.Metrics(); m.Panics != 1 || m.Failures != 1 || m.Successes != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestErrorsNotCached: a failed job is retried on the next batch rather
// than serving the error from cache.
func TestErrorsNotCached(t *testing.T) {
	e := New[int](Options{Workers: 1})
	var n atomic.Int64
	mk := func() []Job[int] {
		return []Job[int]{job("flaky", func(context.Context) (int, error) {
			if n.Add(1) == 1 {
				return 0, errors.New("transient")
			}
			return 7, nil
		})}
	}
	if out := e.Run(context.Background(), mk()); out[0].Err == nil {
		t.Fatal("first run should fail")
	}
	out := e.Run(context.Background(), mk())
	if out[0].Err != nil || out[0].Value != 7 || out[0].Cached {
		t.Fatalf("retry not executed: %+v", out[0])
	}
}

// TestTimeout: a job that overruns Options.Timeout is reported as
// deadline-exceeded while fast jobs in the same batch succeed.
func TestTimeout(t *testing.T) {
	e := New[int](Options{Workers: 2, Timeout: 20 * time.Millisecond, NoCache: true})
	block := make(chan struct{})
	defer close(block)
	jobs := []Job[int]{
		job("stuck", func(ctx context.Context) (int, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return 0, nil
		}),
		constJob("fast", 5),
	}
	out := e.Run(context.Background(), jobs)
	if !errors.Is(out[0].Err, context.DeadlineExceeded) {
		t.Fatalf("stuck job: want deadline exceeded, got %v", out[0].Err)
	}
	if out[1].Err != nil || out[1].Value != 5 {
		t.Fatalf("fast job: %+v", out[1])
	}
}

// TestInflightDedup: concurrent batches containing the same key execute
// the job once; the joiner gets the same value marked as cached.
func TestInflightDedup(t *testing.T) {
	e := New[int](Options{Workers: 2})
	var execs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	slow := job("shared", func(context.Context) (int, error) {
		execs.Add(1)
		close(started)
		<-release
		return 42, nil
	})
	var wg sync.WaitGroup
	results := make([][]Outcome[int], 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = e.Run(context.Background(), []Job[int]{slow})
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[1] = e.Run(context.Background(), []Job[int]{slow})
	}()
	// Give the second batch a moment to reach the in-flight wait, then
	// let the single execution finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("job executed %d times, want 1", got)
	}
	for i, r := range results {
		if r[0].Err != nil || r[0].Value != 42 {
			t.Fatalf("batch %d outcome: %+v", i, r[0])
		}
	}
	if !results[0][0].Cached && !results[1][0].Cached {
		t.Fatal("one of the two outcomes must be a dedup hit")
	}
}

// TestNoKeyNoCache: jobs with an empty key always execute.
func TestNoKeyNoCache(t *testing.T) {
	e := New[int](Options{Workers: 1})
	var n atomic.Int64
	j := Job[int]{ID: "anon", Run: func(context.Context) (int, error) {
		return int(n.Add(1)), nil
	}}
	a := e.Run(context.Background(), []Job[int]{j})
	b := e.Run(context.Background(), []Job[int]{j})
	if a[0].Value != 1 || b[0].Value != 2 || b[0].Cached {
		t.Fatalf("keyless job was cached: %+v %+v", a[0], b[0])
	}
}

// TestWallClockMetric: the wall-time counter accumulates execution time.
func TestWallClockMetric(t *testing.T) {
	e := New[int](Options{Workers: 1, NoCache: true})
	e.Run(context.Background(), []Job[int]{job("sleep", func(context.Context) (int, error) {
		time.Sleep(5 * time.Millisecond)
		return 0, nil
	})})
	if m := e.Metrics(); m.WallNanos < int64(5*time.Millisecond) {
		t.Fatalf("wall time %d too small", m.WallNanos)
	}
}

// TestRunFuncEmitsEveryJobOnce: the streaming hook sees every job
// exactly once with the same outcome the returned slice carries, and
// jobs cancelled before dispatch are emitted too.
func TestRunFuncEmitsEveryJobOnce(t *testing.T) {
	e := New[int](Options{Workers: 3, NoCache: true})
	jobs := make([]Job[int], 20)
	for i := range jobs {
		jobs[i] = constJob(fmt.Sprintf("J%d", i), i)
	}
	var mu sync.Mutex
	emitted := make(map[int]Outcome[int])
	out := e.RunFunc(context.Background(), jobs, func(i int, o Outcome[int]) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := emitted[i]; dup {
			t.Errorf("job %d emitted twice", i)
		}
		emitted[i] = o
	})
	if len(emitted) != len(jobs) {
		t.Fatalf("emitted %d outcomes, want %d", len(emitted), len(jobs))
	}
	for i, o := range out {
		if emitted[i].ID != o.ID || emitted[i].Value != o.Value {
			t.Fatalf("job %d: emitted %+v, returned %+v", i, emitted[i], o)
		}
	}
}

// TestRunFuncEmitsCancelledJobs: cancellation mid-batch still emits one
// outcome per job — the streaming surface must be able to tell a client
// about every requested job, dispatched or not.
func TestRunFuncEmitsCancelledJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New[int](Options{Workers: 1, NoCache: true})
	var jobs []Job[int]
	jobs = append(jobs, job("J0", func(context.Context) (int, error) {
		cancel()
		return 1, nil
	}))
	for i := 1; i < 8; i++ {
		jobs = append(jobs, constJob(fmt.Sprintf("J%d", i), i))
	}
	var n atomic.Int64
	out := e.RunFunc(ctx, jobs, func(int, Outcome[int]) { n.Add(1) })
	if got := n.Load(); got != int64(len(jobs)) {
		t.Fatalf("emitted %d outcomes, want %d (cancelled jobs included)", got, len(jobs))
	}
	var cancelled int
	for _, o := range out[1:] {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job observed the cancellation")
	}
}
