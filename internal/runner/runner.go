// Package runner is the concurrent experiment-execution engine behind the
// lpmem CLI, the lpmemd HTTP service and the benchmark harness. It runs a
// batch of jobs on a bounded worker pool, enforces per-job deadlines,
// converts panicking jobs into structured errors instead of killing the
// batch, deduplicates and caches successful results by content key, and
// keeps an expvar-style counter snapshot for observability.
//
// The engine is generic over the result type so it stays independent of
// the experiment registry (the root lpmem package instantiates it with
// *lpmem.Result and wires registry entries into Jobs).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of work. Key identifies the job's result content for
// caching and in-flight deduplication: two jobs with the same non-empty
// Key are assumed to produce the same value (the lpmem adapter couples
// the experiment ID with the registry version). An empty Key opts the job
// out of caching entirely.
type Job[T any] struct {
	ID  string
	Key string
	Run func(ctx context.Context) (T, error)
}

// Outcome is the result of one job: either a value or an error, plus how
// long the job ran and whether it was served from the cache.
type Outcome[T any] struct {
	ID       string
	Value    T
	Err      error
	Duration time.Duration
	Cached   bool
}

// PanicError is the structured error a recovered job panic becomes.
type PanicError struct {
	ID    string
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v", e.ID, e.Value)
}

// Options configure an Engine.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout is the per-job deadline; 0 means no deadline beyond the
	// batch context. A job that overruns its deadline is abandoned (its
	// goroutine finishes in the background and the late result is
	// discarded) so one stuck experiment cannot wedge the batch.
	Timeout time.Duration
	// NoCache disables the result cache and in-flight deduplication;
	// benchmarks and determinism tests use it to force re-execution.
	NoCache bool
}

// Metrics is a point-in-time snapshot of the engine's counters, shaped
// for direct JSON exposure on lpmemd's /metrics endpoint.
type Metrics struct {
	Submitted   uint64 `json:"submitted"`
	Executed    uint64 `json:"executed"`
	Successes   uint64 `json:"successes"`
	Failures    uint64 `json:"failures"`
	Panics      uint64 `json:"panics"`
	Cancelled   uint64 `json:"cancelled"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// WallNanos sums per-job execution wall time, so under a parallel
	// batch it exceeds elapsed time by roughly the achieved speedup.
	WallNanos int64 `json:"wall_nanos"`
}

type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Engine runs batches of jobs. It is safe for concurrent use; overlapping
// Run calls share the worker budget only in the sense that each call
// spawns at most Options.Workers workers of its own, and they share the
// cache and in-flight table so identical jobs never execute twice.
type Engine[T any] struct {
	opts Options

	submitted, executed, successes, failures atomic.Uint64
	panics, cancelled, hits, misses          atomic.Uint64
	wall                                     atomic.Int64

	mu       sync.Mutex
	cache    map[string]T
	inflight map[string]*flight[T]
}

// New creates an engine with the given options.
func New[T any](opts Options) *Engine[T] {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine[T]{
		opts:     opts,
		cache:    make(map[string]T),
		inflight: make(map[string]*flight[T]),
	}
}

// Workers reports the resolved pool size.
func (e *Engine[T]) Workers() int { return e.opts.Workers }

// CacheLen reports how many results are currently cached.
func (e *Engine[T]) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Cached reports whether a result for key is already in the cache.
func (e *Engine[T]) Cached(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.cache[key]
	return ok
}

// InvalidateCache drops every cached result.
func (e *Engine[T]) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = make(map[string]T)
}

// Metrics returns a snapshot of the counters.
func (e *Engine[T]) Metrics() Metrics {
	return Metrics{
		Submitted:   e.submitted.Load(),
		Executed:    e.executed.Load(),
		Successes:   e.successes.Load(),
		Failures:    e.failures.Load(),
		Panics:      e.panics.Load(),
		Cancelled:   e.cancelled.Load(),
		CacheHits:   e.hits.Load(),
		CacheMisses: e.misses.Load(),
		WallNanos:   e.wall.Load(),
	}
}

// Run executes the batch on the pool and returns one outcome per job, in
// input order. Cancelling ctx stops dispatch: running jobs are given the
// cancelled context, and jobs not yet started are reported with the
// context's error instead of executing.
func (e *Engine[T]) Run(ctx context.Context, jobs []Job[T]) []Outcome[T] {
	out := make([]Outcome[T], len(jobs))
	workers := e.opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.runOne(ctx, jobs[i])
			}
		}()
	}

	next := len(jobs)
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			next = i
		}
		if next != len(jobs) {
			break
		}
	}
	close(idx)
	wg.Wait()

	// Jobs never handed to a worker surface the cancellation explicitly.
	for i := next; i < len(jobs); i++ {
		e.submitted.Add(1)
		e.cancelled.Add(1)
		out[i] = Outcome[T]{ID: jobs[i].ID, Err: ctx.Err()}
	}
	return out
}

// runOne executes (or serves from cache) a single job.
func (e *Engine[T]) runOne(ctx context.Context, j Job[T]) Outcome[T] {
	e.submitted.Add(1)
	if err := ctx.Err(); err != nil {
		e.cancelled.Add(1)
		return Outcome[T]{ID: j.ID, Err: err}
	}

	useCache := !e.opts.NoCache && j.Key != ""
	var fl *flight[T]
	if useCache {
		e.mu.Lock()
		if v, ok := e.cache[j.Key]; ok {
			e.mu.Unlock()
			e.hits.Add(1)
			e.successes.Add(1)
			return Outcome[T]{ID: j.ID, Value: v, Cached: true}
		}
		if other, ok := e.inflight[j.Key]; ok {
			e.mu.Unlock()
			return e.join(ctx, j, other)
		}
		fl = &flight[T]{done: make(chan struct{})}
		e.inflight[j.Key] = fl
		e.mu.Unlock()
		e.misses.Add(1)
	}

	jctx, cancel := ctx, context.CancelFunc(func() {})
	if e.opts.Timeout > 0 {
		jctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
	}
	defer cancel()

	start := time.Now()
	v, err := e.invoke(jctx, j)
	d := time.Since(start)
	e.executed.Add(1)
	e.wall.Add(int64(d))
	if err != nil {
		if jctx.Err() != nil && err == jctx.Err() {
			e.cancelled.Add(1)
		}
		e.failures.Add(1)
	} else {
		e.successes.Add(1)
	}

	if fl != nil {
		fl.val, fl.err = v, err
		e.mu.Lock()
		if err == nil {
			e.cache[j.Key] = v
		}
		delete(e.inflight, j.Key)
		e.mu.Unlock()
		close(fl.done)
	}
	return Outcome[T]{ID: j.ID, Value: v, Err: err, Duration: d}
}

// join waits for an identical in-flight job instead of re-executing it.
func (e *Engine[T]) join(ctx context.Context, j Job[T], fl *flight[T]) Outcome[T] {
	select {
	case <-fl.done:
	case <-ctx.Done():
		e.cancelled.Add(1)
		return Outcome[T]{ID: j.ID, Err: ctx.Err()}
	}
	if fl.err != nil {
		e.failures.Add(1)
		return Outcome[T]{ID: j.ID, Err: fl.err}
	}
	e.hits.Add(1)
	e.successes.Add(1)
	return Outcome[T]{ID: j.ID, Value: fl.val, Cached: true}
}

// invoke runs the job body with panic containment and deadline
// enforcement. The job runs in its own goroutine so a deadline overrun
// abandons it rather than blocking a pool worker forever.
func (e *Engine[T]) invoke(ctx context.Context, j Job[T]) (T, error) {
	type res struct {
		v   T
		err error
	}
	ch := make(chan res, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.panics.Add(1)
				var zero T
				ch <- res{zero, &PanicError{ID: j.ID, Value: r, Stack: debug.Stack()}}
			}
		}()
		v, err := j.Run(ctx)
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}
