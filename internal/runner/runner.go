// Package runner is the concurrent experiment-execution engine behind the
// lpmem CLI, the lpmemd HTTP service and the benchmark harness. It runs a
// batch of jobs on a bounded worker pool, enforces per-job deadlines,
// converts panicking jobs into structured errors instead of killing the
// batch, deduplicates and caches successful results by content key, and
// keeps an expvar-style counter snapshot for observability.
//
// The engine is generic over the result type so it stays independent of
// the experiment registry (the root lpmem package instantiates it with
// *lpmem.Result and wires registry entries into Jobs).
package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of work. Key identifies the job's result content for
// caching and in-flight deduplication: two jobs with the same non-empty
// Key are assumed to produce the same value (the lpmem adapter couples
// the experiment ID with the registry version). An empty Key opts the job
// out of caching entirely.
type Job[T any] struct {
	ID  string
	Key string
	Run func(ctx context.Context) (T, error)
}

// Outcome is the result of one job: either a value or an error, plus how
// long the job ran and whether it was served from the cache.
type Outcome[T any] struct {
	ID       string
	Value    T
	Err      error
	Duration time.Duration
	Cached   bool
}

// PanicError is the structured error a recovered job panic becomes. The
// captured stack is part of the message so it survives every path that
// flattens the error to a string (JSON envelopes, logs, CLI output) —
// without it, a panicking experiment behind lpmemd is undebuggable.
type PanicError struct {
	ID    string
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v\nstack:\n%s", e.ID, e.Value, e.Stack)
}

// ErrCircuitOpen is wrapped by fast-fail outcomes of jobs whose circuit
// breaker is open: the job was not executed because its recent attempts
// failed consecutively and the cooldown has not elapsed.
var ErrCircuitOpen = errors.New("runner: circuit breaker open")

// Options configure an Engine.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout is the per-job deadline; 0 means no deadline beyond the
	// batch context. A job that overruns its deadline is abandoned (its
	// goroutine finishes in the background and the late result is
	// discarded) so one stuck experiment cannot wedge the batch.
	Timeout time.Duration
	// NoCache disables the result cache and in-flight deduplication;
	// benchmarks and determinism tests use it to force re-execution.
	NoCache bool

	// Retries is the number of re-attempts after a failed execution.
	// Each attempt gets its own Timeout window. A job is not retried
	// once the batch context is cancelled. 0 disables retries.
	Retries int
	// RetryBaseDelay is the first backoff; it doubles per attempt.
	// <= 0 defaults to 10ms.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff growth. <= 0 defaults to 1s.
	RetryMaxDelay time.Duration
	// RetrySeed seeds the backoff jitter. Jitter is derived from
	// (seed, job ID, attempt), so a fixed seed yields a bit-identical
	// retry schedule — chaos runs stay replayable.
	RetrySeed int64

	// BreakerThreshold opens a per-job-ID circuit breaker after this many
	// consecutive execution failures; while open, runs of that ID fail
	// fast with ErrCircuitOpen instead of executing. 0 disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a breaker stays open before a single
	// half-open probe is allowed through. <= 0 defaults to 5s.
	BreakerCooldown time.Duration
}

// BreakerState names the per-ID circuit state in snapshots.
type BreakerState string

// Breaker states: Closed admits work, Open fails fast, HalfOpen admits a
// single probe after the cooldown.
const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// breaker tracks consecutive failures for one job ID.
type breaker struct {
	state    BreakerState
	fails    int
	openedAt time.Time
}

// Metrics is a point-in-time snapshot of the engine's counters, shaped
// for direct JSON exposure on lpmemd's /metrics endpoint.
type Metrics struct {
	Submitted   uint64 `json:"submitted"`
	Executed    uint64 `json:"executed"`
	Successes   uint64 `json:"successes"`
	Failures    uint64 `json:"failures"`
	Panics      uint64 `json:"panics"`
	Cancelled   uint64 `json:"cancelled"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Retries counts re-attempts after failed executions.
	Retries uint64 `json:"retries"`
	// BreakerOpens counts closed/half-open -> open transitions.
	BreakerOpens uint64 `json:"breaker_opens"`
	// BreakerFastFails counts jobs rejected by an open breaker without
	// executing.
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
	// WallNanos sums per-job execution wall time, so under a parallel
	// batch it exceeds elapsed time by roughly the achieved speedup.
	WallNanos int64 `json:"wall_nanos"`
}

type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Engine runs batches of jobs. It is safe for concurrent use; overlapping
// Run calls share the worker budget only in the sense that each call
// spawns at most Options.Workers workers of its own, and they share the
// cache and in-flight table so identical jobs never execute twice.
type Engine[T any] struct {
	opts Options

	submitted, executed, successes, failures atomic.Uint64
	panics, cancelled, hits, misses          atomic.Uint64
	retries, breakerOpens, breakerFastFails  atomic.Uint64
	wall                                     atomic.Int64

	mu       sync.Mutex
	cache    map[string]T
	inflight map[string]*flight[T]

	bmu      sync.Mutex
	breakers map[string]*breaker
}

// New creates an engine with the given options.
func New[T any](opts Options) *Engine[T] {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Retries > 0 {
		if opts.RetryBaseDelay <= 0 {
			opts.RetryBaseDelay = 10 * time.Millisecond
		}
		if opts.RetryMaxDelay <= 0 {
			opts.RetryMaxDelay = time.Second
		}
	}
	if opts.BreakerThreshold > 0 && opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	return &Engine[T]{
		opts:     opts,
		cache:    make(map[string]T),
		inflight: make(map[string]*flight[T]),
		breakers: make(map[string]*breaker),
	}
}

// Workers reports the resolved pool size.
func (e *Engine[T]) Workers() int { return e.opts.Workers }

// CacheLen reports how many results are currently cached.
func (e *Engine[T]) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Cached reports whether a result for key is already in the cache.
func (e *Engine[T]) Cached(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.cache[key]
	return ok
}

// InvalidateCache drops every cached result.
func (e *Engine[T]) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = make(map[string]T)
}

// Metrics returns a snapshot of the counters.
func (e *Engine[T]) Metrics() Metrics {
	return Metrics{
		Submitted:        e.submitted.Load(),
		Executed:         e.executed.Load(),
		Successes:        e.successes.Load(),
		Failures:         e.failures.Load(),
		Panics:           e.panics.Load(),
		Cancelled:        e.cancelled.Load(),
		CacheHits:        e.hits.Load(),
		CacheMisses:      e.misses.Load(),
		Retries:          e.retries.Load(),
		BreakerOpens:     e.breakerOpens.Load(),
		BreakerFastFails: e.breakerFastFails.Load(),
		WallNanos:        e.wall.Load(),
	}
}

// BreakerStates snapshots every non-closed breaker, keyed by job ID. An
// empty map means the engine is healthy; lpmemd's /healthz degrades on
// any open entry.
func (e *Engine[T]) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState)
	e.bmu.Lock()
	defer e.bmu.Unlock()
	for id, b := range e.breakers {
		if b.state != BreakerClosed {
			out[id] = b.state
		}
	}
	return out
}

// ResetBreakers force-closes every breaker (operational reset, e.g.
// after the underlying fault is fixed without restarting lpmemd).
func (e *Engine[T]) ResetBreakers() {
	e.bmu.Lock()
	defer e.bmu.Unlock()
	e.breakers = make(map[string]*breaker)
}

// breakerAllow reports whether a job with this ID may execute now. An
// open breaker past its cooldown transitions to half-open and admits
// exactly one probe; other callers keep failing fast until the probe
// resolves the state.
func (e *Engine[T]) breakerAllow(id string) bool {
	if e.opts.BreakerThreshold <= 0 {
		return true
	}
	e.bmu.Lock()
	defer e.bmu.Unlock()
	b, ok := e.breakers[id]
	if !ok {
		return true
	}
	switch b.state {
	case BreakerOpen:
		if time.Since(b.openedAt) >= e.opts.BreakerCooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	case BreakerHalfOpen:
		// A probe is already in flight.
		return false
	default:
		return true
	}
}

// breakerResult records an execution outcome for the ID's breaker.
func (e *Engine[T]) breakerResult(id string, ok bool) {
	if e.opts.BreakerThreshold <= 0 {
		return
	}
	e.bmu.Lock()
	defer e.bmu.Unlock()
	b := e.breakers[id]
	if b == nil {
		b = &breaker{state: BreakerClosed}
		e.breakers[id] = b
	}
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= e.opts.BreakerThreshold {
		if b.state != BreakerOpen {
			e.breakerOpens.Add(1)
		}
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.fails = 0
	}
}

// backoff computes the capped exponential retry delay with deterministic
// jitter: the jitter factor in [0.5, 1.5) is derived from
// (RetrySeed, job ID, attempt), not from a shared PRNG, so concurrent
// batches cannot perturb each other's schedules.
func (e *Engine[T]) backoff(id string, attempt int) time.Duration {
	d := e.opts.RetryBaseDelay << uint(attempt-1)
	if d <= 0 || d > e.opts.RetryMaxDelay {
		d = e.opts.RetryMaxDelay
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", e.opts.RetrySeed, id, attempt)
	jitter := 0.5 + float64(h.Sum64()%1024)/1024.0
	return time.Duration(float64(d) * jitter)
}

// Run executes the batch on the pool and returns one outcome per job, in
// input order. Cancelling ctx stops dispatch: running jobs are given the
// cancelled context, and jobs not yet started are reported with the
// context's error instead of executing.
func (e *Engine[T]) Run(ctx context.Context, jobs []Job[T]) []Outcome[T] {
	return e.RunFunc(ctx, jobs, nil)
}

// RunFunc is Run with a completion hook: emit (when non-nil) is invoked
// with (input index, outcome) as each job settles, in completion order —
// the seam the HTTP streaming surface uses to push per-job events while
// the batch is still running. emit is called concurrently from worker
// goroutines, so it must be safe for concurrent use; jobs cancelled
// before dispatch are emitted too (from the calling goroutine, after the
// pool drains), so every job is emitted exactly once.
func (e *Engine[T]) RunFunc(ctx context.Context, jobs []Job[T], emit func(i int, o Outcome[T])) []Outcome[T] {
	out := make([]Outcome[T], len(jobs))
	workers := e.opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow goroutine the pool is bounded by workers and drains when idx closes
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.runOne(ctx, jobs[i])
				if emit != nil {
					emit(i, out[i])
				}
			}
		}()
	}

	next := len(jobs)
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			next = i
		}
		if next != len(jobs) {
			break
		}
	}
	close(idx)
	wg.Wait()

	// Jobs never handed to a worker surface the cancellation explicitly.
	for i := next; i < len(jobs); i++ {
		e.submitted.Add(1)
		e.cancelled.Add(1)
		out[i] = Outcome[T]{ID: jobs[i].ID, Err: ctx.Err()}
		if emit != nil {
			emit(i, out[i])
		}
	}
	return out
}

// runOne executes (or serves from cache) a single job.
func (e *Engine[T]) runOne(ctx context.Context, j Job[T]) Outcome[T] {
	e.submitted.Add(1)
	if err := ctx.Err(); err != nil {
		e.cancelled.Add(1)
		return Outcome[T]{ID: j.ID, Err: err}
	}

	useCache := !e.opts.NoCache && j.Key != ""
	var fl *flight[T]
	if useCache {
		e.mu.Lock()
		if v, ok := e.cache[j.Key]; ok {
			e.mu.Unlock()
			e.hits.Add(1)
			e.successes.Add(1)
			return Outcome[T]{ID: j.ID, Value: v, Cached: true}
		}
		if other, ok := e.inflight[j.Key]; ok {
			e.mu.Unlock()
			return e.join(ctx, j, other)
		}
		fl = &flight[T]{done: make(chan struct{})}
		e.inflight[j.Key] = fl
		e.mu.Unlock()
		e.misses.Add(1)
	}

	start := time.Now()
	var v T
	var err error
	if !e.breakerAllow(j.ID) {
		e.breakerFastFails.Add(1)
		err = fmt.Errorf("%w: job %s is cooling down", ErrCircuitOpen, j.ID)
	} else {
		// Each attempt gets a fresh deadline window; retries back off
		// exponentially with seeded jitter and stop as soon as the batch
		// context dies.
		for attempt := 0; ; attempt++ {
			jctx, cancel := ctx, context.CancelFunc(func() {})
			if e.opts.Timeout > 0 {
				jctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
			}
			v, err = e.invoke(jctx, j)
			cancel()
			e.executed.Add(1)
			if err == nil || attempt >= e.opts.Retries || ctx.Err() != nil {
				break
			}
			e.retries.Add(1)
			if sleepErr := sleepCtx(ctx, e.backoff(j.ID, attempt+1)); sleepErr != nil {
				break
			}
		}
		e.breakerResult(j.ID, err == nil)
	}
	d := time.Since(start)
	e.wall.Add(int64(d))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.cancelled.Add(1)
		}
		e.failures.Add(1)
	} else {
		e.successes.Add(1)
	}

	if fl != nil {
		fl.val, fl.err = v, err
		e.mu.Lock()
		if err == nil {
			e.cache[j.Key] = v
		}
		delete(e.inflight, j.Key)
		e.mu.Unlock()
		close(fl.done)
	}
	return Outcome[T]{ID: j.ID, Value: v, Err: err, Duration: d}
}

// sleepCtx waits for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// join waits for an identical in-flight job instead of re-executing it.
func (e *Engine[T]) join(ctx context.Context, j Job[T], fl *flight[T]) Outcome[T] {
	select {
	case <-fl.done:
	case <-ctx.Done():
		e.cancelled.Add(1)
		return Outcome[T]{ID: j.ID, Err: ctx.Err()}
	}
	if fl.err != nil {
		e.failures.Add(1)
		return Outcome[T]{ID: j.ID, Err: fl.err}
	}
	e.hits.Add(1)
	e.successes.Add(1)
	return Outcome[T]{ID: j.ID, Value: fl.val, Cached: true}
}

// invoke runs the job body with panic containment and deadline
// enforcement. The job runs in its own goroutine so a deadline overrun
// abandons it rather than blocking a pool worker forever.
func (e *Engine[T]) invoke(ctx context.Context, j Job[T]) (T, error) {
	type res struct {
		v   T
		err error
	}
	ch := make(chan res, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.panics.Add(1)
				var zero T
				//lint:allow goroutine ch is buffered (cap 1) and has exactly one sender; the send cannot block
				ch <- res{zero, &PanicError{ID: j.ID, Value: r, Stack: debug.Stack()}}
			}
		}()
		v, err := j.Run(ctx)
		//lint:allow goroutine ch is buffered (cap 1) and has exactly one sender; the send cannot block
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}
