package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lpmem/internal/testutil"
)

// TestRetryHealsTransient: a job that fails its first two attempts
// succeeds within the retry budget, and the metrics count the retries.
func TestRetryHealsTransient(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := New[int](Options{Workers: 1, NoCache: true, Retries: 3, RetryBaseDelay: time.Millisecond})
	var attempts atomic.Int64
	out := e.Run(context.Background(), []Job[int]{job("flaky", func(context.Context) (int, error) {
		if attempts.Add(1) <= 2 {
			return 0, errors.New("transient")
		}
		return 7, nil
	})})
	if out[0].Err != nil || out[0].Value != 7 {
		t.Fatalf("outcome: %+v", out[0])
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	m := e.Metrics()
	if m.Retries != 2 || m.Executed != 3 || m.Successes != 1 || m.Failures != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestRetryBudgetExhausted: a permanently failing job surfaces its last
// error after Retries+1 attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := New[int](Options{Workers: 1, NoCache: true, Retries: 2, RetryBaseDelay: time.Millisecond})
	var attempts atomic.Int64
	out := e.Run(context.Background(), []Job[int]{job("doomed", func(context.Context) (int, error) {
		return 0, fmt.Errorf("failure %d", attempts.Add(1))
	})})
	if out[0].Err == nil || !strings.Contains(out[0].Err.Error(), "failure 3") {
		t.Fatalf("want last attempt's error, got %v", out[0].Err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if m := e.Metrics(); m.Retries != 2 || m.Failures != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestRetryStopsOnBatchCancel: once the batch context dies, no further
// attempts are made.
func TestRetryStopsOnBatchCancel(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	e := New[int](Options{Workers: 1, NoCache: true, Retries: 10, RetryBaseDelay: time.Millisecond})
	var attempts atomic.Int64
	out := e.Run(ctx, []Job[int]{job("J", func(context.Context) (int, error) {
		attempts.Add(1)
		cancel()
		return 0, errors.New("fail")
	})})
	if out[0].Err == nil {
		t.Fatal("want failure")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry after cancel)", got)
	}
}

// TestRetryPerAttemptTimeout: each retry gets a fresh Timeout window, so
// a job that is slow once but fast afterwards recovers.
func TestRetryPerAttemptTimeout(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := New[int](Options{
		Workers: 1, NoCache: true, Timeout: 30 * time.Millisecond,
		Retries: 1, RetryBaseDelay: time.Millisecond,
	})
	var attempts atomic.Int64
	out := e.Run(context.Background(), []Job[int]{job("slow-once", func(ctx context.Context) (int, error) {
		if attempts.Add(1) == 1 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return 9, nil
	})})
	if out[0].Err != nil || out[0].Value != 9 {
		t.Fatalf("outcome: %+v", out[0])
	}
}

// TestBackoffDeterministic: the jittered schedule is a pure function of
// (seed, id, attempt), and grows exponentially up to the cap.
func TestBackoffDeterministic(t *testing.T) {
	mk := func(seed int64) *Engine[int] {
		return New[int](Options{
			Retries: 5, RetryBaseDelay: 10 * time.Millisecond,
			RetryMaxDelay: 80 * time.Millisecond, RetrySeed: seed,
		})
	}
	a, b := mk(1), mk(1)
	for attempt := 1; attempt <= 5; attempt++ {
		da, db := a.backoff("E1", attempt), b.backoff("E1", attempt)
		if da != db {
			t.Fatalf("attempt %d: %v vs %v", attempt, da, db)
		}
		// Jitter is bounded to [0.5, 1.5) of the capped exponential step.
		step := 10 * time.Millisecond << uint(attempt-1)
		if step > 80*time.Millisecond {
			step = 80 * time.Millisecond
		}
		if da < step/2 || da > step*3/2 {
			t.Fatalf("attempt %d: %v outside jitter band of %v", attempt, da, step)
		}
	}
	if mk(1).backoff("E1", 1) == mk(2).backoff("E1", 1) &&
		mk(1).backoff("E1", 2) == mk(2).backoff("E1", 2) &&
		mk(1).backoff("E1", 3) == mk(2).backoff("E1", 3) {
		t.Fatal("different seeds produced an identical schedule")
	}
}

// TestBreakerLifecycle: consecutive failures open the breaker, open
// breakers fast-fail without executing, the cooldown admits a half-open
// probe, and a successful probe closes the circuit.
func TestBreakerLifecycle(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := New[int](Options{
		Workers: 1, NoCache: true,
		BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond,
	})
	var healthy atomic.Bool
	var execs atomic.Int64
	mk := func() []Job[int] {
		return []Job[int]{job("E1", func(context.Context) (int, error) {
			execs.Add(1)
			if healthy.Load() {
				return 1, nil
			}
			return 0, errors.New("down")
		})}
	}
	// Two consecutive failures open the breaker.
	for i := 0; i < 2; i++ {
		if out := e.Run(context.Background(), mk()); out[0].Err == nil {
			t.Fatal("want failure")
		}
	}
	if st := e.BreakerStates()["E1"]; st != BreakerOpen {
		t.Fatalf("state after failures = %q", st)
	}
	if m := e.Metrics(); m.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d", m.BreakerOpens)
	}
	// While open, jobs fast-fail without executing.
	before := execs.Load()
	out := e.Run(context.Background(), mk())
	if !errors.Is(out[0].Err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", out[0].Err)
	}
	if execs.Load() != before {
		t.Fatal("open breaker still executed the job")
	}
	if m := e.Metrics(); m.BreakerFastFails != 1 {
		t.Fatalf("fast fails = %d", m.BreakerFastFails)
	}
	// After the cooldown the half-open probe runs; success closes it.
	healthy.Store(true)
	time.Sleep(40 * time.Millisecond)
	out = e.Run(context.Background(), mk())
	if out[0].Err != nil || out[0].Value != 1 {
		t.Fatalf("probe outcome: %+v", out[0])
	}
	if st, ok := e.BreakerStates()["E1"]; ok {
		t.Fatalf("breaker still %q after successful probe", st)
	}
	// A failed probe would reopen: break it again and verify reset works.
	healthy.Store(false)
	for i := 0; i < 2; i++ {
		e.Run(context.Background(), mk())
	}
	if st := e.BreakerStates()["E1"]; st != BreakerOpen {
		t.Fatalf("state = %q, want reopen", st)
	}
	e.ResetBreakers()
	if len(e.BreakerStates()) != 0 {
		t.Fatal("ResetBreakers left state behind")
	}
}

// TestBreakerRetriesCountAsOneOutcome: the breaker sees the post-retry
// outcome, not each attempt, so a job that heals within its retry budget
// never trips it.
func TestBreakerRetriesCountAsOneOutcome(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := New[int](Options{
		Workers: 1, NoCache: true,
		Retries: 2, RetryBaseDelay: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
	})
	var attempts atomic.Int64
	for round := 0; round < 3; round++ {
		attempts.Store(0)
		out := e.Run(context.Background(), []Job[int]{job("E1", func(context.Context) (int, error) {
			if attempts.Add(1) <= 2 {
				return 0, errors.New("transient")
			}
			return 1, nil
		})})
		if out[0].Err != nil {
			t.Fatalf("round %d: %v", round, out[0].Err)
		}
	}
	if len(e.BreakerStates()) != 0 {
		t.Fatal("healed retries tripped the breaker")
	}
}

// TestPanicStackReachesError: the panic stack is part of the flattened
// error string, so JSON envelopes and logs carry it.
func TestPanicStackReachesError(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := New[int](Options{Workers: 1, NoCache: true})
	out := e.Run(context.Background(), []Job[int]{job("boom", func(context.Context) (int, error) {
		panic("kaboom-stack-test")
	})})
	msg := out[0].Err.Error()
	if !strings.Contains(msg, "kaboom-stack-test") {
		t.Fatalf("panic value missing from error: %s", msg)
	}
	if !strings.Contains(msg, "goroutine") || !strings.Contains(msg, "robustness_test.go") {
		t.Fatalf("stack trace missing from error: %s", msg)
	}
}

// TestEngineShutdownLeaksNothing: a mixed batch (successes, failures,
// panics, a timeout) leaves no goroutines behind once outcomes settle.
func TestEngineShutdownLeaksNothing(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := New[int](Options{Workers: 4, NoCache: true, Timeout: 20 * time.Millisecond, Retries: 1, RetryBaseDelay: time.Millisecond})
	jobs := []Job[int]{
		constJob("ok", 1),
		job("err", func(context.Context) (int, error) { return 0, errors.New("nope") }),
		job("panic", func(context.Context) (int, error) { panic("boom") }),
		job("stuck", func(ctx context.Context) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		}),
	}
	out := e.Run(context.Background(), jobs)
	if out[0].Err != nil {
		t.Fatalf("ok job failed: %v", out[0].Err)
	}
	for _, i := range []int{1, 2, 3} {
		if out[i].Err == nil {
			t.Fatalf("job %d should fail", i)
		}
	}
}
