// Package testutil holds helpers shared by the robustness test suites,
// most importantly the goroutine-leak assertion used around the runner
// engine and the lpmemd HTTP surface.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if more goroutines are still alive after a settle
// loop. Call it first in a test — before engines or test servers start —
// so its cleanup runs last (cleanups are LIFO) and observes a fully
// shut-down system. The settle loop exists because abandoned runner jobs
// legitimately finish in the background shortly after a batch returns.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		now := runtime.NumGoroutine()
		for now > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			now = runtime.NumGoroutine()
		}
		if now > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after settling\n%s", before, now, buf[:n])
		}
	})
}
