package workloads

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"lpmem/internal/isa"
)

// QSort builds a recursive quicksort (Lomuto partition) over 256 signed
// words. Unlike the flat loop kernels it mixes genuine call-stack traffic
// (return addresses, spilled locals) with data-dependent array accesses,
// feeding the stack-memory experiment with realistic call density.
func QSort(seed int64) *Instance {
	const (
		n       = 256
		arrBase = 0x0030_0000
	)
	r := rng(seed)
	arr := words16(r, n)
	want := append([]uint32(nil), arr...)
	sort.Slice(want, func(i, j int) bool { return int32(want[i]) < int32(want[j]) })

	b := isa.NewBuilder()
	b.MoviU(7, arrBase)
	b.Movi(1, 0)
	b.Movi(2, n-1)
	b.Jal("qsort")
	b.Halt()

	// qsort(lo=r1, hi=r2); clobbers r3..r12.
	b.Label("qsort")
	b.Blt(1, 2, "qs_go")
	b.Ret()
	b.Label("qs_go")
	b.Push(isa.LR)
	// Lomuto partition with pivot = a[hi].
	b.Shli(3, 2, 2)
	b.Add(3, 3, 7)
	b.Lw(4, 3, 0)    // pivot
	b.Addi(5, 1, -1) // i = lo-1
	b.Mov(6, 1)      // j = lo
	b.Label("qs_loop")
	b.Bge(6, 2, "qs_done")
	b.Shli(3, 6, 2)
	b.Add(3, 3, 7)
	b.Lw(8, 3, 0) // a[j]
	b.Bge(8, 4, "qs_skip")
	b.Addi(5, 5, 1)
	b.Shli(9, 5, 2)
	b.Add(9, 9, 7)
	b.Lw(10, 9, 0) // a[i]
	b.Sw(8, 9, 0)  // a[i] = a[j]
	b.Sw(10, 3, 0) // a[j] = old a[i]
	b.Label("qs_skip")
	b.Addi(6, 6, 1)
	b.Jmp("qs_loop")
	b.Label("qs_done")
	b.Addi(5, 5, 1) // p = i+1
	b.Shli(9, 5, 2)
	b.Add(9, 9, 7)
	b.Lw(10, 9, 0) // a[p]
	b.Shli(3, 2, 2)
	b.Add(3, 3, 7)
	b.Lw(8, 3, 0)  // a[hi]
	b.Sw(8, 9, 0)  // a[p] = a[hi]
	b.Sw(10, 3, 0) // a[hi] = old a[p]
	// Recurse left: qsort(lo, p-1); save hi and p across the call.
	b.Push(2)
	b.Push(5)
	b.Addi(2, 5, -1)
	b.Jal("qsort")
	b.Pop(5) // p
	b.Pop(2) // hi
	// Recurse right: qsort(p+1, hi).
	b.Addi(1, 5, 1)
	b.Jal("qsort")
	b.Pop(isa.LR)
	b.Ret()

	return &Instance{
		Name: "qsort",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(arrBase, arr)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWords(arrBase, n)
			return compareWords("arr", want, got)
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "arr", Base: arrBase, Size: n * 4},
			{Name: "stack", Base: isa.DefaultStackTop - isa.DefaultStackSize, Size: isa.DefaultStackSize},
		},
	}
}

// huffNode is a tree node for the Go-side canonical Huffman construction.
type huffNode struct {
	freq        uint64
	sym         int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildHuffman returns per-symbol code values and lengths (<=16 bits) for
// the given frequencies.
func buildHuffman(freq []uint64) (codes, lens []uint32) {
	h := &huffHeap{}
	for s, f := range freq {
		if f > 0 {
			heap.Push(h, &huffNode{freq: f, sym: s})
		}
	}
	if h.Len() == 1 {
		n := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: n.freq, sym: -1, left: n, right: &huffNode{sym: n.sym}})
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		bb := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + bb.freq, sym: -1, left: a, right: bb})
	}
	codes = make([]uint32, len(freq))
	lens = make([]uint32, len(freq))
	var walk func(n *huffNode, code uint32, depth uint32)
	walk = func(n *huffNode, code uint32, depth uint32) {
		if n == nil {
			return
		}
		if n.left == nil && n.right == nil {
			if depth == 0 {
				depth = 1
			}
			codes[n.sym] = code
			lens[n.sym] = depth
			return
		}
		walk(n.left, code<<1, depth+1)
		walk(n.right, code<<1|1, depth+1)
	}
	walk(heap.Pop(h).(*huffNode), 0, 0)
	return codes, lens
}

// Huffman builds a table-driven Huffman bit-packing encoder over 1 KiB of
// skewed byte data, the entropy-coding tail of every media codec.
func Huffman(seed int64) *Instance {
	const (
		n        = 1024
		datBase  = 0x0031_0000
		codeBase = 0x0031_4000
		lenBase  = 0x0031_8000
		outBase  = 0x0031_C000
		resBase  = 0x0031_F000
	)
	r := rng(seed)
	// Skewed symbol distribution over a 64-symbol alphabet.
	data := make([]byte, n)
	for i := range data {
		f := r.Float64()
		data[i] = byte(f * f * 64)
	}
	freq := make([]uint64, 256)
	for _, by := range data {
		freq[by]++
	}
	codes, lens := buildHuffman(freq)
	// Golden bit packer, mirroring the kernel's arithmetic exactly.
	var out []byte
	var bitbuf, bits uint32
	for _, by := range data {
		bitbuf = bitbuf<<lens[by] | codes[by]
		bits += lens[by]
		for bits >= 8 {
			bits -= 8
			out = append(out, byte(bitbuf>>bits))
		}
	}
	if bits > 0 {
		out = append(out, byte(bitbuf<<(8-bits)))
	}

	b := isa.NewBuilder()
	b.MoviU(7, datBase)
	b.MoviU(8, codeBase)
	b.MoviU(9, lenBase)
	b.MoviU(10, outBase)
	b.Movi(1, 0) // i
	b.Movi(2, n)
	b.Movi(3, 0) // bitbuf
	b.Movi(4, 0) // bits
	b.Movi(5, 0) // out length
	b.Label("loop")
	b.Bge(1, 2, "flush")
	b.Add(11, 7, 1)
	b.Lb(12, 11, 0) // symbol
	b.Shli(11, 12, 2)
	b.Add(11, 11, 8)
	b.Lw(6, 11, 0) // code
	b.Shli(11, 12, 2)
	b.Add(11, 11, 9)
	b.Lw(12, 11, 0) // len
	b.Shl(3, 3, 12)
	b.Or(3, 3, 6)
	b.Add(4, 4, 12)
	b.Label("emit")
	b.Movi(11, 8)
	b.Blt(4, 11, "next")
	b.Addi(4, 4, -8)
	b.Shr(11, 3, 4)
	b.Andi(11, 11, 255)
	b.Add(12, 10, 5)
	b.Sb(11, 12, 0)
	b.Addi(5, 5, 1)
	b.Jmp("emit")
	b.Label("next")
	b.Addi(1, 1, 1)
	b.Jmp("loop")
	b.Label("flush")
	b.Movi(11, 0)
	b.Beq(4, 11, "done")
	b.Movi(11, 8)
	b.Sub(11, 11, 4)
	b.Shl(12, 3, 11)
	b.Andi(12, 12, 255)
	b.Add(11, 10, 5)
	b.Sb(12, 11, 0)
	b.Addi(5, 5, 1)
	b.Label("done")
	b.MoviU(11, resBase)
	b.Sw(5, 11, 0)
	b.Halt()

	return &Instance{
		Name: "huffman",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadBytes(datBase, data)
			c.Mem.LoadWords(codeBase, codes)
			c.Mem.LoadWords(lenBase, lens)
		},
		Check: func(c *isa.CPU) error {
			if got := c.Mem.ReadWord(resBase); got != uint32(len(out)) {
				return fmt.Errorf("out length = %d, want %d", got, len(out))
			}
			for i, w := range out {
				if got := c.Mem.LoadByte(outBase + uint32(i)); got != w {
					return fmt.Errorf("out[%d] = %#x, want %#x", i, got, w)
				}
			}
			return nil
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "data", Base: datBase, Size: n},
			{Name: "codes", Base: codeBase, Size: 256 * 4},
			{Name: "lens", Base: lenBase, Size: 256 * 4},
			{Name: "out", Base: outBase, Size: n * 2},
			{Name: "res", Base: resBase, Size: 4},
		},
	}
}

// Dijkstra builds a single-source shortest-path solve (O(V²), adjacency
// matrix) over a 32-vertex random graph, the MiBench network kernel.
func Dijkstra(seed int64) *Instance {
	const (
		v        = 32
		inf      = 1 << 20
		adjBase  = 0x0032_0000
		distBase = 0x0032_4000
		visBase  = 0x0032_8000
	)
	r := rng(seed)
	adj := make([]uint32, v*v)
	for i := 0; i < v; i++ {
		for j := 0; j < v; j++ {
			switch {
			case i == j:
				adj[i*v+j] = 0
			case r.Float64() < 0.25:
				adj[i*v+j] = uint32(1 + r.Intn(100))
			default:
				adj[i*v+j] = inf
			}
		}
	}
	// Golden Dijkstra.
	dist := make([]uint32, v)
	vis := make([]bool, v)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	for iter := 0; iter < v; iter++ {
		u, best := -1, uint32(inf+1)
		for i := 0; i < v; i++ {
			if !vis[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		vis[u] = true
		for j := 0; j < v; j++ {
			if w := adj[u*v+j]; w < inf && dist[u]+w < dist[j] {
				dist[j] = dist[u] + w
			}
		}
	}

	b := isa.NewBuilder()
	b.MoviU(7, adjBase)
	b.MoviU(8, distBase)
	b.MoviU(9, visBase)
	// init: dist[i]=inf, vis[i]=0; dist[0]=0
	b.Movi(1, 0)
	b.Movi(2, v)
	b.Movi(3, inf)
	b.Label("init")
	b.Bge(1, 2, "initdone")
	b.Shli(4, 1, 2)
	b.Add(5, 4, 8)
	b.Sw(3, 5, 0)
	b.Add(5, 4, 9)
	b.Movi(6, 0)
	b.Sw(6, 5, 0)
	b.Addi(1, 1, 1)
	b.Jmp("init")
	b.Label("initdone")
	b.Movi(6, 0)
	b.Sw(6, 8, 0) // dist[0] = 0
	// main loop: v iterations
	b.Movi(12, 0) // iter
	b.Label("outer")
	b.Bge(12, 2, "done")
	// find min unvisited: u in r10, best in r11
	b.Movi(10, -1)
	b.Movi(11, inf+1)
	b.Movi(1, 0)
	b.Label("scan")
	b.Bge(1, 2, "scandone")
	b.Shli(4, 1, 2)
	b.Add(5, 4, 9)
	b.Lw(6, 5, 0) // vis[i]
	b.Movi(3, 0)
	b.Bne(6, 3, "scannext")
	b.Add(5, 4, 8)
	b.Lw(6, 5, 0) // dist[i]
	b.Bge(6, 11, "scannext")
	b.Mov(10, 1)
	b.Mov(11, 6)
	b.Label("scannext")
	b.Addi(1, 1, 1)
	b.Jmp("scan")
	b.Label("scandone")
	b.Movi(3, -1)
	b.Beq(10, 3, "done") // no reachable unvisited vertex
	// vis[u] = 1
	b.Shli(4, 10, 2)
	b.Add(5, 4, 9)
	b.Movi(3, 1)
	b.Sw(3, 5, 0)
	// relax all j
	b.Movi(1, 0) // j
	b.Label("relax")
	b.Bge(1, 2, "relaxdone")
	b.Movi(3, v)
	b.Mul(5, 10, 3)
	b.Add(5, 5, 1)
	b.Shli(5, 5, 2)
	b.Add(5, 5, 7)
	b.Lw(6, 5, 0) // w = adj[u][j]
	b.Movi(3, inf)
	b.Bge(6, 3, "relaxnext")
	b.Add(6, 6, 11) // dist[u] + w (dist[u] == best == r11)
	b.Shli(4, 1, 2)
	b.Add(5, 4, 8)
	b.Lw(3, 5, 0) // dist[j]
	b.Bge(6, 3, "relaxnext")
	b.Sw(6, 5, 0)
	b.Label("relaxnext")
	b.Addi(1, 1, 1)
	b.Jmp("relax")
	b.Label("relaxdone")
	b.Addi(12, 12, 1)
	b.Jmp("outer")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "dijkstra",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(adjBase, adj)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWords(distBase, v)
			return compareWords("dist", dist, got)
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "adj", Base: adjBase, Size: v * v * 4},
			{Name: "dist", Base: distBase, Size: v * 4},
			{Name: "vis", Base: visBase, Size: v * 4},
		},
	}
}

// FFT builds an in-place iterative radix-2 decimation-in-time FFT over 32
// complex fixed-point samples (Q8 twiddles), the core of OFDM and audio
// front ends. The golden model mirrors the identical integer arithmetic.
func FFT(seed int64) *Instance {
	const (
		n       = 32
		stages  = 5
		reBase  = 0x0033_0000
		imBase  = 0x0033_1000
		wreBase = 0x0033_2000
		wimBase = 0x0033_3000
	)
	r := rng(seed)
	re := make([]uint32, n)
	im := make([]uint32, n)
	for i := range re {
		re[i] = uint32(int32(r.Intn(2048) - 1024))
		im[i] = uint32(int32(r.Intn(2048) - 1024))
	}
	wre := make([]uint32, n/2)
	wim := make([]uint32, n/2)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / n
		wre[k] = uint32(int32(math.Round(256 * math.Cos(ang))))
		wim[k] = uint32(int32(math.Round(256 * math.Sin(ang))))
	}
	// Golden model: identical loop nest and integer ops.
	gre := append([]uint32(nil), re...)
	gim := append([]uint32(nil), im...)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for base := 0; base < n; base += size {
			for k := 0; k < half; k++ {
				wi := k * step
				a := base + k
				bb := base + k + half
				tre := uint32(int32(wre[wi]*gre[bb]-wim[wi]*gim[bb]) >> 8)
				tim := uint32(int32(wre[wi]*gim[bb]+wim[wi]*gre[bb]) >> 8)
				gre[bb] = gre[a] - tre
				gim[bb] = gim[a] - tim
				gre[a] += tre
				gim[a] += tim
			}
		}
	}

	b := isa.NewBuilder()
	b.MoviU(7, reBase)
	b.MoviU(8, imBase)
	b.Movi(1, 2) // size
	b.Label("sizeloop")
	b.Movi(2, n)
	b.Blt(2, 1, "done") // size > n -> done
	b.Shri(2, 1, 1)     // half = size/2
	b.Movi(3, 0)        // base
	b.Label("baseloop")
	b.Movi(4, n)
	b.Bge(3, 4, "baseend")
	b.Movi(4, 0) // k
	b.Label("kloop")
	b.Bge(4, 2, "kend")
	// wi = k * (n/size): n/size = n >> log2(size); compute as k*n/size
	b.Movi(5, n)
	b.Mul(5, 5, 4)
	b.Div(5, 5, 1) // wi = k*n/size
	// load twiddles into r9 (wre), r10 (wim)
	b.Shli(6, 5, 2)
	b.MoviU(9, wreBase)
	b.Add(9, 9, 6)
	b.Lw(9, 9, 0)
	b.MoviU(10, wimBase)
	b.Add(10, 10, 6)
	b.Lw(10, 10, 0)
	// indices: a = base+k (r5), b = a+half (r6)
	b.Add(5, 3, 4)
	b.Add(6, 5, 2)
	// load b's re/im into r11, r12
	b.Shli(11, 6, 2)
	b.Add(11, 11, 7)
	b.Lw(11, 11, 0) // re[b]
	b.Shli(12, 6, 2)
	b.Add(12, 12, 8)
	b.Lw(12, 12, 0) // im[b]
	// tre = (wre*re[b] - wim*im[b]) >> 8  -> r11'
	// tim = (wre*im[b] + wim*re[b]) >> 8  -> r12'
	// Need temporaries: compute into stack-free regs by reusing r9/r10
	// after use. tre: t1 = wre*re[b]; t2 = wim*im[b]; tre = (t1-t2)>>8.
	b.Push(11)       // save re[b]
	b.Mul(11, 9, 11) // wre*re[b]
	b.Mul(9, 10, 12) // wim*im[b] (wre no longer needed in r9)
	b.Sub(11, 11, 9) // diff
	b.Movi(9, 8)
	b.Sra(11, 11, 9) // tre
	// tim: wre was clobbered... need wre again. Recompute from memory.
	b.Push(11) // save tre
	b.Movi(9, n)
	b.Mul(9, 9, 4)
	b.Div(9, 9, 1)
	b.Shli(9, 9, 2)
	b.MoviU(11, wreBase)
	b.Add(11, 11, 9)
	b.Lw(11, 11, 0)   // wre again
	b.Mul(12, 11, 12) // wre*im[b]
	b.Pop(11)         // tre
	b.Pop(9)          // re[b]
	b.Push(11)        // save tre again
	b.Movi(11, n)
	b.Mul(11, 11, 4)
	b.Div(11, 11, 1)
	b.Shli(11, 11, 2)
	b.MoviU(10, wimBase)
	b.Add(10, 10, 11)
	b.Lw(10, 10, 0) // wim again
	b.Mul(9, 10, 9) // wim*re[b]
	b.Add(12, 12, 9)
	b.Movi(9, 8)
	b.Sra(12, 12, 9) // tim
	b.Pop(11)        // tre
	// re[b] = re[a] - tre; re[a] += tre
	b.Shli(9, 5, 2)
	b.Add(9, 9, 7)
	b.Lw(10, 9, 0)   // re[a]
	b.Sub(9, 10, 11) // re[a]-tre -> r9 value
	b.Push(9)
	b.Add(10, 10, 11) // re[a]+tre
	b.Shli(9, 5, 2)
	b.Add(9, 9, 7)
	b.Sw(10, 9, 0) // re[a] updated
	b.Pop(10)
	b.Shli(9, 6, 2)
	b.Add(9, 9, 7)
	b.Sw(10, 9, 0) // re[b] updated
	// im[b] = im[a] - tim; im[a] += tim
	b.Shli(9, 5, 2)
	b.Add(9, 9, 8)
	b.Lw(10, 9, 0) // im[a]
	b.Sub(11, 10, 12)
	b.Add(10, 10, 12)
	b.Sw(10, 9, 0) // im[a] updated
	b.Shli(9, 6, 2)
	b.Add(9, 9, 8)
	b.Sw(11, 9, 0) // im[b] updated
	b.Addi(4, 4, 1)
	b.Jmp("kloop")
	b.Label("kend")
	b.Add(3, 3, 1) // base += size (size lives in r1)
	b.Jmp("baseloop")
	b.Label("baseend")
	b.Shli(1, 1, 1) // size *= 2
	b.Jmp("sizeloop")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "fft",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(reBase, re)
			c.Mem.LoadWords(imBase, im)
			c.Mem.LoadWords(wreBase, wre)
			c.Mem.LoadWords(wimBase, wim)
		},
		Check: func(c *isa.CPU) error {
			if err := compareWords("re", gre, c.Mem.ReadWords(reBase, n)); err != nil {
				return err
			}
			return compareWords("im", gim, c.Mem.ReadWords(imBase, n))
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "re", Base: reBase, Size: n * 4},
			{Name: "im", Base: imBase, Size: n * 4},
			{Name: "wre", Base: wreBase, Size: n / 2 * 4},
			{Name: "wim", Base: wimBase, Size: n / 2 * 4},
			{Name: "stack", Base: isa.DefaultStackTop - 256, Size: 256 + 16},
		},
	}
}

// BitCount builds the classic parallel popcount over 2048 words (the
// MiBench automotive kernel): pure ALU work on a sequential stream.
func BitCount(seed int64) *Instance {
	const (
		n       = 2048
		datBase = 0x0034_0000
		resBase = 0x0034_4000
	)
	r := rng(seed)
	data := make([]uint32, n)
	for i := range data {
		data[i] = r.Uint32()
	}
	var want uint32
	for _, w := range data {
		v := w
		v = v - (v>>1)&0x55555555
		v = v&0x33333333 + (v>>2)&0x33333333
		v = (v + v>>4) & 0x0F0F0F0F
		want += v * 0x01010101 >> 24
	}

	b := isa.NewBuilder()
	b.MoviU(7, datBase)
	b.Movi(1, 0)
	b.Movi(2, n)
	b.Movi(5, 0) // total
	b.MoviU(8, 0x55555555)
	b.MoviU(9, 0x33333333)
	b.MoviU(10, 0x0F0F0F0F)
	b.MoviU(11, 0x01010101)
	b.Label("loop")
	b.Bge(1, 2, "done")
	b.Shli(3, 1, 2)
	b.Add(3, 3, 7)
	b.Lw(3, 3, 0) // v
	b.Shri(4, 3, 1)
	b.And(4, 4, 8)
	b.Sub(3, 3, 4) // v - (v>>1)&5555
	b.Shri(4, 3, 2)
	b.And(4, 4, 9)
	b.And(3, 3, 9)
	b.Add(3, 3, 4)
	b.Shri(4, 3, 4)
	b.Add(3, 3, 4)
	b.And(3, 3, 10)
	b.Mul(3, 3, 11)
	b.Shri(3, 3, 24)
	b.Add(5, 5, 3)
	b.Addi(1, 1, 1)
	b.Jmp("loop")
	b.Label("done")
	b.MoviU(3, resBase)
	b.Sw(5, 3, 0)
	b.Halt()

	return &Instance{
		Name: "bitcount",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(datBase, data)
		},
		Check: func(c *isa.CPU) error {
			if got := c.Mem.ReadWord(resBase); got != want {
				return fmt.Errorf("popcount = %d, want %d", got, want)
			}
			return nil
		},
		MaxSteps: 200_000,
		Arrays: []Array{
			{Name: "data", Base: datBase, Size: n * 4},
			{Name: "res", Base: resBase, Size: 4},
		},
	}
}
