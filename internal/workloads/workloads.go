// Package workloads provides the embedded benchmark kernels used by every
// experiment. Each kernel is a real µRISC program (internal/isa) with a
// deterministic data set, an initialiser and a result checker, standing in
// for the MediaBench / Ptolemy / DSPstone programs of the DATE'03
// evaluations: digital filters, transforms, codecs, sorting, hashing,
// searching and call-heavy control code.
package workloads

import (
	"fmt"
	"math/rand"

	"lpmem/internal/isa"
	"lpmem/internal/trace"
)

// Array describes a named data region of a kernel instance; the
// partitioning and layer-assignment experiments consume this metadata.
type Array struct {
	Name string
	Base uint32
	Size uint32 // bytes
}

// Instance is a ready-to-run kernel: program, data and checker.
type Instance struct {
	Name     string
	Prog     *isa.Program
	Init     func(c *isa.CPU)
	Check    func(c *isa.CPU) error
	MaxSteps int
	Arrays   []Array
}

// Kernel is a named kernel generator. Build must be deterministic in seed.
type Kernel struct {
	Name  string
	Build func(seed int64) *Instance
}

// All returns the full kernel suite in a stable order.
func All() []Kernel {
	return []Kernel{
		{Name: "fir", Build: FIR},
		{Name: "matmul", Build: MatMul},
		{Name: "dct", Build: DCT},
		{Name: "adpcm", Build: ADPCM},
		{Name: "histogram", Build: Histogram},
		{Name: "sort", Build: InsertionSort},
		{Name: "crc32", Build: CRC32},
		{Name: "strsearch", Build: StringSearch},
		{Name: "autocorr", Build: AutoCorr},
		{Name: "fibcall", Build: FibCall},
		{Name: "hashlookup", Build: HashLookup},
		{Name: "listchase", Build: ListChase},
		{Name: "spmv", Build: SpMV},
		{Name: "qsort", Build: QSort},
		{Name: "huffman", Build: Huffman},
		{Name: "dijkstra", Build: Dijkstra},
		{Name: "fft", Build: FFT},
		{Name: "bitcount", Build: BitCount},
	}
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("workloads: unknown kernel %q", name)
}

// Result bundles the outputs of a kernel run.
type Result struct {
	Trace   *trace.Trace
	Cycles  uint64
	Retired uint64
}

// TraceTransform, when non-nil, is applied to every trace Run produces
// before it reaches the caller. It exists for the cross-format
// equivalence test, which points it at a binary serialise/re-read
// round-trip to prove the columnar trace format is invisible to every
// experiment that consumes kernel traces. It must only be set from a
// single goroutine with no runs in flight (tests set it up front).
var TraceTransform func(*trace.Trace) *trace.Trace

// Run executes the instance on a fresh CPU with tracing enabled, verifies
// the result and returns the trace and cycle count.
func Run(inst *Instance) (*Result, error) {
	cpu := isa.NewCPU(inst.Prog)
	if inst.Init != nil {
		inst.Init(cpu)
	}
	t, err := cpu.RunTraced(inst.MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", inst.Name, err)
	}
	if inst.Check != nil {
		if err := inst.Check(cpu); err != nil {
			return nil, fmt.Errorf("workloads: %s: check failed: %w", inst.Name, err)
		}
	}
	if TraceTransform != nil {
		t = TraceTransform(t)
	}
	return &Result{Trace: t, Cycles: cpu.Cycles, Retired: cpu.Instructions}, nil
}

// MustRun is Run for tests and benchmarks where failure is a bug.
func MustRun(inst *Instance) *Result {
	r, err := Run(inst)
	if err != nil {
		//lint:allow panicfree Must* helper for tests and benchmarks; panicking on failure is the documented contract
		panic(err)
	}
	return r
}

// rng returns the deterministic random source used by all kernels.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// words16 generates n small signed values fitting in 16 bits, as typical
// DSP sample data.
func words16(r *rand.Rand, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(int32(r.Intn(65536) - 32768))
	}
	return out
}
