package workloads

import (
	"fmt"
	"math"

	"lpmem/internal/isa"
)

// FIR builds a 16-tap finite-impulse-response filter over 256 samples:
// y[n] = sum_k x[n+k]*h[k]. It is the canonical streaming-DSP kernel with
// three interleaved arrays, the pattern address clustering thrives on.
func FIR(seed int64) *Instance {
	const (
		n     = 256
		taps  = 16
		xBase = 0x0001_0000
		hBase = 0x0001_4000
		yBase = 0x0001_8000
	)
	r := rng(seed)
	x := words16(r, n)
	h := make([]uint32, taps)
	for i := range h {
		h[i] = uint32(int32(r.Intn(256) - 128))
	}
	// Golden model with identical wrap-around arithmetic.
	want := make([]uint32, n-taps)
	for i := range want {
		var acc uint32
		for k := 0; k < taps; k++ {
			acc += x[i+k] * h[k]
		}
		want[i] = acc
	}

	b := isa.NewBuilder()
	b.MoviU(7, xBase)
	b.MoviU(8, hBase)
	b.MoviU(9, yBase)
	b.Movi(1, 0)      // n
	b.Movi(2, n-taps) // limit
	b.Movi(5, taps)   // taps
	b.Label("outer")
	b.Bge(1, 2, "done")
	b.Movi(3, 0) // acc
	b.Movi(4, 0) // k
	b.Label("inner")
	b.Bge(4, 5, "endinner")
	b.Add(6, 1, 4)
	b.Shli(6, 6, 2)
	b.Add(6, 6, 7)
	b.Lw(10, 6, 0) // x[n+k]
	b.Shli(6, 4, 2)
	b.Add(6, 6, 8)
	b.Lw(11, 6, 0) // h[k]
	b.Mul(10, 10, 11)
	b.Add(3, 3, 10)
	b.Addi(4, 4, 1)
	b.Jmp("inner")
	b.Label("endinner")
	b.Shli(6, 1, 2)
	b.Add(6, 6, 9)
	b.Sw(3, 6, 0)
	b.Addi(1, 1, 1)
	b.Jmp("outer")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "fir",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(xBase, x)
			c.Mem.LoadWords(hBase, h)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWords(yBase, len(want))
			return compareWords("y", want, got)
		},
		MaxSteps: 200_000,
		Arrays: []Array{
			{Name: "x", Base: xBase, Size: n * 4},
			{Name: "h", Base: hBase, Size: taps * 4},
			{Name: "y", Base: yBase, Size: (n - taps) * 4},
		},
	}
}

// dctCoeffs returns the 8x8 integer DCT-II coefficient matrix scaled by 64.
func dctCoeffs() []uint32 {
	c := make([]uint32, 64)
	for u := 0; u < 8; u++ {
		for k := 0; k < 8; k++ {
			v := math.Round(64 * math.Cos(float64(2*k+1)*float64(u)*math.Pi/16))
			c[u*8+k] = uint32(int32(v))
		}
	}
	return c
}

// DCT builds a 1-D 8-point integer DCT over 24 sample blocks, the inner
// kernel of JPEG/MPEG-class codecs: out[b][u] = (sum_k C[u][k]*x[b][k])>>8.
func DCT(seed int64) *Instance {
	const (
		blocks = 24
		xBase  = 0x0002_0000
		cBase  = 0x0002_4000
		oBase  = 0x0002_8000
	)
	r := rng(seed)
	x := make([]uint32, blocks*8)
	for i := range x {
		x[i] = uint32(int32(r.Intn(512) - 256))
	}
	coef := dctCoeffs()
	want := make([]uint32, blocks*8)
	for b := 0; b < blocks; b++ {
		for u := 0; u < 8; u++ {
			var acc uint32
			for k := 0; k < 8; k++ {
				acc += coef[u*8+k] * x[b*8+k]
			}
			want[b*8+u] = uint32(int32(acc) >> 8)
		}
	}

	bld := isa.NewBuilder()
	bld.MoviU(7, xBase)
	bld.MoviU(8, cBase)
	bld.MoviU(9, oBase)
	bld.Movi(1, 0)      // b (block)
	bld.Movi(2, blocks) // block limit
	bld.Movi(12, 8)     // constant 8
	bld.Label("bloop")
	bld.Bge(1, 2, "done")
	bld.Movi(3, 0) // u
	bld.Label("uloop")
	bld.Bge(3, 12, "bend")
	bld.Movi(5, 0) // acc
	bld.Movi(4, 0) // k
	bld.Label("kloop")
	bld.Bge(4, 12, "kend")
	// C[u*8+k]
	bld.Shli(10, 3, 3)
	bld.Add(10, 10, 4)
	bld.Shli(10, 10, 2)
	bld.Add(10, 10, 8)
	bld.Lw(10, 10, 0)
	// x[b*8+k]
	bld.Shli(11, 1, 3)
	bld.Add(11, 11, 4)
	bld.Shli(11, 11, 2)
	bld.Add(11, 11, 7)
	bld.Lw(11, 11, 0)
	bld.Mul(10, 10, 11)
	bld.Add(5, 5, 10)
	bld.Addi(4, 4, 1)
	bld.Jmp("kloop")
	bld.Label("kend")
	bld.Movi(10, 8)
	bld.Sra(5, 5, 10) // acc >> 8, arithmetic
	bld.Shli(10, 1, 3)
	bld.Add(10, 10, 3)
	bld.Shli(10, 10, 2)
	bld.Add(10, 10, 9)
	bld.Sw(5, 10, 0)
	bld.Addi(3, 3, 1)
	bld.Jmp("uloop")
	bld.Label("bend")
	bld.Addi(1, 1, 1)
	bld.Jmp("bloop")
	bld.Label("done")
	bld.Halt()

	return &Instance{
		Name: "dct",
		Prog: bld.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(xBase, x)
			c.Mem.LoadWords(cBase, coef)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWords(oBase, len(want))
			return compareWords("out", want, got)
		},
		MaxSteps: 200_000,
		Arrays: []Array{
			{Name: "x", Base: xBase, Size: blocks * 8 * 4},
			{Name: "coef", Base: cBase, Size: 64 * 4},
			{Name: "out", Base: oBase, Size: blocks * 8 * 4},
		},
	}
}

// AutoCorr builds an autocorrelation kernel, the front end of LPC speech
// coders: R[lag] = sum_i x[i]*x[i+lag] for lag in [0,16).
func AutoCorr(seed int64) *Instance {
	const (
		n     = 256
		lags  = 16
		xBase = 0x0003_0000
		rBase = 0x0003_4000
	)
	r := rng(seed)
	x := words16(r, n)
	want := make([]uint32, lags)
	for lag := 0; lag < lags; lag++ {
		var acc uint32
		for i := 0; i+lag < n; i++ {
			acc += x[i] * x[i+lag]
		}
		want[lag] = acc
	}

	b := isa.NewBuilder()
	b.MoviU(7, xBase)
	b.MoviU(8, rBase)
	b.Movi(1, 0)    // lag
	b.Movi(2, lags) // lag limit
	b.Movi(12, n)   // n
	b.Label("lagloop")
	b.Bge(1, 2, "done")
	b.Movi(5, 0)    // acc
	b.Movi(3, 0)    // i
	b.Sub(4, 12, 1) // limit = n - lag
	b.Label("iloop")
	b.Bge(3, 4, "iend")
	b.Shli(10, 3, 2)
	b.Add(10, 10, 7)
	b.Lw(10, 10, 0) // x[i]
	b.Add(11, 3, 1)
	b.Shli(11, 11, 2)
	b.Add(11, 11, 7)
	b.Lw(11, 11, 0) // x[i+lag]
	b.Mul(10, 10, 11)
	b.Add(5, 5, 10)
	b.Addi(3, 3, 1)
	b.Jmp("iloop")
	b.Label("iend")
	b.Shli(10, 1, 2)
	b.Add(10, 10, 8)
	b.Sw(5, 10, 0)
	b.Addi(1, 1, 1)
	b.Jmp("lagloop")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "autocorr",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(xBase, x)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWords(rBase, lags)
			return compareWords("r", want, got)
		},
		MaxSteps: 200_000,
		Arrays: []Array{
			{Name: "x", Base: xBase, Size: n * 4},
			{Name: "r", Base: rBase, Size: lags * 4},
		},
	}
}

// ADPCM builds a simplified adaptive-differential PCM encoder: per sample,
// quantize the prediction error with an adaptive step, the core loop of the
// MediaBench adpcm benchmark.
func ADPCM(seed int64) *Instance {
	const (
		n     = 512
		xBase = 0x0004_0000
		oBase = 0x0004_4000
	)
	r := rng(seed)
	x := make([]int32, n)
	// Smooth waveform: random walk, as speech-like input.
	cur := int32(0)
	for i := range x {
		cur += int32(r.Intn(200) - 100)
		x[i] = cur
	}
	// Golden model.
	want := make([]byte, n)
	pred, step := int32(0), int32(16)
	for i, xv := range x {
		delta := xv - pred
		code := delta / step
		if code > 7 {
			code = 7
		}
		if code < -8 {
			code = -8
		}
		pred += code * step
		abs := code
		if abs < 0 {
			abs = -abs
		}
		if abs >= 4 {
			step <<= 1
			if step > 2048 {
				step = 2048
			}
		} else if abs < 2 {
			step >>= 1
			if step < 1 {
				step = 1
			}
		}
		want[i] = byte(code)
	}

	b := isa.NewBuilder()
	b.MoviU(9, xBase)
	b.MoviU(10, oBase)
	b.Movi(1, 0)  // i
	b.Movi(2, n)  // limit
	b.Movi(3, 0)  // pred
	b.Movi(4, 16) // step
	b.Label("loop")
	b.Bge(1, 2, "done")
	b.Shli(8, 1, 2)
	b.Add(8, 8, 9)
	b.Lw(5, 8, 0)  // x[i]
	b.Sub(6, 5, 3) // delta
	b.Div(7, 6, 4) // code
	b.Movi(11, 7)
	b.Bge(11, 7, "nohi")
	b.Mov(7, 11)
	b.Label("nohi")
	b.Movi(12, -8)
	b.Bge(7, 12, "nolo")
	b.Mov(7, 12)
	b.Label("nolo")
	b.Mul(8, 7, 4)
	b.Add(3, 3, 8) // pred += code*step
	// abs(code)
	b.Mov(8, 7)
	b.Movi(11, 0)
	b.Bge(8, 11, "absok")
	b.Sub(8, 11, 8)
	b.Label("absok")
	b.Movi(11, 4)
	b.Blt(8, 11, "small")
	b.Shli(4, 4, 1)
	b.Movi(11, 2048)
	b.Bge(11, 4, "adapted")
	b.Mov(4, 11)
	b.Jmp("adapted")
	b.Label("small")
	b.Movi(11, 2)
	b.Bge(8, 11, "adapted")
	b.Shri(4, 4, 1)
	b.Movi(11, 1)
	b.Bge(4, 11, "adapted")
	b.Mov(4, 11)
	b.Label("adapted")
	b.Add(8, 10, 1)
	b.Sb(7, 8, 0)
	b.Addi(1, 1, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "adpcm",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			for i, v := range x {
				c.Mem.WriteWord(xBase+uint32(i)*4, uint32(v))
			}
		},
		Check: func(c *isa.CPU) error {
			for i, w := range want {
				got := c.Mem.LoadByte(oBase + uint32(i))
				if got != w {
					return fmt.Errorf("out[%d] = %#x, want %#x", i, got, w)
				}
			}
			return nil
		},
		MaxSteps: 200_000,
		Arrays: []Array{
			{Name: "x", Base: xBase, Size: n * 4},
			{Name: "out", Base: oBase, Size: n},
		},
	}
}

func compareWords(name string, want, got []uint32) error {
	if len(want) != len(got) {
		return fmt.Errorf("%s: length mismatch %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("%s[%d] = %#x, want %#x", name, i, got[i], want[i])
		}
	}
	return nil
}
