package workloads

import (
	"fmt"

	"lpmem/internal/isa"
)

// HashLookup builds an open-addressing hash-table lookup kernel: 4096
// Zipf-distributed queries probe a 64 KiB table, so a few scattered slots
// become very hot while rarely queried slots are touched once or twice.
// Embedded routing/symbol tables behave exactly like this, and the
// scattered hot blocks are the profile shape address clustering exploits.
func HashLookup(seed int64) *Instance {
	const (
		slots   = 8192
		nq      = 8192 // total lookups; queries cycle through a small ring
		qring   = 1024
		nkeys   = 3000
		tblBase = 0x000B_0000
		qryBase = 0x001B_0000
		resBase = 0x001B_8000
		hashC   = 0x9E3779B1
	)
	r := rng(seed)
	// Build the table in Go with the same probe sequence the kernel uses.
	keys := make([]uint32, 0, nkeys)
	seen := make(map[uint32]bool, nkeys)
	tbl := make([]uint32, slots*2) // interleaved {key, value}
	insert := func(k, v uint32) {
		h := (k * hashC) >> 19 & (slots - 1)
		for tbl[h*2] != 0 {
			h = (h + 1) & (slots - 1)
		}
		tbl[h*2] = k
		tbl[h*2+1] = v
	}
	for len(keys) < nkeys {
		k := r.Uint32() | 1 // nonzero
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		insert(k, uint32(len(keys)))
	}
	// Zipf-ish query mix: raising the uniform variate to the fourth
	// power concentrates queries heavily on the lowest ranks, matching
	// the sharply skewed key popularity of real lookup tables.
	queries := make([]uint32, qring)
	for i := range queries {
		f := r.Float64()
		f *= f
		queries[i] = keys[int(f*f*float64(nkeys))]
	}
	// Golden.
	var want uint32
	for i := 0; i < nq; i++ {
		q := queries[i%qring]
		h := (q * hashC) >> 19 & (slots - 1)
		for {
			k := tbl[h*2]
			if k == q {
				want += tbl[h*2+1]
				break
			}
			if k == 0 {
				break
			}
			h = (h + 1) & (slots - 1)
		}
	}

	b := isa.NewBuilder()
	b.MoviU(7, tblBase)
	b.MoviU(8, qryBase)
	b.Movi(5, 0) // sum
	b.Movi(1, 0)
	b.Movi(2, nq)
	b.MoviU(9, hashC)
	b.Label("qloop")
	b.Bge(1, 2, "done")
	b.Andi(3, 1, qring-1)
	b.Shli(3, 3, 2)
	b.Add(3, 3, 8)
	b.Lw(3, 3, 0) // q
	b.Mul(4, 3, 9)
	b.Shri(4, 4, 19)
	b.Andi(4, 4, slots-1)
	b.Label("probe")
	b.Shli(6, 4, 3)
	b.Add(6, 6, 7)
	b.Lw(10, 6, 0) // slot key
	b.Beq(10, 3, "found")
	b.Movi(11, 0)
	b.Beq(10, 11, "next")
	b.Addi(4, 4, 1)
	b.Andi(4, 4, slots-1)
	b.Jmp("probe")
	b.Label("found")
	b.Lw(10, 6, 4)
	b.Add(5, 5, 10)
	b.Label("next")
	b.Addi(1, 1, 1)
	b.Jmp("qloop")
	b.Label("done")
	b.MoviU(3, resBase)
	b.Sw(5, 3, 0)
	b.Halt()

	return &Instance{
		Name: "hashlookup",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(tblBase, tbl)
			c.Mem.LoadWords(qryBase, queries)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWord(resBase)
			if got != want {
				return fmt.Errorf("sum = %#x, want %#x", got, want)
			}
			return nil
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "table", Base: tblBase, Size: slots * 8},
			{Name: "queries", Base: qryBase, Size: qring * 4},
			{Name: "res", Base: resBase, Size: 4},
		},
	}
}

// ListChase builds a pool-allocated linked-list traversal: a ring of 4096
// nodes in randomized pool order is walked fully once (touching every
// node) and then the first 96 ring positions — scattered across the 64 KiB
// pool — are walked 200 more times. This models packet descriptors, free
// lists and other pointer-heavy embedded structures where the hot set is
// physically scattered.
func ListChase(seed int64) *Instance {
	const (
		nodes    = 4096
		nodeSize = 16
		hotLen   = 96
		hotReps  = 200
		poolBase = 0x000D_0000
		resBase  = 0x001D_0000
	)
	r := rng(seed)
	perm := r.Perm(nodes) // ring order: perm[0] -> perm[1] -> ...
	pool := make([]uint32, nodes*nodeSize/4)
	nodeAddr := func(i int) uint32 { return poolBase + uint32(i)*nodeSize }
	for pos, node := range perm {
		next := perm[(pos+1)%nodes]
		pool[node*4+0] = nodeAddr(next)       // next pointer
		pool[node*4+1] = uint32(r.Intn(1000)) // value
	}
	// Golden.
	var want uint32
	walk := func(start int, steps int) {
		pos := start
		for s := 0; s < steps; s++ {
			node := perm[pos%nodes]
			want += pool[node*4+1]
			pos++
		}
	}
	walk(0, nodes)
	for rep := 0; rep < hotReps; rep++ {
		walk(0, hotLen)
	}

	b := isa.NewBuilder()
	head := nodeAddr(perm[0])
	b.Movi(5, 0) // sum
	// Full ring, once.
	b.MoviU(3, head)
	b.Movi(1, 0)
	b.Movi(2, nodes)
	b.Label("full")
	b.Bge(1, 2, "fulldone")
	b.Lw(4, 3, 4) // value
	b.Add(5, 5, 4)
	b.Lw(3, 3, 0) // next
	b.Addi(1, 1, 1)
	b.Jmp("full")
	b.Label("fulldone")
	// Hot prefix, hotReps times.
	b.Movi(6, 0) // rep counter
	b.Movi(7, hotReps)
	b.Label("rep")
	b.Bge(6, 7, "done")
	b.MoviU(3, head)
	b.Movi(1, 0)
	b.Movi(2, hotLen)
	b.Label("hot")
	b.Bge(1, 2, "hotdone")
	b.Lw(4, 3, 4)
	b.Add(5, 5, 4)
	b.Lw(3, 3, 0)
	b.Addi(1, 1, 1)
	b.Jmp("hot")
	b.Label("hotdone")
	b.Addi(6, 6, 1)
	b.Jmp("rep")
	b.Label("done")
	b.MoviU(3, resBase)
	b.Sw(5, 3, 0)
	b.Halt()

	return &Instance{
		Name: "listchase",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(poolBase, pool)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWord(resBase)
			if got != want {
				return fmt.Errorf("sum = %d, want %d", got, want)
			}
			return nil
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "pool", Base: poolBase, Size: nodes * nodeSize},
			{Name: "res", Base: resBase, Size: 4},
		},
	}
}

// SpMV builds a CSR sparse matrix-vector multiply y = A*x with a power-law
// column distribution: a handful of x entries, scattered through the 16 KiB
// vector, take most of the references. A norm pass first touches all of x.
func SpMV(seed int64) *Instance {
	const (
		rows    = 256
		cols    = 4096
		nnzRow  = 16
		rpBase  = 0x0020_0000
		ciBase  = 0x0020_4000
		vaBase  = 0x0020_C000
		xBase   = 0x0021_4000
		yBase   = 0x0021_C000
		resBase = 0x0021_E000
	)
	r := rng(seed)
	x := words16(r, cols)
	rowPtr := make([]uint32, rows+1)
	colIdx := make([]uint32, 0, rows*nnzRow)
	vals := make([]uint32, 0, rows*nnzRow)
	for i := 0; i < rows; i++ {
		rowPtr[i] = uint32(len(colIdx))
		for k := 0; k < nnzRow; k++ {
			// Power-law column choice: squaring biases toward low
			// columns, then a seeded affine map scatters them.
			f := r.Float64()
			col := uint32(f * f * cols)
			col = (col*769 + 13) % cols
			colIdx = append(colIdx, col)
			vals = append(vals, uint32(int32(r.Intn(64)-32)))
		}
	}
	rowPtr[rows] = uint32(len(colIdx))
	// Golden: norm + y.
	var norm uint32
	for _, xv := range x {
		norm += xv * xv
	}
	y := make([]uint32, rows)
	for i := 0; i < rows; i++ {
		var acc uint32
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			acc += vals[p] * x[colIdx[p]]
		}
		y[i] = acc
	}

	b := isa.NewBuilder()
	b.MoviU(7, xBase)
	// Norm pass.
	b.Movi(5, 0)
	b.Movi(1, 0)
	b.Movi(2, cols)
	b.Label("norm")
	b.Bge(1, 2, "normdone")
	b.Shli(3, 1, 2)
	b.Add(3, 3, 7)
	b.Lw(4, 3, 0)
	b.Mul(4, 4, 4)
	b.Add(5, 5, 4)
	b.Addi(1, 1, 1)
	b.Jmp("norm")
	b.Label("normdone")
	b.MoviU(3, resBase)
	b.Sw(5, 3, 0)
	// SpMV.
	b.MoviU(8, rpBase)
	b.MoviU(9, ciBase)
	b.MoviU(10, vaBase)
	b.MoviU(11, yBase)
	b.Movi(1, 0) // row i
	b.Movi(2, rows)
	b.Label("row")
	b.Bge(1, 2, "done")
	b.Shli(3, 1, 2)
	b.Add(3, 3, 8)
	b.Lw(4, 3, 0) // p = rowPtr[i]
	b.Lw(6, 3, 4) // end = rowPtr[i+1]
	b.Movi(5, 0)  // acc
	b.Label("nz")
	b.Bge(4, 6, "nzdone")
	b.Shli(3, 4, 2)
	b.Add(3, 3, 9)
	b.Lw(12, 3, 0) // col
	b.Shli(12, 12, 2)
	b.Add(12, 12, 7)
	b.Lw(12, 12, 0) // x[col]
	b.Shli(3, 4, 2)
	b.Add(3, 3, 10)
	b.Lw(3, 3, 0) // val
	b.Mul(3, 3, 12)
	b.Add(5, 5, 3)
	b.Addi(4, 4, 1)
	b.Jmp("nz")
	b.Label("nzdone")
	b.Shli(3, 1, 2)
	b.Add(3, 3, 11)
	b.Sw(5, 3, 0)
	b.Addi(1, 1, 1)
	b.Jmp("row")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "spmv",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(rpBase, rowPtr)
			c.Mem.LoadWords(ciBase, colIdx)
			c.Mem.LoadWords(vaBase, vals)
			c.Mem.LoadWords(xBase, x)
		},
		Check: func(c *isa.CPU) error {
			if got := c.Mem.ReadWord(resBase); got != norm {
				return fmt.Errorf("norm = %#x, want %#x", got, norm)
			}
			got := c.Mem.ReadWords(yBase, rows)
			return compareWords("y", y, got)
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "rowptr", Base: rpBase, Size: (rows + 1) * 4},
			{Name: "colidx", Base: ciBase, Size: rows * nnzRow * 4},
			{Name: "vals", Base: vaBase, Size: rows * nnzRow * 4},
			{Name: "x", Base: xBase, Size: cols * 4},
			{Name: "y", Base: yBase, Size: rows * 4},
			{Name: "res", Base: resBase, Size: 4},
		},
	}
}
