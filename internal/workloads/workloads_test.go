package workloads

import (
	"testing"

	"lpmem/internal/trace"
)

// TestAllKernelsRunAndVerify executes every kernel with several seeds and
// requires its checker (golden-model comparison) to pass.
func TestAllKernelsRunAndVerify(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 2, 42} {
				inst := k.Build(seed)
				res, err := Run(inst)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Trace.Len() == 0 {
					t.Fatalf("seed %d: empty trace", seed)
				}
				if res.Cycles == 0 {
					t.Fatalf("seed %d: zero cycles", seed)
				}
			}
		})
	}
}

// TestKernelsAreDeterministic ensures the same seed yields the identical
// trace, which the experiments depend on for reproducibility.
func TestKernelsAreDeterministic(t *testing.T) {
	for _, k := range All() {
		a := MustRun(k.Build(7)).Trace
		b := MustRun(k.Build(7)).Trace
		if a.Len() != b.Len() {
			t.Fatalf("%s: trace lengths differ: %d vs %d", k.Name, a.Len(), b.Len())
		}
		for i := range a.Accesses {
			if a.Accesses[i] != b.Accesses[i] {
				t.Fatalf("%s: access %d differs: %+v vs %+v", k.Name, i, a.Accesses[i], b.Accesses[i])
			}
		}
	}
}

// TestKernelsEmitDataAccesses verifies that every kernel produces both data
// reads and writes, which all downstream experiments assume.
func TestKernelsEmitDataAccesses(t *testing.T) {
	for _, k := range All() {
		res := MustRun(k.Build(1))
		var reads, writes, fetches int
		for _, a := range res.Trace.Accesses {
			switch a.Kind {
			case trace.Read:
				reads++
			case trace.Write:
				writes++
			case trace.Fetch:
				fetches++
			}
		}
		if reads == 0 && k.Name != "fibcall" {
			t.Errorf("%s: no data reads", k.Name)
		}
		if writes == 0 {
			t.Errorf("%s: no data writes", k.Name)
		}
		if fetches == 0 {
			t.Errorf("%s: no fetches", k.Name)
		}
	}
}

// TestByName checks the registry lookup.
func TestByName(t *testing.T) {
	if _, err := ByName("fir"); err != nil {
		t.Fatalf("fir should exist: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown kernel")
	}
}

// TestArraysCoverDataAccesses checks that declared array regions cover the
// vast majority of non-stack data accesses of each kernel: the metadata
// must be trustworthy for partitioning experiments.
func TestArraysCoverDataAccesses(t *testing.T) {
	for _, k := range All() {
		inst := k.Build(3)
		res := MustRun(inst)
		covered, total := 0, 0
		for _, a := range res.Trace.Accesses {
			if a.Kind == trace.Fetch {
				continue
			}
			total++
			for _, arr := range inst.Arrays {
				if a.Addr >= arr.Base && a.Addr < arr.Base+arr.Size {
					covered++
					break
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: no data accesses", k.Name)
		}
		if frac := float64(covered) / float64(total); frac < 0.99 {
			t.Errorf("%s: only %.1f%% of data accesses covered by declared arrays", k.Name, 100*frac)
		}
	}
}
