package workloads

import (
	"fmt"
	"sort"

	"lpmem/internal/isa"
)

// MatMul builds a dense 12x12 integer matrix multiply, C = A x B.
func MatMul(seed int64) *Instance {
	const (
		dim   = 12
		aBase = 0x0005_0000
		bBase = 0x0005_4000
		cBase = 0x0005_8000
	)
	r := rng(seed)
	a := words16(r, dim*dim)
	bm := words16(r, dim*dim)
	want := make([]uint32, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			var acc uint32
			for k := 0; k < dim; k++ {
				acc += a[i*dim+k] * bm[k*dim+j]
			}
			want[i*dim+j] = acc
		}
	}

	b := isa.NewBuilder()
	b.MoviU(7, aBase)
	b.MoviU(8, bBase)
	b.MoviU(9, cBase)
	b.Movi(4, dim)
	b.Movi(1, 0) // i
	b.Label("iloop")
	b.Bge(1, 4, "done")
	b.Movi(2, 0) // j
	b.Label("jloop")
	b.Bge(2, 4, "iend")
	b.Movi(5, 0) // acc
	b.Movi(3, 0) // k
	b.Label("kloop")
	b.Bge(3, 4, "kend")
	b.Mul(10, 1, 4)
	b.Add(10, 10, 3)
	b.Shli(10, 10, 2)
	b.Add(10, 10, 7)
	b.Lw(10, 10, 0) // a[i*dim+k]
	b.Mul(11, 3, 4)
	b.Add(11, 11, 2)
	b.Shli(11, 11, 2)
	b.Add(11, 11, 8)
	b.Lw(11, 11, 0) // b[k*dim+j]
	b.Mul(10, 10, 11)
	b.Add(5, 5, 10)
	b.Addi(3, 3, 1)
	b.Jmp("kloop")
	b.Label("kend")
	b.Mul(12, 1, 4)
	b.Add(12, 12, 2)
	b.Shli(12, 12, 2)
	b.Add(12, 12, 9)
	b.Sw(5, 12, 0)
	b.Addi(2, 2, 1)
	b.Jmp("jloop")
	b.Label("iend")
	b.Addi(1, 1, 1)
	b.Jmp("iloop")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "matmul",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(aBase, a)
			c.Mem.LoadWords(bBase, bm)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWords(cBase, dim*dim)
			return compareWords("c", want, got)
		},
		MaxSteps: 300_000,
		Arrays: []Array{
			{Name: "a", Base: aBase, Size: dim * dim * 4},
			{Name: "b", Base: bBase, Size: dim * dim * 4},
			{Name: "c", Base: cBase, Size: dim * dim * 4},
		},
	}
}

// Histogram builds a 256-bin byte histogram over a 2 KiB image, the classic
// data-dependent-addressing kernel.
func Histogram(seed int64) *Instance {
	const (
		n        = 2048
		imgBase  = 0x0006_0000
		histBase = 0x0006_4000
	)
	r := rng(seed)
	img := make([]byte, n)
	for i := range img {
		// Peaked distribution, as in natural images.
		img[i] = byte(128 + r.NormFloat64()*40)
	}
	want := make([]uint32, 256)
	for _, px := range img {
		want[px]++
	}

	b := isa.NewBuilder()
	b.MoviU(7, imgBase)
	b.MoviU(8, histBase)
	b.Movi(1, 0) // i
	b.Movi(2, n)
	b.Label("loop")
	b.Bge(1, 2, "done")
	b.Add(9, 7, 1)
	b.Lb(3, 9, 0) // img[i]
	b.Shli(4, 3, 2)
	b.Add(4, 4, 8)
	b.Lw(5, 4, 0)
	b.Addi(5, 5, 1)
	b.Sw(5, 4, 0)
	b.Addi(1, 1, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "histogram",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadBytes(imgBase, img)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWords(histBase, 256)
			return compareWords("hist", want, got)
		},
		MaxSteps: 200_000,
		Arrays: []Array{
			{Name: "img", Base: imgBase, Size: n},
			{Name: "hist", Base: histBase, Size: 256 * 4},
		},
	}
}

// InsertionSort builds an in-place insertion sort of 128 signed words.
func InsertionSort(seed int64) *Instance {
	const (
		n       = 128
		arrBase = 0x0007_0000
	)
	r := rng(seed)
	arr := words16(r, n)
	want := append([]uint32(nil), arr...)
	sort.Slice(want, func(i, j int) bool { return int32(want[i]) < int32(want[j]) })

	b := isa.NewBuilder()
	b.MoviU(7, arrBase)
	b.Movi(1, 1) // i
	b.Movi(2, n)
	b.Label("outer")
	b.Bge(1, 2, "done")
	b.Shli(8, 1, 2)
	b.Add(8, 8, 7)
	b.Lw(3, 8, 0)    // key = a[i]
	b.Addi(4, 1, -1) // j = i-1
	b.Label("inner")
	b.Movi(10, 0)
	b.Blt(4, 10, "endinner") // j < 0
	b.Shli(8, 4, 2)
	b.Add(8, 8, 7)
	b.Lw(9, 8, 0)           // a[j]
	b.Bge(3, 9, "endinner") // key >= a[j]
	b.Sw(9, 8, 4)           // a[j+1] = a[j]
	b.Addi(4, 4, -1)
	b.Jmp("inner")
	b.Label("endinner")
	b.Addi(5, 4, 1)
	b.Shli(8, 5, 2)
	b.Add(8, 8, 7)
	b.Sw(3, 8, 0) // a[j+1] = key
	b.Addi(1, 1, 1)
	b.Jmp("outer")
	b.Label("done")
	b.Halt()

	return &Instance{
		Name: "sort",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadWords(arrBase, arr)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWords(arrBase, n)
			return compareWords("arr", want, got)
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "arr", Base: arrBase, Size: n * 4},
		},
	}
}

// crcTable returns the standard reflected CRC-32 (IEEE) table.
func crcTable() []uint32 {
	tbl := make([]uint32, 256)
	for i := range tbl {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		tbl[i] = c
	}
	return tbl
}

// CRC32 builds a table-driven CRC-32 over 1 KiB of data.
func CRC32(seed int64) *Instance {
	const (
		n       = 1024
		datBase = 0x0008_0000
		tblBase = 0x0008_4000
		resBase = 0x0008_8000
	)
	r := rng(seed)
	data := make([]byte, n)
	_, _ = r.Read(data) // rand.Rand.Read always returns len(p), nil
	tbl := crcTable()
	crc := uint32(0xFFFFFFFF)
	for _, by := range data {
		crc = (crc >> 8) ^ tbl[(crc^uint32(by))&0xFF]
	}

	b := isa.NewBuilder()
	b.MoviU(7, datBase)
	b.MoviU(8, tblBase)
	b.Movi(1, 0) // i
	b.Movi(2, n)
	b.Movi(3, -1) // crc = 0xFFFFFFFF
	b.Label("loop")
	b.Bge(1, 2, "done")
	b.Add(4, 7, 1)
	b.Lb(5, 4, 0)
	b.Xor(6, 3, 5)
	b.Andi(6, 6, 255)
	b.Shli(6, 6, 2)
	b.Add(6, 6, 8)
	b.Lw(6, 6, 0)
	b.Shri(3, 3, 8)
	b.Xor(3, 3, 6)
	b.Addi(1, 1, 1)
	b.Jmp("loop")
	b.Label("done")
	b.MoviU(4, resBase)
	b.Sw(3, 4, 0)
	b.Halt()

	return &Instance{
		Name: "crc32",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadBytes(datBase, data)
			c.Mem.LoadWords(tblBase, tbl)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWord(resBase)
			if got != crc {
				return fmt.Errorf("crc = %#x, want %#x", got, crc)
			}
			return nil
		},
		MaxSteps: 100_000,
		Arrays: []Array{
			{Name: "data", Base: datBase, Size: n},
			{Name: "table", Base: tblBase, Size: 256 * 4},
			{Name: "res", Base: resBase, Size: 4},
		},
	}
}

// StringSearch builds a naive substring counter over 2 KiB of text with an
// 8-byte pattern planted at known positions.
func StringSearch(seed int64) *Instance {
	const (
		n       = 2048
		m       = 8
		txtBase = 0x0009_0000
		patBase = 0x0009_4000
		resBase = 0x0009_8000
	)
	r := rng(seed)
	pattern := []byte("NEEDLE42")
	text := make([]byte, n)
	for i := range text {
		text[i] = byte('a' + r.Intn(26))
	}
	// Plant some occurrences.
	for _, pos := range []int{17, 512, 1033, n - m} {
		copy(text[pos:], pattern)
	}
	// Golden count.
	wantCount := uint32(0)
	for i := 0; i+m <= n; i++ {
		match := true
		for j := 0; j < m; j++ {
			if text[i+j] != pattern[j] {
				match = false
				break
			}
		}
		if match {
			wantCount++
		}
	}

	b := isa.NewBuilder()
	b.MoviU(7, txtBase)
	b.MoviU(8, patBase)
	b.Movi(1, 0)     // i
	b.Movi(2, n-m+1) // limit
	b.Movi(4, m)     // pattern length
	b.Movi(5, 0)     // count
	b.Label("outer")
	b.Bge(1, 2, "done")
	b.Movi(3, 0) // j
	b.Label("inner")
	b.Bge(3, 4, "match")
	b.Add(9, 7, 1)
	b.Add(9, 9, 3)
	b.Lb(10, 9, 0)
	b.Add(11, 8, 3)
	b.Lb(12, 11, 0)
	b.Bne(10, 12, "nomatch")
	b.Addi(3, 3, 1)
	b.Jmp("inner")
	b.Label("match")
	b.Addi(5, 5, 1)
	b.Label("nomatch")
	b.Addi(1, 1, 1)
	b.Jmp("outer")
	b.Label("done")
	b.MoviU(9, resBase)
	b.Sw(5, 9, 0)
	b.Halt()

	return &Instance{
		Name: "strsearch",
		Prog: b.MustAssemble(),
		Init: func(c *isa.CPU) {
			c.Mem.LoadBytes(txtBase, text)
			c.Mem.LoadBytes(patBase, pattern)
		},
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWord(resBase)
			if got != wantCount {
				return fmt.Errorf("count = %d, want %d", got, wantCount)
			}
			return nil
		},
		MaxSteps: 200_000,
		Arrays: []Array{
			{Name: "text", Base: txtBase, Size: n},
			{Name: "pattern", Base: patBase, Size: m},
			{Name: "res", Base: resBase, Size: 4},
		},
	}
}

// FibCall builds a deliberately call-heavy kernel: naive recursive
// Fibonacci of 17, whose push/pop traffic feeds the stack-memory
// experiment (E9).
func FibCall(seed int64) *Instance {
	const (
		arg     = 17
		resBase = 0x000A_0000
	)
	fib := func(n int) uint32 {
		a, bb := uint32(0), uint32(1)
		for i := 0; i < n; i++ {
			a, bb = bb, a+bb
		}
		return a
	}
	want := fib(arg)

	b := isa.NewBuilder()
	b.Movi(1, arg)
	b.Jal("fib")
	b.MoviU(4, resBase)
	b.Sw(2, 4, 0)
	b.Halt()
	b.Label("fib")
	b.Movi(3, 2)
	b.Blt(1, 3, "base")
	b.Push(isa.LR)
	b.Push(1)
	b.Addi(1, 1, -1)
	b.Jal("fib") // r2 = fib(n-1)
	b.Pop(1)     // restore n
	b.Push(2)    // save fib(n-1)
	b.Addi(1, 1, -2)
	b.Jal("fib") // r2 = fib(n-2)
	b.Pop(3)     // fib(n-1)
	b.Add(2, 2, 3)
	b.Pop(isa.LR)
	b.Ret()
	b.Label("base")
	b.Mov(2, 1)
	b.Ret()

	_ = seed // the kernel is fully deterministic
	return &Instance{
		Name: "fibcall",
		Prog: b.MustAssemble(),
		Check: func(c *isa.CPU) error {
			got := c.Mem.ReadWord(resBase)
			if got != want {
				return fmt.Errorf("fib(%d) = %d, want %d", arg, got, want)
			}
			return nil
		},
		MaxSteps: 500_000,
		Arrays: []Array{
			{Name: "res", Base: resBase, Size: 4},
			{Name: "stack", Base: isa.DefaultStackTop - isa.DefaultStackSize, Size: isa.DefaultStackSize},
		},
	}
}
