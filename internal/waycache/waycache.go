// Package waycache implements way determination for highly associative
// data caches (DATE'03 10E.4, Nicolaescu/Veidenbaum/Nicolau: "Reducing
// Power Consumption for High-Associativity Data Caches in Embedded
// Processors").
//
// A conventional N-way set-associative access probes all N tag and data
// ways in parallel; energy therefore grows linearly with associativity. A
// small Way Determination Unit (WDU) — a fully associative table of
// recently used line addresses and the way each resides in — is consulted
// before the cache access. On a WDU hit, exactly one way is enabled. The
// WDU *determines* (rather than predicts) the way: it is kept coherent
// with line movement, so a WDU hit can never enable the wrong way, and
// there is no mis-prediction penalty or timing change.
package waycache

import (
	"fmt"

	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/trace"
)

// WDU is the way-determination table: line address -> resident way,
// with LRU replacement over a small number of entries.
type WDU struct {
	capacity int
	entries  map[uint32]int    // line base -> way
	lastUse  map[uint32]uint64 // line base -> timestamp
	clock    uint64

	// Hits and Lookups count coverage.
	Hits    uint64
	Lookups uint64
}

// NewWDU creates a table with the given entry count.
func NewWDU(capacity int) (*WDU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("waycache: capacity must be positive, got %d", capacity)
	}
	return &WDU{
		capacity: capacity,
		entries:  make(map[uint32]int, capacity),
		lastUse:  make(map[uint32]uint64, capacity),
	}, nil
}

// Lookup consults the table. It returns the way and true on a hit.
func (w *WDU) Lookup(lineBase uint32) (int, bool) {
	w.clock++
	w.Lookups++
	way, ok := w.entries[lineBase]
	if ok {
		w.Hits++
		w.lastUse[lineBase] = w.clock
	}
	return way, ok
}

// Record inserts or updates the line->way binding, evicting the LRU entry
// when full.
func (w *WDU) Record(lineBase uint32, way int) {
	w.clock++
	if _, ok := w.entries[lineBase]; !ok && len(w.entries) >= w.capacity {
		var victim uint32
		oldest := uint64(1<<63 - 1)
		for base, ts := range w.lastUse {
			if ts < oldest || (ts == oldest && base < victim) {
				oldest = ts
				victim = base
			}
		}
		delete(w.entries, victim)
		delete(w.lastUse, victim)
	}
	w.entries[lineBase] = way
	w.lastUse[lineBase] = w.clock
}

// Invalidate removes a binding (the line moved or was evicted).
func (w *WDU) Invalidate(lineBase uint32) {
	delete(w.entries, lineBase)
	delete(w.lastUse, lineBase)
}

// Coverage returns the fraction of lookups that hit.
func (w *WDU) Coverage() float64 {
	if w.Lookups == 0 {
		return 0
	}
	return float64(w.Hits) / float64(w.Lookups)
}

// Result summarises one simulation.
type Result struct {
	// Ways is the cache associativity simulated.
	Ways int
	// Coverage is the WDU hit fraction.
	Coverage float64
	// BaseEnergy is the energy of conventional all-way probing.
	BaseEnergy energy.PJ
	// WduEnergy is the energy with way determination.
	WduEnergy energy.PJ
	// HitRate is the cache hit rate (identical in both designs).
	HitRate float64
}

// Saving returns the percent cache power reduction, the paper's headline
// metric.
func (r Result) Saving() float64 {
	if r.BaseEnergy == 0 {
		return 0
	}
	return 100 * float64(r.BaseEnergy-r.WduEnergy) / float64(r.BaseEnergy)
}

// Simulate replays the data accesses of tr through an N-way cache with a
// WDU of wduEntries entries and accounts energy under cm.
func Simulate(tr *trace.Trace, cfg cache.Config, wduEntries int, cm energy.CacheModel) (Result, error) {
	return SimulateCursor(tr.Cursor(), cfg, wduEntries, cm)
}

// SimulateCursor is Simulate over an access stream: the WDU evaluation
// of an on-disk binary trace runs directly off the streaming reader's
// reused buffer, without materialising the trace.
func SimulateCursor(cur trace.Cursor, cfg cache.Config, wduEntries int, cm energy.CacheModel) (Result, error) {
	c, err := cache.New(cfg, nil)
	if err != nil {
		return Result{}, err
	}
	wdu, err := NewWDU(wduEntries)
	if err != nil {
		return Result{}, err
	}
	lineMask := ^(uint32(cfg.LineSize) - 1)
	var base, directed energy.PJ
	for cur.Next() {
		a := cur.Access()
		if a.Kind == trace.Fetch {
			continue
		}
		lineBase := a.Addr & lineMask
		base += cm.ConventionalAccess(cfg.Ways)

		_, known := wdu.Lookup(lineBase)
		res := c.Access(a.Addr, a.Kind == trace.Write, a.Width, a.Value)
		if known && res.Hit {
			// Single-way access; the WDU is authoritative.
			directed += cm.DirectedAccess()
		} else {
			// Conventional probe plus the WDU lookup that missed.
			directed += cm.ConventionalAccess(cfg.Ways) + cm.WayTableE
		}
		// Keep the WDU coherent with line movement.
		if !res.Hit {
			if res.Evicted {
				wdu.Invalidate(res.EvictedAddr)
			}
			wdu.Record(lineBase, res.Way)
		} else if !known {
			wdu.Record(lineBase, res.Way)
		}
	}
	if err := cur.Err(); err != nil {
		return Result{}, fmt.Errorf("waycache: replaying access stream: %w", err)
	}
	st := c.Stats()
	return Result{
		Ways:       cfg.Ways,
		Coverage:   wdu.Coverage(),
		BaseEnergy: base,
		WduEnergy:  directed,
		HitRate:    st.HitRate(),
	}, nil
}
