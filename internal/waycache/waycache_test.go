package waycache

import (
	"testing"

	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

func TestWDUBasics(t *testing.T) {
	w, err := NewWDU(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Lookup(0x100); ok {
		t.Fatal("empty WDU must miss")
	}
	w.Record(0x100, 3)
	if way, ok := w.Lookup(0x100); !ok || way != 3 {
		t.Fatalf("lookup = (%d,%v), want (3,true)", way, ok)
	}
	// Fill beyond capacity: LRU (0x200) must go.
	w.Record(0x200, 1)
	w.Lookup(0x100) // touch 0x100 so 0x200 is LRU
	w.Record(0x300, 2)
	if _, ok := w.Lookup(0x200); ok {
		t.Fatal("0x200 should have been LRU-evicted from the WDU")
	}
	if _, ok := w.Lookup(0x100); !ok {
		t.Fatal("0x100 should survive")
	}
	w.Invalidate(0x100)
	if _, ok := w.Lookup(0x100); ok {
		t.Fatal("invalidated entry must miss")
	}
}

func TestNewWDURejectsBadCapacity(t *testing.T) {
	if _, err := NewWDU(0); err == nil {
		t.Fatal("capacity 0 must be rejected")
	}
}

// TestDeterminationIsAlwaysCorrect: on every WDU hit, the recorded way
// must be the way the cache actually holds the line in. This is the
// "determination, not prediction" property of the paper.
func TestDeterminationIsAlwaysCorrect(t *testing.T) {
	for _, name := range []string{"histogram", "listchase", "sort"} {
		k, _ := workloads.ByName(name)
		res := workloads.MustRun(k.Build(1))
		cfg := cache.Config{Sets: 8, Ways: 8, LineSize: 32, WriteBack: true, WriteAllocate: true}
		c := cache.MustNew(cfg, nil)
		wdu, _ := NewWDU(16)
		lineMask := ^(uint32(cfg.LineSize) - 1)
		for _, a := range res.Trace.Accesses {
			if a.Kind == trace.Fetch {
				continue
			}
			lineBase := a.Addr & lineMask
			way, known := wdu.Lookup(lineBase)
			if known {
				if got := c.Lookup(a.Addr); got != -1 && got != way {
					t.Fatalf("%s: WDU says way %d but line is in way %d", name, way, got)
				}
			}
			r := c.Access(a.Addr, a.Kind == trace.Write, a.Width, a.Value)
			if !r.Hit {
				if r.Evicted {
					wdu.Invalidate(r.EvictedAddr)
				}
				wdu.Record(lineBase, r.Way)
			} else if !known {
				wdu.Record(lineBase, r.Way)
			}
		}
	}
}

// TestSavingGrowsWithAssociativity reproduces the shape of the paper's
// table: power reduction increases with the number of ways.
func TestSavingGrowsWithAssociativity(t *testing.T) {
	k, _ := workloads.ByName("fir")
	res := workloads.MustRun(k.Build(1))
	cm := energy.DefaultCacheModel()
	prev := 0.0
	for _, ways := range []int{8, 16, 32} {
		cfg := cache.Config{Sets: 16, Ways: ways, LineSize: 32, WriteBack: true, WriteAllocate: true}
		r, err := Simulate(res.Trace, cfg, 16, cm)
		if err != nil {
			t.Fatal(err)
		}
		s := r.Saving()
		t.Logf("ways=%2d coverage=%.3f saving=%.1f%%", ways, r.Coverage, s)
		if s <= prev {
			t.Errorf("saving did not grow with ways: %d-way %.1f%% <= %.1f%%", ways, s, prev)
		}
		if s < 40 {
			t.Errorf("%d-way saving %.1f%% implausibly low", ways, s)
		}
		prev = s
	}
}
