package waycache

import (
	"bytes"
	"testing"

	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/trace"
)

// TestSimulateCursorBinaryStreamEquivalence pins the streaming fast
// path to the materialised one: replaying the binary serialisation of a
// trace through SimulateCursor must reproduce Simulate bit-for-bit —
// same coverage, same energies, same hit rate.
func TestSimulateCursorBinaryStreamEquivalence(t *testing.T) {
	tr := trace.Synthesize(trace.SynthConfig{
		Seed: 3,
		N:    20000,
		Regions: []trace.Region{
			{Base: 0x1000, Size: 16 << 10, Weight: 4, Stride: 4},
			{Base: 0x80000, Size: 256 << 10, Weight: 1},
		},
		WriteFraction: 0.25,
	})
	cfg := cache.Config{Sets: 32, Ways: 8, LineSize: 32, WriteBack: true, WriteAllocate: true}
	cm := energy.DefaultCacheModel()
	want, err := Simulate(tr, cfg, 16, cm)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&bin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateCursor(r, cfg, 16, cm)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed result diverged from materialised:\n got %+v\nwant %+v", got, want)
	}
}

// TestSimulateCursorPropagatesDecodeError checks a truncated binary
// stream surfaces as an error, not a silently short simulation.
func TestSimulateCursorPropagatesDecodeError(t *testing.T) {
	tr := trace.Synthesize(trace.SynthConfig{
		Seed: 4, N: 1000,
		Regions:       []trace.Region{{Base: 0, Size: 4096, Weight: 1, Stride: 4}},
		WriteFraction: 0.5,
	})
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(bin.Bytes()[:bin.Len()-5]))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{Sets: 16, Ways: 4, LineSize: 16, WriteBack: true, WriteAllocate: true}
	if _, err := SimulateCursor(r, cfg, 8, energy.DefaultCacheModel()); err == nil {
		t.Fatal("truncated stream did not error")
	}
}
