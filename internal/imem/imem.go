// Package imem implements application-specific instruction-memory encoding
// transformations (DATE'03 1B.3, Petrov & Orailoglu: "Power Efficiency
// through Application-Specific Instruction Memory Transformations").
//
// The instruction fetch path — instruction memory, its output bus and the
// fetch latches — dissipates energy proportional to the bit transitions
// between consecutively fetched words. The technique profiles the dynamic
// fetch stream of the target application and re-encodes instruction
// *fields* (opcode, register specifiers) through small reprogrammable
// mapping tables so that field values that frequently follow each other
// receive codes at small Hamming distance. The mapping is a bijection on
// each field, so a matching decoder in the fetch stage restores the
// original instruction with a shallow (single-gate-level) network, and the
// tables can be reprogrammed per application.
//
// Training: for each field, count the dynamic bigram frequencies of field
// values, order values in a high-affinity chain (greedy), and assign codes
// along a Gray sequence so chain neighbours differ in exactly one bit.
package imem

import (
	"fmt"
	"math/bits"
	"sort"
)

// Field is a contiguous bit field of the instruction word.
type Field struct {
	// Shift is the bit offset of the field's LSB.
	Shift uint
	// Width is the field width in bits (<= 16 so tables stay small).
	Width uint
}

// Mask returns the in-place bit mask of the field.
func (f Field) Mask() uint32 { return ((1 << f.Width) - 1) << f.Shift }

// Extract pulls the field value out of a word.
func (f Field) Extract(w uint32) uint32 { return (w >> f.Shift) & ((1 << f.Width) - 1) }

// Insert replaces the field in w with v.
func (f Field) Insert(w, v uint32) uint32 {
	return (w &^ f.Mask()) | ((v & ((1 << f.Width) - 1)) << f.Shift)
}

// MuRISCFields returns the re-encodable fields of the µRISC word layout
// (op, rd, rs1, rs2 and the 14-bit immediate split into two table-sized
// halves — see isa.Encode).
func MuRISCFields() []Field {
	return []Field{
		{Shift: 26, Width: 6}, // opcode
		{Shift: 22, Width: 4}, // rd
		{Shift: 18, Width: 4}, // rs1
		{Shift: 14, Width: 4}, // rs2
		{Shift: 7, Width: 7},  // imm high half
		{Shift: 0, Width: 7},  // imm low half
	}
}

// fieldMap is a bijective recoding of one field.
type fieldMap struct {
	field  Field
	encode []uint32 // original value -> code
	decode []uint32 // code -> original value
}

// Encoder is a trained set of per-field transformations.
type Encoder struct {
	maps []fieldMap
}

// Train profiles the dynamic fetch stream and builds an encoder over the
// given fields. The stream is the sequence of instruction words in fetch
// order (repetitions matter: they are the statistics being optimized).
func Train(stream []uint32, fields []Field) (*Encoder, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("imem: no fields to train")
	}
	e := &Encoder{}
	for _, f := range fields {
		if f.Width == 0 || f.Width > 16 {
			return nil, fmt.Errorf("imem: field width %d out of range (1..16)", f.Width)
		}
		e.maps = append(e.maps, trainField(stream, f))
	}
	return e, nil
}

// trainField builds the bijection for one field.
func trainField(stream []uint32, f Field) fieldMap {
	n := 1 << f.Width
	// Dynamic bigram affinity between successive field values.
	aff := make(map[[2]uint32]uint64)
	freq := make([]uint64, n)
	for i, w := range stream {
		v := f.Extract(w)
		freq[v]++
		if i > 0 {
			p := f.Extract(stream[i-1])
			if p != v {
				k := [2]uint32{p, v}
				if p > v {
					k = [2]uint32{v, p}
				}
				aff[k]++
			}
		}
	}
	// Greedy chain: start from the most frequent value, extend by best
	// affinity to the chain tail (frequency as tie-break).
	used := make([]bool, n)
	chain := make([]uint32, 0, n)
	// Values ordered by frequency for deterministic starts/ties.
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if freq[order[i]] != freq[order[j]] {
			return freq[order[i]] > freq[order[j]]
		}
		return order[i] < order[j]
	})
	chain = append(chain, order[0])
	used[order[0]] = true
	for len(chain) < n {
		tail := chain[len(chain)-1]
		var best uint32
		bestScore := uint64(0)
		found := false
		for _, cand := range order {
			if used[cand] {
				continue
			}
			k := [2]uint32{tail, cand}
			if tail > cand {
				k = [2]uint32{cand, tail}
			}
			score := aff[k]*1000 + freq[cand]
			if !found || score > bestScore {
				found = true
				best = cand
				bestScore = score
			}
		}
		chain = append(chain, best)
		used[best] = true
	}
	// Assign codes along the binary-reflected Gray sequence: chain
	// neighbours then differ in exactly one bit.
	fm := fieldMap{
		field:  f,
		encode: make([]uint32, n),
		decode: make([]uint32, n),
	}
	for pos, val := range chain {
		code := uint32(pos) ^ (uint32(pos) >> 1) // Gray code of pos
		fm.encode[val] = code
		fm.decode[code] = val
	}
	return fm
}

// Encode transforms one instruction word.
func (e *Encoder) Encode(w uint32) uint32 {
	for _, m := range e.maps {
		w = m.field.Insert(w, m.encode[m.field.Extract(w)])
	}
	return w
}

// Decode inverts Encode.
func (e *Encoder) Decode(w uint32) uint32 {
	for _, m := range e.maps {
		w = m.field.Insert(w, m.decode[m.field.Extract(w)])
	}
	return w
}

// Transitions counts the total bit transitions of driving the word stream
// over a 32-bit bus.
func Transitions(stream []uint32) uint64 {
	var total uint64
	for i := 1; i < len(stream); i++ {
		total += uint64(bits.OnesCount32(stream[i-1] ^ stream[i]))
	}
	return total
}

// EncodeStream applies the encoder to an entire stream.
func (e *Encoder) EncodeStream(stream []uint32) []uint32 {
	out := make([]uint32, len(stream))
	for i, w := range stream {
		out[i] = e.Encode(w)
	}
	return out
}

// Evaluate trains on trainStream and reports baseline and transformed
// transition counts on evalStream (use the same stream for the paper's
// in-sample setting, or a different one to measure generalization).
func Evaluate(trainStream, evalStream []uint32, fields []Field) (base, transformed uint64, err error) {
	e, err := Train(trainStream, fields)
	if err != nil {
		return 0, 0, err
	}
	return Transitions(evalStream), Transitions(e.EncodeStream(evalStream)), nil
}
