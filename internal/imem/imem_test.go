package imem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

func TestFieldOps(t *testing.T) {
	f := Field{Shift: 26, Width: 6}
	w := uint32(0xFFFFFFFF)
	if got := f.Extract(w); got != 63 {
		t.Fatalf("extract = %d, want 63", got)
	}
	w2 := f.Insert(w, 0)
	if got := f.Extract(w2); got != 0 {
		t.Fatalf("after insert, extract = %d, want 0", got)
	}
	if w2&^f.Mask() != w&^f.Mask() {
		t.Fatal("insert must not disturb other bits")
	}
}

// TestEncodeDecodeBijective: Decode(Encode(w)) == w for any word and any
// training stream.
func TestEncodeDecodeBijective(t *testing.T) {
	f := func(seed int64, words []uint32) bool {
		r := rand.New(rand.NewSource(seed))
		train := make([]uint32, 100)
		for i := range train {
			train[i] = r.Uint32()
		}
		e, err := Train(train, MuRISCFields())
		if err != nil {
			return false
		}
		for _, w := range words {
			if e.Decode(e.Encode(w)) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRejectsBadFields(t *testing.T) {
	if _, err := Train([]uint32{1}, nil); err == nil {
		t.Error("empty fields must error")
	}
	if _, err := Train([]uint32{1}, []Field{{Shift: 0, Width: 20}}); err == nil {
		t.Error("over-wide field must error")
	}
}

func TestTransitions(t *testing.T) {
	if got := Transitions([]uint32{0, 1, 3, 3}); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
	if got := Transitions(nil); got != 0 {
		t.Fatalf("transitions of empty = %d", got)
	}
}

// TestReducesTransitionsOnKernels: on every workload's real fetch stream,
// the trained transformation must reduce bus transitions.
func TestReducesTransitionsOnKernels(t *testing.T) {
	for _, k := range workloads.All() {
		res := workloads.MustRun(k.Build(1))
		stream := fetchStream(res.Trace)
		base, xf, err := Evaluate(stream, stream, MuRISCFields())
		if err != nil {
			t.Fatal(err)
		}
		if base == 0 {
			t.Fatalf("%s: no transitions in fetch stream", k.Name)
		}
		saving := 100 * float64(base-xf) / float64(base)
		t.Logf("%-10s base=%9d xf=%9d saving=%5.1f%%", k.Name, base, xf, saving)
		if xf > base {
			t.Errorf("%s: transformation increased transitions (%d > %d)", k.Name, xf, base)
		}
	}
}

func fetchStream(tr *trace.Trace) []uint32 {
	var out []uint32
	for _, a := range tr.Accesses {
		if a.Kind == trace.Fetch {
			out = append(out, a.Value)
		}
	}
	return out
}
