package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lpmem/internal/energy"
	"lpmem/internal/trace"
)

func model() energy.MemoryModel { return energy.DefaultMemoryModel() }

func flatSpec(blocks int, perBlock uint64) *Spec {
	s := &Spec{BlockSize: 64, Blocks: make([]BlockStats, blocks), Cycles: 1000}
	for i := range s.Blocks {
		s.Blocks[i] = BlockStats{Reads: perBlock}
	}
	return s
}

func TestSpecFromTrace(t *testing.T) {
	tr := trace.New(8)
	tr.Append(trace.Access{Addr: 0x100, Kind: trace.Read, Width: 4})
	tr.Append(trace.Access{Addr: 0x104, Kind: trace.Write, Width: 4})
	tr.Append(trace.Access{Addr: 0x300, Kind: trace.Read, Width: 4})
	tr.Append(trace.Access{Addr: 0x0, Kind: trace.Fetch, Width: 4}) // ignored
	spec, bases, err := SpecFromTrace(tr, 64, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Blocks) != 2 || len(bases) != 2 {
		t.Fatalf("blocks = %d", len(spec.Blocks))
	}
	if bases[0] != 0x100 || bases[1] != 0x300 {
		t.Fatalf("bases = %v", bases)
	}
	if spec.Blocks[0].Reads != 1 || spec.Blocks[0].Writes != 1 || spec.Blocks[1].Reads != 1 {
		t.Fatalf("stats = %+v", spec.Blocks)
	}
	if spec.TotalAccesses() != 3 {
		t.Fatalf("total = %d", spec.TotalAccesses())
	}
}

func TestSpecFromTraceErrorsOnBadBlock(t *testing.T) {
	if _, _, err := SpecFromTrace(trace.New(0), 48, 0); err == nil {
		t.Fatal("want error")
	}
}

func TestPow2Ceil(t *testing.T) {
	cases := map[uint32]uint32{0: 1, 1: 1, 2: 2, 3: 4, 64: 64, 65: 128, 1000: 1024}
	for in, want := range cases {
		if got := pow2Ceil(in); got != want {
			t.Errorf("pow2Ceil(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMonolithicCoversEverything(t *testing.T) {
	spec := flatSpec(10, 5)
	p := Monolithic(spec)
	if p.NumBanks() != 1 {
		t.Fatal("monolithic must be one bank")
	}
	b := p.Banks[0]
	if b.NumBlocks != 10 || b.Reads != 50 {
		t.Fatalf("bank = %+v", b)
	}
	if b.SizeBytes != 1024 { // 10*64 -> 1024
		t.Fatalf("size = %d", b.SizeBytes)
	}
}

// TestOptimalNeverWorseThanMonolithic for arbitrary specs.
func TestOptimalNeverWorseThanMonolithic(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		blocks := int(n%32) + 1
		spec := &Spec{BlockSize: 64, Blocks: make([]BlockStats, blocks), Cycles: 100}
		for i := range spec.Blocks {
			spec.Blocks[i] = BlockStats{Reads: uint64(r.Intn(1000)), Writes: uint64(r.Intn(300))}
		}
		monoE := Energy(spec, Monolithic(spec), model())
		_, optE, err := Optimal(spec, 4, model())
		return err == nil && optE <= monoE+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalMatchesBruteForce on tiny instances: the DP must equal
// exhaustive enumeration of all contiguous partitions.
func TestOptimalMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(6)
		spec := &Spec{BlockSize: 64, Blocks: make([]BlockStats, n), Cycles: 50}
		for i := range spec.Blocks {
			spec.Blocks[i] = BlockStats{Reads: uint64(r.Intn(500)), Writes: uint64(r.Intn(100))}
		}
		const maxBanks = 3
		_, dpE, err := Optimal(spec, maxBanks, model())
		if err != nil {
			t.Fatal(err)
		}

		// Brute force: every subset of cut positions with < maxBanks cuts.
		best := energy.PJ(1e30)
		var enumerate func(cuts []int, next int)
		enumerate = func(cuts []int, next int) {
			if len(cuts)+1 <= maxBanks {
				p := partitionFromCuts(spec, cuts)
				if e := Energy(spec, p, model()); e < best {
					best = e
				}
			}
			if len(cuts)+1 >= maxBanks {
				return
			}
			for c := next; c < n; c++ {
				enumerate(append(cuts, c), c+1)
			}
		}
		enumerate(nil, 1)
		if diff := float64(dpE - best); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: DP %v != brute force %v", trial, dpE, best)
		}
	}
}

// partitionFromCuts builds a partition from sorted cut positions.
func partitionFromCuts(spec *Spec, cuts []int) *Partition {
	bounds := append(append([]int{0}, cuts...), len(spec.Blocks))
	var p Partition
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		var b Bank
		b.FirstBlock = lo
		b.NumBlocks = hi - lo
		b.SizeBytes = pow2Ceil(uint32(hi-lo) * spec.BlockSize)
		for j := lo; j < hi; j++ {
			b.Reads += spec.Blocks[j].Reads
			b.Writes += spec.Blocks[j].Writes
		}
		p.Banks = append(p.Banks, b)
	}
	return &p
}

// TestOptimalIsolatesHotBlock: with one very hot block among cold ones,
// the optimum must put it in its own small bank.
func TestOptimalIsolatesHotBlock(t *testing.T) {
	spec := flatSpec(32, 2)
	spec.Blocks[0] = BlockStats{Reads: 100000}
	p, _, err := Optimal(spec, 4, model())
	if err != nil {
		t.Fatal(err)
	}
	first := p.Banks[0]
	if first.NumBlocks != 1 || first.Reads != 100000 {
		t.Fatalf("hot block not isolated: %+v", p)
	}
}

func TestOptimalEmptyAndBadArgs(t *testing.T) {
	p, e, err := Optimal(&Spec{BlockSize: 64}, 4, model())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBanks() != 0 || e != 0 {
		t.Fatal("empty spec should yield empty partition")
	}
	if _, _, err := Optimal(flatSpec(2, 1), 0, model()); err == nil {
		t.Fatal("maxBanks < 1 must be an error")
	}
}

// TestBanksArePartition: banks must tile the block range exactly.
func TestBanksArePartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		spec := &Spec{BlockSize: 64, Blocks: make([]BlockStats, n), Cycles: 10}
		for i := range spec.Blocks {
			spec.Blocks[i] = BlockStats{Reads: uint64(r.Intn(100))}
		}
		p, _, err := Optimal(spec, 1+r.Intn(6), model())
		if err != nil {
			return false
		}
		at := 0
		for _, b := range p.Banks {
			if b.FirstBlock != at || b.NumBlocks <= 0 {
				return false
			}
			at += b.NumBlocks
		}
		return at == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMoreBanksNeverHurt: allowing a bigger budget can only lower energy
// (the DP considers all smaller counts too).
func TestMoreBanksNeverHurt(t *testing.T) {
	spec := flatSpec(24, 3)
	for i := range spec.Blocks {
		spec.Blocks[i].Reads = uint64((i * 37) % 97)
	}
	prev := energy.PJ(1e30)
	for _, k := range []int{1, 2, 4, 8} {
		_, e, err := Optimal(spec, k, model())
		if err != nil {
			t.Fatal(err)
		}
		if e > prev+1e-9 {
			t.Fatalf("budget %d made energy worse: %v > %v", k, e, prev)
		}
		prev = e
	}
}

func TestPartitionString(t *testing.T) {
	p := &Partition{Banks: []Bank{{SizeBytes: 256, Reads: 10, Writes: 5}}}
	if got := p.String(); got != "[256B:15]" {
		t.Fatalf("String() = %q", got)
	}
}
