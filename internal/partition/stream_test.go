package partition

import (
	"bytes"
	"reflect"
	"testing"

	"lpmem/internal/trace"
)

// TestSpecFromCursorBinaryStreamEquivalence pins streamed profiling to
// the materialised path: the spec built from a binary serialisation of
// a trace must equal the one built from the in-memory trace.
func TestSpecFromCursorBinaryStreamEquivalence(t *testing.T) {
	tr := trace.Synthesize(trace.SynthConfig{
		Seed: 9,
		N:    50000,
		Regions: []trace.Region{
			{Base: 0x0, Size: 8 << 10, Weight: 10, Stride: 4},
			{Base: 0x40000, Size: 128 << 10, Weight: 1},
		},
		WriteFraction: 0.4,
	})
	wantSpec, wantBases, err := SpecFromTrace(tr, 512, 12345)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&bin)
	if err != nil {
		t.Fatal(err)
	}
	gotSpec, gotBases, err := SpecFromCursor(r, 512, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBases, wantBases) {
		t.Fatalf("streamed bases diverged: %v vs %v", gotBases, wantBases)
	}
	if !reflect.DeepEqual(gotSpec, wantSpec) {
		t.Fatalf("streamed spec diverged:\n got %+v\nwant %+v", gotSpec, wantSpec)
	}
}

// TestSpecFromCursorPropagatesDecodeError checks a corrupt stream is an
// error, not a silently truncated profile.
func TestSpecFromCursorPropagatesDecodeError(t *testing.T) {
	tr := trace.New(4)
	for i := uint32(0); i < 4; i++ {
		tr.Append(trace.Access{Addr: i * 64, Kind: trace.Read, Width: 4})
	}
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(bin.Bytes()[:bin.Len()-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SpecFromCursor(r, 64, 100); err == nil {
		t.Fatal("truncated stream did not error")
	}
}
