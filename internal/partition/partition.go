// Package partition implements energy-driven multi-bank memory
// partitioning for embedded systems (DATE'03 1B.1 substrate).
//
// Given a per-block access profile of a contiguous memory image, the
// optimizer splits the image into at most K contiguous banks so that total
// memory energy — per-access energy that grows with bank size, bank-select
// decoding, and leakage — is minimized. Hot, small banks serve most
// accesses cheaply; cold data is relegated to large banks that are rarely
// activated. The optimizer is an exact O(B²·K) dynamic program over block
// boundaries.
//
// Bank capacities are rounded up to the next power of two, as real SRAM
// macros are: the rounding wastage is exactly what address clustering
// (package cluster) reduces.
//
//lint:hotpath
package partition

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lpmem/internal/energy"
	"lpmem/internal/trace"
)

// BlockStats holds per-block access counts.
type BlockStats struct {
	Reads  uint64
	Writes uint64
}

// Total returns reads+writes.
func (b BlockStats) Total() uint64 { return b.Reads + b.Writes }

// Spec is a partitioning problem: a contiguous sequence of blocks with
// access statistics.
type Spec struct {
	// BlockSize is the block granularity in bytes (power of two).
	BlockSize uint32
	// Blocks holds per-block statistics; block i covers bytes
	// [i*BlockSize, (i+1)*BlockSize) of the normalized memory image.
	Blocks []BlockStats
	// Cycles is the execution length used to charge leakage.
	Cycles uint64
}

// TotalAccesses returns the total access count across all blocks.
func (s *Spec) TotalAccesses() uint64 {
	var n uint64
	for _, b := range s.Blocks {
		n += b.Total()
	}
	return n
}

// SpecFromTrace builds a Spec from the data accesses of a trace. The
// occupied blocks are compacted in ascending address order (the linker
// view of the memory image). The returned slice maps block index to the
// original block base address, so callers can translate back. blockSize
// must be a power of two; a bad geometry is reported as an error so that
// callers driven by external configuration can recover.
func SpecFromTrace(t *trace.Trace, blockSize uint32, cycles uint64) (*Spec, []uint32, error) {
	return SpecFromCursor(t.Cursor(), blockSize, cycles)
}

// SpecFromCursor is SpecFromTrace over an access stream: profiling a
// multi-million-access binary trace builds only the per-block count
// map, never a []Access.
func SpecFromCursor(cur trace.Cursor, blockSize uint32, cycles uint64) (*Spec, []uint32, error) {
	if blockSize == 0 || blockSize&(blockSize-1) != 0 {
		return nil, nil, fmt.Errorf("partition: block size %d is not a power of two", blockSize)
	}
	type rw struct{ r, w uint64 }
	// Value map with read-modify-write: no per-block pointer allocation
	// while scanning what can be a multi-million-access trace.
	counts := make(map[uint32]rw)
	mask := ^(blockSize - 1)
	for cur.Next() {
		a := cur.Access()
		if a.Kind == trace.Fetch {
			continue
		}
		base := a.Addr & mask
		c := counts[base]
		if a.Kind == trace.Write {
			c.w++
		} else {
			c.r++
		}
		counts[base] = c
	}
	if err := cur.Err(); err != nil {
		return nil, nil, fmt.Errorf("partition: profiling access stream: %w", err)
	}
	bases := make([]uint32, 0, len(counts))
	for b := range counts {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	spec := &Spec{BlockSize: blockSize, Blocks: make([]BlockStats, len(bases)), Cycles: cycles}
	for i, b := range bases {
		spec.Blocks[i] = BlockStats{Reads: counts[b].r, Writes: counts[b].w}
	}
	return spec, bases, nil
}

// Bank is one contiguous memory bank of a partition.
type Bank struct {
	// FirstBlock is the index of the first block held by this bank.
	FirstBlock int
	// NumBlocks is the number of contiguous blocks held.
	NumBlocks int
	// SizeBytes is the physical capacity: NumBlocks*BlockSize rounded up
	// to a power of two.
	SizeBytes uint32
	// Reads and Writes are the access totals served by the bank.
	Reads  uint64
	Writes uint64
}

// Partition is a complete bank assignment.
type Partition struct {
	Banks []Bank
}

// NumBanks returns the bank count.
func (p *Partition) NumBanks() int { return len(p.Banks) }

// String renders a compact description like "[4KiB:1203 1KiB:9771]".
func (p *Partition) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, b := range p.Banks {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.FormatUint(uint64(b.SizeBytes), 10))
		sb.WriteString("B:")
		sb.WriteString(strconv.FormatUint(b.Reads+b.Writes, 10))
	}
	sb.WriteByte(']')
	return sb.String()
}

// pow2Ceil rounds v up to the next power of two (minimum 1).
func pow2Ceil(v uint32) uint32 {
	if v == 0 {
		return 1
	}
	p := uint32(1)
	for p < v {
		p <<= 1
	}
	return p
}

// bankEnergy computes the dynamic energy of serving the given counts from
// a bank of the given physical size.
func bankEnergy(m energy.MemoryModel, size uint32, reads, writes uint64) energy.PJ {
	return m.ReadEnergy(size)*energy.PJ(reads) + m.WriteEnergy(size)*energy.PJ(writes)
}

// Energy returns the total energy of serving the spec with partition p:
// per-bank dynamic energy + bank-select overhead per access + leakage of
// every bank over the run.
func Energy(spec *Spec, p *Partition, m energy.MemoryModel) energy.PJ {
	var e energy.PJ
	for _, b := range p.Banks {
		e += bankEnergy(m, b.SizeBytes, b.Reads, b.Writes)
		e += m.Leakage(b.SizeBytes, spec.Cycles)
	}
	e += m.SelectEnergy(len(p.Banks)) * energy.PJ(spec.TotalAccesses())
	return e
}

// Monolithic returns the single-bank partition covering the whole image.
func Monolithic(spec *Spec) *Partition {
	var reads, writes uint64
	for _, b := range spec.Blocks {
		reads += b.Reads
		writes += b.Writes
	}
	return &Partition{Banks: []Bank{{
		FirstBlock: 0,
		NumBlocks:  len(spec.Blocks),
		SizeBytes:  pow2Ceil(uint32(len(spec.Blocks)) * spec.BlockSize),
		Reads:      reads,
		Writes:     writes,
	}}}
}

// Optimal computes the minimum-energy partition into at most maxBanks
// contiguous banks, via dynamic programming, and returns it with its
// energy. A bank budget below 1 is reported as an error.
func Optimal(spec *Spec, maxBanks int, m energy.MemoryModel) (*Partition, energy.PJ, error) {
	if maxBanks < 1 {
		return nil, 0, fmt.Errorf("partition: maxBanks must be >= 1, got %d", maxBanks)
	}
	if err := m.Validate(); err != nil {
		return nil, 0, fmt.Errorf("partition: %w", err)
	}
	n := len(spec.Blocks)
	if n == 0 {
		//lint:allow hotalloc empty-spec fast path: one fixed-size allocation per call
		return &Partition{}, 0, nil
	}
	// Optimal is called in a loop by tradeoff.Curve, so its setup
	// allocations are per-iteration from the caller's view. Each O(n)
	// slice below is amortised over the O(n²·K) DP that follows, and the
	// logically-2D tables share single flat backings.
	//
	// Prefix sums for O(1) range statistics: pre[0..n] reads, pre[n+1..]
	// writes.
	//lint:allow hotalloc O(n) setup amortised over the O(n²·K) DP below
	pre := make([]uint64, 2*(n+1))
	preR, preW := pre[:n+1], pre[n+1:]
	for i, b := range spec.Blocks {
		preR[i+1] = preR[i] + b.Reads
		preW[i+1] = preW[i] + b.Writes
	}
	// Per-length model memos: the energy of one bank holding l blocks
	// depends only on l — and each model term hides a math.Pow — so the
	// O(n²·K) cost evaluations of the DP need just n model evaluations.
	//lint:allow hotalloc O(n) setup amortised over the O(n²·K) DP below
	memo := make([]energy.PJ, 3*(n+1))
	readE, writeE, leakE := memo[:n+1], memo[n+1:2*(n+1)], memo[2*(n+1):]
	for l := 1; l <= n; l++ {
		size := pow2Ceil(uint32(l) * spec.BlockSize)
		readE[l] = m.ReadEnergy(size)
		writeE[l] = m.WriteEnergy(size)
		leakE[l] = m.Leakage(size, spec.Cycles)
	}

	const inf = energy.PJ(1e30)
	// dp[k][j]: min energy of splitting blocks [0,j) into exactly k
	// banks; cut[k][j] the matching last boundary. Flat row-major tables.
	stride := n + 1
	//lint:allow hotalloc O(n·K) DP table amortised over the O(n²·K) DP below
	dp := make([]energy.PJ, (maxBanks+1)*stride)
	//lint:allow hotalloc O(n·K) DP table amortised over the O(n²·K) DP below
	cut := make([]int, (maxBanks+1)*stride)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for k := 1; k <= maxBanks; k++ {
		prev, row := dp[(k-1)*stride:k*stride], dp[k*stride:(k+1)*stride]
		cutRow := cut[k*stride : (k+1)*stride]
		for j := 1; j <= n; j++ {
			for i := k - 1; i < j; i++ {
				if prev[i] >= inf {
					continue
				}
				// cost(i,j): energy of one bank holding blocks [i,j),
				// including its leakage (select overhead depends on the
				// final bank count and is added per k below).
				c := prev[i] + readE[j-i]*energy.PJ(preR[j]-preR[i]) +
					writeE[j-i]*energy.PJ(preW[j]-preW[i]) +
					leakE[j-i]
				if c < row[j] {
					row[j] = c
					cutRow[j] = i
				}
			}
		}
	}
	total := spec.TotalAccesses()
	bestK, bestE := 1, inf
	for k := 1; k <= maxBanks; k++ {
		if dp[k*stride+n] >= inf {
			continue
		}
		e := dp[k*stride+n] + m.SelectEnergy(k)*energy.PJ(total)
		if e < bestE {
			bestE = e
			bestK = k
		}
	}
	// Reconstruct the cuts.
	//lint:allow hotalloc result slice; the caller owns the returned banks
	banks := make([]Bank, 0, bestK)
	j := n
	for k := bestK; k >= 1; k-- {
		i := cut[k*stride+j]
		banks = append(banks, Bank{
			FirstBlock: i,
			NumBlocks:  j - i,
			SizeBytes:  pow2Ceil(uint32(j-i) * spec.BlockSize),
			Reads:      preR[j] - preR[i],
			Writes:     preW[j] - preW[i],
		})
		j = i
	}
	// Reverse into ascending block order.
	for l, r := 0, len(banks)-1; l < r; l, r = l+1, r-1 {
		banks[l], banks[r] = banks[r], banks[l]
	}
	//lint:allow hotalloc result value; the API returns a fresh Partition per call
	return &Partition{Banks: banks}, bestE, nil
}
