package partition

import (
	"testing"

	"lpmem/internal/energy"
	"lpmem/internal/workloads"
)

// TestTradeoffMonotone: the optimal energy curve never rises with budget.
func TestTradeoffMonotone(t *testing.T) {
	k, err := workloads.ByName("histogram")
	if err != nil {
		t.Fatal(err)
	}
	res := workloads.MustRun(k.Build(1))
	spec, _, err := SpecFromTrace(res.Trace, 64, res.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := Tradeoff(spec, 8, energy.DefaultMemoryModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 8 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Energy > curve[i-1].Energy+1e-6 {
			t.Fatalf("curve rose at budget %d: %v > %v",
				curve[i].MaxBanks, curve[i].Energy, curve[i-1].Energy)
		}
		if curve[i].BanksUsed > curve[i].MaxBanks {
			t.Fatalf("used %d banks with budget %d", curve[i].BanksUsed, curve[i].MaxBanks)
		}
	}
	t.Logf("energy curve: 1 bank %v -> 8 banks %v", curve[0].Energy, curve[7].Energy)
}

func TestKnee(t *testing.T) {
	curve := []TradeoffPoint{
		{MaxBanks: 1, Energy: 100},
		{MaxBanks: 2, Energy: 60},
		{MaxBanks: 3, Energy: 51},
		{MaxBanks: 4, Energy: 50},
	}
	if got := Knee(curve, 0.05); got.MaxBanks != 3 {
		t.Fatalf("knee = %d, want 3", got.MaxBanks)
	}
	if got := Knee(curve, 0); got.MaxBanks != 4 {
		t.Fatalf("tight knee = %d, want 4", got.MaxBanks)
	}
	if got := Knee(nil, 0.1); got.MaxBanks != 0 {
		t.Fatal("empty curve should return zero point")
	}
}
