package partition_test

import (
	"math/rand"
	"testing"

	"lpmem/internal/energy"
	"lpmem/internal/faultinject"
	"lpmem/internal/partition"
)

// randomSpec builds a random but well-formed partitioning problem:
// skewed access counts (a few hot blocks, a cold tail) over a random
// power-of-two block size, mirroring what SpecFromTrace produces.
func randomSpec(r *rand.Rand) *partition.Spec {
	n := 1 + r.Intn(24)
	spec := &partition.Spec{
		BlockSize: uint32(64) << r.Intn(6),
		Blocks:    make([]partition.BlockStats, n),
		Cycles:    uint64(r.Intn(1 << 16)),
	}
	for i := range spec.Blocks {
		if r.Intn(4) == 0 { // hot block
			spec.Blocks[i] = partition.BlockStats{
				Reads:  uint64(r.Intn(100000)),
				Writes: uint64(r.Intn(20000)),
			}
		} else {
			spec.Blocks[i] = partition.BlockStats{
				Reads:  uint64(r.Intn(200)),
				Writes: uint64(r.Intn(50)),
			}
		}
	}
	return spec
}

// TestOptimalNeverWorseThanMonolithic is the core optimizer property:
// for any spec, bank budget and admissible model, the DP's energy never
// exceeds the single-bank baseline (which is always a feasible split),
// and equals it exactly when the budget is one bank.
func TestOptimalNeverWorseThanMonolithic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		spec := randomSpec(r)
		m := faultinject.PerturbModel(energy.DefaultMemoryModel(), r)
		mono := partition.Energy(spec, partition.Monolithic(spec), m)
		maxBanks := 1 + r.Intn(8)
		p, e, err := partition.Optimal(spec, maxBanks, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		const eps = 1e-6
		if float64(e) > float64(mono)*(1+eps)+eps {
			t.Fatalf("trial %d: optimal %v worse than monolithic %v (budget %d, %d blocks)",
				trial, e, mono, maxBanks, len(spec.Blocks))
		}
		if maxBanks == 1 && floatFar(float64(e), float64(mono)) {
			t.Fatalf("trial %d: 1-bank optimum %v != monolithic %v", trial, e, mono)
		}
		// The reported energy must match re-evaluating the partition.
		if re := partition.Energy(spec, p, m); floatFar(float64(e), float64(re)) {
			t.Fatalf("trial %d: reported %v, re-evaluated %v", trial, e, re)
		}
		checkCoverage(t, trial, spec, p, maxBanks)
	}
}

// checkCoverage asserts structural sanity: banks tile the block range
// contiguously, respect the budget, and conserve the access counts.
func checkCoverage(t *testing.T, trial int, spec *partition.Spec, p *partition.Partition, maxBanks int) {
	t.Helper()
	if len(p.Banks) < 1 || len(p.Banks) > maxBanks {
		t.Fatalf("trial %d: %d banks outside [1,%d]", trial, len(p.Banks), maxBanks)
	}
	next := 0
	var reads, writes uint64
	for _, b := range p.Banks {
		if b.FirstBlock != next || b.NumBlocks < 1 {
			t.Fatalf("trial %d: bank gap/overlap at block %d: %+v", trial, next, b)
		}
		if want := uint32(b.NumBlocks) * spec.BlockSize; b.SizeBytes < want {
			t.Fatalf("trial %d: bank capacity %dB below content %dB", trial, b.SizeBytes, want)
		}
		next = b.FirstBlock + b.NumBlocks
		reads += b.Reads
		writes += b.Writes
	}
	if next != len(spec.Blocks) {
		t.Fatalf("trial %d: banks cover %d of %d blocks", trial, next, len(spec.Blocks))
	}
	var wantR, wantW uint64
	for _, blk := range spec.Blocks {
		wantR += blk.Reads
		wantW += blk.Writes
	}
	if reads != wantR || writes != wantW {
		t.Fatalf("trial %d: access counts not conserved: %d/%d vs %d/%d", trial, reads, writes, wantR, wantW)
	}
}

// floatFar reports whether a and b differ beyond float round-off.
func floatFar(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff > 1e-9*scale+1e-9
}
