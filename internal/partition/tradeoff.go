package partition

import "lpmem/internal/energy"

// TradeoffPoint is one point of the energy-vs-bank-count curve, the
// figure-style output of partitioning papers: more banks cut per-access
// energy but pay growing selector overhead, producing a characteristic
// U-or-L-shaped curve with a sweet spot.
type TradeoffPoint struct {
	// MaxBanks is the bank budget of this point.
	MaxBanks int
	// BanksUsed is how many banks the optimum actually used.
	BanksUsed int
	// Energy is the optimal energy under the budget.
	Energy energy.PJ
}

// Tradeoff sweeps the bank budget from 1 to maxBanks and returns the
// energy curve. The curve is non-increasing in the budget (a bigger
// budget can always fall back to fewer banks).
func Tradeoff(spec *Spec, maxBanks int, m energy.MemoryModel) ([]TradeoffPoint, error) {
	out := make([]TradeoffPoint, 0, maxBanks)
	for k := 1; k <= maxBanks; k++ {
		p, e, err := Optimal(spec, k, m)
		if err != nil {
			return nil, err
		}
		out = append(out, TradeoffPoint{MaxBanks: k, BanksUsed: p.NumBanks(), Energy: e})
	}
	return out, nil
}

// Knee returns the smallest budget whose energy is within tol (a fraction,
// e.g. 0.02) of the best energy on the curve: the point a designer would
// pick, since further banks buy almost nothing.
func Knee(curve []TradeoffPoint, tol float64) TradeoffPoint {
	if len(curve) == 0 {
		return TradeoffPoint{}
	}
	best := curve[0].Energy
	for _, p := range curve {
		if p.Energy < best {
			best = p.Energy
		}
	}
	for _, p := range curve {
		if float64(p.Energy) <= float64(best)*(1+tol) {
			return p
		}
	}
	return curve[len(curve)-1]
}
