package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Record is one persisted point evaluation. Point coordinates are stored
// in their canonical text form so records survive axis-type refactors
// and stay human-greppable in the JSONL file.
type Record struct {
	// Key is the content address: adapter @ StoreVersion : FNV of the
	// canonical point (see Key).
	Key string `json:"key"`
	// Adapter names the substrate that produced the metrics.
	Adapter string `json:"adapter"`
	// Point maps axis name to the coordinate's canonical text form.
	Point map[string]string `json:"point"`
	// Metrics is the evaluated objective triple.
	Metrics Metrics `json:"metrics"`
}

// Store is the persistent result cache that makes sweeps incremental: an
// append-only JSON-lines file keyed by point content hash. Re-running a
// sweep against a warm store executes only the missing points; a sweep
// killed mid-flight resumes from whatever was flushed. A Store with an
// empty path is memory-only (used by the HTTP service and tests).
//
// The format is one JSON object per line. Loading tolerates a torn final
// line — the footprint of a killed process — and, defensively, skips any
// other unparseable line rather than refusing the whole file: every
// intact record is still worth not recomputing.
type Store struct {
	path string

	mu      sync.Mutex
	recs    map[string]Record
	order   []string // insertion order, for deterministic dumps
	f       *os.File
	w       *bufio.Writer
	skipped int
	// needSep is set when the existing file does not end in a newline
	// (torn tail); the next append must start on a fresh line.
	needSep bool
}

// OpenStore loads (creating if needed) the JSONL store at path, or
// returns a memory-only store when path is empty.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, recs: make(map[string]Record)}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("sweep: read store: %w", err)
	}
	start := 0
	for i := 0; i <= len(data); i++ {
		if i < len(data) && data[i] != '\n' {
			continue
		}
		line := data[start:i]
		start = i + 1
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			s.skipped++
			continue
		}
		if _, dup := s.recs[rec.Key]; !dup {
			s.order = append(s.order, rec.Key)
		}
		s.recs[rec.Key] = rec
	}
	s.needSep = len(data) > 0 && data[len(data)-1] != '\n'
	if _, err := f.Seek(0, 2); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("sweep: seek store: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// Path returns the backing file path ("" for memory-only stores).
func (s *Store) Path() string { return s.path }

// Len returns the number of records held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Skipped reports how many unparseable lines the load dropped (0 on a
// healthy file; at most the torn tail of a killed sweep).
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Get returns the record for key, if present.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[key]
	return rec, ok
}

// Put inserts (or overwrites) a record and appends it to the backing
// file. The line is flushed to the OS immediately so a killed process
// loses at most the record being written.
func (s *Store) Put(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("sweep: record with empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.recs[rec.Key]; !dup {
		s.order = append(s.order, rec.Key)
	}
	s.recs[rec.Key] = rec
	if s.f == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: encode record: %w", err)
	}
	if s.needSep {
		if err := s.w.WriteByte('\n'); err != nil {
			return fmt.Errorf("sweep: write store: %w", err)
		}
		s.needSep = false
	}
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("sweep: write store: %w", err)
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("sweep: write store: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("sweep: flush store: %w", err)
	}
	return nil
}

// Close flushes and closes the backing file. The in-memory view stays
// readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var first error
	if err := s.w.Flush(); err != nil {
		first = err
	}
	if err := s.f.Close(); err != nil && first == nil {
		first = err
	}
	s.f, s.w = nil, nil
	if first != nil {
		return fmt.Errorf("sweep: close store: %w", first)
	}
	return nil
}

// RecordFor builds the persisted form of one evaluated point.
func RecordFor(adapter string, p Point, m Metrics) Record {
	coords := make(map[string]string, len(p))
	for name, v := range p {
		coords[name] = v.String()
	}
	return Record{
		Key:     Key(adapter, StoreVersion, p),
		Adapter: adapter,
		Point:   coords,
		Metrics: m,
	}
}
