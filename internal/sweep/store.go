package sweep

import (
	"encoding/json"
	"fmt"
	"sync"

	"lpmem/internal/resultstore"
)

// Record is one persisted point evaluation. Point coordinates are stored
// in their canonical text form so records survive axis-type refactors
// and stay human-greppable in the JSONL file.
type Record struct {
	// Key is the content address: adapter @ StoreVersion : FNV of the
	// canonical point (see Key).
	Key string `json:"key"`
	// Adapter names the substrate that produced the metrics.
	Adapter string `json:"adapter"`
	// Point maps axis name to the coordinate's canonical text form.
	Point map[string]string `json:"point"`
	// Metrics is the evaluated objective triple.
	Metrics Metrics `json:"metrics"`
}

// Store is the persistent result cache that makes sweeps incremental: an
// append-only JSON-lines file keyed by point content hash. Re-running a
// sweep against a warm store executes only the missing points; a sweep
// killed mid-flight resumes from whatever was flushed. A Store with an
// empty path is memory-only (used by the HTTP service and tests).
//
// The file layer is resultstore.Log, which makes the store safe for
// multiple concurrent writer processes: every record is appended as one
// whole O_APPEND line, so replicas sharing a store file interleave
// records, never bytes, and Refresh merges what peers appended since the
// last look. Loading tolerates a torn final line — the footprint of a
// killed process — and, defensively, skips any other unparseable line
// rather than refusing the whole file: every intact record is still
// worth not recomputing.
type Store struct {
	path string

	mu      sync.Mutex
	recs    map[string]Record
	order   []string // insertion order, for deterministic dumps
	log     *resultstore.Log
	skipped int
}

// OpenStore loads (creating if needed) the JSONL store at path, or
// returns a memory-only store when path is empty.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, recs: make(map[string]Record)}
	if path == "" {
		return s, nil
	}
	log, err := resultstore.OpenLog(path, false)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	s.log = log
	if err := s.refreshLocked(); err != nil {
		_ = log.Close()
		return nil, fmt.Errorf("sweep: read store: %w", err)
	}
	return s, nil
}

// Path returns the backing file path ("" for memory-only stores).
func (s *Store) Path() string { return s.path }

// Len returns the number of records held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Skipped reports how many unparseable lines the loads so far dropped
// (0 on a healthy file; at most the torn tail of a killed sweep).
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Get returns the record for key, if present.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[key]
	return rec, ok
}

// Refresh merges records appended to the backing file since the last
// load — the work of sibling replicas sharing the store. Memory-only
// stores no-op. The call is cheap when nothing new was appended (one
// fstat).
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	if err := s.refreshLocked(); err != nil {
		return fmt.Errorf("sweep: refresh store: %w", err)
	}
	return nil
}

// refreshLocked scans new complete lines into the record map.
func (s *Store) refreshLocked() error {
	return s.log.Scan(func(_ int64, line []byte) error {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			s.skipped++
			return nil
		}
		if _, dup := s.recs[rec.Key]; !dup {
			s.order = append(s.order, rec.Key)
		}
		s.recs[rec.Key] = rec
		return nil
	})
}

// Put inserts (or overwrites) a record and appends it to the backing
// file as one whole line, immediately visible to peer processes. A
// killed process loses at most the record being written.
func (s *Store) Put(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("sweep: record with empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.recs[rec.Key]; !dup {
		s.order = append(s.order, rec.Key)
	}
	s.recs[rec.Key] = rec
	if s.log == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: encode record: %w", err)
	}
	if err := s.log.Append(line); err != nil {
		return fmt.Errorf("sweep: write store: %w", err)
	}
	return nil
}

// Close closes the backing file. The in-memory view stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	if err != nil {
		return fmt.Errorf("sweep: close store: %w", err)
	}
	return nil
}

// RecordFor builds the persisted form of one evaluated point.
func RecordFor(adapter string, p Point, m Metrics) Record {
	coords := make(map[string]string, len(p))
	for name, v := range p {
		coords[name] = v.String()
	}
	return Record{
		Key:     Key(adapter, StoreVersion, p),
		Adapter: adapter,
		Point:   coords,
		Metrics: m,
	}
}
