package sweep

import (
	"strings"
	"testing"
)

// testSpace is a small mixed space used across the unit tests.
func testSpace() Space {
	return Space{
		Axes: []Axis{
			{Name: "banks", Kind: IntAxis, Min: 1, Max: 4},
			{Name: "size", Kind: IntAxis, Min: 16, Max: 128, Steps: 4, Log: true},
			{Name: "mode", Kind: EnumAxis, Values: []string{"wb", "wt"}},
		},
		Constraints: []Constraint{{
			Name:  "wt needs <= 2 banks",
			Allow: func(p Point) bool { return p.Enum("mode") != "wt" || p.Int("banks") <= 2 },
		}},
	}
}

func TestGridEnumeration(t *testing.T) {
	sp := testSpace()
	pts, err := sp.Grid()
	if err != nil {
		t.Fatal(err)
	}
	// 4 banks x 4 sizes x 2 modes = 32, minus wt points with banks 3,4
	// (2 banks x 4 sizes) = 8 removed.
	if want := 24; len(pts) != want {
		t.Fatalf("grid has %d points, want %d", len(pts), want)
	}
	if sp.GridSize() != 32 {
		t.Fatalf("GridSize %d, want 32", sp.GridSize())
	}
	seen := map[string]bool{}
	for _, p := range pts {
		if err := sp.Contains(p); err != nil {
			t.Fatalf("grid emitted out-of-space point: %v", err)
		}
		c := p.Canonical()
		if seen[c] {
			t.Fatalf("duplicate grid point %s", c)
		}
		seen[c] = true
	}
	// Log axis must land on the powers of two.
	sizes := map[int]bool{}
	for _, p := range pts {
		sizes[p.Int("size")] = true
	}
	for _, want := range []int{16, 32, 64, 128} {
		if !sizes[want] {
			t.Fatalf("log axis misses %d (got %v)", want, sizes)
		}
	}
}

func TestGridSortedAndDeterministic(t *testing.T) {
	sp := testSpace()
	a, err := sp.Grid()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("grid sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Canonical() != b[i].Canonical() {
			t.Fatalf("grid order differs at %d: %s vs %s", i, a[i].Canonical(), b[i].Canonical())
		}
	}
	// Declared-axis-order sort: banks ascending first.
	last := -1
	for _, p := range a {
		if v := p.Int("banks"); v < last {
			t.Fatalf("grid not sorted by first axis: %d after %d", v, last)
		} else {
			last = v
		}
	}
}

func TestSampleDeterministicSeedSensitive(t *testing.T) {
	sp := testSpace()
	a, err := sp.Sample(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Sample(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty sample")
	}
	if len(a) != len(b) {
		t.Fatalf("same-seed samples differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Canonical() != b[i].Canonical() {
			t.Fatalf("same-seed sample differs at %d", i)
		}
	}
	for _, p := range a {
		if err := sp.Contains(p); err != nil {
			t.Fatalf("sample emitted out-of-space point: %v", err)
		}
	}
	c, err := sp.Sample(16, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Canonical() != c[i].Canonical() {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSampleSnapsSteppedIntAxes(t *testing.T) {
	sp := Space{Axes: []Axis{{Name: "sets", Kind: IntAxis, Min: 16, Max: 512, Steps: 6, Log: true}}}
	pts, err := sp.Sample(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	legal := map[int]bool{16: true, 32: true, 64: true, 128: true, 256: true, 512: true}
	for _, p := range pts {
		if !legal[p.Int("sets")] {
			t.Fatalf("sample %d is off the stepped grid", p.Int("sets"))
		}
	}
}

func TestContainsRejects(t *testing.T) {
	sp := testSpace()
	cases := []Point{
		{"banks": IntValue(5), "size": IntValue(16), "mode": EnumValue("wb")},    // out of range
		{"banks": IntValue(3), "size": IntValue(16), "mode": EnumValue("wt")},    // constraint
		{"banks": IntValue(1), "size": IntValue(16)},                             // missing axis
		{"banks": IntValue(1), "size": IntValue(16), "mode": EnumValue("xx")},    // bad enum
		{"banks": EnumValue("x"), "size": IntValue(16), "mode": EnumValue("wb")}, // enum on numeric axis
	}
	for i, p := range cases {
		if err := sp.Contains(p); err == nil {
			t.Errorf("case %d: Contains accepted illegal point %s", i, p.Canonical())
		}
	}
}

func TestKeyStableAndCanonical(t *testing.T) {
	p := Point{"banks": IntValue(4), "block": IntValue(64)}
	q := Point{"block": IntValue(64), "banks": IntValue(4)}
	if p.Canonical() != q.Canonical() {
		t.Fatalf("canonical form depends on construction order: %q vs %q", p.Canonical(), q.Canonical())
	}
	if Key("banks", StoreVersion, p) != Key("banks", StoreVersion, q) {
		t.Fatal("key depends on construction order")
	}
	if Key("banks", StoreVersion, p) == Key("cache", StoreVersion, p) {
		t.Fatal("key ignores adapter")
	}
	if Key("banks", "v1", p) == Key("banks", "v2", p) {
		t.Fatal("key ignores version")
	}
	if !strings.HasPrefix(Key("banks", StoreVersion, p), "banks@"+StoreVersion+":") {
		t.Fatalf("key %q misses the adapter@version prefix", Key("banks", StoreVersion, p))
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	axes := testSpace().Axes
	pts, err := testSpace().Grid()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		for _, a := range axes {
			v, err := ParseValue(a, p[a.Name].String())
			if err != nil {
				t.Fatalf("axis %s: %v", a.Name, err)
			}
			if v.String() != p[a.Name].String() {
				t.Fatalf("axis %s: %q round-tripped to %q", a.Name, p[a.Name].String(), v.String())
			}
		}
	}
	if _, err := ParseValue(Axis{Name: "mode", Kind: EnumAxis, Values: []string{"wb"}}, "zz"); err == nil {
		t.Fatal("ParseValue accepted an unknown enum label")
	}
}

func TestSpaceValidateRejects(t *testing.T) {
	bad := []Space{
		{},
		{Axes: []Axis{{Name: "", Kind: IntAxis, Min: 0, Max: 1}}},
		{Axes: []Axis{{Name: "a", Kind: IntAxis, Min: 2, Max: 1}}},
		{Axes: []Axis{{Name: "a", Kind: IntAxis, Min: 0, Max: 4, Log: true}}},
		{Axes: []Axis{{Name: "a", Kind: FloatAxis, Min: 0, Max: 1}}}, // no steps
		{Axes: []Axis{{Name: "a", Kind: EnumAxis}}},
		{Axes: []Axis{{Name: "a", Kind: EnumAxis, Values: []string{"x", "x"}}}},
		{Axes: []Axis{{Name: "a", Kind: IntAxis, Min: 0, Max: 1}, {Name: "a", Kind: IntAxis, Min: 0, Max: 1}}},
		{Axes: []Axis{{Name: "a", Kind: IntAxis, Min: 0, Max: 1}}, Constraints: []Constraint{{Name: "nil"}}},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a malformed space", i)
		}
	}
}

func TestAdapterSpacesValid(t *testing.T) {
	for _, ad := range Adapters() {
		if err := ad.Space().Validate(); err != nil {
			t.Errorf("adapter %s: invalid space: %v", ad.Name(), err)
		}
		if ad.Space().GridSize() <= 1 {
			t.Errorf("adapter %s: degenerate space", ad.Name())
		}
	}
	// The acceptance-criteria space: >= 200 points on 2 axes.
	banks, err := ByName("banks")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := banks.Space().Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 200 || len(banks.Space().Axes) != 2 {
		t.Fatalf("banks space: %d points on %d axes, want >= 200 on 2", len(pts), len(banks.Space().Axes))
	}
}
