package sweep

import (
	"fmt"
	"sync"

	"lpmem/internal/nuca"
	"lpmem/internal/trace"
)

func init() {
	register(nucaAdapter{})
}

// nucaTraceCache holds one interleaved reference trace per core count,
// built on first use. Guarded by a mutex because the executor calls Run
// from concurrent pool workers; the traces themselves are read-only
// after construction, and seeding by core count alone keeps Run a pure
// function of the point.
var nucaTraceCache = struct {
	sync.Mutex
	byCores map[int]*trace.Trace
}{byCores: map[int]*trace.Trace{}}

// nucaReferenceTrace returns the shared-pattern CMP workload for a core
// count: the sharing shape a shared LLC exists for, with enough private
// traffic that banking and capacity still matter.
func nucaReferenceTrace(cores int) (*trace.Trace, error) {
	nucaTraceCache.Lock()
	defer nucaTraceCache.Unlock()
	if tr, ok := nucaTraceCache.byCores[cores]; ok {
		return tr, nil
	}
	tr, err := trace.SynthesizeMultiCore(trace.MultiCoreConfig{
		Seed:            axisRand(1, "nuca", "trace").Int63() + int64(cores),
		Cores:           cores,
		AccessesPerCore: 4000,
		Pattern:         trace.SharingShared,
		PrivateBytes:    16 << 10,
		SharedBytes:     32 << 10,
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: nuca reference trace: %w", err)
	}
	nucaTraceCache.byCores[cores] = tr
	return tr, nil
}

// nucaAdapter sweeps the shared-LLC CMP scenario of E24–E26: core count
// x bank count x compression policy x bank-mapping policy, at a fixed
// 32 KiB aggregate capacity (more banks means smaller banks, not more
// cache). Energy is the full bank+NoC+memory total, latency the summed
// access cycles, and area the data arrays plus the compressed cache's
// extra tags and per-bank (de)compressors.
type nucaAdapter struct{}

func (nucaAdapter) Name() string { return "nuca" }

func (nucaAdapter) Describe() string {
	return "shared CMP LLC: cores x banks x compression x bank mapping (internal/nuca)"
}

func (nucaAdapter) Space() Space {
	return Space{Axes: []Axis{
		{Name: "cores", Kind: IntAxis, Min: 1, Max: 8, Steps: 4, Log: true},
		{Name: "banks", Kind: IntAxis, Min: 1, Max: 16, Steps: 5, Log: true},
		{Name: "compression", Kind: EnumAxis, Values: []string{"none", "diff", "ideal"}},
		{Name: "mapping", Kind: EnumAxis, Values: []string{"static", "distance"}},
	}}
}

// nucaTotalSets fixes the aggregate geometry: 256 sets x 4 ways x 32 B
// lines = 32 KiB regardless of banking.
const nucaTotalSets = 256

// nucaCompressorArea is the per-bank silicon cost proxy of the
// (de)compression units on a compressed point.
const nucaCompressorArea = 256.0

func (a nucaAdapter) Run(p Point) (Metrics, error) {
	cores := p.Int("cores")
	banks := p.Int("banks")
	tr, err := nucaReferenceTrace(cores)
	if err != nil {
		return Metrics{}, err
	}
	setsPerBank := nucaTotalSets / banks
	if setsPerBank < 1 {
		setsPerBank = 1
	}
	cfg := nuca.Config{
		Cores:       cores,
		Banks:       banks,
		SetsPerBank: setsPerBank,
		Ways:        4,
		LineSize:    32,
		Mapping:     nuca.MappingPolicy(p.Enum("mapping")),
		Compression: nuca.CompressionPolicy(p.Enum("compression")),
	}
	llc, err := nuca.New(cfg)
	if err != nil {
		return Metrics{}, err
	}
	st := llc.Replay(tr)

	// Area: data arrays, plus tags (4 B per tag entry; the compressed
	// cache carries TagFactor x as many), plus compressor units.
	dcfg := llc.Config() // defaulted: TagFactor resolved
	tagEntries := dcfg.Banks * dcfg.SetsPerBank * dcfg.Ways
	if dcfg.Compression != nuca.CompNone {
		tagEntries *= dcfg.TagFactor
	}
	area := float64(dcfg.CapacityBytes()) + 4*float64(tagEntries)
	if dcfg.Compression != nuca.CompNone {
		area += nucaCompressorArea * float64(dcfg.Banks)
	}
	return Metrics{
		EnergyPJ: float64(st.TotalEnergy()),
		Latency:  float64(st.Latency),
		Area:     area,
	}, nil
}
