package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func storeRecord(i int) Record {
	p := Point{"i": IntValue(i)}
	return RecordFor("test", p, Metrics{EnergyPJ: float64(i), Latency: 1, Area: 2})
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(storeRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("reloaded store has %d records, want 5", s2.Len())
	}
	if s2.Skipped() != 0 {
		t.Fatalf("healthy store skipped %d lines", s2.Skipped())
	}
	want := storeRecord(3)
	got, ok := s2.Get(want.Key)
	if !ok {
		t.Fatalf("record %s missing after reload", want.Key)
	}
	if got.Metrics != want.Metrics || got.Adapter != "test" || got.Point["i"] != "3" {
		t.Fatalf("reloaded record mismatch: %+v", got)
	}
}

func TestStoreToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(storeRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-write: truncate the last line in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimRight(string(data), "\n")
	cut := strings.LastIndexByte(trimmed, '\n') + 1 + 10 // 10 bytes into the last record
	if err := os.WriteFile(path, []byte(trimmed[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("torn store refused to load: %v", err)
	}
	if s2.Len() != 2 {
		t.Fatalf("torn store has %d records, want the 2 intact ones", s2.Len())
	}
	if s2.Skipped() != 1 {
		t.Fatalf("torn store skipped %d lines, want 1", s2.Skipped())
	}

	// Appending after a torn tail must start on a fresh line, and the
	// re-put of the torn record must survive the next reload.
	if err := s2.Put(storeRecord(2)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(storeRecord(3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	// The torn half-line stays in the file as one permanently skipped
	// line; every intact record (including the re-put of the torn one)
	// survives.
	if s3.Len() != 4 || s3.Skipped() != 1 {
		t.Fatalf("recovered store: len=%d skipped=%d, want 4/1", s3.Len(), s3.Skipped())
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(storeRecord(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(storeRecord(0).Key); !ok {
		t.Fatal("memory-only store lost a record")
	}
	if s.Path() != "" {
		t.Fatalf("memory-only store has path %q", s.Path())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRejectsEmptyKey(t *testing.T) {
	s, _ := OpenStore("")
	if err := s.Put(Record{}); err == nil {
		t.Fatal("Put accepted a record with no key")
	}
}
