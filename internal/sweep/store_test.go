package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func storeRecord(i int) Record {
	p := Point{"i": IntValue(i)}
	return RecordFor("test", p, Metrics{EnergyPJ: float64(i), Latency: 1, Area: 2})
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(storeRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("reloaded store has %d records, want 5", s2.Len())
	}
	if s2.Skipped() != 0 {
		t.Fatalf("healthy store skipped %d lines", s2.Skipped())
	}
	want := storeRecord(3)
	got, ok := s2.Get(want.Key)
	if !ok {
		t.Fatalf("record %s missing after reload", want.Key)
	}
	if got.Metrics != want.Metrics || got.Adapter != "test" || got.Point["i"] != "3" {
		t.Fatalf("reloaded record mismatch: %+v", got)
	}
}

func TestStoreToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(storeRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-write: truncate the last line in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimRight(string(data), "\n")
	cut := strings.LastIndexByte(trimmed, '\n') + 1 + 10 // 10 bytes into the last record
	if err := os.WriteFile(path, []byte(trimmed[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("torn store refused to load: %v", err)
	}
	if s2.Len() != 2 {
		t.Fatalf("torn store has %d records, want the 2 intact ones", s2.Len())
	}
	// The torn tail is not yet counted as skipped: under the multi-writer
	// contract an incomplete final line could be a peer mid-append, so it
	// stays pending until an append buries it.
	if s2.Skipped() != 0 {
		t.Fatalf("torn store skipped %d lines at load, want 0 (tail pending)", s2.Skipped())
	}

	// Appending after a torn tail must start on a fresh line, and the
	// re-put of the torn record must survive the next reload.
	if err := s2.Put(storeRecord(2)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(storeRecord(3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	// The torn half-line stays in the file as one permanently skipped
	// line; every intact record (including the re-put of the torn one)
	// survives.
	if s3.Len() != 4 || s3.Skipped() != 1 {
		t.Fatalf("recovered store: len=%d skipped=%d, want 4/1", s3.Len(), s3.Skipped())
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(storeRecord(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(storeRecord(0).Key); !ok {
		t.Fatal("memory-only store lost a record")
	}
	if s.Path() != "" {
		t.Fatalf("memory-only store has path %q", s.Path())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRejectsEmptyKey(t *testing.T) {
	s, _ := OpenStore("")
	if err := s.Put(Record{}); err == nil {
		t.Fatal("Put accepted a record with no key")
	}
}

// TestStoreTwoConcurrentWriters drives two independent Store handles on
// one file — the shape of two lpmemd replicas resuming the same sweep —
// and asserts the merge loses nothing and duplicates nothing: every
// record put by either writer is present exactly once after reload, and
// no line was torn by the interleaved appends.
func TestStoreTwoConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	a, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}

	// Writer A takes the evens, writer B the odds, and both race over a
	// shared middle band — the overlap a real resume race produces when
	// two replicas evaluate the same pending points.
	const n = 200
	var wg sync.WaitGroup
	put := func(s *Store, start, stride int) {
		defer wg.Done()
		for i := start; i < n; i += stride {
			if err := s.Put(storeRecord(i)); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 80; i < 120; i++ { // shared band, written by both
			if err := s.Put(storeRecord(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}
	wg.Add(2)
	go put(a, 0, 2)
	go put(b, 1, 2)
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Skipped() != 0 {
		t.Fatalf("concurrent appends tore %d lines", merged.Skipped())
	}
	if merged.Len() != n {
		t.Fatalf("merged store has %d records, want %d", merged.Len(), n)
	}
	for i := 0; i < n; i++ {
		want := storeRecord(i)
		got, ok := merged.Get(want.Key)
		if !ok {
			t.Fatalf("record %d lost in merge", i)
		}
		if got.Metrics != want.Metrics {
			t.Fatalf("record %d corrupted: %+v", i, got)
		}
	}
	// Deduplication happens at load: the map holds each key once even
	// though the shared band was appended twice.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, ln := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if len(ln) > 0 {
			lines++
		}
	}
	if want := n + 2*40; lines != want {
		t.Fatalf("file holds %d lines, want %d whole appended lines", lines, want)
	}
}

// TestStoreRefreshSeesPeerAppends covers the cross-replica read path the
// executor uses: records a peer handle appends become visible to an
// already-open store after Refresh, without reopening.
func TestStoreRefreshSeesPeerAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	a, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Put(storeRecord(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(storeRecord(1).Key); ok {
		t.Fatal("peer record visible before Refresh")
	}
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(storeRecord(1).Key)
	if !ok {
		t.Fatal("peer record invisible after Refresh")
	}
	if got.Metrics != storeRecord(1).Metrics {
		t.Fatalf("peer record corrupted: %+v", got)
	}
	// Refresh with nothing new is a no-op, not an error.
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
}
