package sweep

import (
	"fmt"
	"sync"

	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/memtech"
	"lpmem/internal/trace"
)

func init() {
	register(memtechAdapter{})
}

// memtechNodes maps the technology axis labels to process nodes in µm.
// Enum labels (not a float axis) keep the grid on the three calibrated
// ITRS nodes instead of meaningless geometric intermediates.
var memtechNodes = map[string]float64{
	"180": 0.18,
	"90":  0.09,
	"65":  0.065,
}

// memtechRef is the precomputed, read-only evaluation context every
// memtech point shares: the reference workload's on-chip access mix, the
// L1 miss traffic its banked DRAM serves, and the idle-interval trace
// the gating policies are priced over.
var memtechRef = sync.OnceValues(func() (*memtechWorkload, error) {
	ref, err := referenceTrace()
	if err != nil {
		return nil, err
	}
	w := &memtechWorkload{cycles: ref.cycles}
	for _, a := range ref.data.Accesses {
		switch a.Kind {
		case trace.Read:
			w.reads++
		case trace.Write:
			w.writes++
		}
	}
	// The DRAM behind the SRAM serves line-granular miss traffic of a
	// fixed L1 geometry (the same organization E23 prices), so the banks
	// axis sees realistic row-locality, not raw word accesses.
	c, err := cache.New(cache.Config{
		Sets: 64, Ways: 4, LineSize: 32, WriteBack: true, WriteAllocate: true,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("sweep: memtech reference cache: %w", err)
	}
	w.miss = trace.New(4096)
	c.OnRefill = func(addr uint32, data []byte) {
		w.miss.Append(trace.Access{Addr: addr, Width: uint8(len(data)), Kind: trace.Read})
	}
	c.OnWriteBack = func(addr uint32, data []byte) {
		w.miss.Append(trace.Access{Addr: addr, Width: uint8(len(data)), Kind: trace.Write})
	}
	c.Replay(ref.data)
	// Idle intervals for the gating machine: exponential gaps (mean 400
	// cycles, around the lstp break-even scale) drawn until they tile the
	// run, from an order-independent seeded source.
	r := axisRand(1, "memtech", "idle")
	var total uint64
	for total < ref.cycles {
		t := 1 + uint64(r.ExpFloat64()*400)
		w.idle = append(w.idle, t)
		total += t
	}
	return w, nil
})

type memtechWorkload struct {
	reads, writes uint64
	cycles        uint64
	miss          *trace.Trace
	idle          []uint64
}

// memtechAdapter sweeps the technology layer of E21–E23: process node x
// SRAM cell type x power-gating mode x DRAM bank count, for a fixed
// memory organization (a 64 KiB on-chip SRAM serving the reference
// workload, a banked DRAM serving its L1 miss traffic). The node and
// cell axes trade dynamic energy against leakage and speed, the gating
// axis buys static power back for wake stalls (oracle policy over the
// shared idle trace), and the banks axis replays E23's row-buffer
// trade-off behind it.
type memtechAdapter struct{}

func (memtechAdapter) Name() string { return "memtech" }

func (memtechAdapter) Describe() string {
	return "memory technology: node x cell type x power gating x DRAM banks (internal/memtech)"
}

func (memtechAdapter) Space() Space {
	return Space{Axes: []Axis{
		{Name: "tech", Kind: EnumAxis, Values: []string{"180", "90", "65"}},
		{Name: "cell", Kind: EnumAxis, Values: []string{"hp", "lop", "lstp"}},
		{Name: "gating", Kind: EnumAxis, Values: []string{"off", "array", "full"}},
		{Name: "banks", Kind: IntAxis, Min: 1, Max: 8, Steps: 4, Log: true},
	}}
}

// memtechSRAMBytes is the fixed on-chip array capacity every point
// prices (the E21 array size).
const memtechSRAMBytes = 64 << 10

// memtechPerfLoss is the CACTI performance-loss budget of the gated
// points (the preset value E22 uses).
const memtechPerfLoss = 0.01

func (a memtechAdapter) Run(p Point) (Metrics, error) {
	w, err := memtechRef()
	if err != nil {
		return Metrics{}, err
	}
	node, ok := memtechNodes[p.Enum("tech")]
	if !ok {
		return Metrics{}, fmt.Errorf("sweep: unknown technology node %q", p.Enum("tech"))
	}
	cell := memtech.CellType(p.Enum("cell"))
	cfg := memtech.Config{
		Technology: node, DataCell: cell, PeripheralCell: cell,
		UCABankCount: 1, PageSize: 1024, BurstLength: 8,
	}
	switch p.Enum("gating") {
	case "off":
	case "array":
		cfg.ArrayPowerGating = true
		cfg.PowerGatingPerformanceLoss = memtechPerfLoss
	case "full":
		cfg = cfg.WithAllGating(memtechPerfLoss)
	default:
		return Metrics{}, fmt.Errorf("sweep: unknown gating mode %q", p.Enum("gating"))
	}
	m, err := memtech.New(energy.DefaultMemoryModel(), cfg)
	if err != nil {
		return Metrics{}, err
	}

	// SRAM side: dynamic energy for the access mix, static energy from
	// the oracle gating policy over the shared idle trace (with gating
	// off the machine is inert and Gated equals the full ungated energy).
	g := m.Gating(memtechSRAMBytes)
	rep := g.OracleGated(w.idle)
	e := float64(m.DynamicEnergy(memtechSRAMBytes, w.reads, w.writes) + rep.Gated)
	latency := float64(w.reads+w.writes)*m.AccessCycles() + float64(rep.WakeStallCycles)
	area := memtechSRAMBytes * m.AreaScale()

	// DRAM side: the banks axis varies the main memory behind the SRAM.
	// Its cells stay lop (the DDR3-shaped preset) — DRAM periphery does
	// not follow the SRAM cell library — but it shares the node.
	dcfg := memtech.Config{
		Technology: node, DataCell: memtech.CellLOP, PeripheralCell: memtech.CellLOP,
		UCABankCount: p.Int("banks"), PageSize: 1024, BurstLength: 8,
	}
	dm, err := memtech.New(energy.DefaultMemoryModel(), dcfg)
	if err != nil {
		return Metrics{}, err
	}
	d, err := memtech.NewDRAM(dm)
	if err != nil {
		return Metrics{}, err
	}
	st := d.Replay(w.miss)
	e += float64(d.Energy(st, w.cycles))
	latency += float64(d.Latency(st))
	// Row buffers are the banked DRAM's on-die SRAM cost.
	area += float64(p.Int("banks")) * float64(dcfg.PageSize)

	return Metrics{EnergyPJ: e, Latency: latency, Area: area}, nil
}
