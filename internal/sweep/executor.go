package sweep

import (
	"context"
	"fmt"
	"time"

	"lpmem/internal/runner"
)

// Outcome is the evaluation of one point: metrics or an error, plus
// whether the result came from the store instead of executing.
type Outcome struct {
	Point   Point
	Metrics Metrics
	Err     error
	Cached  bool
}

// Result is a completed (possibly partially failed) sweep over one
// adapter, outcomes in sorted point order.
type Result struct {
	Adapter  string
	Outcomes []Outcome
	// Total = Evaluated + Cached + Failed. Evaluated counts points
	// executed by this run, Cached points served from the store, Failed
	// points whose evaluation errored (cancelled points fail with the
	// context's error).
	Total, Evaluated, Cached, Failed int
}

// Ok returns the successful outcomes.
func (r *Result) Ok() []Outcome {
	out := make([]Outcome, 0, len(r.Outcomes))
	for _, o := range r.Outcomes {
		if o.Err == nil {
			out = append(out, o)
		}
	}
	return out
}

// Progress is one executor progress report, emitted after every batch.
type Progress struct {
	// Batch/Batches identify the completed shard.
	Batch, Batches int
	// Done counts settled points (cached + evaluated + failed) so far.
	Done, Total int
	// Cached and Failed are running totals.
	Cached, Failed int
}

// Config tunes one executor run.
type Config struct {
	// Workers bounds the runner pool; <= 0 means GOMAXPROCS.
	Workers int
	// BatchSize is the shard width: points are submitted to the pool in
	// batches this large, and the store is flushed and progress reported
	// at every batch boundary. <= 0 means 32.
	BatchSize int
	// Timeout bounds each point evaluation; 0 means none.
	Timeout time.Duration
	// Store, when non-nil, serves already-evaluated points and persists
	// new ones (the resume mechanism). A nil store recomputes everything.
	Store *Store
	// OnProgress, when non-nil, streams per-batch progress.
	OnProgress func(Progress)
	// WrapJob, when non-nil, decorates every point evaluation — the
	// fault-injection harness hooks sweeps here with faultinject.Wrap.
	WrapJob func(key string, run func(ctx context.Context) (Metrics, error)) func(ctx context.Context) (Metrics, error)
}

// Run evaluates the points against the adapter: validates them, sorts
// them into canonical order, serves what the store already holds, shards
// the rest into batches on a bounded runner pool, and persists every
// fresh success back to the store as its batch completes (so a killed or
// cancelled sweep resumes from the last flushed batch).
//
// A point evaluation error does not abort the sweep — it is reported in
// that point's Outcome and the sweep continues (the same degradation
// contract as the experiment batches). Run itself errors only on
// malformed input or a failing store.
func Run(ctx context.Context, ad Adapter, pts []Point, cfg Config) (*Result, error) {
	space := ad.Space()
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}

	// Validate, deduplicate and sort into canonical order.
	sorted := make([]Point, 0, len(pts))
	seen := make(map[string]bool, len(pts))
	for _, p := range pts {
		if err := space.Contains(p); err != nil {
			return nil, err
		}
		c := p.Canonical()
		if seen[c] {
			continue
		}
		seen[c] = true
		sorted = append(sorted, p)
	}
	SortPoints(space.Axes, sorted)

	res := &Result{Adapter: ad.Name(), Total: len(sorted)}
	res.Outcomes = make([]Outcome, len(sorted))

	// Merge what peer replicas appended to a shared store since it was
	// opened, then serve what it holds; collect the rest.
	if cfg.Store != nil {
		if err := cfg.Store.Refresh(); err != nil {
			return nil, err
		}
	}
	var pending []int
	for i, p := range sorted {
		key := Key(ad.Name(), StoreVersion, p)
		if cfg.Store != nil {
			if rec, ok := cfg.Store.Get(key); ok {
				res.Outcomes[i] = Outcome{Point: p, Metrics: rec.Metrics, Cached: true}
				res.Cached++
				continue
			}
		}
		pending = append(pending, i)
	}

	eng := runner.New[Metrics](runner.Options{
		Workers: cfg.Workers,
		Timeout: cfg.Timeout,
		// The store is the cache; the engine's own cache would hide
		// store bookkeeping and double-memoize.
		NoCache: true,
	})

	batches := (len(pending) + cfg.BatchSize - 1) / cfg.BatchSize
	done := res.Cached
	for b := 0; b < batches; b++ {
		lo, hi := b*cfg.BatchSize, (b+1)*cfg.BatchSize
		if hi > len(pending) {
			hi = len(pending)
		}
		batch := pending[lo:hi]

		if err := ctx.Err(); err != nil {
			// Cancelled between batches: report every unstarted point.
			for _, i := range pending[lo:] {
				res.Outcomes[i] = Outcome{Point: sorted[i], Err: err}
				res.Failed++
			}
			done = res.Total
			break
		}

		jobs := make([]runner.Job[Metrics], len(batch))
		for j, i := range batch {
			p := sorted[i]
			key := Key(ad.Name(), StoreVersion, p)
			run := func(ctx context.Context) (Metrics, error) {
				if err := ctx.Err(); err != nil {
					return Metrics{}, err
				}
				return ad.Run(p)
			}
			if cfg.WrapJob != nil {
				run = cfg.WrapJob(key, run)
			}
			jobs[j] = runner.Job[Metrics]{ID: key, Run: run}
		}
		outs := eng.Run(ctx, jobs)

		// Persist the batch's successes before reporting progress, so
		// resume never observes progress the store doesn't back.
		for j, i := range batch {
			o := outs[j]
			res.Outcomes[i] = Outcome{Point: sorted[i], Metrics: o.Value, Err: o.Err}
			if o.Err != nil {
				res.Failed++
				continue
			}
			res.Evaluated++
			if cfg.Store != nil {
				if err := cfg.Store.Put(RecordFor(ad.Name(), sorted[i], o.Value)); err != nil {
					return nil, fmt.Errorf("sweep: persisting batch %d: %w", b+1, err)
				}
			}
		}
		done += len(batch)
		if cfg.OnProgress != nil {
			cfg.OnProgress(Progress{
				Batch: b + 1, Batches: batches,
				Done: done, Total: res.Total,
				Cached: res.Cached, Failed: res.Failed,
			})
		}
	}
	if batches == 0 && cfg.OnProgress != nil {
		cfg.OnProgress(Progress{Batches: 0, Done: done, Total: res.Total, Cached: res.Cached})
	}
	return res, nil
}
