package sweep

import (
	"fmt"

	"lpmem/internal/stats"
)

// Dominates reports whether metrics a Pareto-dominates b over the given
// objectives (all minimised): a is no worse on every objective and
// strictly better on at least one.
func Dominates(a, b Metrics, objectives []string) bool {
	strict := false
	for _, obj := range objectives {
		av, _ := a.Get(obj)
		bv, _ := b.Get(obj)
		if av > bv {
			return false
		}
		if av < bv {
			strict = true
		}
	}
	return strict
}

// Frontier extracts the exact Pareto-optimal subset of the successful
// outcomes over the given objectives, preserving input (sorted point)
// order. The comparison is exhaustive O(n²) — sweeps are thousands of
// points, not millions, and exactness is what the property tests pin:
// every returned point is one of the inputs, and no returned point
// dominates another.
func Frontier(outs []Outcome, objectives []string) []Outcome {
	ok := make([]Outcome, 0, len(outs))
	for _, o := range outs {
		if o.Err == nil {
			ok = append(ok, o)
		}
	}
	var front []Outcome
	for i, a := range ok {
		dominated := false
		for j, b := range ok {
			if i != j && Dominates(b.Metrics, a.Metrics, objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	return front
}

// ResultsTable renders outcomes as a stats.Table: one column per axis in
// declared order, the three objectives, and a status column ("ok",
// "cached" or the error). All sweep serialisation flows through this so
// sweeps ride the same JSON envelope as the experiments.
func ResultsTable(axes []Axis, outs []Outcome) *stats.Table {
	header := make([]string, 0, len(axes)+4)
	for _, a := range axes {
		header = append(header, a.Name)
	}
	header = append(header, "energy_pj", "latency", "area", "status")
	t := stats.NewTable(header...)
	for _, o := range outs {
		row := make([]interface{}, 0, len(header))
		for _, a := range axes {
			row = append(row, o.Point[a.Name].String())
		}
		status := "ok"
		switch {
		case o.Err != nil:
			status = fmt.Sprintf("error: %v", o.Err)
		case o.Cached:
			status = "cached"
		}
		row = append(row, o.Metrics.EnergyPJ, o.Metrics.Latency, o.Metrics.Area, status)
		t.AddRow(row...)
	}
	return t
}

// FrontierTable renders the frontier sorted by the first objective
// (ascending), dropping failed rows. The output is a pure function of
// the outcomes' points and metrics — cached and freshly evaluated runs
// of the same sweep produce byte-identical tables, which is what the
// resume gate in CI diffs.
func FrontierTable(axes []Axis, front []Outcome, objectives []string) (*stats.Table, error) {
	t := ResultsTable(axes, front)
	statusCol := t.NumCols() - 1
	t = t.FilterRows(func(row []string) bool { return row[statusCol] == "ok" || row[statusCol] == "cached" })
	// The status column distinguishes cache hits for humans but would
	// break run-to-run byte identity; the frontier is status-free.
	t, err := t.DropColumn(statusCol)
	if err != nil {
		return nil, fmt.Errorf("sweep: frontier table: %w", err)
	}
	if len(objectives) > 0 {
		col := -1
		for i, h := range t.Header() {
			if h == objectives[0] {
				col = i
				break
			}
		}
		if col >= 0 {
			if err := t.SortBy(col); err != nil {
				return nil, fmt.Errorf("sweep: frontier table: %w", err)
			}
		}
	}
	return t, nil
}

// Sensitivity summarises how much each axis moves each objective: for
// every (axis, objective) pair it averages the objective per axis value
// (marginalising the other axes) and reports the min, max and relative
// spread of those averages. A large spread marks the axis the designer
// should sweep first — the per-axis sensitivity picture the papers'
// methodology sections describe.
func Sensitivity(axes []Axis, outs []Outcome) *stats.Table {
	t := stats.NewTable("axis", "objective", "min(avg)", "max(avg)", "spread%")
	for _, a := range axes {
		// Group successful outcomes by this axis' value, in grid order.
		groups := make(map[string][]Metrics)
		var order []string
		for _, o := range outs {
			if o.Err != nil {
				continue
			}
			v := o.Point[a.Name].String()
			if _, ok := groups[v]; !ok {
				order = append(order, v)
			}
			groups[v] = append(groups[v], o.Metrics)
		}
		if len(order) < 2 {
			continue
		}
		for _, obj := range MetricNames() {
			var means []float64
			for _, v := range order {
				var vals []float64
				for _, m := range groups[v] {
					val, _ := m.Get(obj)
					vals = append(vals, val)
				}
				means = append(means, stats.Mean(vals))
			}
			lo, hi := stats.Min(means), stats.Max(means)
			spread := 0.0
			if hi > 0 {
				spread = 100 * (hi - lo) / hi
			}
			t.AddRow(a.Name, obj, lo, hi, spread)
		}
	}
	return t
}
