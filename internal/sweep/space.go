//lint:untrusted-input

// Package sweep is the design-space exploration engine: every abstract in
// the DATE'03 low-power track is the output of a parameter sweep — the
// authors varied bank counts, cache geometries and bus encodings and
// reported the best point — and this package turns the repository's fixed
// experiment registry into that exploration tool.
//
// The pieces mirror the methodology of the papers:
//
//   - Space/Axis describe the design space: named int/float/enum axes with
//     linear or logarithmic spacing, plus Constraint filters that remove
//     illegal points (e.g. caches larger than the die budget).
//   - Adapter exposes a sweepable substrate (bank partitioning, cache
//     geometry, bus encoding, a two-level hierarchy) as Run(point) →
//     Metrics, where Metrics carries the energy/latency/area triple every
//     DATE'03 trade-off is plotted in.
//   - Executor shards the point set into batches on the bounded runner
//     pool and records every result in an append-only JSON-lines Store
//     keyed by a content hash of the point, so a re-run — or a sweep
//     killed halfway — resumes incrementally instead of recomputing.
//   - Frontier/Sensitivity extract the exact Pareto-optimal subset and a
//     per-axis spread summary, rendered through stats.Table so sweeps
//     serialise through the same JSON envelope as the experiments.
//
// Everything is deterministic: sampling is seed-derived, points are
// enumerated and reported in sorted order, and no wall-clock value enters
// a result — the lpmemlint determinism analyzer and the golden-file
// harness apply to sweeps exactly as they do to the registry.
package sweep

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// AxisKind discriminates the three axis value domains.
type AxisKind int

// Axis kinds: integer ranges, real ranges, and enumerated categories.
const (
	IntAxis AxisKind = iota
	FloatAxis
	EnumAxis
)

// String names the kind for tables and JSON.
func (k AxisKind) String() string {
	switch k {
	case IntAxis:
		return "int"
	case FloatAxis:
		return "float"
	case EnumAxis:
		return "enum"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Axis is one named dimension of a design space.
type Axis struct {
	// Name identifies the axis in points, tables and constraints.
	Name string
	// Kind selects the value domain.
	Kind AxisKind
	// Min and Max bound numeric axes (inclusive).
	Min, Max float64
	// Steps is the grid resolution of a numeric axis: the number of
	// samples placed across [Min, Max]. For IntAxis, 0 means every
	// integer in the range; sampled values are rounded to integers and
	// deduplicated. FloatAxis requires Steps >= 1.
	Steps int
	// Log spaces numeric samples geometrically instead of linearly
	// (bank sizes, set counts and line sizes are power-of-two shaped).
	// Requires Min > 0.
	Log bool
	// Values enumerates an EnumAxis, in canonical (reported) order.
	Values []string
}

// validate checks the axis definition.
func (a Axis) validate() error {
	if a.Name == "" {
		return fmt.Errorf("sweep: axis with empty name")
	}
	switch a.Kind {
	case EnumAxis:
		if len(a.Values) == 0 {
			return fmt.Errorf("sweep: enum axis %q has no values", a.Name)
		}
		seen := make(map[string]bool, len(a.Values))
		for _, v := range a.Values {
			if seen[v] {
				return fmt.Errorf("sweep: enum axis %q repeats value %q", a.Name, v)
			}
			seen[v] = true
		}
	case IntAxis, FloatAxis:
		if a.Max < a.Min {
			return fmt.Errorf("sweep: axis %q has max %g < min %g", a.Name, a.Max, a.Min)
		}
		if a.Log && a.Min <= 0 {
			return fmt.Errorf("sweep: log axis %q needs min > 0, got %g", a.Name, a.Min)
		}
		if a.Kind == FloatAxis && a.Steps < 1 {
			return fmt.Errorf("sweep: float axis %q needs steps >= 1", a.Name)
		}
	default:
		return fmt.Errorf("sweep: axis %q has unknown kind %d", a.Name, int(a.Kind))
	}
	return nil
}

// gridValues enumerates the axis' grid samples in ascending (enum:
// declared) order.
func (a Axis) gridValues() []Value {
	switch a.Kind {
	case EnumAxis:
		out := make([]Value, len(a.Values))
		for i, v := range a.Values {
			out[i] = EnumValue(v)
		}
		return out
	case IntAxis:
		if a.Steps <= 0 {
			lo, hi := int(math.Ceil(a.Min)), int(math.Floor(a.Max))
			//lint:allow boundedbuf axis geometry is compiled-in adapter config, not request input
			out := make([]Value, 0, hi-lo+1)
			for v := lo; v <= hi; v++ {
				out = append(out, IntValue(v))
			}
			return out
		}
		var out []Value
		last := math.Inf(-1)
		for i := 0; i < a.Steps; i++ {
			v := math.Round(a.at(fraction(i, a.Steps)))
			//lint:allow floatcompare both sides are math.Round outputs; exact compare deduplicates identical grid samples
			if v != last {
				out = append(out, IntValue(int(v)))
				last = v
			}
		}
		return out
	default: // FloatAxis
		//lint:allow boundedbuf axis geometry is compiled-in adapter config, not request input
		out := make([]Value, a.Steps)
		for i := 0; i < a.Steps; i++ {
			out[i] = FloatValue(a.at(fraction(i, a.Steps)))
		}
		return out
	}
}

// fraction maps sample i of n onto [0,1], hitting both endpoints.
func fraction(i, n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(i) / float64(n-1)
}

// at maps u in [0,1] onto the numeric range, linearly or geometrically.
func (a Axis) at(u float64) float64 {
	if a.Log {
		return math.Exp(math.Log(a.Min) + u*(math.Log(a.Max)-math.Log(a.Min)))
	}
	return a.Min + u*(a.Max-a.Min)
}

// value snaps u in [0,1) to an axis value (Latin-hypercube sampling).
func (a Axis) value(u float64) Value {
	switch a.Kind {
	case EnumAxis:
		i := int(u * float64(len(a.Values)))
		if i >= len(a.Values) {
			i = len(a.Values) - 1
		}
		return EnumValue(a.Values[i])
	case IntAxis:
		// A stepped int axis is a discrete grid (typically powers of
		// two); samples snap to its values so substrate validity (e.g.
		// power-of-two set counts) is preserved under sampling.
		if a.Steps > 0 {
			vals := a.gridValues()
			i := int(u * float64(len(vals)))
			if i >= len(vals) {
				i = len(vals) - 1
			}
			return vals[i]
		}
		v := int(math.Round(a.at(u)))
		if float64(v) < a.Min {
			v = int(math.Ceil(a.Min))
		}
		if float64(v) > a.Max {
			v = int(math.Floor(a.Max))
		}
		return IntValue(v)
	default:
		return FloatValue(a.at(u))
	}
}

// Value is one coordinate of a point: a number or an enum label.
type Value struct {
	num  float64
	str  string
	enum bool
}

// IntValue makes an integer coordinate.
func IntValue(v int) Value { return Value{num: float64(v)} }

// FloatValue makes a real coordinate.
func FloatValue(v float64) Value { return Value{num: v} }

// EnumValue makes a categorical coordinate.
func EnumValue(v string) Value { return Value{str: v, enum: true} }

// IsEnum reports whether the coordinate is categorical.
func (v Value) IsEnum() bool { return v.enum }

// Float returns the numeric coordinate (0 for enums).
func (v Value) Float() float64 { return v.num }

// Int returns the numeric coordinate rounded to an integer.
func (v Value) Int() int { return int(math.Round(v.num)) }

// String returns the canonical text form: the enum label, or the
// shortest exact decimal of the number. This form is what point hashes,
// store records and tables are built from, so it must stay stable.
func (v Value) String() string {
	if v.enum {
		return v.str
	}
	return strconv.FormatFloat(v.num, 'g', -1, 64)
}

// ParseValue reconstructs a Value from its canonical text form under the
// given axis (store records round-trip through this).
func ParseValue(a Axis, s string) (Value, error) {
	if a.Kind == EnumAxis {
		for _, v := range a.Values {
			if v == s {
				return EnumValue(s), nil
			}
		}
		return Value{}, fmt.Errorf("sweep: %q is not a value of enum axis %q", s, a.Name)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return Value{}, fmt.Errorf("sweep: axis %q: bad numeric value %q: %w", a.Name, s, err)
	}
	return Value{num: f}, nil
}

// Point is one design-space coordinate assignment, keyed by axis name.
type Point map[string]Value

// Int returns the named coordinate as an integer (0 when absent; the
// executor validates points against the adapter's space before running,
// so adapters may use the plain accessors).
func (p Point) Int(name string) int { return p[name].Int() }

// Float returns the named coordinate as a float (0 when absent).
func (p Point) Float(name string) float64 { return p[name].Float() }

// Enum returns the named categorical coordinate ("" when absent).
func (p Point) Enum(name string) string {
	v := p[name]
	if !v.enum {
		return ""
	}
	return v.str
}

// Clone returns an independent copy of the point.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Canonical renders the point as "axis=value|..." with axes sorted by
// name — the stable identity that point hashes are computed over.
func (p Point) Canonical() string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(p[n].String())
	}
	return b.String()
}

// Key content-addresses the point for the result store: the adapter name
// and version pin the code that produced the metrics (same spirit as the
// engine's CacheKey), and the FNV-64a of the canonical form identifies
// the coordinates.
func Key(adapter, version string, p Point) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s@%s|%s", adapter, version, p.Canonical())
	return fmt.Sprintf("%s@%s:%016x", adapter, version, h.Sum64())
}

// Constraint removes illegal points from a space. Allow reports whether
// the point is legal; Name documents the rule in listings.
type Constraint struct {
	Name  string
	Allow func(Point) bool
}

// Space is a named set of axes plus the constraints that carve out the
// legal region.
type Space struct {
	Axes        []Axis
	Constraints []Constraint
}

// Validate checks every axis and constraint definition.
func (s Space) Validate() error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep: space has no axes")
	}
	seen := make(map[string]bool, len(s.Axes))
	for _, a := range s.Axes {
		if err := a.validate(); err != nil {
			return err
		}
		if seen[a.Name] {
			return fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, c := range s.Constraints {
		if c.Allow == nil {
			return fmt.Errorf("sweep: constraint %q has no Allow func", c.Name)
		}
	}
	return nil
}

// Axis returns the named axis.
func (s Space) Axis(name string) (Axis, bool) {
	for _, a := range s.Axes {
		if a.Name == name {
			return a, true
		}
	}
	return Axis{}, false
}

// Contains checks that the point assigns exactly the space's axes with
// in-domain values and satisfies every constraint.
func (s Space) Contains(p Point) error {
	if len(p) != len(s.Axes) {
		return fmt.Errorf("sweep: point %q assigns %d axes, space has %d", p.Canonical(), len(p), len(s.Axes))
	}
	for _, a := range s.Axes {
		v, ok := p[a.Name]
		if !ok {
			return fmt.Errorf("sweep: point %q misses axis %q", p.Canonical(), a.Name)
		}
		switch a.Kind {
		case EnumAxis:
			if _, err := ParseValue(a, v.String()); err != nil {
				return err
			}
		default:
			if v.enum {
				return fmt.Errorf("sweep: axis %q: enum value %q on numeric axis", a.Name, v.str)
			}
			if v.num < a.Min || v.num > a.Max {
				return fmt.Errorf("sweep: axis %q: value %g outside [%g,%g]", a.Name, v.num, a.Min, a.Max)
			}
		}
	}
	if !s.allowed(p) {
		return fmt.Errorf("sweep: point %q violates a space constraint", p.Canonical())
	}
	return nil
}

// allowed applies every constraint.
func (s Space) allowed(p Point) bool {
	for _, c := range s.Constraints {
		if !c.Allow(p) {
			return false
		}
	}
	return true
}

// GridSize returns the raw cartesian grid cardinality, before
// constraints.
func (s Space) GridSize() int {
	n := 1
	for _, a := range s.Axes {
		n *= len(a.gridValues())
	}
	return n
}

// Grid enumerates the full cartesian grid in sorted point order (axes in
// declared order, values ascending), with constrained points removed.
func (s Space) Grid() ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	values := make([][]Value, len(s.Axes))
	for i, a := range s.Axes {
		values[i] = a.gridValues()
	}
	var out []Point
	idx := make([]int, len(s.Axes))
	for {
		p := make(Point, len(s.Axes))
		for i, a := range s.Axes {
			p[a.Name] = values[i][idx[i]]
		}
		if s.allowed(p) {
			out = append(out, p)
		}
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(values[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

// Sample draws up to n points by Latin-hypercube sampling: each axis is
// cut into n strata, a seeded permutation pairs strata across axes, and
// one point is placed per stratum tuple. Every decision derives from
// (seed, axis name, stratum), never from map order or scheduling, so a
// fixed seed reproduces the point set exactly. Constrained and duplicate
// points (integer/enum snapping collapses strata) are dropped, so fewer
// than n points may return.
func (s Space) Sample(n int, seed int64) ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("sweep: sample size %d must be positive", n)
	}
	perms := make([][]int, len(s.Axes))
	jitter := make([]*rand.Rand, len(s.Axes))
	for i, a := range s.Axes {
		perms[i] = axisRand(seed, a.Name, "perm").Perm(n)
		jitter[i] = axisRand(seed, a.Name, "jitter")
	}
	// Clamp the capacity hint: n is caller-supplied (ultimately a request
	// field behind /sweep), and a hint must not become the allocation.
	seen := make(map[string]bool, min(n, 4096))
	var out []Point
	for k := 0; k < n; k++ {
		p := make(Point, len(s.Axes))
		for i, a := range s.Axes {
			u := (float64(perms[i][k]) + jitter[i].Float64()) / float64(n)
			p[a.Name] = a.value(u)
		}
		c := p.Canonical()
		if seen[c] || !s.allowed(p) {
			continue
		}
		seen[c] = true
		out = append(out, p)
	}
	SortPoints(s.Axes, out)
	return out, nil
}

// axisRand derives a PRNG from (seed, axis, role) so sampling decisions
// are independent of evaluation order — the same construction the fault
// injector uses for placement.
func axisRand(seed int64, axis, role string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, axis, role)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// SortPoints orders points by axis value in declared axis order: numeric
// axes numerically, enum axes by declaration index. The executor and
// every report iterate points in this order, which is what makes sweep
// output byte-reproducible.
func SortPoints(axes []Axis, pts []Point) {
	rank := make(map[string]map[string]int, len(axes))
	for _, a := range axes {
		if a.Kind == EnumAxis {
			m := make(map[string]int, len(a.Values))
			for i, v := range a.Values {
				m[v] = i
			}
			rank[a.Name] = m
		}
	}
	sort.SliceStable(pts, func(i, j int) bool {
		for _, a := range axes {
			vi, vj := pts[i][a.Name], pts[j][a.Name]
			if a.Kind == EnumAxis {
				ri, rj := rank[a.Name][vi.str], rank[a.Name][vj.str]
				if ri != rj {
					return ri < rj
				}
				continue
			}
			//lint:allow floatcompare tie-break on the next axis requires exact equality; both values come from the same enumeration
			if vi.num != vj.num {
				return vi.num < vj.num
			}
		}
		return false
	})
}
