package sweep

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"testing"
)

// propRand derives a seeded PRNG for one property-test case so the suite
// is reproducible run to run.
func propRand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "pareto-prop|%s", label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// randomOutcomes builds n successful outcomes with randomized metrics,
// including deliberate ties and duplicates to stress the dominance edge
// cases.
func randomOutcomes(r *rand.Rand, n int) []Outcome {
	outs := make([]Outcome, n)
	for i := range outs {
		m := Metrics{
			EnergyPJ: float64(r.Intn(20)),
			Latency:  float64(r.Intn(20)),
			Area:     float64(r.Intn(20)),
		}
		outs[i] = Outcome{Point: Point{"i": IntValue(i)}, Metrics: m}
	}
	return outs
}

// TestFrontierProperties is the satellite property test: for randomized
// metric sets the frontier must be (a) a subset of the evaluated points,
// (b) mutually non-dominated, and (c) complete — every excluded point is
// dominated by some frontier point.
func TestFrontierProperties(t *testing.T) {
	objSets := [][]string{
		{"energy_pj", "latency", "area"},
		{"energy_pj", "latency"},
		{"energy_pj"},
	}
	for trial := 0; trial < 50; trial++ {
		r := propRand(fmt.Sprintf("trial-%d", trial))
		outs := randomOutcomes(r, 1+r.Intn(80))
		objs := objSets[trial%len(objSets)]
		front := Frontier(outs, objs)

		if len(front) == 0 {
			t.Fatalf("trial %d: empty frontier from %d points", trial, len(outs))
		}

		// (a) Subset: every frontier entry is one of the inputs, at most once.
		byIdx := map[int]Metrics{}
		for _, o := range outs {
			byIdx[o.Point.Int("i")] = o.Metrics
		}
		seen := map[int]bool{}
		for _, f := range front {
			i := f.Point.Int("i")
			m, ok := byIdx[i]
			if !ok {
				t.Fatalf("trial %d: frontier point %d is not an input", trial, i)
			}
			if m != f.Metrics {
				t.Fatalf("trial %d: frontier point %d has altered metrics", trial, i)
			}
			if seen[i] {
				t.Fatalf("trial %d: frontier repeats point %d", trial, i)
			}
			seen[i] = true
		}

		// (b) Mutual non-domination.
		for i, a := range front {
			for j, b := range front {
				if i != j && Dominates(a.Metrics, b.Metrics, objs) {
					t.Fatalf("trial %d: frontier point %d dominates frontier point %d over %v",
						trial, a.Point.Int("i"), b.Point.Int("i"), objs)
				}
			}
		}

		// (c) Completeness: everything excluded is dominated by a member.
		for _, o := range outs {
			if seen[o.Point.Int("i")] {
				continue
			}
			dominated := false
			for _, f := range front {
				if Dominates(f.Metrics, o.Metrics, objs) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("trial %d: point %d excluded but undominated over %v",
					trial, o.Point.Int("i"), objs)
			}
		}
	}
}

func TestFrontierSkipsFailures(t *testing.T) {
	outs := []Outcome{
		{Point: Point{"i": IntValue(0)}, Metrics: Metrics{EnergyPJ: 100, Latency: 100, Area: 100}},
		{Point: Point{"i": IntValue(1)}, Err: fmt.Errorf("boom"), Metrics: Metrics{}}, // zero metrics would dominate everything
	}
	front := Frontier(outs, MetricNames())
	if len(front) != 1 || front[0].Point.Int("i") != 0 {
		t.Fatalf("frontier included a failed outcome: %+v", front)
	}
}

func TestDominates(t *testing.T) {
	a := Metrics{EnergyPJ: 1, Latency: 2, Area: 3}
	b := Metrics{EnergyPJ: 2, Latency: 2, Area: 3}
	objs := MetricNames()
	if !Dominates(a, b, objs) {
		t.Fatal("a should dominate b (better energy, equal otherwise)")
	}
	if Dominates(b, a, objs) {
		t.Fatal("b must not dominate a")
	}
	if Dominates(a, a, objs) {
		t.Fatal("equal metrics must not dominate (no strict improvement)")
	}
	// Trade-off: incomparable in both directions.
	c := Metrics{EnergyPJ: 0.5, Latency: 5, Area: 3}
	if Dominates(a, c, objs) || Dominates(c, a, objs) {
		t.Fatal("trade-off points must be incomparable")
	}
}

func TestFrontierTableByteIdenticalForCached(t *testing.T) {
	axes := []Axis{{Name: "i", Kind: IntAxis, Min: 0, Max: 9}}
	r := propRand("cached-identity")
	fresh := randomOutcomes(r, 10)
	cached := make([]Outcome, len(fresh))
	for i, o := range fresh {
		o.Cached = true
		cached[i] = o
	}
	objs := MetricNames()
	ft1, err := FrontierTable(axes, Frontier(fresh, objs), objs)
	if err != nil {
		t.Fatal(err)
	}
	ft2, err := FrontierTable(axes, Frontier(cached, objs), objs)
	if err != nil {
		t.Fatal(err)
	}
	if ft1.String() != ft2.String() {
		t.Fatalf("frontier table differs between fresh and cached runs:\n%s\nvs\n%s", ft1, ft2)
	}
}

func TestSensitivityShape(t *testing.T) {
	axes := []Axis{
		{Name: "x", Kind: IntAxis, Min: 1, Max: 2},
		{Name: "y", Kind: IntAxis, Min: 1, Max: 2},
	}
	var outs []Outcome
	for x := 1; x <= 2; x++ {
		for y := 1; y <= 2; y++ {
			outs = append(outs, Outcome{
				Point: Point{"x": IntValue(x), "y": IntValue(y)},
				// Energy depends only on x; latency only on y.
				Metrics: Metrics{EnergyPJ: float64(10 * x), Latency: float64(100 * y), Area: 1},
			})
		}
	}
	tbl := Sensitivity(axes, outs)
	if tbl.NumRows() != 2*len(MetricNames()) {
		t.Fatalf("sensitivity has %d rows, want %d", tbl.NumRows(), 2*len(MetricNames()))
	}
	// x's energy spread should be 50% (avg 10 vs 20); y's energy spread 0.
	spread := map[string]string{}
	for _, row := range tbl.ToRows() {
		spread[row[0]+"/"+row[1]] = row[4]
	}
	if spread["x/energy_pj"] == spread["y/energy_pj"] {
		t.Fatalf("sensitivity cannot tell x (drives energy) from y (does not): %v", spread)
	}
	if v, err := strconv.ParseFloat(spread["y/energy_pj"], 64); err != nil || v != 0 {
		t.Fatalf("y does not move energy but spread is %q", spread["y/energy_pj"])
	}
}
