package sweep

import (
	"fmt"
	"math/bits"
	"sync"

	"lpmem/internal/buscode"
	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/partition"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// The adapters evaluate every point against one shared reference
// workload: the data accesses of a fixed multi-kernel application
// (seed 1), merged exactly like the E8 composite apps. Building it costs
// a few interpreter runs, so it is computed once and shared; the trace is
// read-only after construction.
var referenceTrace = sync.OnceValues(func() (*refWorkload, error) {
	kernels := []string{"fir", "dct", "adpcm", "crc32"}
	merged := trace.New(1 << 16)
	var cycles uint64
	for _, name := range kernels {
		k, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		res, err := workloads.Run(k.Build(1))
		if err != nil {
			return nil, fmt.Errorf("sweep: reference workload %s: %w", name, err)
		}
		for _, a := range res.Trace.Accesses {
			merged.Append(a)
		}
		cycles += res.Cycles
	}
	return &refWorkload{data: merged.Data(), cycles: cycles}, nil
})

type refWorkload struct {
	data   *trace.Trace
	cycles uint64
}

// mainMemoryBytes sizes the flat backing store the cache adapters charge
// refills against (a 1 MiB off-chip-class SRAM in the energy model).
const mainMemoryBytes = 1 << 20

func init() {
	register(banksAdapter{})
	register(cacheAdapter{})
	register(busAdapter{})
	register(memhierAdapter{})
}

// banksAdapter sweeps the multi-bank partitioning substrate of E1
// (DATE'03 1B.1): the bank budget and the partition block granularity.
// Energy comes from the exact DP optimizer; the latency proxy charges
// every access the decoder depth the bank budget was provisioned for;
// area is the physical (power-of-two-rounded) SRAM actually allocated.
type banksAdapter struct{}

func (banksAdapter) Name() string { return "banks" }

func (banksAdapter) Describe() string {
	return "memory bank partitioning: bank budget x block granularity (internal/partition)"
}

func (banksAdapter) Space() Space {
	return Space{Axes: []Axis{
		{Name: "banks", Kind: IntAxis, Min: 1, Max: 32},
		{Name: "block", Kind: IntAxis, Min: 16, Max: 1024, Steps: 7, Log: true},
	}}
}

func (a banksAdapter) Run(p Point) (Metrics, error) {
	ref, err := referenceTrace()
	if err != nil {
		return Metrics{}, err
	}
	banks := p.Int("banks")
	block := uint32(p.Int("block"))
	spec, _, err := partition.SpecFromTrace(ref.data, block, ref.cycles)
	if err != nil {
		return Metrics{}, err
	}
	part, e, err := partition.Optimal(spec, banks, energy.DefaultMemoryModel())
	if err != nil {
		return Metrics{}, err
	}
	var area float64
	for _, b := range part.Banks {
		area += float64(b.SizeBytes)
	}
	// Provisioned decoder depth: each extra level of bank select adds a
	// fraction of a cycle to every access, whether or not the optimizer
	// used the full budget — the hardware is built for the budget.
	decode := float64(bits.Len(uint(banks - 1)))
	latency := float64(spec.TotalAccesses()) * (1 + 0.15*decode)
	return Metrics{EnergyPJ: float64(e), Latency: latency, Area: area}, nil
}

// cacheAdapter sweeps the cache geometry of E19 (DATE'03 8A.1): set
// count, associativity and line size, under a 64 KiB capacity
// constraint. Energy charges every access a parallel probe of all ways
// and every refill/write-back a per-word transfer against the main
// memory model; latency is an average-memory-access-time proxy; area is
// the data capacity.
type cacheAdapter struct{}

func (cacheAdapter) Name() string { return "cache" }

func (cacheAdapter) Describe() string {
	return "cache geometry: sets x ways x line size under a 64 KiB cap (internal/cache)"
}

func (cacheAdapter) Space() Space {
	return Space{
		Axes: []Axis{
			{Name: "sets", Kind: IntAxis, Min: 16, Max: 512, Steps: 6, Log: true},
			{Name: "ways", Kind: IntAxis, Min: 1, Max: 8, Steps: 4, Log: true},
			{Name: "line", Kind: IntAxis, Min: 16, Max: 64, Steps: 3, Log: true},
		},
		Constraints: []Constraint{{
			Name:  "capacity <= 64 KiB",
			Allow: func(p Point) bool { return p.Int("sets")*p.Int("ways")*p.Int("line") <= 64<<10 },
		}},
	}
}

func (a cacheAdapter) Run(p Point) (Metrics, error) {
	ref, err := referenceTrace()
	if err != nil {
		return Metrics{}, err
	}
	cfg := cache.Config{
		Sets: p.Int("sets"), Ways: p.Int("ways"), LineSize: p.Int("line"),
		WriteBack: true, WriteAllocate: true,
	}
	c, err := cache.New(cfg, nil)
	if err != nil {
		return Metrics{}, err
	}
	st := c.Replay(ref.data)
	m := cacheSideMetrics(cfg, st)
	// Refills and write-backs move a line's words against the flat
	// main-memory model (the memhier adapter replaces this charge with
	// its banked partition's energy instead).
	mm := energy.DefaultMemoryModel()
	lineWords := float64(cfg.LineSize) / 4
	m.EnergyPJ += float64(st.Refills)*lineWords*float64(mm.ReadEnergy(mainMemoryBytes)) +
		float64(st.WriteBacks)*lineWords*float64(mm.WriteEnergy(mainMemoryBytes))
	return m, nil
}

// cacheSideMetrics converts replay statistics into the cache's own share
// of the objective triple: probe energy, an AMAT latency proxy and the
// data-array area. Memory-side energy (flat or banked) is added by the
// caller.
func cacheSideMetrics(cfg cache.Config, st cache.Stats) Metrics {
	mm := energy.DefaultMemoryModel()
	size := uint32(cfg.SizeBytes())
	wayBytes := size / uint32(cfg.Ways)
	lineWords := float64(cfg.LineSize) / 4

	// Every access probes all ways in parallel, each way sized
	// SizeBytes/Ways.
	accessE := float64(mm.ReadEnergy(wayBytes)) * float64(cfg.Ways)
	e := float64(st.Accesses) * accessE

	// AMAT proxy: one cycle per hit, a fixed main-memory penalty plus
	// the line transfer per miss.
	latency := float64(st.Accesses) + float64(st.Misses)*(10+lineWords)
	return Metrics{EnergyPJ: e, Latency: latency, Area: float64(size)}
}

// busAdapter sweeps the bus-encoding substrate of E4/E13 (DATE'03 6F.3,
// 8B.3): encoding scheme x address-stream shape. Energy counts self
// transitions plus coupling events under the bus model; latency is the
// bus cycles consumed (multi-cycle codes pay here); area is the physical
// line count.
type busAdapter struct{}

func (busAdapter) Name() string { return "bus" }

func (busAdapter) Describe() string {
	return "bus encoding: scheme x address-stream shape (internal/buscode)"
}

// busStreams names the synthetic word streams, in axis order.
var busStreams = []string{"seq", "branchy", "random", "samples"}

func (busAdapter) Space() Space {
	return Space{Axes: []Axis{
		{Name: "scheme", Kind: EnumAxis, Values: []string{"binary", "gray", "t0", "businvert", "shielded"}},
		{Name: "stream", Kind: EnumAxis, Values: busStreams},
	}}
}

// busWords synthesises the named 1024-word stream from a fixed seed.
func busWords(stream string) ([]uint32, error) {
	const n = 1024
	r := axisRand(1, "bus-stream:"+stream, "words")
	out := make([]uint32, n)
	switch stream {
	case "seq":
		// A pure instruction-address walk.
		for i := range out {
			out[i] = 0x1000 + 4*uint32(i)
		}
	case "branchy":
		// Sequential with a taken branch roughly every eight words.
		addr := uint32(0x1000)
		for i := range out {
			if r.Intn(8) == 0 {
				addr = uint32(r.Intn(1<<20)) &^ 3
			}
			out[i] = addr
			addr += 4
		}
	case "random":
		for i := range out {
			out[i] = r.Uint32()
		}
	case "samples":
		// Small signed 16-bit data, the typical DSP operand stream.
		for i := range out {
			out[i] = uint32(int32(r.Intn(1<<16) - 1<<15))
		}
	default:
		return nil, fmt.Errorf("sweep: unknown bus stream %q", stream)
	}
	return out, nil
}

// busEncoder builds a fresh encoder for the named scheme.
func busEncoder(scheme string) (buscode.Encoder, error) {
	switch scheme {
	case "binary":
		return &buscode.Binary{}, nil
	case "gray":
		return &buscode.Gray{}, nil
	case "t0":
		return &buscode.T0{Stride: 4}, nil
	case "businvert":
		return &buscode.BusInvert{}, nil
	case "shielded":
		return &buscode.Shielded{Stride: 4}, nil
	default:
		return nil, fmt.Errorf("sweep: unknown bus scheme %q", scheme)
	}
}

func (a busAdapter) Run(p Point) (Metrics, error) {
	words, err := busWords(p.Enum("stream"))
	if err != nil {
		return Metrics{}, err
	}
	enc, err := busEncoder(p.Enum("scheme"))
	if err != nil {
		return Metrics{}, err
	}
	m := buscode.Measure(enc, words)
	bm := energy.DefaultBusModel()
	e := float64(bm.TransitionEnergy(m.Transitions)) +
		float64(bm.PerTransition)*bm.CouplingFactor*float64(m.Couplings)
	return Metrics{EnergyPJ: e, Latency: float64(m.Cycles), Area: float64(m.Lines)}, nil
}

// memhierAdapter sweeps a two-level hierarchy: a cache in front of a
// banked main memory, jointly varying cache sets/ways and the bank
// budget. The banked memory is partitioned optimally for the cache's
// actual miss traffic — refill and write-back line transfers recorded
// through the cache hooks — so the two levels interact the way the
// dark-memory papers' hierarchies do: a bigger cache starves the banks
// of the traffic that made partitioning worthwhile.
type memhierAdapter struct{}

func (memhierAdapter) Name() string { return "memhier" }

func (memhierAdapter) Describe() string {
	return "two-level hierarchy: cache sets x ways x memory bank budget (cache + partition)"
}

func (memhierAdapter) Space() Space {
	return Space{Axes: []Axis{
		{Name: "sets", Kind: IntAxis, Min: 16, Max: 256, Steps: 5, Log: true},
		{Name: "ways", Kind: IntAxis, Min: 1, Max: 4, Steps: 3, Log: true},
		{Name: "banks", Kind: IntAxis, Min: 1, Max: 8},
	}}
}

func (a memhierAdapter) Run(p Point) (Metrics, error) {
	ref, err := referenceTrace()
	if err != nil {
		return Metrics{}, err
	}
	cfg := cache.Config{
		Sets: p.Int("sets"), Ways: p.Int("ways"), LineSize: 32,
		WriteBack: true, WriteAllocate: true,
	}
	c, err := cache.New(cfg, nil)
	if err != nil {
		return Metrics{}, err
	}
	// Record the miss traffic the banked memory actually serves: one
	// word-wide access per transferred word of every refill and
	// write-back line.
	missTraffic := trace.New(1024)
	record := func(kind trace.Kind) func(addr uint32, data []byte) {
		return func(addr uint32, data []byte) {
			for off := 0; off < len(data); off += 4 {
				missTraffic.Append(trace.Access{Addr: addr + uint32(off), Width: 4, Kind: kind})
			}
		}
	}
	c.OnRefill = record(trace.Read)
	c.OnWriteBack = record(trace.Write)
	st := c.Replay(ref.data)

	banks := p.Int("banks")
	mm := energy.DefaultMemoryModel()
	var memE float64
	var memArea float64
	if missTraffic.Len() > 0 {
		spec, _, err := partition.SpecFromTrace(missTraffic, 64, ref.cycles)
		if err != nil {
			return Metrics{}, err
		}
		part, e, err := partition.Optimal(spec, banks, mm)
		if err != nil {
			return Metrics{}, err
		}
		memE = float64(e)
		for _, b := range part.Banks {
			memArea += float64(b.SizeBytes)
		}
	}
	m := cacheSideMetrics(cfg, st)
	m.EnergyPJ += memE
	// The cache-side miss penalty already models transfer time; add the
	// provisioned bank-decode depth on top of every miss.
	m.Latency += float64(st.Misses) * 0.15 * float64(bits.Len(uint(banks-1)))
	m.Area += memArea
	return m, nil
}
