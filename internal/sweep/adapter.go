package sweep

import (
	"fmt"
	"sort"
	"strings"
)

// StoreVersion pins store records and sweep identities to the adapter
// code that produced them, the same way RegistryVersion pins the engine
// cache. Bump it whenever an adapter's metrics change meaning or value,
// so a stale on-disk store can never be resumed into wrong results.
const StoreVersion = "sweep-1"

// Metrics is the objective triple every DATE'03 trade-off is reported
// in: energy per run, a latency proxy, and an area proxy. All three are
// minimised; Pareto extraction works over any subset.
type Metrics struct {
	// EnergyPJ is the total energy of the configuration on the
	// reference workload, in the model's normalised picojoules.
	EnergyPJ float64 `json:"energy_pj"`
	// Latency is a cycle-count proxy for the configuration's speed
	// (access cycles plus miss/decode penalties; bus cycles for codes).
	Latency float64 `json:"latency"`
	// Area is a silicon-cost proxy (SRAM bytes, bus line count).
	Area float64 `json:"area"`
}

// MetricNames lists the objective keys in canonical order.
func MetricNames() []string { return []string{"energy_pj", "latency", "area"} }

// Get returns the named objective value.
func (m Metrics) Get(name string) (float64, bool) {
	switch name {
	case "energy_pj":
		return m.EnergyPJ, true
	case "latency":
		return m.Latency, true
	case "area":
		return m.Area, true
	default:
		return 0, false
	}
}

// ParseObjectives validates a comma list of objective names ("" means
// all three) and returns them in canonical order, deduplicated.
func ParseObjectives(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return MetricNames(), nil
	}
	want := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, ok := (Metrics{}).Get(part); !ok {
			return nil, fmt.Errorf("sweep: unknown objective %q (known: %s)", part, strings.Join(MetricNames(), ","))
		}
		want[part] = true
	}
	var out []string
	for _, name := range MetricNames() {
		if want[name] {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty objective list %q", s)
	}
	return out, nil
}

// Adapter exposes one sweepable substrate. Run must be a pure function
// of the point — deterministic, no shared mutable state — because the
// executor calls it from concurrent pool workers and the store assumes a
// point's metrics never change under a fixed StoreVersion.
type Adapter interface {
	// Name is the registry key ("banks", "cache", "bus", "memhier", "memtech").
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Space returns the adapter's design space.
	Space() Space
	// Run evaluates one point. The executor validates the point against
	// Space before calling.
	Run(p Point) (Metrics, error)
}

// registry holds the built-in adapters, keyed by name.
var registry = map[string]Adapter{}

// register adds an adapter at package init.
func register(a Adapter) {
	if _, dup := registry[a.Name()]; dup {
		//lint:allow panicfree duplicate registration is a compile-time wiring bug, caught by any test that imports the package
		panic("sweep: duplicate adapter " + a.Name())
	}
	registry[a.Name()] = a
}

// Adapters lists the registered adapters sorted by name.
func Adapters() []Adapter {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Adapter, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// ByName resolves an adapter, listing the known names on failure.
func ByName(name string) (Adapter, error) {
	if a, ok := registry[name]; ok {
		return a, nil
	}
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("sweep: unknown space %q (known: %s)", name, strings.Join(names, ","))
}
