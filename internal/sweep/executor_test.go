package sweep

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"lpmem/internal/faultinject"
)

// fakeAdapter is a cheap deterministic substrate for executor tests:
// metrics are a pure function of the point coordinates.
type fakeAdapter struct{}

func (fakeAdapter) Name() string     { return "fake" }
func (fakeAdapter) Describe() string { return "test substrate" }
func (fakeAdapter) Space() Space {
	return Space{Axes: []Axis{
		{Name: "i", Kind: IntAxis, Min: 0, Max: 9},
		{Name: "j", Kind: IntAxis, Min: 0, Max: 4},
	}}
}

func (fakeAdapter) Run(p Point) (Metrics, error) {
	i, j := p.Int("i"), p.Int("j")
	return Metrics{
		EnergyPJ: float64((i*7 + j*3) % 13),
		Latency:  float64((i + j*5) % 11),
		Area:     float64(1 + i + j),
	}, nil
}

func fakePoints(t *testing.T) []Point {
	t.Helper()
	pts, err := fakeAdapter{}.Space().Grid()
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestRunFreshThenResume(t *testing.T) {
	ad := fakeAdapter{}
	pts := fakePoints(t)
	path := filepath.Join(t.TempDir(), "store.jsonl")

	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Run(context.Background(), ad, pts, Config{Workers: 4, BatchSize: 8, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if res1.Evaluated != len(pts) || res1.Cached != 0 || res1.Failed != 0 {
		t.Fatalf("fresh run: evaluated=%d cached=%d failed=%d, want %d/0/0",
			res1.Evaluated, res1.Cached, res1.Failed, len(pts))
	}

	// Resume against the warm store: zero re-executions.
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res2, err := Run(context.Background(), ad, pts, Config{Workers: 4, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Evaluated != 0 || res2.Cached != len(pts) || res2.Failed != 0 {
		t.Fatalf("resume run: evaluated=%d cached=%d failed=%d, want 0/%d/0",
			res2.Evaluated, res2.Cached, res2.Failed, len(pts))
	}

	// Outcome order and metrics are identical across the two runs, and
	// the frontier tables are byte-identical (the CI resume gate).
	objs := MetricNames()
	axes := ad.Space().Axes
	for i := range res1.Outcomes {
		if res1.Outcomes[i].Point.Canonical() != res2.Outcomes[i].Point.Canonical() {
			t.Fatalf("outcome %d: point order differs across runs", i)
		}
		if res1.Outcomes[i].Metrics != res2.Outcomes[i].Metrics {
			t.Fatalf("outcome %d: metrics differ across runs", i)
		}
	}
	ft1, err := FrontierTable(axes, Frontier(res1.Outcomes, objs), objs)
	if err != nil {
		t.Fatal(err)
	}
	ft2, err := FrontierTable(axes, Frontier(res2.Outcomes, objs), objs)
	if err != nil {
		t.Fatal(err)
	}
	if ft1.String() != ft2.String() {
		t.Fatalf("frontier differs between fresh and resumed run:\n%s\nvs\n%s", ft1, ft2)
	}
}

func TestRunValidatesAndDedupes(t *testing.T) {
	ad := fakeAdapter{}
	if _, err := Run(context.Background(), ad, []Point{{"i": IntValue(99), "j": IntValue(0)}}, Config{}); err == nil {
		t.Fatal("Run accepted an out-of-space point")
	}
	p := Point{"i": IntValue(1), "j": IntValue(2)}
	res, err := Run(context.Background(), ad, []Point{p, p.Clone(), p.Clone()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 1 || res.Evaluated != 1 {
		t.Fatalf("duplicates not collapsed: total=%d evaluated=%d", res.Total, res.Evaluated)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, fakeAdapter{}, fakePoints(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != res.Total {
		t.Fatalf("cancelled run: failed=%d, want all %d", res.Failed, res.Total)
	}
	for _, o := range res.Outcomes {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("cancelled point error = %v, want context.Canceled", o.Err)
		}
	}
}

func TestRunProgressStream(t *testing.T) {
	var progress []Progress
	res, err := Run(context.Background(), fakeAdapter{}, fakePoints(t), Config{
		BatchSize:  8,
		OnProgress: func(p Progress) { progress = append(progress, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) == 0 {
		t.Fatal("no progress reports")
	}
	last := 0
	for i, p := range progress {
		if p.Done < last {
			t.Fatalf("progress %d: Done went backwards (%d after %d)", i, p.Done, last)
		}
		last = p.Done
		if p.Total != res.Total {
			t.Fatalf("progress %d: total=%d, want %d", i, p.Total, res.Total)
		}
	}
	if last != res.Total {
		t.Fatalf("final progress Done=%d, want %d", last, res.Total)
	}
	if got := len(progress); got != progress[0].Batches {
		t.Fatalf("got %d progress reports for %d batches", got, progress[0].Batches)
	}
}

// TestSweepRecoversFromInjectedFaults is the fault-injection satellite:
// wrap the batch jobs with faultinject.Wrap so a deterministic subset of
// points dies mid-sweep (the moral equivalent of a killed process), then
// prove the partial store plus a clean resume recover the full sweep with
// a frontier identical to a never-faulted run.
func TestSweepRecoversFromInjectedFaults(t *testing.T) {
	ad := fakeAdapter{}
	pts := fakePoints(t)
	path := filepath.Join(t.TempDir(), "store.jsonl")

	// Clean reference run, no store, no faults.
	ref, err := Run(context.Background(), ad, pts, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	objs := MetricNames()
	refFront, err := FrontierTable(ad.Space().Axes, Frontier(ref.Outcomes, objs), objs)
	if err != nil {
		t.Fatal(err)
	}

	// Faulted run: half the points die (transient errors and panics that
	// never heal within the run). Successes still land in the store.
	inj := faultinject.New(faultinject.Plan{
		Seed:          7,
		Rate:          0.5,
		Kinds:         []faultinject.Kind{faultinject.Transient, faultinject.Panic},
		FaultAttempts: 1 << 20, // never heals: every attempt of a faulted key fails
	})
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Run(context.Background(), ad, pts, Config{
		Workers: 4, BatchSize: 8, Store: st,
		WrapJob: func(key string, run func(ctx context.Context) (Metrics, error)) func(ctx context.Context) (Metrics, error) {
			return faultinject.Wrap(inj, key, run, nil)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if res1.Failed == 0 {
		t.Fatal("fault plan injected nothing; the recovery test is vacuous")
	}
	if res1.Evaluated == 0 {
		t.Fatal("every point died; the partial-store property is vacuous")
	}
	if res1.Evaluated+res1.Failed != res1.Total {
		t.Fatalf("faulted run counts: evaluated=%d failed=%d total=%d",
			res1.Evaluated, res1.Failed, res1.Total)
	}

	// The store holds exactly the survivors.
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != res1.Evaluated {
		t.Fatalf("store holds %d records, want the %d survivors", st2.Len(), res1.Evaluated)
	}

	// Clean resume: only the faulted points re-execute, and the recovered
	// sweep matches the never-faulted reference exactly.
	res2, err := Run(context.Background(), ad, pts, Config{Workers: 4, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed != 0 {
		t.Fatalf("resume still failing: %d points", res2.Failed)
	}
	if res2.Cached != res1.Evaluated || res2.Evaluated != res1.Failed {
		t.Fatalf("resume: cached=%d evaluated=%d, want %d/%d",
			res2.Cached, res2.Evaluated, res1.Evaluated, res1.Failed)
	}
	for i := range ref.Outcomes {
		if ref.Outcomes[i].Metrics != res2.Outcomes[i].Metrics {
			t.Fatalf("outcome %d: recovered metrics differ from the clean run", i)
		}
	}
	front2, err := FrontierTable(ad.Space().Axes, Frontier(res2.Outcomes, objs), objs)
	if err != nil {
		t.Fatal(err)
	}
	if refFront.String() != front2.String() {
		t.Fatalf("recovered frontier differs from the clean run:\n%s\nvs\n%s", refFront, front2)
	}
}

func TestAdaptersRunOnePoint(t *testing.T) {
	// Every registered adapter must evaluate the first point of its own
	// grid without error and produce positive metrics.
	for _, ad := range Adapters() {
		pts, err := ad.Space().Grid()
		if err != nil {
			t.Fatalf("%s: %v", ad.Name(), err)
		}
		m, err := ad.Run(pts[0])
		if err != nil {
			t.Fatalf("%s: Run(%s): %v", ad.Name(), pts[0].Canonical(), err)
		}
		if m.EnergyPJ <= 0 || m.Latency <= 0 || m.Area <= 0 {
			t.Fatalf("%s: non-positive metrics %+v for %s", ad.Name(), m, pts[0].Canonical())
		}
		// Determinism: a second evaluation is bit-identical.
		m2, err := ad.Run(pts[0])
		if err != nil {
			t.Fatal(err)
		}
		if m != m2 {
			t.Fatalf("%s: Run is nondeterministic: %+v vs %+v", ad.Name(), m, m2)
		}
	}
}

func TestResultOkFiltering(t *testing.T) {
	res := &Result{Outcomes: []Outcome{
		{Point: Point{"i": IntValue(0)}},
		{Point: Point{"i": IntValue(1)}, Err: fmt.Errorf("x")},
		{Point: Point{"i": IntValue(2)}},
	}}
	if got := len(res.Ok()); got != 2 {
		t.Fatalf("Ok() returned %d outcomes, want 2", got)
	}
}
