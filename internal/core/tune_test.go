package core

import (
	"testing"

	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// TestCompositeAppTuning is an exploratory harness over composite
// application traces (several kernels sharing one address space), the
// setting of the paper's evaluation. It logs savings for bank budgets.
func TestCompositeAppTuning(t *testing.T) {
	apps := map[string][]string{
		"media": {"fir", "dct", "adpcm"},
		"net":   {"crc32", "strsearch", "histogram"},
		"calc":  {"matmul", "autocorr", "sort"},
	}
	for name, parts := range apps {
		merged := trace.New(1 << 16)
		var cycles uint64
		for _, p := range parts {
			k, err := workloads.ByName(p)
			if err != nil {
				t.Fatal(err)
			}
			res := workloads.MustRun(k.Build(1))
			for _, a := range res.Trace.Accesses {
				merged.Append(a)
			}
			cycles += res.Cycles
		}
		for _, banks := range []int{2, 4, 8} {
			opt := DefaultOptions()
			opt.MaxBanks = banks
			rep, err := Optimize(merged, cycles, opt)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-6s banks=%d mono=%10.0f part=%10.0f clust=%10.0f saving=%6.2f%% vsmono=%6.2f%%",
				name, banks, float64(rep.MonolithicE), float64(rep.PartitionedE),
				float64(rep.ClusteredE), rep.SavingVsPartitioned(), rep.SavingVsMonolithic())
		}
	}
}
