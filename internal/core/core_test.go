package core

import (
	"testing"

	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// TestOptimizeOnSyntheticHotCold checks the fundamental property: when hot
// and cold blocks are interleaved in the address space, clustering must
// beat plain partitioning.
func TestOptimizeOnSyntheticHotCold(t *testing.T) {
	// Hot blocks scattered between cold ones: 64 KiB of address space,
	// every 4th 256 B block is hot.
	regions := make([]trace.Region, 0, 32)
	for i := 0; i < 32; i++ {
		w := 0.2
		if i%4 == 0 {
			w = 10
		}
		regions = append(regions, trace.Region{
			Base:   uint32(i) * 2048,
			Size:   256,
			Weight: w,
			Stride: 4,
		})
	}
	tr := trace.Synthesize(trace.SynthConfig{Seed: 1, N: 50_000, Regions: regions, WriteFraction: 0.3})
	rep, err := Optimize(tr, 100_000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	if rep.PartitionedE >= rep.MonolithicE {
		t.Errorf("partitioning should beat monolithic: part=%v mono=%v", rep.PartitionedE, rep.MonolithicE)
	}
	if got := rep.SavingVsPartitioned(); got < 5 {
		t.Errorf("clustering saving vs partitioned = %.1f%%, want >= 5%%", got)
	}
}

// TestOptimizeOnKernels runs the full flow on every workload kernel and
// checks basic sanity: energies positive, clustering never catastrophically
// worse than the baseline (the remap table costs a little, so allow a small
// regression on kernels that are already perfectly laid out).
func TestOptimizeOnKernels(t *testing.T) {
	for _, k := range workloads.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res := workloads.MustRun(k.Build(1))
			rep, err := Optimize(res.Trace, res.Cycles, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if rep.MonolithicE <= 0 || rep.PartitionedE <= 0 || rep.ClusteredE <= 0 {
				t.Fatalf("non-positive energy: %+v", rep)
			}
			if rep.PartitionedE > rep.MonolithicE {
				t.Errorf("optimal partition worse than monolithic: %v > %v",
					rep.PartitionedE, rep.MonolithicE)
			}
			saving := rep.SavingVsPartitioned()
			t.Logf("%-10s mono=%10.0f part=%10.0f clust=%10.0f  saving=%6.2f%%  banks=%v",
				k.Name, float64(rep.MonolithicE), float64(rep.PartitionedE),
				float64(rep.ClusteredE), saving, rep.ClusteredPartition)
			if saving < -10 {
				t.Errorf("clustering regressed %.1f%% on %s", -saving, k.Name)
			}
		})
	}
}
