// Package core is the public heart of the library: it composes address
// clustering (internal/cluster) with energy-driven memory partitioning
// (internal/partition) into the optimization flow evaluated in DATE'03
// 1B.1, and reports the three-way energy comparison the paper's table is
// built from: monolithic memory vs partitioned memory vs partitioned
// memory with address clustering.
package core

import (
	"fmt"

	"lpmem/internal/cluster"
	"lpmem/internal/energy"
	"lpmem/internal/partition"
	"lpmem/internal/trace"
)

// Options configures an optimization run.
type Options struct {
	// BlockSize is the clustering/partitioning granularity in bytes.
	BlockSize uint32
	// MaxBanks bounds the number of memory banks the partitioner may use.
	MaxBanks int
	// Model is the SRAM energy model.
	Model energy.MemoryModel
	// Cluster tunes the clustering heuristic; its BlockSize is forced to
	// the value above.
	Cluster cluster.Config
	// RemapEnergy is the per-access cost charged for the clustering
	// translation hardware (a small combinational block-index table), so
	// reported savings are net of the added hardware. Zero disables the
	// charge.
	RemapEnergy energy.PJ
}

// DefaultOptions returns the configuration used by the E1 experiment.
func DefaultOptions() Options {
	return Options{
		BlockSize:   64,
		MaxBanks:    4,
		Model:       energy.DefaultMemoryModel(),
		Cluster:     cluster.DefaultConfig(),
		RemapEnergy: 0.05,
	}
}

// Report is the outcome of one optimization run.
type Report struct {
	// MonolithicE is the energy of serving the trace from one big SRAM.
	MonolithicE energy.PJ
	// PartitionedE is the energy after optimal partitioning of the
	// unclustered (linker-order) image — the paper's baseline.
	PartitionedE energy.PJ
	// ClusteredE is the energy after clustering then partitioning,
	// including the remap-table overhead if charged.
	ClusteredE energy.PJ
	// BasePartition and ClusteredPartition are the two bank layouts.
	BasePartition      *partition.Partition
	ClusteredPartition *partition.Partition
	// Clustering is the computed block permutation.
	Clustering *cluster.Clustering
}

// SavingVsPartitioned returns the headline metric of the paper: percent
// energy saved by clustering relative to partitioning alone.
func (r *Report) SavingVsPartitioned() float64 {
	if r.PartitionedE == 0 {
		return 0
	}
	return 100 * float64(r.PartitionedE-r.ClusteredE) / float64(r.PartitionedE)
}

// SavingVsMonolithic returns percent energy saved by the full flow
// relative to a monolithic memory.
func (r *Report) SavingVsMonolithic() float64 {
	if r.MonolithicE == 0 {
		return 0
	}
	return 100 * float64(r.MonolithicE-r.ClusteredE) / float64(r.MonolithicE)
}

// String summarises the report.
func (r *Report) String() string {
	return fmt.Sprintf("mono=%.0f part=%.0f clust=%.0f (%.1f%% vs part)",
		float64(r.MonolithicE), float64(r.PartitionedE), float64(r.ClusteredE),
		r.SavingVsPartitioned())
}

// Optimize runs the full flow on the data accesses of t. cycles is the
// execution length of the run (for leakage). Invalid options (a block
// size that is not a power of two, a bank budget below 1) are reported
// as errors rather than panics, so services driving the flow from
// external configuration fail one request instead of the process.
func Optimize(t *trace.Trace, cycles uint64, opt Options) (*Report, error) {
	if opt.BlockSize == 0 {
		opt = DefaultOptions()
	}
	opt.Cluster.BlockSize = opt.BlockSize
	data := t.Data()

	// Baseline image: compacted, address order (what the linker gives).
	base, err := cluster.IdentityBaseline(data, opt.BlockSize)
	if err != nil {
		return nil, err
	}
	baseTrace := base.Remap(data)
	baseSpec, _, err := partition.SpecFromTrace(baseTrace, opt.BlockSize, cycles)
	if err != nil {
		return nil, err
	}

	monoE := partition.Energy(baseSpec, partition.Monolithic(baseSpec), opt.Model)
	basePart, baseE, err := partition.Optimal(baseSpec, opt.MaxBanks, opt.Model)
	if err != nil {
		return nil, err
	}

	// Clustered image.
	cl, err := cluster.Cluster(data, opt.Cluster)
	if err != nil {
		return nil, err
	}
	clTrace := cl.Remap(data)
	clSpec, _, err := partition.SpecFromTrace(clTrace, opt.BlockSize, cycles)
	if err != nil {
		return nil, err
	}
	clPart, clE, err := partition.Optimal(clSpec, opt.MaxBanks, opt.Model)
	if err != nil {
		return nil, err
	}
	clE += opt.RemapEnergy * energy.PJ(clSpec.TotalAccesses())

	return &Report{
		MonolithicE:        monoE,
		PartitionedE:       baseE,
		ClusteredE:         clE,
		BasePartition:      basePart,
		ClusteredPartition: clPart,
		Clustering:         cl,
	}, nil
}
