package bdd

import "math/bits"

// Benchmark functions with strongly order-dependent BDD sizes, used by
// the E16 experiment and tests.

// Multiplexer returns the 2^k-input multiplexer with k select inputs:
// variables 0..k-1 are selects, k..k+2^k-1 are data. Its BDD is linear
// when selects are on top and exponential when data variables come first.
func Multiplexer(k int) (*TruthTable, error) {
	n := k + 1<<uint(k)
	return FromFunc(n, func(m int) bool {
		sel := m & (1<<uint(k) - 1)
		return m>>uint(k+sel)&1 == 1
	})
}

// HiddenWeightedBit returns HWB(x) = x_w where w = weight(x) (0 if w==0),
// a classic function with no small-BDD order.
func HiddenWeightedBit(n int) (*TruthTable, error) {
	return FromFunc(n, func(m int) bool {
		w := bits.OnesCount32(uint32(m))
		if w == 0 {
			return false
		}
		return m>>uint(w-1)&1 == 1
	})
}

// AdderCarry returns the carry-out of an a+b ripple adder where variables
// alternate a0,b0,a1,b1,... (an interleaving-sensitive function).
func AdderCarry(bitsN int) (*TruthTable, error) {
	return FromFunc(2*bitsN, func(m int) bool {
		carry := 0
		for i := 0; i < bitsN; i++ {
			a := m >> uint(2*i) & 1
			b := m >> uint(2*i+1) & 1
			carry = (a & b) | (a & carry) | (b & carry)
		}
		return carry == 1
	})
}

// Parity returns x0 xor ... xor xn-1 (order-insensitive: every order has
// the same linear BDD, a useful control case).
func Parity(n int) (*TruthTable, error) {
	return FromFunc(n, func(m int) bool {
		return bits.OnesCount32(uint32(m))%2 == 1
	})
}
