package bdd

import (
	"fmt"
	"sort"
)

// Exact BDD minimization: branch-and-bound over the subset lattice
// (Friedman/Supowit search space) with configurable lower bounds,
// following DATE'03 8D.2.
//
// A search state is a subset S of variables assigned to the top |S|
// levels; its g-cost is the (order-independent) number of nodes in those
// levels. The algorithm explores states best-first and prunes a state
// when g(S) + LB(S) >= best known total size.

// BoundSet selects which lower bounds prune the search.
type BoundSet struct {
	// Remaining charges one node per remaining essential variable (every
	// essential variable labels at least one node).
	Remaining bool
	// MaxLevel charges the maximum single-level cost over the remaining
	// variables: whichever variable comes next, its level has at least
	// min-over-v nodes... conservatively, at least the cheapest next
	// level plus one per variable after it.
	MaxLevel bool
	// Monotone exploits that the cofactor-class count at the boundary
	// can only shrink by merging: the next level needs at least
	// ceil(classes/2) nodes when classes > 1.
	Monotone bool
}

// AllBounds enables the full combination (the paper's configuration).
func AllBounds() BoundSet { return BoundSet{Remaining: true, MaxLevel: true, Monotone: true} }

// OneBound is the single-bound baseline.
func OneBound() BoundSet { return BoundSet{Remaining: true} }

// MinimizeResult reports the optimum and the search effort.
type MinimizeResult struct {
	// Order is an optimal variable order.
	Order []int
	// Size is the minimal ROBDD node count.
	Size int
	// Expanded counts search states expanded (the paper's effort metric).
	Expanded uint64
}

// essentialVars returns the mask of variables the function depends on.
func (t *TruthTable) essentialVars() int {
	mask := 0
	for v := 0; v < t.N; v++ {
		if t.dependsOn(0, 0, v) {
			mask |= 1 << uint(v)
		}
	}
	return mask
}

// classesAfter counts distinct cofactor classes w.r.t. the subset S
// (including classes that are constants or depend on no further
// variable).
func (t *TruthTable) classesAfter(s int) int {
	vars := make([]int, 0, t.N)
	for i := 0; i < t.N; i++ {
		if s>>uint(i)&1 == 1 {
			vars = append(vars, i)
		}
	}
	seen := make(map[string]bool)
	for a := 0; a < 1<<uint(len(vars)); a++ {
		val := 0
		for i, vv := range vars {
			if a>>uint(i)&1 == 1 {
				val |= 1 << uint(vv)
			}
		}
		seen[t.subfunction(s, val)] = true
	}
	return len(seen)
}

// lowerBound computes the configured combined lower bound for the
// remaining variables after subset s.
func (t *TruthTable) lowerBound(s int, bounds BoundSet, essential int) int {
	remaining := essential &^ s
	if remaining == 0 {
		return 0
	}
	lb := 0
	if bounds.Remaining {
		lb = popcount16(remaining)
	}
	if bounds.MaxLevel {
		// The variable placed next contributes LevelNodes(s, v); every
		// order must pick one of them, so the minimum over v is a valid
		// bound for the next level, plus one node for each variable
		// after it.
		min := 1 << 30
		for v := 0; v < t.N; v++ {
			if remaining>>uint(v)&1 == 0 {
				continue
			}
			if n := t.LevelNodes(s, v); n < min {
				min = n
			}
		}
		if b := min + popcount16(remaining) - 1; b > lb {
			lb = b
		}
	}
	if bounds.Monotone {
		// Classes at the boundary must be resolved down to the two
		// terminals; each level at most halves... conservatively each
		// level of a BDD reduces distinct classes by at most a factor of
		// 2 only through its nodes, so at least classes-2 nodes remain
		// in total below the boundary (every non-terminal class needs at
		// least one node somewhere below).
		classes := t.classesAfter(s)
		if b := classes - 2; b > lb {
			lb = b
		}
	}
	return lb
}

// Minimize finds an optimal variable order by branch-and-bound with the
// given bound configuration.
func Minimize(t *TruthTable, bounds BoundSet) (*MinimizeResult, error) {
	if t.N > 14 {
		return nil, fmt.Errorf("bdd: exact minimization limited to 14 variables, got %d", t.N)
	}
	essential := t.essentialVars()

	// Incumbent from the identity order.
	best, err := t.SizeForOrder(IdentityOrder(t.N))
	if err != nil {
		return nil, err
	}
	bestOrder := IdentityOrder(t.N)

	// g-cost per subset (order-independent) and the chosen last variable
	// for path reconstruction.
	g := map[int]int{0: 0}
	lastVar := map[int]int{}
	var expanded uint64

	// Best-first expansion over subset sizes (uniform-cost within size).
	frontier := []int{0}
	for size := 0; size < t.N; size++ {
		// Deterministic expansion order: by g then subset value.
		sort.Slice(frontier, func(i, j int) bool {
			if g[frontier[i]] != g[frontier[j]] {
				return g[frontier[i]] < g[frontier[j]]
			}
			return frontier[i] < frontier[j]
		})
		next := map[int]bool{}
		for _, s := range frontier {
			if g[s]+t.lowerBound(s, bounds, essential) >= best {
				continue // pruned
			}
			expanded++
			for v := 0; v < t.N; v++ {
				if s>>uint(v)&1 == 1 {
					continue
				}
				ns := s | 1<<uint(v)
				cost := g[s] + t.LevelNodes(s, v)
				if old, ok := g[ns]; !ok || cost < old {
					g[ns] = cost
					lastVar[ns] = v
				}
				next[ns] = true
			}
		}
		frontier = frontier[:0]
		for s := range next {
			frontier = append(frontier, s)
		}
		// Update the incumbent from complete states.
		full := 1<<uint(t.N) - 1
		if c, ok := g[full]; ok && c < best {
			best = c
			bestOrder = reconstruct(lastVar, full, t.N)
		}
	}
	full := 1<<uint(t.N) - 1
	if c, ok := g[full]; ok && c < best {
		best = c
		bestOrder = reconstruct(lastVar, full, t.N)
	}
	return &MinimizeResult{Order: bestOrder, Size: best, Expanded: expanded}, nil
}

// reconstruct rebuilds the order from the lastVar chain.
func reconstruct(lastVar map[int]int, full, n int) []int {
	order := make([]int, n)
	s := full
	for i := n - 1; i >= 0; i-- {
		v := lastVar[s]
		order[i] = v
		s &^= 1 << uint(v)
	}
	return order
}

// Sift runs the classical sifting heuristic: each variable in turn is
// moved to the position minimizing total size, holding the others fixed.
func Sift(t *TruthTable, order []int) ([]int, int, error) {
	cur := append([]int(nil), order...)
	size, err := t.SizeForOrder(cur)
	if err != nil {
		return nil, 0, err
	}
	for v := 0; v < t.N; v++ {
		// Current position of variable v.
		pos := -1
		for i, x := range cur {
			if x == v {
				pos = i
				break
			}
		}
		bestPos, bestSize := pos, size
		for p := 0; p < t.N; p++ {
			if p == pos {
				continue
			}
			cand := moveVar(cur, pos, p)
			s, err := t.SizeForOrder(cand)
			if err != nil {
				return nil, 0, err
			}
			if s < bestSize {
				bestSize, bestPos = s, p
			}
		}
		cur = moveVar(cur, pos, bestPos)
		size = bestSize
	}
	return cur, size, nil
}

// moveVar returns a copy of order with the element at from moved to to.
func moveVar(order []int, from, to int) []int {
	out := make([]int, 0, len(order))
	v := order[from]
	for i, x := range order {
		if i == from {
			continue
		}
		out = append(out, x)
	}
	out = append(out[:to], append([]int{v}, out[to:]...)...)
	return out
}
