// Package bdd implements reduced ordered binary decision diagrams and
// exact variable-order minimization with combined lower bounds,
// reproducing DATE'03 8D.2 (Ebendt, Günther, Drechsler: "Combination of
// Lower Bounds in Exact BDD Minimization").
//
// The size of a ROBDD depends on the variable order — from linear to
// exponential for the same function — and finding the optimal order is
// NP-complete. The classic exact algorithm (Friedman/Supowit) runs a
// branch-and-bound over variable-order *prefixes*: the nodes in the top k
// levels depend only on the *set* of the first k variables, not their
// order, so the search space is the subset lattice. The paper's
// contribution is pruning this search with a combination of lower bounds
// instead of a single one; this package implements three and counts
// expanded states with each configuration, reproducing the paper's
// "avoided computations" result.
//
// Functions are represented by truth tables (up to 16 variables), and a
// hash-consed node-based ROBDD can be built for any order to cross-check
// the counting-based size computation.
package bdd

import (
	"fmt"
	"math/bits"
)

// TruthTable is a boolean function of N variables as a packed bitset:
// bit m holds f(m) where variable i corresponds to bit i of the input
// index m.
type TruthTable struct {
	N    int
	bits []uint64
}

// NewTruthTable allocates a constant-false function of n variables.
func NewTruthTable(n int) (*TruthTable, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("bdd: variable count %d out of range (1..16)", n)
	}
	words := (1<<uint(n) + 63) / 64
	return &TruthTable{N: n, bits: make([]uint64, words)}, nil
}

// Get returns f(m).
func (t *TruthTable) Get(m int) bool { return t.bits[m/64]>>(uint(m)%64)&1 == 1 }

// Set assigns f(m) = v.
func (t *TruthTable) Set(m int, v bool) {
	if v {
		t.bits[m/64] |= 1 << (uint(m) % 64)
	} else {
		t.bits[m/64] &^= 1 << (uint(m) % 64)
	}
}

// FromFunc builds a truth table by evaluating f on every minterm.
func FromFunc(n int, f func(m int) bool) (*TruthTable, error) {
	t, err := NewTruthTable(n)
	if err != nil {
		return nil, err
	}
	for m := 0; m < 1<<uint(n); m++ {
		t.Set(m, f(m))
	}
	return t, nil
}

// subfunction extracts the cofactor of f where the variables in
// `fixedMask` are fixed to the bits of `fixedVal`, flattened over the
// remaining (free) variables in ascending variable order. The result is
// returned as a canonical key (hex of the packed bits plus length).
func (t *TruthTable) subfunction(fixedMask, fixedVal int) string {
	freeVars := make([]int, 0, t.N)
	for v := 0; v < t.N; v++ {
		if fixedMask>>uint(v)&1 == 0 {
			freeVars = append(freeVars, v)
		}
	}
	n := len(freeVars)
	words := (1<<uint(n) + 63) / 64
	out := make([]uint64, words)
	for m := 0; m < 1<<uint(n); m++ {
		full := fixedVal
		for i, v := range freeVars {
			if m>>uint(i)&1 == 1 {
				full |= 1 << uint(v)
			}
		}
		if t.Get(full) {
			out[m/64] |= 1 << (uint(m) % 64)
		}
	}
	return keyOf(out, n)
}

func keyOf(words []uint64, n int) string {
	b := make([]byte, 0, len(words)*8+1)
	b = append(b, byte(n))
	for _, w := range words {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>uint(s)))
		}
	}
	return string(b)
}

// dependsOn reports whether the cofactor class keyed by fixing fixedMask
// to fixedVal essentially depends on variable v (v must be free).
func (t *TruthTable) dependsOn(fixedMask, fixedVal, v int) bool {
	k0 := t.subfunction(fixedMask|1<<uint(v), fixedVal)
	k1 := t.subfunction(fixedMask|1<<uint(v), fixedVal|1<<uint(v))
	return k0 != k1
}

// LevelNodes returns the number of BDD nodes labeled with variable v when
// the set `above` (bitmask) of variables occupies the levels above v:
// the count of distinct cofactors w.r.t. `above` that essentially depend
// on v. This is the Friedman-Supowit characterization — it depends only
// on the set, not on the order within it.
func (t *TruthTable) LevelNodes(above int, v int) int {
	if above>>uint(v)&1 == 1 {
		//lint:allow panicfree documented precondition; callers enumerate sets that exclude v by construction
		panic("bdd: v must not be in the set above it")
	}
	seen := make(map[string]bool)
	count := 0
	// Enumerate assignments to `above`.
	vars := make([]int, 0, t.N)
	for i := 0; i < t.N; i++ {
		if above>>uint(i)&1 == 1 {
			vars = append(vars, i)
		}
	}
	for a := 0; a < 1<<uint(len(vars)); a++ {
		val := 0
		for i, vv := range vars {
			if a>>uint(i)&1 == 1 {
				val |= 1 << uint(vv)
			}
		}
		k := t.subfunction(above, val)
		if seen[k] {
			continue
		}
		seen[k] = true
		if t.dependsOn(above, val, v) {
			count++
		}
	}
	return count
}

// SizeForOrder returns the ROBDD node count (internal nodes, excluding
// terminals) for the given variable order (order[0] is the top level).
func (t *TruthTable) SizeForOrder(order []int) (int, error) {
	if len(order) != t.N {
		return 0, fmt.Errorf("bdd: order has %d variables, want %d", len(order), t.N)
	}
	seen := 0
	total := 0
	for _, v := range order {
		if v < 0 || v >= t.N || seen>>uint(v)&1 == 1 {
			return 0, fmt.Errorf("bdd: order is not a permutation")
		}
		total += t.LevelNodes(seen, v)
		seen |= 1 << uint(v)
	}
	return total, nil
}

// IdentityOrder returns 0..n-1.
func IdentityOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

// popcount16 counts set bits of a small mask.
func popcount16(m int) int { return bits.OnesCount32(uint32(m)) }
