package bdd

import (
	"math/rand"
	"testing"
)

func TestTruthTableBasics(t *testing.T) {
	tt, err := NewTruthTable(3)
	if err != nil {
		t.Fatal(err)
	}
	tt.Set(5, true)
	if !tt.Get(5) || tt.Get(4) {
		t.Fatal("set/get broken")
	}
	tt.Set(5, false)
	if tt.Get(5) {
		t.Fatal("clear broken")
	}
	if _, err := NewTruthTable(0); err == nil {
		t.Fatal("0 variables must error")
	}
	if _, err := NewTruthTable(17); err == nil {
		t.Fatal("17 variables must error")
	}
}

// TestParityLinearAnyOrder: parity has exactly n internal nodes under
// every order.
func TestParityLinearAnyOrder(t *testing.T) {
	tt, err := Parity(5)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		order := r.Perm(5)
		size, err := tt.SizeForOrder(order)
		if err != nil {
			t.Fatal(err)
		}
		// Parity BDD: 2 nodes per level except 1 at top and bottom:
		// 2n-1 internal nodes.
		if size != 2*5-1 {
			t.Fatalf("parity size = %d under %v, want 9", size, order)
		}
	}
}

// TestMultiplexerOrderSensitivity: selects-on-top is linear, data-first
// blows up.
func TestMultiplexerOrderSensitivity(t *testing.T) {
	tt, err := Multiplexer(2) // 2 selects + 4 data = 6 vars
	if err != nil {
		t.Fatal(err)
	}
	good := []int{0, 1, 2, 3, 4, 5} // selects first
	bad := []int{2, 3, 4, 5, 0, 1}  // data first
	gs, err := tt.SizeForOrder(good)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := tt.SizeForOrder(bad)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mux: selects-first=%d data-first=%d", gs, bs)
	if gs >= bs {
		t.Fatalf("selects-first (%d) should beat data-first (%d)", gs, bs)
	}
}

func TestSizeForOrderRejectsBadOrders(t *testing.T) {
	tt, _ := Parity(3)
	if _, err := tt.SizeForOrder([]int{0, 1}); err == nil {
		t.Fatal("short order must error")
	}
	if _, err := tt.SizeForOrder([]int{0, 0, 1}); err == nil {
		t.Fatal("non-permutation must error")
	}
}

// TestMinimizeFindsMuxOptimum: exact minimization must recover the
// selects-on-top family optimum.
func TestMinimizeFindsMuxOptimum(t *testing.T) {
	tt, err := Multiplexer(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimize(tt, AllBounds())
	if err != nil {
		t.Fatal(err)
	}
	want, err := tt.SizeForOrder([]int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size > want {
		t.Fatalf("minimize size = %d, optimum is at most %d", res.Size, want)
	}
	// The returned order must reproduce the claimed size.
	check, err := tt.SizeForOrder(res.Order)
	if err != nil {
		t.Fatal(err)
	}
	if check != res.Size {
		t.Fatalf("returned order gives %d, result claims %d", check, res.Size)
	}
}

// TestBoundsAgreeOnOptimum: one-bound and all-bounds searches must find
// the same minimal size, with all-bounds expanding no more states.
func TestBoundsAgreeOnOptimum(t *testing.T) {
	funcs := map[string]*TruthTable{}
	if tt, err := Multiplexer(2); err == nil {
		funcs["mux2"] = tt
	}
	if tt, err := HiddenWeightedBit(7); err == nil {
		funcs["hwb7"] = tt
	}
	if tt, err := AdderCarry(4); err == nil {
		funcs["add4"] = tt
	}
	for name, tt := range funcs {
		one, err := Minimize(tt, OneBound())
		if err != nil {
			t.Fatal(err)
		}
		all, err := Minimize(tt, AllBounds())
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: optimum=%d expanded one=%d all=%d", name, all.Size, one.Expanded, all.Expanded)
		if one.Size != all.Size {
			t.Errorf("%s: bound sets disagree on optimum: %d vs %d", name, one.Size, all.Size)
		}
		if all.Expanded > one.Expanded {
			t.Errorf("%s: combined bounds expanded MORE states (%d > %d)", name, all.Expanded, one.Expanded)
		}
	}
}

// TestSiftImprovesOrNeverWorsens on a bad initial order.
func TestSiftImprovesOrNeverWorsens(t *testing.T) {
	tt, err := Multiplexer(2)
	if err != nil {
		t.Fatal(err)
	}
	bad := []int{2, 3, 4, 5, 0, 1}
	before, err := tt.SizeForOrder(bad)
	if err != nil {
		t.Fatal(err)
	}
	order, after, err := Sift(tt, bad)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("sifting worsened the order: %d > %d", after, before)
	}
	if got, _ := tt.SizeForOrder(order); got != after {
		t.Fatalf("sift returned inconsistent size %d vs %d", after, got)
	}
	t.Logf("sift: %d -> %d", before, after)
}

// TestMinimizeNeverAboveSift: the exact optimum is a floor for the
// heuristic.
func TestMinimizeNeverAboveSift(t *testing.T) {
	tt, err := AdderCarry(3)
	if err != nil {
		t.Fatal(err)
	}
	_, sifted, err := Sift(tt, IdentityOrder(tt.N))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Minimize(tt, AllBounds())
	if err != nil {
		t.Fatal(err)
	}
	if exact.Size > sifted {
		t.Fatalf("exact %d above sifted %d", exact.Size, sifted)
	}
}
