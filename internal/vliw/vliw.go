// Package vliw models a 4-issue VLIW embedded processor in the spirit of
// the Lx-ST200 (DATE'03 1B.2's platform): µRISC programs are executed with
// scalar semantics while an in-order bundle model computes how the
// instruction stream packs into long instruction words under slot,
// memory-port and register-dependency constraints.
//
// The model is intentionally an issue-timing overlay: architectural state
// and the emitted memory trace are identical to the scalar core, which is
// what the downstream energy experiments consume; only the cycle count
// (and therefore leakage/time-derived numbers) differs.
package vliw

import (
	"fmt"

	"lpmem/internal/isa"
	"lpmem/internal/trace"
)

// Config describes the issue resources of the machine.
type Config struct {
	// IssueWidth is the number of slots per bundle (4 for Lx-ST200).
	IssueWidth int
	// MemPorts is the number of load/store units (1 for Lx-ST200).
	MemPorts int
	// MulLatency and LoadLatency are result latencies in cycles.
	MulLatency  int
	LoadLatency int
	// BranchPenalty is the bubble cost of a taken branch.
	BranchPenalty int
}

// LxConfig returns the 4-issue configuration used by the experiments.
func LxConfig() Config {
	return Config{IssueWidth: 4, MemPorts: 1, MulLatency: 3, LoadLatency: 2, BranchPenalty: 2}
}

// Result is the outcome of a VLIW run.
type Result struct {
	// Trace is the memory trace (identical to scalar execution).
	Trace *trace.Trace
	// Cycles is the bundle-model cycle count.
	Cycles uint64
	// Bundles is the number of issued long instruction words.
	Bundles uint64
	// Instructions is the retired operation count.
	Instructions uint64
	// ScalarCycles is the cycle count of the plain five-stage model, for
	// speedup comparisons.
	ScalarCycles uint64
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Run executes prog on a fresh CPU (init may pre-load data) under the
// bundle model and returns trace and cycle counts. maxSteps bounds retired
// instructions.
func Run(cfg Config, prog *isa.Program, init func(*isa.CPU), maxSteps int) (*Result, error) {
	if cfg.IssueWidth <= 0 || cfg.MemPorts <= 0 {
		return nil, fmt.Errorf("vliw: invalid config %+v", cfg)
	}
	cpu := isa.NewCPU(prog)
	if init != nil {
		init(cpu)
	}
	t := trace.New(4096)
	cpu.Trace = t

	var (
		cycle     uint64 // current bundle cycle
		slotsUsed int
		memUsed   int
		bundles   uint64
		regReady  [isa.NumRegs]uint64
	)
	openBundle := func() {
		bundles++
		slotsUsed = 0
		memUsed = 0
	}
	openBundle()

	for steps := 0; steps < maxSteps; steps++ {
		if cpu.Halted() {
			break
		}
		idx := (cpu.PC - cpu.TextBase) / 4
		in, err := instrAt(prog, idx)
		if err != nil {
			return nil, err
		}

		// Earliest cycle this op can issue: after its sources are ready.
		earliest := cycle
		for _, r := range sources(in) {
			if regReady[r] > earliest {
				earliest = regReady[r]
			}
		}
		// Structural constraints: slot and memory port.
		if earliest == cycle && (slotsUsed >= cfg.IssueWidth || (in.Op.IsMem() && memUsed >= cfg.MemPorts)) {
			earliest = cycle + 1
		}
		if earliest > cycle {
			cycle = earliest
			openBundle()
		}
		slotsUsed++
		if in.Op.IsMem() {
			memUsed++
		}

		// Result latency.
		lat := uint64(1)
		switch in.Op {
		case isa.OpMul:
			lat = uint64(cfg.MulLatency)
		case isa.OpLw, isa.OpLh, isa.OpLb, isa.OpPop:
			lat = uint64(cfg.LoadLatency)
		case isa.OpDiv, isa.OpRem:
			lat = 16
		}
		if d, ok := dest(in); ok {
			regReady[d] = cycle + lat
		}
		if in.Op == isa.OpPush || in.Op == isa.OpPop {
			regReady[isa.SP] = cycle + 1
		}

		prevPC := cpu.PC
		if err := cpu.Step(); err != nil {
			return nil, err
		}
		// Taken control flow ends the bundle and pays the penalty.
		if cpu.PC != prevPC+4 {
			cycle += uint64(cfg.BranchPenalty) + 1
			openBundle()
		}
	}
	if !cpu.Halted() {
		return nil, isa.ErrRunaway
	}
	return &Result{
		Trace:        t,
		Cycles:       cycle + 1,
		Bundles:      bundles,
		Instructions: cpu.Instructions,
		ScalarCycles: cpu.Cycles,
	}, nil
}

func instrAt(p *isa.Program, idx uint32) (isa.Instr, error) {
	if idx >= uint32(len(p.Instrs)) {
		return isa.Instr{}, fmt.Errorf("vliw: PC index %d outside program", idx)
	}
	return p.Instrs[idx], nil
}

// sources returns the registers an instruction reads.
func sources(in isa.Instr) []isa.Reg {
	switch in.Op {
	case isa.OpNop, isa.OpHalt, isa.OpMovi, isa.OpLui, isa.OpJal:
		return nil
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri, isa.OpSlti,
		isa.OpLw, isa.OpLh, isa.OpLb, isa.OpJr:
		return []isa.Reg{in.Rs1}
	case isa.OpPush:
		return []isa.Reg{in.Rs1, isa.SP}
	case isa.OpPop:
		return []isa.Reg{isa.SP}
	default:
		return []isa.Reg{in.Rs1, in.Rs2}
	}
}

// dest returns the register an instruction writes, if any.
func dest(in isa.Instr) (isa.Reg, bool) {
	switch in.Op {
	case isa.OpNop, isa.OpHalt, isa.OpSw, isa.OpSh, isa.OpSb,
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpPush, isa.OpJr:
		return 0, false
	case isa.OpJal:
		return isa.LR, true
	default:
		return in.Rd, true
	}
}
