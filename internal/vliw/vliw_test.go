package vliw

import (
	"testing"

	"lpmem/internal/isa"
	"lpmem/internal/workloads"
)

// TestSameResultsAsScalar verifies the bundle model is a pure timing
// overlay: every kernel must produce the identical memory trace and pass
// its golden-model check when run under the VLIW engine.
func TestSameResultsAsScalar(t *testing.T) {
	for _, k := range workloads.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			inst := k.Build(1)
			scalar := workloads.MustRun(k.Build(1))
			res, err := Run(LxConfig(), inst.Prog, inst.Init, inst.MaxSteps)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trace.Len() != scalar.Trace.Len() {
				t.Fatalf("trace lengths differ: vliw=%d scalar=%d", res.Trace.Len(), scalar.Trace.Len())
			}
			for i := range res.Trace.Accesses {
				if res.Trace.Accesses[i] != scalar.Trace.Accesses[i] {
					t.Fatalf("access %d differs", i)
				}
			}
		})
	}
}

// TestVLIWFasterThanScalar: with 4 issue slots the bundle model must beat
// the sequential five-stage model on compute-heavy kernels.
func TestVLIWFasterThanScalar(t *testing.T) {
	for _, name := range []string{"fir", "matmul", "dct"} {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst := k.Build(1)
		res, err := Run(LxConfig(), inst.Prog, inst.Init, inst.MaxSteps)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles >= res.ScalarCycles {
			t.Errorf("%s: VLIW cycles %d >= scalar %d", name, res.Cycles, res.ScalarCycles)
		}
		// The greedy in-order model does not unroll or software-pipeline,
		// so serial address chains keep IPC below the machine width; it
		// must still clearly beat one op per cycle after stalls.
		if ipc := res.IPC(); ipc <= 0.6 {
			t.Errorf("%s: IPC = %.2f, want > 0.6", name, ipc)
		}
	}
}

// TestIssueWidthMonotonic: wider machines can only get faster.
func TestIssueWidthMonotonic(t *testing.T) {
	k, _ := workloads.ByName("fir")
	prev := uint64(1 << 62)
	for _, w := range []int{1, 2, 4, 8} {
		cfg := LxConfig()
		cfg.IssueWidth = w
		if w > 1 {
			cfg.MemPorts = 2
		}
		inst := k.Build(1)
		res, err := Run(cfg, inst.Prog, inst.Init, inst.MaxSteps)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles > prev {
			t.Errorf("width %d: cycles %d > narrower machine %d", w, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// TestInvalidConfig rejects nonsense.
func TestInvalidConfig(t *testing.T) {
	b := isa.NewBuilder()
	b.Halt()
	p := b.MustAssemble()
	if _, err := Run(Config{}, p, nil, 10); err == nil {
		t.Fatal("zero config must be rejected")
	}
}
