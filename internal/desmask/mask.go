package desmask

import (
	"math"
	"math/rand"

	"lpmem/internal/energy"
)

// Variant selects the protection scheme.
type Variant int

// Protection variants of the 2B.1 experiment.
const (
	// Unprotected: every operation's energy follows its operand weight.
	Unprotected Variant = iota
	// DualRailAll: the whole datapath is dual-rail — every operation
	// processes value and complement, doubling per-op energy but making
	// it value-independent.
	DualRailAll
	// SelectiveMask: only the key-dependent (critical) operations use the
	// secure two-operand instructions; the rest stays single-rail.
	SelectiveMask
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Unprotected:
		return "unprotected"
	case DualRailAll:
		return "dual-rail-all"
	case SelectiveMask:
		return "selective-mask"
	}
	return "?"
}

// EnergyParams is the per-operation energy model: Alpha scales the
// switched-capacitance (Hamming-weight) term, Beta is the fixed cost.
type EnergyParams struct {
	Alpha energy.PJ
	Beta  energy.PJ
}

// DefaultEnergyParams matches the usual smart-card datapath split where
// value-dependent switching is a large share of per-op energy.
func DefaultEnergyParams() EnergyParams { return EnergyParams{Alpha: 0.5, Beta: 4} }

// opEnergy charges one operation under the variant.
func opEnergy(p EnergyParams, variant Variant, critical bool, v uint64, width uint) energy.PJ {
	hw := energy.PJ(popcount64(v))
	full := energy.PJ(width)
	switch variant {
	case DualRailAll:
		// v and ^v together always toggle `width` bits; two rails.
		return 2*p.Beta + p.Alpha*full
	case SelectiveMask:
		if critical {
			return 2*p.Beta + p.Alpha*full
		}
		return p.Beta + p.Alpha*hw
	default:
		return p.Beta + p.Alpha*hw
	}
}

func popcount64(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Measurement is the outcome of encrypting many blocks under one variant.
type Measurement struct {
	Variant Variant
	// TotalEnergy is the summed energy over all encryptions.
	TotalEnergy energy.PJ
	// Leakage is |corr(per-encryption energy, HW of the first-round
	// key-mix value)| — the first-order power-analysis signal. ~0 means
	// the key-dependent behaviour is masked.
	Leakage float64
	// CriticalShare is the fraction of operations that were critical.
	CriticalShare float64
}

// Measure encrypts n random blocks under the given key and variant,
// accumulating energy and the leakage statistic.
func Measure(variant Variant, key uint64, n int, seed int64, p EnergyParams) Measurement {
	rng := rand.New(rand.NewSource(seed))
	// An attacker samples the power trace at the first-round critical
	// window (the classic DPA setup), so the leakage statistic uses the
	// energy of the first round's critical operations, not the whole run.
	const windowOps = 9 // key mix + 8 S-box outputs
	windows := make([]float64, n)
	signals := make([]float64, n)
	var total energy.PJ
	var critOps, allOps uint64
	for i := 0; i < n; i++ {
		block := rng.Uint64()
		var e, window energy.PJ
		critSeen := 0
		var signal float64
		Encrypt(block, key, func(critical bool, v uint64, width uint) {
			allOps++
			op := opEnergy(p, variant, critical, v, width)
			if critical {
				critOps++
				if critSeen == 0 {
					// The classic DPA target: the first-round key mix.
					signal = float64(popcount64(v))
				}
				if critSeen < windowOps {
					window += op
				}
				critSeen++
			}
			e += op
		})
		windows[i] = float64(window)
		signals[i] = signal
		total += e
	}
	return Measurement{
		Variant:       variant,
		TotalEnergy:   total,
		Leakage:       math.Abs(correlation(windows, signals)),
		CriticalShare: float64(critOps) / float64(allOps),
	}
}

// correlation returns Pearson's r (0 for degenerate inputs).
func correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MaskingOverheadSaving returns the paper's headline: how much less extra
// energy selective masking costs compared to full dual-rail, measured on
// the protection overhead (energy above the unprotected baseline).
func MaskingOverheadSaving(unprotected, dualRail, selective Measurement) float64 {
	overDual := float64(dualRail.TotalEnergy - unprotected.TotalEnergy)
	overSel := float64(selective.TotalEnergy - unprotected.TotalEnergy)
	if overDual <= 0 {
		return 0
	}
	return 100 * (overDual - overSel) / overDual
}
