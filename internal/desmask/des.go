// Package desmask implements DES encryption with value-dependent energy
// instrumentation and the selective energy-masking countermeasure of
// DATE'03 2B.1 (Saputra et al.: "Masking the Energy Behavior of DES
// Encryption").
//
// Power-analysis attacks on smart cards exploit that datapath energy
// depends on the data being processed (switched capacitance follows the
// Hamming weight of operands). The paper adds *secure instructions* that
// process an operand together with its complement, making the combined
// Hamming weight — and hence the energy — constant, and lets the compiler
// apply them selectively to the key-dependent operations only, instead of
// building the whole datapath dual-rail.
//
// This package provides: a complete, test-vector-verified DES; an energy
// instrument charging α·HW(v)+β per critical operation; three protection
// variants (unprotected, full dual-rail, selective masking); and the
// leakage metric (correlation between energy and a key-dependent
// intermediate) used to show masking works.
package desmask

// Standard DES tables.
var ip = [64]byte{
	58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
	62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
	57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
	61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
}

var fp = [64]byte{
	40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
	38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
	36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
	34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
}

var expansion = [48]byte{
	32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
	8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
	16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
	24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
}

var pPerm = [32]byte{
	16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
	2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
}

var pc1 = [56]byte{
	57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
	10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
	63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
	14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
}

var pc2 = [48]byte{
	14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
	23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
	41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
	44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
}

var shifts = [16]byte{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}

var sboxes = [8][64]byte{
	{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
		0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
		4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
		15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13},
	{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
		3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
		0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
		13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9},
	{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
		13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
		13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
		1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12},
	{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
		13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
		10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
		3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14},
	{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
		14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
		4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
		11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3},
	{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
		10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
		9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
		4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13},
	{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
		13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
		1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
		6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12},
	{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
		1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
		7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
		2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11},
}

// permute applies a DES bit permutation table (1-indexed, MSB-first
// convention) to the top inBits bits of v.
func permute(v uint64, table []byte, inBits uint) uint64 {
	var out uint64
	for _, pos := range table {
		out <<= 1
		out |= v >> (inBits - uint(pos)) & 1
	}
	return out
}

// KeySchedule derives the 16 round keys (48 bits each).
func KeySchedule(key uint64) [16]uint64 {
	var ks [16]uint64
	v := permute(key, pc1[:], 64) // 56 bits
	c := uint32(v>>28) & 0x0FFFFFFF
	d := uint32(v) & 0x0FFFFFFF
	rol28 := func(x uint32, n byte) uint32 {
		return (x<<n | x>>(28-n)) & 0x0FFFFFFF
	}
	for r := 0; r < 16; r++ {
		c = rol28(c, shifts[r])
		d = rol28(d, shifts[r])
		cd := uint64(c)<<28 | uint64(d)
		ks[r] = permute(cd, pc2[:], 56)
	}
	return ks
}

// controlOpsPerPermutation models the loop-control and address-generation
// instructions a software DES spends on each bit permutation when run on a
// five-stage embedded core; their operands (indices, masks, table
// addresses) are key-independent, so they never need masking.
const controlOpsPerPermutation = 18

// feistel is the DES round function; the observer (if non-nil) sees every
// executed operation: critical ones carry key-dependent values, control
// ones carry key-independent indices and addresses.
func feistel(r uint32, subkey uint64, obs func(critical bool, v uint64, bitsWide uint)) uint32 {
	emitControl := func(n int) {
		if obs == nil {
			return
		}
		for i := 0; i < n; i++ {
			// Loop counters and table addresses: small, key-independent.
			obs(false, uint64(5+i%7), 32)
		}
	}
	emitControl(controlOpsPerPermutation)     // expansion permutation code
	e := permute(uint64(r), expansion[:], 32) // 48 bits
	x := e ^ subkey                           // key mixing: critical
	if obs != nil {
		obs(true, x, 48)
	}
	var sOut uint32
	for i := 0; i < 8; i++ {
		emitControl(3) // extract six bits, form row/column, compute address
		six := byte(x >> (42 - 6*uint(i)) & 0x3F)
		row := six>>4&2 | six&1
		col := six >> 1 & 0xF
		nib := sboxes[i][row*16+col]
		if obs != nil {
			obs(true, uint64(nib), 4) // S-box output: critical
		}
		sOut = sOut<<4 | uint32(nib)
	}
	emitControl(controlOpsPerPermutation) // P permutation code
	p := uint32(permute(uint64(sOut), pPerm[:], 32))
	if obs != nil {
		obs(false, uint64(p), 32) // permuted word write-back
	}
	return p
}

// Encrypt runs one DES encryption, reporting intermediates to obs.
func Encrypt(block, key uint64, obs func(critical bool, v uint64, bitsWide uint)) uint64 {
	ks := KeySchedule(key)
	v := permute(block, ip[:], 64)
	l := uint32(v >> 32)
	r := uint32(v)
	for round := 0; round < 16; round++ {
		f := feistel(r, ks[round], obs)
		l, r = r, l^f
		if obs != nil {
			obs(false, uint64(r), 32) // register update: non-critical
		}
	}
	pre := uint64(r)<<32 | uint64(l)
	return permute(pre, fp[:], 64)
}
