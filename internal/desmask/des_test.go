package desmask

import (
	"math/rand"
	"testing"
)

// TestDESKnownVector verifies the implementation against the classic
// worked example (Grabbe/FIPS-46 walkthrough).
func TestDESKnownVector(t *testing.T) {
	const (
		key   uint64 = 0x133457799BBCDFF1
		plain uint64 = 0x0123456789ABCDEF
		want  uint64 = 0x85E813540F0AB405
	)
	if got := Encrypt(plain, key, nil); got != want {
		t.Fatalf("DES(%#x) = %#x, want %#x", plain, got, want)
	}
}

// TestDESSecondVector uses the all-zero FIPS vector.
func TestDESSecondVector(t *testing.T) {
	// DES with key 0x0101010101010101 of block 0x0 -> 0x8CA64DE9C1B123A7.
	if got := Encrypt(0, 0x0101010101010101, nil); got != 0x8CA64DE9C1B123A7 {
		t.Fatalf("DES(0) = %#x", got)
	}
}

func TestKeyScheduleFirstKey(t *testing.T) {
	ks := KeySchedule(0x133457799BBCDFF1)
	// K1 from the classic walkthrough: 000110 110000 001011 101111
	// 111111 000111 000001 110010.
	if ks[0] != 0x1B02EFFC7072 {
		t.Fatalf("K1 = %#x, want 0x1B02EFFC7072", ks[0])
	}
}

// TestObserverSeesCriticalOps: the instrument must fire for key mixes and
// S-box lookups in every round.
func TestObserverSeesCriticalOps(t *testing.T) {
	var crit, total int
	Encrypt(0x0123456789ABCDEF, 0x133457799BBCDFF1, func(critical bool, v uint64, w uint) {
		total++
		if critical {
			crit++
		}
	})
	// Per round: 1 key mix + 8 S-box outputs are critical.
	if crit != 16*9 {
		t.Fatalf("critical ops = %d, want %d", crit, 16*9)
	}
	// Control/addressing code dominates the instruction count, as on a
	// real core; the critical share must be well under a quarter.
	if share := float64(crit) / float64(total); share > 0.25 {
		t.Fatalf("critical share = %.2f, want < 0.25", share)
	}
}

// TestUnprotectedLeaks: energy of the unprotected implementation must
// correlate with the key-dependent intermediate; the masked variants must
// not.
func TestUnprotectedLeaks(t *testing.T) {
	const key = 0x133457799BBCDFF1
	p := DefaultEnergyParams()
	un := Measure(Unprotected, key, 400, 1, p)
	dual := Measure(DualRailAll, key, 400, 1, p)
	sel := Measure(SelectiveMask, key, 400, 1, p)
	t.Logf("leakage: unprotected=%.3f dual=%.3f selective=%.3f", un.Leakage, dual.Leakage, sel.Leakage)
	if un.Leakage < 0.5 {
		t.Errorf("unprotected leakage = %.3f, expected a clear signal", un.Leakage)
	}
	if dual.Leakage > 0.05 {
		t.Errorf("dual-rail leakage = %.3f, expected ~0", dual.Leakage)
	}
	if sel.Leakage > 0.05 {
		t.Errorf("selective-mask leakage = %.3f, expected ~0", sel.Leakage)
	}
}

// TestSelectiveCheaperThanDualRail reproduces the headline: the energy
// *overhead* of selective masking is far below full dual-rail.
func TestSelectiveCheaperThanDualRail(t *testing.T) {
	const key = 0x133457799BBCDFF1
	p := DefaultEnergyParams()
	un := Measure(Unprotected, key, 200, 2, p)
	dual := Measure(DualRailAll, key, 200, 2, p)
	sel := Measure(SelectiveMask, key, 200, 2, p)
	if dual.TotalEnergy <= un.TotalEnergy || sel.TotalEnergy <= un.TotalEnergy {
		t.Fatal("protection must cost energy")
	}
	if sel.TotalEnergy >= dual.TotalEnergy {
		t.Fatal("selective masking must be cheaper than full dual-rail")
	}
	saving := MaskingOverheadSaving(un, dual, sel)
	t.Logf("protection-overhead saving of selective vs dual-rail: %.1f%% (paper: 83%%)", saving)
	if saving < 70 {
		t.Errorf("overhead saving = %.1f%%, want >= 70%% (paper: 83%%)", saving)
	}
}

// TestMeasureDeterministic: same seed, same result.
func TestMeasureDeterministic(t *testing.T) {
	a := Measure(Unprotected, 0xAABB, 50, 9, DefaultEnergyParams())
	b := Measure(Unprotected, 0xAABB, 50, 9, DefaultEnergyParams())
	if a.TotalEnergy != b.TotalEnergy || a.Leakage != b.Leakage {
		t.Fatal("Measure is not deterministic")
	}
}

// TestEncryptDecryptConsistency: DES with reversed key schedule is its own
// inverse; spot check via a second encryption equality on random blocks
// (two different keys produce different ciphertexts).
func TestEncryptionVariability(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		b := r.Uint64()
		c1 := Encrypt(b, 0x133457799BBCDFF1, nil)
		c2 := Encrypt(b, 0x0123456789ABCDEF, nil)
		if c1 == c2 {
			t.Fatalf("different keys produced equal ciphertext for %#x", b)
		}
	}
}
