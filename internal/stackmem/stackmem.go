// Package stackmem implements the stack-based on-chip memory organization
// of DATE'03 10F.3 (Mamidipaka & Dutt: "On-Chip Stack Based Memory
// Organization for Low Power Embedded Architectures").
//
// Function calls save return addresses and callee-saved registers on the
// runtime stack; in call-heavy embedded code this traffic is a significant
// share of all data-cache accesses. The proposal routes stack accesses to
// a small dedicated on-chip SRAM instead of the L1 data cache: the SRAM is
// far cheaper per access than a set-associative lookup, never misses (the
// hot stack top fits), and removing stack traffic from the cache also
// removes the conflict misses it caused.
package stackmem

import (
	"fmt"

	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/trace"
)

// Config describes the split organization.
type Config struct {
	// StackLo and StackHi delimit the stack region (inclusive lo,
	// exclusive hi).
	StackLo, StackHi uint32
	// StackSRAM is the dedicated stack memory size in bytes.
	StackSRAM uint32
	// Cache is the L1 D-cache geometry.
	Cache cache.Config
}

// Result compares the baseline (everything through the D-cache) against
// the split organization.
type Result struct {
	// StackFraction is the share of data accesses that hit the stack
	// region.
	StackFraction float64
	// BaseCacheEnergy is the L1 D-cache energy with all traffic.
	BaseCacheEnergy energy.PJ
	// SplitCacheEnergy is the L1 D-cache energy once stack traffic is
	// diverted.
	SplitCacheEnergy energy.PJ
	// StackEnergy is the energy of the dedicated stack SRAM.
	StackEnergy energy.PJ
	// BaseMisses and SplitMisses expose the conflict-miss side effect.
	BaseMisses, SplitMisses uint64
}

// CacheSaving returns the percent reduction in L1 D-cache energy — the
// paper's headline metric (up to 32.5%).
func (r Result) CacheSaving() float64 {
	if r.BaseCacheEnergy == 0 {
		return 0
	}
	return 100 * float64(r.BaseCacheEnergy-r.SplitCacheEnergy) / float64(r.BaseCacheEnergy)
}

// TotalSaving returns the percent reduction counting the stack SRAM too.
func (r Result) TotalSaving() float64 {
	if r.BaseCacheEnergy == 0 {
		return 0
	}
	return 100 * float64(r.BaseCacheEnergy-(r.SplitCacheEnergy+r.StackEnergy)) /
		float64(r.BaseCacheEnergy)
}

// Simulate replays the data accesses of tr under both organizations.
// Cache access energy is charged per probe from cm (all ways probed); the
// stack SRAM is charged from mm at its own (small) size.
func Simulate(tr *trace.Trace, cfg Config, cm energy.CacheModel, mm energy.MemoryModel) (Result, error) {
	if cfg.StackLo >= cfg.StackHi {
		return Result{}, fmt.Errorf("stackmem: empty stack region [%#x,%#x)", cfg.StackLo, cfg.StackHi)
	}
	if err := mm.Validate(); err != nil {
		return Result{}, fmt.Errorf("stackmem: %w", err)
	}
	baseCache, err := cache.New(cfg.Cache, nil)
	if err != nil {
		return Result{}, err
	}
	splitCache, err := cache.New(cfg.Cache, nil)
	if err != nil {
		return Result{}, err
	}
	perProbe := cm.ConventionalAccess(cfg.Cache.Ways)
	var res Result
	var stackAccesses, dataAccesses uint64
	var stackE energy.PJ
	for _, a := range tr.Accesses {
		if a.Kind == trace.Fetch {
			continue
		}
		dataAccesses++
		isWrite := a.Kind == trace.Write
		baseCache.Access(a.Addr, isWrite, a.Width, a.Value)
		res.BaseCacheEnergy += perProbe
		if a.Addr >= cfg.StackLo && a.Addr < cfg.StackHi {
			stackAccesses++
			if isWrite {
				stackE += mm.WriteEnergy(cfg.StackSRAM)
			} else {
				stackE += mm.ReadEnergy(cfg.StackSRAM)
			}
			continue
		}
		splitCache.Access(a.Addr, isWrite, a.Width, a.Value)
		res.SplitCacheEnergy += perProbe
	}
	if dataAccesses > 0 {
		res.StackFraction = float64(stackAccesses) / float64(dataAccesses)
	}
	res.StackEnergy = stackE
	res.BaseMisses = baseCache.Stats().Misses
	res.SplitMisses = splitCache.Stats().Misses
	return res, nil
}
