package stackmem

import (
	"testing"

	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/isa"
	"lpmem/internal/workloads"
)

func defaultConfig() Config {
	return Config{
		StackLo:   isa.DefaultStackTop - isa.DefaultStackSize,
		StackHi:   isa.DefaultStackTop + 16,
		StackSRAM: 2048,
		Cache:     cache.Config{Sets: 64, Ways: 4, LineSize: 32, WriteBack: true, WriteAllocate: true},
	}
}

func TestRejectsEmptyRegion(t *testing.T) {
	cfg := defaultConfig()
	cfg.StackHi = cfg.StackLo
	k, _ := workloads.ByName("fibcall")
	res := workloads.MustRun(k.Build(1))
	if _, err := Simulate(res.Trace, cfg, energy.DefaultCacheModel(), energy.DefaultMemoryModel()); err == nil {
		t.Fatal("empty stack region must be rejected")
	}
}

// TestCallHeavyKernelSavesBig: fibcall's traffic is dominated by stack
// pushes/pops, so the cache-energy reduction must be large, in the spirit
// of the paper's 32.5% best case.
func TestCallHeavyKernelSavesBig(t *testing.T) {
	k, _ := workloads.ByName("fibcall")
	res := workloads.MustRun(k.Build(1))
	r, err := Simulate(res.Trace, defaultConfig(), energy.DefaultCacheModel(), energy.DefaultMemoryModel())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stackFrac=%.2f cacheSaving=%.1f%% totalSaving=%.1f%% misses %d->%d",
		r.StackFraction, r.CacheSaving(), r.TotalSaving(), r.BaseMisses, r.SplitMisses)
	if r.StackFraction < 0.5 {
		t.Errorf("fibcall stack fraction = %.2f, want > 0.5", r.StackFraction)
	}
	if r.CacheSaving() < 30 {
		t.Errorf("cache saving = %.1f%%, want >= 30%% on call-heavy code", r.CacheSaving())
	}
	if r.TotalSaving() <= 0 {
		t.Errorf("net saving must be positive, got %.1f%%", r.TotalSaving())
	}
}

// TestSplitNeverIncreasesMisses: removing stack traffic can only reduce
// cache pressure.
func TestSplitNeverIncreasesMisses(t *testing.T) {
	for _, k := range workloads.All() {
		res := workloads.MustRun(k.Build(1))
		r, err := Simulate(res.Trace, defaultConfig(), energy.DefaultCacheModel(), energy.DefaultMemoryModel())
		if err != nil {
			t.Fatal(err)
		}
		if r.SplitMisses > r.BaseMisses {
			t.Errorf("%s: split misses %d > base %d", k.Name, r.SplitMisses, r.BaseMisses)
		}
		if r.CacheSaving() < 0 {
			t.Errorf("%s: negative cache saving %.1f%%", k.Name, r.CacheSaving())
		}
	}
}

// TestCacheSavingTracksStackFraction: by construction, the D-cache energy
// reduction equals the stack fraction of accesses (probe energy is
// per-access uniform).
func TestCacheSavingTracksStackFraction(t *testing.T) {
	k, _ := workloads.ByName("fibcall")
	res := workloads.MustRun(k.Build(1))
	r, err := Simulate(res.Trace, defaultConfig(), energy.DefaultCacheModel(), energy.DefaultMemoryModel())
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * r.StackFraction
	if got := r.CacheSaving(); got < want-0.5 || got > want+0.5 {
		t.Errorf("cache saving %.2f%% should equal stack fraction %.2f%%", got, want)
	}
}
