// Package ssta implements statistical static timing analysis with
// linear-time bounds, reproducing DATE'03 1F.3 (Agarwal, Blaauw, Zolotov,
// Vrudhula: "Statistical Timing Analysis Using Bounds").
//
// With within-die process variation, gate delays are random variables and
// the circuit delay is the maximum over all paths — a quantity whose exact
// distribution is exponential to compute because reconvergent paths share
// gates and are therefore correlated. The paper's contribution is a pair
// of *provable bounds* computed in a single linear topological pass over
// discretized arrival-time distributions:
//
//   - upper bound: at every merge, treat the arriving distributions as
//     independent, so P(max ≤ t) := Π P(aᵢ ≤ t). For positively
//     correlated arrivals (the only correlation reconvergent fanout can
//     produce) the true P(max ≤ t) is ≥ the product, so the resulting
//     variable stochastically dominates the true delay: an upper bound.
//
//   - lower bound: at every merge use P(max ≤ t) := min P(aᵢ ≤ t), the
//     Fréchet upper CDF bound, which the true max CDF can never exceed;
//     the resulting variable is stochastically dominated by the true
//     delay: a lower bound.
//
// The exact distribution is estimated by Monte Carlo for validation; the
// paper's result — the bounds bracket the true delay with small error on
// benchmark circuits — is reproduced by the E14 experiment.
package ssta

import (
	"fmt"
	"math"
)

// Dist is a probability distribution represented by its CDF sampled on a
// uniform time grid: CDF[i] = P(X <= T0 + i*Step).
type Dist struct {
	T0   float64
	Step float64
	CDF  []float64
}

// NewGrid allocates a zeroed CDF grid.
func NewGrid(t0, step float64, n int) *Dist {
	return &Dist{T0: t0, Step: step, CDF: make([]float64, n)}
}

// Point returns a degenerate distribution at value v on the given grid.
func Point(t0, step float64, n int, v float64) *Dist {
	d := NewGrid(t0, step, n)
	for i := range d.CDF {
		if t0+float64(i)*step >= v {
			d.CDF[i] = 1
		}
	}
	return d
}

// Gaussian returns a normal(mu, sigma) distribution truncated to the grid.
func Gaussian(t0, step float64, n int, mu, sigma float64) *Dist {
	d := NewGrid(t0, step, n)
	for i := range d.CDF {
		t := t0 + float64(i)*step
		if sigma <= 0 {
			if t >= mu {
				d.CDF[i] = 1
			}
			continue
		}
		d.CDF[i] = 0.5 * (1 + math.Erf((t-mu)/(sigma*math.Sqrt2)))
	}
	return d
}

// clone copies the distribution.
func (d *Dist) clone() *Dist {
	out := &Dist{T0: d.T0, Step: d.Step, CDF: make([]float64, len(d.CDF))}
	copy(out.CDF, d.CDF)
	return out
}

// MaxIndep returns the distribution of max(a, b) under the independence
// assumption: CDF = CDFa * CDFb (the paper's upper-bound merge).
func MaxIndep(a, b *Dist) (*Dist, error) {
	if err := compatible(a, b); err != nil {
		return nil, err
	}
	out := a.clone()
	for i := range out.CDF {
		out.CDF[i] *= b.CDF[i]
	}
	return out, nil
}

// MaxFrechet returns the Fréchet bound merge: CDF = min(CDFa, CDFb) (the
// paper's lower-bound merge).
func MaxFrechet(a, b *Dist) (*Dist, error) {
	if err := compatible(a, b); err != nil {
		return nil, err
	}
	out := a.clone()
	for i := range out.CDF {
		if b.CDF[i] < out.CDF[i] {
			out.CDF[i] = b.CDF[i]
		}
	}
	return out, nil
}

// AddPDF returns the distribution of X + D where D has the given discrete
// PDF on the same step grid (pdf[k] = P(D == k*Step + dT0)).
func (d *Dist) AddPDF(dT0 float64, pdf []float64) *Dist {
	n := len(d.CDF)
	out := &Dist{T0: d.T0 + dT0, Step: d.Step, CDF: make([]float64, n)}
	// CDF_out(t) = sum_k pdf[k] * CDF_in(t - k*step); grid-aligned.
	for i := 0; i < n; i++ {
		acc := 0.0
		for k, p := range pdf {
			if p == 0 {
				continue
			}
			j := i - k
			if j >= 0 {
				acc += p * d.CDF[j]
			}
		}
		out.CDF[i] = acc
	}
	return out
}

// Quantile returns the smallest grid time with CDF >= q.
func (d *Dist) Quantile(q float64) float64 {
	for i, c := range d.CDF {
		if c >= q {
			return d.T0 + float64(i)*d.Step
		}
	}
	return d.T0 + float64(len(d.CDF))*d.Step
}

// Mean returns the grid approximation of E[X].
func (d *Dist) Mean() float64 {
	// E[X] = T0 + Step * sum_i (1 - CDF[i]) over the grid.
	sum := 0.0
	for _, c := range d.CDF {
		sum += 1 - c
	}
	return d.T0 + d.Step*sum
}

// StochasticallyDominates reports whether d >= other in the usual
// stochastic order (CDF of d is pointwise <= CDF of other), up to tol.
func (d *Dist) StochasticallyDominates(other *Dist, tol float64) bool {
	//lint:allow floatcompare grid-identity check; compatible grids share literal construction so equality is exact
	if d.T0 != other.T0 || d.Step != other.Step || len(d.CDF) != len(other.CDF) {
		return false
	}
	for i := range d.CDF {
		if d.CDF[i] > other.CDF[i]+tol {
			return false
		}
	}
	return true
}

func compatible(a, b *Dist) error {
	//lint:allow floatcompare grid-identity check; compatible grids share literal construction so equality is exact
	if a.T0 != b.T0 || a.Step != b.Step || len(a.CDF) != len(b.CDF) {
		return fmt.Errorf("ssta: incompatible grids (%g/%g/%d vs %g/%g/%d)",
			a.T0, a.Step, len(a.CDF), b.T0, b.Step, len(b.CDF))
	}
	return nil
}

// GaussPDF discretizes a normal(mu, sigma) onto k steps of the given
// width, returning the offset t0 and the pdf weights (normalized).
func GaussPDF(step, mu, sigma float64, k int) (t0 float64, pdf []float64) {
	t0 = mu - 3*sigma
	pdf = make([]float64, k)
	total := 0.0
	for i := range pdf {
		t := t0 + float64(i)*step
		var p float64
		if sigma <= 0 {
			if math.Abs(t-mu) < step/2 {
				p = 1
			}
		} else {
			p = math.Exp(-(t - mu) * (t - mu) / (2 * sigma * sigma))
		}
		pdf[i] = p
		total += p
	}
	if total == 0 {
		pdf[0] = 1
		total = 1
	}
	for i := range pdf {
		pdf[i] /= total
	}
	return t0, pdf
}
