package ssta

import (
	"math"
	"testing"
)

func TestGaussianCDFShape(t *testing.T) {
	d := Gaussian(0, 0.1, 200, 10, 1)
	if got := d.Quantile(0.5); math.Abs(got-10) > 0.2 {
		t.Fatalf("median = %f, want ~10", got)
	}
	if got := d.Mean(); math.Abs(got-10) > 0.2 {
		t.Fatalf("mean = %f, want ~10", got)
	}
	// CDF must be nondecreasing.
	for i := 1; i < len(d.CDF); i++ {
		if d.CDF[i] < d.CDF[i-1]-1e-12 {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestPointDist(t *testing.T) {
	d := Point(0, 0.5, 20, 3.2)
	if got := d.Quantile(0.99); math.Abs(got-3.5) > 0.51 {
		t.Fatalf("point quantile = %f", got)
	}
}

func TestMaxMergesOrdering(t *testing.T) {
	a := Gaussian(0, 0.05, 400, 5, 0.5)
	b := Gaussian(0, 0.05, 400, 5.5, 0.5)
	indep, err := MaxIndep(a, b)
	if err != nil {
		t.Fatal(err)
	}
	frechet, err := MaxFrechet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Independence merge dominates the Fréchet merge.
	if !indep.StochasticallyDominates(frechet, 1e-12) {
		t.Fatal("independent max must dominate Fréchet max")
	}
	// Both dominate each input.
	if !frechet.StochasticallyDominates(b, 1e-12) {
		t.Fatal("any max bound must dominate its inputs")
	}
}

func TestMergeGridMismatch(t *testing.T) {
	a := Gaussian(0, 0.05, 100, 1, 0.1)
	b := Gaussian(0, 0.1, 100, 1, 0.1)
	if _, err := MaxIndep(a, b); err == nil {
		t.Fatal("grid mismatch must error")
	}
}

func TestAddPDFShiftsMean(t *testing.T) {
	d := Point(0, 0.1, 400, 2)
	t0, pdf := GaussPDF(0.1, 3, 0.2, 20)
	sum := d.AddPDF(t0, pdf)
	if got := sum.Mean(); math.Abs(got-5) > 0.3 {
		t.Fatalf("mean after add = %f, want ~5", got)
	}
}

func TestValidateCatchesBadCircuits(t *testing.T) {
	bad := &Circuit{Gates: []Gate{{Mu: 1, Fanin: []int{0}}}, Outputs: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("self-fanin must be rejected")
	}
	noOut := &Circuit{Gates: []Gate{{Mu: 1}}}
	if err := noOut.Validate(); err == nil {
		t.Fatal("no outputs must be rejected")
	}
}

// TestBoundsBracketMonteCarlo is the paper's core claim: the linear-time
// bounds bracket the exact (Monte Carlo) delay distribution, and the
// bracket is tight.
func TestBoundsBracketMonteCarlo(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := RandomCircuit(seed, 8, 6)
		grid := DefaultGridFor(c)
		lo, hi, err := Bounds(c, grid)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarlo(c, 4000, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := SampleQuantile(mc, q)
			l := lo.Quantile(q)
			h := hi.Quantile(q)
			if l > exact+2*grid.Step {
				t.Errorf("seed %d q%.2f: lower bound %f above exact %f", seed, q, l, exact)
			}
			if h < exact-2*grid.Step {
				t.Errorf("seed %d q%.2f: upper bound %f below exact %f", seed, q, h, exact)
			}
			if spread := (h - l) / exact; spread > 0.25 {
				t.Errorf("seed %d q%.2f: bounds too loose (%.1f%%)", seed, q, 100*spread)
			}
		}
	}
}

// TestBoundsExactOnChain: a pure chain has no reconvergence, so both
// bounds collapse to the same distribution.
func TestBoundsExactOnChain(t *testing.T) {
	c := &Circuit{Outputs: []int{4}}
	for i := 0; i < 5; i++ {
		g := Gate{Mu: 2, Sigma: 0.1}
		if i > 0 {
			g.Fanin = []int{i - 1}
		}
		c.Gates = append(c.Gates, g)
	}
	grid := DefaultGridFor(c)
	lo, hi, err := Bounds(c, grid)
	if err != nil {
		t.Fatal(err)
	}
	// Direction-aware rounding deliberately opens up to one grid step of
	// gap per gate, so the bounds coincide only up to that budget.
	budget := 2 * float64(len(c.Gates)) * grid.Step
	for _, q := range []float64{0.5, 0.95} {
		if d := math.Abs(lo.Quantile(q) - hi.Quantile(q)); d > budget {
			t.Errorf("chain bounds differ at q%.2f by %f (budget %f)", q, d, budget)
		}
	}
	// And both match the analytic sum: N(10, sqrt(5)*0.1).
	want := 10.0
	if got := hi.Quantile(0.5); math.Abs(got-want) > 0.15 {
		t.Errorf("chain median = %f, want ~%f", got, want)
	}
}

// TestMonteCarloDeterministic for fixed seeds.
func TestMonteCarloDeterministic(t *testing.T) {
	c := RandomCircuit(2, 4, 4)
	a, _ := MonteCarlo(c, 500, 7)
	b, _ := MonteCarlo(c, 500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Monte Carlo not deterministic")
		}
	}
}
