package ssta

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Gate is one node of the timing graph with a Gaussian delay.
type Gate struct {
	// Mu and Sigma parameterize the gate's delay distribution.
	Mu, Sigma float64
	// Fanin lists driving gate indices; empty means primary input.
	Fanin []int
}

// Circuit is a combinational timing graph. Outputs lists the indices of
// the gates whose arrival time defines circuit delay.
type Circuit struct {
	Gates   []Gate
	Outputs []int
}

// Validate checks indices and acyclicity.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("ssta: gate %d has bad fanin %d", i, f)
			}
			if f >= i {
				return fmt.Errorf("ssta: gate %d fanin %d not topologically ordered", i, f)
			}
		}
		if g.Mu < 0 || g.Sigma < 0 {
			return fmt.Errorf("ssta: gate %d has negative delay parameters", i)
		}
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Gates) {
			return fmt.Errorf("ssta: bad output index %d", o)
		}
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("ssta: circuit has no outputs")
	}
	return nil
}

// Grid describes the discretization used by the bound propagation.
type Grid struct {
	T0   float64
	Step float64
	N    int
}

// DefaultGridFor sizes a grid from the circuit's worst-case depth.
func DefaultGridFor(c *Circuit) Grid {
	// Longest mean path + 6 sigma margin.
	arr := make([]float64, len(c.Gates))
	sig := make([]float64, len(c.Gates))
	maxT := 0.0
	for i, g := range c.Gates {
		in, insig := 0.0, 0.0
		for _, f := range g.Fanin {
			if arr[f] > in {
				in, insig = arr[f], sig[f]
			}
		}
		arr[i] = in + g.Mu
		sig[i] = insig + g.Sigma
		if t := arr[i] + 6*sig[i]; t > maxT {
			maxT = t
		}
	}
	step := maxT / 400
	if step <= 0 {
		step = 0.01
	}
	return Grid{T0: 0, Step: step, N: 440}
}

// Bounds propagates the lower and upper bound distributions through the
// circuit in one topological pass each and returns the circuit-level
// bounds (merged over all outputs with the same rule).
func Bounds(c *Circuit, grid Grid) (lower, upper *Dist, err error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	merge := func(kind int, a, b *Dist) (*Dist, error) {
		if kind == 0 {
			return MaxFrechet(a, b)
		}
		return MaxIndep(a, b)
	}
	var results [2]*Dist
	for kind := 0; kind < 2; kind++ {
		arr := make([]*Dist, len(c.Gates))
		for i, g := range c.Gates {
			var in *Dist
			if len(g.Fanin) == 0 {
				in = Point(grid.T0, grid.Step, grid.N, 0)
			} else {
				in = arr[g.Fanin[0]]
				for _, f := range g.Fanin[1:] {
					in, err = merge(kind, in, arr[f])
					if err != nil {
						return nil, nil, err
					}
				}
			}
			// Add the gate's own delay.
			k := int(6*g.Sigma/grid.Step) + 2
			dT0, pdf := GaussPDF(grid.Step, g.Mu, g.Sigma, k)
			shifted := in.AddPDF(dT0, pdf)
			// Re-anchor onto the common grid with direction-aware
			// rounding so discretization can never flip a bound:
			// the lower bound rounds its CDF up (delay down), the
			// upper bound rounds its CDF down (delay up).
			arr[i] = reanchor(shifted, grid, kind == 0)
		}
		out := arr[c.Outputs[0]]
		for _, o := range c.Outputs[1:] {
			out, err = merge(kind, out, arr[o])
			if err != nil {
				return nil, nil, err
			}
		}
		results[kind] = out
	}
	return results[0], results[1], nil
}

// reanchor resamples a distribution onto the canonical grid. roundUp
// selects conservative rounding for the lower bound (CDF rounded up, so
// the reanchored variable is stochastically no larger); with roundUp
// false the CDF is rounded down (variable no smaller), as the upper bound
// requires.
func reanchor(d *Dist, grid Grid, roundUp bool) *Dist {
	out := NewGrid(grid.T0, grid.Step, grid.N)
	for i := range out.CDF {
		t := grid.T0 + float64(i)*grid.Step
		x := (t - d.T0) / d.Step
		var j int
		if roundUp {
			j = int(math.Ceil(x))
		} else {
			j = int(math.Floor(x))
		}
		switch {
		case j < 0:
			out.CDF[i] = 0
		case j >= len(d.CDF):
			out.CDF[i] = 1
		default:
			out.CDF[i] = d.CDF[j]
		}
	}
	return out
}

// MonteCarlo estimates the exact circuit delay distribution by sampling
// all gate delays jointly (which captures every reconvergence correlation)
// and returns the samples sorted ascending.
func MonteCarlo(c *Circuit, samples int, seed int64) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, samples)
	arr := make([]float64, len(c.Gates))
	for s := 0; s < samples; s++ {
		for i, g := range c.Gates {
			in := 0.0
			for _, f := range g.Fanin {
				if arr[f] > in {
					in = arr[f]
				}
			}
			d := g.Mu + rng.NormFloat64()*g.Sigma
			if d < 0 {
				d = 0
			}
			arr[i] = in + d
		}
		best := 0.0
		for _, o := range c.Outputs {
			if arr[o] > best {
				best = arr[o]
			}
		}
		out[s] = best
	}
	sort.Float64s(out)
	return out, nil
}

// SampleQuantile returns the q-quantile of sorted Monte Carlo samples.
func SampleQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// RandomCircuit generates a layered benchmark timing graph with heavy
// reconvergent fanout (every gate draws fanin from the previous layer),
// the structure that makes exact SSTA exponential.
func RandomCircuit(seed int64, layers, width int) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := &Circuit{}
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			g := Gate{
				Mu:    1 + rng.Float64(),
				Sigma: 0.05 + 0.15*rng.Float64(),
			}
			if l > 0 {
				prev := (l - 1) * width
				nf := 1 + rng.Intn(3)
				seen := map[int]bool{}
				for len(g.Fanin) < nf {
					f := prev + rng.Intn(width)
					if !seen[f] {
						seen[f] = true
						g.Fanin = append(g.Fanin, f)
					}
				}
				sort.Ints(g.Fanin)
			}
			c.Gates = append(c.Gates, g)
		}
	}
	for w := 0; w < width; w++ {
		c.Outputs = append(c.Outputs, (layers-1)*width+w)
	}
	return c
}
