package checkpoint

import "testing"

func task() Task {
	return Task{Compute: 100, Deadline: 140, CheckpointCost: 0.8, FaultRate: 0.05}
}

func TestSimulateRejectsBadTasks(t *testing.T) {
	bad := []Task{
		{Compute: 0, Deadline: 10, CheckpointCost: 1, FaultRate: 0.1},
		{Compute: 10, Deadline: 5, CheckpointCost: 1, FaultRate: 0.1},
		{Compute: 10, Deadline: 20, CheckpointCost: 0, FaultRate: 0.1},
		{Compute: 10, Deadline: 20, CheckpointCost: 1, FaultRate: 0},
	}
	for _, tk := range bad {
		if _, err := Simulate(tk, Adaptive, 10, 1); err == nil {
			t.Errorf("task %+v should be rejected", tk)
		}
	}
}

// TestAdaptiveBeatsFixedOnCompletion reproduces the first headline: when
// the actual fault environment differs from the design-time assumption,
// the adaptive policy (which tracks observed faults) completes by the
// deadline more often than the mis-tuned fixed interval.
func TestAdaptiveBeatsFixedOnCompletion(t *testing.T) {
	tk := task()
	tk.NominalRate = tk.FaultRate / 4 // designer underestimated faults 4x
	fixed, err := Simulate(tk, FixedInterval, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Simulate(tk, Adaptive, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("completion (4x nominal faults): fixed=%.3f adaptive=%.3f",
		fixed.CompletionProb, adaptive.CompletionProb)
	if adaptive.CompletionProb <= fixed.CompletionProb {
		t.Errorf("adaptive (%.3f) should beat the mis-tuned fixed policy (%.3f)",
			adaptive.CompletionProb, fixed.CompletionProb)
	}
}

// TestAdaptiveMatchesFixedWhenTuned: when the nominal rate is correct, the
// adaptive policy must not be materially worse than the optimal fixed one.
func TestAdaptiveMatchesFixedWhenTuned(t *testing.T) {
	tk := task()
	fixed, err := Simulate(tk, FixedInterval, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Simulate(tk, Adaptive, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("completion (tuned): fixed=%.3f adaptive=%.3f", fixed.CompletionProb, adaptive.CompletionProb)
	if adaptive.CompletionProb < fixed.CompletionProb-0.05 {
		t.Errorf("adaptive (%.3f) should stay within 5pp of the tuned fixed policy (%.3f)",
			adaptive.CompletionProb, fixed.CompletionProb)
	}
}

// TestDVSSavesEnergyWithoutKillingCompletion reproduces the second
// headline: adding DVS cuts energy while completion stays close.
func TestDVSSavesEnergyWithoutKillingCompletion(t *testing.T) {
	tk := task()
	adaptive, err := Simulate(tk, Adaptive, 4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	dvs, err := Simulate(tk, AdaptiveDVS, 4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("energy: adaptive=%.1f dvs=%.1f (completion %.3f vs %.3f)",
		adaptive.MeanEnergy, dvs.MeanEnergy, adaptive.CompletionProb, dvs.CompletionProb)
	if dvs.MeanEnergy >= adaptive.MeanEnergy {
		t.Errorf("DVS saved no energy: %.1f >= %.1f", dvs.MeanEnergy, adaptive.MeanEnergy)
	}
	if dvs.CompletionProb < adaptive.CompletionProb-0.05 {
		t.Errorf("DVS hurt completion too much: %.3f vs %.3f",
			dvs.CompletionProb, adaptive.CompletionProb)
	}
}

// TestHigherFaultRateLowersCompletion: basic model sanity.
func TestHigherFaultRateLowersCompletion(t *testing.T) {
	tk := task()
	low, err := Simulate(tk, Adaptive, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	tk.FaultRate = 0.2
	high, err := Simulate(tk, Adaptive, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if high.CompletionProb >= low.CompletionProb {
		t.Errorf("more faults should lower completion: %.3f >= %.3f",
			high.CompletionProb, low.CompletionProb)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, _ := Simulate(task(), AdaptiveDVS, 500, 7)
	b, _ := Simulate(task(), AdaptiveDVS, 500, 7)
	if a != b {
		t.Fatal("simulation not deterministic")
	}
}
