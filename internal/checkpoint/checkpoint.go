// Package checkpoint implements energy-aware adaptive checkpointing for
// real-time tasks, reproducing DATE'03 9E.3 (Zhang & Chakrabarty:
// "Energy-Aware Adaptive Checkpointing in Embedded Real-Time Systems").
//
// A task of C computation units must finish by deadline D on a processor
// that suffers transient faults (Poisson arrivals). A fault rolls the task
// back to its last checkpoint; each checkpoint costs time and energy. The
// paper combines two ideas evaluated here:
//
//   - adaptive checkpointing: the interval is re-derived at run time from
//     the *observed* fault arrivals instead of being fixed from a nominal,
//     design-time fault rate — the fixed interval is optimal only when the
//     nominal rate happens to be right, while the adaptive one tracks the
//     actual environment (and tightens in the endgame, where one long
//     rollback would blow the deadline);
//
//   - energy awareness via DVS: while plenty of slack remains, the task
//     runs at a lower voltage/frequency; after faults have eaten the
//     slack, it switches to full speed. Energy follows the 1/s² model of
//     package ctg.
//
// The simulator is a discrete-event Monte Carlo; the reproduced claims are
// the two paper headlines: higher probability of timely completion under
// faults, and lower energy, versus fixed-interval checkpointing without
// DVS.
package checkpoint

import (
	"fmt"
	"math"
	"math/rand"
)

// Task describes the real-time job.
type Task struct {
	// Compute is the computation demand in time units at full speed.
	Compute float64
	// Deadline is the absolute completion bound.
	Deadline float64
	// CheckpointCost is the time to take one checkpoint.
	CheckpointCost float64
	// FaultRate is the actual Poisson fault arrival rate.
	FaultRate float64
	// NominalRate is the design-time fault-rate assumption the fixed
	// policy tunes its interval for (defaults to FaultRate if zero).
	NominalRate float64
}

// nominal returns the design-time rate assumption.
func (t Task) nominal() float64 {
	if t.NominalRate > 0 {
		return t.NominalRate
	}
	return t.FaultRate
}

// Policy selects the checkpointing/DVS strategy.
type Policy int

// Policies under comparison.
const (
	// FixedInterval checkpoints every fixed k units at full speed (the
	// baseline from prior work).
	FixedInterval Policy = iota
	// Adaptive shrinks the interval as slack is consumed, full speed.
	Adaptive
	// AdaptiveDVS additionally runs at reduced speed while the remaining
	// slack is comfortable (the paper's scheme).
	AdaptiveDVS
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FixedInterval:
		return "fixed"
	case Adaptive:
		return "adaptive"
	case AdaptiveDVS:
		return "adaptive+dvs"
	}
	return "?"
}

// Result aggregates a Monte Carlo evaluation.
type Result struct {
	Policy Policy
	// CompletionProb is the fraction of runs finishing by the deadline.
	CompletionProb float64
	// MeanEnergy is the average energy of completed runs (nominal power
	// x time, scaled by 1/s² under DVS).
	MeanEnergy float64
	// MeanCheckpoints is the average number of checkpoints taken.
	MeanCheckpoints float64
}

// interval returns the checkpoint interval for the policy. The fixed
// policy uses the classic first-order optimum sqrt(2*cost/lambda) for the
// design-time NOMINAL rate; the adaptive policies re-derive it from the
// observed fault count and elapsed time (with the nominal rate acting as
// a prior of weight one expected fault interval), tracking the actual
// environment.
func interval(p Policy, t Task, elapsed float64, faults int) float64 {
	if p == FixedInterval {
		return math.Sqrt(2 * t.CheckpointCost / t.nominal())
	}
	// Prior weight of four expected fault intervals keeps the estimate
	// stable early (matching the tuned-fixed optimum) while still
	// converging to the observed rate within a run.
	const priorWeight = 4
	prior := priorWeight / t.nominal()
	estRate := (float64(faults) + priorWeight) / (elapsed + prior)
	return math.Sqrt(2 * t.CheckpointCost / estRate)
}

// speed returns the DVS slowdown factor s >= 1 (execution time multiplies
// by s, power divides by s³, energy by s²).
func speed(p Policy, t Task, remWork, remTime float64) float64 {
	if p != AdaptiveDVS {
		return 1
	}
	if remWork <= 0 {
		return 1
	}
	// Budget the full-speed completion time: work + checkpoint overhead +
	// a pessimistic allowance for expected fault losses, plus a fixed
	// safety margin; only the slack beyond that is spent on slowdown.
	base := math.Sqrt(2 * t.CheckpointCost / t.nominal())
	need := remWork * (1 + t.CheckpointCost/base)
	faultLoss := t.nominal() * remTime * base
	s := (remTime - faultLoss - 2*base) / need
	if s < 1 {
		return 1
	}
	if s > 2 {
		return 2 // voltage floor
	}
	return s
}

// Simulate runs n Monte Carlo executions of the task under the policy.
func Simulate(t Task, p Policy, n int, seed int64) (Result, error) {
	if t.Compute <= 0 || t.Deadline <= t.Compute || t.CheckpointCost <= 0 || t.FaultRate <= 0 {
		return Result{}, fmt.Errorf("checkpoint: invalid task %+v", t)
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{Policy: p}
	completed := 0
	totalEnergy := 0.0
	totalCkpts := 0.0
	for run := 0; run < n; run++ {
		now := 0.0
		done := 0.0 // committed (checkpointed) work
		energy := 0.0
		ckpts := 0.0
		faults := 0
		nextFault := rng.ExpFloat64() / t.FaultRate
		for done < t.Compute && now < t.Deadline {
			remWork := t.Compute - done
			remTime := t.Deadline - now
			k := interval(p, t, now, faults)
			if k > remWork {
				k = remWork
			}
			// Endgame guard (adaptive only): in the final stretch,
			// never risk a rollback larger than the remaining slack.
			if p != FixedInterval && remWork <= 2*k {
				if slack := remTime - remWork; slack > 0 && k > slack && slack > t.CheckpointCost*2 {
					k = slack
				}
			}
			s := speed(p, t, remWork, remTime)
			segTime := k*s + t.CheckpointCost
			if nextFault < now+segTime {
				// Fault mid-segment: lose the uncommitted work. Energy
				// for elapsed wall time at power P0/s³.
				lost := nextFault - now
				energy += lost / (s * s * s)
				now = nextFault
				faults++
				nextFault = now + rng.ExpFloat64()/t.FaultRate
				continue
			}
			now += segTime
			// Work k at slowdown s costs k/s²; the checkpoint runs at
			// full speed.
			energy += k/(s*s) + t.CheckpointCost
			done += k
			ckpts++
		}
		if done >= t.Compute && now <= t.Deadline {
			completed++
			totalEnergy += energy
			totalCkpts += ckpts
		}
	}
	res.CompletionProb = float64(completed) / float64(n)
	if completed > 0 {
		res.MeanEnergy = totalEnergy / float64(completed)
		res.MeanCheckpoints = totalCkpts / float64(completed)
	}
	return res, nil
}
