package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lpmem/internal/trace"
)

func mkTrace(addrs ...uint32) *trace.Trace {
	t := trace.New(len(addrs))
	for _, a := range addrs {
		t.Append(trace.Access{Addr: a, Kind: trace.Read, Width: 4})
	}
	return t
}

func TestClusterErrorsOnBadBlockSize(t *testing.T) {
	if _, err := Cluster(mkTrace(0), Config{BlockSize: 100}); err == nil {
		t.Fatal("want error")
	}
}

// TestHotBlocksComeFirst: frequency-dominant ordering must place the
// hottest blocks at the lowest clustered indices.
func TestHotBlocksComeFirst(t *testing.T) {
	var addrs []uint32
	// Block 0x4000 hot (50 accesses), 0x1000 medium (10), 0x8000 cold (1).
	for i := 0; i < 50; i++ {
		addrs = append(addrs, 0x4000)
	}
	for i := 0; i < 10; i++ {
		addrs = append(addrs, 0x1000)
	}
	addrs = append(addrs, 0x8000)
	c, err := Cluster(mkTrace(addrs...), Config{BlockSize: 256, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Order[0] != 0x4000 || c.Order[1] != 0x1000 || c.Order[2] != 0x8000 {
		t.Fatalf("order = %v", c.Order)
	}
}

// TestMapAddrIsInjectiveOnProfiledBlocks: the permutation must never map
// two different profiled addresses to the same clustered address.
func TestMapAddrIsInjectiveOnProfiledBlocks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var addrs []uint32
		for i := 0; i < 200; i++ {
			addrs = append(addrs, uint32(r.Intn(1<<16))&^3)
		}
		tr := mkTrace(addrs...)
		c, err := Cluster(tr, DefaultConfig())
		if err != nil {
			return false
		}
		seen := make(map[uint32]uint32)
		for _, a := range addrs {
			m := c.MapAddr(a)
			if prev, ok := seen[m]; ok && prev != a {
				return false
			}
			seen[m] = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMapAddrPreservesOffsets: intra-block offsets survive the remap.
func TestMapAddrPreservesOffsets(t *testing.T) {
	tr := mkTrace(0x1234, 0x1238, 0x5000)
	c, err := Cluster(tr, Config{BlockSize: 64, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.MapAddr(0x1238)-c.MapAddr(0x1234) != 4 {
		t.Fatal("offsets within a block must be preserved")
	}
}

// TestRemapKeepsFetchesUntouched.
func TestRemapKeepsFetchesUntouched(t *testing.T) {
	tr := trace.New(2)
	tr.Append(trace.Access{Addr: 0x9999, Kind: trace.Fetch, Width: 4})
	tr.Append(trace.Access{Addr: 0x4000, Kind: trace.Read, Width: 4})
	c, err := Cluster(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := c.Remap(tr)
	if out.Accesses[0].Addr != 0x9999 {
		t.Fatal("fetch address must not be remapped")
	}
}

// TestIdentityBaselineIsSortedCompact: baseline blocks appear in ascending
// original order at consecutive indices.
func TestIdentityBaselineIsSortedCompact(t *testing.T) {
	tr := mkTrace(0x8000, 0x1000, 0x8000, 0x4000)
	base, err := IdentityBaseline(tr, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Order) != 3 {
		t.Fatalf("order = %v", base.Order)
	}
	if base.Order[0] != 0x1000 || base.Order[1] != 0x4000 || base.Order[2] != 0x8000 {
		t.Fatalf("order = %v", base.Order)
	}
	if base.NewIndex[0x1000] != 0 || base.NewIndex[0x8000] != 2 {
		t.Fatalf("index = %v", base.NewIndex)
	}
}

// TestClusteredProfileMassPreserved: remapping must preserve total access
// counts per block (just moved).
func TestClusteredProfileMassPreserved(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var addrs []uint32
	for i := 0; i < 500; i++ {
		addrs = append(addrs, uint32(r.Intn(1<<14))&^3)
	}
	tr := mkTrace(addrs...)
	c, err := Cluster(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := c.Remap(tr)
	if out.Len() != tr.Len() {
		t.Fatal("length changed")
	}
	before := trace.ProfileOf(tr.Data(), c.BlockSize)
	after := trace.ProfileOf(out.Data(), c.BlockSize)
	if before.Total != after.Total {
		t.Fatal("total mass changed")
	}
	// The multiset of counts must be identical.
	counts := func(p *trace.Profile) map[uint64]int {
		m := make(map[uint64]int)
		for _, c := range p.Counts {
			m[c]++
		}
		return m
	}
	cb, ca := counts(before), counts(after)
	for k, v := range cb {
		if ca[k] != v {
			t.Fatalf("count multiset changed at %d: %d vs %d", k, v, ca[k])
		}
	}
}

// TestAffinityPullsPartnersTogether: with a strong affinity weight, blocks
// that alternate in time should be adjacent in the clustered order.
func TestAffinityPullsPartnersTogether(t *testing.T) {
	var addrs []uint32
	// A and B alternate; C has the same frequency but never adjacent to A.
	for i := 0; i < 30; i++ {
		addrs = append(addrs, 0x1000, 0x8000) // A, B interleaved
	}
	for i := 0; i < 30; i++ {
		addrs = append(addrs, 0x4000, 0x4000) // C bursts alone
	}
	c, err := Cluster(mkTrace(addrs...), Config{BlockSize: 256, AffinityWeight: 10, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	posA := c.NewIndex[0x1000]
	posB := c.NewIndex[0x8000]
	if d := posA - posB; d != 1 && d != -1 {
		t.Fatalf("interleaved blocks should be adjacent, got positions %d and %d", posA, posB)
	}
}

func TestIdentityBaselineErrorsOnBadBlockSize(t *testing.T) {
	if _, err := IdentityBaseline(mkTrace(0), 3); err == nil {
		t.Fatal("want error")
	}
}
