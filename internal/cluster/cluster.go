// Package cluster implements address clustering, the primary contribution
// reproduced by this repository (DATE'03 1B.1, Macii/Macii/Poncino:
// "Improving the Efficiency of Memory Partitioning by Address Clustering").
//
// Memory partitioning exploits the spatial locality of an access profile;
// its efficiency is limited when hot and cold blocks are interleaved in
// the address space, because banks must be contiguous. Address clustering
// inserts a (hardware) address-translation stage that permutes the memory
// image at block granularity so that frequently accessed blocks — and
// blocks that are accessed close together in time — become contiguous.
// The partitioner can then carve small, hot banks and large, cold ones,
// cutting energy per access.
//
// The algorithm:
//
//  1. Profile the trace at block granularity: per-block access frequency
//     and a temporal-affinity graph (how often two blocks are touched by
//     consecutive accesses).
//  2. Order blocks greedily: start from the hottest block, then repeatedly
//     append the unplaced block with the best combination of affinity to
//     the recently placed blocks and own frequency.
//  3. Emit the block permutation and remap the trace through it.
//
// The permutation is realized in hardware as a small block-index
// translation table; its per-access energy cost is charged by the
// experiment harness.
package cluster

import (
	"fmt"
	"sort"

	"lpmem/internal/trace"
)

// Clustering is a computed block permutation.
type Clustering struct {
	// BlockSize is the clustering granularity in bytes (power of two).
	BlockSize uint32
	// NewIndex maps an original block base address to its position in
	// the clustered image.
	NewIndex map[uint32]int
	// Order lists original block base addresses in clustered order:
	// Order[i] is the block placed at clustered index i.
	Order []uint32
}

// Config tunes the clustering heuristic.
type Config struct {
	// BlockSize is the clustering granularity; must be a power of two.
	BlockSize uint32
	// AffinityWeight balances temporal affinity against raw frequency
	// when choosing the next block. 0 degenerates to pure
	// frequency-descending ordering. The paper's profile-driven
	// heuristic corresponds to a positive weight; 1 works well.
	AffinityWeight float64
	// Window is how many recently placed blocks contribute affinity
	// when scoring a candidate. 1..4 are sensible; 2 is the default.
	Window int
}

// DefaultConfig returns the configuration used by the experiments.
// Frequency dominates the ordering; affinity only nudges blocks that are
// used together toward each other. A large affinity weight would let cold
// blocks ride along with hot partners and destroy the heat gradient the
// partitioner feeds on.
func DefaultConfig() Config {
	return Config{BlockSize: 256, AffinityWeight: 0.05, Window: 2}
}

// Cluster computes a clustering of the data accesses of t. A block size
// that is not a power of two is reported as an error so callers driven
// by external configuration can recover.
func Cluster(t *trace.Trace, cfg Config) (*Clustering, error) {
	if cfg.BlockSize == 0 || cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		return nil, fmt.Errorf("cluster: block size %d is not a power of two", cfg.BlockSize)
	}
	if cfg.Window <= 0 {
		cfg.Window = 2
	}
	mask := ^(cfg.BlockSize - 1)

	freq := make(map[uint32]uint64)
	affinity := make(map[[2]uint32]uint64)
	prev := uint32(0)
	havePrev := false
	for _, a := range t.Accesses {
		if a.Kind == trace.Fetch {
			continue
		}
		b := a.Addr & mask
		freq[b]++
		if havePrev && prev != b {
			k := pairKey(prev, b)
			affinity[k]++
		}
		prev = b
		havePrev = true
	}

	blocks := make([]uint32, 0, len(freq))
	for b := range freq {
		blocks = append(blocks, b)
	}
	// Deterministic starting order: frequency descending, address
	// ascending on ties.
	sort.Slice(blocks, func(i, j int) bool {
		fi, fj := freq[blocks[i]], freq[blocks[j]]
		if fi != fj {
			return fi > fj
		}
		return blocks[i] < blocks[j]
	})

	placed := make([]uint32, 0, len(blocks))
	used := make(map[uint32]bool, len(blocks))
	if len(blocks) > 0 {
		placed = append(placed, blocks[0])
		used[blocks[0]] = true
	}
	for len(placed) < len(blocks) {
		// Score all unplaced blocks against the last Window placed.
		var best uint32
		bestScore := -1.0
		for _, cand := range blocks {
			if used[cand] {
				continue
			}
			score := float64(freq[cand])
			if cfg.AffinityWeight > 0 {
				aff := uint64(0)
				lo := len(placed) - cfg.Window
				if lo < 0 {
					lo = 0
				}
				for _, p := range placed[lo:] {
					aff += affinity[pairKey(p, cand)]
				}
				score += cfg.AffinityWeight * float64(aff)
			}
			if score > bestScore {
				bestScore = score
				best = cand
			}
		}
		placed = append(placed, best)
		used[best] = true
	}

	c := &Clustering{
		BlockSize: cfg.BlockSize,
		NewIndex:  make(map[uint32]int, len(placed)),
		Order:     placed,
	}
	for i, b := range placed {
		c.NewIndex[b] = i
	}
	return c, nil
}

func pairKey(a, b uint32) [2]uint32 {
	if a > b {
		a, b = b, a
	}
	return [2]uint32{a, b}
}

// MapAddr translates an original address into the clustered image. An
// address whose block was never profiled maps to a fresh index appended
// after all profiled blocks, keeping the function total.
func (c *Clustering) MapAddr(addr uint32) uint32 {
	mask := ^(c.BlockSize - 1)
	base := addr & mask
	idx, ok := c.NewIndex[base]
	if !ok {
		// Unprofiled block: append deterministically.
		idx = len(c.Order) + int(base/c.BlockSize)%1024
	}
	return uint32(idx)*c.BlockSize + (addr & (c.BlockSize - 1))
}

// Remap returns a copy of t with every data address passed through
// MapAddr. Fetches are left untouched: clustering applies to the data
// memory only.
func (c *Clustering) Remap(t *trace.Trace) *trace.Trace {
	out := trace.New(t.Len())
	for _, a := range t.Accesses {
		if a.Kind != trace.Fetch {
			a.Addr = c.MapAddr(a.Addr)
		}
		out.Append(a)
	}
	return out
}

// IdentityBaseline returns the compacted-but-unclustered image of the same
// trace: blocks in ascending address order, exactly what the linker would
// produce without clustering hardware. Comparing Optimal(baseline) with
// Optimal(clustered) isolates the clustering benefit.
func IdentityBaseline(t *trace.Trace, blockSize uint32) (*Clustering, error) {
	if blockSize == 0 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("cluster: block size %d is not a power of two", blockSize)
	}
	mask := ^(blockSize - 1)
	seen := make(map[uint32]bool)
	var order []uint32
	for _, a := range t.Accesses {
		if a.Kind == trace.Fetch {
			continue
		}
		b := a.Addr & mask
		if !seen[b] {
			seen[b] = true
			order = append(order, b)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	c := &Clustering{BlockSize: blockSize, NewIndex: make(map[uint32]int, len(order)), Order: order}
	for i, b := range order {
		c.NewIndex[b] = i
	}
	return c, nil
}
