// Package hier implements energy-driven layer assignment for multi-layer
// memory hierarchies (DATE'03 10F.1, Brockmeyer/Miranda/Catthoor/
// Corporaal: "Layer Assignment Techniques for Low Energy in Multi-Layered
// Memory Organisations").
//
// A platform offers a small scratchpad layer, a larger on-chip layer and
// big off-chip memory. Assigning an array to a small layer makes each of
// its accesses cheap, but capacity is scarce. The key insight of the paper
// is that arrays have *limited lifetimes*: an input buffer consumed in an
// early phase and an output buffer produced in a late phase never live at
// the same time and can share the same scratchpad bytes. Exploiting
// lifetime (plus access-density ordering) roughly halves hierarchy energy
// versus assignment that reserves capacity for every array over the whole
// run.
package hier

import (
	"fmt"
	"sort"

	"lpmem/internal/energy"
	"lpmem/internal/trace"
)

// Layer is one level of the hierarchy.
type Layer struct {
	// Name identifies the layer in reports.
	Name string
	// Capacity is the usable size in bytes (0 = unbounded, for the
	// backing off-chip layer).
	Capacity uint32
	// ReadE / WriteE are per-access energies.
	ReadE, WriteE energy.PJ
}

// DefaultLayers builds a 3-level platform from the SRAM model: a 2 KiB
// scratchpad, a 16 KiB on-chip SRAM, and off-chip DRAM whose per-access
// energy is an order of magnitude above on-chip.
func DefaultLayers(m energy.MemoryModel) []Layer {
	return []Layer{
		{Name: "L1-scratch", Capacity: 2048, ReadE: m.ReadEnergy(2048), WriteE: m.WriteEnergy(2048)},
		{Name: "L2-sram", Capacity: 16384, ReadE: m.ReadEnergy(16384), WriteE: m.WriteEnergy(16384)},
		{Name: "offchip", Capacity: 0, ReadE: 60, WriteE: 66},
	}
}

// ArrayInfo is the profile of one array: footprint, traffic and lifetime.
type ArrayInfo struct {
	Name   string
	Base   uint32
	Size   uint32
	Reads  uint64
	Writes uint64
	// First and Last are the indices (in data-access order) of the
	// array's first and last access: its lifetime interval.
	First, Last int
}

// Accesses returns total traffic.
func (a ArrayInfo) Accesses() uint64 { return a.Reads + a.Writes }

// Region ties an address range to an array name, as declared by the
// workloads.
type Region struct {
	Name string
	Base uint32
	Size uint32
}

// Profile scans the data accesses of tr and produces per-array profiles
// for the declared regions. Accesses outside every region are ignored.
func Profile(tr *trace.Trace, regions []Region) []ArrayInfo {
	infos := make([]ArrayInfo, len(regions))
	for i, r := range regions {
		infos[i] = ArrayInfo{Name: r.Name, Base: r.Base, Size: r.Size, First: -1}
	}
	t := 0
	for _, a := range tr.Accesses {
		if a.Kind == trace.Fetch {
			continue
		}
		for i := range infos {
			if a.Addr >= infos[i].Base && a.Addr < infos[i].Base+infos[i].Size {
				if a.Kind == trace.Write {
					infos[i].Writes++
				} else {
					infos[i].Reads++
				}
				if infos[i].First < 0 {
					infos[i].First = t
				}
				infos[i].Last = t
				break
			}
		}
		t++
	}
	// Drop arrays that were never touched.
	out := infos[:0]
	for _, in := range infos {
		if in.First >= 0 {
			out = append(out, in)
		}
	}
	return out
}

// Assignment maps array names to layer indices.
type Assignment struct {
	Layer map[string]int
}

// Energy returns the total hierarchy energy of serving the profiled
// traffic under the assignment.
func Energy(infos []ArrayInfo, layers []Layer, asg Assignment) energy.PJ {
	var e energy.PJ
	for _, in := range infos {
		l := layers[asg.Layer[in.Name]]
		e += l.ReadE*energy.PJ(in.Reads) + l.WriteE*energy.PJ(in.Writes)
	}
	return e
}

// fitsWithLifetime reports whether adding cand to the arrays already
// placed in a layer keeps the *peak concurrent* footprint within capacity.
// Lifetimes are the [First,Last] intervals; the peak is found by an event
// sweep.
func fitsWithLifetime(placed []ArrayInfo, cand ArrayInfo, capacity uint32) bool {
	if capacity == 0 {
		return true
	}
	if cand.Size > capacity {
		return false
	}
	type event struct {
		t     int
		delta int64
	}
	var events []event
	add := func(a ArrayInfo) {
		events = append(events, event{a.First, int64(a.Size)})
		events = append(events, event{a.Last + 1, -int64(a.Size)})
	}
	for _, p := range placed {
		add(p)
	}
	add(cand)
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta
	})
	var cur int64
	for _, ev := range events {
		cur += ev.delta
		if cur > int64(capacity) {
			return false
		}
	}
	return true
}

// fitsStatic reports whether the candidate fits assuming every placed
// array occupies its bytes for the whole run (the no-lifetime baseline).
func fitsStatic(placed []ArrayInfo, cand ArrayInfo, capacity uint32) bool {
	if capacity == 0 {
		return true
	}
	var sum int64
	for _, p := range placed {
		sum += int64(p.Size)
	}
	return sum+int64(cand.Size) <= int64(capacity)
}

// Assign places arrays into layers greedily by access density
// (accesses per byte, the energy leverage of promoting the array), trying
// cheap layers first. useLifetime selects lifetime-aware capacity checks;
// with it off the function is the paper's baseline assigner.
func Assign(infos []ArrayInfo, layers []Layer, useLifetime bool) (Assignment, error) {
	if len(layers) == 0 {
		return Assignment{}, fmt.Errorf("hier: no layers")
	}
	if layers[len(layers)-1].Capacity != 0 {
		return Assignment{}, fmt.Errorf("hier: last layer must be unbounded (capacity 0)")
	}
	order := append([]ArrayInfo(nil), infos...)
	sort.Slice(order, func(i, j int) bool {
		di := float64(order[i].Accesses()) / float64(order[i].Size)
		dj := float64(order[j].Accesses()) / float64(order[j].Size)
		//lint:allow floatcompare exact tie-break keeps the sort order deterministic
		if di != dj {
			return di > dj
		}
		return order[i].Name < order[j].Name
	})
	placed := make([][]ArrayInfo, len(layers))
	asg := Assignment{Layer: make(map[string]int, len(infos))}
	for _, a := range order {
		for li := range layers {
			var ok bool
			if useLifetime {
				ok = fitsWithLifetime(placed[li], a, layers[li].Capacity)
			} else {
				ok = fitsStatic(placed[li], a, layers[li].Capacity)
			}
			if ok {
				placed[li] = append(placed[li], a)
				asg.Layer[a.Name] = li
				break
			}
		}
	}
	return asg, nil
}

// Evaluate runs the full comparison on one profiled workload: everything
// off-chip, static greedy assignment, and lifetime-aware assignment.
func Evaluate(infos []ArrayInfo, layers []Layer) (offchip, static, lifetime energy.PJ, err error) {
	all := Assignment{Layer: make(map[string]int, len(infos))}
	for _, in := range infos {
		all.Layer[in.Name] = len(layers) - 1
	}
	offchip = Energy(infos, layers, all)
	s, err := Assign(infos, layers, false)
	if err != nil {
		return 0, 0, 0, err
	}
	static = Energy(infos, layers, s)
	l, err := Assign(infos, layers, true)
	if err != nil {
		return 0, 0, 0, err
	}
	lifetime = Energy(infos, layers, l)
	return offchip, static, lifetime, nil
}
