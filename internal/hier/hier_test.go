package hier

import (
	"testing"

	"lpmem/internal/energy"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// mergeKernels runs several kernels and concatenates their traces,
// producing the phased, many-array application shape layer assignment is
// designed for.
func mergeKernels(t *testing.T, names ...string) (*trace.Trace, []Region) {
	t.Helper()
	merged := trace.New(1 << 16)
	var regions []Region
	for _, n := range names {
		k, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		inst := k.Build(1)
		res := workloads.MustRun(inst)
		for _, a := range res.Trace.Accesses {
			merged.Append(a)
		}
		for _, arr := range inst.Arrays {
			regions = append(regions, Region{Name: n + "." + arr.Name, Base: arr.Base, Size: arr.Size})
		}
	}
	return merged, regions
}

func TestProfileBasics(t *testing.T) {
	tr := trace.New(4)
	tr.Append(trace.Access{Addr: 0x100, Kind: trace.Read, Width: 4})
	tr.Append(trace.Access{Addr: 0x200, Kind: trace.Write, Width: 4})
	tr.Append(trace.Access{Addr: 0x104, Kind: trace.Read, Width: 4})
	regions := []Region{
		{Name: "a", Base: 0x100, Size: 0x10},
		{Name: "b", Base: 0x200, Size: 0x10},
		{Name: "untouched", Base: 0x300, Size: 0x10},
	}
	infos := Profile(tr, regions)
	if len(infos) != 2 {
		t.Fatalf("profiled %d arrays, want 2 (untouched dropped)", len(infos))
	}
	if infos[0].Name != "a" || infos[0].Reads != 2 || infos[0].First != 0 || infos[0].Last != 2 {
		t.Fatalf("array a profile wrong: %+v", infos[0])
	}
	if infos[1].Writes != 1 || infos[1].First != 1 || infos[1].Last != 1 {
		t.Fatalf("array b profile wrong: %+v", infos[1])
	}
}

func TestAssignRequiresUnboundedLastLayer(t *testing.T) {
	layers := []Layer{{Name: "only", Capacity: 128}}
	if _, err := Assign(nil, layers, true); err == nil {
		t.Fatal("bounded last layer must be rejected")
	}
}

// TestDisjointLifetimesShareScratch: two arrays that each fill the
// scratchpad but live in different phases must BOTH land in the
// scratchpad when lifetime analysis is on, and cannot when it is off.
func TestDisjointLifetimesShareScratch(t *testing.T) {
	infos := []ArrayInfo{
		{Name: "early", Size: 2048, Reads: 1000, First: 0, Last: 99},
		{Name: "late", Size: 2048, Reads: 1000, First: 100, Last: 199},
	}
	layers := DefaultLayers(energy.DefaultMemoryModel())
	withLT, err := Assign(infos, layers, true)
	if err != nil {
		t.Fatal(err)
	}
	if withLT.Layer["early"] != 0 || withLT.Layer["late"] != 0 {
		t.Fatalf("lifetime-aware: both arrays should share L1, got %v", withLT.Layer)
	}
	noLT, err := Assign(infos, layers, false)
	if err != nil {
		t.Fatal(err)
	}
	if noLT.Layer["early"] == 0 && noLT.Layer["late"] == 0 {
		t.Fatalf("static: both arrays cannot fit L1 together, got %v", noLT.Layer)
	}
}

// TestOverlappingLifetimesDoNotShare: concurrent arrays must not
// oversubscribe the scratchpad even with lifetime analysis on.
func TestOverlappingLifetimesDoNotShare(t *testing.T) {
	infos := []ArrayInfo{
		{Name: "x", Size: 2048, Reads: 1000, First: 0, Last: 150},
		{Name: "y", Size: 2048, Reads: 900, First: 100, Last: 199},
	}
	layers := DefaultLayers(energy.DefaultMemoryModel())
	asg, err := Assign(infos, layers, true)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Layer["x"] == 0 && asg.Layer["y"] == 0 {
		t.Fatal("overlapping arrays must not both occupy the full scratchpad")
	}
}

// TestEvaluateOrdering: on a phased multi-kernel app, lifetime-aware
// assignment must be at least as good as static, which must beat
// everything-off-chip.
func TestEvaluateOrdering(t *testing.T) {
	tr, regions := mergeKernels(t, "fir", "dct", "adpcm", "histogram")
	infos := Profile(tr, regions)
	layers := DefaultLayers(energy.DefaultMemoryModel())
	off, static, lifetime, err := Evaluate(infos, layers)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("offchip=%.0f static=%.0f lifetime=%.0f (lifetime/static = %.2f)",
		float64(off), float64(static), float64(lifetime), float64(lifetime)/float64(static))
	if static >= off {
		t.Errorf("static assignment should beat off-chip: %v >= %v", static, off)
	}
	if lifetime > static {
		t.Errorf("lifetime-aware must not be worse than static: %v > %v", lifetime, static)
	}
}
