package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lpmem/internal/energy"
)

func TestDistAndBitEnergy(t *testing.T) {
	m := DefaultMesh()
	if d := m.dist(0, 15); d != 6 {
		t.Fatalf("dist(0,15) = %d, want 6 on 4x4", d)
	}
	if d := m.dist(5, 5); d != 0 {
		t.Fatalf("dist(5,5) = %d, want 0", d)
	}
	if e := m.BitEnergy(0); e != m.ERbit {
		t.Fatalf("0-hop bit energy = %v, want one router %v", e, m.ERbit)
	}
	if e := m.BitEnergy(2); e != 3*m.ERbit+2*m.ELbit {
		t.Fatalf("2-hop bit energy = %v", e)
	}
}

func TestGraphValidate(t *testing.T) {
	g := &Graph{N: 2, Flows: []Flow{{Src: 0, Dst: 2}}}
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range dst must be rejected")
	}
	g2 := &Graph{N: 2, Flows: []Flow{{Src: 1, Dst: 1}}}
	if err := g2.Validate(); err == nil {
		t.Fatal("self flow must be rejected")
	}
}

// TestWalkLengthsEqualManhattan: both XY and YX routes have exactly
// dist() links.
func TestWalkLengthsEqualManhattan(t *testing.T) {
	m := DefaultMesh()
	f := func(a, b uint8) bool {
		src := int(a) % m.Tiles()
		dst := int(b) % m.Tiles()
		for _, r := range []Routing{XY, YX} {
			n := 0
			m.walk(src, dst, r, func(linkID) { n++ })
			if n != m.dist(src, dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRoutingFlexibilityExpandsFeasibility: construct two crossing flows
// that oversubscribe a link under XY-only routing but fit when one flow
// may take YX.
func TestRoutingFlexibilityExpandsFeasibility(t *testing.T) {
	m := Mesh{W: 3, H: 3, LinkBW: 100, ERbit: 0.3, ELbit: 0.45}
	// Tiles: 0 1 2 / 3 4 5 / 6 7 8.
	// Flow A: 0 -> 5 (XY: 0-1-2-5) and flow B: 0 -> 8 (XY: 0-1-2-5-8)
	// collide on links 0-1 and 1-2 under XY-only routing; B can fall
	// back to YX (0-3-6-7-8).
	g := &Graph{N: 9, Flows: []Flow{
		{Src: 0, Dst: 5, Volume: 1, BW: 60},
		{Src: 0, Dst: 8, Volume: 1, BW: 60},
	}}
	mapping := RowMajor(9)
	routing, ok := m.CheckBandwidth(g, mapping)
	if !ok {
		t.Fatal("routing flexibility should make this feasible")
	}
	if routing[0] == XY && routing[1] == XY {
		t.Fatal("both flows on XY cannot be feasible here")
	}
	// With XY-only (LinkBW too small for both), it must fail: emulate by
	// checking that both XY routes share link 0->1.
	shared := map[linkID]int{}
	for _, f := range g.Flows {
		m.walk(mapping[f.Src], mapping[f.Dst], XY, func(l linkID) { shared[l]++ })
	}
	if shared[linkID{0, 1}] != 2 {
		t.Fatal("test premise broken: XY routes should share link 0->1")
	}
}

// TestBnBBeatsRowMajorOnMMS is the E10 headline: the mapper must cut
// communication energy substantially versus the ad-hoc mapping.
func TestBnBBeatsRowMajorOnMMS(t *testing.T) {
	m := DefaultMesh()
	g := MMSGraph()
	adhoc := m.CommEnergy(g, RowMajor(g.N))
	res, err := MapBnB(m, g, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	saving := 100 * float64(adhoc-res.Energy) / float64(adhoc)
	t.Logf("adhoc=%.0f bnb=%.0f saving=%.1f%% visited=%d", float64(adhoc), float64(res.Energy), saving, res.Visited)
	if saving < 25 {
		t.Errorf("BnB saving = %.1f%%, want >= 25%%", saving)
	}
	if _, ok := m.CheckBandwidth(g, res.Mapping); !ok {
		t.Error("returned mapping must be bandwidth-feasible")
	}
	// Mapping must be a permutation of distinct tiles.
	seen := map[int]bool{}
	for _, tile := range res.Mapping {
		if tile < 0 || tile >= m.Tiles() || seen[tile] {
			t.Fatalf("invalid mapping %v", res.Mapping)
		}
		seen[tile] = true
	}
}

// TestBnBOptimalOnSmallPipeline: for a 4-stage pipeline on a 2x2 mesh the
// optimum is a Hamiltonian path (every hop distance 1).
func TestBnBOptimalOnSmallPipeline(t *testing.T) {
	m := Mesh{W: 2, H: 2, LinkBW: 1e9, ERbit: 0.3, ELbit: 0.45}
	g := PipelineGraph(4, 10)
	res, err := MapBnB(m, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal is a Hamiltonian path: all three flows at one hop.
	want := 3 * energyOf(g.Flows[0].Volume) * m.BitEnergy(1)
	if res.Energy != want {
		t.Fatalf("pipeline energy = %v, want %v (all 1-hop)", res.Energy, want)
	}
}

// TestBnBRejectsOversizedGraph and infeasible bandwidth.
func TestBnBErrors(t *testing.T) {
	m := Mesh{W: 2, H: 2, LinkBW: 1, ERbit: 0.3, ELbit: 0.45}
	g := PipelineGraph(5, 10)
	if _, err := MapBnB(m, g, 0); err == nil {
		t.Fatal("5 cores on 4 tiles must fail")
	}
	g2 := PipelineGraph(4, 10) // BW 10 > LinkBW 1: infeasible anywhere
	if _, err := MapBnB(m, g2, 0); err == nil {
		t.Fatal("infeasible bandwidth must fail")
	}
}

// TestBnBDeterministic: same inputs, same mapping.
func TestBnBDeterministic(t *testing.T) {
	m := DefaultMesh()
	g := MMSGraph()
	a, err := MapBnB(m, g, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapBnB(m, g, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Mapping {
		if a.Mapping[i] != b.Mapping[i] {
			t.Fatalf("nondeterministic mapping at ip %d", i)
		}
	}
}

// TestRandomGraphsNeverWorseThanAdhoc: property — whenever both are
// feasible, BnB's result is never worse than row-major.
func TestRandomGraphsNeverWorseThanAdhoc(t *testing.T) {
	m := Mesh{W: 3, H: 3, LinkBW: 1e6, ERbit: 0.3, ELbit: 0.45}
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := &Graph{N: 8}
		for i := 0; i < 12; i++ {
			s := r.Intn(8)
			d := r.Intn(8)
			if s == d {
				continue
			}
			g.Flows = append(g.Flows, Flow{Src: s, Dst: d, Volume: float64(1 + r.Intn(100)), BW: 1})
		}
		if len(g.Flows) == 0 {
			continue
		}
		res, err := MapBnB(m, g, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if adhoc := m.CommEnergy(g, RowMajor(g.N)); res.Energy > adhoc {
			t.Errorf("seed %d: BnB %v worse than adhoc %v", seed, res.Energy, adhoc)
		}
	}
}

// energyOf adapts a float volume for energy arithmetic in tests.
func energyOf(v float64) energy.PJ { return energy.PJ(v) }
