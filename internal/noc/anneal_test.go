package noc

import "testing"

// TestAnnealBeatsAdhocOnMMS: annealing must also clearly beat the ad-hoc
// mapping on the multimedia graph.
func TestAnnealBeatsAdhocOnMMS(t *testing.T) {
	m := DefaultMesh()
	g := MMSGraph()
	adhoc := m.CommEnergy(g, RowMajor(g.N))
	res, err := MapAnneal(m, g, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	saving := 100 * float64(adhoc-res.Energy) / float64(adhoc)
	t.Logf("anneal saving = %.1f%%", saving)
	if saving < 20 {
		t.Errorf("annealing saving = %.1f%%, want >= 20%%", saving)
	}
	seen := map[int]bool{}
	for _, tile := range res.Mapping {
		if tile < 0 || tile >= m.Tiles() || seen[tile] {
			t.Fatalf("invalid mapping %v", res.Mapping)
		}
		seen[tile] = true
	}
}

// TestAnnealVsBnB: on the MMS instance the exact mapper must be at least
// as good as annealing.
func TestAnnealVsBnB(t *testing.T) {
	m := DefaultMesh()
	g := MMSGraph()
	bnb, err := MapBnB(m, g, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := MapAnneal(m, g, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if bnb.Energy > sa.Energy+1e-6 {
		t.Errorf("BnB (%v) worse than annealing (%v)", bnb.Energy, sa.Energy)
	}
}

// TestAnnealErrors: oversized graphs and hopeless bandwidth fail cleanly.
func TestAnnealErrors(t *testing.T) {
	m := Mesh{W: 2, H: 2, LinkBW: 1, ERbit: 0.3, ELbit: 0.45}
	if _, err := MapAnneal(m, PipelineGraph(5, 10), 1, 1000); err == nil {
		t.Fatal("5 cores on 4 tiles must fail")
	}
	if _, err := MapAnneal(m, PipelineGraph(4, 10), 1, 1000); err == nil {
		t.Fatal("infeasible bandwidth must fail")
	}
}

// TestAnnealDeterministicPerSeed.
func TestAnnealDeterministicPerSeed(t *testing.T) {
	m := DefaultMesh()
	g := MMSGraph()
	a, err := MapAnneal(m, g, 9, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapAnneal(m, g, 9, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Mapping {
		if a.Mapping[i] != b.Mapping[i] {
			t.Fatal("annealing not deterministic for fixed seed")
		}
	}
}
