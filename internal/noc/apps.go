package noc

// MMSGraph returns a 16-core multimedia system core graph in the style of
// the video/audio application used by Hu & Marculescu: an MPEG video
// decode pipeline, an audio codec pipeline and shared memory/IO cores,
// with bandwidth annotations in MB/s. Volumes are bandwidth-proportional
// (steady streaming over the same interval).
//
// Cores:
//
//	0 in-stream DMA    1 demux          2 vld            3 inv-quant
//	4 idct             5 motion-comp    6 frame-mem      7 display
//	8 audio-dsp        9 audio-mem     10 audio-dac     11 cpu
//	12 sdram-ctrl     13 sram-ctrl     14 rast          15 io
func MMSGraph() *Graph {
	edge := func(s, d int, bw float64) Flow {
		return Flow{Src: s, Dst: d, Volume: bw * 1e3, BW: bw}
	}
	return &Graph{
		N: 16,
		Flows: []Flow{
			// Video pipeline.
			edge(0, 1, 70),
			edge(1, 2, 362),
			edge(2, 3, 362),
			edge(3, 4, 362),
			edge(4, 5, 357),
			edge(5, 6, 353),
			edge(6, 7, 300),
			edge(5, 12, 500), // motion comp <-> SDRAM reference frames
			edge(12, 5, 250),
			edge(6, 12, 94),
			// Audio pipeline.
			edge(1, 8, 49),
			edge(8, 9, 27),
			edge(9, 8, 27),
			edge(8, 10, 25),
			// Control and IO.
			edge(11, 1, 25),
			edge(11, 12, 100),
			edge(13, 11, 125),
			edge(11, 13, 125),
			edge(14, 12, 150),
			edge(7, 14, 180),
			edge(15, 0, 70),
			edge(11, 15, 30),
		},
	}
}

// PipelineGraph returns a simple n-stage streaming pipeline (for tests and
// ablations): core i sends to core i+1 at the given bandwidth.
func PipelineGraph(n int, bw float64) *Graph {
	g := &Graph{N: n}
	for i := 0; i < n-1; i++ {
		g.Flows = append(g.Flows, Flow{Src: i, Dst: i + 1, Volume: bw * 1e3, BW: bw})
	}
	return g
}
