package noc

import (
	"fmt"
	"math"
	"math/rand"
)

// MapAnneal is a simulated-annealing mapper, the classical alternative the
// branch-and-bound mapper is compared against in ablation benchmarks: it
// scales to larger meshes but offers no optimality guarantee.
//
// Moves are pairwise tile swaps; the cost is communication energy with a
// large penalty for bandwidth-infeasible mappings, so the search is pulled
// back into the feasible region.
func MapAnneal(m Mesh, g *Graph, seed int64, iters int) (*MapResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.N > m.Tiles() {
		return nil, fmt.Errorf("noc: %d cores exceed %d tiles", g.N, m.Tiles())
	}
	if iters <= 0 {
		iters = 200_000
	}
	rng := rand.New(rand.NewSource(seed))

	// Work over a full tile permutation so swaps can use empty tiles too.
	perm := make([]int, m.Tiles()) // perm[tile] = ip or -1
	for i := range perm {
		perm[i] = -1
	}
	mapping := RowMajor(g.N)
	for ip, tile := range mapping {
		perm[tile] = ip
	}

	cost := func(mp []int) float64 {
		c := float64(m.CommEnergy(g, mp))
		if _, ok := m.CheckBandwidth(g, mp); !ok {
			c *= 10 // infeasibility penalty
		}
		return c
	}
	cur := cost(mapping)
	bestMap := append([]int(nil), mapping...)
	bestCost := cur

	t0 := cur / 10
	for it := 0; it < iters; it++ {
		temp := t0 * math.Exp(-4*float64(it)/float64(iters))
		a := rng.Intn(m.Tiles())
		b := rng.Intn(m.Tiles())
		if a == b || (perm[a] < 0 && perm[b] < 0) {
			continue
		}
		perm[a], perm[b] = perm[b], perm[a]
		if perm[a] >= 0 {
			mapping[perm[a]] = a
		}
		if perm[b] >= 0 {
			mapping[perm[b]] = b
		}
		next := cost(mapping)
		if next <= cur || rng.Float64() < math.Exp((cur-next)/math.Max(temp, 1e-9)) {
			cur = next
			if next < bestCost {
				bestCost = next
				copy(bestMap, mapping)
			}
		} else {
			// Undo.
			perm[a], perm[b] = perm[b], perm[a]
			if perm[a] >= 0 {
				mapping[perm[a]] = a
			}
			if perm[b] >= 0 {
				mapping[perm[b]] = b
			}
		}
	}
	routing, ok := m.CheckBandwidth(g, bestMap)
	if !ok {
		return nil, fmt.Errorf("noc: annealing found no bandwidth-feasible mapping")
	}
	return &MapResult{
		Mapping: bestMap,
		Routing: routing,
		Energy:  m.CommEnergy(g, bestMap),
		Visited: uint64(iters),
	}, nil
}
