// Package noc models a regular 2D-mesh network-on-chip and implements the
// energy- and performance-aware IP mapping of DATE'03 8B.2 (Hu &
// Marculescu: "Exploiting the Routing Flexibility for Energy/Performance
// Aware Mapping of Regular NoC Architectures").
//
// The communication energy of sending one bit over h hops is
//
//	e_bit(h) = (h+1)·E_Rbit + h·E_Lbit
//
// (one router per hop plus the source router, one link per hop), so total
// communication energy is Σ_flows volume · e_bit(dist(map(src), map(dst))).
// The mapper is a branch-and-bound over tile assignments: IPs are placed
// in decreasing order of communication demand, partial costs are bounded
// from below, and a mapping is only accepted if the link bandwidth
// constraints can be satisfied by per-flow selection of XY or YX
// deterministic routing (the "routing flexibility" of the title — it both
// enlarges the feasible space and is deadlock-free for any mix, as XY and
// YX flows use disjoint turn sets per virtual channel).
package noc

import (
	"fmt"
	"sort"

	"lpmem/internal/energy"
)

// Mesh is the target architecture.
type Mesh struct {
	// W and H are the mesh dimensions; W*H tiles.
	W, H int
	// LinkBW is the capacity of each directed link, in MB/s.
	LinkBW float64
	// ERbit and ELbit are per-bit router and link energies.
	ERbit, ELbit energy.PJ
}

// DefaultMesh returns the 4x4 mesh used by the E10 experiment.
func DefaultMesh() Mesh {
	return Mesh{W: 4, H: 4, LinkBW: 1000, ERbit: 0.284, ELbit: 0.449}
}

// Tiles returns the tile count.
func (m Mesh) Tiles() int { return m.W * m.H }

// coord returns the (x,y) of a tile index.
func (m Mesh) coord(t int) (int, int) { return t % m.W, t / m.W }

// dist is the Manhattan distance between two tiles.
func (m Mesh) dist(a, b int) int {
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Dist is the Manhattan distance between two tiles. It is exported for
// the NUCA bank-distance latency model, which charges hops between a
// core's tile and the bank that holds its line.
func (m Mesh) Dist(a, b int) int { return m.dist(a, b) }

// BitEnergy returns e_bit for a path of h hops.
func (m Mesh) BitEnergy(h int) energy.PJ {
	return energy.PJ(h+1)*m.ERbit + energy.PJ(h)*m.ELbit
}

// Flow is one communication edge of the application core graph.
type Flow struct {
	// Src and Dst are IP indices.
	Src, Dst int
	// Volume is the total traffic in bits (drives energy).
	Volume float64
	// BW is the sustained bandwidth requirement in MB/s (drives link
	// capacity constraints).
	BW float64
}

// Graph is the application: N IP cores and their flows.
type Graph struct {
	N     int
	Flows []Flow
}

// Validate checks indices.
func (g *Graph) Validate() error {
	for _, f := range g.Flows {
		if f.Src < 0 || f.Src >= g.N || f.Dst < 0 || f.Dst >= g.N || f.Src == f.Dst {
			return fmt.Errorf("noc: bad flow %+v for %d cores", f, g.N)
		}
	}
	return nil
}

// CommEnergy returns the total communication energy of a mapping
// (mapping[ip] = tile).
func (m Mesh) CommEnergy(g *Graph, mapping []int) energy.PJ {
	var e energy.PJ
	for _, f := range g.Flows {
		h := m.dist(mapping[f.Src], mapping[f.Dst])
		e += energy.PJ(f.Volume) * m.BitEnergy(h)
	}
	return e
}

// RowMajor returns the ad-hoc baseline mapping: IP i on tile i.
func RowMajor(n int) []int {
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = i
	}
	return mapping
}

// Routing is the per-flow choice of deterministic route.
type Routing int

// Route kinds.
const (
	XY Routing = iota
	YX
)

// linkID identifies a directed mesh link by its endpoints.
type linkID struct{ from, to int }

// walk appends the links of a route to fn.
func (m Mesh) walk(src, dst int, r Routing, fn func(linkID)) {
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	cur := src
	stepX := func() {
		nx := x + sign(dx-x)
		next := y*m.W + nx
		fn(linkID{cur, next})
		x, cur = nx, next
	}
	stepY := func() {
		ny := y + sign(dy-y)
		next := ny*m.W + x
		fn(linkID{cur, next})
		y, cur = ny, next
	}
	if r == XY {
		for x != dx {
			stepX()
		}
		for y != dy {
			stepY()
		}
	} else {
		for y != dy {
			stepY()
		}
		for x != dx {
			stepX()
		}
	}
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// CheckBandwidth reports whether the flows of g under the mapping can be
// routed within link capacities using per-flow XY/YX selection. It returns
// the chosen routing per flow when feasible. The selection is greedy:
// flows in decreasing bandwidth order take XY if it fits, else YX, else
// the mapping is infeasible.
func (m Mesh) CheckBandwidth(g *Graph, mapping []int) ([]Routing, bool) {
	load := make(map[linkID]float64)
	idx := make([]int, len(g.Flows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		fa, fb := g.Flows[idx[a]], g.Flows[idx[b]]
		//lint:allow floatcompare exact tie-break keeps the sort order deterministic
		if fa.BW != fb.BW {
			return fa.BW > fb.BW
		}
		return idx[a] < idx[b]
	})
	routing := make([]Routing, len(g.Flows))
	fits := func(src, dst int, r Routing, bw float64) bool {
		ok := true
		m.walk(src, dst, r, func(l linkID) {
			if load[l]+bw > m.LinkBW {
				ok = false
			}
		})
		return ok
	}
	commit := func(src, dst int, r Routing, bw float64) {
		m.walk(src, dst, r, func(l linkID) { load[l] += bw })
	}
	for _, i := range idx {
		f := g.Flows[i]
		src, dst := mapping[f.Src], mapping[f.Dst]
		switch {
		case fits(src, dst, XY, f.BW):
			routing[i] = XY
			commit(src, dst, XY, f.BW)
		case fits(src, dst, YX, f.BW):
			routing[i] = YX
			commit(src, dst, YX, f.BW)
		default:
			return nil, false
		}
	}
	return routing, true
}

// MapResult is the outcome of the branch-and-bound mapper.
type MapResult struct {
	Mapping []int
	Routing []Routing
	Energy  energy.PJ
	// Visited counts explored search nodes (for reporting).
	Visited uint64
}

// MapBnB finds a minimum-energy bandwidth-feasible mapping by
// branch-and-bound. maxNodes caps the search (0 means 50M nodes); the best
// mapping found so far is returned if the cap is hit, making the mapper an
// anytime algorithm.
func MapBnB(m Mesh, g *Graph, maxNodes uint64) (*MapResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.N > m.Tiles() {
		return nil, fmt.Errorf("noc: %d cores exceed %d tiles", g.N, m.Tiles())
	}
	if maxNodes == 0 {
		maxNodes = 50_000_000
	}

	// Order IPs by total communication volume, descending: placing the
	// talkative cores first makes bounds tight early.
	vol := make([]float64, g.N)
	for _, f := range g.Flows {
		vol[f.Src] += f.Volume
		vol[f.Dst] += f.Volume
	}
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		//lint:allow floatcompare exact tie-break keeps the sort order deterministic
		if vol[order[a]] != vol[order[b]] {
			return vol[order[a]] > vol[order[b]]
		}
		return order[a] < order[b]
	})

	// Per-IP flow adjacency for incremental cost.
	adj := make([][]Flow, g.N)
	for _, f := range g.Flows {
		adj[f.Src] = append(adj[f.Src], f)
		adj[f.Dst] = append(adj[f.Dst], f)
	}

	// Initial incumbent: greedy row-major if feasible, else +inf.
	best := &MapResult{Energy: energy.PJ(1e30)}
	if rm := RowMajor(g.N); true {
		if routing, ok := m.CheckBandwidth(g, rm); ok {
			best = &MapResult{Mapping: append([]int(nil), rm...), Routing: routing, Energy: m.CommEnergy(g, rm)}
		}
	}

	mapping := make([]int, g.N)
	for i := range mapping {
		mapping[i] = -1
	}
	usedTile := make([]bool, m.Tiles())
	var visited uint64

	minBit := m.BitEnergy(1) // cheapest possible non-zero-hop cost

	var dfs func(pos int, cost energy.PJ)
	dfs = func(pos int, cost energy.PJ) {
		if visited >= maxNodes {
			return
		}
		visited++
		if cost >= best.Energy {
			return
		}
		if pos == g.N {
			if routing, ok := m.CheckBandwidth(g, mapping); ok {
				best = &MapResult{
					Mapping: append([]int(nil), mapping...),
					Routing: routing,
					Energy:  cost,
				}
			}
			return
		}
		ip := order[pos]
		for tile := 0; tile < m.Tiles(); tile++ {
			if usedTile[tile] {
				continue
			}
			// Symmetry breaking: the first IP only explores one
			// octant representative set of the mesh.
			if pos == 0 && !inOctant(m, tile) {
				continue
			}
			mapping[ip] = tile
			usedTile[tile] = true
			// Incremental exact cost of flows now fully placed, plus an
			// admissible 1-hop bound for half-placed flows.
			inc := energy.PJ(0)
			for _, f := range adj[ip] {
				other := f.Src
				if other == ip {
					other = f.Dst
				}
				if mapping[other] >= 0 {
					h := m.dist(tile, mapping[other])
					inc += energy.PJ(f.Volume) * m.BitEnergy(h)
				}
			}
			lb := cost + inc
			// Lower-bound the flows with exactly one endpoint placed
			// among remaining IPs: each costs at least volume*e_bit(1)
			// unless endpoints could be adjacent... 0 hops impossible
			// (distinct tiles), so 1 hop is admissible.
			for p2 := pos + 1; p2 < g.N; p2++ {
				u := order[p2]
				for _, f := range adj[u] {
					other := f.Src
					if other == u {
						other = f.Dst
					}
					// Count half-placed flows once (from their unplaced
					// endpoint) and unplaced-unplaced flows once (from
					// the smaller-index endpoint).
					if mapping[other] >= 0 || u < other {
						lb += energy.PJ(f.Volume) * minBit
					}
				}
			}
			if lb < best.Energy {
				dfs(pos+1, cost+inc)
			}
			mapping[ip] = -1
			usedTile[tile] = false
		}
	}
	dfs(0, 0)
	best.Visited = visited
	if best.Mapping == nil {
		return nil, fmt.Errorf("noc: no bandwidth-feasible mapping found")
	}
	return best, nil
}

// inOctant restricts the first placed IP to a canonical region:
// one octant for square meshes (8 symmetries), one quadrant otherwise
// (4 symmetries).
func inOctant(m Mesh, tile int) bool {
	x, y := m.coord(tile)
	if x >= (m.W+1)/2 || y >= (m.H+1)/2 {
		return false
	}
	if m.W == m.H {
		return x <= y
	}
	return true
}
