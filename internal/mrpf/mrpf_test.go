package mrpf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCSDRoundTrip: the CSD form reconstructs the value exactly.
func TestCSDRoundTrip(t *testing.T) {
	f := func(c int32) bool { return CSDValue(CSD(c)) == c }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCSDNoAdjacentNonZeros: the canonical property.
func TestCSDNoAdjacentNonZeros(t *testing.T) {
	f := func(c int32) bool {
		d := CSD(c)
		for i := 0; i+1 < len(d); i++ {
			if d[i] != 0 && d[i+1] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCSDWeightMinimal: CSD weight is never above binary weight + 1, and
// is strictly lower for runs of ones.
func TestCSDWeightMinimal(t *testing.T) {
	f := func(c int32) bool { return popcountValidate(c) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if NonZero(CSD(255)) != 2 { // 255 = 256 - 1
		t.Fatalf("CSD(255) weight = %d, want 2", NonZero(CSD(255)))
	}
	if NonZero(CSD(0)) != 0 {
		t.Fatal("CSD(0) must be empty")
	}
}

func TestDirectCost(t *testing.T) {
	// y = 1*x: zero adders. y = 255*x: one adder. Two taps: +1 summation.
	if got := DirectCost([]int32{1}); got != 0 {
		t.Fatalf("cost([1]) = %d", got)
	}
	if got := DirectCost([]int32{255}); got != 1 {
		t.Fatalf("cost([255]) = %d", got)
	}
	if got := DirectCost([]int32{1, 1}); got != 1 {
		t.Fatalf("cost([1,1]) = %d", got)
	}
	if got := DirectCost([]int32{0, 0}); got != 0 {
		t.Fatalf("cost of zero filter = %d", got)
	}
}

// TestOrderingOnLowpass reproduces the abstract's comparison shape on its
// own filter class: MRP <= CSE <= direct, with substantial MRP gains.
func TestOrderingOnLowpass(t *testing.T) {
	for _, taps := range []int{16, 24, 32} {
		coeffs, err := LowpassCoeffs(taps, 14)
		if err != nil {
			t.Fatal(err)
		}
		c := Compare(coeffs)
		t.Logf("%2d taps: direct=%d cse=%d mrp=%d (vs direct %.1f%%, vs cse %.1f%%)",
			taps, c.Direct, c.CSE, c.MRP, c.SavingVsDirect(), c.SavingVsCSE())
		if c.CSE > c.Direct {
			t.Errorf("%d taps: CSE worse than direct", taps)
		}
		if c.MRP > c.CSE {
			t.Errorf("%d taps: MRP worse than CSE", taps)
		}
		if c.SavingVsDirect() < 30 {
			t.Errorf("%d taps: MRP saving vs direct = %.1f%%, want >= 30%%", taps, c.SavingVsDirect())
		}
	}
}

// TestRandomCoeffsNeverNegativeCost: costs stay sane on arbitrary sets.
func TestRandomCoeffsNeverNegativeCost(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		coeffs := make([]int32, 4+r.Intn(20))
		for i := range coeffs {
			coeffs[i] = int32(r.Intn(1<<16) - 1<<15)
		}
		c := Compare(coeffs)
		if c.Direct < 0 || c.CSE < 0 || c.MRP < 0 {
			t.Fatalf("negative cost: %+v", c)
		}
		if c.CSE > c.Direct {
			t.Fatalf("CSE exceeded direct: %+v", c)
		}
	}
}

func TestLowpassErrors(t *testing.T) {
	if _, err := LowpassCoeffs(2, 10); err == nil {
		t.Fatal("too few taps must error")
	}
}
