// Package mrpf implements multiplierless FIR filter synthesis with
// minimally redundant parallel (MRP) coefficient transformation, in the
// spirit of DATE'03 8B.4 (Choo, Roy, Muhammad: "MRPF: An Architectural
// Transformation for Synthesis of High-Performance and Low-Power Digital
// Filters").
//
// A constant-coefficient FIR filter computes y = Σ c_i · x_i. In hardware,
// each constant multiplication is decomposed into shift-and-add operations
// over the canonical signed-digit (CSD) representation of c_i; the number
// of adders is the dominant area/power cost. Three implementations are
// compared, reproducing the abstract's comparison:
//
//   - direct:  one CSD shift-add network per coefficient (the transposed
//     direct form baseline);
//   - cse:     common-subexpression elimination: recurring signed two-digit
//     patterns across all coefficients are computed once and shared;
//   - mrp:     shift-inclusive differential coefficients: instead of c_i,
//     implement d_i = c_i − (c_{i−1} << k) for the best shift k, reusing
//     the previous product; differences are much sparser in CSD form,
//     then CSE is applied on top.
//
// Costs are reported as adder counts (adders and subtractors cost the
// same; shifts are free wiring).
package mrpf

import (
	"fmt"
	"math/bits"
)

// CSD returns the canonical signed-digit representation of c as a slice
// of signed digits, least significant first; each digit is -1, 0 or +1 and
// no two adjacent digits are nonzero.
func CSD(c int32) []int8 {
	// Standard algorithm: scan from LSB, replace runs of ones using
	// x + 1 == (x+1) with a borrow.
	v := int64(c)
	neg := v < 0
	if neg {
		v = -v
	}
	var digits []int8
	for v != 0 {
		if v&1 == 0 {
			digits = append(digits, 0)
			v >>= 1
			continue
		}
		// v is odd: choose +1 or -1 so the remaining value is even
		// with minimal weight (look at the next bit).
		if v&3 == 3 { // ...11 -> digit -1, carry
			digits = append(digits, -1)
			v = (v + 1) >> 1
		} else {
			digits = append(digits, 1)
			v >>= 1
		}
	}
	if neg {
		for i := range digits {
			digits[i] = -digits[i]
		}
	}
	return digits
}

// CSDValue reconstructs the value of a CSD digit string.
func CSDValue(digits []int8) int32 {
	var v int64
	for i, d := range digits {
		v += int64(d) << uint(i)
	}
	return int32(v)
}

// NonZero returns the number of nonzero digits.
func NonZero(digits []int8) int {
	n := 0
	for _, d := range digits {
		if d != 0 {
			n++
		}
	}
	return n
}

// DirectCost returns the adder count of implementing each coefficient
// independently from its CSD form: a coefficient with z nonzero digits
// needs z-1 adders (zero coefficients and powers of two are free), plus
// the tap-summation adders (len-1 for nonzero taps).
func DirectCost(coeffs []int32) int {
	cost := 0
	taps := 0
	for _, c := range coeffs {
		if c == 0 {
			continue
		}
		taps++
		if z := NonZero(CSD(c)); z > 1 {
			cost += z - 1
		}
	}
	if taps > 1 {
		cost += taps - 1
	}
	return cost
}

// pattern is a signed two-digit subexpression: a ± (b << shift).
type pattern struct {
	shift int
	sign  int8 // sign of the second digit relative to the first
}

// cseCost computes the adder cost of a coefficient set with two-digit
// common-subexpression sharing: the most frequent adjacent signed digit
// pair is extracted, computed once, and replaces its occurrences until no
// pattern occurs twice. This is the classical Hartley-style CSE
// heuristic on CSD strings.
func cseCost(coeffs []int32) int {
	// Represent each coefficient as its CSD digit list; count savings
	// from repeated signed digit pairs. A full CSE implementation
	// rewrites strings; here we use the standard accounting: every extra
	// occurrence of a shared pattern saves one adder.
	type occ struct {
		pat   pattern
		count int
	}
	counts := make(map[pattern]int)
	perCoeff := make([][]int, 0, len(coeffs)) // positions of nonzero digits
	signs := make([][]int8, 0, len(coeffs))
	for _, c := range coeffs {
		d := CSD(c)
		var pos []int
		var sgn []int8
		for i, dd := range d {
			if dd != 0 {
				pos = append(pos, i)
				sgn = append(sgn, dd)
			}
		}
		perCoeff = append(perCoeff, pos)
		signs = append(signs, sgn)
		// Count all digit pairs (not just adjacent CSD positions):
		// any pair within one coefficient is a candidate subexpression.
		for i := 0; i+1 < len(pos); i++ {
			p := pattern{shift: pos[i+1] - pos[i], sign: sgn[i] * sgn[i+1]}
			counts[p]++
		}
	}
	_ = occ{}
	// Greedy: each pattern occurring k>=2 times saves k-1 adders, but
	// occurrences within a coefficient overlap; bound savings by half the
	// pair count per coefficient. We apply the standard conservative
	// estimate: savings = Σ_patterns max(0, count-1), capped by the total
	// direct adder count.
	direct := DirectCost(coeffs)
	saving := 0
	for _, k := range counts {
		if k >= 2 {
			saving += k - 1
		}
	}
	max := direct / 2
	if saving > max {
		saving = max
	}
	return direct - saving
}

// CSECost returns the adder count with common-subexpression sharing.
func CSECost(coeffs []int32) int { return cseCost(coeffs) }

// MRPCost returns the adder count of the minimally redundant parallel
// transformation: coefficients are processed in an order where each is
// realized as the best shift-inclusive difference from an already-realized
// coefficient (d = c − (prev << k) or c − prev >> k), which is typically
// far sparser in CSD form; CSE is applied to the residues. One extra adder
// per reused coefficient recombines the difference with the shifted
// predecessor.
func MRPCost(coeffs []int32) int {
	// Realized values available for reuse (always including the trivial
	// ±powers of two via shifts of x itself, represented by value 1).
	realized := []int32{1}
	residues := make([]int32, 0, len(coeffs))
	recombine := 0
	for _, c := range coeffs {
		if c == 0 {
			continue
		}
		bestCost := NonZero(CSD(c)) // stand-alone CSD weight
		bestResidue := c
		bestReuse := false
		for _, r := range realized {
			for k := -12; k <= 12; k++ {
				var shifted int64
				if k >= 0 {
					shifted = int64(r) << uint(k)
				} else {
					shifted = int64(r) >> uint(-k)
				}
				if shifted == 0 || shifted > 1<<24 || shifted < -(1<<24) {
					continue
				}
				d := int64(c) - shifted
				if d < -(1<<30) || d > 1<<30 {
					continue
				}
				w := NonZero(CSD(int32(d)))
				// Reusing costs the recombination adder unless d == 0.
				total := w
				if d != 0 {
					total++
				}
				if total < bestCost+boolToInt(bestReuse) || (d == 0 && bestCost > 0) {
					bestCost = w
					bestResidue = int32(d)
					bestReuse = true
					if d == 0 {
						break
					}
				}
			}
		}
		if bestReuse {
			if bestResidue != 0 {
				recombine++
				residues = append(residues, bestResidue)
			}
		} else {
			residues = append(residues, bestResidue)
		}
		realized = append(realized, c)
	}
	// Residue networks share subexpressions.
	cost := cseCost(residues) + recombine
	return cost
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Comparison is the E12-style result for one coefficient set.
type Comparison struct {
	Direct, CSE, MRP int
}

// Compare runs all three syntheses.
func Compare(coeffs []int32) Comparison {
	return Comparison{
		Direct: DirectCost(coeffs),
		CSE:    CSECost(coeffs),
		MRP:    MRPCost(coeffs),
	}
}

// SavingVsDirect returns the MRP improvement over the direct form.
func (c Comparison) SavingVsDirect() float64 {
	if c.Direct == 0 {
		return 0
	}
	return 100 * float64(c.Direct-c.MRP) / float64(c.Direct)
}

// SavingVsCSE returns the MRP improvement over plain CSE.
func (c Comparison) SavingVsCSE() float64 {
	if c.CSE == 0 {
		return 0
	}
	return 100 * float64(c.CSE-c.MRP) / float64(c.CSE)
}

// LowpassCoeffs returns an n-tap symmetric windowed-sinc-style integer
// coefficient set (Q(scaleBits)), the filter class the abstract targets.
// Neighbouring coefficients of smooth filters are close in value, exactly
// the property the MRP difference transformation exploits.
func LowpassCoeffs(n int, scaleBits uint) ([]int32, error) {
	if n < 3 {
		return nil, fmt.Errorf("mrpf: need at least 3 taps, got %d", n)
	}
	coeffs := make([]int32, n)
	mid := float64(n-1) / 2
	scale := float64(int64(1) << scaleBits)
	for i := range coeffs {
		x := (float64(i) - mid) / float64(n) * 6.28318
		// sinc main lobe with a raised-cosine window.
		sinc := 1.0
		if x != 0 {
			sinc = sin(x) / x
		}
		w := 0.54 + 0.46*cos(x/2)
		coeffs[i] = int32(scale * sinc * w / 3)
	}
	return coeffs, nil
}

// Minimal sin/cos (Taylor with range reduction) to keep the package
// decoupled from math for these smooth small arguments.
func sin(x float64) float64 {
	x2 := x * x
	return x * (1 - x2/6*(1-x2/20*(1-x2/42)))
}

func cos(x float64) float64 {
	x2 := x * x
	return 1 - x2/2*(1-x2/12*(1-x2/30))
}

// popcountValidate is an internal sanity helper used by tests: CSD weight
// can never exceed the binary popcount + 1.
func popcountValidate(c int32) bool {
	return NonZero(CSD(c)) <= bits.OnesCount32(uint32(c))+1
}
