package system

import (
	"testing"

	"lpmem/internal/workloads"
)

func TestRunAllKernels(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range workloads.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, err := Run(k.Build(1), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalCycles < res.CoreCycles {
				t.Fatal("stalls cannot reduce cycles")
			}
			if res.IStats.Accesses == 0 || res.DStats.Accesses == 0 {
				t.Fatal("caches saw no traffic")
			}
			if res.TotalEnergy() <= 0 {
				t.Fatal("energy must be positive")
			}
		})
	}
}

// TestBiggerDCacheNeverSlower: growing the D-cache cannot add stalls.
func TestBiggerDCacheNeverSlower(t *testing.T) {
	k, _ := workloads.ByName("listchase")
	prevStalls := uint64(1 << 62)
	for _, sets := range []int{16, 64, 256} {
		cfg := DefaultConfig()
		cfg.DCache.Sets = sets
		res, err := Run(k.Build(1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.StallCycles > prevStalls {
			t.Fatalf("stalls grew with cache size at %d sets: %d > %d",
				sets, res.StallCycles, prevStalls)
		}
		prevStalls = res.StallCycles
	}
}

// TestMissPenaltyScalesStalls: doubling the miss penalty doubles stall
// cycles exactly (same miss count).
func TestMissPenaltyScalesStalls(t *testing.T) {
	k, _ := workloads.ByName("matmul")
	cfg := DefaultConfig()
	a, err := Run(k.Build(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MissPenalty *= 2
	b, err := Run(k.Build(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.StallCycles != 2*a.StallCycles {
		t.Fatalf("stalls %d -> %d, want exact doubling", a.StallCycles, b.StallCycles)
	}
	if a.CoreCycles != b.CoreCycles {
		t.Fatal("core cycles must not depend on memory latency")
	}
}

// TestCPIReasonable: with caches, CPI should be near the core CPI.
func TestCPIReasonable(t *testing.T) {
	k, _ := workloads.ByName("fir")
	res, err := Run(k.Build(1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := k.Build(1)
	r2 := workloads.MustRun(inst)
	cpi := res.CPI(r2.Retired)
	if cpi < 1 || cpi > 5 {
		t.Fatalf("CPI = %.2f, outside plausible range", cpi)
	}
}
