// Package system ties the substrates into a whole embedded platform:
// a µRISC core with split L1 instruction and data caches in front of a
// single main memory, with miss-stall timing and an end-to-end energy
// breakdown. It is the "full platform" view used by examples and
// platform-level ablations; the per-technique experiments use the
// individual substrates directly.
package system

import (
	"fmt"

	"lpmem/internal/cache"
	"lpmem/internal/energy"
	"lpmem/internal/isa"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// Config describes the platform.
type Config struct {
	// ICache and DCache are the L1 geometries.
	ICache, DCache cache.Config
	// MissPenalty is the main-memory access latency in cycles.
	MissPenalty uint64
	// Mem is the SRAM/DRAM energy model; main memory is charged at
	// MainMemorySize.
	Mem energy.MemoryModel
	// CacheModel charges L1 accesses.
	CacheModel energy.CacheModel
	// MainMemorySize sizes the main-memory energy (bytes).
	MainMemorySize uint32
}

// DefaultConfig returns a typical embedded platform: 4 KiB I-cache,
// 8 KiB D-cache, 20-cycle miss penalty.
func DefaultConfig() Config {
	return Config{
		ICache:         cache.Config{Sets: 64, Ways: 2, LineSize: 32, WriteBack: false, WriteAllocate: false},
		DCache:         cache.Config{Sets: 64, Ways: 4, LineSize: 32, WriteBack: true, WriteAllocate: true},
		MissPenalty:    20,
		Mem:            energy.DefaultMemoryModel(),
		CacheModel:     energy.DefaultCacheModel(),
		MainMemorySize: 1 << 20,
	}
}

// Result is the platform-level outcome of one run.
type Result struct {
	// CoreCycles is the pipeline cycle count without memory stalls.
	CoreCycles uint64
	// StallCycles is added by cache misses.
	StallCycles uint64
	// TotalCycles = CoreCycles + StallCycles.
	TotalCycles uint64
	// IStats and DStats are the cache statistics.
	IStats, DStats cache.Stats
	// CacheEnergy, MemEnergy and LeakEnergy decompose platform energy.
	CacheEnergy energy.PJ
	MemEnergy   energy.PJ
	LeakEnergy  energy.PJ
}

// TotalEnergy sums the breakdown.
func (r Result) TotalEnergy() energy.PJ { return r.CacheEnergy + r.MemEnergy + r.LeakEnergy }

// CPI returns cycles per instruction given the retired count.
func (r Result) CPI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(instructions)
}

// Run executes a workload instance on the platform.
func Run(inst *workloads.Instance, cfg Config) (*Result, error) {
	cpu := isa.NewCPU(inst.Prog)
	if inst.Init != nil {
		inst.Init(cpu)
	}
	tr := trace.New(4096)
	cpu.Trace = tr
	if err := cpu.Run(inst.MaxSteps); err != nil {
		return nil, fmt.Errorf("system: %s: %w", inst.Name, err)
	}
	if inst.Check != nil {
		if err := inst.Check(cpu); err != nil {
			return nil, fmt.Errorf("system: %s: check failed: %w", inst.Name, err)
		}
	}
	return Replay(tr, cpu.Cycles, cfg)
}

// Replay runs an existing trace through the platform's caches and
// computes timing and energy. coreCycles is the pipeline-only cycle
// count.
func Replay(tr *trace.Trace, coreCycles uint64, cfg Config) (*Result, error) {
	ic, err := cache.New(cfg.ICache, nil)
	if err != nil {
		return nil, err
	}
	dc, err := cache.New(cfg.DCache, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{CoreCycles: coreCycles}
	iProbe := cfg.CacheModel.ConventionalAccess(cfg.ICache.Ways)
	dProbe := cfg.CacheModel.ConventionalAccess(cfg.DCache.Ways)
	memRead := cfg.Mem.ReadEnergy(cfg.MainMemorySize)
	memWrite := cfg.Mem.WriteEnergy(cfg.MainMemorySize)
	lineWords := uint64(cfg.DCache.LineSize / 4)

	for _, a := range tr.Accesses {
		if a.Kind == trace.Fetch {
			res.CacheEnergy += iProbe
			r := ic.Access(a.Addr, false, a.Width, a.Value)
			if !r.Hit {
				res.StallCycles += cfg.MissPenalty
				res.MemEnergy += memRead * energy.PJ(lineWords)
			}
			continue
		}
		res.CacheEnergy += dProbe
		r := dc.Access(a.Addr, a.Kind == trace.Write, a.Width, a.Value)
		if !r.Hit {
			res.StallCycles += cfg.MissPenalty
			res.MemEnergy += memRead * energy.PJ(lineWords)
		}
		if r.WroteBack {
			res.MemEnergy += memWrite * energy.PJ(lineWords)
		}
	}
	res.TotalCycles = res.CoreCycles + res.StallCycles
	res.IStats = ic.Stats()
	res.DStats = dc.Stats()
	totalOnChip := uint32(cfg.ICache.SizeBytes() + cfg.DCache.SizeBytes())
	res.LeakEnergy = cfg.Mem.Leakage(totalOnChip, res.TotalCycles)
	return res, nil
}
