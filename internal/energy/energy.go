// Package energy provides the analytical energy models shared by every
// experiment in the repository.
//
// The models are deliberately simple, monotone and calibrated to the shape
// of published CACTI-style data: per-access energy of an SRAM grows as a
// power law of its capacity (exponent ~0.7, between bit-line-length sqrt
// scaling and the near-linear growth of published 0.18 µm fits), leakage
// grows linearly with capacity, and bus energy is proportional to the
// number of line transitions. The DATE'03 abstracts report *relative*
// savings (technique vs baseline); those ratios are preserved under any
// monotone model, which is what makes this substitution sound (see
// DESIGN.md, "Substitutions").
//
// All energies are expressed in PJ, a normalised picojoule-like unit.
package energy

import (
	"fmt"
	"math"
	"math/bits"
)

// PJ is a normalised energy value (picojoule-like unit).
type PJ float64

// String formats the energy with a unit suffix.
func (e PJ) String() string { return fmt.Sprintf("%.3f pJ", float64(e)) }

// MemoryModel computes per-access and leakage energy for an SRAM of a given
// capacity. The zero value is not useful; use DefaultMemoryModel or build
// one explicitly.
type MemoryModel struct {
	// ReadE0 is the fixed per-read energy floor (sense amps, decoder).
	ReadE0 PJ
	// WriteE0 is the fixed per-write energy floor.
	WriteE0 PJ
	// KSize scales the capacity-dependent term: K * bytes^SizeExp.
	KSize PJ
	// SizeExp is the capacity exponent; 0.7 matches the super-sqrt
	// growth of published 0.18 µm embedded-SRAM energy fits.
	SizeExp float64
	// WritePenalty multiplies the size-dependent term for writes
	// (full-swing bit lines).
	WritePenalty float64
	// LeakPerByteCycle is the static energy per byte per cycle.
	LeakPerByteCycle PJ
	// DecoderE is the energy of the bank-select decoder per access to a
	// partitioned memory; it grows with log2(#banks).
	DecoderE PJ
}

// DefaultMemoryModel returns the model used by all experiments unless a
// test overrides it. Constants are calibrated so a 1 KiB macro costs about
// 3.5 units per read and a 64 KiB macro about 13x that, matching the
// relative spread of published 0.18 µm SRAM data.
func DefaultMemoryModel() MemoryModel {
	return MemoryModel{
		ReadE0:           1.0,
		WriteE0:          1.1,
		KSize:            0.02,
		SizeExp:          0.7,
		WritePenalty:     1.25,
		LeakPerByteCycle: 0.00002,
		DecoderE:         0.15,
	}
}

// DefaultSizeExp is the capacity exponent substituted when a model is
// used with SizeExp left at its zero value. It exists only to keep
// hand-rolled literal models (tests, examples) physically shaped; any
// model that reaches a consumer through Validate must set SizeExp
// explicitly, because Validate rejects the zero value.
const DefaultSizeExp = 0.7

// Validate reports whether the model's parameters are usable: every
// field must be a positive, finite number. The zero value of any field
// is rejected — in particular a zero SizeExp, which sizeTerm would
// otherwise silently replace with DefaultSizeExp. Model consumers
// (partition.Optimal, stackmem.Simulate, memtech.New) call this before
// pricing anything, so a half-initialised model fails loudly instead of
// producing plausible-but-wrong tables.
func (m MemoryModel) Validate() error {
	fields := []struct {
		name string
		v    float64
	}{
		{"ReadE0", float64(m.ReadE0)},
		{"WriteE0", float64(m.WriteE0)},
		{"KSize", float64(m.KSize)},
		{"SizeExp", m.SizeExp},
		{"WritePenalty", m.WritePenalty},
		{"LeakPerByteCycle", float64(m.LeakPerByteCycle)},
		{"DecoderE", float64(m.DecoderE)},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("energy: MemoryModel.%s is %v; want a finite positive value", f.name, f.v)
		}
		if f.v <= 0 {
			return fmt.Errorf("energy: MemoryModel.%s = %v; zero or negative fields are rejected (a zero-value model is not usable — start from DefaultMemoryModel)", f.name, f.v)
		}
	}
	return nil
}

// sizeTerm returns the capacity-dependent energy component. The
// DefaultSizeExp substitution below is the documented escape hatch for
// unvalidated literal models only; validated consumers never hit it.
func (m MemoryModel) sizeTerm(size uint32) PJ {
	exp := m.SizeExp
	if exp == 0 {
		exp = DefaultSizeExp
	}
	return m.KSize * PJ(math.Pow(float64(size), exp))
}

// ReadEnergy returns the energy of one read from an SRAM of size bytes.
func (m MemoryModel) ReadEnergy(size uint32) PJ {
	return m.ReadE0 + m.sizeTerm(size)
}

// WriteEnergy returns the energy of one write to an SRAM of size bytes.
func (m MemoryModel) WriteEnergy(size uint32) PJ {
	return m.WriteE0 + PJ(m.WritePenalty)*m.sizeTerm(size)
}

// Leakage returns static energy of size bytes over the given cycles.
func (m MemoryModel) Leakage(size uint32, cycles uint64) PJ {
	return m.LeakPerByteCycle * PJ(size) * PJ(cycles)
}

// SelectEnergy returns the per-access bank-selection overhead of a
// partitioned memory with nBanks banks. A monolithic memory has none.
func (m MemoryModel) SelectEnergy(nBanks int) PJ {
	if nBanks <= 1 {
		return 0
	}
	return m.DecoderE * PJ(bits.Len(uint(nBanks-1)))
}

// BusModel computes interconnect energy from transition counts.
type BusModel struct {
	// PerTransition is the energy of one line toggling once.
	PerTransition PJ
	// CouplingFactor scales the extra energy of adjacent lines switching
	// in opposite directions (Miller coupling); 0 disables coupling.
	CouplingFactor float64
}

// DefaultBusModel returns the bus model used by the experiments.
// Long off-chip or global lines dominate, so PerTransition is large
// relative to SRAM floors.
func DefaultBusModel() BusModel {
	return BusModel{PerTransition: 1.2, CouplingFactor: 0.6}
}

// TransitionEnergy returns the self-switching energy for n transitions.
func (b BusModel) TransitionEnergy(n uint64) PJ {
	return b.PerTransition * PJ(n)
}

// WordTransitions counts the toggled bits between two consecutive bus words.
func WordTransitions(prev, cur uint32) int {
	return bits.OnesCount32(prev ^ cur)
}

// CouplingTransitions counts opposite-direction toggles on adjacent lines
// between two consecutive words on a width-bit bus: for each adjacent pair
// (i, i+1), a coupling event occurs when one line rises while the other
// falls. These cost extra energy via BusModel.CouplingFactor.
func CouplingTransitions(prev, cur uint32, width int) int {
	rise := ^prev & cur
	fall := prev & ^cur
	count := 0
	for i := 0; i < width-1; i++ {
		a := (rise>>uint(i))&1 == 1
		b := (fall>>uint(i+1))&1 == 1
		c := (fall>>uint(i))&1 == 1
		d := (rise>>uint(i+1))&1 == 1
		if (a && b) || (c && d) {
			count++
		}
	}
	return count
}

// SequenceEnergy returns the total bus energy of driving the word sequence
// over a width-bit bus, including coupling if enabled.
func (b BusModel) SequenceEnergy(words []uint32, width int) PJ {
	if len(words) == 0 {
		return 0
	}
	var self, coup uint64
	prev := words[0]
	for _, w := range words[1:] {
		self += uint64(WordTransitions(prev, w))
		if b.CouplingFactor > 0 {
			coup += uint64(CouplingTransitions(prev, w, width))
		}
		prev = w
	}
	return b.PerTransition * (PJ(self) + PJ(b.CouplingFactor)*PJ(coup))
}

// CacheModel gives per-component energies for a set-associative cache.
// A conventional N-way access reads all N tag and data ways in parallel;
// way-determination (DATE'03 10E.4) reduces that to one way.
type CacheModel struct {
	// TagE is the energy of probing one tag way.
	TagE PJ
	// DataE is the energy of reading one data way (one line segment).
	DataE PJ
	// WayTableE is the per-access energy of the way-determination table.
	WayTableE PJ
}

// DefaultCacheModel returns the cache model used by the experiments.
func DefaultCacheModel() CacheModel {
	return CacheModel{TagE: 0.4, DataE: 1.6, WayTableE: 0.25}
}

// ConventionalAccess returns the energy of a conventional access to an
// n-way cache (all ways probed in parallel).
func (c CacheModel) ConventionalAccess(ways int) PJ {
	return (c.TagE + c.DataE) * PJ(ways)
}

// DirectedAccess returns the energy of an access that probes exactly one
// way after consulting the way-determination table.
func (c CacheModel) DirectedAccess() PJ {
	return c.WayTableE + c.TagE + c.DataE
}
