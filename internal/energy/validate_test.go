package energy_test

import (
	"math"
	"strings"
	"testing"

	"lpmem/internal/energy"
)

// TestMemoryModelValidate: the default model passes, and every field is
// individually rejected when zero, negative, NaN or infinite — the
// silent-substitution fix demands a half-initialised model fails loudly
// before it reaches a consumer.
func TestMemoryModelValidate(t *testing.T) {
	if err := energy.DefaultMemoryModel().Validate(); err != nil {
		t.Fatalf("default model must validate: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*energy.MemoryModel, float64)
	}{
		{"ReadE0", func(m *energy.MemoryModel, v float64) { m.ReadE0 = energy.PJ(v) }},
		{"WriteE0", func(m *energy.MemoryModel, v float64) { m.WriteE0 = energy.PJ(v) }},
		{"KSize", func(m *energy.MemoryModel, v float64) { m.KSize = energy.PJ(v) }},
		{"SizeExp", func(m *energy.MemoryModel, v float64) { m.SizeExp = v }},
		{"WritePenalty", func(m *energy.MemoryModel, v float64) { m.WritePenalty = v }},
		{"LeakPerByteCycle", func(m *energy.MemoryModel, v float64) { m.LeakPerByteCycle = energy.PJ(v) }},
		{"DecoderE", func(m *energy.MemoryModel, v float64) { m.DecoderE = energy.PJ(v) }},
	}
	bad := []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, f := range mutations {
		for _, v := range bad {
			m := energy.DefaultMemoryModel()
			f.mut(&m, v)
			err := m.Validate()
			if err == nil {
				t.Errorf("%s = %v: validated, want error", f.name, v)
				continue
			}
			if !strings.Contains(err.Error(), f.name) {
				t.Errorf("%s = %v: error %q does not name the field", f.name, v, err)
			}
		}
	}
	// The zero-value model — the exact shape the substitution used to
	// paper over — is rejected.
	var zero energy.MemoryModel
	if err := zero.Validate(); err == nil {
		t.Fatal("zero-value model must be rejected")
	}
}
