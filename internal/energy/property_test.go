package energy_test

import (
	"math/rand"
	"testing"

	"lpmem/internal/energy"
	"lpmem/internal/faultinject"
)

// TestMemoryModelMonotoneProperty checks the invariant every experiment
// leans on (DESIGN.md "Substitutions"): under any admissible model, a
// bigger SRAM never costs less per access, leaks at least as much, and
// all energies stay non-negative. Models are randomized around the
// default with the same perturbation the chaos corruptor uses, so the
// property covers the whole family, not one calibration.
func TestMemoryModelMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		m := faultinject.PerturbModel(energy.DefaultMemoryModel(), r)
		// Random size pair with small <= big, spanning 1B..1GiB.
		e1 := r.Intn(24)
		e2 := e1 + r.Intn(31-e1)
		small := uint32(1) << e1
		big := uint32(1) << e2
		if m.ReadEnergy(small) > m.ReadEnergy(big) {
			t.Fatalf("trial %d: read energy not monotone: %v @%dB > %v @%dB (model %+v)",
				trial, m.ReadEnergy(small), small, m.ReadEnergy(big), big, m)
		}
		if m.WriteEnergy(small) > m.WriteEnergy(big) {
			t.Fatalf("trial %d: write energy not monotone: %v @%dB > %v @%dB (model %+v)",
				trial, m.WriteEnergy(small), small, m.WriteEnergy(big), big, m)
		}
		cycles := uint64(r.Intn(1 << 20))
		if m.Leakage(small, cycles) > m.Leakage(big, cycles) {
			t.Fatalf("trial %d: leakage not monotone in size (model %+v)", trial, m)
		}
		if m.Leakage(big, cycles) > m.Leakage(big, cycles+1+uint64(r.Intn(1000))) {
			t.Fatalf("trial %d: leakage not monotone in cycles (model %+v)", trial, m)
		}
		for _, e := range []energy.PJ{
			m.ReadEnergy(small), m.WriteEnergy(small), m.Leakage(small, cycles), m.SelectEnergy(1 + r.Intn(16)),
		} {
			if e < 0 {
				t.Fatalf("trial %d: negative energy %v (model %+v)", trial, e, m)
			}
		}
	}
}

// TestSelectEnergyMonotoneInBanks: decoding into more banks never gets
// cheaper, and a monolithic memory pays nothing.
func TestSelectEnergyMonotoneInBanks(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := faultinject.PerturbModel(energy.DefaultMemoryModel(), r)
		if got := m.SelectEnergy(1); got != 0 {
			t.Fatalf("monolithic select energy %v, want 0", got)
		}
		prev := energy.PJ(0)
		for banks := 1; banks <= 64; banks *= 2 {
			e := m.SelectEnergy(banks)
			if e < prev {
				t.Fatalf("trial %d: select energy fell from %v to %v at %d banks", trial, prev, e, banks)
			}
			prev = e
		}
	}
}
