package energy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestReadEnergyMonotone: bigger SRAMs must cost more per access, for any
// reasonable model.
func TestReadEnergyMonotone(t *testing.T) {
	m := DefaultMemoryModel()
	prev := PJ(0)
	for _, size := range []uint32{256, 1024, 4096, 16384, 65536, 1 << 20} {
		e := m.ReadEnergy(size)
		if e <= prev {
			t.Fatalf("read energy not monotone at %d: %v <= %v", size, e, prev)
		}
		w := m.WriteEnergy(size)
		if w <= e {
			t.Errorf("write should cost more than read at %d: %v <= %v", size, w, e)
		}
		prev = e
	}
}

func TestLeakageScales(t *testing.T) {
	m := DefaultMemoryModel()
	if m.Leakage(1024, 1000) >= m.Leakage(2048, 1000) {
		t.Error("leakage must grow with size")
	}
	if m.Leakage(1024, 1000) >= m.Leakage(1024, 2000) {
		t.Error("leakage must grow with time")
	}
	if m.Leakage(0, 1000) != 0 {
		t.Error("zero size leaks nothing")
	}
}

func TestSelectEnergy(t *testing.T) {
	m := DefaultMemoryModel()
	if m.SelectEnergy(1) != 0 {
		t.Error("monolithic memory has no select overhead")
	}
	if m.SelectEnergy(2) <= 0 {
		t.Error("2 banks need select energy")
	}
	if m.SelectEnergy(16) <= m.SelectEnergy(2) {
		t.Error("select energy must grow with bank count")
	}
}

func TestWordTransitions(t *testing.T) {
	if got := WordTransitions(0, 0xF); got != 4 {
		t.Fatalf("transitions = %d, want 4", got)
	}
	if got := WordTransitions(0xFFFFFFFF, 0xFFFFFFFF); got != 0 {
		t.Fatalf("transitions = %d, want 0", got)
	}
}

// TestCouplingCountsOppositeTogglesOnly: coupling requires adjacent lines
// moving in opposite directions.
func TestCouplingCountsOppositeTogglesOnly(t *testing.T) {
	// Lines 0 rises, line 1 falls: one coupling event.
	if got := CouplingTransitions(0b10, 0b01, 8); got != 1 {
		t.Fatalf("opposite toggle coupling = %d, want 1", got)
	}
	// Both rise: no coupling.
	if got := CouplingTransitions(0b00, 0b11, 8); got != 0 {
		t.Fatalf("same-direction coupling = %d, want 0", got)
	}
	// Far-apart toggles: no coupling.
	if got := CouplingTransitions(0b1, 0b10000000, 8); got != 0 {
		t.Fatalf("distant toggle coupling = %d, want 0", got)
	}
}

// TestSequenceEnergyAdditive: energy of a concatenated sequence equals the
// sum over its windows (with shared boundary words).
func TestSequenceEnergyAdditive(t *testing.T) {
	b := DefaultBusModel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		words := make([]uint32, 20)
		for i := range words {
			words[i] = r.Uint32()
		}
		whole := b.SequenceEnergy(words, 32)
		parts := b.SequenceEnergy(words[:10], 32) + b.SequenceEnergy(words[9:], 32)
		return abs(float64(whole-parts)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestSequenceEnergyEmpty(t *testing.T) {
	b := DefaultBusModel()
	if b.SequenceEnergy(nil, 32) != 0 {
		t.Fatal("empty sequence has zero energy")
	}
	if b.SequenceEnergy([]uint32{5}, 32) != 0 {
		t.Fatal("single word has zero transitions")
	}
}

func TestCacheModel(t *testing.T) {
	c := DefaultCacheModel()
	if c.ConventionalAccess(8) != 8*(c.TagE+c.DataE) {
		t.Fatal("conventional access energy wrong")
	}
	if c.DirectedAccess() >= c.ConventionalAccess(2) {
		t.Error("directed access should beat even a 2-way probe")
	}
}

func TestPJString(t *testing.T) {
	if got := PJ(1.5).String(); got != "1.500 pJ" {
		t.Fatalf("PJ string = %q", got)
	}
}

// TestZeroSizeExpDefaults: a MemoryModel built without SizeExp must not
// degenerate to a flat model.
func TestZeroSizeExpDefaults(t *testing.T) {
	m := MemoryModel{ReadE0: 1, KSize: 0.02}
	if m.ReadEnergy(1<<20) <= m.ReadEnergy(1<<10) {
		t.Fatal("zero SizeExp must fall back to a growing exponent")
	}
}
