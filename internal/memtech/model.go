package memtech

import (
	"fmt"
	"math"

	"lpmem/internal/energy"
)

// refTechnology is the node the base energy.MemoryModel is calibrated
// at; all technology scaling is relative to it.
const refTechnology = 0.18

// Per-cell-type scale factors relative to the base model. The orderings
// are the physical invariants the property tests pin:
//
//	static power:   lstp < lop < hp      (leakiest first when reversed)
//	access latency: hp   < lop < lstp    (fastest first)
//
// Dynamic energy follows ITRS shape: lop switches cheapest (low
// operating power), lstp pays a higher-Vt/higher-Vdd premium, hp drives
// hardest.
var cellScales = map[CellType]struct {
	dyn  float64 // per-access dynamic energy multiplier
	leak float64 // per-cycle static power multiplier
	lat  float64 // access-latency multiplier
	area float64 // cell-area multiplier
}{
	CellHP:   {dyn: 1.25, leak: 30.0, lat: 1.0, area: 1.25},
	CellLOP:  {dyn: 0.85, leak: 4.0, lat: 1.3, area: 1.0},
	CellLSTP: {dyn: 1.05, leak: 0.08, lat: 1.6, area: 1.0},
}

// dataShare / peripheralShare split each scale between the data array
// and its periphery, so mixed configurations (lstp data under hp
// periphery) interpolate instead of jumping.
const (
	dynDataShare  = 0.7
	leakDataShare = 0.8
)

// Model prices accesses, leakage and latency for an SRAM built from a
// Config, layered over the repository's base energy model. Build one
// with New; the zero value is not useful.
type Model struct {
	// Base is the underlying 0.18 µm-calibrated model all scaling is
	// applied to.
	Base energy.MemoryModel
	// Cfg is the validated technology configuration.
	Cfg Config

	// Cached composite scale factors (pure functions of Cfg).
	dynScale  float64
	leakScale float64
	latScale  float64
	areaScale float64
}

// New validates both layers and returns the composed model.
func New(base energy.MemoryModel, cfg Config) (*Model, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("memtech: base model: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	data := cellScales[cfg.DataCell]
	peri := cellScales[cfg.PeripheralCell]

	// Technology scaling relative to the 0.18 µm calibration node:
	// switched capacitance shrinks quadratically with feature size, while
	// subthreshold leakage grows steeply as threshold voltages drop —
	// the crossover that makes modern nodes leakage-dominated.
	shrink := cfg.Technology / refTechnology
	dynNode := shrink * shrink
	leakNode := math.Pow(1/shrink, 2.5)

	return &Model{
		Base:      base,
		Cfg:       cfg,
		dynScale:  (dynDataShare*data.dyn + (1-dynDataShare)*peri.dyn) * dynNode,
		leakScale: (leakDataShare*data.leak + (1-leakDataShare)*peri.leak) * leakNode,
		latScale:  math.Max(data.lat, peri.lat),
		areaScale: data.area * shrink * shrink,
	}, nil
}

// FromPreset builds a model from a named preset over the default base
// model; it returns an error rather than panicking so callers in
// internal/ stay panic-free.
func FromPreset(name string) (*Model, error) {
	cfg, err := Preset(name)
	if err != nil {
		return nil, err
	}
	return New(energy.DefaultMemoryModel(), cfg)
}

// ReadEnergy returns the per-read dynamic energy of a size-byte array,
// including UCA bank selection.
func (m *Model) ReadEnergy(size uint32) energy.PJ {
	return m.Base.ReadEnergy(size)*energy.PJ(m.dynScale) + m.Base.SelectEnergy(m.Cfg.UCABankCount)
}

// WriteEnergy returns the per-write dynamic energy of a size-byte array,
// including UCA bank selection.
func (m *Model) WriteEnergy(size uint32) energy.PJ {
	return m.Base.WriteEnergy(size)*energy.PJ(m.dynScale) + m.Base.SelectEnergy(m.Cfg.UCABankCount)
}

// StaticPower returns the ungated static (leakage) power of a size-byte
// array, in PJ per cycle.
func (m *Model) StaticPower(size uint32) energy.PJ {
	return m.Base.LeakPerByteCycle * energy.PJ(size) * energy.PJ(m.leakScale)
}

// LeakageEnergy returns the static energy of holding size bytes powered
// for the given cycles, with no gating.
func (m *Model) LeakageEnergy(size uint32, cycles uint64) energy.PJ {
	return m.StaticPower(size) * energy.PJ(cycles)
}

// AccessCycles returns the access-latency multiplier of the cell
// choice: cycles per access relative to the hp baseline.
func (m *Model) AccessCycles() float64 { return m.latScale }

// AreaScale returns the array-area multiplier of the cell and node
// choice relative to the 0.18 µm hp baseline (an area proxy for sweeps).
func (m *Model) AreaScale() float64 { return m.areaScale }

// DynamicEnergy prices a read/write mix against a size-byte array.
func (m *Model) DynamicEnergy(size uint32, reads, writes uint64) energy.PJ {
	return m.ReadEnergy(size)*energy.PJ(reads) + m.WriteEnergy(size)*energy.PJ(writes)
}

// TotalEnergy is the ungated total: dynamic plus leakage over the run.
func (m *Model) TotalEnergy(size uint32, reads, writes, cycles uint64) energy.PJ {
	return m.DynamicEnergy(size, reads, writes) + m.LeakageEnergy(size, cycles)
}
