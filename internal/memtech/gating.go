package memtech

import (
	"fmt"
	"math"

	"lpmem/internal/energy"
)

// gatedShares is the fraction of total static power each CACTI gating
// switch can cut off when enabled. They sum to 0.95: even a fully gated
// array keeps a retention rail (state is preserved, as CACTI's
// power-gated SRAM modes assume), so some leakage always remains.
var gatedShares = []struct {
	enabled func(Config) bool
	share   float64
}{
	{func(c Config) bool { return c.ArrayPowerGating }, 0.55},
	{func(c Config) bool { return c.WLPowerGating }, 0.10},
	{func(c Config) bool { return c.CLPowerGating }, 0.08},
	{func(c Config) bool { return c.BitlineFloating }, 0.07},
	{func(c Config) bool { return c.InterconnectPowerGating }, 0.15},
}

// Gating is the two-state (active ⇄ gated) power-gating machine derived
// from a Config for one array size: while gated the array's static
// power drops by SavedFrac, and every gated→active transition costs
// WakeEnergy and stalls the first access by WakeLatency cycles.
type Gating struct {
	// SavedFrac is the fraction of static power eliminated while gated,
	// in [0, 0.95]; 0 means no switch is enabled.
	SavedFrac float64
	// WakeLatency is the gated→active transition time in cycles (the
	// CACTI performance-loss budget buys this down: a bigger budget
	// tolerates a slower, smaller sleep network).
	WakeLatency uint64
	// WakeEnergy is the energy of one gated→active transition
	// (recharging the virtual rails), for the array size the machine was
	// derived for.
	WakeEnergy energy.PJ
	// staticPower is the ungated per-cycle leakage of that array.
	staticPower energy.PJ
}

// wakeTauCycles converts the performance-loss budget into the
// characteristic wake cost, expressed in cycles of *gated-off* static
// power: WakeEnergy = SavedFrac · StaticPower · wakeTau. A tighter loss
// budget (smaller L) forces larger, faster sleep transistors whose rail
// recharge costs more, so the break-even idle interval stretches.
func wakeTauCycles(perfLoss float64) float64 {
	return 50 + 2/perfLoss
}

// Gating derives the machine for a size-byte array. With every switch
// off it returns the inert machine (SavedFrac 0, no penalties).
func (m *Model) Gating(size uint32) Gating {
	var frac float64
	for _, s := range gatedShares {
		if s.enabled(m.Cfg) {
			frac += s.share
		}
	}
	if frac == 0 {
		return Gating{staticPower: m.StaticPower(size)}
	}
	p := m.StaticPower(size)
	tau := wakeTauCycles(m.Cfg.PowerGatingPerformanceLoss)
	return Gating{
		SavedFrac:   frac,
		WakeLatency: uint64(math.Max(1, math.Round(m.Cfg.PowerGatingPerformanceLoss*1000))),
		WakeEnergy:  energy.PJ(frac) * p * energy.PJ(tau),
		staticPower: p,
	}
}

// BreakEven returns the idle-interval length, in cycles, above which
// gating an interval saves net energy: the t solving
// SavedFrac·P·t = WakeEnergy. Intervals shorter than this lose energy
// to the wake transition. It returns +Inf for an inert machine.
func (g Gating) BreakEven() float64 {
	if g.SavedFrac <= 0 || g.staticPower <= 0 {
		return math.Inf(1)
	}
	return float64(g.WakeEnergy) / (g.SavedFrac * float64(g.staticPower))
}

// IdleReport prices one idle-interval trace under the machine.
type IdleReport struct {
	// Ungated is the baseline: full static power over every interval.
	Ungated energy.PJ
	// Gated is the policy's energy including wake penalties.
	Gated energy.PJ
	// Wakes counts gated→active transitions taken.
	Wakes uint64
	// WakeStallCycles is the total latency added by those transitions.
	WakeStallCycles uint64
}

// Saving returns the percent static energy saved by the policy.
func (r IdleReport) Saving() float64 {
	if r.Ungated == 0 {
		return 0
	}
	return 100 * float64(r.Ungated-r.Gated) / float64(r.Ungated)
}

// OracleGated prices the idle intervals under the oracle policy: an
// interval is gated if and only if its length is at least the
// break-even point (interval lengths are known in trace post-mortem, so
// the oracle is realizable here). By construction the gated energy of
// every interval is ≤ its ungated energy, so this policy never loses —
// the invariant the property tests pin.
func (g Gating) OracleGated(idle []uint64) IdleReport {
	var rep IdleReport
	be := g.BreakEven()
	for _, t := range idle {
		full := g.staticPower * energy.PJ(t)
		rep.Ungated += full
		if g.SavedFrac > 0 && float64(t) >= be {
			rep.Gated += energy.PJ(1-g.SavedFrac)*full + g.WakeEnergy
			rep.Wakes++
			rep.WakeStallCycles += g.WakeLatency
		} else {
			rep.Gated += full
		}
	}
	return rep
}

// TimeoutGated prices the intervals under the reactive policy real
// controllers use: stay active for threshold cycles of idleness, then
// gate until the next access. Unlike the oracle it can lose energy on
// intervals in (threshold, threshold+BreakEven) — the wake cost is paid
// but the gated stretch was too short — which is exactly the band E22
// reports the counterexamples from.
func (g Gating) TimeoutGated(idle []uint64, threshold uint64) IdleReport {
	var rep IdleReport
	for _, t := range idle {
		full := g.staticPower * energy.PJ(t)
		rep.Ungated += full
		if g.SavedFrac > 0 && t > threshold {
			gatedCycles := t - threshold
			rep.Gated += g.staticPower*energy.PJ(threshold) +
				energy.PJ(1-g.SavedFrac)*g.staticPower*energy.PJ(gatedCycles) +
				g.WakeEnergy
			rep.Wakes++
			rep.WakeStallCycles += g.WakeLatency
		} else {
			rep.Gated += full
		}
	}
	return rep
}

// String summarises the machine for diagnostics.
func (g Gating) String() string {
	return fmt.Sprintf("gating{saved %.0f%%, wake %d cycles / %s, break-even %.0f cycles}",
		100*g.SavedFrac, g.WakeLatency, g.WakeEnergy, g.BreakEven())
}
