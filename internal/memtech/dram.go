package memtech

import (
	"fmt"

	"lpmem/internal/energy"
	"lpmem/internal/trace"
)

// DRAM is a banked main-memory model with open-row (row-buffer) policy
// and burst transfers. Consecutive pages interleave across banks, each
// bank keeps its last-activated row open, and every access is classified
// as a row-buffer hit (row already open), a row miss (bank had no open
// row: activate) or a row conflict (another row open: precharge then
// activate) — the access taxonomy of the DRAM survey in PAPERS.md
// (Mutlu et al., arXiv 1805.09127).
type DRAM struct {
	// Cfg supplies PageSize, BurstLength and (via UCABankCount) the
	// bank count.
	Cfg Config

	// Per-event energies, derived from the technology model in NewDRAM.
	ActivateE  energy.PJ // open one row into the row buffer
	PrechargeE energy.PJ // write the open row back / precharge bit lines
	BurstE     energy.PJ // move one burst (BurstLength bytes) on the bus
	WritePremE energy.PJ // extra per-burst cost of a write burst
	// StaticPerBankCycle is the background power of one bank's row
	// buffer and periphery, per cycle: more banks buy locality with
	// standby power.
	StaticPerBankCycle energy.PJ

	// Latency components in cycles (relative DDR3-shaped timings).
	TRCD, TRP, TCAS, TBurst uint64

	// openRow[b] is bank b's open row, -1 when closed.
	openRow []int64
}

// DRAMStats accumulates the classified accesses of a replay.
type DRAMStats struct {
	Reads        uint64 `json:"reads"`
	Writes       uint64 `json:"writes"`
	RowHits      uint64 `json:"row_hits"`
	RowMisses    uint64 `json:"row_misses"`
	RowConflicts uint64 `json:"row_conflicts"`
	Bursts       uint64 `json:"bursts"`
}

// Accesses returns the total classified accesses.
func (s DRAMStats) Accesses() uint64 { return s.RowHits + s.RowMisses + s.RowConflicts }

// HitRate returns row-buffer hits over accesses (0 when empty).
func (s DRAMStats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses())
}

// NewDRAM derives a banked DRAM from the technology model. Activation
// senses a whole page, so its cost grows with PageSize (and shrinks
// with the node's dynamic scaling); burst energy is linear in the bytes
// moved; the per-bank background power is a small row-buffer standby
// term — DRAM cells store charge on capacitors, so banks cost standby
// periphery power, not SRAM-class subthreshold leakage.
func NewDRAM(m *Model) (*DRAM, error) {
	if m == nil {
		return nil, fmt.Errorf("memtech: NewDRAM needs a model")
	}
	cfg := m.Cfg
	// Activation senses the whole page through the bit lines: one
	// PageSize-array read under a node-scaled periphery factor.
	act := m.Base.ReadEnergy(cfg.PageSize) * energy.PJ(0.3+0.4*m.dynScale)
	// Burst beats move BurstLength bytes across the IO pins; off-chip IO
	// barely scales with the node, so this is a flat per-byte cost.
	const ioPerByte = 0.15
	burst := energy.PJ(ioPerByte * float64(cfg.BurstLength))
	// Row-buffer + periphery standby per bank: a capacitor array leaks
	// orders of magnitude below SRAM, so only a thin slice of the base
	// leakage term, uncoupled from the SRAM cell type.
	const standbyFactor = 0.005
	d := &DRAM{
		Cfg:        cfg,
		ActivateE:  act,
		PrechargeE: act * 0.4,
		BurstE:     burst,
		WritePremE: burst * 0.25,
		StaticPerBankCycle: m.Base.LeakPerByteCycle * energy.PJ(cfg.PageSize) *
			energy.PJ(standbyFactor),
		TRCD: 15, TRP: 15, TCAS: 10,
		TBurst:  uint64(cfg.BurstLength / 2),
		openRow: make([]int64, cfg.UCABankCount),
	}
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	return d, nil
}

// Reset closes every bank (between independent replays).
func (d *DRAM) Reset() {
	for i := range d.openRow {
		d.openRow[i] = -1
	}
}

// locate maps an address to its bank and row. Pages spread across banks
// through a bit-mixing hash of the page index rather than a plain
// modulo: embedded images lay arrays out at power-of-two strides (16–32
// pages apart in the kernel suite), and a modulo interleave aliases all
// of them into one bank, defeating banking entirely — the problem
// permutation-based page interleaving solves in the DRAM literature,
// here taken to its limit with a full avalanche mix (murmur3 fmix32
// constants). The row identity is the page number itself: the hash only
// decides which row buffer tracks it.
func (d *DRAM) locate(addr uint32) (bank int, row int64) {
	page := addr / d.Cfg.PageSize
	h := page
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	bank = int(h) % d.Cfg.UCABankCount
	return bank, int64(page)
}

// Access classifies and records one transfer of width bytes.
func (d *DRAM) Access(addr uint32, isWrite bool, width uint32, st *DRAMStats) {
	bank, row := d.locate(addr)
	switch {
	case d.openRow[bank] == row:
		st.RowHits++
	case d.openRow[bank] < 0:
		st.RowMisses++
	default:
		st.RowConflicts++
	}
	d.openRow[bank] = row
	if isWrite {
		st.Writes++
	} else {
		st.Reads++
	}
	if width == 0 {
		width = 1
	}
	st.Bursts += uint64((int(width) + d.Cfg.BurstLength - 1) / d.Cfg.BurstLength)
}

// Replay classifies a whole access stream (fetches skipped) from a cold
// (all-banks-closed) state and returns the statistics.
func (d *DRAM) Replay(tr *trace.Trace) DRAMStats {
	d.Reset()
	var st DRAMStats
	for _, a := range tr.Accesses {
		if a.Kind == trace.Fetch {
			continue
		}
		d.Access(a.Addr, a.Kind == trace.Write, uint32(a.Width), &st)
	}
	return st
}

// Energy prices the classified accesses plus the banks' background
// power over the run. It is strictly monotone in the row-miss and
// row-conflict counts: every hit→miss upgrade adds one activation,
// every miss→conflict upgrade adds one precharge.
func (d *DRAM) Energy(st DRAMStats, cycles uint64) energy.PJ {
	e := d.BurstE*energy.PJ(st.Bursts) +
		d.WritePremE*energy.PJ(st.Writes) +
		d.ActivateE*energy.PJ(st.RowMisses+st.RowConflicts) +
		d.PrechargeE*energy.PJ(st.RowConflicts)
	e += d.StaticPerBankCycle * energy.PJ(d.Cfg.UCABankCount) * energy.PJ(cycles)
	return e
}

// Latency returns the total access latency in cycles: column access per
// access, row activation on misses, precharge+activation on conflicts,
// and the burst beats.
func (d *DRAM) Latency(st DRAMStats) uint64 {
	return d.TCAS*st.Accesses() +
		d.TRCD*(st.RowMisses+st.RowConflicts) +
		d.TRP*st.RowConflicts +
		d.TBurst*st.Bursts
}
