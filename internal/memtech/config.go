// Package memtech is the configurable memory-technology layer: it prices
// the same access streams the rest of the repository produces (caches,
// hierarchies, partitioned SRAMs) under *modern* technology assumptions —
// leakage-dominated cell libraries, power-gated arrays and banked DRAM
// main memories — instead of the dynamic-energy-only 0.18 µm SRAM model
// every DATE'03 experiment was calibrated to.
//
// The entry point is Config, a declarative description following the
// CACTI input schema (technology node, hp/lop/lstp cell types for the
// data and peripheral arrays, UCA bank count, per-structure power-gating
// switches with a Power_Gating_Performance_Loss-style wake budget, and
// DRAM page/burst geometry). A Config plus the base energy.MemoryModel
// yields:
//
//   - Model: per-access dynamic energy and per-cycle static (leakage)
//     power scaled by cell type and technology node (model.go);
//   - Gating: a two-state (active/gated) power-gating machine with
//     state-transition energy and latency penalties accounted per idle
//     interval (gating.go);
//   - DRAM: a banked main-memory model with row-buffer hit/miss/conflict
//     pricing and burst transfers (dram.go).
//
// Like every model in this repository the calibration is relative, not
// absolute: all scale factors are monotone in the physical direction
// (smaller nodes leak more, low-standby cells leak less and switch
// slower), which is what preserves the papers' comparative claims under
// substitution (see DESIGN.md, "Substitutions").
//
//lint:hotpath
package memtech

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// CellType names an ITRS transistor flavour, the CACTI
// Data_array_cell_type vocabulary: high-performance (fast, leaky),
// low-operating-power (cheap to switch) and low-standby-power (very low
// leakage, slow).
type CellType string

// The three ITRS cell types, ordered fastest/leakiest first.
const (
	CellHP   CellType = "hp"
	CellLOP  CellType = "lop"
	CellLSTP CellType = "lstp"
)

// CellTypes returns the valid cell types in canonical (hp, lop, lstp)
// order.
func CellTypes() []CellType { return []CellType{CellHP, CellLOP, CellLSTP} }

// Validate reports whether the cell type is one of hp/lop/lstp.
func (c CellType) Validate() error {
	switch c {
	case CellHP, CellLOP, CellLSTP:
		return nil
	}
	return fmt.Errorf("memtech: unknown cell type %q (want hp, lop or lstp)", string(c))
}

// Config is the declarative technology description. Field names follow
// the CACTI input schema (SNIPPETS.md snippet 3) so a config can be read
// as a CACTI deck: technology node, per-array cell types, UCA bank
// count, the five power-gating switches with their allowed performance
// loss, and the DRAM main-memory geometry.
type Config struct {
	// Technology is the process node in micrometres (CACTI `technology`),
	// e.g. 0.18, 0.09, 0.065. Smaller nodes switch cheaper and leak more.
	Technology float64 `json:"technology"`

	// DataCell and PeripheralCell select the cell flavour of the data
	// array and its periphery (decoders, sense amps, drivers) — CACTI's
	// Data_array_cell_type / Data_array_peripheral_type.
	DataCell       CellType `json:"data_array_cell_type"`
	PeripheralCell CellType `json:"data_array_peripheral_type"`

	// UCABankCount is the number of independently addressed sub-banks of
	// the SRAM array (CACTI UCA_bank_count); bank selection is priced
	// through the base model's decoder term.
	UCABankCount int `json:"uca_bank_count"`

	// The power-gating switches (CACTI Array_Power_Gating,
	// WL_Power_Gating, CL_Power_Gating, Bitline_floating,
	// Interconnect_Power_Gating). Each enabled structure contributes its
	// share of the gateable static power; see Model.Gating.
	ArrayPowerGating        bool `json:"array_power_gating"`
	WLPowerGating           bool `json:"wl_power_gating"`
	CLPowerGating           bool `json:"cl_power_gating"`
	BitlineFloating         bool `json:"bitline_floating"`
	InterconnectPowerGating bool `json:"interconnect_power_gating"`

	// PowerGatingPerformanceLoss is the fraction of access time the
	// design may lose to sleep-transistor insertion (CACTI
	// Power_Gating_Performance_Loss, e.g. 0.01). A larger budget permits
	// smaller sleep transistors: slower wake-up but a cheaper one, so the
	// gating break-even interval shrinks. Must be in (0, 0.5]; it is
	// only consulted when at least one gating switch is on.
	PowerGatingPerformanceLoss float64 `json:"power_gating_performance_loss"`

	// PageSize is the DRAM row-buffer size in bytes (CACTI `page_size`).
	PageSize uint32 `json:"page_size"`
	// BurstLength is the bytes moved per DRAM burst beat (CACTI
	// `burst_length`); a transfer of w bytes costs ceil(w/BurstLength)
	// bursts.
	BurstLength int `json:"burst_length"`
}

// Validate checks every field of the configuration.
func (c Config) Validate() error {
	if math.IsNaN(c.Technology) || c.Technology < 0.022 || c.Technology > 0.25 {
		return fmt.Errorf("memtech: technology %v µm outside the modelled [0.022, 0.25] band", c.Technology)
	}
	if err := c.DataCell.Validate(); err != nil {
		return fmt.Errorf("memtech: data array: %w", err)
	}
	if err := c.PeripheralCell.Validate(); err != nil {
		return fmt.Errorf("memtech: peripheral array: %w", err)
	}
	if c.UCABankCount < 1 || c.UCABankCount > 64 {
		return fmt.Errorf("memtech: UCA bank count %d outside [1, 64]", c.UCABankCount)
	}
	if c.GatingEnabled() {
		if math.IsNaN(c.PowerGatingPerformanceLoss) ||
			c.PowerGatingPerformanceLoss <= 0 || c.PowerGatingPerformanceLoss > 0.5 {
			return fmt.Errorf("memtech: power-gating performance loss %v outside (0, 0.5]",
				c.PowerGatingPerformanceLoss)
		}
	}
	if c.PageSize == 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("memtech: page size %d must be a positive power of two", c.PageSize)
	}
	if c.BurstLength < 1 || c.BurstLength&(c.BurstLength-1) != 0 {
		return fmt.Errorf("memtech: burst length %d must be a positive power of two", c.BurstLength)
	}
	return nil
}

// GatingEnabled reports whether any of the five gating switches is on.
func (c Config) GatingEnabled() bool {
	return c.ArrayPowerGating || c.WLPowerGating || c.CLPowerGating ||
		c.BitlineFloating || c.InterconnectPowerGating
}

// WithAllGating returns a copy with every gating switch enabled and the
// given performance-loss budget.
func (c Config) WithAllGating(perfLoss float64) Config {
	c.ArrayPowerGating = true
	c.WLPowerGating = true
	c.CLPowerGating = true
	c.BitlineFloating = true
	c.InterconnectPowerGating = true
	c.PowerGatingPerformanceLoss = perfLoss
	return c
}

// ParseJSON decodes and validates a configuration. Unknown fields are
// rejected so a typoed CACTI knob fails loudly instead of silently
// keeping its default.
func ParseJSON(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("memtech: decoding config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// presets maps the named technology configurations the experiments and
// the sweep adapter start from. Every preset validates.
var presets = map[string]Config{
	// The legacy calibration point: the 0.18 µm hp SRAM every DATE'03
	// experiment was priced with, now expressible declaratively.
	"sram-hp-180": {
		Technology: 0.18, DataCell: CellHP, PeripheralCell: CellHP,
		UCABankCount: 1, PageSize: 8192, BurstLength: 8,
	},
	// Modern leakage-dominated nodes, one per cell flavour.
	"sram-hp-65": {
		Technology: 0.065, DataCell: CellHP, PeripheralCell: CellHP,
		UCABankCount: 1, PageSize: 8192, BurstLength: 8,
	},
	"sram-lop-65": {
		Technology: 0.065, DataCell: CellLOP, PeripheralCell: CellLOP,
		UCABankCount: 1, PageSize: 8192, BurstLength: 8,
	},
	"sram-lstp-65": {
		Technology: 0.065, DataCell: CellLSTP, PeripheralCell: CellLSTP,
		UCABankCount: 1, PageSize: 8192, BurstLength: 8,
	},
	// The fully gated low-standby configuration E22 and the sweep
	// adapter's gated points build on.
	"sram-lstp-gated-65": {
		Technology: 0.065, DataCell: CellLSTP, PeripheralCell: CellLSTP,
		UCABankCount: 1, PageSize: 8192, BurstLength: 8,
		ArrayPowerGating: true, WLPowerGating: true, CLPowerGating: true,
		BitlineFloating: true, InterconnectPowerGating: true,
		PowerGatingPerformanceLoss: 0.01,
	},
	// A DDR3-shaped banked main memory (8 KiB pages, 8-byte bursts).
	"dram-ddr3-65": {
		Technology: 0.065, DataCell: CellLOP, PeripheralCell: CellLOP,
		UCABankCount: 8, PageSize: 8192, BurstLength: 8,
	},
}

// Presets lists the preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named configuration.
func Preset(name string) (Config, error) {
	c, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("memtech: unknown preset %q (known: %v)", name, Presets())
	}
	return c, nil
}
