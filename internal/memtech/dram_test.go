package memtech_test

import (
	"testing"

	"lpmem/internal/memtech"
	"lpmem/internal/trace"
)

// singleBankDRAM builds a 1-bank DRAM with 1 KiB pages so the row-buffer
// classification is hand-checkable.
func singleBankDRAM(t *testing.T) *memtech.DRAM {
	t.Helper()
	cfg, err := memtech.Preset("dram-ddr3-65")
	if err != nil {
		t.Fatal(err)
	}
	cfg.UCABankCount = 1
	cfg.PageSize = 1024
	m, err := memtech.FromPreset("dram-ddr3-65")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := memtech.New(m.Base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := memtech.NewDRAM(m2)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDRAMClassification hand-checks the hit/miss/conflict taxonomy on a
// single bank: first touch of a row is a miss, same-row touches hit,
// switching rows with one open is a conflict.
func TestDRAMClassification(t *testing.T) {
	d := singleBankDRAM(t)
	var st memtech.DRAMStats
	seq := []struct {
		addr uint32
		want string
	}{
		{0, "miss"},        // cold bank
		{512, "hit"},       // same 1 KiB page
		{1023, "hit"},      // still the same page
		{2048, "conflict"}, // page 2 while page 0 is open
		{2080, "hit"},      // page 2 now open
		{0, "conflict"},    // back to page 0
		{1024, "conflict"}, // page 1
		{1024, "hit"},      // repeat
	}
	for i, s := range seq {
		before := st
		d.Access(s.addr, false, 32, &st)
		var got string
		switch {
		case st.RowHits == before.RowHits+1:
			got = "hit"
		case st.RowMisses == before.RowMisses+1:
			got = "miss"
		case st.RowConflicts == before.RowConflicts+1:
			got = "conflict"
		}
		if got != s.want {
			t.Fatalf("access %d (addr %d): classified %s, want %s", i, s.addr, got, s.want)
		}
	}
	if st.Accesses() != uint64(len(seq)) {
		t.Fatalf("accesses %d, want %d", st.Accesses(), len(seq))
	}
	// 32-byte transfers over 8-byte bursts: 4 bursts each.
	if want := uint64(len(seq) * 4); st.Bursts != want {
		t.Fatalf("bursts %d, want %d", st.Bursts, want)
	}
	if st.Writes != 0 || st.Reads != uint64(len(seq)) {
		t.Fatalf("read/write split wrong: %+v", st)
	}

	// Reset closes the banks: the next access is a miss again.
	d.Reset()
	before := st
	d.Access(0, true, 0, &st)
	if st.RowMisses != before.RowMisses+1 {
		t.Fatal("access after Reset should be a row miss")
	}
	if st.Writes != 1 {
		t.Fatal("write access not counted as write")
	}
	// Zero width still moves one burst.
	if st.Bursts != before.Bursts+1 {
		t.Fatalf("zero-width access should cost one burst, got %d", st.Bursts-before.Bursts)
	}
}

// TestDRAMReplaySkipsFetches: main memory in these experiments serves
// data traffic; instruction fetches are filtered out like everywhere
// else in the repository.
func TestDRAMReplaySkipsFetches(t *testing.T) {
	d := singleBankDRAM(t)
	tr := trace.New(8)
	tr.Append(trace.Access{Addr: 0, Width: 4, Kind: trace.Fetch})
	tr.Append(trace.Access{Addr: 0, Width: 4, Kind: trace.Read})
	tr.Append(trace.Access{Addr: 4096, Width: 4, Kind: trace.Write})
	st := d.Replay(tr)
	if st.Accesses() != 2 {
		t.Fatalf("replay classified %d accesses, want 2 (fetch skipped)", st.Accesses())
	}
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("read/write split wrong: %+v", st)
	}
}

// TestDRAMHitRate covers the empty-stats corner the zero-sentinel guards.
func TestDRAMHitRate(t *testing.T) {
	var st memtech.DRAMStats
	if got := st.HitRate(); got != 0 {
		t.Fatalf("empty hit rate %v, want 0", got)
	}
	st.RowHits, st.RowMisses = 3, 1
	if got := st.HitRate(); got != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", got)
	}
}

// TestNewDRAMNilModel: the constructor reports rather than panics.
func TestNewDRAMNilModel(t *testing.T) {
	if _, err := memtech.NewDRAM(nil); err == nil {
		t.Fatal("nil model must error")
	}
}
