package memtech_test

import (
	"strings"
	"testing"

	"lpmem/internal/energy"
	"lpmem/internal/memtech"
)

// TestPresetsValidate: every shipped preset must pass its own validation
// and build a model — a preset that cannot be instantiated is dead
// configuration.
func TestPresetsValidate(t *testing.T) {
	names := memtech.Presets()
	if len(names) == 0 {
		t.Fatal("no presets registered")
	}
	for _, name := range names {
		cfg, err := memtech.Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
		if _, err := memtech.New(energy.DefaultMemoryModel(), cfg); err != nil {
			t.Errorf("preset %q does not build: %v", name, err)
		}
	}
	if _, err := memtech.Preset("no-such-preset"); err == nil {
		t.Fatal("unknown preset must error")
	}
}

// TestConfigValidateRejects walks the invalid corners field by field.
func TestConfigValidateRejects(t *testing.T) {
	valid, err := memtech.Preset("sram-hp-65")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*memtech.Config)
		want string
	}{
		{"tech too small", func(c *memtech.Config) { c.Technology = 0.01 }, "technology"},
		{"tech too large", func(c *memtech.Config) { c.Technology = 0.5 }, "technology"},
		{"bad data cell", func(c *memtech.Config) { c.DataCell = "ulp" }, "cell type"},
		{"bad peripheral cell", func(c *memtech.Config) { c.PeripheralCell = "" }, "cell type"},
		{"zero banks", func(c *memtech.Config) { c.UCABankCount = 0 }, "bank count"},
		{"too many banks", func(c *memtech.Config) { c.UCABankCount = 128 }, "bank count"},
		{"gated with zero loss", func(c *memtech.Config) {
			c.ArrayPowerGating = true
			c.PowerGatingPerformanceLoss = 0
		}, "performance loss"},
		{"gated with huge loss", func(c *memtech.Config) {
			*c = c.WithAllGating(0.9)
		}, "performance loss"},
		{"zero page", func(c *memtech.Config) { c.PageSize = 0 }, "page size"},
		{"non-pow2 page", func(c *memtech.Config) { c.PageSize = 1000 }, "page size"},
		{"zero burst", func(c *memtech.Config) { c.BurstLength = 0 }, "burst length"},
		{"non-pow2 burst", func(c *memtech.Config) { c.BurstLength = 12 }, "burst length"},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: validated, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The ungated zero loss stays legal: the budget is only consulted
	// when a switch is on.
	cfg := valid
	cfg.PowerGatingPerformanceLoss = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("ungated config with zero loss budget should validate: %v", err)
	}
}

// TestParseJSON: round-trips a valid deck, rejects unknown CACTI knobs
// and invalid values.
func TestParseJSON(t *testing.T) {
	good := `{
		"technology": 0.065,
		"data_array_cell_type": "lstp",
		"data_array_peripheral_type": "lop",
		"uca_bank_count": 4,
		"array_power_gating": true,
		"power_gating_performance_loss": 0.01,
		"page_size": 2048,
		"burst_length": 8
	}`
	cfg, err := memtech.ParseJSON([]byte(good))
	if err != nil {
		t.Fatalf("valid deck rejected: %v", err)
	}
	if cfg.DataCell != memtech.CellLSTP || cfg.PeripheralCell != memtech.CellLOP ||
		cfg.UCABankCount != 4 || !cfg.ArrayPowerGating {
		t.Fatalf("deck decoded wrong: %+v", cfg)
	}
	if _, err := memtech.ParseJSON([]byte(`{"technology": 0.065, "cache_size": 65536}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
	if _, err := memtech.ParseJSON([]byte(`{"technology": "abc"}`)); err == nil {
		t.Fatal("malformed value must be rejected")
	}
	if _, err := memtech.ParseJSON([]byte(good[:40])); err == nil {
		t.Fatal("truncated deck must be rejected")
	}
}

// TestCellTypesOrder pins the canonical ordering the tables and property
// tests iterate in.
func TestCellTypesOrder(t *testing.T) {
	got := memtech.CellTypes()
	want := []memtech.CellType{memtech.CellHP, memtech.CellLOP, memtech.CellLSTP}
	if len(got) != len(want) {
		t.Fatalf("CellTypes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CellTypes() = %v, want %v", got, want)
		}
	}
	if err := memtech.CellType("dram").Validate(); err == nil {
		t.Fatal("invalid cell type must error")
	}
}
