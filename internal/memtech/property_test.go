package memtech_test

import (
	"math"
	"math/rand"
	"testing"

	"lpmem/internal/energy"
	"lpmem/internal/faultinject"
	"lpmem/internal/memtech"
)

// randTechnology draws a node inside the modelled band.
func randTechnology(r *rand.Rand) float64 {
	return 0.022 + r.Float64()*(0.25-0.022)
}

// randBaseConfig draws a valid ungated configuration at a random node.
func randBaseConfig(r *rand.Rand, cell memtech.CellType) memtech.Config {
	return memtech.Config{
		Technology: randTechnology(r), DataCell: cell, PeripheralCell: cell,
		UCABankCount: 1 << r.Intn(4),
		PageSize:     1024 << r.Intn(4),
		BurstLength:  4 << r.Intn(3),
	}
}

// TestCellTypeOrderingProperty pins the physical invariants the cell
// library encodes, across random nodes and perturbed base models:
// static power lstp <= lop <= hp, access latency hp <= lop <= lstp.
// These orderings are what E21's inversion claim rests on.
func TestCellTypeOrderingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		base := faultinject.PerturbModel(energy.DefaultMemoryModel(), r)
		tech := randTechnology(r)
		size := uint32(1) << (8 + r.Intn(13)) // 256 B .. 1 MiB
		models := make(map[memtech.CellType]*memtech.Model, 3)
		for _, cell := range memtech.CellTypes() {
			cfg := memtech.Config{
				Technology: tech, DataCell: cell, PeripheralCell: cell,
				UCABankCount: 1, PageSize: 1024, BurstLength: 8,
			}
			m, err := memtech.New(base, cfg)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			models[cell] = m
		}
		hp, lop, lstp := models[memtech.CellHP], models[memtech.CellLOP], models[memtech.CellLSTP]
		if !(lstp.StaticPower(size) <= lop.StaticPower(size) && lop.StaticPower(size) <= hp.StaticPower(size)) {
			t.Fatalf("trial %d: static power ordering violated at %d B / %.3f µm: lstp %v, lop %v, hp %v",
				trial, size, tech, lstp.StaticPower(size), lop.StaticPower(size), hp.StaticPower(size))
		}
		if !(hp.AccessCycles() <= lop.AccessCycles() && lop.AccessCycles() <= lstp.AccessCycles()) {
			t.Fatalf("trial %d: latency ordering violated: hp %v, lop %v, lstp %v",
				trial, hp.AccessCycles(), lop.AccessCycles(), lstp.AccessCycles())
		}
	}
}

// TestLeakageMonotoneProperty: under any cell/node/base combination, a
// bigger array never leaks less, longer runs never leak less, and all
// model outputs stay non-negative.
func TestLeakageMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	cells := memtech.CellTypes()
	for trial := 0; trial < 300; trial++ {
		base := faultinject.PerturbModel(energy.DefaultMemoryModel(), r)
		cfg := randBaseConfig(r, cells[r.Intn(len(cells))])
		m, err := memtech.New(base, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		e1 := r.Intn(20)
		e2 := e1 + r.Intn(24-e1)
		small, big := uint32(1)<<e1, uint32(1)<<e2
		cycles := uint64(r.Intn(1 << 20))
		if m.StaticPower(small) > m.StaticPower(big) {
			t.Fatalf("trial %d: static power not monotone in size (%+v)", trial, cfg)
		}
		if m.LeakageEnergy(big, cycles) > m.LeakageEnergy(big, cycles+1+uint64(r.Intn(1000))) {
			t.Fatalf("trial %d: leakage not monotone in cycles (%+v)", trial, cfg)
		}
		if m.ReadEnergy(small) > m.ReadEnergy(big) || m.WriteEnergy(small) > m.WriteEnergy(big) {
			t.Fatalf("trial %d: access energy not monotone in size (%+v)", trial, cfg)
		}
		for _, e := range []energy.PJ{
			m.ReadEnergy(small), m.WriteEnergy(small), m.StaticPower(small),
			m.TotalEnergy(big, uint64(r.Intn(1000)), uint64(r.Intn(1000)), cycles),
		} {
			if e < 0 || math.IsNaN(float64(e)) {
				t.Fatalf("trial %d: bad energy %v (%+v)", trial, e, cfg)
			}
		}
	}
}

// randIdle draws an idle-interval trace mixing short and long gaps so
// both sides of the break-even point are exercised.
func randIdle(r *rand.Rand) []uint64 {
	n := 1 + r.Intn(200)
	out := make([]uint64, n)
	for i := range out {
		if r.Intn(2) == 0 {
			out[i] = 1 + uint64(r.Intn(100))
		} else {
			out[i] = 1 + uint64(r.ExpFloat64()*1000)
		}
	}
	return out
}

// randGated draws a configuration with a random non-empty subset of the
// five gating switches enabled.
func randGated(r *rand.Rand, cells []memtech.CellType) memtech.Config {
	cfg := randBaseConfig(r, cells[r.Intn(len(cells))])
	for cfg.GatingEnabled() == false {
		cfg.ArrayPowerGating = r.Intn(2) == 0
		cfg.WLPowerGating = r.Intn(2) == 0
		cfg.CLPowerGating = r.Intn(2) == 0
		cfg.BitlineFloating = r.Intn(2) == 0
		cfg.InterconnectPowerGating = r.Intn(2) == 0
	}
	cfg.PowerGatingPerformanceLoss = 0.001 + 0.499*r.Float64()
	return cfg
}

// TestOracleGatingNeverLoses: with wake penalties fully accounted, the
// oracle policy's energy never exceeds the ungated baseline on any idle
// trace, any switch subset, any node, any perturbed base model — the
// soundness half of E22.
func TestOracleGatingNeverLoses(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	cells := memtech.CellTypes()
	for trial := 0; trial < 300; trial++ {
		base := faultinject.PerturbModel(energy.DefaultMemoryModel(), r)
		cfg := randGated(r, cells)
		m, err := memtech.New(base, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g := m.Gating(uint32(1) << (10 + r.Intn(10)))
		// The retention rail always keeps some leakage: even all five
		// switches stop short of 1 (0.95 up to float summation).
		if g.SavedFrac <= 0 || g.SavedFrac > 0.95+1e-9 {
			t.Fatalf("trial %d: SavedFrac %v outside (0, 0.95] (%+v)", trial, g.SavedFrac, cfg)
		}
		rep := g.OracleGated(randIdle(r))
		if rep.Gated > rep.Ungated {
			t.Fatalf("trial %d: oracle gating lost energy: gated %v > ungated %v (break-even %.0f, %+v)",
				trial, rep.Gated, rep.Ungated, g.BreakEven(), cfg)
		}
	}
}

// TestTimeoutGatingCounterexample pins the unsoundness half: the
// reactive timeout policy provably loses energy on an idle interval in
// (threshold, threshold+BreakEven) — the wake cost is paid but the gated
// stretch was too short to recoup it. E22's oracle/timeout gap is this
// band integrated over a distribution.
func TestTimeoutGatingCounterexample(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	cells := memtech.CellTypes()
	for trial := 0; trial < 100; trial++ {
		base := faultinject.PerturbModel(energy.DefaultMemoryModel(), r)
		cfg := randGated(r, cells)
		m, err := memtech.New(base, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g := m.Gating(16 << 10)
		be := g.BreakEven()
		if math.IsInf(be, 1) {
			t.Fatalf("trial %d: gated machine has infinite break-even (%+v)", trial, cfg)
		}
		threshold := uint64(1 + r.Intn(1000))
		// An interval strictly inside the losing band.
		inside := threshold + uint64(math.Max(1, be/2))
		if float64(inside-threshold) >= be {
			// Tiny break-even: the band holds no integer interval, so
			// there is no counterexample to pin at this machine.
			continue
		}
		rep := g.TimeoutGated([]uint64{inside}, threshold)
		if rep.Gated <= rep.Ungated {
			t.Fatalf("trial %d: timeout policy should lose on interval %d (threshold %d, break-even %.0f): gated %v vs ungated %v",
				trial, inside, threshold, be, rep.Gated, rep.Ungated)
		}
		// And past the band it must win again.
		outside := threshold + uint64(math.Ceil(be)) + uint64(r.Intn(10000))
		rep = g.TimeoutGated([]uint64{outside}, threshold)
		if rep.Gated > rep.Ungated {
			t.Fatalf("trial %d: timeout policy should win past the band (interval %d): gated %v vs ungated %v",
				trial, outside, rep.Gated, rep.Ungated)
		}
	}
}

// TestDRAMEnergyMonotoneInMisses: upgrading a row hit to a row miss adds
// an activation, a miss to a conflict adds a precharge — total energy is
// strictly monotone along the hit < miss < conflict axis for any model.
func TestDRAMEnergyMonotoneInMisses(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	cells := memtech.CellTypes()
	for trial := 0; trial < 300; trial++ {
		base := faultinject.PerturbModel(energy.DefaultMemoryModel(), r)
		cfg := randBaseConfig(r, cells[r.Intn(len(cells))])
		m, err := memtech.New(base, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d, err := memtech.NewDRAM(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		st := memtech.DRAMStats{
			Reads:        uint64(r.Intn(10000)),
			Writes:       uint64(r.Intn(10000)),
			RowHits:      1 + uint64(r.Intn(10000)),
			RowMisses:    uint64(r.Intn(10000)),
			RowConflicts: uint64(r.Intn(10000)),
			Bursts:       uint64(r.Intn(40000)),
		}
		cycles := uint64(r.Intn(1 << 20))
		e0 := d.Energy(st, cycles)

		worse := st
		worse.RowHits--
		worse.RowMisses++
		if e1 := d.Energy(worse, cycles); e1 <= e0 {
			t.Fatalf("trial %d: hit→miss upgrade did not increase energy: %v <= %v", trial, e1, e0)
		}
		worse = st
		if worse.RowMisses > 0 {
			worse.RowMisses--
			worse.RowConflicts++
			if e1 := d.Energy(worse, cycles); e1 <= e0 {
				t.Fatalf("trial %d: miss→conflict upgrade did not increase energy: %v <= %v", trial, e1, e0)
			}
		}
		if lat := d.Latency(st); lat == 0 && st.Accesses() > 0 {
			t.Fatalf("trial %d: zero latency for %d accesses", trial, st.Accesses())
		}
	}
}
