// Package pipecache models high-bandwidth pipelined cache architectures,
// reproducing DATE'03 8E.1 (Agarwal, Vijaykumar, Roy: "Exploring High
// Bandwidth Pipelined Cache Architecture for Scaled Technology").
//
// In scaled technologies a cache access takes multiple clock cycles, so an
// unpipelined cache limits bandwidth to one access per access-latency. The
// paper banks the SRAM arrays so word-line and bit-line delays shrink
// until the slowest stage (decode, array access, sense+mux) fits in one
// clock, making the cache accessible every cycle. The figure of merit is
// MOPS normalised by area and energy: banking buys throughput but pays
// duplicated decoders and sense amplifiers.
//
// The delay/area/energy expressions are first-order RC models: word-line
// delay scales with the number of columns per bank, bit-line delay with
// rows per bank, decode with log2(rows), and banking adds a fixed per-bank
// periphery overhead to area and energy.
package pipecache

import (
	"fmt"
	"math"
)

// Tech holds the first-order technology constants.
type Tech struct {
	// DecodePerBit is the decoder delay per address bit (ns).
	DecodePerBit float64
	// WordlinePerCol is word-line RC delay per column (ns).
	WordlinePerCol float64
	// BitlinePerRow is bit-line RC delay per row (ns).
	BitlinePerRow float64
	// SenseDelay is the sense-amp + output mux delay (ns).
	SenseDelay float64
	// PeripheryArea is the per-bank fixed area overhead (relative units).
	PeripheryArea float64
	// PeripheryEnergy is the per-access per-bank fixed energy overhead.
	PeripheryEnergy float64
	// LatchDelay and LatchArea are the per-stage pipeline latch costs.
	LatchDelay float64
	LatchArea  float64
}

// DefaultTech returns constants representative of an aggressive scaled
// node where a monolithic cache access takes ~3-4 fast clocks.
func DefaultTech() Tech {
	return Tech{
		DecodePerBit:    0.035,
		WordlinePerCol:  0.0028,
		BitlinePerRow:   0.0030,
		SenseDelay:      0.12,
		PeripheryArea:   0.035,
		PeripheryEnergy: 0.32,
		LatchDelay:      0.04,
		LatchArea:       0.04,
	}
}

// Design is one cache organization.
type Design struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Banks is the number of independent banks (power of two).
	Banks int
	// Pipelined selects stage latches between decode / array / sense.
	Pipelined bool
}

// Validate checks the organization.
func (d Design) Validate() error {
	if d.SizeBytes <= 0 || d.SizeBytes&(d.SizeBytes-1) != 0 {
		return fmt.Errorf("pipecache: size %d not a power of two", d.SizeBytes)
	}
	if d.Banks <= 0 || d.Banks&(d.Banks-1) != 0 {
		return fmt.Errorf("pipecache: banks %d not a power of two", d.Banks)
	}
	if d.Banks*64 > d.SizeBytes {
		return fmt.Errorf("pipecache: %d banks too many for %d bytes", d.Banks, d.SizeBytes)
	}
	return nil
}

// Metrics is the evaluated design.
type Metrics struct {
	// StageDelays are the decode, array (wordline+bitline) and sense
	// stage delays in ns.
	StageDelays [3]float64
	// Cycle is the achievable clock period: max stage delay when
	// pipelined, total access time when not.
	Cycle float64
	// AccessLatency is the end-to-end latency in cycles.
	AccessLatency int
	// Throughput is accesses per ns.
	Throughput float64
	// Area and Energy are relative costs.
	Area   float64
	Energy float64
	// MOPS is the paper's figure of merit: million ops per unit time per
	// unit area per unit energy (scaled).
	MOPS float64
}

// Evaluate computes the metrics of a design under the technology model.
func Evaluate(d Design, t Tech) (Metrics, error) {
	if err := d.Validate(); err != nil {
		return Metrics{}, err
	}
	bankBytes := d.SizeBytes / d.Banks
	// Square-ish array: rows x cols of bytes.
	rows := int(math.Sqrt(float64(bankBytes)))
	cols := bankBytes / rows
	addrBits := math.Log2(float64(rows))

	decode := t.DecodePerBit*addrBits + 0.05
	array := t.WordlinePerCol*float64(cols) + t.BitlinePerRow*float64(rows)
	sense := t.SenseDelay

	var m Metrics
	m.StageDelays = [3]float64{decode, array, sense}
	total := decode + array + sense
	if d.Pipelined {
		m.Cycle = math.Max(decode, math.Max(array, sense)) + t.LatchDelay
		m.AccessLatency = 3
	} else {
		m.Cycle = total
		m.AccessLatency = 1
	}
	m.Throughput = 1 / m.Cycle
	// Area: array area + per-bank periphery + pipeline latches.
	m.Area = 1 + t.PeripheryArea*float64(d.Banks)
	if d.Pipelined {
		m.Area += t.LatchArea * float64(m.AccessLatency)
	}
	// Energy per access: one bank is active; smaller banks are cheaper,
	// but each extra bank adds periphery (decoders, routing), and
	// pipeline latches burn clock energy every cycle.
	m.Energy = math.Sqrt(float64(bankBytes))/math.Sqrt(float64(d.SizeBytes)) +
		t.PeripheryEnergy*float64(d.Banks)/32
	if d.Pipelined {
		m.Energy += 0.03 * float64(m.AccessLatency)
	}
	m.MOPS = m.Throughput / (m.Area * m.Energy) * 1000
	return m, nil
}

// Best sweeps bank counts for a capacity and returns the design with the
// highest MOPS under the pipelining choice.
func Best(sizeBytes int, pipelined bool, t Tech) (Design, Metrics, error) {
	var bestD Design
	var bestM Metrics
	found := false
	for banks := 1; banks*64 <= sizeBytes && banks <= 64; banks <<= 1 {
		d := Design{SizeBytes: sizeBytes, Banks: banks, Pipelined: pipelined}
		m, err := Evaluate(d, t)
		if err != nil {
			return Design{}, Metrics{}, err
		}
		if !found || m.MOPS > bestM.MOPS {
			bestD, bestM, found = d, m, true
		}
	}
	if !found {
		return Design{}, Metrics{}, fmt.Errorf("pipecache: no feasible design for %d bytes", sizeBytes)
	}
	return bestD, bestM, nil
}
