package pipecache

import "testing"

func TestValidate(t *testing.T) {
	bad := []Design{
		{SizeBytes: 3000, Banks: 1},
		{SizeBytes: 4096, Banks: 3},
		{SizeBytes: 4096, Banks: 0},
		{SizeBytes: 1024, Banks: 64},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("design %+v should be invalid", d)
		}
	}
}

// TestPipeliningRaisesThroughput: at the same geometry, pipelining must
// shorten the cycle and raise throughput, at higher latency.
func TestPipeliningRaisesThroughput(t *testing.T) {
	tech := DefaultTech()
	flat, err := Evaluate(Design{SizeBytes: 32 << 10, Banks: 4, Pipelined: false}, tech)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := Evaluate(Design{SizeBytes: 32 << 10, Banks: 4, Pipelined: true}, tech)
	if err != nil {
		t.Fatal(err)
	}
	if piped.Throughput <= flat.Throughput {
		t.Fatalf("pipelining did not raise throughput: %f <= %f", piped.Throughput, flat.Throughput)
	}
	if piped.AccessLatency <= flat.AccessLatency {
		t.Fatal("pipelining must cost latency")
	}
}

// TestBankingBalancesStages: more banks shrink the array stage.
func TestBankingBalancesStages(t *testing.T) {
	tech := DefaultTech()
	prev := 1e18
	for banks := 1; banks <= 16; banks <<= 1 {
		m, err := Evaluate(Design{SizeBytes: 64 << 10, Banks: banks, Pipelined: true}, tech)
		if err != nil {
			t.Fatal(err)
		}
		if m.StageDelays[1] > prev {
			t.Fatalf("array stage grew with banking at %d banks", banks)
		}
		prev = m.StageDelays[1]
	}
}

// TestMOPSImprovement reproduces the paper's 40-50% claim: the best
// pipelined banked design beats the best conventional design on MOPS by a
// wide margin.
func TestMOPSImprovement(t *testing.T) {
	tech := DefaultTech()
	for _, size := range []int{16 << 10, 32 << 10, 64 << 10} {
		_, flat, err := Best(size, false, tech)
		if err != nil {
			t.Fatal(err)
		}
		dPipe, piped, err := Best(size, true, tech)
		if err != nil {
			t.Fatal(err)
		}
		gain := 100 * (piped.MOPS - flat.MOPS) / flat.MOPS
		t.Logf("%3dKiB: flat MOPS=%.1f piped MOPS=%.1f (+%.0f%%, %d banks)",
			size>>10, flat.MOPS, piped.MOPS, gain, dPipe.Banks)
		if gain < 30 {
			t.Errorf("%d bytes: MOPS gain = %.0f%%, want >= 30%%", size, gain)
		}
	}
}

// TestBestIsOptimalInSweep: Best must return the max-MOPS bank count.
func TestBestIsOptimalInSweep(t *testing.T) {
	tech := DefaultTech()
	_, best, err := Best(32<<10, true, tech)
	if err != nil {
		t.Fatal(err)
	}
	for banks := 1; banks <= 64; banks <<= 1 {
		m, err := Evaluate(Design{SizeBytes: 32 << 10, Banks: banks, Pipelined: true}, tech)
		if err != nil {
			t.Fatal(err)
		}
		if m.MOPS > best.MOPS+1e-9 {
			t.Fatalf("sweep found better design (%d banks, %.2f > %.2f)", banks, m.MOPS, best.MOPS)
		}
	}
}
