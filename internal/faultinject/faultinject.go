// Package faultinject is a deterministic, seed-driven fault injector for
// the experiment-runner stack. It decorates job functions with
// configurable faults — delays, transient errors, panics, corrupted
// result cells, slow starts and mid-job cancellations — so the engine,
// the HTTP service and the chaos CLI can be exercised against the
// failure modes a production deployment would see, while staying fully
// replayable: every decision is derived from (plan seed, job key), never
// from execution order, so two runs with the same plan place identical
// faults no matter how the scheduler interleaves jobs.
//
// The package also wraps two substrates the experiments depend on: a
// corrupting io.Reader for the trace text format (bit flips, truncation,
// injected I/O errors) and a seeded perturbation of the energy model
// (random but still monotone parameters), both used by the property and
// fuzz sweeps.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lpmem/internal/energy"
	"lpmem/internal/stats"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// None leaves the job untouched.
	None Kind = iota
	// Delay sleeps a seeded duration (up to Plan.MaxDelay) before every
	// attempt of the job.
	Delay
	// Transient fails the first Plan.FaultAttempts attempts with
	// ErrInjected, then lets the job run; retry logic should recover.
	Transient
	// Panic panics on the first Plan.FaultAttempts attempts; the runner's
	// containment must convert it into a structured error.
	Panic
	// Corrupt runs the job, then mutates its successful result through
	// the corruptor passed to Wrap (e.g. overwriting a table cell), so
	// downstream consumers see well-formed but wrong data.
	Corrupt
	// SlowStart sleeps like Delay but halves the delay on every retry,
	// modelling a cold resource that warms up.
	SlowStart
	// Cancel reports context.Canceled partway into the first
	// Plan.FaultAttempts attempts, modelling a caller abandoning the job.
	Cancel

	numKinds
)

// String returns the plan-file name of the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Transient:
		return "error"
	case Panic:
		return "panic"
	case Corrupt:
		return "corrupt"
	case SlowStart:
		return "slowstart"
	case Cancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// AllKinds returns every injectable kind (excluding None).
func AllKinds() []Kind {
	return []Kind{Delay, Transient, Panic, Corrupt, SlowStart, Cancel}
}

// ParseKinds parses a plan string: "all" (or "") enables every kind, and
// a comma list like "delay,panic,error" enables a subset.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllKinds(), nil
	}
	var kinds []Kind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var found bool
		for _, k := range AllKinds() {
			if k.String() == part {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faultinject: unknown fault kind %q (known: %s)", part, KindNames())
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault plan %q", s)
	}
	return kinds, nil
}

// KindNames returns the comma list of parseable kind names.
func KindNames() string {
	names := make([]string, 0, len(AllKinds()))
	for _, k := range AllKinds() {
		names = append(names, k.String())
	}
	return strings.Join(names, ",")
}

// ErrInjected is the sentinel wrapped by every injected transient error,
// so harnesses can tell injected failures from genuine ones.
var ErrInjected = errors.New("faultinject: injected transient error")

// Plan configures an Injector. The zero value injects nothing.
type Plan struct {
	// Seed drives every decision; identical seeds yield identical fault
	// placement for identical key sets.
	Seed int64
	// Rate is the fraction of keys that receive a fault, in [0,1].
	Rate float64
	// Kinds are the enabled fault classes; empty means AllKinds.
	Kinds []Kind
	// MaxDelay caps Delay/SlowStart sleeps and scales Cancel's partial
	// execution; 0 defaults to 20ms.
	MaxDelay time.Duration
	// FaultAttempts is how many attempts of a faulted key observe the
	// fault before it clears (transient faults heal); 0 defaults to 1.
	FaultAttempts int
}

// Decision is the deterministic fault assignment for one key.
type Decision struct {
	// Kind is the fault class (None for unfaulted keys).
	Kind Kind
	// Delay is the seeded sleep for Delay/SlowStart and the partial-run
	// time for Cancel.
	Delay time.Duration
}

// Injector makes deterministic decisions and tracks per-key attempts and
// per-kind injection counts. It is safe for concurrent use.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	attempts map[string]int
	counts   [numKinds]uint64
}

// New returns an injector for the plan, normalising defaults.
func New(plan Plan) *Injector {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 20 * time.Millisecond
	}
	if plan.FaultAttempts <= 0 {
		plan.FaultAttempts = 1
	}
	if len(plan.Kinds) == 0 {
		plan.Kinds = AllKinds()
	}
	return &Injector{plan: plan, attempts: make(map[string]int)}
}

// Plan returns the normalised plan.
func (in *Injector) Plan() Plan { return in.plan }

// rng derives a PRNG from the plan seed and a label, so decisions depend
// only on (seed, label) and never on scheduling order.
func (in *Injector) rng(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", in.plan.Seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Decide returns the fault assignment for key. It is a pure function of
// (plan, key): calling it any number of times, in any order, from any
// goroutine yields the same decision.
func (in *Injector) Decide(key string) Decision {
	r := in.rng(key)
	if r.Float64() >= in.plan.Rate {
		return Decision{Kind: None}
	}
	kind := in.plan.Kinds[r.Intn(len(in.plan.Kinds))]
	// Keep delays strictly positive so a Delay decision always sleeps.
	delay := time.Duration(1 + r.Int63n(int64(in.plan.MaxDelay)))
	return Decision{Kind: kind, Delay: delay}
}

// Placements maps every key to its decided fault name; chaos harnesses
// compare two runs' placements to assert determinism.
func (in *Injector) Placements(keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = in.Decide(k).Kind.String()
	}
	return out
}

// begin records one attempt of key and returns its 1-based number.
func (in *Injector) begin(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts[key]++
	return in.attempts[key]
}

// note counts one injected fault of the given kind.
func (in *Injector) note(k Kind) {
	in.mu.Lock()
	in.counts[k]++
	in.mu.Unlock()
}

// Attempts reports how many attempts of key have begun.
func (in *Injector) Attempts(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.attempts[key]
}

// Reset clears attempt history so a fresh sweep heals transient faults
// again; placements are unaffected (they depend only on the plan).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts = make(map[string]int)
}

// Counts returns the injected-fault executions by kind name, for the
// chaos report and metrics endpoints.
func (in *Injector) Counts() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64)
	for k := Kind(0); k < numKinds; k++ {
		if in.counts[k] > 0 {
			out[k.String()] = in.counts[k]
		}
	}
	return out
}

// TotalInjected returns the total number of injected fault executions.
func (in *Injector) TotalInjected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for k := Kind(1); k < numKinds; k++ {
		n += in.counts[k]
	}
	return n
}

// sleep waits for d or until ctx is done, reporting which happened.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wrap decorates run with the injector's fault for key. corrupt, when
// non-nil, is applied to successful values of Corrupt-faulted attempts
// with a key-derived PRNG. The returned function is safe for concurrent
// use and for repeated attempts (retries observe healing transients).
func Wrap[T any](in *Injector, key string, run func(ctx context.Context) (T, error), corrupt func(T, *rand.Rand) T) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		var zero T
		d := in.Decide(key)
		attempt := in.begin(key)
		switch d.Kind {
		case Delay:
			in.note(Delay)
			if err := sleep(ctx, d.Delay); err != nil {
				return zero, err
			}
		case SlowStart:
			// Halve the penalty on every retry: a warming resource.
			in.note(SlowStart)
			if err := sleep(ctx, d.Delay>>uint(attempt-1)); err != nil {
				return zero, err
			}
		case Transient:
			if attempt <= in.plan.FaultAttempts {
				in.note(Transient)
				return zero, fmt.Errorf("%w (key %s, attempt %d)", ErrInjected, key, attempt)
			}
		case Panic:
			if attempt <= in.plan.FaultAttempts {
				in.note(Panic)
				//lint:allow panicfree deliberate injected panic: the runner's containment is the system under test
				panic(fmt.Sprintf("faultinject: injected panic (key %s, attempt %d)", key, attempt))
			}
		case Cancel:
			if attempt <= in.plan.FaultAttempts {
				in.note(Cancel)
				// Burn part of the budget first so the cancellation lands
				// "mid-job" from the caller's perspective.
				if err := sleep(ctx, d.Delay/4); err != nil {
					return zero, err
				}
				return zero, context.Canceled
			}
		}
		v, err := run(ctx)
		if err == nil && d.Kind == Corrupt && corrupt != nil && attempt <= in.plan.FaultAttempts {
			in.note(Corrupt)
			v = corrupt(v, in.rng(key+"|corrupt"))
		}
		return v, err
	}
}

// CorruptTableCell overwrites one deterministic cell of a finished table
// with garbage, reporting whether a cell was available to corrupt. The
// garbage is printable but semantically absurd, modelling a bit-flipped
// numeric field that still serialises cleanly.
func CorruptTableCell(t *stats.Table, r *rand.Rand) bool {
	if t == nil || t.NumRows() == 0 || t.NumCols() == 0 {
		return false
	}
	row := r.Intn(t.NumRows())
	col := r.Intn(t.NumCols())
	garbage := fmt.Sprintf("CORRUPT<%x>", r.Uint32())
	if err := t.SetCell(row, col, garbage); err != nil {
		return false
	}
	return true
}

// PerturbModel returns a copy of m with every parameter scaled by an
// independent seeded factor in [0.5, 2). The result is still a valid,
// monotone energy model, which is exactly what the property sweep needs:
// the invariants under test must hold for the whole family, not just the
// default calibration.
func PerturbModel(m energy.MemoryModel, r *rand.Rand) energy.MemoryModel {
	scale := func() float64 { return 0.5 + 1.5*r.Float64() }
	m.ReadE0 *= energy.PJ(scale())
	m.WriteE0 *= energy.PJ(scale())
	m.KSize *= energy.PJ(scale())
	// Keep the exponent in a physically plausible monotone band.
	m.SizeExp = 0.4 + 0.5*r.Float64()
	m.WritePenalty = 1 + r.Float64()
	m.LeakPerByteCycle *= energy.PJ(scale())
	m.DecoderE *= energy.PJ(scale())
	return m
}

// Reader wraps an io.Reader with deterministic stream corruption: bit
// flips at the plan rate, plus (rarely) truncation surfaced as an
// injected I/O error. It exercises text-format parsers (trace.ReadText)
// against exactly the garbage a crash-interrupted write would leave.
type Reader struct {
	r    io.Reader
	rng  *rand.Rand
	rate float64
	// failAfter counts down to an injected error; <0 disables.
	failAfter int64
}

// NewReader wraps r with seeded corruption. rate is the per-byte bit-flip
// probability in [0,1]. With probability ~1/4 the stream also fails
// partway through with ErrInjected wrapped in an *io.ErrUnexpectedEOF-like
// error, at a seeded offset.
func NewReader(r io.Reader, seed int64, rate float64) *Reader {
	rng := rand.New(rand.NewSource(seed))
	failAfter := int64(-1)
	if rng.Float64() < 0.25 {
		failAfter = rng.Int63n(4096)
	}
	return &Reader{r: r, rng: rng, rate: rate, failAfter: failAfter}
}

// Read reads from the wrapped reader, flipping bits and possibly cutting
// the stream short.
func (cr *Reader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	for i := 0; i < n; i++ {
		if cr.failAfter == 0 {
			return i, fmt.Errorf("%w: stream truncated by fault plan", ErrInjected)
		}
		if cr.failAfter > 0 {
			cr.failAfter--
		}
		if cr.rng.Float64() < cr.rate {
			p[i] ^= 1 << uint(cr.rng.Intn(8))
		}
	}
	return n, err
}

// GoroutineDelta runs fn and returns how many goroutines outlived it
// after a settle loop of up to wait. The chaos harness uses it to assert
// the engine leaks nothing across a faulted sweep; the settle loop exists
// because abandoned (timed-out) jobs legitimately finish shortly after
// their batch returns.
func GoroutineDelta(wait time.Duration, fn func()) int {
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(wait)
	now := runtime.NumGoroutine()
	for now > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		now = runtime.NumGoroutine()
	}
	return now - before
}

// SortedKeys returns the keys of a placements map in stable order, a
// convenience for rendering chaos reports deterministically.
func SortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
