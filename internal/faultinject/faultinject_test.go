package faultinject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"lpmem/internal/energy"
	"lpmem/internal/stats"
)

// TestDecideDeterminism: decisions are a pure function of (seed, key) —
// two injectors with the same plan agree on every key, in any order.
func TestDecideDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Rate: 0.7}
	a, b := New(plan), New(plan)
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("E%d", i)
	}
	pa := a.Placements(keys)
	// Query b in reverse order to prove order independence.
	for i := len(keys) - 1; i >= 0; i-- {
		if got := b.Decide(keys[i]).Kind.String(); got != pa[keys[i]] {
			t.Fatalf("key %s: %s vs %s", keys[i], got, pa[keys[i]])
		}
	}
	// A different seed must (overwhelmingly) produce a different placement.
	c := New(Plan{Seed: 43, Rate: 0.7})
	same := 0
	for _, k := range keys {
		if c.Decide(k).Kind.String() == pa[k] {
			same++
		}
	}
	if same == len(keys) {
		t.Fatal("seed change did not move any fault")
	}
}

// TestRateBounds: Rate 0 faults nothing; Rate 1 faults everything.
func TestRateBounds(t *testing.T) {
	zero := New(Plan{Seed: 1, Rate: 0})
	all := New(Plan{Seed: 1, Rate: 1})
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("J%d", i)
		if d := zero.Decide(k); d.Kind != None {
			t.Fatalf("rate 0 faulted %s with %s", k, d.Kind)
		}
		if d := all.Decide(k); d.Kind == None {
			t.Fatalf("rate 1 left %s unfaulted", k)
		}
	}
}

// TestParseKinds: "all", subsets, and rejection of unknown names.
func TestParseKinds(t *testing.T) {
	if ks, err := ParseKinds("all"); err != nil || len(ks) != len(AllKinds()) {
		t.Fatalf("all: %v %v", ks, err)
	}
	ks, err := ParseKinds("delay, panic")
	if err != nil || len(ks) != 2 || ks[0] != Delay || ks[1] != Panic {
		t.Fatalf("subset: %v %v", ks, err)
	}
	if _, err := ParseKinds("meteor"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseKinds(","); err == nil {
		t.Fatal("empty plan accepted")
	}
}

// wrapOnly builds an injector whose every key gets exactly the one kind.
func wrapOnly(kind Kind, attempts int) *Injector {
	return New(Plan{Seed: 7, Rate: 1, Kinds: []Kind{kind}, FaultAttempts: attempts, MaxDelay: 5 * time.Millisecond})
}

// TestWrapTransientHeals: a transient fault fails exactly FaultAttempts
// times, then the job succeeds.
func TestWrapTransientHeals(t *testing.T) {
	in := wrapOnly(Transient, 2)
	run := Wrap(in, "E1", func(context.Context) (int, error) { return 99, nil }, nil)
	for i := 1; i <= 2; i++ {
		if _, err := run(context.Background()); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: want injected error, got %v", i, err)
		}
	}
	v, err := run(context.Background())
	if err != nil || v != 99 {
		t.Fatalf("healed attempt: %d, %v", v, err)
	}
	if got := in.Counts()["error"]; got != 2 {
		t.Fatalf("counted %d transient injections", got)
	}
}

// TestWrapPanicThenHeal: the panic fires on attempt one and clears after.
func TestWrapPanicThenHeal(t *testing.T) {
	in := wrapOnly(Panic, 1)
	run := Wrap(in, "E2", func(context.Context) (int, error) { return 1, nil }, nil)
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "injected panic") {
				t.Fatalf("recover = %v", r)
			}
		}()
		_, _ = run(context.Background())
	}()
	if v, err := run(context.Background()); err != nil || v != 1 {
		t.Fatalf("post-panic attempt: %d, %v", v, err)
	}
}

// TestWrapCancel: the cancel fault surfaces context.Canceled mid-job and
// heals on retry.
func TestWrapCancel(t *testing.T) {
	in := wrapOnly(Cancel, 1)
	run := Wrap(in, "E3", func(context.Context) (int, error) { return 5, nil }, nil)
	if _, err := run(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled, got %v", err)
	}
	if v, err := run(context.Background()); err != nil || v != 5 {
		t.Fatalf("healed: %d, %v", v, err)
	}
}

// TestWrapDelayRespectsContext: an already-cancelled context aborts the
// delay instead of sleeping.
func TestWrapDelayRespectsContext(t *testing.T) {
	in := New(Plan{Seed: 7, Rate: 1, Kinds: []Kind{Delay}, MaxDelay: time.Hour})
	run := Wrap(in, "E4", func(context.Context) (int, error) { return 1, nil }, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("delay ignored cancellation")
	}
}

// TestWrapCorrupt: successful values pass through the corruptor exactly
// once, deterministically.
func TestWrapCorrupt(t *testing.T) {
	mk := func(context.Context) (int, error) { return 10, nil }
	corrupt := func(v int, r *rand.Rand) int { return v + 1 + r.Intn(100) }
	a := Wrap(wrapOnly(Corrupt, 1), "E5", mk, corrupt)
	b := Wrap(wrapOnly(Corrupt, 1), "E5", mk, corrupt)
	va, _ := a(context.Background())
	vb, _ := b(context.Background())
	if va == 10 {
		t.Fatal("value not corrupted")
	}
	if va != vb {
		t.Fatalf("corruption not deterministic: %d vs %d", va, vb)
	}
}

// TestReset: Reset heals attempt history so transients fire again.
func TestReset(t *testing.T) {
	in := wrapOnly(Transient, 1)
	run := Wrap(in, "E6", func(context.Context) (int, error) { return 1, nil }, nil)
	if _, err := run(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("first attempt: %v", err)
	}
	if _, err := run(context.Background()); err != nil {
		t.Fatalf("second attempt should heal: %v", err)
	}
	in.Reset()
	if _, err := run(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-reset attempt should fault again: %v", err)
	}
}

// TestCorruptTableCell: the corruptor lands in-bounds, changes content
// deterministically, and tolerates degenerate tables.
func TestCorruptTableCell(t *testing.T) {
	tbl := stats.NewTable("a", "b")
	tbl.AddRow(1, 2)
	tbl.AddRow(3, 4)
	before := fmt.Sprint(tbl.ToRows())
	if !CorruptTableCell(tbl, rand.New(rand.NewSource(9))) {
		t.Fatal("corruption reported no cell")
	}
	after := fmt.Sprint(tbl.ToRows())
	if before == after {
		t.Fatal("table unchanged")
	}
	if !strings.Contains(after, "CORRUPT<") {
		t.Fatalf("garbage marker missing: %s", after)
	}
	if CorruptTableCell(stats.NewTable("x"), rand.New(rand.NewSource(9))) {
		t.Fatal("empty table reported a corrupted cell")
	}
	if CorruptTableCell(nil, rand.New(rand.NewSource(9))) {
		t.Fatal("nil table reported a corrupted cell")
	}
}

// TestPerturbModelMonotone: perturbed models keep positive parameters, so
// energies stay positive and size-monotone.
func TestPerturbModelMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		m := PerturbModel(energy.DefaultMemoryModel(), r)
		prev := energy.PJ(-1)
		for _, size := range []uint32{64, 256, 1024, 65536} {
			e := m.ReadEnergy(size)
			if e <= 0 || e < prev {
				t.Fatalf("iter %d: ReadEnergy(%d) = %v not monotone positive", i, size, e)
			}
			prev = e
		}
	}
}

// TestReaderDeterminism: the same seed corrupts a stream identically;
// rate 0 with no failure point leaves it intact.
func TestReaderDeterminism(t *testing.T) {
	src := bytes.Repeat([]byte("R 10 4 ff\n"), 200)
	read := func(seed int64, rate float64) ([]byte, error) {
		var out bytes.Buffer
		_, err := out.ReadFrom(NewReader(bytes.NewReader(src), seed, rate))
		return out.Bytes(), err
	}
	a, errA := read(11, 0.05)
	b, errB := read(11, 0.05)
	if !bytes.Equal(a, b) || fmt.Sprint(errA) != fmt.Sprint(errB) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a, src) && errA == nil {
		t.Fatal("corruption had no observable effect at rate 0.05")
	}
	// Find a seed whose plan has no truncation point for the clean case.
	for seed := int64(1); seed < 20; seed++ {
		c, err := read(seed, 0)
		if err == nil {
			if !bytes.Equal(c, src) {
				t.Fatal("rate 0 altered the stream")
			}
			return
		}
	}
	t.Fatal("no truncation-free seed found in 1..19")
}
