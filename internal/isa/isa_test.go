package isa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lpmem/internal/trace"
)

func TestMemoryWordRoundTrip(t *testing.T) {
	f := func(addr, v uint32) bool {
		var m Memory
		m.WriteWord(addr, v)
		return m.ReadWord(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	var m Memory
	m.WriteWord(0x100, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if got := m.LoadByte(0x100 + uint32(i)); got != want {
			t.Fatalf("byte %d = %d, want %d", i, got, want)
		}
	}
	m.WriteHalf(0x200, 0xBBAA)
	if m.LoadByte(0x200) != 0xAA || m.LoadByte(0x201) != 0xBB {
		t.Fatal("half-word endianness wrong")
	}
	if m.ReadHalf(0x200) != 0xBBAA {
		t.Fatal("half read wrong")
	}
}

func TestMemoryCrossPage(t *testing.T) {
	var m Memory
	addr := uint32(pageSize - 2) // straddles a page boundary
	m.WriteWord(addr, 0xDEADBEEF)
	if m.ReadWord(addr) != 0xDEADBEEF {
		t.Fatal("cross-page word broken")
	}
}

func TestLoadReadWords(t *testing.T) {
	var m Memory
	words := []uint32{1, 2, 3, 4, 5}
	m.LoadWords(0x1000, words)
	got := m.ReadWords(0x1000, 5)
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("word %d = %d", i, got[i])
		}
	}
}

// runProg assembles, runs and returns the CPU.
func runProg(t *testing.T, build func(b *Builder)) *CPU {
	t.Helper()
	b := NewBuilder()
	build(b)
	b.Halt()
	cpu := NewCPU(b.MustAssemble())
	if err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestALUOps(t *testing.T) {
	cpu := runProg(t, func(b *Builder) {
		b.Movi(1, 20)
		b.Movi(2, 6)
		b.Add(3, 1, 2)  // 26
		b.Sub(4, 1, 2)  // 14
		b.Mul(5, 1, 2)  // 120
		b.Div(6, 1, 2)  // 3
		b.Rem(7, 1, 2)  // 2
		b.And(8, 1, 2)  // 4
		b.Or(9, 1, 2)   // 22
		b.Xor(10, 1, 2) // 18
	})
	want := map[Reg]uint32{3: 26, 4: 14, 5: 120, 6: 3, 7: 2, 8: 4, 9: 22, 10: 18}
	for r, w := range want {
		if cpu.Regs[r] != w {
			t.Errorf("r%d = %d, want %d", r, cpu.Regs[r], w)
		}
	}
}

func TestShiftAndCompare(t *testing.T) {
	cpu := runProg(t, func(b *Builder) {
		b.Movi(1, -8)
		b.Movi(2, 1)
		b.Shl(3, 1, 2)   // -16
		b.Shr(4, 1, 2)   // logical: big positive
		b.Sra(5, 1, 2)   // arithmetic: -4
		b.Slt(6, 1, 2)   // -8 < 1 -> 1
		b.Slti(7, 1, -9) // -8 < -9 -> 0
	})
	if int32(cpu.Regs[3]) != -16 {
		t.Errorf("shl = %d", int32(cpu.Regs[3]))
	}
	if cpu.Regs[4] != 0x7FFFFFFC {
		t.Errorf("shr = %#x", cpu.Regs[4])
	}
	if int32(cpu.Regs[5]) != -4 {
		t.Errorf("sra = %d", int32(cpu.Regs[5]))
	}
	if cpu.Regs[6] != 1 || cpu.Regs[7] != 0 {
		t.Errorf("slt/slti = %d/%d", cpu.Regs[6], cpu.Regs[7])
	}
}

func TestDivByZero(t *testing.T) {
	cpu := runProg(t, func(b *Builder) {
		b.Movi(1, 42)
		b.Movi(2, 0)
		b.Div(3, 1, 2)
		b.Rem(4, 1, 2)
	})
	if cpu.Regs[3] != 0 || cpu.Regs[4] != 0 {
		t.Fatal("division by zero must yield 0, not trap")
	}
}

func TestLoadStoreWidths(t *testing.T) {
	cpu := runProg(t, func(b *Builder) {
		b.MoviU(1, 0x20000)
		b.MoviU(2, 0xDEADBEEF)
		b.Sw(2, 1, 0)
		b.Lb(3, 1, 3) // 0xDE
		b.Lh(4, 1, 0) // 0xBEEF
		b.Lw(5, 1, 0)
	})
	if cpu.Regs[3] != 0xDE || cpu.Regs[4] != 0xBEEF || cpu.Regs[5] != 0xDEADBEEF {
		t.Fatalf("loads = %#x %#x %#x", cpu.Regs[3], cpu.Regs[4], cpu.Regs[5])
	}
}

func TestBranchesAndLoop(t *testing.T) {
	cpu := runProg(t, func(b *Builder) {
		b.Movi(1, 0)  // i
		b.Movi(2, 10) // limit
		b.Movi(3, 0)  // sum
		b.Label("loop")
		b.Bge(1, 2, "done")
		b.Add(3, 3, 1)
		b.Addi(1, 1, 1)
		b.Jmp("loop")
		b.Label("done")
	})
	if cpu.Regs[3] != 45 {
		t.Fatalf("sum = %d, want 45", cpu.Regs[3])
	}
}

func TestCallRetAndStack(t *testing.T) {
	b := NewBuilder()
	b.Movi(1, 5)
	b.Jal("double")
	b.Halt()
	b.Label("double")
	b.Add(2, 1, 1)
	b.Ret()
	cpu := NewCPU(b.MustAssemble())
	if err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[2] != 10 {
		t.Fatalf("double(5) = %d", cpu.Regs[2])
	}
	// Push/pop restore SP.
	cpu2 := runProg(t, func(b *Builder) {
		b.Movi(1, 7)
		b.Movi(2, 9)
		b.Push(1, 2)
		b.Movi(1, 0)
		b.Movi(2, 0)
		b.Pop(2, 1)
	})
	if cpu2.Regs[1] != 7 || cpu2.Regs[2] != 9 {
		t.Fatalf("push/pop = %d,%d", cpu2.Regs[1], cpu2.Regs[2])
	}
	if cpu2.Regs[SP] != DefaultStackTop {
		t.Fatalf("SP not restored: %#x", cpu2.Regs[SP])
	}
}

func TestAssemblerErrors(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Assemble(); err == nil {
		t.Fatal("undefined label must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label must panic")
		}
	}()
	b2 := NewBuilder()
	b2.Label("x")
	b2.Label("x")
}

func TestRunawayDetection(t *testing.T) {
	b := NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	cpu := NewCPU(b.MustAssemble())
	if err := cpu.Run(100); err != ErrRunaway {
		t.Fatalf("err = %v, want ErrRunaway", err)
	}
}

func TestPCOutsideProgram(t *testing.T) {
	b := NewBuilder()
	b.Nop() // falls off the end
	cpu := NewCPU(b.MustAssemble())
	if err := cpu.Run(10); err == nil {
		t.Fatal("running off the end must error")
	}
}

func TestTraceEmission(t *testing.T) {
	b := NewBuilder()
	b.MoviU(1, 0x30000)
	b.Movi(2, 77)
	b.Sw(2, 1, 0)
	b.Lw(3, 1, 0)
	b.Halt()
	cpu := NewCPU(b.MustAssemble())
	tr, err := cpu.RunTraced(100)
	if err != nil {
		t.Fatal(err)
	}
	var fetches, reads, writes int
	for _, a := range tr.Accesses {
		switch a.Kind {
		case trace.Fetch:
			fetches++
		case trace.Read:
			reads++
			if a.Value != 77 {
				t.Errorf("read value = %d", a.Value)
			}
		case trace.Write:
			writes++
			if a.Addr != 0x30000 {
				t.Errorf("write addr = %#x", a.Addr)
			}
		}
	}
	if fetches != 5 || reads != 1 || writes != 1 {
		t.Fatalf("trace counts f=%d r=%d w=%d", fetches, reads, writes)
	}
}

func TestCycleModel(t *testing.T) {
	// mul and div cost more than add.
	base := runProg(t, func(b *Builder) { b.Movi(1, 3); b.Movi(2, 4); b.Add(3, 1, 2) }).Cycles
	mul := runProg(t, func(b *Builder) { b.Movi(1, 3); b.Movi(2, 4); b.Mul(3, 1, 2) }).Cycles
	div := runProg(t, func(b *Builder) { b.Movi(1, 3); b.Movi(2, 4); b.Div(3, 1, 2) }).Cycles
	if mul <= base || div <= mul {
		t.Fatalf("cycle ordering wrong: add=%d mul=%d div=%d", base, mul, div)
	}
}

// TestEncodeFieldsRecoverable: the documented field layout holds.
func TestEncodeFieldsRecoverable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		in := Instr{
			Op:  Op(r.Intn(int(OpHalt) + 1)),
			Rd:  Reg(r.Intn(16)),
			Rs1: Reg(r.Intn(16)),
			Rs2: Reg(r.Intn(16)),
			Imm: int32(r.Intn(1 << 13)),
		}
		w := Encode(in)
		if Op(w>>26) != in.Op || Reg(w>>22&0xF) != in.Rd ||
			Reg(w>>18&0xF) != in.Rs1 || Reg(w>>14&0xF) != in.Rs2 ||
			int32(w&0x3FFF) != in.Imm {
			t.Fatalf("encode fields wrong for %+v -> %#x", in, w)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpLw, Rd: 3, Rs1: 7, Imm: 8}, "lw r3, 8(r7)"},
		{Instr{Op: OpSw, Rs2: 2, Rs1: 1, Imm: 4}, "sw r2, 4(r1)"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpJr, Rs1: 14}, "jr r14"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
