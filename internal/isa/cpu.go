package isa

import (
	"fmt"

	"lpmem/internal/trace"
)

// Default memory-map constants. The map is deliberately compact so that
// partitioning experiments see a realistic embedded address space.
const (
	DefaultTextBase  = 0x0000_0000
	DefaultDataBase  = 0x0001_0000
	DefaultStackTop  = 0x000F_FFF0
	DefaultStackSize = 0x0001_0000
)

const pageSize = 1 << 12

// Memory is a sparse, paged, little-endian byte-addressable memory.
// The zero value is ready to use.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

func (m *Memory) page(addr uint32) *[pageSize]byte {
	if m.pages == nil {
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	base := addr &^ (pageSize - 1)
	p, ok := m.pages[base]
	if !ok {
		p = new([pageSize]byte)
		m.pages[base] = p
	}
	return p
}

// ReadByte returns the byte at addr (0 if never written).
func (m *Memory) LoadByte(addr uint32) byte {
	return m.page(addr)[addr&(pageSize-1)]
}

// WriteByte stores b at addr.
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.page(addr)[addr&(pageSize-1)] = b
}

// ReadWord returns the little-endian 32-bit word at addr.
func (m *Memory) ReadWord(addr uint32) uint32 {
	return uint32(m.LoadByte(addr)) |
		uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 |
		uint32(m.LoadByte(addr+3))<<24
}

// WriteWord stores v little-endian at addr.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// ReadHalf returns the little-endian 16-bit value at addr.
func (m *Memory) ReadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// WriteHalf stores v little-endian at addr.
func (m *Memory) WriteHalf(addr uint32, v uint16) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// LoadBytes copies data into memory starting at addr.
func (m *Memory) LoadBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint32(i), b)
	}
}

// LoadWords copies 32-bit words into memory starting at addr.
func (m *Memory) LoadWords(addr uint32, words []uint32) {
	for i, w := range words {
		m.WriteWord(addr+uint32(i)*4, w)
	}
}

// ReadWords reads n consecutive words starting at addr.
func (m *Memory) ReadWords(addr uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = m.ReadWord(addr + uint32(i)*4)
	}
	return out
}

// CPU executes a µRISC program with a simple five-stage-pipeline cost
// model: 1 cycle per instruction, +1 load-use bubble per load, +2 flush
// per taken branch/jump, +2 for multiply, +16 for divide.
type CPU struct {
	// Mem is the backing memory, exposed so tests and workloads can
	// pre-load data and inspect results.
	Mem Memory
	// Regs is the architectural register file.
	Regs [NumRegs]uint32
	// PC is the current program counter (byte address).
	PC uint32
	// TextBase is where the program is mapped.
	TextBase uint32
	// Trace, when non-nil, receives one Access per instruction fetch and
	// per data access.
	Trace *trace.Trace
	// Cycles accumulates the pipeline cost model.
	Cycles uint64
	// Instructions counts retired instructions.
	Instructions uint64

	prog    *Program
	halted  bool
	fetched []uint32 // encoded instruction words, index-aligned with prog
}

// NewCPU creates a CPU with the default memory map and the program mapped
// at TextBase. SP is initialised to DefaultStackTop.
func NewCPU(p *Program) *CPU {
	c := &CPU{TextBase: DefaultTextBase, prog: p, PC: DefaultTextBase}
	c.Regs[SP] = DefaultStackTop
	c.fetched = make([]uint32, len(p.Instrs))
	for i, in := range p.Instrs {
		c.fetched[i] = Encode(in)
	}
	return c
}

// Encode packs an instruction into a 32-bit word:
// op(6) | rd(4) | rs1(4) | rs2(4) | imm(14, truncated).
// The encoding is used only as the *fetch value* seen by bus/encoding
// experiments; the interpreter executes the decoded form, so truncating a
// wide Movi immediate never affects semantics.
func Encode(in Instr) uint32 {
	return uint32(in.Op)<<26 |
		uint32(in.Rd)<<22 |
		uint32(in.Rs1)<<18 |
		uint32(in.Rs2)<<14 |
		uint32(in.Imm)&0x3FFF
}

// Halted reports whether the CPU has executed Halt.
func (c *CPU) Halted() bool { return c.halted }

// ErrRunaway is returned by Run when the step budget is exhausted before
// the program halts.
var ErrRunaway = fmt.Errorf("isa: step budget exhausted before halt")

// Run executes until Halt or until maxSteps instructions have retired.
func (c *CPU) Run(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		if c.halted {
			return nil
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	if c.halted {
		return nil
	}
	return ErrRunaway
}

func (c *CPU) record(a trace.Access) {
	if c.Trace != nil {
		c.Trace.Append(a)
	}
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.halted {
		return nil
	}
	idx := (c.PC - c.TextBase) / 4
	if idx >= uint32(len(c.prog.Instrs)) {
		return fmt.Errorf("isa: PC %#x outside program", c.PC)
	}
	in := c.prog.Instrs[idx]
	c.record(trace.Access{Addr: c.PC, Value: c.fetched[idx], Width: 4, Kind: trace.Fetch})
	nextPC := c.PC + 4
	cycles := uint64(1)

	rs1 := c.Regs[in.Rs1]
	rs2 := c.Regs[in.Rs2]

	switch in.Op {
	case OpNop:
	case OpAdd:
		c.Regs[in.Rd] = rs1 + rs2
	case OpSub:
		c.Regs[in.Rd] = rs1 - rs2
	case OpMul:
		c.Regs[in.Rd] = rs1 * rs2
		cycles += 2
	case OpDiv:
		if rs2 == 0 {
			c.Regs[in.Rd] = 0
		} else {
			c.Regs[in.Rd] = uint32(int32(rs1) / int32(rs2))
		}
		cycles += 16
	case OpRem:
		if rs2 == 0 {
			c.Regs[in.Rd] = 0
		} else {
			c.Regs[in.Rd] = uint32(int32(rs1) % int32(rs2))
		}
		cycles += 16
	case OpAnd:
		c.Regs[in.Rd] = rs1 & rs2
	case OpOr:
		c.Regs[in.Rd] = rs1 | rs2
	case OpXor:
		c.Regs[in.Rd] = rs1 ^ rs2
	case OpShl:
		c.Regs[in.Rd] = rs1 << (rs2 & 31)
	case OpShr:
		c.Regs[in.Rd] = rs1 >> (rs2 & 31)
	case OpSra:
		c.Regs[in.Rd] = uint32(int32(rs1) >> (rs2 & 31))
	case OpSlt:
		if int32(rs1) < int32(rs2) {
			c.Regs[in.Rd] = 1
		} else {
			c.Regs[in.Rd] = 0
		}
	case OpAddi:
		c.Regs[in.Rd] = rs1 + uint32(in.Imm)
	case OpAndi:
		c.Regs[in.Rd] = rs1 & uint32(in.Imm)
	case OpOri:
		c.Regs[in.Rd] = rs1 | uint32(in.Imm)
	case OpXori:
		c.Regs[in.Rd] = rs1 ^ uint32(in.Imm)
	case OpShli:
		c.Regs[in.Rd] = rs1 << (uint32(in.Imm) & 31)
	case OpShri:
		c.Regs[in.Rd] = rs1 >> (uint32(in.Imm) & 31)
	case OpSlti:
		if int32(rs1) < in.Imm {
			c.Regs[in.Rd] = 1
		} else {
			c.Regs[in.Rd] = 0
		}
	case OpLui:
		c.Regs[in.Rd] = uint32(in.Imm) << 16
	case OpMovi:
		c.Regs[in.Rd] = uint32(in.Imm)
	case OpLw:
		addr := rs1 + uint32(in.Imm)
		v := c.Mem.ReadWord(addr)
		c.Regs[in.Rd] = v
		c.record(trace.Access{Addr: addr, Value: v, Width: 4, Kind: trace.Read})
		cycles++
	case OpLh:
		addr := rs1 + uint32(in.Imm)
		v := uint32(c.Mem.ReadHalf(addr))
		c.Regs[in.Rd] = v
		c.record(trace.Access{Addr: addr, Value: v, Width: 2, Kind: trace.Read})
		cycles++
	case OpLb:
		addr := rs1 + uint32(in.Imm)
		v := uint32(c.Mem.LoadByte(addr))
		c.Regs[in.Rd] = v
		c.record(trace.Access{Addr: addr, Value: v, Width: 1, Kind: trace.Read})
		cycles++
	case OpSw:
		addr := rs1 + uint32(in.Imm)
		c.Mem.WriteWord(addr, rs2)
		c.record(trace.Access{Addr: addr, Value: rs2, Width: 4, Kind: trace.Write})
	case OpSh:
		addr := rs1 + uint32(in.Imm)
		c.Mem.WriteHalf(addr, uint16(rs2))
		c.record(trace.Access{Addr: addr, Value: rs2 & 0xFFFF, Width: 2, Kind: trace.Write})
	case OpSb:
		addr := rs1 + uint32(in.Imm)
		c.Mem.StoreByte(addr, byte(rs2))
		c.record(trace.Access{Addr: addr, Value: rs2 & 0xFF, Width: 1, Kind: trace.Write})
	case OpBeq:
		if rs1 == rs2 {
			nextPC = c.TextBase + uint32(in.Imm)
			cycles += 2
		}
	case OpBne:
		if rs1 != rs2 {
			nextPC = c.TextBase + uint32(in.Imm)
			cycles += 2
		}
	case OpBlt:
		if int32(rs1) < int32(rs2) {
			nextPC = c.TextBase + uint32(in.Imm)
			cycles += 2
		}
	case OpBge:
		if int32(rs1) >= int32(rs2) {
			nextPC = c.TextBase + uint32(in.Imm)
			cycles += 2
		}
	case OpJal:
		c.Regs[LR] = nextPC
		nextPC = c.TextBase + uint32(in.Imm)
		cycles += 2
	case OpJr:
		nextPC = rs1
		cycles += 2
	case OpPush:
		c.Regs[SP] -= 4
		addr := c.Regs[SP]
		c.Mem.WriteWord(addr, rs1)
		c.record(trace.Access{Addr: addr, Value: rs1, Width: 4, Kind: trace.Write})
	case OpPop:
		addr := c.Regs[SP]
		v := c.Mem.ReadWord(addr)
		c.Regs[in.Rd] = v
		c.Regs[SP] += 4
		c.record(trace.Access{Addr: addr, Value: v, Width: 4, Kind: trace.Read})
		cycles++
	case OpHalt:
		c.halted = true
	default:
		return fmt.Errorf("isa: unknown opcode %v at PC %#x", in.Op, c.PC)
	}

	c.PC = nextPC
	c.Cycles += cycles
	c.Instructions++
	return nil
}

// RunTraced is a convenience: it attaches a fresh trace, runs the program
// to completion (up to maxSteps) and returns the trace.
func (c *CPU) RunTraced(maxSteps int) (*trace.Trace, error) {
	t := trace.New(4096)
	c.Trace = t
	if err := c.Run(maxSteps); err != nil {
		return nil, err
	}
	return t, nil
}
