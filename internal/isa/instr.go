// Package isa implements µRISC, a small load/store register architecture
// with a five-stage-pipeline cost model. It stands in for the ARM7 /
// MIPS-class embedded cores used in the DATE'03 evaluations: the
// optimizations under study consume the *address and data streams* a core
// emits, and µRISC produces real streams by executing real kernels (see
// internal/workloads).
//
// The package provides three pieces: an instruction set (this file), an
// assembler with labels (asm.go) and an interpreter that executes programs
// while emitting an instrumented memory trace (cpu.go).
package isa

import "fmt"

// Op is a µRISC opcode.
type Op uint8

// Instruction opcodes. Register-register ALU ops take (Rd, Rs1, Rs2);
// immediate forms take (Rd, Rs1, Imm). Memory ops use Rs1 as the base
// register and Imm as the byte offset.
const (
	OpNop Op = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical shift right
	OpSra // arithmetic shift right
	OpSlt // set-less-than (signed)
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSlti
	OpLui  // Rd = Imm << 16
	OpMovi // Rd = Imm (full 32-bit, assembler-level convenience)
	OpLw
	OpLh
	OpLb
	OpSw
	OpSh
	OpSb
	OpBeq
	OpBne
	OpBlt  // signed
	OpBge  // signed
	OpJal  // jump and link: LR = PC+4, PC = target
	OpJr   // jump register: PC = Rs1
	OpPush // push Rs1 on the stack
	OpPop  // pop into Rd
	OpHalt
)

var opNames = map[Op]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpSra: "sra", OpSlt: "slt", OpAddi: "addi", OpAndi: "andi",
	OpOri: "ori", OpXori: "xori", OpShli: "shli", OpShri: "shri",
	OpSlti: "slti", OpLui: "lui", OpMovi: "movi", OpLw: "lw", OpLh: "lh",
	OpLb: "lb", OpSw: "sw", OpSh: "sh", OpSb: "sb", OpBeq: "beq",
	OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpJal: "jal", OpJr: "jr",
	OpPush: "push", OpPop: "pop", OpHalt: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Reg is a register number, 0..15. By software convention r13 is SP,
// r14 is LR and r15 is never allocated by the workloads (scratch).
type Reg uint8

// Register conventions used by the assembler and the workloads.
const (
	SP Reg = 13 // stack pointer
	LR Reg = 14 // link register
	AT Reg = 15 // assembler temporary
)

// NumRegs is the size of the register file.
const NumRegs = 16

// Instr is one decoded µRISC instruction. µRISC is a fixed-width 4-byte
// ISA: instruction addresses advance by 4.
type Instr struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32 // immediate or resolved branch/jump target (byte address)
}

// String renders the instruction in assembly-like form.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpLw, OpLh, OpLb:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case OpSw, OpSh, OpSb:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, %#x", in.Op, in.Rs1, in.Rs2, uint32(in.Imm))
	case OpJal:
		return fmt.Sprintf("%s %#x", in.Op, uint32(in.Imm))
	case OpJr:
		return fmt.Sprintf("%s r%d", in.Op, in.Rs1)
	case OpPush:
		return fmt.Sprintf("%s r%d", in.Op, in.Rs1)
	case OpPop:
		return fmt.Sprintf("%s r%d", in.Op, in.Rd)
	case OpMovi, OpLui:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// isBranch reports whether the op is a conditional branch.
func (o Op) isBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// isLoad reports whether the op reads data memory.
func (o Op) isLoad() bool {
	switch o {
	case OpLw, OpLh, OpLb, OpPop:
		return true
	}
	return false
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool {
	switch o {
	case OpLw, OpLh, OpLb, OpSw, OpSh, OpSb, OpPush, OpPop:
		return true
	}
	return false
}
