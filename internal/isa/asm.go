package isa

import "fmt"

// Builder assembles a µRISC program with symbolic labels. Instruction
// methods append one instruction each; Label marks the next instruction's
// address; Assemble resolves label references into byte addresses.
//
// Typical use:
//
//	b := isa.NewBuilder()
//	b.Movi(1, 0)             // i = 0
//	b.Label("loop")
//	...
//	b.Blt(1, 2, "loop")
//	b.Halt()
//	prog, err := b.Assemble()
type Builder struct {
	instrs []Instr
	labels map[string]int // label -> instruction index
	refs   []labelRef
}

type labelRef struct {
	index int // instruction needing patching
	label string
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Label binds name to the address of the next emitted instruction.
// Rebinding a name panics: duplicate labels are always a programming error
// in a hand-written kernel.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		//lint:allow panicfree duplicate label in a hand-written kernel is a programming error, per the doc comment
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
}

func (b *Builder) emit(in Instr) { b.instrs = append(b.instrs, in) }

func (b *Builder) emitRef(in Instr, label string) {
	b.refs = append(b.refs, labelRef{index: len(b.instrs), label: label})
	b.emit(in)
}

// Nop appends a no-op.
func (b *Builder) Nop() { b.emit(Instr{Op: OpNop}) }

// --- register-register ALU ---

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpSub, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpMul, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Div emits rd = rs1 / rs2 (signed; division by zero yields 0).
func (b *Builder) Div(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Rem emits rd = rs1 % rs2 (signed; modulo by zero yields 0).
func (b *Builder) Rem(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpRem, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpOr, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpXor, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Shl emits rd = rs1 << (rs2 & 31).
func (b *Builder) Shl(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpShl, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Shr emits rd = rs1 >> (rs2 & 31), logical.
func (b *Builder) Shr(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpShr, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Sra emits rd = rs1 >> (rs2 & 31), arithmetic.
func (b *Builder) Sra(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpSra, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Slt emits rd = (rs1 < rs2) ? 1 : 0, signed.
func (b *Builder) Slt(rd, rs1, rs2 Reg) { b.emit(Instr{Op: OpSlt, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// --- immediates ---

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 Reg, imm int32) {
	b.emit(Instr{Op: OpAddi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 Reg, imm int32) {
	b.emit(Instr{Op: OpAndi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 Reg, imm int32) {
	b.emit(Instr{Op: OpOri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 Reg, imm int32) {
	b.emit(Instr{Op: OpXori, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 Reg, imm int32) {
	b.emit(Instr{Op: OpShli, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shri emits rd = rs1 >> imm, logical.
func (b *Builder) Shri(rd, rs1 Reg, imm int32) {
	b.emit(Instr{Op: OpShri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slti emits rd = (rs1 < imm) ? 1 : 0, signed.
func (b *Builder) Slti(rd, rs1 Reg, imm int32) {
	b.emit(Instr{Op: OpSlti, Rd: rd, Rs1: rs1, Imm: imm})
}

// Movi emits rd = imm (full 32-bit immediate load).
func (b *Builder) Movi(rd Reg, imm int32) { b.emit(Instr{Op: OpMovi, Rd: rd, Imm: imm}) }

// MoviU emits rd = imm for an unsigned 32-bit immediate such as an address.
func (b *Builder) MoviU(rd Reg, imm uint32) { b.emit(Instr{Op: OpMovi, Rd: rd, Imm: int32(imm)}) }

// Mov emits rd = rs (assembled as addi rd, rs, 0).
func (b *Builder) Mov(rd, rs Reg) { b.Addi(rd, rs, 0) }

// --- memory ---

// Lw emits rd = mem32[rs1 + off].
func (b *Builder) Lw(rd, rs1 Reg, off int32) { b.emit(Instr{Op: OpLw, Rd: rd, Rs1: rs1, Imm: off}) }

// Lh emits rd = zext(mem16[rs1 + off]).
func (b *Builder) Lh(rd, rs1 Reg, off int32) { b.emit(Instr{Op: OpLh, Rd: rd, Rs1: rs1, Imm: off}) }

// Lb emits rd = zext(mem8[rs1 + off]).
func (b *Builder) Lb(rd, rs1 Reg, off int32) { b.emit(Instr{Op: OpLb, Rd: rd, Rs1: rs1, Imm: off}) }

// Sw emits mem32[rs1 + off] = rs2.
func (b *Builder) Sw(rs2, rs1 Reg, off int32) { b.emit(Instr{Op: OpSw, Rs1: rs1, Rs2: rs2, Imm: off}) }

// Sh emits mem16[rs1 + off] = rs2.
func (b *Builder) Sh(rs2, rs1 Reg, off int32) { b.emit(Instr{Op: OpSh, Rs1: rs1, Rs2: rs2, Imm: off}) }

// Sb emits mem8[rs1 + off] = rs2.
func (b *Builder) Sb(rs2, rs1 Reg, off int32) { b.emit(Instr{Op: OpSb, Rs1: rs1, Rs2: rs2, Imm: off}) }

// --- control flow ---

// Beq branches to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 Reg, label string) {
	b.emitRef(Instr{Op: OpBeq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne branches to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 Reg, label string) {
	b.emitRef(Instr{Op: OpBne, Rs1: rs1, Rs2: rs2}, label)
}

// Blt branches to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 Reg, label string) {
	b.emitRef(Instr{Op: OpBlt, Rs1: rs1, Rs2: rs2}, label)
}

// Bge branches to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 Reg, label string) {
	b.emitRef(Instr{Op: OpBge, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp jumps unconditionally to label (assembled as beq r0, r0 with both
// operands the same register).
func (b *Builder) Jmp(label string) { b.emitRef(Instr{Op: OpBeq}, label) }

// Jal jumps to label and records the return address in LR.
func (b *Builder) Jal(label string) { b.emitRef(Instr{Op: OpJal}, label) }

// Jr jumps to the address in rs1.
func (b *Builder) Jr(rs1 Reg) { b.emit(Instr{Op: OpJr, Rs1: rs1}) }

// Ret returns to the caller (jr LR).
func (b *Builder) Ret() { b.Jr(LR) }

// Call saves LR on the stack, calls label, restores LR. It is the standard
// non-leaf call sequence and generates the stack traffic studied by the
// stack-memory experiment (E9).
func (b *Builder) Call(label string) {
	b.Push(LR)
	b.Jal(label)
	b.Pop(LR)
}

// Push pushes each register in order (decrementing SP by 4 per register).
func (b *Builder) Push(regs ...Reg) {
	for _, r := range regs {
		b.emit(Instr{Op: OpPush, Rs1: r})
	}
}

// Pop pops into each register in order (incrementing SP by 4 per register).
// To undo Push(a, b), call Pop(b, a).
func (b *Builder) Pop(regs ...Reg) {
	for _, r := range regs {
		b.emit(Instr{Op: OpPop, Rd: r})
	}
}

// Halt stops the machine.
func (b *Builder) Halt() { b.emit(Instr{Op: OpHalt}) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Assemble resolves label references and returns the finished program.
func (b *Builder) Assemble() (*Program, error) {
	instrs := append([]Instr(nil), b.instrs...)
	for _, ref := range b.refs {
		idx, ok := b.labels[ref.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", ref.label)
		}
		instrs[ref.index].Imm = int32(idx * 4)
	}
	return &Program{Instrs: instrs}, nil
}

// MustAssemble is Assemble for hand-written kernels where an undefined
// label is a bug; it panics on error.
func (b *Builder) MustAssemble() *Program {
	p, err := b.Assemble()
	if err != nil {
		//lint:allow panicfree Must* helper; panicking on a broken hand-written kernel is the documented contract
		panic(err)
	}
	return p
}

// Program is an assembled µRISC program. Instruction i lives at byte
// address TextBase + 4*i when loaded.
type Program struct {
	Instrs []Instr
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }
