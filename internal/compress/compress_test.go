package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"lpmem/internal/cache"
	"lpmem/internal/workloads"
)

func TestRoundTripSimple(t *testing.T) {
	d := Differential{}
	lines := [][]byte{
		make([]byte, 32), // all zero: maximal compression
		{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0},
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F, 1, 0, 0, 0x80},
	}
	for i, line := range lines {
		enc := d.Compress(line)
		dec, err := d.Decompress(enc, len(line))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatalf("line %d: round trip mismatch\n got %x\nwant %x", i, dec, line)
		}
	}
}

// TestRoundTripProperty: Compress then Decompress is the identity for any
// 32-byte line.
func TestRoundTripProperty(t *testing.T) {
	d := Differential{}
	f := func(line [32]byte) bool {
		enc := d.Compress(line[:])
		dec, err := d.Decompress(enc, 32)
		return err == nil && bytes.Equal(dec, line[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressedSizeMatchesCompress: the zero-alloc sizing pass must
// agree exactly with the real encoder on any line.
func TestCompressedSizeMatchesCompress(t *testing.T) {
	d := Differential{}
	f := func(line [32]byte) bool {
		return CompressedSize(line[:]) == len(d.Compress(line[:]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// And on the non-32-byte lengths the quick.Check shape misses.
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{4, 8, 12, 64, 128} {
		line := make([]byte, n)
		for trial := 0; trial < 50; trial++ {
			r.Read(line)
			if got, want := CompressedSize(line), len(d.Compress(line)); got != want {
				t.Fatalf("len %d: CompressedSize %d != encoder %d", n, got, want)
			}
		}
	}
}

// TestSmoothDataCompressesWell: slowly varying words (DSP-like) should
// compress to well under half the original size.
func TestSmoothDataCompressesWell(t *testing.T) {
	d := Differential{}
	line := make([]byte, 32)
	v := int32(1000)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		v += int32(r.Intn(100) - 50)
		binary.LittleEndian.PutUint32(line[i*4:], uint32(v))
	}
	if got := Ratio(d, line); got > 0.5 {
		t.Errorf("smooth line ratio = %.2f, want <= 0.5", got)
	}
}

// TestRandomDataDoesNotExplode: incompressible data may exceed 1.0 only by
// the tag header.
func TestRandomDataDoesNotExplode(t *testing.T) {
	d := Differential{}
	r := rand.New(rand.NewSource(4))
	line := make([]byte, 32)
	r.Read(line)
	maxLen := 32 + (2*7+7)/8 // payload + tag bytes
	if got := len(d.Compress(line)); got > maxLen {
		t.Errorf("random line compressed to %d bytes, max %d", got, maxLen)
	}
}

func TestDecompressErrors(t *testing.T) {
	d := Differential{}
	if _, err := d.Decompress([]byte{1, 2}, 32); err == nil {
		t.Error("short encoding must error")
	}
	if _, err := d.Decompress(nil, 5); err == nil {
		t.Error("bad line size must error")
	}
	// Truncated payload: claim int16 deltas but supply none.
	enc := make([]byte, 2+4) // tags for 7 words + first word, no payload
	for i := 0; i < 7; i++ {
		setTag(enc[:2], i, tagInt16)
	}
	if _, err := d.Decompress(enc, 32); err == nil {
		t.Error("truncated payload must error")
	}
}

func TestNullCodec(t *testing.T) {
	n := Null{}
	line := []byte{1, 2, 3, 4}
	enc := n.Compress(line)
	if !bytes.Equal(enc, line) {
		t.Fatal("null compress must copy")
	}
	dec, err := n.Decompress(enc, 4)
	if err != nil || !bytes.Equal(dec, line) {
		t.Fatalf("null decompress: %v", err)
	}
	if _, err := n.Decompress(enc, 8); err == nil {
		t.Error("length mismatch must error")
	}
}

// TestMeasureTrafficOnKernels: every kernel's boundary traffic must
// compress at least a little, and the accounting must be self-consistent.
func TestMeasureTrafficOnKernels(t *testing.T) {
	cfg := cache.Config{Sets: 32, Ways: 2, LineSize: 32, WriteBack: true, WriteAllocate: true}
	for _, name := range []string{"fir", "adpcm", "matmul", "histogram"} {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res := workloads.MustRun(k.Build(1))
		tr, stats, err := MeasureTraffic(res.Trace, cfg, Differential{})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Lines == 0 {
			t.Fatalf("%s: no boundary traffic", name)
		}
		if tr.RawBytes != tr.Lines*uint64(cfg.LineSize) {
			t.Fatalf("%s: raw bytes %d inconsistent with %d lines", name, tr.RawBytes, tr.Lines)
		}
		if tr.Saving() <= 0 {
			t.Errorf("%s: no compression saving (%.3f)", name, tr.Saving())
		}
		if stats.Accesses == 0 {
			t.Fatalf("%s: no cache accesses", name)
		}
		t.Logf("%-10s lines=%6d raw=%8d comp=%8d saving=%5.1f%% hit=%.3f",
			name, tr.Lines, tr.RawBytes, tr.CompressedBytes, 100*tr.Saving(), stats.HitRate())
	}
}
