package compress

import (
	"bytes"
	"testing"
)

// FuzzDifferentialRoundTrip checks the codec is lossless for every
// well-formed line: arbitrary bytes, truncated to the largest positive
// multiple of four, must decompress back to the original exactly, and
// the encoding must respect the codec's worst-case size bound.
func FuzzDifferentialRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Add([]byte{0x10, 0, 0, 0, 0x11, 0, 0, 0, 0x12, 0, 0, 0, 0xfe, 0xca, 0xbe, 0xba})

	var c Differential
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) &^ 3
		if n == 0 {
			return
		}
		line := data[:n]
		enc := c.Compress(line)
		words := n / 4
		tagBytes := (2*(words-1) + 7) / 8
		if len(enc) > tagBytes+n {
			t.Fatalf("encoding of %d-byte line grew to %d bytes (bound %d)", n, len(enc), tagBytes+n)
		}
		dec, err := c.Decompress(enc, n)
		if err != nil {
			t.Fatalf("decompress of own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", line, dec)
		}
	})
}

// FuzzDecompress feeds arbitrary encodings and line sizes to the
// decoder: it must either return a line of exactly lineSize bytes or an
// error — never panic, never slice out of range.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{}, 4)
	f.Add([]byte{0, 1, 2, 3, 4}, 8)
	f.Add(Differential{}.Compress(bytes.Repeat([]byte{7}, 16)), 16)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, 16) // all tagFull, truncated payload
	f.Add([]byte{0x55, 0, 0, 0, 0}, 12)             // all tagInt8, truncated payload

	var c Differential
	f.Fuzz(func(t *testing.T, enc []byte, lineSize int) {
		if lineSize < 0 || lineSize > 1<<12 {
			return // keep allocations bounded; geometry caps real lines far below this
		}
		dec, err := c.Decompress(enc, lineSize)
		if err != nil {
			return
		}
		if len(dec) != lineSize {
			t.Fatalf("decoded %d bytes, want %d", len(dec), lineSize)
		}
		// A successfully decoded line must re-encode and round-trip.
		again, err := c.Decompress(c.Compress(dec), lineSize)
		if err != nil || !bytes.Equal(again, dec) {
			t.Fatalf("re-encode round-trip broke: err=%v", err)
		}
	})
}
