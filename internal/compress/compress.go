// Package compress implements the on-the-fly differential cache-line
// compression of DATE'03 1B.2 ("A New Algorithm for Energy-Driven Data
// Compression in VLIW Embedded Processors"): a dirty D-cache line is
// compressed by a small hardware unit before write-back to main memory and
// decompressed on refill, cutting main-memory traffic and the energy of
// the high-throughput global bus.
//
// The codec is word-differential: the first 32-bit word of a line is
// stored verbatim; every following word is encoded as its difference from
// the previous word, with a 2-bit tag selecting a 0/1/2/4-byte delta.
// Numeric data in media workloads is strongly value-local (small deltas),
// which is exactly what the original differential technique exploits.
// The codec is a real encoder/decoder pair, not a size estimator; a
// property test verifies lossless round-trips.
package compress

import (
	"encoding/binary"
	"fmt"
)

// Codec compresses and decompresses fixed-size cache lines.
type Codec interface {
	// Name identifies the codec in experiment tables.
	Name() string
	// Compress encodes a line; the returned slice is freshly allocated.
	Compress(line []byte) []byte
	// Decompress reverses Compress. lineSize is the decoded length.
	Decompress(enc []byte, lineSize int) ([]byte, error)
}

// Differential is the paper's word-delta codec. The zero value is ready
// to use.
type Differential struct{}

// Name returns "differential".
func (Differential) Name() string { return "differential" }

// Delta tag values (2 bits per encoded word).
const (
	tagZero  = 0 // delta == 0: no payload bytes
	tagInt8  = 1 // delta fits in int8: 1 payload byte
	tagInt16 = 2 // delta fits in int16: 2 payload bytes
	tagFull  = 3 // raw 4-byte word (delta too wide)
)

// Compress encodes line (length must be a multiple of 4 and >= 4).
//
// Layout: [tag bits, 2 per delta word, packed LSB-first] [first word raw]
// [payload bytes...].
func (Differential) Compress(line []byte) []byte {
	if len(line) < 4 || len(line)%4 != 0 {
		//lint:allow panicfree line length is fixed by the cache geometry in code, never by runtime input
		panic(fmt.Sprintf("compress: line length %d is not a positive multiple of 4", len(line)))
	}
	words := len(line) / 4
	tagBytes := (2*(words-1) + 7) / 8
	out := make([]byte, tagBytes, tagBytes+len(line))
	out = append(out, line[:4]...)

	prev := binary.LittleEndian.Uint32(line[:4])
	for i := 1; i < words; i++ {
		cur := binary.LittleEndian.Uint32(line[i*4:])
		delta := int32(cur - prev)
		var tag byte
		switch {
		case delta == 0:
			tag = tagZero
		case delta >= -128 && delta <= 127:
			tag = tagInt8
			out = append(out, byte(delta))
		case delta >= -32768 && delta <= 32767:
			tag = tagInt16
			out = append(out, byte(delta), byte(delta>>8))
		default:
			tag = tagFull
			out = append(out, byte(cur), byte(cur>>8), byte(cur>>16), byte(cur>>24))
		}
		setTag(out[:tagBytes], i-1, tag)
		prev = cur
	}
	return out
}

// CompressedSize returns len(Differential{}.Compress(line)) without
// building the encoding. The compressed-NUCA replay sizes every line on
// every dirty update, so the sizing pass must not allocate.
func CompressedSize(line []byte) int {
	if len(line) < 4 || len(line)%4 != 0 {
		//lint:allow panicfree line length is fixed by the cache geometry in code, never by runtime input
		panic(fmt.Sprintf("compress: line length %d is not a positive multiple of 4", len(line)))
	}
	words := len(line) / 4
	size := (2*(words-1)+7)/8 + 4
	prev := binary.LittleEndian.Uint32(line[:4])
	for i := 1; i < words; i++ {
		cur := binary.LittleEndian.Uint32(line[i*4:])
		delta := int32(cur - prev)
		switch {
		case delta == 0:
		case delta >= -128 && delta <= 127:
			size++
		case delta >= -32768 && delta <= 32767:
			size += 2
		default:
			size += 4
		}
		prev = cur
	}
	return size
}

// Decompress reverses Compress.
func (Differential) Decompress(enc []byte, lineSize int) ([]byte, error) {
	if lineSize < 4 || lineSize%4 != 0 {
		return nil, fmt.Errorf("compress: bad line size %d", lineSize)
	}
	words := lineSize / 4
	tagBytes := (2*(words-1) + 7) / 8
	if len(enc) < tagBytes+4 {
		return nil, fmt.Errorf("compress: encoding too short (%d bytes)", len(enc))
	}
	out := make([]byte, lineSize)
	copy(out[:4], enc[tagBytes:tagBytes+4])
	prev := binary.LittleEndian.Uint32(out[:4])
	p := tagBytes + 4
	for i := 1; i < words; i++ {
		var cur uint32
		switch getTag(enc[:tagBytes], i-1) {
		case tagZero:
			cur = prev
		case tagInt8:
			if p+1 > len(enc) {
				return nil, fmt.Errorf("compress: truncated int8 delta at word %d", i)
			}
			cur = prev + uint32(int32(int8(enc[p])))
			p++
		case tagInt16:
			if p+2 > len(enc) {
				return nil, fmt.Errorf("compress: truncated int16 delta at word %d", i)
			}
			cur = prev + uint32(int32(int16(uint16(enc[p])|uint16(enc[p+1])<<8)))
			p += 2
		case tagFull:
			if p+4 > len(enc) {
				return nil, fmt.Errorf("compress: truncated raw word at word %d", i)
			}
			cur = binary.LittleEndian.Uint32(enc[p:])
			p += 4
		}
		binary.LittleEndian.PutUint32(out[i*4:], cur)
		prev = cur
	}
	return out, nil
}

func setTag(tags []byte, idx int, tag byte) {
	tags[idx/4] |= tag << uint((idx%4)*2)
}

func getTag(tags []byte, idx int) byte {
	return tags[idx/4] >> uint((idx%4)*2) & 3
}

// Ratio returns compressed size / original size for a line under a codec.
func Ratio(c Codec, line []byte) float64 {
	return float64(len(c.Compress(line))) / float64(len(line))
}

// Null is a pass-through codec used as the no-compression baseline.
type Null struct{}

// Name returns "null".
func (Null) Name() string { return "null" }

// Compress returns a copy of the line.
func (Null) Compress(line []byte) []byte { return append([]byte(nil), line...) }

// Decompress returns a copy of the encoding.
func (Null) Decompress(enc []byte, lineSize int) ([]byte, error) {
	if len(enc) != lineSize {
		return nil, fmt.Errorf("compress: null codec length mismatch %d != %d", len(enc), lineSize)
	}
	return append([]byte(nil), enc...), nil
}
