package compress

import (
	"fmt"

	"lpmem/internal/cache"
	"lpmem/internal/trace"
)

// Traffic summarises the cache/memory boundary traffic of a trace replay,
// with and without compression, in bytes. Main memory is assumed to store
// lines in compressed form, so both write-backs and refills move
// compressed bytes (decompression happens in the refill path, as in the
// paper's architecture).
type Traffic struct {
	// Lines is the number of lines that crossed the boundary.
	Lines uint64
	// RawBytes is the uncompressed boundary traffic.
	RawBytes uint64
	// CompressedBytes is the boundary traffic under the codec.
	CompressedBytes uint64
}

// Saving returns the fraction of boundary bytes removed by compression.
func (t Traffic) Saving() float64 {
	if t.RawBytes == 0 {
		return 0
	}
	return 1 - float64(t.CompressedBytes)/float64(t.RawBytes)
}

// MeasureTraffic replays the data accesses of tr through a write-back
// cache and measures boundary traffic under the codec. The cache is
// flushed at the end so all dirty lines are accounted.
func MeasureTraffic(tr *trace.Trace, cfg cache.Config, codec Codec) (Traffic, cache.Stats, error) {
	return MeasureTrafficCursor(tr.Cursor(), cfg, codec)
}

// MeasureTrafficCursor is MeasureTraffic over an access stream: the
// differential-compression traffic of an on-disk binary trace is
// measured straight off the streaming reader, holding only the cache
// image in memory.
func MeasureTrafficCursor(cur trace.Cursor, cfg cache.Config, codec Codec) (Traffic, cache.Stats, error) {
	backing := cache.NewMapBacking()
	c, err := cache.New(cfg, backing)
	if err != nil {
		return Traffic{}, cache.Stats{}, err
	}
	var t Traffic
	count := func(_ uint32, data []byte) {
		t.Lines++
		t.RawBytes += uint64(len(data))
		t.CompressedBytes += uint64(len(codec.Compress(data)))
	}
	c.OnWriteBack = count
	c.OnRefill = count
	stats, err := c.ReplayCursor(cur)
	if err != nil {
		return Traffic{}, cache.Stats{}, fmt.Errorf("compress: replaying access stream: %w", err)
	}
	c.Flush()
	return t, stats, nil
}
