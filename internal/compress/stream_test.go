package compress

import (
	"bytes"
	"testing"

	"lpmem/internal/cache"
	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// TestMeasureTrafficCursorBinaryStreamEquivalence pins the streamed
// boundary-traffic measurement to the materialised one over a real
// kernel trace: identical traffic, identical cache statistics.
func TestMeasureTrafficCursorBinaryStreamEquivalence(t *testing.T) {
	res := workloads.MustRun(workloads.All()[0].Build(1))
	cfg := cache.Config{Sets: 16, Ways: 2, LineSize: 32, WriteBack: true, WriteAllocate: true}
	wantTraffic, wantStats, err := MeasureTraffic(res.Trace, cfg, Differential{})
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := res.Trace.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&bin)
	if err != nil {
		t.Fatal(err)
	}
	gotTraffic, gotStats, err := MeasureTrafficCursor(r, cfg, Differential{})
	if err != nil {
		t.Fatal(err)
	}
	if gotTraffic != wantTraffic {
		t.Fatalf("streamed traffic diverged: %+v vs %+v", gotTraffic, wantTraffic)
	}
	if gotStats != wantStats {
		t.Fatalf("streamed stats diverged: %+v vs %+v", gotStats, wantStats)
	}
}

// TestMeasureTrafficCursorPropagatesDecodeError checks a truncated
// stream errors instead of under-measuring traffic.
func TestMeasureTrafficCursorPropagatesDecodeError(t *testing.T) {
	res := workloads.MustRun(workloads.All()[0].Build(1))
	var bin bytes.Buffer
	if err := res.Trace.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(bin.Bytes()[:bin.Len()-3]))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{Sets: 16, Ways: 2, LineSize: 32, WriteBack: true, WriteAllocate: true}
	if _, _, err := MeasureTrafficCursor(r, cfg, Differential{}); err == nil {
		t.Fatal("truncated stream did not error")
	}
}
