package cachedesign

import (
	"testing"

	"lpmem/internal/workloads"
)

func explorerFor(t *testing.T, kernel string) *Explorer {
	t.Helper()
	k, err := workloads.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	res := workloads.MustRun(k.Build(1))
	return NewExplorer(res.Trace)
}

func TestExhaustiveFindsSmallest(t *testing.T) {
	e := explorerFor(t, "matmul")
	space := DefaultSpace()
	best, err := e.Exhaustive(space, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if best.MissRate > 0.05 {
		t.Fatalf("returned config misses target: %.4f", best.MissRate)
	}
	t.Logf("exhaustive: %d sets x %d ways (%d B), mr=%.4f, %d sims",
		best.Config.Sets, best.Config.Ways, best.SizeBytes(), best.MissRate, e.Simulations)
}

// TestDirectMeetsTargetWithFarFewerSims is the E19 headline.
func TestDirectMeetsTargetWithFarFewerSims(t *testing.T) {
	for _, bench := range []struct {
		kernel string
		target float64 // listchase has a high capacity-miss floor
	}{{"matmul", 0.03}, {"listchase", 0.15}, {"histogram", 0.03}} {
		kernel := bench.kernel
		e := explorerFor(t, kernel)
		space := DefaultSpace()
		exBest, err := e.Exhaustive(space, bench.target)
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		exSims := e.Simulations

		e.Reset()
		dirBest, err := e.Direct(space, bench.target)
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		dirSims := e.Simulations
		t.Logf("%-10s exhaustive: %5dB in %d sims | direct: %5dB in %d sims",
			kernel, exBest.SizeBytes(), exSims, dirBest.SizeBytes(), dirSims)
		if dirBest.MissRate > bench.target {
			t.Errorf("%s: direct result misses target", kernel)
		}
		if dirSims*2 > exSims {
			t.Errorf("%s: direct used %d sims, want < half of exhaustive's %d", kernel, dirSims, exSims)
		}
		// Miss-rate monotonicity in sets is not perfectly guaranteed, so
		// allow the direct result to be at most 2x the true optimum.
		if dirBest.SizeBytes() > 2*exBest.SizeBytes() {
			t.Errorf("%s: direct config %dB far above optimum %dB",
				kernel, dirBest.SizeBytes(), exBest.SizeBytes())
		}
	}
}

func TestImpossibleTarget(t *testing.T) {
	e := explorerFor(t, "listchase")
	space := Space{MinSets: 2, MaxSets: 4, Ways: []int{1}, LineSize: 16}
	if _, err := e.Exhaustive(space, 0.000001); err == nil {
		t.Fatal("impossible target must error (exhaustive)")
	}
	if _, err := e.Direct(space, 0.000001); err == nil {
		t.Fatal("impossible target must error (direct)")
	}
}

// TestParetoFrontierIsMonotone: along the frontier, size grows and miss
// rate falls.
func TestParetoFrontierIsMonotone(t *testing.T) {
	e := explorerFor(t, "histogram")
	frontier, err := e.Pareto(DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) < 2 {
		t.Fatalf("frontier too small: %d", len(frontier))
	}
	for i := 1; i < len(frontier); i++ {
		if frontier[i].SizeBytes() < frontier[i-1].SizeBytes() {
			t.Fatal("frontier sizes not ascending")
		}
		if frontier[i].MissRate >= frontier[i-1].MissRate {
			t.Fatal("frontier miss rates not descending")
		}
	}
}
