// Package cachedesign implements direct cache design-space exploration,
// reproducing DATE'03 8A.1 (Ghosh & Givargis: "Analytical Design Space
// Exploration of Caches for Embedded Systems").
//
// The traditional methodology picks arbitrary cache parameters, simulates,
// inspects the miss rate, and iterates — converging slowly because the
// design space is large. The paper's algorithm instead *computes* the
// cache configurations satisfying a desired performance directly from the
// application trace, exploiting the structure of the space: for a fixed
// line size and associativity, miss rate is non-increasing in the number
// of sets (a consequence of LRU stack inclusion), so the smallest
// qualifying size is found by bisection rather than a full sweep.
//
// Both methodologies are implemented; the reproduced result is that the
// direct method returns the same minimal configurations while running an
// order of magnitude fewer simulations.
package cachedesign

import (
	"fmt"
	"sort"

	"lpmem/internal/cache"
	"lpmem/internal/trace"
)

// Space bounds the design space to explore.
type Space struct {
	// MinSets/MaxSets bound the set count (powers of two).
	MinSets, MaxSets int
	// Ways lists the associativities to consider.
	Ways []int
	// LineSize is fixed (bytes).
	LineSize int
}

// DefaultSpace is the space used by the E19 experiment.
func DefaultSpace() Space {
	return Space{MinSets: 2, MaxSets: 1024, Ways: []int{1, 2, 4, 8}, LineSize: 32}
}

// Candidate is one evaluated configuration.
type Candidate struct {
	Config   cache.Config
	MissRate float64
}

// SizeBytes returns the candidate's capacity.
func (c Candidate) SizeBytes() int { return c.Config.SizeBytes() }

// Explorer counts simulations so methodologies can be compared.
type Explorer struct {
	tr *trace.Trace
	// Simulations is the number of full trace simulations run.
	Simulations int
	memo        map[cache.Config]float64
}

// NewExplorer wraps a data trace.
func NewExplorer(tr *trace.Trace) *Explorer {
	return &Explorer{tr: tr.Data(), memo: make(map[cache.Config]float64)}
}

// simulate runs one configuration (memoized only across identical calls
// within a methodology comparison reset).
func (e *Explorer) simulate(cfg cache.Config) (float64, error) {
	if mr, ok := e.memo[cfg]; ok {
		return mr, nil
	}
	c, err := cache.New(cfg, nil)
	if err != nil {
		return 0, err
	}
	st := c.Replay(e.tr)
	mr := 1 - st.HitRate()
	e.memo[cfg] = mr
	e.Simulations++
	return mr, nil
}

// Reset clears the simulation counter and memo (for a fresh methodology).
func (e *Explorer) Reset() {
	e.Simulations = 0
	e.memo = make(map[cache.Config]float64)
}

func (s Space) config(sets, ways int) cache.Config {
	return cache.Config{Sets: sets, Ways: ways, LineSize: s.LineSize, WriteBack: true, WriteAllocate: true}
}

// Exhaustive is the design-simulate-analyze baseline: simulate every
// configuration in the space and pick the smallest one meeting the target
// miss rate.
func (e *Explorer) Exhaustive(space Space, targetMissRate float64) (*Candidate, error) {
	var best *Candidate
	for _, ways := range space.Ways {
		for sets := space.MinSets; sets <= space.MaxSets; sets <<= 1 {
			cfg := space.config(sets, ways)
			mr, err := e.simulate(cfg)
			if err != nil {
				return nil, err
			}
			if mr <= targetMissRate {
				cand := &Candidate{Config: cfg, MissRate: mr}
				if best == nil || cand.SizeBytes() < best.SizeBytes() {
					best = cand
				}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cachedesign: no configuration meets miss rate %.4f", targetMissRate)
	}
	return best, nil
}

// Direct is the paper-style exploration: per associativity, bisect over
// the set count (miss rate is monotone in sets for fixed ways/line), then
// take the smallest qualifying configuration across associativities.
func (e *Explorer) Direct(space Space, targetMissRate float64) (*Candidate, error) {
	// Enumerate the power-of-two set counts once.
	var setsList []int
	for s := space.MinSets; s <= space.MaxSets; s <<= 1 {
		setsList = append(setsList, s)
	}
	var best *Candidate
	for _, ways := range space.Ways {
		// Bisect the smallest index whose miss rate meets the target.
		lo, hi := 0, len(setsList)-1
		// Quick reject: if even the biggest cache fails, skip this
		// associativity.
		mrMax, err := e.simulate(space.config(setsList[hi], ways))
		if err != nil {
			return nil, err
		}
		if mrMax > targetMissRate {
			continue
		}
		for lo < hi {
			mid := (lo + hi) / 2
			mr, err := e.simulate(space.config(setsList[mid], ways))
			if err != nil {
				return nil, err
			}
			if mr <= targetMissRate {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cfg := space.config(setsList[lo], ways)
		mr, err := e.simulate(cfg)
		if err != nil {
			return nil, err
		}
		cand := &Candidate{Config: cfg, MissRate: mr}
		if best == nil || cand.SizeBytes() < best.SizeBytes() {
			best = cand
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cachedesign: no configuration meets miss rate %.4f", targetMissRate)
	}
	return best, nil
}

// Pareto returns the miss-rate/size Pareto frontier of the space (by
// exhaustive evaluation), smallest size first — the paper-style design
// space picture.
func (e *Explorer) Pareto(space Space) ([]Candidate, error) {
	var all []Candidate
	for _, ways := range space.Ways {
		for sets := space.MinSets; sets <= space.MaxSets; sets <<= 1 {
			cfg := space.config(sets, ways)
			mr, err := e.simulate(cfg)
			if err != nil {
				return nil, err
			}
			all = append(all, Candidate{Config: cfg, MissRate: mr})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].SizeBytes() != all[j].SizeBytes() {
			return all[i].SizeBytes() < all[j].SizeBytes()
		}
		return all[i].MissRate < all[j].MissRate
	})
	var frontier []Candidate
	bestMR := 2.0
	for _, c := range all {
		if c.MissRate < bestMR {
			frontier = append(frontier, c)
			bestMR = c.MissRate
		}
	}
	return frontier, nil
}
