// Package ctg implements scheduling, dynamic voltage scaling (DVS) and
// genetic-algorithm mapping for conditional task graphs, reproducing
// DATE'03 2B.2 (Wu, Al-Hashimi, Eles: "Scheduling and Mapping of
// Conditional Task Graphs for the Synthesis of Low Power Embedded
// Systems").
//
// A conditional task graph (CTG) extends a task DAG with condition
// variables: a task guarded by a condition only executes in the runs where
// the condition holds, so different runs ("scenarios") execute different
// subgraphs. The available slack under a deadline therefore differs per
// scenario; the DVS pass must pick voltage (stretch) factors that meet the
// deadline in the *worst* scenario while harvesting the slack that exists
// in all of them. Combining the DVS pass with a genetic algorithm over the
// task-to-processor mapping finds mappings whose schedules expose more
// exploitable slack, which is where the paper's larger savings come from.
//
// Energy model: lowering the supply voltage stretches a task by a factor
// s >= 1 and scales its energy by 1/s² (E ∝ V², V ∝ f). A task's nominal
// energy is Power × WCET.
package ctg

import (
	"fmt"
	"sort"
	"sync"
)

// NoCond marks an unconditional task.
const NoCond = -1

// Guard gates a task on one condition variable's outcome.
type Guard struct {
	// Var is the condition-variable index, or NoCond.
	Var int
	// Val is the outcome under which the task executes.
	Val bool
}

// Task is one node of the CTG.
type Task struct {
	Name string
	// WCET is the worst-case execution time at nominal voltage.
	WCET float64
	// Power is the nominal power draw while executing.
	Power float64
	// Guard gates execution.
	Guard Guard
}

// Graph is a conditional task graph. The structural fields (Tasks, Deps,
// CondProb) must not be mutated once scheduling starts: the scheduler
// memoizes the topological order, successor lists, task priorities and
// scenario set on first use, because the DVS search and the GA evaluate
// tens of thousands of schedules against the same structure.
type Graph struct {
	Tasks []Task
	// Deps[i] lists the predecessors of task i.
	Deps [][]int
	// CondProb[v] is the probability that condition v is true.
	CondProb []float64
	// Deadline is the hard completion bound for every scenario.
	Deadline float64

	schedOnce sync.Once
	sched     *sched
}

// sched holds the mapping-independent scheduling invariants of a graph
// plus reusable scratch state for the list scheduler. The scratch is
// guarded by mu so concurrent Makespan calls stay race-free (they
// serialize; all callers in this repository are sequential anyway).
type sched struct {
	order     []int
	succ      [][]int
	prio      []float64
	scenarios []Scenario
	err       error

	mu       sync.Mutex
	done     []bool
	active   []bool
	finish   []float64
	procFree []float64
}

// scheduler builds (once) and returns the graph's cached invariants.
func (g *Graph) scheduler() *sched {
	g.schedOnce.Do(func() {
		s := &sched{}
		s.order, s.err = g.topo()
		if s.err != nil {
			g.sched = s
			return
		}
		n := len(g.Tasks)
		s.succ = make([][]int, n)
		for i, deps := range g.Deps {
			for _, d := range deps {
				s.succ[d] = append(s.succ[d], i)
			}
		}
		// Longest path to exit at nominal WCET (list-scheduling priority).
		s.prio = make([]float64, n)
		for k := n - 1; k >= 0; k-- {
			v := s.order[k]
			s.prio[v] = g.Tasks[v].WCET
			for _, sc := range s.succ[v] {
				if s.prio[sc]+g.Tasks[v].WCET > s.prio[v] {
					s.prio[v] = s.prio[sc] + g.Tasks[v].WCET
				}
			}
		}
		s.scenarios = g.Scenarios()
		s.done = make([]bool, n)
		s.active = make([]bool, n)
		s.finish = make([]float64, n)
		g.sched = s
	})
	return g.sched
}

// Validate checks structural sanity (indices, probabilities, acyclicity).
func (g *Graph) Validate() error {
	if len(g.Deps) != len(g.Tasks) {
		return fmt.Errorf("ctg: deps size %d != tasks %d", len(g.Deps), len(g.Tasks))
	}
	for i, deps := range g.Deps {
		for _, d := range deps {
			if d < 0 || d >= len(g.Tasks) {
				return fmt.Errorf("ctg: task %d has bad dep %d", i, d)
			}
		}
	}
	for i, t := range g.Tasks {
		if t.WCET <= 0 || t.Power <= 0 {
			return fmt.Errorf("ctg: task %d needs positive WCET and Power", i)
		}
		if t.Guard.Var != NoCond && (t.Guard.Var < 0 || t.Guard.Var >= len(g.CondProb)) {
			return fmt.Errorf("ctg: task %d guard on unknown condition %d", i, t.Guard.Var)
		}
	}
	for _, p := range g.CondProb {
		if p < 0 || p > 1 {
			return fmt.Errorf("ctg: condition probability %f out of range", p)
		}
	}
	if _, err := g.topo(); err != nil {
		return err
	}
	return nil
}

// topo returns a topological order or an error on cycles.
func (g *Graph) topo() ([]int, error) {
	n := len(g.Tasks)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, deps := range g.Deps {
		for _, d := range deps {
			indeg[i]++
			succ[d] = append(succ[d], i)
		}
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		// Smallest index first for determinism.
		sort.Ints(queue)
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("ctg: graph has a cycle")
	}
	return order, nil
}

// Scenario is one assignment of condition outcomes.
type Scenario struct {
	Outcomes []bool
	Prob     float64
}

// Scenarios enumerates all condition combinations with probabilities.
func (g *Graph) Scenarios() []Scenario {
	n := len(g.CondProb)
	out := make([]Scenario, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		s := Scenario{Outcomes: make([]bool, n), Prob: 1}
		for v := 0; v < n; v++ {
			if mask>>v&1 == 1 {
				s.Outcomes[v] = true
				s.Prob *= g.CondProb[v]
			} else {
				s.Prob *= 1 - g.CondProb[v]
			}
		}
		out = append(out, s)
	}
	return out
}

// Active reports whether task i executes in the scenario.
func (g *Graph) Active(i int, sc Scenario) bool {
	gd := g.Tasks[i].Guard
	return gd.Var == NoCond || sc.Outcomes[gd.Var] == gd.Val
}

// Makespan list-schedules the active tasks of a scenario onto processors
// (mapping[i] = processor) with the given per-task stretch factors, and
// returns the completion time. Priorities are longest-path lengths at
// nominal WCET; the policy is deterministic.
func (g *Graph) Makespan(mapping []int, procs int, stretch []float64, sc Scenario) float64 {
	n := len(g.Tasks)
	s := g.scheduler()
	if s.err != nil {
		// Only possible with a cycle, excluded by Validate.
		return 1e18
	}
	prio := s.prio

	// Ready-list scheduling over the reusable scratch state.
	s.mu.Lock()
	defer s.mu.Unlock()
	done, active, finish := s.done, s.active, s.finish
	if cap(s.procFree) < procs {
		s.procFree = make([]float64, procs)
	}
	procFree := s.procFree[:procs]
	for i := range procFree {
		procFree[i] = 0
	}
	remaining := 0
	for i := 0; i < n; i++ {
		finish[i] = 0
		if g.Active(i, sc) {
			active[i] = true
			done[i] = false
			remaining++
		} else {
			active[i] = false
			done[i] = true
		}
	}
	for remaining > 0 {
		// Pick the ready active task with the highest priority.
		best := -1
		for i := 0; i < n; i++ {
			if done[i] || !active[i] {
				continue
			}
			ready := true
			for _, d := range g.Deps[i] {
				if active[d] && !done[d] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			//lint:allow floatcompare exact equality only breaks argmax ties deterministically by index
			if best < 0 || prio[i] > prio[best] || (prio[i] == prio[best] && i < best) {
				best = i
			}
		}
		if best < 0 {
			// Only possible with a cycle, excluded by Validate.
			return 1e18
		}
		start := procFree[mapping[best]]
		for _, d := range g.Deps[best] {
			if active[d] && finish[d] > start {
				start = finish[d]
			}
		}
		s := 1.0
		if stretch != nil {
			s = stretch[best]
		}
		finish[best] = start + g.Tasks[best].WCET*s
		procFree[mapping[best]] = finish[best]
		done[best] = true
		remaining--
	}
	max := 0.0
	for i := 0; i < n; i++ {
		if active[i] && finish[i] > max {
			max = finish[i]
		}
	}
	return max
}

// Feasible reports whether all scenarios meet the deadline.
func (g *Graph) Feasible(mapping []int, procs int, stretch []float64) bool {
	for _, sc := range g.cachedScenarios() {
		if g.Makespan(mapping, procs, stretch, sc) > g.Deadline+1e-9 {
			return false
		}
	}
	return true
}

// cachedScenarios returns the memoized scenario set when the graph is
// schedulable, falling back to a fresh enumeration otherwise. Callers
// must treat the result as read-only.
func (g *Graph) cachedScenarios() []Scenario {
	if s := g.scheduler(); s.err == nil {
		return s.scenarios
	}
	return g.Scenarios()
}

// Energy returns the expected energy over scenarios under the stretches:
// a task running at stretch s consumes Power*WCET/s².
func (g *Graph) Energy(stretch []float64) float64 {
	total := 0.0
	for _, sc := range g.cachedScenarios() {
		e := 0.0
		for i, t := range g.Tasks {
			if !g.Active(i, sc) {
				continue
			}
			s := 1.0
			if stretch != nil {
				s = stretch[i]
			}
			e += t.Power * t.WCET / (s * s)
		}
		total += sc.Prob * e
	}
	return total
}

// DVS computes per-task stretch factors that keep every scenario within
// the deadline: first a global stretch equal to the minimum scenario
// slack, then greedy per-task refinement that keeps stretching the task
// with the highest remaining energy while feasibility holds.
func (g *Graph) DVS(mapping []int, procs int) ([]float64, error) {
	return g.dvsBounded(mapping, procs, 64)
}

// dvsBounded is DVS with a cap on refinement rounds; the GA uses a small
// cap as a fast fitness proxy.
func (g *Graph) dvsBounded(mapping []int, procs int, maxRounds int) ([]float64, error) {
	n := len(g.Tasks)
	stretch := make([]float64, n)
	for i := range stretch {
		stretch[i] = 1
	}
	if !g.Feasible(mapping, procs, stretch) {
		return nil, fmt.Errorf("ctg: mapping misses the deadline even at nominal voltage")
	}
	// Global stretch: binary search the largest uniform factor.
	lo, hi := 1.0, 16.0
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		for i := range stretch {
			stretch[i] = mid
		}
		if g.Feasible(mapping, procs, stretch) {
			lo = mid
		} else {
			hi = mid
		}
	}
	for i := range stretch {
		stretch[i] = lo
	}
	// Greedy per-task refinement.
	const step = 1.05
	improved := true
	for rounds := 0; improved && rounds < maxRounds; rounds++ {
		improved = false
		// Order tasks by current energy contribution, descending.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			ea := g.Tasks[idx[a]].Power * g.Tasks[idx[a]].WCET / (stretch[idx[a]] * stretch[idx[a]])
			eb := g.Tasks[idx[b]].Power * g.Tasks[idx[b]].WCET / (stretch[idx[b]] * stretch[idx[b]])
			//lint:allow floatcompare exact tie-break keeps the sort order deterministic
			if ea != eb {
				return ea > eb
			}
			return idx[a] < idx[b]
		})
		for _, i := range idx {
			old := stretch[i]
			stretch[i] = old * step
			if g.Feasible(mapping, procs, stretch) {
				improved = true
			} else {
				stretch[i] = old
			}
		}
	}
	return stretch, nil
}
