package ctg

import (
	"fmt"
	"math/rand"
	"sort"
)

// GAConfig tunes the genetic mapping search.
type GAConfig struct {
	// Population and Generations size the search.
	Population  int
	Generations int
	// MutationRate is the per-gene mutation probability.
	MutationRate float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultGAConfig returns the settings used by the E11 experiment.
func DefaultGAConfig() GAConfig {
	return GAConfig{Population: 24, Generations: 30, MutationRate: 0.08, Seed: 1}
}

// GAResult is the outcome of the mapping search.
type GAResult struct {
	Mapping []int
	Stretch []float64
	Energy  float64
}

// RoundRobin returns the naive baseline mapping.
func RoundRobin(tasks, procs int) []int {
	m := make([]int, tasks)
	for i := range m {
		m[i] = i % procs
	}
	return m
}

// MapGA searches task-to-processor mappings with a genetic algorithm;
// fitness of a mapping is the expected energy after running the DVS pass
// on it (infeasible mappings are heavily penalized).
func MapGA(g *Graph, procs int, cfg GAConfig) (*GAResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if procs <= 0 {
		return nil, fmt.Errorf("ctg: need at least one processor")
	}
	n := len(g.Tasks)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Fitness uses a cheap DVS (few refinement rounds); the winner is
	// re-evaluated with the full pass at the end.
	evaluate := func(mapping []int) (float64, []float64) {
		stretch, err := g.dvsBounded(mapping, procs, 6)
		if err != nil {
			return 1e18, nil
		}
		return g.Energy(stretch), stretch
	}

	type individual struct {
		mapping []int
		energy  float64
		stretch []float64
	}
	pop := make([]individual, cfg.Population)
	for p := range pop {
		m := make([]int, n)
		if p == 0 {
			copy(m, RoundRobin(n, procs)) // seed with the baseline
		} else {
			for i := range m {
				m[i] = rng.Intn(procs)
			}
		}
		e, s := evaluate(m)
		pop[p] = individual{mapping: m, energy: e, stretch: s}
	}
	sortPop := func() {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].energy < pop[b].energy })
	}
	sortPop()

	tournament := func() individual {
		a := pop[rng.Intn(len(pop))]
		b := pop[rng.Intn(len(pop))]
		if a.energy <= b.energy {
			return a
		}
		return b
	}
	for gen := 0; gen < cfg.Generations; gen++ {
		next := make([]individual, 0, cfg.Population)
		// Elitism: carry the best two.
		next = append(next, pop[0], pop[1])
		for len(next) < cfg.Population {
			pa, pb := tournament(), tournament()
			child := make([]int, n)
			cut := rng.Intn(n)
			copy(child, pa.mapping[:cut])
			copy(child[cut:], pb.mapping[cut:])
			for i := range child {
				if rng.Float64() < cfg.MutationRate {
					child[i] = rng.Intn(procs)
				}
			}
			e, s := evaluate(child)
			next = append(next, individual{mapping: child, energy: e, stretch: s})
		}
		pop = next
		sortPop()
	}
	best := pop[0]
	if best.stretch == nil {
		return nil, fmt.Errorf("ctg: GA found no feasible mapping")
	}
	stretch, err := g.DVS(best.mapping, procs)
	if err != nil {
		return nil, err
	}
	return &GAResult{Mapping: best.mapping, Stretch: stretch, Energy: g.Energy(stretch)}, nil
}
