package ctg

import (
	"math"
	"testing"
)

func TestValidateCatchesErrors(t *testing.T) {
	g := CruiseController()
	if err := g.Validate(); err != nil {
		t.Fatalf("cruise controller should validate: %v", err)
	}
	bad := &Graph{
		Tasks: []Task{{WCET: 1, Power: 1, Guard: Guard{Var: 3}}},
		Deps:  [][]int{{}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("guard on unknown condition must be rejected")
	}
	cyc := &Graph{
		Tasks: []Task{{WCET: 1, Power: 1, Guard: Guard{Var: NoCond}}, {WCET: 1, Power: 1, Guard: Guard{Var: NoCond}}},
		Deps:  [][]int{{1}, {0}},
	}
	if err := cyc.Validate(); err == nil {
		t.Error("cycle must be rejected")
	}
}

func TestScenariosSumToOne(t *testing.T) {
	g := CruiseController()
	sum := 0.0
	for _, sc := range g.Scenarios() {
		sum += sc.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scenario probabilities sum to %f", sum)
	}
	if len(g.Scenarios()) != 4 {
		t.Fatalf("want 4 scenarios for 2 conditions, got %d", len(g.Scenarios()))
	}
}

// TestConditionalExclusion: in a no-obstacle scenario the brake tasks are
// inactive and the speed tasks active, and vice versa.
func TestConditionalExclusion(t *testing.T) {
	g := CruiseController()
	scObstacle := Scenario{Outcomes: []bool{true, false}, Prob: 1}
	scClear := Scenario{Outcomes: []bool{false, false}, Prob: 1}
	if !g.Active(4, scObstacle) || g.Active(4, scClear) {
		t.Error("brake-plan activity wrong")
	}
	if g.Active(6, scObstacle) || !g.Active(6, scClear) {
		t.Error("speed-plan activity wrong")
	}
	if !g.Active(0, scObstacle) || !g.Active(0, scClear) {
		t.Error("unconditional task must always be active")
	}
}

// TestMakespanRespectsDependencies: a two-task chain on one processor
// takes the sum of WCETs.
func TestMakespanChain(t *testing.T) {
	g := &Graph{
		Tasks: []Task{
			{WCET: 5, Power: 1, Guard: Guard{Var: NoCond}},
			{WCET: 7, Power: 1, Guard: Guard{Var: NoCond}},
		},
		Deps:     [][]int{{}, {0}},
		Deadline: 100,
	}
	ms := g.Makespan([]int{0, 0}, 1, nil, Scenario{})
	if ms != 12 {
		t.Fatalf("chain makespan = %f, want 12", ms)
	}
	// On two processors the chain is still serial.
	ms2 := g.Makespan([]int{0, 1}, 2, nil, Scenario{})
	if ms2 != 12 {
		t.Fatalf("chain on 2 procs = %f, want 12", ms2)
	}
}

// TestDVSSavesEnergy is the E11 core claim: DVS on the CTG must cut
// expected energy meaningfully with every scenario still meeting the
// deadline.
func TestDVSSavesEnergy(t *testing.T) {
	g := CruiseController()
	const procs = 2
	mapping := RoundRobin(len(g.Tasks), procs)
	nominal := g.Energy(nil)
	stretch, err := g.DVS(mapping, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Feasible(mapping, procs, stretch) {
		t.Fatal("DVS result must be feasible in all scenarios")
	}
	dvsE := g.Energy(stretch)
	saving := 100 * (nominal - dvsE) / nominal
	t.Logf("nominal=%.1f dvs=%.1f saving=%.1f%%", nominal, dvsE, saving)
	if saving < 15 {
		t.Errorf("DVS saving = %.1f%%, want >= 15%%", saving)
	}
	for i, s := range stretch {
		if s < 1 {
			t.Errorf("task %d stretch %f < 1", i, s)
		}
	}
}

// TestGAMappingBeatsDVSAlone: GA mapping + DVS must beat round-robin +
// DVS, reproducing the paper's second claim.
func TestGAMappingBeatsDVSAlone(t *testing.T) {
	g := CruiseController()
	const procs = 2
	rr := RoundRobin(len(g.Tasks), procs)
	stretch, err := g.DVS(rr, procs)
	if err != nil {
		t.Fatal(err)
	}
	dvsOnly := g.Energy(stretch)
	res, err := MapGA(g, procs, DefaultGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("nominal=%.1f dvs-only=%.1f ga+dvs=%.1f", g.Energy(nil), dvsOnly, res.Energy)
	if res.Energy > dvsOnly+1e-9 {
		t.Errorf("GA mapping (%.1f) must not be worse than round-robin (%.1f)", res.Energy, dvsOnly)
	}
	if !g.Feasible(res.Mapping, procs, res.Stretch) {
		t.Error("GA result must be feasible")
	}
}

// TestInfeasibleDeadline: a deadline below the critical path must be
// rejected by DVS.
func TestInfeasibleDeadline(t *testing.T) {
	g := CruiseController()
	g.Deadline = 10
	if _, err := g.DVS(RoundRobin(len(g.Tasks), 2), 2); err == nil {
		t.Fatal("impossible deadline must fail")
	}
}

// TestRandomCTGs: DVS is feasible and saves energy across random graphs.
func TestRandomCTGs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := RandomCTG(seed, 4, 4, 2, 2.0)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		const procs = 3
		mapping := RoundRobin(len(g.Tasks), procs)
		stretch, err := g.DVS(mapping, procs)
		if err != nil {
			// Random instance may be infeasible at this deadline; skip.
			continue
		}
		if got, want := g.Energy(stretch), g.Energy(nil); got >= want {
			t.Errorf("seed %d: DVS did not reduce energy (%.1f >= %.1f)", seed, got, want)
		}
	}
}
