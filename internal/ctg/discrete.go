package ctg

import "fmt"

// Discrete-voltage DVS. Real embedded processors of the paper's era
// offered a handful of voltage/frequency operating points rather than a
// continuum; a task's stretch factor must then be chosen from a fixed
// menu. Discretization loses part of the continuous savings — quantifying
// that loss is the ablation the E11 benchmark runs.

// DefaultLevels returns a typical 4-point operating menu as stretch
// factors (1.0 = nominal voltage/frequency).
func DefaultLevels() []float64 {
	return []float64{1.0, 1.33, 1.66, 2.0}
}

// QuantizeDown snaps each stretch factor to the largest menu level that
// does not exceed it. Since makespan is monotone in every stretch,
// rounding *down* keeps any feasible continuous solution feasible.
func QuantizeDown(stretch []float64, levels []float64) ([]float64, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("ctg: empty level menu")
	}
	for _, l := range levels {
		if l < 1 {
			return nil, fmt.Errorf("ctg: level %f below nominal", l)
		}
	}
	out := make([]float64, len(stretch))
	for i, s := range stretch {
		best := 1.0
		for _, l := range levels {
			if l <= s && l > best {
				best = l
			}
		}
		out[i] = best
	}
	return out, nil
}

// DVSDiscrete runs the continuous DVS pass and then snaps the result to
// the level menu, followed by a greedy repair pass that tries to bump
// individual tasks to the next higher level while all scenarios stay
// within the deadline.
func (g *Graph) DVSDiscrete(mapping []int, procs int, levels []float64) ([]float64, error) {
	cont, err := g.DVS(mapping, procs)
	if err != nil {
		return nil, err
	}
	stretch, err := QuantizeDown(cont, levels)
	if err != nil {
		return nil, err
	}
	if !g.Feasible(mapping, procs, stretch) {
		// Cannot happen: rounding down only shrinks execution times.
		return nil, fmt.Errorf("ctg: internal error: quantized solution infeasible")
	}
	// Greedy bump: try raising each task to its next menu level.
	improved := true
	for rounds := 0; improved && rounds < 16; rounds++ {
		improved = false
		for i := range stretch {
			next := nextLevel(stretch[i], levels)
			if next <= stretch[i] {
				continue
			}
			old := stretch[i]
			stretch[i] = next
			if g.Feasible(mapping, procs, stretch) {
				improved = true
			} else {
				stretch[i] = old
			}
		}
	}
	return stretch, nil
}

// nextLevel returns the smallest menu level strictly above s (or s).
func nextLevel(s float64, levels []float64) float64 {
	best, found := s, false
	for _, l := range levels {
		if l > s && (!found || l < best) {
			best, found = l, true
		}
	}
	return best
}
