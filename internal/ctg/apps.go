package ctg

import "math/rand"

// CruiseController returns a hand-crafted conditional task graph in the
// style of the paper's real-life example: a vehicle cruise-control
// application where one branch (obstacle detected) triggers a braking
// chain and the other a speed-maintenance chain, plus an optional
// driver-display update.
//
// Conditions: c0 = obstacle detected (p=0.3), c1 = display on (p=0.5).
func CruiseController() *Graph {
	cond := func(v int, val bool) Guard { return Guard{Var: v, Val: val} }
	none := Guard{Var: NoCond}
	return &Graph{
		Tasks: []Task{
			{Name: "sense-speed", WCET: 8, Power: 2.0, Guard: none},           // 0
			{Name: "sense-radar", WCET: 10, Power: 2.4, Guard: none},          // 1
			{Name: "filter", WCET: 12, Power: 1.8, Guard: none},               // 2
			{Name: "detect", WCET: 9, Power: 2.2, Guard: none},                // 3
			{Name: "brake-plan", WCET: 14, Power: 3.0, Guard: cond(0, true)},  // 4
			{Name: "brake-act", WCET: 7, Power: 2.6, Guard: cond(0, true)},    // 5
			{Name: "speed-plan", WCET: 11, Power: 2.1, Guard: cond(0, false)}, // 6
			{Name: "throttle", WCET: 6, Power: 1.7, Guard: cond(0, false)},    // 7
			{Name: "log", WCET: 5, Power: 1.2, Guard: none},                   // 8
			{Name: "display-fmt", WCET: 6, Power: 1.5, Guard: cond(1, true)},  // 9
			{Name: "display-out", WCET: 4, Power: 1.3, Guard: cond(1, true)},  // 10
			{Name: "commit", WCET: 5, Power: 1.6, Guard: none},                // 11
		},
		Deps: [][]int{
			{},        // 0
			{},        // 1
			{0},       // 2
			{1, 2},    // 3
			{3},       // 4
			{4},       // 5
			{3},       // 6
			{6},       // 7
			{3},       // 8
			{3},       // 9
			{9},       // 10
			{5, 7, 8}, // 11: joins whichever branch ran
		},
		CondProb: []float64{0.3, 0.5},
		Deadline: 90,
	}
}

// RandomCTG generates a layered conditional task graph for ablation
// studies: layers of tasks with edges to the previous layer, a fraction of
// tasks guarded by one of nConds conditions.
func RandomCTG(seed int64, layers, perLayer, nConds int, deadlineSlack float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{}
	for v := 0; v < nConds; v++ {
		g.CondProb = append(g.CondProb, 0.2+0.6*rng.Float64())
	}
	totalWCET := 0.0
	for l := 0; l < layers; l++ {
		for k := 0; k < perLayer; k++ {
			id := len(g.Tasks)
			t := Task{
				Name:  "t",
				WCET:  2 + float64(rng.Intn(12)),
				Power: 1 + 2*rng.Float64(),
				Guard: Guard{Var: NoCond},
			}
			if nConds > 0 && rng.Float64() < 0.4 {
				t.Guard = Guard{Var: rng.Intn(nConds), Val: rng.Intn(2) == 0}
			}
			totalWCET += t.WCET
			g.Tasks = append(g.Tasks, t)
			var deps []int
			if l > 0 {
				prevStart := (l - 1) * perLayer
				for d := 0; d < 1+rng.Intn(2); d++ {
					deps = append(deps, prevStart+rng.Intn(perLayer))
				}
			}
			g.Deps = append(g.Deps, deps)
			_ = id
		}
	}
	// Deadline: serial WCET / layers gives a rough parallel makespan;
	// multiply by the requested slack factor.
	g.Deadline = totalWCET / float64(perLayer) * deadlineSlack
	return g
}
