package ctg

import "testing"

func TestQuantizeDown(t *testing.T) {
	levels := DefaultLevels()
	got, err := QuantizeDown([]float64{1.0, 1.5, 1.7, 3.0}, levels)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0, 1.33, 1.66, 2.0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantize[%d] = %f, want %f", i, got[i], want[i])
		}
	}
	if _, err := QuantizeDown(nil, nil); err == nil {
		t.Fatal("empty menu must error")
	}
	if _, err := QuantizeDown(nil, []float64{0.5}); err == nil {
		t.Fatal("sub-nominal level must error")
	}
}

// TestDiscreteFeasibleAndBetween: discrete DVS must stay feasible and its
// energy must land between nominal and continuous DVS.
func TestDiscreteFeasibleAndBetween(t *testing.T) {
	g := CruiseController()
	const procs = 2
	mapping := RoundRobin(len(g.Tasks), procs)
	cont, err := g.DVS(mapping, procs)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := g.DVSDiscrete(mapping, procs, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Feasible(mapping, procs, disc) {
		t.Fatal("discrete solution infeasible")
	}
	nominal := g.Energy(nil)
	contE := g.Energy(cont)
	discE := g.Energy(disc)
	t.Logf("nominal=%.1f continuous=%.1f discrete=%.1f", nominal, contE, discE)
	if discE >= nominal {
		t.Errorf("discrete DVS saved nothing: %.1f >= %.1f", discE, nominal)
	}
	if discE < contE-1e-9 {
		t.Errorf("discrete cannot beat continuous: %.1f < %.1f", discE, contE)
	}
	// Every stretch must be on the menu.
	menu := map[float64]bool{}
	for _, l := range DefaultLevels() {
		menu[l] = true
	}
	for i, s := range disc {
		if !menu[s] {
			t.Errorf("task %d stretch %f not on the menu", i, s)
		}
	}
}
