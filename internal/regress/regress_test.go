package regress

import (
	"os"
	"strings"
	"testing"

	"lpmem"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		ID:         "E1",
		Title:      "Address clustering",
		PaperClaim: "avg -25%",
		Summary:    "clustering saves 21.6%",
		Header:     []string{"app", "saving"},
		Rows:       [][]string{{"app-media", "21.60"}, {"app-net", "13.10"}},
	}
}

// TestGoldenRoundTrip: write → list → read preserves every field.
func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleSnapshot()
	if err := WriteGolden(dir, want); err != nil {
		t.Fatal(err)
	}
	ids, err := GoldenIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "E1" {
		t.Fatalf("golden IDs = %v", ids)
	}
	got, err := ReadGolden(dir, "E1")
	if err != nil {
		t.Fatal(err)
	}
	if ds := CompareSnapshot(want, got); len(ds) != 0 {
		t.Fatalf("round trip drifted: %v", ds)
	}
	if got.Title != want.Title || got.PaperClaim != want.PaperClaim {
		t.Fatalf("metadata lost: %+v", got)
	}
}

// TestGoldenIDsMissingDir: a first record starts from an empty state.
func TestGoldenIDsMissingDir(t *testing.T) {
	ids, err := GoldenIDs(t.TempDir() + "/nope")
	if err != nil || len(ids) != 0 {
		t.Fatalf("missing dir: ids=%v err=%v", ids, err)
	}
}

// TestCompareSnapshotDetectsEveryField: each kind of content drift is
// reported with its own kind tag.
func TestCompareSnapshotDetectsEveryField(t *testing.T) {
	golden := sampleSnapshot()
	if ds := CompareSnapshot(golden, sampleSnapshot()); len(ds) != 0 {
		t.Fatalf("identical snapshots drifted: %v", ds)
	}
	cases := []struct {
		kind   string
		mutate func(*Snapshot)
	}{
		{"summary", func(s *Snapshot) { s.Summary = "different" }},
		{"header", func(s *Snapshot) { s.Header[1] = "delta" }},
		{"rows", func(s *Snapshot) { s.Rows[1][1] = "13.11" }},
		{"rows", func(s *Snapshot) { s.Rows = s.Rows[:1] }},
	}
	for _, tc := range cases {
		live := sampleSnapshot()
		tc.mutate(&live)
		ds := CompareSnapshot(golden, live)
		if len(ds) == 0 {
			t.Fatalf("%s mutation not detected", tc.kind)
		}
		if ds[0].Kind != tc.kind {
			t.Fatalf("drift kind = %q, want %q (%s)", ds[0].Kind, tc.kind, ds[0].Detail)
		}
	}
}

// TestBaselineRoundTripAndOrder: Upsert keeps natural experiment order
// (E2 before E10) and the file round-trips through disk.
func TestBaselineRoundTripAndOrder(t *testing.T) {
	b := &Baseline{Iterations: 3, TolerancePct: 25, CalibrationNS: 1000}
	for _, id := range []string{"E10", "E2", "E1"} {
		b.Upsert(ExperimentBaseline{ID: id, WallNS: 5, Allocs: 7, Headline: "h"})
	}
	b.Upsert(ExperimentBaseline{ID: "E2", WallNS: 9}) // replace, not duplicate
	if len(b.Experiments) != 3 {
		t.Fatalf("upsert duplicated: %+v", b.Experiments)
	}
	order := []string{"E1", "E2", "E10"}
	for i, want := range order {
		if b.Experiments[i].ID != want {
			t.Fatalf("order[%d] = %s, want %s", i, b.Experiments[i].ID, want)
		}
	}
	if e, ok := b.ByID("E2"); !ok || e.WallNS != 9 {
		t.Fatalf("ByID after replace: %+v ok=%v", e, ok)
	}

	path := t.TempDir() + "/bench.json"
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || len(got.Experiments) != 3 || got.CalibrationNS != 1000 {
		t.Fatalf("round trip: %+v", got)
	}
}

// TestReadBaselineRejectsWrongSchema: stale files fail loudly.
func TestReadBaselineRejectsWrongSchema(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	if err := os.WriteFile(path, []byte(`{"schema":"lpmem-bench/0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

// TestCompareCost: slowdowns and alloc growth beyond tolerance fail;
// speedups and within-tolerance noise pass; calibration scale shifts the
// budget.
func TestCompareCost(t *testing.T) {
	base := ExperimentBaseline{ID: "E1", WallNS: 1_000_000_000, Allocs: 1_000_000}
	tol := Tolerances{Pct: 25, WallFloorNS: 0, AllocFloor: 0}

	ok := Measurement{ID: "E1", WallNS: 1_200_000_000, Allocs: 1_200_000}
	if ds := CompareCost(base, ok, tol, 1); len(ds) != 0 {
		t.Fatalf("within tolerance flagged: %v", ds)
	}
	fast := Measurement{ID: "E1", WallNS: 100, Allocs: 10}
	if ds := CompareCost(base, fast, tol, 1); len(ds) != 0 {
		t.Fatalf("speedup flagged: %v", ds)
	}
	slow := Measurement{ID: "E1", WallNS: 1_300_000_000, Allocs: 1_000_000}
	ds := CompareCost(base, slow, tol, 1)
	if len(ds) != 1 || ds[0].Kind != "timing" {
		t.Fatalf("30%% slowdown not flagged as timing: %v", ds)
	}
	// The same wall time passes on a machine measured 2x slower.
	if ds := CompareCost(base, slow, tol, 2); len(ds) != 0 {
		t.Fatalf("scaled budget still flagged: %v", ds)
	}
	churn := Measurement{ID: "E1", WallNS: 1_000_000_000, Allocs: 2_000_000}
	ds = CompareCost(base, churn, tol, 1)
	if len(ds) != 1 || ds[0].Kind != "allocs" {
		t.Fatalf("alloc churn not flagged: %v", ds)
	}
	// Floors forgive tiny absolute drift on tiny experiments.
	tiny := ExperimentBaseline{ID: "E17", WallNS: 10_000, Allocs: 100}
	noisy := Measurement{ID: "E17", WallNS: 5_000_000, Allocs: 5_000}
	if ds := CompareCost(tiny, noisy, DefaultTolerances(), 1); len(ds) != 0 {
		t.Fatalf("floor did not absorb jitter: %v", ds)
	}
}

// TestScaleClamp: degenerate calibrations cannot disable the check.
func TestScaleClamp(t *testing.T) {
	cases := []struct {
		rec, live int64
		want      float64
	}{
		{100, 100, 1}, {100, 200, 2}, {100, 10_000, 4}, {10_000, 100, 0.25},
		{0, 100, 1}, {100, 0, 1}, {-5, 7, 1},
	}
	for _, tc := range cases {
		if got := Scale(tc.rec, tc.live); got != tc.want {
			t.Fatalf("Scale(%d, %d) = %v, want %v", tc.rec, tc.live, got, tc.want)
		}
	}
}

// TestMeasureAll: measuring a cheap experiment through the real engine
// yields a positive wall time, a populated snapshot, and honours the
// no-cache contract.
func TestMeasureAll(t *testing.T) {
	exp, err := lpmem.ByID("E17")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MeasureAll([]lpmem.Experiment{exp}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d measurements", len(ms))
	}
	m := ms[0]
	if m.ID != "E17" || m.WallNS <= 0 {
		t.Fatalf("measurement: %+v", m)
	}
	if m.Snapshot.Summary == "" || len(m.Snapshot.Header) == 0 || len(m.Snapshot.Rows) == 0 {
		t.Fatalf("snapshot not captured: %+v", m.Snapshot)
	}
	if m.Snapshot.Title == "" || m.Snapshot.PaperClaim == "" {
		t.Fatalf("snapshot metadata missing: %+v", m.Snapshot)
	}
}

// TestCalibrate: the calibration loop is measurable and repeatable to
// within the coarse bounds the scale clamp assumes.
func TestCalibrate(t *testing.T) {
	ns := Calibrate(2)
	if ns <= 0 {
		t.Fatalf("calibration measured %d ns", ns)
	}
}
