// Package regress is the regression harness behind cmd/lpmembench: it
// pins every experiment's regenerated paper table to a committed golden
// snapshot and every experiment's cost to a committed perf baseline, so
// that a PR can only change either deliberately (by re-recording) and
// never silently.
//
// Two artifact families make up a baseline:
//
//   - Golden snapshots, one JSON file per experiment under
//     testdata/golden/, holding the exact table header, rows and headline
//     summary. Comparison is exact: experiments are deterministic by
//     contract (see the lpmemlint determinism analyzer and the root
//     determinism test), so any byte of drift is a behaviour change.
//
//   - A perf baseline (BENCH_*.json at the repository root) holding
//     per-experiment wall time, allocation counts and the headline metric.
//     Comparison is tolerance-aware: wall times are scaled by a
//     calibration loop run on both machines and accepted within a
//     configurable ±%, so the check survives CI-runner speed differences
//     while still catching real hot-path regressions.
//
// The harness measures through the real internal/runner engine with its
// cache disabled, so a recorded number always reflects the full pipeline
// a user would hit, never a cache artifact.
package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Snapshot is the golden content of one experiment: everything a run
// produces that is deterministic, and nothing (durations, cache state)
// that is not.
type Snapshot struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	PaperClaim string     `json:"paper_claim"`
	Summary    string     `json:"summary"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
}

// GoldenPath returns the golden file path for an experiment ID.
func GoldenPath(dir, id string) string {
	return filepath.Join(dir, id+".json")
}

// WriteGolden persists a snapshot to dir, creating dir if needed.
func WriteGolden(dir string, s Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("regress: creating golden dir: %w", err)
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("regress: encoding golden %s: %w", s.ID, err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(GoldenPath(dir, s.ID), b, 0o644); err != nil {
		return fmt.Errorf("regress: writing golden %s: %w", s.ID, err)
	}
	return nil
}

// ReadGolden loads one experiment's snapshot from dir.
func ReadGolden(dir, id string) (Snapshot, error) {
	var s Snapshot
	b, err := os.ReadFile(GoldenPath(dir, id))
	if err != nil {
		return s, fmt.Errorf("regress: reading golden %s: %w", id, err)
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("regress: decoding golden %s: %w", id, err)
	}
	return s, nil
}

// GoldenIDs lists the experiment IDs that have golden files in dir,
// sorted. A missing directory is reported as an empty list, so a first
// `-record` run can start from nothing.
func GoldenIDs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("regress: listing golden dir: %w", err)
	}
	var ids []string
	for _, e := range ents {
		if name, ok := strings.CutSuffix(e.Name(), ".json"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Drift is one detected divergence between the live tree and a committed
// baseline artifact.
type Drift struct {
	// ID is the experiment the drift belongs to ("" for harness-level
	// problems such as an unreadable baseline).
	ID string `json:"id"`
	// Kind classifies the drift: "summary", "header", "rows", "timing",
	// "allocs", "missing-golden", "extra-golden", "missing-baseline",
	// "extra-baseline", "error".
	Kind string `json:"kind"`
	// Detail is a human-readable description with the got/want values.
	Detail string `json:"detail"`
}

func (d Drift) String() string {
	id := d.ID
	if id == "" {
		id = "-"
	}
	return fmt.Sprintf("%-4s %-16s %s", id, d.Kind, d.Detail)
}

// CompareSnapshot diffs a live snapshot against its golden counterpart.
// Tables and summaries are deterministic, so every comparison is exact.
func CompareSnapshot(golden, live Snapshot) []Drift {
	var ds []Drift
	if golden.Summary != live.Summary {
		ds = append(ds, Drift{ID: golden.ID, Kind: "summary",
			Detail: fmt.Sprintf("got %q, want %q", live.Summary, golden.Summary)})
	}
	if !equalStrings(golden.Header, live.Header) {
		ds = append(ds, Drift{ID: golden.ID, Kind: "header",
			Detail: fmt.Sprintf("got %v, want %v", live.Header, golden.Header)})
	}
	if len(golden.Rows) != len(live.Rows) {
		ds = append(ds, Drift{ID: golden.ID, Kind: "rows",
			Detail: fmt.Sprintf("got %d rows, want %d", len(live.Rows), len(golden.Rows))})
		return ds
	}
	for i := range golden.Rows {
		if !equalStrings(golden.Rows[i], live.Rows[i]) {
			ds = append(ds, Drift{ID: golden.ID, Kind: "rows",
				Detail: fmt.Sprintf("row %d: got %v, want %v", i, live.Rows[i], golden.Rows[i])})
		}
	}
	return ds
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
