package regress

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"lpmem"
	"lpmem/internal/runner"
)

// Measurement is one experiment's live cost and content, produced by
// MeasureAll: min-of-N wall time and allocation cost, plus the snapshot
// of the (deterministic) output from the final iteration.
type Measurement struct {
	ID       string   `json:"id"`
	WallNS   int64    `json:"wall_ns"`
	Allocs   uint64   `json:"allocs"`
	Bytes    uint64   `json:"bytes"`
	Snapshot Snapshot `json:"snapshot"`
}

// SnapshotOf flattens a successful report into its golden content.
func SnapshotOf(r lpmem.Report) Snapshot {
	s := Snapshot{
		ID:         r.Experiment.ID,
		Title:      r.Experiment.Title,
		PaperClaim: r.Experiment.PaperClaim,
	}
	if res := r.Outcome.Value; res != nil {
		s.Summary = res.Summary
		if res.Table != nil {
			s.Header = res.Table.Header()
			s.Rows = res.Table.ToRows()
		}
	}
	return s
}

// MeasureAll runs each experiment iterations times through a
// cache-disabled single-worker engine — the real production pipeline,
// serialized so timings aren't polluted by sibling experiments — and
// returns min-of-N costs in input order. Any experiment failure aborts
// the measurement: a baseline must never be recorded from a broken tree.
func MeasureAll(exps []lpmem.Experiment, iterations int, progress func(id string)) ([]Measurement, error) {
	if iterations < 1 {
		iterations = 1
	}
	eng := lpmem.NewEngine(runner.Options{Workers: 1, NoCache: true})
	ctx := context.Background()
	out := make([]Measurement, 0, len(exps))
	var ms runtime.MemStats
	for _, exp := range exps {
		if progress != nil {
			progress(exp.ID)
		}
		m := Measurement{ID: exp.ID, WallNS: math.MaxInt64, Allocs: math.MaxUint64, Bytes: math.MaxUint64}
		for it := 0; it < iterations; it++ {
			runtime.ReadMemStats(&ms)
			mallocs, bytes := ms.Mallocs, ms.TotalAlloc
			reports := lpmem.RunBatch(ctx, eng, []lpmem.Experiment{exp})
			runtime.ReadMemStats(&ms)
			r := reports[0]
			if r.Outcome.Err != nil {
				return nil, fmt.Errorf("regress: %s failed: %w", exp.ID, r.Outcome.Err)
			}
			if r.Outcome.Cached {
				return nil, fmt.Errorf("regress: %s served from cache; measurement engine must run uncached", exp.ID)
			}
			if ns := r.Outcome.Duration.Nanoseconds(); ns < m.WallNS {
				m.WallNS = ns
			}
			if d := ms.Mallocs - mallocs; d < m.Allocs {
				m.Allocs = d
			}
			if d := ms.TotalAlloc - bytes; d < m.Bytes {
				m.Bytes = d
			}
			if it == iterations-1 {
				m.Snapshot = SnapshotOf(r)
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// calSink defeats dead-code elimination of the calibration loop.
var calSink float64

// calibrationWork is a fixed, deterministic workload whose instruction
// mix resembles the experiments (power-law float math, map-heavy
// profiling, slice walks). Its wall time proxies machine speed so
// baselines recorded on one machine can be checked on another.
func calibrationWork() {
	sum := 0.0
	for i := 1; i <= 400_000; i++ {
		sum += math.Pow(float64(i), 0.7)
	}
	counts := make(map[uint32]uint64, 4096)
	for i := uint32(0); i < 300_000; i++ {
		counts[(i*2654435761)&4095]++
	}
	buf := make([]float64, 1<<15)
	for pass := 0; pass < 16; pass++ {
		for j := range buf {
			buf[j] += sum * float64(j&255)
		}
	}
	calSink = sum + float64(counts[1]) + buf[len(buf)-1]
}

// Calibrate times the calibration workload min-of-N.
func Calibrate(iterations int) int64 {
	if iterations < 1 {
		iterations = 1
	}
	best := int64(math.MaxInt64)
	for i := 0; i < iterations; i++ {
		start := time.Now()
		calibrationWork()
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	return best
}
