package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion identifies the baseline JSON layout; bump it when the
// schema changes incompatibly so a stale file fails loudly instead of
// comparing garbage.
const SchemaVersion = "lpmem-bench/1"

// ExperimentBaseline is the committed perf record of one experiment.
type ExperimentBaseline struct {
	ID string `json:"id"`
	// WallNS is the min-of-N wall time of one uncached run.
	WallNS int64 `json:"wall_ns"`
	// Allocs and Bytes are the min-of-N heap allocation count and volume
	// of one uncached run.
	Allocs uint64 `json:"allocs"`
	Bytes  uint64 `json:"bytes"`
	// Headline is the experiment's deterministic summary line: the
	// baseline's copy of the headline metric, kept here so the perf file
	// is self-describing without the golden dir.
	Headline string `json:"headline"`
}

// Optimization documents one hot-path win with its measured effect, so
// the perf trajectory records not just current numbers but why they
// moved. Before/After map experiment ID to min-of-N wall nanoseconds
// measured on the same machine in the same session.
type Optimization struct {
	Target      string           `json:"target"`
	Description string           `json:"description"`
	Before      map[string]int64 `json:"before_wall_ns"`
	After       map[string]int64 `json:"after_wall_ns"`
}

// Baseline is the committed perf file (BENCH_*.json).
type Baseline struct {
	Schema string `json:"schema"`
	// GoVersion and Host are informational: where the record was taken.
	GoVersion string `json:"go_version"`
	Host      string `json:"host,omitempty"`
	// Iterations is the N of the min-of-N timings.
	Iterations int `json:"iterations"`
	// TolerancePct is the ±% timing tolerance the file was recorded to be
	// checked with.
	TolerancePct float64 `json:"tolerance_pct"`
	// CalibrationNS is the min-of-N wall time of the fixed calibration
	// loop on the recording machine; checks scale expectations by the
	// ratio of their own calibration to this.
	CalibrationNS int64 `json:"calibration_ns"`
	// Experiments holds one record per experiment, ID-sorted.
	Experiments []ExperimentBaseline `json:"experiments"`
	// Optimizations is the append-only log of recorded hot-path wins.
	Optimizations []Optimization `json:"optimizations,omitempty"`
}

// ByID returns the baseline record for an experiment, if present.
func (b *Baseline) ByID(id string) (ExperimentBaseline, bool) {
	for _, e := range b.Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return ExperimentBaseline{}, false
}

// Upsert replaces or inserts one experiment record, keeping Experiments
// ID-sorted (E2 < E10 ordering is fine as long as it is stable; records
// sort by natural experiment number when IDs share the E-prefix).
func (b *Baseline) Upsert(e ExperimentBaseline) {
	for i := range b.Experiments {
		if b.Experiments[i].ID == e.ID {
			b.Experiments[i] = e
			return
		}
	}
	b.Experiments = append(b.Experiments, e)
	sort.Slice(b.Experiments, func(i, j int) bool {
		return lessExperimentID(b.Experiments[i].ID, b.Experiments[j].ID)
	})
}

// lessExperimentID orders "E2" before "E10" by comparing the numeric
// suffix when both IDs have the canonical E<number> shape, falling back
// to plain string order otherwise.
func lessExperimentID(a, b string) bool {
	na, oka := experimentNumber(a)
	nb, okb := experimentNumber(b)
	if oka && okb {
		return na < nb
	}
	return a < b
}

func experimentNumber(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'E' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// WriteBaseline persists the baseline as indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	b.Schema = SchemaVersion
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("regress: encoding baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("regress: writing baseline: %w", err)
	}
	return nil
}

// ReadBaseline loads a baseline file and validates its schema tag.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("regress: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("regress: decoding baseline %s: %w", path, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("regress: baseline %s has schema %q, want %q (re-record it)",
			path, b.Schema, SchemaVersion)
	}
	return &b, nil
}

// Tolerances bound how far a live measurement may drift above its
// baseline before the check fails. Speedups never fail: the harness
// enforces "hot paths only get faster", not a timing pin.
type Tolerances struct {
	// Pct is the allowed relative growth in percent (25 = +25%).
	Pct float64
	// WallFloorNS is the absolute slack added to wall-time bounds so
	// sub-millisecond experiments aren't failed by scheduler jitter.
	WallFloorNS int64
	// AllocFloor is the absolute slack added to allocation bounds.
	AllocFloor uint64
}

// DefaultTolerances matches the acceptance bar: a >20% slowdown on any
// experiment fails the check. The percentage was tightened from 25 when
// the zero-allocation binary replay path landed: with allocation counts
// now small and stable, less headroom is needed to absorb noise, and a
// tighter bound catches regressions the old one let through. The alloc
// floor dropped with it for the same reason.
func DefaultTolerances() Tolerances {
	return Tolerances{Pct: 20, WallFloorNS: 20_000_000, AllocFloor: 20_000}
}

// CompareCost checks a live measurement against its baseline record.
// scale is the live/recorded calibration ratio: a machine measuring its
// calibration loop 2x slower than the recorder is allowed 2x the wall
// time before the percentage tolerance even starts.
func CompareCost(base ExperimentBaseline, live Measurement, tol Tolerances, scale float64) []Drift {
	var ds []Drift
	allowedWall := int64(float64(base.WallNS)*scale*(1+tol.Pct/100)) + tol.WallFloorNS
	if live.WallNS > allowedWall {
		ds = append(ds, Drift{ID: base.ID, Kind: "timing",
			Detail: fmt.Sprintf("wall %.1fms exceeds budget %.1fms (baseline %.1fms × scale %.2f + %.0f%% + floor)",
				float64(live.WallNS)/1e6, float64(allowedWall)/1e6,
				float64(base.WallNS)/1e6, scale, tol.Pct)})
	}
	allowedAllocs := base.Allocs + uint64(float64(base.Allocs)*tol.Pct/100) + tol.AllocFloor
	if live.Allocs > allowedAllocs {
		ds = append(ds, Drift{ID: base.ID, Kind: "allocs",
			Detail: fmt.Sprintf("allocs %d exceed budget %d (baseline %d + %.0f%% + floor)",
				live.Allocs, allowedAllocs, base.Allocs, tol.Pct)})
	}
	return ds
}

// Scale converts the recorded and live calibration times into the factor
// applied to wall-time budgets. It is clamped to [0.25, 4]: outside that
// range the machines are too dissimilar for timing comparison to mean
// anything, and the clamp keeps a corrupt calibration from disabling the
// check entirely.
func Scale(recordedNS, liveNS int64) float64 {
	if recordedNS <= 0 || liveNS <= 0 {
		return 1
	}
	s := float64(liveNS) / float64(recordedNS)
	if s < 0.25 {
		s = 0.25
	}
	if s > 4 {
		s = 4
	}
	return s
}
