package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lpmem"
	"lpmem/internal/runner"
)

// The streaming surface: `POST /run?stream=1` and the sweep endpoints
// with `?stream=1` switch the response to Server-Sent Events so a
// long-running batch or sweep reports progress as it happens instead of
// holding a silent connection until everything settles.
//
// Event schema (one JSON body per `data:` line):
//
//	POST /run?stream=1
//	  event: start    {"count":N,"ids":["E1",...]}
//	  event: result   one lpmem.ResultJSON envelope, in completion order
//	  event: done     {"status":"ok|partial|failed","count":N,"failed":F,
//	                   "stored":S,"elapsed_ms":...}
//
//	POST /sweeps?stream=1, GET /sweeps/{id}?stream=1
//	  event: accepted the sweepStatus snapshot at acceptance (POST only)
//	  event: progress sweepStatus without tables, per executor batch
//	  event: done     full sweepStatus including tables
//
// A client that goes away cancels the work it was watching: the request
// context aborts the batch run (jobs not yet dispatched report the
// cancellation) or detaches the sweep subscription (the sweep itself
// keeps running — it is an accepted background job; only the watch
// ends).
//
// sseWriter serialises concurrent event emission (batch results arrive
// from pool workers) and flushes after every event so events actually
// leave the process while work continues.
type sseWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	fl http.Flusher
}

// startSSE switches the response to an event stream. It fails (false)
// when the ResponseWriter cannot flush — streaming through a buffering
// middleware would silently batch every event to the end, which is
// exactly what stream=1 exists to avoid.
func startSSE(w http.ResponseWriter) (*sseWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, "response writer does not support streaming")
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &sseWriter{w: w, fl: fl}, true
}

// event emits one named SSE event. Write errors are returned so emitters
// can stop early on a dead client, but callers may also ignore them —
// the request context is the authoritative disconnect signal.
func (s *sseWriter) event(name string, v interface{}) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("httpapi: encode %s event: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, body); err != nil {
		return err
	}
	s.fl.Flush()
	return nil
}

// handleBatchStream is the stream=1 arm of POST /run: per-experiment
// result events in completion order, then a summary. Store hits are
// emitted first — they are already settled — and misses stream as the
// pool finishes them.
func (s *Server) handleBatchStream(w http.ResponseWriter, r *http.Request, exps []lpmem.Experiment) {
	sse, ok := startSSE(w)
	if !ok {
		return
	}
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	_ = sse.event("start", map[string]interface{}{"count": len(exps), "ids": ids})

	ctx, cancel := s.runCtx(r)
	defer cancel()
	start := time.Now()

	// Serve what the shared store already has; run the rest.
	envs := make([]lpmem.ResultJSON, len(exps))
	var pending []int
	for i, e := range exps {
		if env, ok := s.storeGet(lpmem.CacheKey(e.ID)); ok {
			envs[i] = env
			_ = sse.event("result", env)
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) > 0 {
		pendingExps := make([]lpmem.Experiment, len(pending))
		for j, i := range pending {
			pendingExps[j] = exps[i]
		}
		jobs := lpmem.Jobs(pendingExps)
		outs := s.eng.RunFunc(ctx, jobs, func(j int, o runner.Outcome[*lpmem.Result]) {
			i := pending[j]
			env := lpmem.Report{Experiment: exps[i], Outcome: o}.JSON()
			// Events race only against each other; sseWriter serialises.
			_ = sse.event("result", env)
		})
		for j, i := range pending {
			envs[i] = lpmem.Report{Experiment: exps[i], Outcome: outs[j]}.JSON()
		}
	}

	failed, stored := 0, 0
	for i := range envs {
		if envs[i].Error != "" {
			failed++
			continue
		}
		if s.storePut(lpmem.CacheKey(exps[i].ID), envs[i]) {
			stored++
		}
	}
	status := "ok"
	switch {
	case failed == len(envs) && failed > 0:
		status = "failed"
	case failed > 0:
		status = "partial"
	}
	_ = sse.event("done", map[string]interface{}{
		"status":     status,
		"count":      len(envs),
		"failed":     failed,
		"stored":     stored,
		"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// streamSweep follows one accepted sweep over SSE until it settles or
// the client goes away. Progress events are best-effort snapshots (a
// slow client skips intermediate ones, never the final); the done event
// re-reads the settled job so it always carries the full result.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, job *sweepJob, sse *sseWriter) {
	if sse == nil {
		var ok bool
		if sse, ok = startSSE(w); !ok {
			return
		}
	}
	ch, unsub := job.subscribe()
	defer unsub()
	for {
		select {
		case snap, open := <-ch:
			if !open {
				// Settled: the terminal snapshot carries the tables.
				_ = sse.event("done", job.snapshot())
				return
			}
			if err := sse.event("progress", snap); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// wantsStream reports the ?stream=1 switch.
func wantsStream(r *http.Request) bool {
	v := r.URL.Query().Get("stream")
	return v == "1" || v == "true"
}
