package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lpmem"
	"lpmem/internal/runner"
	"lpmem/internal/stats"
	"lpmem/internal/testutil"
)

// fakeExp builds a registry entry with an arbitrary run body; IDs reuse
// the E* shape so resolve() treats them like real experiments.
func fakeExp(id string, run func() (*lpmem.Result, error)) lpmem.Experiment {
	return lpmem.Experiment{ID: id, Title: "fake " + id, PaperClaim: "n/a", Run: run}
}

func okResult() (*lpmem.Result, error) {
	tbl := stats.NewTable("k", "v")
	tbl.AddRow("x", 1)
	return &lpmem.Result{Table: tbl, Summary: "fine"}, nil
}

// faultServer serves a three-experiment registry: one healthy, one
// erroring, one panicking.
func faultServer(t *testing.T, opts ...Option) (*httptest.Server, *lpmem.Engine) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{Workers: 2, NoCache: true})
	exps := []lpmem.Experiment{
		fakeExp("E1", okResult),
		fakeExp("E2", func() (*lpmem.Result, error) { return nil, errors.New("substrate offline") }),
		fakeExp("E3", func() (*lpmem.Result, error) { panic("injected table corruption") }),
	}
	opts = append(opts, WithExperiments(exps))
	ts := httptest.NewServer(New(eng, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

type batchBody struct {
	Status  string             `json:"status"`
	Count   int                `json:"count"`
	Failed  int                `json:"failed"`
	Results []lpmem.ResultJSON `json:"results"`
}

func postRun(t *testing.T, url string) (int, batchBody) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body batchBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("batch response is not valid JSON: %v", err)
	}
	return resp.StatusCode, body
}

// TestPartialBatch: a batch with mixed outcomes returns HTTP 200 with
// status "partial" and a per-ID envelope for every requested experiment —
// the healthy result is not discarded because its neighbours failed.
func TestPartialBatch(t *testing.T) {
	ts, _ := faultServer(t)
	code, body := postRun(t, ts.URL+"/run?ids=E1,E2,E3")
	if code != http.StatusOK || body.Status != "partial" {
		t.Fatalf("status %d %q", code, body.Status)
	}
	if body.Count != 3 || body.Failed != 2 || len(body.Results) != 3 {
		t.Fatalf("body: %+v", body)
	}
	if body.Results[0].ID != "E1" || body.Results[0].Error != "" || len(body.Results[0].Rows) == 0 {
		t.Fatalf("healthy envelope: %+v", body.Results[0])
	}
	if !strings.Contains(body.Results[1].Error, "substrate offline") {
		t.Fatalf("error envelope: %+v", body.Results[1])
	}
}

// TestPanicStackInEnvelope: a panicking experiment's JSON error envelope
// carries the panic value and its stack trace.
func TestPanicStackInEnvelope(t *testing.T) {
	ts, _ := faultServer(t)
	_, body := postRun(t, ts.URL+"/run?ids=E3")
	if len(body.Results) != 1 {
		t.Fatalf("results: %+v", body)
	}
	msg := body.Results[0].Error
	if !strings.Contains(msg, "injected table corruption") {
		t.Fatalf("panic value missing: %s", msg)
	}
	if !strings.Contains(msg, "stack:") || !strings.Contains(msg, "goroutine") {
		t.Fatalf("stack trace missing from envelope: %s", msg)
	}
}

// TestAllFailedBatch: when every requested experiment fails, the batch
// maps to HTTP 502 with status "failed" but still carries the envelopes.
func TestAllFailedBatch(t *testing.T) {
	ts, _ := faultServer(t)
	code, body := postRun(t, ts.URL+"/run?ids=E2,E3")
	if code != http.StatusBadGateway || body.Status != "failed" {
		t.Fatalf("status %d %q", code, body.Status)
	}
	if body.Failed != 2 || len(body.Results) != 2 {
		t.Fatalf("body: %+v", body)
	}
	for _, r := range body.Results {
		if r.Error == "" {
			t.Fatalf("envelope without error: %+v", r)
		}
	}
}

// TestHealthzDegraded: open breakers flip /healthz to 503 "degraded"
// listing the cooling experiments; closing them restores "ok".
func TestHealthzDegraded(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{
		Workers: 1, NoCache: true,
		BreakerThreshold: 1, BreakerCooldown: time.Minute,
	})
	exps := []lpmem.Experiment{
		fakeExp("E2", func() (*lpmem.Result, error) { return nil, errors.New("down") }),
	}
	ts := httptest.NewServer(New(eng, WithExperiments(exps)).Handler())
	t.Cleanup(ts.Close)

	var hb map[string]interface{}
	if code := get(t, ts.URL+"/healthz", &hb); code != http.StatusOK || hb["status"] != "ok" {
		t.Fatalf("fresh healthz: %d %v", code, hb)
	}
	// One failure trips the threshold-1 breaker.
	postRun(t, ts.URL+"/run?ids=E2")
	if code := get(t, ts.URL+"/healthz", &hb); code != http.StatusServiceUnavailable || hb["status"] != "degraded" {
		t.Fatalf("degraded healthz: %d %v", code, hb)
	}
	breakers, ok := hb["breakers"].(map[string]interface{})
	if !ok || breakers["E2"] != string(runner.BreakerOpen) {
		t.Fatalf("breakers body: %v", hb)
	}
	// Metrics mirror the same state.
	var m MetricsSnapshot
	get(t, ts.URL+"/metrics", &m)
	if m.Breakers["E2"] != runner.BreakerOpen || m.Runner.BreakerOpens != 1 {
		t.Fatalf("metrics breakers: %+v", m)
	}
	eng.ResetBreakers()
	if code := get(t, ts.URL+"/healthz", &hb); code != http.StatusOK || hb["status"] != "ok" {
		t.Fatalf("healthz after reset: %d %v", code, hb)
	}
}

// TestRequestTimeout: a configured request timeout converts a stuck
// experiment into a per-ID deadline error instead of hanging the
// connection, and the healthy neighbour still completes.
func TestRequestTimeout(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{Workers: 2, NoCache: true})
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	exps := []lpmem.Experiment{
		fakeExp("E1", okResult),
		fakeExp("E2", func() (*lpmem.Result, error) {
			<-release
			return okResult()
		}),
	}
	ts := httptest.NewServer(New(eng,
		WithExperiments(exps),
		WithRequestTimeout(50*time.Millisecond),
	).Handler())
	t.Cleanup(ts.Close)

	code, body := postRun(t, ts.URL+"/run?ids=E1,E2")
	if code != http.StatusOK || body.Status != "partial" {
		t.Fatalf("status %d %q", code, body.Status)
	}
	if body.Results[0].Error != "" {
		t.Fatalf("fast experiment failed: %+v", body.Results[0])
	}
	if !strings.Contains(body.Results[1].Error, "deadline exceeded") {
		t.Fatalf("stuck experiment error: %+v", body.Results[1])
	}
}

// TestRetriesThroughHTTP: engine retries heal a transiently failing
// experiment behind the API, and /metrics exposes the retry count.
func TestRetriesThroughHTTP(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{
		Workers: 1, NoCache: true,
		Retries: 2, RetryBaseDelay: time.Millisecond,
	})
	fails := 2
	exps := []lpmem.Experiment{
		fakeExp("E1", func() (*lpmem.Result, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("transient")
			}
			return okResult()
		}),
	}
	ts := httptest.NewServer(New(eng, WithExperiments(exps)).Handler())
	t.Cleanup(ts.Close)

	code, body := postRun(t, ts.URL+"/run?ids=E1")
	if code != http.StatusOK || body.Status != "ok" || body.Results[0].Error != "" {
		t.Fatalf("healed batch: %d %+v", code, body)
	}
	var m MetricsSnapshot
	get(t, ts.URL+"/metrics", &m)
	if m.Runner.Retries != 2 {
		t.Fatalf("retries metric = %d", m.Runner.Retries)
	}
}
