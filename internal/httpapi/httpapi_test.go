package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lpmem"
	"lpmem/internal/runner"
	"lpmem/internal/testutil"
)

func newTestServer(t *testing.T) (*httptest.Server, *lpmem.Engine) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{Workers: 2})
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func get(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("invalid JSON from %s: %v\n%s", url, err, body)
	}
	return resp.StatusCode
}

// TestListExperiments: /experiments returns the full registry with
// metadata and a version stamp.
func TestListExperiments(t *testing.T) {
	ts, _ := newTestServer(t)
	var body struct {
		RegistryVersion string `json:"registry_version"`
		Count           int    `json:"count"`
		Experiments     []struct {
			ID         string `json:"id"`
			Title      string `json:"title"`
			PaperClaim string `json:"paper_claim"`
			Cached     bool   `json:"cached"`
		} `json:"experiments"`
	}
	if code := get(t, ts.URL+"/experiments", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body.RegistryVersion != lpmem.RegistryVersion {
		t.Fatalf("version %q", body.RegistryVersion)
	}
	if body.Count != len(lpmem.Experiments()) || len(body.Experiments) != body.Count {
		t.Fatalf("count %d, rows %d", body.Count, len(body.Experiments))
	}
	for _, e := range body.Experiments {
		if e.ID == "" || e.Title == "" || e.PaperClaim == "" {
			t.Fatalf("incomplete row %+v", e)
		}
		if e.Cached {
			t.Fatalf("%s reported cached on a cold engine", e.ID)
		}
	}
}

// TestRunOneAndCacheHit: /experiments/{id} runs the experiment; the
// second request is served from cache and /metrics reflects the hit.
func TestRunOneAndCacheHit(t *testing.T) {
	ts, _ := newTestServer(t)
	var first lpmem.ResultJSON
	if code := get(t, ts.URL+"/experiments/E16", &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.ID != "E16" || first.Error != "" || len(first.Rows) == 0 || first.Cached {
		t.Fatalf("first run envelope: %+v", first)
	}
	var second lpmem.ResultJSON
	get(t, ts.URL+"/experiments/E16", &second)
	if !second.Cached {
		t.Fatal("second request must be a cache hit")
	}
	if len(second.Rows) != len(first.Rows) || second.Summary != first.Summary {
		t.Fatal("cached envelope differs")
	}

	var m MetricsSnapshot
	get(t, ts.URL+"/metrics", &m)
	if m.Runner.CacheHits != 1 || m.Runner.CacheMisses != 1 || m.CacheEntries != 1 {
		t.Fatalf("metrics after hit: %+v", m)
	}
	if m.HTTPRequests < 3 || m.Workers != 2 || m.RegistryVersion != lpmem.RegistryVersion {
		t.Fatalf("snapshot fields: %+v", m)
	}

	// The listing now flags the warm entry.
	var list struct {
		Experiments []struct {
			ID     string `json:"id"`
			Cached bool   `json:"cached"`
		} `json:"experiments"`
	}
	get(t, ts.URL+"/experiments", &list)
	for _, e := range list.Experiments {
		if e.ID == "E16" && !e.Cached {
			t.Fatal("listing must mark E16 cached")
		}
	}
}

// TestRunUnknown: unknown IDs are 404s with a JSON error body.
func TestRunUnknown(t *testing.T) {
	ts, _ := newTestServer(t)
	var body map[string]string
	if code := get(t, ts.URL+"/experiments/E99", &body); code != http.StatusNotFound {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body["error"], "E99") {
		t.Fatalf("error body %v", body)
	}
}

// TestBatchRun: POST /run executes the requested subset in parallel and
// reports per-experiment envelopes.
func TestBatchRun(t *testing.T) {
	ts, eng := newTestServer(t)
	resp, err := http.Post(ts.URL+"/run?ids=E16,E12", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Count   int                `json:"count"`
		Failed  int                `json:"failed"`
		Results []lpmem.ResultJSON `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body.Count != 2 || body.Failed != 0 {
		t.Fatalf("batch response: status %d, %+v", resp.StatusCode, body)
	}
	if body.Results[0].ID != "E16" || body.Results[1].ID != "E12" {
		t.Fatalf("order not preserved: %s, %s", body.Results[0].ID, body.Results[1].ID)
	}
	if eng.CacheLen() != 2 {
		t.Fatalf("cache entries = %d", eng.CacheLen())
	}

	// Bad requests: unknown ID and empty list.
	for _, q := range []string{"?ids=E16,NOPE", "?ids=,,"} {
		resp, err := http.Post(ts.URL+"/run"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", q, resp.StatusCode)
		}
	}
}

// TestMethodRouting: the mux enforces methods per route.
func TestMethodRouting(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/run?ids=E16")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: status %d", resp.StatusCode)
	}
	var hb map[string]string
	if code := get(t, ts.URL+"/healthz", &hb); code != http.StatusOK || hb["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, hb)
	}
}
