package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lpmem"
	"lpmem/internal/resultstore"
	"lpmem/internal/runner"
	"lpmem/internal/testutil"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data []byte
}

// readSSE parses every event from an SSE body.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur sseEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || len(cur.data) > 0 {
				out = append(out, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = append(cur.data, strings.TrimPrefix(line, "data: ")...)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE stream: %v", err)
	}
	return out
}

// TestAdmissionAcquireSemantics: the bounded queue admits up to capacity,
// queues up to the wait bound, sheds beyond it, and accounts clients that
// abandon their queue position.
func TestAdmissionAcquireSemantics(t *testing.T) {
	a := newAdmission(1, 1)
	rel1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Second request queues; it must block until the slot frees.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	got2 := make(chan error, 1)
	go func() {
		rel, err := a.acquire(ctx2)
		if err == nil {
			rel()
		}
		got2 <- err
	}()
	waitFor(t, func() bool { return a.stats().QueueDepth == 1 })

	// Third request finds both the slot and the queue full: shed.
	if _, err := a.acquire(context.Background()); err != errShed {
		t.Fatalf("over-queue acquire: err = %v, want errShed", err)
	}

	// The queued request is admitted once the slot frees.
	rel1()
	if err := <-got2; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}

	// A queued client that disconnects is counted as abandoned.
	rel3, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("reacquire: %v", err)
	}
	ctx4, cancel4 := context.WithCancel(context.Background())
	got4 := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx4)
		got4 <- err
	}()
	waitFor(t, func() bool { return a.stats().QueueDepth == 1 })
	cancel4()
	if err := <-got4; err != context.Canceled {
		t.Fatalf("abandoned acquire: err = %v", err)
	}
	rel3()

	st := a.stats()
	if st.Admitted != 3 || st.Shed != 1 || st.Abandoned != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Fatalf("stats not drained: %+v", st)
	}
	// Retry-After jitter stays within [base, 3*base].
	for i := 0; i < 64; i++ {
		if ra := a.retryAfter(); ra < 1 || ra > 3 {
			t.Fatalf("retryAfter = %d outside [1,3]", ra)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedsOverHTTP: concurrent requests beyond capacity+queue
// get 429 with a Retry-After header, and /metrics accounts every shed.
func TestAdmissionShedsOverHTTP(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{Workers: 2})
	srv := New(eng, WithAdmission(1, 0), WithServiceDelay(300*time.Millisecond))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const n = 4
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/experiments/E17")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			ra, err := strconv.Atoi(retryAfter[i])
			if err != nil || ra < 1 {
				t.Fatalf("shed response Retry-After = %q", retryAfter[i])
			}
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok < 1 || shed < 1 || ok+shed != n {
		t.Fatalf("ok=%d shed=%d of %d", ok, shed, n)
	}

	var m MetricsSnapshot
	get(t, ts.URL+"/metrics", &m)
	if m.Admission == nil {
		t.Fatal("metrics missing admission block")
	}
	if m.Admission.Capacity != 1 || m.Admission.QueueLimit != 0 {
		t.Fatalf("admission config: %+v", m.Admission)
	}
	if int(m.Admission.Shed) != shed || m.Admission.Admitted < uint64(ok) {
		t.Fatalf("admission counters: %+v (client saw ok=%d shed=%d)", m.Admission, ok, shed)
	}
}

// TestBatchStreamSSE: POST /run?stream=1 emits start, one result per
// experiment, and a summarising done event.
func TestBatchStreamSSE(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/run?ids=E16,E17&stream=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if resp.Header.Get(requestIDHeader) == "" {
		t.Fatal("stream response missing request ID")
	}

	events := readSSE(t, resp.Body)
	if len(events) != 4 {
		t.Fatalf("got %d events, want start+2 results+done: %+v", len(events), events)
	}
	var start struct {
		Count int      `json:"count"`
		IDs   []string `json:"ids"`
	}
	if events[0].name != "start" {
		t.Fatalf("first event %q", events[0].name)
	}
	if err := json.Unmarshal(events[0].data, &start); err != nil || start.Count != 2 {
		t.Fatalf("start event: %v %+v", err, start)
	}
	seen := map[string]bool{}
	for _, ev := range events[1:3] {
		if ev.name != "result" {
			t.Fatalf("event %q, want result", ev.name)
		}
		var env lpmem.ResultJSON
		if err := json.Unmarshal(ev.data, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error != "" || len(env.Rows) == 0 {
			t.Fatalf("result envelope: %+v", env)
		}
		seen[env.ID] = true
	}
	if !seen["E16"] || !seen["E17"] {
		t.Fatalf("results seen: %v", seen)
	}
	var done struct {
		Status string `json:"status"`
		Count  int    `json:"count"`
		Failed int    `json:"failed"`
	}
	if events[3].name != "done" {
		t.Fatalf("last event %q", events[3].name)
	}
	if err := json.Unmarshal(events[3].data, &done); err != nil || done.Status != "ok" || done.Count != 2 || done.Failed != 0 {
		t.Fatalf("done event: %v %+v", err, done)
	}
}

// TestBatchStreamDisconnectCancelsRun: a streaming client that goes away
// cancels the batch context — in-flight jobs report cancellation instead
// of running to completion, and nothing leaks.
func TestBatchStreamDisconnectCancelsRun(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// Fake experiments that block until the test releases them, standing
	// in for arbitrarily slow real runs.
	block := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(block) }) }
	defer release()
	hang := func() (*lpmem.Result, error) {
		<-block
		return okResult()
	}
	eng := lpmem.NewEngine(runner.Options{Workers: 2})
	exps := []lpmem.Experiment{fakeExp("E1", hang), fakeExp("E2", hang)}
	ts := httptest.NewServer(New(eng, WithExperiments(exps)).Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run?ids=E1,E2&stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the start event so the handler is definitely running, then
	// vanish.
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.Contains(line, "start") {
		t.Fatalf("first line %q, err %v", line, err)
	}
	cancel()
	resp.Body.Close()

	// Cancellation must reach the engine: both jobs settle as cancelled
	// even though their bodies never return.
	deadline := time.Now().Add(3 * time.Second)
	for {
		var m MetricsSnapshot
		get(t, ts.URL+"/metrics", &m)
		if m.Runner.Cancelled >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation did not reach the engine: %+v", m.Runner)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let the abandoned bodies finish so the leak check sees a quiet
	// process.
	release()
}

// TestEarlyDisconnectQueuesNoWork: a request whose client is already gone
// when the handler starts must not enqueue work (satellite bugfix).
func TestEarlyDisconnectQueuesNoWork(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{Workers: 2})
	srv := New(eng)
	h := srv.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	req := httptest.NewRequest(http.MethodPost, "/run?ids=E16", nil).WithContext(ctx)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if eng.CacheLen() != 0 {
		t.Fatal("dead client's batch still ran")
	}

	body := strings.NewReader(`{"space":"banks","points":2}`)
	req = httptest.NewRequest(http.MethodPost, "/sweeps", body).WithContext(ctx)
	h.ServeHTTP(httptest.NewRecorder(), req)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sweeps", nil))
	var list struct {
		Sweeps []sweepStatus `json:"sweeps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 0 {
		t.Fatalf("dead client's sweep was accepted: %+v", list.Sweeps)
	}
}

// TestSweepStreamSSE: POST /sweeps?stream=1 emits accepted, progress
// snapshots, and a final done event carrying the tables; a settled sweep
// re-watched via GET /sweeps/{id}?stream=1 yields an immediate done.
func TestSweepStreamSSE(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/sweeps?stream=1", "application/json",
		strings.NewReader(`{"space":"banks","points":4,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	events := readSSE(t, resp.Body)
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least accepted+done", len(events))
	}
	var acc sweepStatus
	if events[0].name != "accepted" {
		t.Fatalf("first event %q", events[0].name)
	}
	if err := json.Unmarshal(events[0].data, &acc); err != nil || acc.ID == "" || acc.Total != 4 {
		t.Fatalf("accepted event: %v %+v", err, acc)
	}
	for _, ev := range events[1 : len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("middle event %q", ev.name)
		}
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("last event %q", last.name)
	}
	var done sweepStatus
	if err := json.Unmarshal(last.data, &done); err != nil {
		t.Fatal(err)
	}
	if done.Status != "ok" || done.Done != 4 || done.Frontier == nil || done.Results == nil {
		t.Fatalf("done event: %+v", done)
	}

	// Watching the settled sweep again degenerates to an immediate done.
	resp2, err := http.Get(ts.URL + "/sweeps/" + acc.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events2 := readSSE(t, resp2.Body)
	if len(events2) != 1 || events2[0].name != "done" {
		t.Fatalf("settled watch events: %+v", events2)
	}
}

// TestRequestIDAndAccessLog: every response carries a request ID
// (incoming IDs are honoured) and each request writes one structured
// access-log line.
func TestRequestIDAndAccessLog(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{Workers: 2})
	var buf bytes.Buffer
	srv := New(eng, WithAccessLog(&buf))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(requestIDHeader)
	if minted == "" {
		t.Fatal("no request ID minted")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/experiments", nil)
	req.Header.Set(requestIDHeader, "lg-042")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "lg-042" {
		t.Fatalf("incoming request ID not honoured: %q", got)
	}

	ts.Close() // flush in-flight handlers before reading the buffer
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log lines = %d:\n%s", len(lines), buf.String())
	}
	var recs []accessRecord
	for _, ln := range lines {
		var rec accessRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad access-log line %q: %v", ln, err)
		}
		recs = append(recs, rec)
	}
	if recs[0].RequestID != minted || recs[0].Path != "/healthz" || recs[0].Status != http.StatusOK {
		t.Fatalf("first record: %+v", recs[0])
	}
	if recs[1].RequestID != "lg-042" || recs[1].Method != http.MethodGet || recs[1].DurationMS < 0 {
		t.Fatalf("second record: %+v", recs[1])
	}
}

// TestResultStoreSharedAcrossServers: a result computed by one replica is
// served from the shared store by another, without re-running it.
func TestResultStoreSharedAcrossServers(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	path := filepath.Join(t.TempDir(), "results.jsonl")

	storeA, err := resultstore.Open(path, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer storeA.Close()
	engA := lpmem.NewEngine(runner.Options{Workers: 2})
	tsA := httptest.NewServer(New(engA, WithResultStore(storeA)).Handler())
	defer tsA.Close()

	var env lpmem.ResultJSON
	if code := get(t, tsA.URL+"/experiments/E17", &env); code != http.StatusOK || env.Cached {
		t.Fatalf("first run: code %d, %+v", code, env)
	}

	// Replica B opens the same file cold and must serve the stored result.
	storeB, err := resultstore.Open(path, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer storeB.Close()
	engB := lpmem.NewEngine(runner.Options{Workers: 2})
	tsB := httptest.NewServer(New(engB, WithResultStore(storeB)).Handler())
	defer tsB.Close()

	var envB lpmem.ResultJSON
	if code := get(t, tsB.URL+"/experiments/E17", &envB); code != http.StatusOK {
		t.Fatalf("replica B status %d", code)
	}
	if !envB.Cached {
		t.Fatal("replica B did not serve from the shared store")
	}
	if engB.CacheLen() != 0 {
		t.Fatal("replica B ran the experiment despite a store hit")
	}
	if envB.Summary != env.Summary || len(envB.Rows) != len(env.Rows) {
		t.Fatal("store round-trip altered the envelope")
	}

	// Batch runs partition into store hits and genuine work.
	resp, err := http.Post(tsB.URL+"/run?ids=E17,E22", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch struct {
		Results []lpmem.ResultJSON `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch results: %+v", batch)
	}
	if !batch.Results[0].Cached {
		t.Fatal("E17 not served from store in batch")
	}
	if batch.Results[1].Error != "" {
		t.Fatalf("E22 failed: %s", batch.Results[1].Error)
	}

	var m MetricsSnapshot
	get(t, tsB.URL+"/metrics", &m)
	if m.Store == nil {
		t.Fatal("metrics missing store block")
	}
	if m.Store.Hits < 2 || m.Store.Keys < 2 {
		t.Fatalf("store metrics: %+v", m.Store)
	}
}

// TestServiceDelayHonoursContext: the synthetic service delay aborts
// promptly when the request context dies.
func TestServiceDelayHonoursContext(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := lpmem.NewEngine(runner.Options{Workers: 2})
	srv := New(eng, WithServiceDelay(5*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	srv.delay(ctx)
	if d := time.Since(start); d >= time.Second {
		t.Fatalf("delay ignored cancellation: %v", d)
	}
}
