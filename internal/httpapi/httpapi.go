// Package httpapi implements the lpmemd HTTP surface over the concurrent
// experiment engine: experiment listing, single-experiment runs (served
// from the engine cache when warm), parallel batch runs, and a metrics
// snapshot. Responses are JSON; only net/http from the standard library
// is used.
//
// The surface degrades gracefully rather than failing all-or-nothing:
// batch responses carry a per-experiment error envelope for every
// requested ID (status "partial" when some fail, HTTP 502 only when all
// do), an optional request timeout bounds each run, and /healthz reports
// "degraded" with HTTP 503 while any experiment's circuit breaker is
// open.
//
//lint:untrusted-input
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lpmem"
	"lpmem/internal/resultstore"
	"lpmem/internal/runner"
	"lpmem/internal/sweep"
)

// Server owns the engine and the registry snapshot it serves.
type Server struct {
	eng        *lpmem.Engine
	exps       []lpmem.Experiment
	byID       map[string]lpmem.Experiment
	started    time.Time
	requests   atomic.Uint64
	reqTimeout time.Duration
	sweeps     *sweepManager

	// adm is the bounded admission queue (nil = unlimited), store the
	// cross-replica result store (nil = none), sweepStore the persistent
	// sweep point store (nil = per-process memory store).
	adm        *admission
	store      *resultstore.Store
	sweepStore *sweep.Store
	// serviceDelay is an artificial per-admitted-request delay; see
	// WithServiceDelay.
	serviceDelay time.Duration

	accessLogState
}

// Option customises a Server.
type Option func(*Server)

// WithRequestTimeout bounds each run request (single or batch): on
// expiry, in-flight experiments are cancelled and reported per-ID in the
// response envelope instead of hanging the connection. 0 means no bound.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithExperiments overrides the served registry. Fault-injection tests
// use it to expose deliberately broken experiments; production callers
// serve the default full registry.
func WithExperiments(exps []lpmem.Experiment) Option {
	return func(s *Server) { s.exps = exps }
}

// WithAdmission bounds the work the replica accepts: at most capacity
// run/sweep requests execute concurrently, at most queue more wait, and
// the rest are shed with 429 + jittered Retry-After. capacity <= 0
// disables admission control.
func WithAdmission(capacity, queue int) Option {
	return func(s *Server) { s.adm = newAdmission(capacity, queue) }
}

// WithResultStore plugs in the content-addressed experiment result
// store. Replicas pointed at the same store file share results: a
// request any replica has computed is served from the store everywhere,
// surviving restarts.
func WithResultStore(store *resultstore.Store) Option {
	return func(s *Server) { s.store = store }
}

// WithSweepStore replaces the per-process in-memory sweep point store
// with a persistent one (normally sharing a directory with the result
// store), making /sweeps incremental across replicas and restarts.
func WithSweepStore(store *sweep.Store) Option {
	return func(s *Server) { s.sweepStore = store }
}

// WithAccessLog enables structured access logging: one JSON line per
// request (time, request ID, method, path, status, bytes, duration) to
// w. The server serialises writes; w need not be concurrency-safe.
func WithAccessLog(w io.Writer) Option {
	return func(s *Server) { s.accessLog = w }
}

// WithServiceDelay adds a fixed, context-cancellable delay to every
// admitted work request before it touches the engine. It models a
// downstream dependency's service time so the replica-scaling bench is
// concurrency-bound rather than CPU-bound on small hosts; production
// servers leave it zero.
func WithServiceDelay(d time.Duration) Option {
	return func(s *Server) { s.serviceDelay = d }
}

// New creates a server around an engine, serving the full registry
// unless an option narrows it.
func New(eng *lpmem.Engine, opts ...Option) *Server {
	s := &Server{eng: eng, exps: lpmem.Experiments(), started: time.Now()}
	for _, opt := range opts {
		opt(s)
	}
	s.byID = make(map[string]lpmem.Experiment, len(s.exps))
	for _, e := range s.exps {
		s.byID[e.ID] = e
	}
	s.sweeps = newSweepManager(eng.Workers(), s.sweepStore)
	return s
}

// storeGet serves one experiment envelope from the shared result store,
// marking it cached. False when no store is configured or the key is
// unknown everywhere.
func (s *Server) storeGet(key string) (lpmem.ResultJSON, bool) {
	if s.store == nil {
		return lpmem.ResultJSON{}, false
	}
	raw, ok := s.store.Get(key)
	if !ok {
		return lpmem.ResultJSON{}, false
	}
	var env lpmem.ResultJSON
	if err := json.Unmarshal(raw, &env); err != nil {
		return lpmem.ResultJSON{}, false
	}
	env.Cached = true
	return env, true
}

// storePut persists one successful envelope to the shared store (other
// replicas see it at their next miss). Reports whether a write happened.
func (s *Server) storePut(key string, env lpmem.ResultJSON) bool {
	if s.store == nil || env.Error != "" {
		return false
	}
	// The stored form is the computed result, not this request's view.
	env.Cached = false
	if err := s.store.Put(key, "experiment", env); err != nil {
		return false
	}
	return true
}

// delay applies the configured synthetic service delay, honouring
// cancellation.
func (s *Server) delay(ctx context.Context) {
	if s.serviceDelay <= 0 {
		return
	}
	t := time.NewTimer(s.serviceDelay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// runCtx derives the per-request run context from the configured bound.
func (s *Server) runCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.reqTimeout > 0 {
		return context.WithTimeout(r.Context(), s.reqTimeout)
	}
	return r.Context(), func() {}
}

// Handler returns the route table:
//
//	GET  /experiments        registry listing
//	GET  /experiments/{id}   run one experiment (cache/store-served when warm)
//	POST /run?ids=E1,E7      parallel batch run ("all" or empty = registry);
//	                         &stream=1 switches to SSE per-result events
//	POST /sweeps             start a design-space sweep (202 + id);
//	                         ?stream=1 follows progress over SSE instead
//	GET  /sweeps             list accepted sweeps
//	GET  /sweeps/spaces      list the available design spaces
//	GET  /sweeps/{id}        sweep status: running/ok/partial/failed + tables;
//	                         ?stream=1 follows progress over SSE
//	GET  /metrics            engine + HTTP + admission + store counters
//	GET  /healthz            liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.handleList)
	mux.HandleFunc("GET /experiments/{id}", s.handleOne)
	mux.HandleFunc("POST /run", s.handleBatch)
	mux.HandleFunc("POST /sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /sweeps", s.handleSweepList)
	mux.HandleFunc("GET /sweeps/spaces", s.handleSweepSpaces)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweepGet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.count(s.instrument(mux))
}

// handleHealthz reflects the engine's circuit-breaker state: "ok" while
// every breaker is closed, "degraded" (HTTP 503) while any experiment is
// cooling down — load balancers can stop routing to a wedged instance
// without the healthy experiments going dark.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	breakers := s.eng.BreakerStates()
	if len(breakers) == 0 {
		writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
		"status":   "degraded",
		"breakers": breakers,
	})
}

// count wraps the mux with the request counter.
func (s *Server) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		next.ServeHTTP(w, r)
	})
}

// listEntry is the /experiments row: registry metadata without results.
type listEntry struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	PaperClaim string `json:"paper_claim"`
	Cached     bool   `json:"cached"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := make([]listEntry, len(s.exps))
	for i, e := range s.exps {
		entries[i] = listEntry{
			ID:         e.ID,
			Title:      e.Title,
			PaperClaim: e.PaperClaim,
			Cached:     s.eng.Cached(lpmem.CacheKey(e.ID)),
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"registry_version": lpmem.RegistryVersion,
		"count":            len(entries),
		"experiments":      entries,
	})
}

func (s *Server) handleOne(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	exp, ok := s.byID[id]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q", id))
		return
	}
	// A client that hung up while this request sat in net/http's accept
	// backlog gets no work done on its behalf.
	if r.Context().Err() != nil {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.delay(r.Context())
	key := lpmem.CacheKey(exp.ID)
	if env, ok := s.storeGet(key); ok {
		writeJSON(w, http.StatusOK, env)
		return
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	reports := lpmem.RunBatch(ctx, s.eng, []lpmem.Experiment{exp})
	env := reports[0].JSON()
	status := http.StatusOK
	if env.Error != "" {
		status = http.StatusInternalServerError
	} else {
		s.storePut(key, env)
	}
	writeJSON(w, status, env)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	exps, err := s.resolve(r.URL.Query().Get("ids"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	// Dead clients don't get work enqueued for them (the disconnect can
	// predate the handler under load).
	if r.Context().Err() != nil {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.delay(r.Context())
	if wantsStream(r) {
		s.handleBatchStream(w, r, exps)
		return
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	start := time.Now()

	// Serve whatever any replica already computed; run the rest.
	envs := make([]lpmem.ResultJSON, len(exps))
	var pending []int
	for i, e := range exps {
		if env, ok := s.storeGet(lpmem.CacheKey(e.ID)); ok {
			envs[i] = env
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) > 0 {
		pendingExps := make([]lpmem.Experiment, len(pending))
		for j, i := range pending {
			pendingExps[j] = exps[i]
		}
		reports := lpmem.RunBatch(ctx, s.eng, pendingExps)
		for j, i := range pending {
			envs[i] = reports[j].JSON()
			if envs[i].Error == "" {
				s.storePut(lpmem.CacheKey(exps[i].ID), envs[i])
			}
		}
	}
	failed := 0
	for i := range envs {
		if envs[i].Error != "" {
			failed++
		}
	}
	// Failures degrade, they don't take the batch down: every requested
	// ID gets its own envelope (value or error), the batch-level status
	// summarises, and only a fully failed batch maps to an error code.
	status, httpStatus := "ok", http.StatusOK
	switch {
	case failed == len(envs) && failed > 0:
		status, httpStatus = "failed", http.StatusBadGateway
	case failed > 0:
		status = "partial"
	}
	writeJSON(w, httpStatus, map[string]interface{}{
		"status":     status,
		"count":      len(envs),
		"failed":     failed,
		"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
		"results":    envs,
	})
}

// resolve expands the ids query parameter ("", "all", or "E1,E7,...")
// into registry entries, rejecting unknown IDs and deduplicating while
// preserving request order.
func (s *Server) resolve(ids string) ([]lpmem.Experiment, error) {
	ids = strings.TrimSpace(ids)
	if ids == "" || ids == "all" {
		return s.exps, nil
	}
	var out []lpmem.Experiment
	seen := map[string]bool{}
	for _, raw := range strings.Split(ids, ",") {
		id := strings.TrimSpace(raw)
		if id == "" || seen[id] {
			continue
		}
		exp, ok := s.byID[id]
		if !ok {
			known := make([]string, 0, len(s.byID))
			for k := range s.byID {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(known, ","))
		}
		seen[id] = true
		out = append(out, exp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q", ids)
	}
	return out, nil
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	RegistryVersion string                         `json:"registry_version"`
	UptimeSeconds   float64                        `json:"uptime_seconds"`
	HTTPRequests    uint64                         `json:"http_requests"`
	Workers         int                            `json:"workers"`
	CacheEntries    int                            `json:"cache_entries"`
	Runner          lpmem.Metrics                  `json:"runner"`
	Breakers        map[string]runner.BreakerState `json:"breakers,omitempty"`
	// Admission reports the load-shedding queue (absent when admission
	// control is disabled); Store the shared result store (absent when
	// the replica runs storeless).
	Admission *AdmissionStats    `json:"admission,omitempty"`
	Store     *resultstore.Stats `json:"store,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := MetricsSnapshot{
		RegistryVersion: lpmem.RegistryVersion,
		UptimeSeconds:   time.Since(s.started).Seconds(),
		HTTPRequests:    s.requests.Load(),
		Workers:         s.eng.Workers(),
		CacheEntries:    s.eng.CacheLen(),
		Runner:          s.eng.Metrics(),
		Breakers:        s.eng.BreakerStates(),
	}
	if s.adm != nil {
		st := s.adm.stats()
		snap.Admission = &st
	}
	if s.store != nil {
		st := s.store.Stats()
		snap.Store = &st
	}
	writeJSON(w, http.StatusOK, snap)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
