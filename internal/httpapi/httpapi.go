// Package httpapi implements the lpmemd HTTP surface over the concurrent
// experiment engine: experiment listing, single-experiment runs (served
// from the engine cache when warm), parallel batch runs, and a metrics
// snapshot. Responses are JSON; only net/http from the standard library
// is used.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lpmem"
)

// Server owns the engine and the registry snapshot it serves.
type Server struct {
	eng      *lpmem.Engine
	exps     []lpmem.Experiment
	byID     map[string]lpmem.Experiment
	started  time.Time
	requests atomic.Uint64
}

// New creates a server around an engine, serving the full registry.
func New(eng *lpmem.Engine) *Server {
	exps := lpmem.Experiments()
	byID := make(map[string]lpmem.Experiment, len(exps))
	for _, e := range exps {
		byID[e.ID] = e
	}
	return &Server{eng: eng, exps: exps, byID: byID, started: time.Now()}
}

// Handler returns the route table:
//
//	GET  /experiments        registry listing
//	GET  /experiments/{id}   run one experiment (cache-served when warm)
//	POST /run?ids=E1,E7      parallel batch run ("all" or empty = registry)
//	GET  /metrics            engine + HTTP counter snapshot
//	GET  /healthz            liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.handleList)
	mux.HandleFunc("GET /experiments/{id}", s.handleOne)
	mux.HandleFunc("POST /run", s.handleBatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s.count(mux)
}

// count wraps the mux with the request counter.
func (s *Server) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		next.ServeHTTP(w, r)
	})
}

// listEntry is the /experiments row: registry metadata without results.
type listEntry struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	PaperClaim string `json:"paper_claim"`
	Cached     bool   `json:"cached"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := make([]listEntry, len(s.exps))
	for i, e := range s.exps {
		entries[i] = listEntry{
			ID:         e.ID,
			Title:      e.Title,
			PaperClaim: e.PaperClaim,
			Cached:     s.eng.Cached(lpmem.CacheKey(e.ID)),
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"registry_version": lpmem.RegistryVersion,
		"count":            len(entries),
		"experiments":      entries,
	})
}

func (s *Server) handleOne(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	exp, ok := s.byID[id]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q", id))
		return
	}
	reports := lpmem.RunBatch(r.Context(), s.eng, []lpmem.Experiment{exp})
	env := reports[0].JSON()
	status := http.StatusOK
	if env.Error != "" {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, env)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	exps, err := s.resolve(r.URL.Query().Get("ids"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	reports := lpmem.RunBatch(r.Context(), s.eng, exps)
	envs := make([]lpmem.ResultJSON, len(reports))
	failed := 0
	for i, rep := range reports {
		envs[i] = rep.JSON()
		if envs[i].Error != "" {
			failed++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":      len(envs),
		"failed":     failed,
		"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
		"results":    envs,
	})
}

// resolve expands the ids query parameter ("", "all", or "E1,E7,...")
// into registry entries, rejecting unknown IDs and deduplicating while
// preserving request order.
func (s *Server) resolve(ids string) ([]lpmem.Experiment, error) {
	ids = strings.TrimSpace(ids)
	if ids == "" || ids == "all" {
		return s.exps, nil
	}
	var out []lpmem.Experiment
	seen := map[string]bool{}
	for _, raw := range strings.Split(ids, ",") {
		id := strings.TrimSpace(raw)
		if id == "" || seen[id] {
			continue
		}
		exp, ok := s.byID[id]
		if !ok {
			known := make([]string, 0, len(s.byID))
			for k := range s.byID {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(known, ","))
		}
		seen[id] = true
		out = append(out, exp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q", ids)
	}
	return out, nil
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	RegistryVersion string        `json:"registry_version"`
	UptimeSeconds   float64       `json:"uptime_seconds"`
	HTTPRequests    uint64        `json:"http_requests"`
	Workers         int           `json:"workers"`
	CacheEntries    int           `json:"cache_entries"`
	Runner          lpmem.Metrics `json:"runner"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MetricsSnapshot{
		RegistryVersion: lpmem.RegistryVersion,
		UptimeSeconds:   time.Since(s.started).Seconds(),
		HTTPRequests:    s.requests.Load(),
		Workers:         s.eng.Workers(),
		CacheEntries:    s.eng.CacheLen(),
		Runner:          s.eng.Metrics(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
