package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"lpmem/internal/stats"
	"lpmem/internal/sweep"
)

// maxSweepPoints bounds one HTTP-submitted sweep. The built-in spaces
// are all well under this; the cap exists so a hostile or buggy client
// cannot wedge the pool with an unbounded request.
const maxSweepPoints = 4096

// sweepManager owns the asynchronous sweeps a server has accepted. All
// sweeps share one in-memory store, so repeated sweeps of the same space
// are incremental across requests exactly like `lpmem sweep -resume`.
type sweepManager struct {
	workers int

	mu    sync.Mutex
	seq   int
	jobs  map[string]*sweepJob
	store *sweep.Store
}

// sweepJob tracks one accepted sweep through running → settled.
type sweepJob struct {
	mu sync.Mutex

	id         string
	space      string
	objectives []string
	// status is "running" until the executor returns, then the batch
	// degradation vocabulary: "ok", "partial" (some points failed) or
	// "failed" (all did, or the executor itself errored).
	status string
	err    string

	total, done, evaluated, cached, failed int

	frontier    *stats.Table
	sensitivity *stats.Table
	results     *stats.Table

	// subs are the live SSE watchers; settled marks the job terminal so
	// late subscribers get an immediately-closed channel (stream handlers
	// then emit the final snapshot straight away).
	subs    []chan sweepStatus
	settled bool
}

// subscribe registers a progress watcher. The returned channel carries
// best-effort snapshots and is closed when the job settles; the cancel
// func detaches the watcher (idempotent, safe after settle).
func (j *sweepJob) subscribe() (<-chan sweepStatus, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan sweepStatus, 8)
	if j.settled {
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
}

// publish pushes the current (table-free) snapshot to every watcher.
// Sends never block: a slow watcher skips intermediate snapshots but
// still sees the channel close that triggers the final one.
func (j *sweepJob) publish() {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := j.statusLocked()
	snap.Frontier, snap.Sensitivity, snap.Results = nil, nil, nil
	for _, ch := range j.subs {
		select {
		case ch <- snap:
		default:
		}
	}
}

// settleLocked marks the job terminal and releases every watcher.
// Callers hold j.mu.
func (j *sweepJob) settleLocked() {
	j.settled = true
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

func newSweepManager(workers int, store *sweep.Store) *sweepManager {
	if store == nil {
		// OpenStore("") cannot fail: memory-only stores touch no file.
		store, _ = sweep.OpenStore("")
	}
	return &sweepManager{workers: workers, jobs: make(map[string]*sweepJob), store: store}
}

// sweepRequest is the POST /sweeps body.
type sweepRequest struct {
	// Space names the design space ("banks", "cache", "bus", "memhier", "memtech").
	Space string `json:"space"`
	// Points > 0 Latin-hypercube samples that many points; 0 sweeps the
	// full grid.
	Points int `json:"points"`
	// Seed drives sampling (default 1).
	Seed int64 `json:"seed"`
	// Objectives is a comma list for the frontier ("" = all three).
	Objectives string `json:"objectives"`
}

// sweepStatus is the GET /sweeps/{id} (and POST /sweeps accept) body.
type sweepStatus struct {
	ID         string   `json:"id"`
	Space      string   `json:"space"`
	Status     string   `json:"status"`
	Objectives []string `json:"objectives"`
	Total      int      `json:"total"`
	Done       int      `json:"done"`
	Evaluated  int      `json:"evaluated"`
	Cached     int      `json:"cached"`
	Failed     int      `json:"failed"`
	Error      string   `json:"error,omitempty"`
	// Tables are present once the sweep settles.
	Frontier    *stats.Table `json:"frontier,omitempty"`
	Sensitivity *stats.Table `json:"sensitivity,omitempty"`
	Results     *stats.Table `json:"results,omitempty"`
}

// snapshot captures the job under its lock.
func (j *sweepJob) snapshot() sweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked builds the status body; callers hold j.mu.
func (j *sweepJob) statusLocked() sweepStatus {
	return sweepStatus{
		ID: j.id, Space: j.space, Status: j.status, Objectives: j.objectives,
		Total: j.total, Done: j.done, Evaluated: j.evaluated,
		Cached: j.cached, Failed: j.failed, Error: j.err,
		Frontier: j.frontier, Sensitivity: j.sensitivity, Results: j.results,
	}
}

// start validates the request, enumerates the points, and launches the
// executor in the background. It returns the accepted job or an error
// suitable for a 400.
func (m *sweepManager) start(req sweepRequest) (*sweepJob, error) {
	ad, err := sweep.ByName(req.Space)
	if err != nil {
		return nil, err
	}
	objs, err := sweep.ParseObjectives(req.Objectives)
	if err != nil {
		return nil, err
	}
	// Validate the requested sample size BEFORE enumerating: Sample
	// allocates proportionally to req.Points, so the bound must hold
	// before the allocation, not after. The post-enumeration check stays
	// for the Grid path, whose size is only known once enumerated.
	if req.Points > maxSweepPoints {
		return nil, fmt.Errorf("httpapi: sweep of %d points exceeds the %d-point cap", req.Points, maxSweepPoints)
	}
	sp := ad.Space()
	var pts []sweep.Point
	if req.Points > 0 {
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		pts, err = sp.Sample(req.Points, seed)
	} else {
		pts, err = sp.Grid()
	}
	if err != nil {
		return nil, err
	}
	if len(pts) > maxSweepPoints {
		return nil, fmt.Errorf("httpapi: sweep of %d points exceeds the %d-point cap; use \"points\" to sample", len(pts), maxSweepPoints)
	}

	m.mu.Lock()
	m.seq++
	job := &sweepJob{
		id:     fmt.Sprintf("S%d", m.seq),
		space:  ad.Name(),
		status: "running", objectives: objs, total: len(pts),
	}
	m.jobs[job.id] = job
	m.mu.Unlock()

	//lint:allow goroutine an accepted sweep deliberately outlives its request; run settles the job and exits, and the store keeps partial results if the server dies
	go m.run(job, ad, sp, pts)
	return job, nil
}

// run executes the sweep and settles the job. It deliberately uses a
// background context: an accepted sweep outlives the request that
// submitted it (that is the point of the async surface), and the shared
// store keeps whatever a dying server managed to compute.
func (m *sweepManager) run(job *sweepJob, ad sweep.Adapter, sp sweep.Space, pts []sweep.Point) {
	res, err := sweep.Run(context.Background(), ad, pts, sweep.Config{
		Workers: m.workers,
		Store:   m.store,
		OnProgress: func(p sweep.Progress) {
			job.mu.Lock()
			job.done, job.cached, job.failed = p.Done, p.Cached, p.Failed
			job.mu.Unlock()
			job.publish()
		},
	})
	job.mu.Lock()
	defer job.mu.Unlock()
	// Settling (with the lock still held, before it is released) closes
	// every watcher channel; stream handlers then read the final tables
	// through snapshot(). LIFO defers: settle runs first, then Unlock.
	defer job.settleLocked()
	if err != nil {
		job.status, job.err = "failed", err.Error()
		return
	}
	job.done = res.Total
	job.evaluated, job.cached, job.failed = res.Evaluated, res.Cached, res.Failed
	front := sweep.Frontier(res.Outcomes, job.objectives)
	ft, ferr := sweep.FrontierTable(sp.Axes, front, job.objectives)
	if ferr != nil {
		job.status, job.err = "failed", ferr.Error()
		return
	}
	job.frontier = ft
	job.sensitivity = sweep.Sensitivity(sp.Axes, res.Outcomes)
	job.results = sweep.ResultsTable(sp.Axes, res.Outcomes)
	switch {
	case res.Failed == res.Total && res.Total > 0:
		job.status = "failed"
	case res.Failed > 0:
		job.status = "partial"
	default:
		job.status = "ok"
	}
}

// get returns the job by ID.
func (m *sweepManager) get(id string) (*sweepJob, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list snapshots every job, newest first.
func (m *sweepManager) list() []sweepStatus {
	m.mu.Lock()
	jobs := make([]*sweepJob, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	seq := m.seq
	m.mu.Unlock()
	out := make([]sweepStatus, 0, len(jobs))
	for i := seq; i >= 1 && len(out) < len(jobs); i-- {
		for _, j := range jobs {
			if j.id == fmt.Sprintf("S%d", i) {
				s := j.snapshot()
				// Listings stay light: tables are fetched per-ID.
				s.Frontier, s.Sensitivity, s.Results = nil, nil, nil
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// handleSweepSubmit implements POST /sweeps: accept a design-space
// sweep, start it in the background, and return 202 with its ID.
// With ?stream=1 the response becomes an SSE watch of the new sweep.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	// A client that already went away gets no work queued on its behalf.
	if r.Context().Err() != nil {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		release()
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad sweep request: %v", err))
		return
	}
	job, err := s.sweeps.start(req)
	if err != nil {
		release()
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	// The admission slot covers acceptance, not the sweep itself (which
	// runs on the bounded engine pool) nor a long SSE watch.
	release()
	if wantsStream(r) {
		sse, ok := startSSE(w)
		if !ok {
			return
		}
		_ = sse.event("accepted", job.snapshot())
		s.streamSweep(w, r, job, sse)
		return
	}
	writeJSON(w, http.StatusAccepted, job.snapshot())
}

// handleSweepList implements GET /sweeps.
func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"sweeps": s.sweeps.list()})
}

// handleSweepGet implements GET /sweeps/{id}: the degradation envelope
// for one sweep — 200 while running and for ok/partial results, 502 only
// when the whole sweep failed, mirroring the batch-run contract.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.sweeps.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown sweep %q", id))
		return
	}
	if wantsStream(r) {
		// Settled jobs subscribe onto a closed channel, so the watch
		// degenerates to an immediate done event.
		s.streamSweep(w, r, job, nil)
		return
	}
	snap := job.snapshot()
	status := http.StatusOK
	if snap.Status == "failed" {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, snap)
}

// handleSweepSpaces implements GET /sweeps/spaces: the available design
// spaces with their axes and grid sizes.
func (s *Server) handleSweepSpaces(w http.ResponseWriter, r *http.Request) {
	type axisInfo struct {
		Name   string   `json:"name"`
		Kind   string   `json:"kind"`
		Min    float64  `json:"min,omitempty"`
		Max    float64  `json:"max,omitempty"`
		Values []string `json:"values,omitempty"`
	}
	type spaceInfo struct {
		Name        string     `json:"name"`
		Description string     `json:"description"`
		GridPoints  int        `json:"grid_points"`
		Axes        []axisInfo `json:"axes"`
	}
	var out []spaceInfo
	for _, ad := range sweep.Adapters() {
		sp := ad.Space()
		info := spaceInfo{
			Name: ad.Name(), Description: ad.Describe(), GridPoints: sp.GridSize(),
		}
		for _, a := range sp.Axes {
			info.Axes = append(info.Axes, axisInfo{
				Name: a.Name, Kind: a.Kind.String(), Min: a.Min, Max: a.Max, Values: a.Values,
			})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"spaces": out})
}
