package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// tableJSON mirrors stats.Table's wire form (the Table type itself only
// marshals).
type tableJSON struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// sweepStatusJSON is the client-side view of the sweep envelope.
type sweepStatusJSON struct {
	ID         string     `json:"id"`
	Space      string     `json:"space"`
	Status     string     `json:"status"`
	Objectives []string   `json:"objectives"`
	Total      int        `json:"total"`
	Done       int        `json:"done"`
	Evaluated  int        `json:"evaluated"`
	Cached     int        `json:"cached"`
	Failed     int        `json:"failed"`
	Error      string     `json:"error"`
	Frontier   *tableJSON `json:"frontier"`
	Sens       *tableJSON `json:"sensitivity"`
	Results    *tableJSON `json:"results"`
}

// postSweep submits a sweep request body and decodes the response.
func postSweep(t *testing.T, url, body string, out interface{}) int {
	t.Helper()
	resp, err := http.Post(url+"/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	return resp.StatusCode
}

// waitSweep polls GET /sweeps/{id} until the job settles.
func waitSweep(t *testing.T, url, id string) sweepStatusJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var snap sweepStatusJSON
		code := get(t, url+"/sweeps/"+id, &snap)
		if snap.Status != "running" {
			if code != http.StatusOK && snap.Status != "failed" {
				t.Fatalf("settled sweep returned HTTP %d: %+v", code, snap)
			}
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s did not settle: %+v", id, snap)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSweepSubmitAndFetch: POST /sweeps accepts a sampled sweep with 202,
// GET /sweeps/{id} serves progress and, once settled, the frontier,
// sensitivity and results tables.
func TestSweepSubmitAndFetch(t *testing.T) {
	ts, _ := newTestServer(t)
	var accepted sweepStatusJSON
	code := postSweep(t, ts.URL, `{"space":"bus"}`, &accepted)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if accepted.ID == "" || accepted.Total == 0 {
		t.Fatalf("accept envelope: %+v", accepted)
	}

	snap := waitSweep(t, ts.URL, accepted.ID)
	if snap.Status != "ok" {
		t.Fatalf("sweep settled %q (error %q)", snap.Status, snap.Error)
	}
	if snap.Evaluated != snap.Total || snap.Failed != 0 || snap.Done != snap.Total {
		t.Fatalf("cold sweep counts: %+v", snap)
	}
	if snap.Frontier == nil || len(snap.Frontier.Rows) == 0 {
		t.Fatal("settled sweep has no frontier")
	}
	if snap.Sens == nil || snap.Results == nil {
		t.Fatal("settled sweep missing sensitivity/results tables")
	}
	if len(snap.Results.Rows) != snap.Total {
		t.Fatalf("results table has %d rows, want %d", len(snap.Results.Rows), snap.Total)
	}

	// The shared store makes a re-submitted space incremental: the second
	// sweep of the same space serves every point from cache, and its
	// frontier matches the first byte-for-byte.
	var again sweepStatusJSON
	if code := postSweep(t, ts.URL, `{"space":"bus"}`, &again); code != http.StatusAccepted {
		t.Fatalf("resubmit status %d", code)
	}
	snap2 := waitSweep(t, ts.URL, again.ID)
	if snap2.Status != "ok" || snap2.Evaluated != 0 || snap2.Cached != snap2.Total {
		t.Fatalf("incremental sweep: status=%q evaluated=%d cached=%d total=%d",
			snap2.Status, snap2.Evaluated, snap2.Cached, snap2.Total)
	}
	f1, _ := json.Marshal(snap.Frontier)
	f2, _ := json.Marshal(snap2.Frontier)
	if string(f1) != string(f2) {
		t.Fatal("frontier differs between cold and incremental sweep")
	}

	// Both sweeps show up in the listing, newest first, without tables.
	var listing struct {
		Sweeps []sweepStatusJSON `json:"sweeps"`
	}
	if code := get(t, ts.URL+"/sweeps", &listing); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(listing.Sweeps) != 2 || listing.Sweeps[0].ID != again.ID {
		t.Fatalf("listing: %+v", listing.Sweeps)
	}
	if listing.Sweeps[0].Frontier != nil {
		t.Fatal("listing must not carry the heavy tables")
	}
}

// TestSweepSampledRequest: "points" samples instead of sweeping the grid.
func TestSweepSampledRequest(t *testing.T) {
	ts, _ := newTestServer(t)
	var accepted sweepStatusJSON
	if code := postSweep(t, ts.URL, `{"space":"banks","points":10,"seed":3}`, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if accepted.Total == 0 || accepted.Total > 10 {
		t.Fatalf("sampled sweep total = %d, want 1..10", accepted.Total)
	}
	snap := waitSweep(t, ts.URL, accepted.ID)
	if snap.Status != "ok" {
		t.Fatalf("sampled sweep settled %q (error %q)", snap.Status, snap.Error)
	}
}

// TestSweepBadRequests: malformed bodies, unknown spaces, unknown fields
// and unknown objectives are 400s; unknown IDs are 404s.
func TestSweepBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []string{
		``,
		`{`,
		`{"space":"nope"}`,
		`{"space":"bus","bogus":1}`,
		`{"space":"bus","objectives":"nope"}`,
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := postSweep(t, ts.URL, body, &e); code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d", body, code)
		}
		if e.Error == "" {
			t.Fatalf("body %q: no error message", body)
		}
	}
	var e struct {
		Error string `json:"error"`
	}
	if code := get(t, ts.URL+"/sweeps/S99", &e); code != http.StatusNotFound {
		t.Fatalf("unknown sweep status %d", code)
	}
}

// TestSweepSpaces: the catalogue endpoint lists every registered space
// with axes and grid sizes.
func TestSweepSpaces(t *testing.T) {
	ts, _ := newTestServer(t)
	var body struct {
		Spaces []struct {
			Name       string `json:"name"`
			GridPoints int    `json:"grid_points"`
			Axes       []struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
			} `json:"axes"`
		} `json:"spaces"`
	}
	if code := get(t, ts.URL+"/sweeps/spaces", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	names := map[string]bool{}
	for _, sp := range body.Spaces {
		names[sp.Name] = true
		if sp.GridPoints == 0 || len(sp.Axes) == 0 {
			t.Fatalf("space %s: empty catalogue entry", sp.Name)
		}
	}
	for _, want := range []string{"banks", "cache", "bus", "memhier"} {
		if !names[want] {
			t.Fatalf("catalogue misses %q: %v", want, names)
		}
	}
}
