package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// requestIDHeader carries the per-request correlation ID. Incoming
// values (a load balancer or the loadgen client already assigned one)
// are honoured; otherwise the server mints `<instance>-<seq>`. The ID is
// echoed on the response and stamped into every access-log line, so a
// failed loadgen request is traceable to exactly one server-side line.
const requestIDHeader = "X-Request-ID"

// instanceTag distinguishes replicas sharing a log aggregator: pid plus
// start time is unique enough across a bench fleet without coordination.
var instanceTag = fmt.Sprintf("%d-%x", os.Getpid(), time.Now().UnixNano()&0xffffff)

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time       string  `json:"time"`
	RequestID  string  `json:"request_id"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Query      string  `json:"query,omitempty"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Remote     string  `json:"remote,omitempty"`
}

// statusWriter captures the status code and body size for the access
// log. It forwards Flush so the SSE streaming handlers keep working
// through the middleware stack.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps the route table with request-ID assignment and, when
// an access-log writer is configured, one JSON line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = fmt.Sprintf("%s-%06d", instanceTag, s.reqSeq.Add(1))
			r.Header.Set(requestIDHeader, id)
		}
		w.Header().Set(requestIDHeader, id)
		if s.accessLog == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rec := accessRecord{
			Time:       start.UTC().Format(time.RFC3339Nano),
			RequestID:  id,
			Method:     r.Method,
			Path:       r.URL.Path,
			Query:      r.URL.RawQuery,
			Status:     status,
			Bytes:      sw.bytes,
			DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
			Remote:     r.RemoteAddr,
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return
		}
		line = append(line, '\n')
		s.logMu.Lock()
		_, _ = s.accessLog.Write(line)
		s.logMu.Unlock()
	})
}

// accessLogState is embedded in Server: the sink plus the mutex that
// keeps concurrent handlers from interleaving log lines, and the
// sequence counter behind minted request IDs.
type accessLogState struct {
	accessLog io.Writer
	logMu     sync.Mutex
	reqSeq    atomic.Uint64
}
