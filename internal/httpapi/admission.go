package httpapi

import (
	"context"
	"errors"
	"hash/fnv"
	"net/http"
	"strconv"
	"sync/atomic"
)

// errShed marks a request rejected by the admission queue: both the
// concurrency slots and the wait queue are full, so the server refuses
// new work instead of letting latency collapse for everyone. The HTTP
// surface maps it to 429 + Retry-After.
var errShed = errors.New("httpapi: admission queue full")

// admission is the bounded queue with load shedding in front of the
// runner. At most capacity requests hold an execution slot at once; up
// to maxWait more may queue for a slot; anything beyond that is shed
// immediately. It composes with the PR 4 degradation contract as the
// overload leg: breakers answer "this experiment keeps failing" (503
// degraded health, fast-fail errors), admission answers "this replica
// has more work than it can queue" (429, retry elsewhere or later).
type admission struct {
	capacity int
	maxWait  int
	sem      chan struct{}

	waiting  atomic.Int64
	inflight atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
	// abandoned counts requests whose client gave up while queued.
	abandoned atomic.Uint64
	// seq drives the deterministic Retry-After jitter.
	seq atomic.Uint64
	// retryAfterBase is the minimum Retry-After in seconds; jitter adds
	// [0, 2*base] so a shed thundering herd does not re-arrive in phase.
	retryAfterBase int
}

// newAdmission builds the queue; capacity <= 0 means admission control
// is disabled (callers hold a nil *admission).
func newAdmission(capacity, maxWait int) *admission {
	if capacity <= 0 {
		return nil
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &admission{
		capacity: capacity,
		maxWait:  maxWait,
		//lint:allow boundedbuf capacity is operator flag config (-admit), not request input
		sem:            make(chan struct{}, capacity),
		retryAfterBase: 1,
	}
}

// acquire obtains an execution slot, queueing within the wait bound. On
// success the returned release func must be called exactly once when the
// request's work is done. Failure is either errShed (queue full) or the
// request context's error (client disconnected while queued).
func (a *admission) acquire(ctx context.Context) (func(), error) {
	admitted := func() func() {
		a.admitted.Add(1)
		a.inflight.Add(1)
		return func() {
			<-a.sem
			a.inflight.Add(-1)
		}
	}
	select {
	case a.sem <- struct{}{}:
		return admitted(), nil
	default:
	}
	// No free slot: take a wait-queue position or shed. The counter is
	// optimistic — increment, then back out past the bound — so two
	// racing requests cannot both sneak into the last position.
	if a.waiting.Add(1) > int64(a.maxWait) {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return nil, errShed
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return admitted(), nil
	case <-ctx.Done():
		a.abandoned.Add(1)
		return nil, ctx.Err()
	}
}

// retryAfter returns the Retry-After seconds for one shed response:
// base plus a deterministic per-response jitter in [0, 2*base], so
// clients told to back off do not return in lockstep.
func (a *admission) retryAfter() int {
	h := fnv.New64a()
	var b [8]byte
	n := a.seq.Add(1)
	for i := range b {
		b[i] = byte(n >> (8 * i))
	}
	_, _ = h.Write(b[:])
	return a.retryAfterBase + int(h.Sum64()%uint64(2*a.retryAfterBase+1))
}

// AdmissionStats is the /metrics view of the queue.
type AdmissionStats struct {
	// Capacity is the concurrency bound; QueueLimit the wait bound.
	Capacity   int `json:"capacity"`
	QueueLimit int `json:"queue_limit"`
	// Inflight holds an execution slot now; QueueDepth is waiting.
	Inflight   int64 `json:"inflight"`
	QueueDepth int64 `json:"queue_depth"`
	// Admitted/Shed/Abandoned are lifetime totals: admitted to run, shed
	// with 429, abandoned by their client while queued.
	Admitted  uint64 `json:"admitted"`
	Shed      uint64 `json:"shed"`
	Abandoned uint64 `json:"abandoned"`
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		Capacity:   a.capacity,
		QueueLimit: a.maxWait,
		Inflight:   a.inflight.Load(),
		QueueDepth: a.waiting.Load(),
		Admitted:   a.admitted.Load(),
		Shed:       a.shed.Load(),
		Abandoned:  a.abandoned.Load(),
	}
}

// admit runs the admission gate for one work-producing request and
// writes the shed/disconnect response itself when the request does not
// get through. Callers must defer the returned release when ok.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if s.adm == nil {
		return func() {}, true
	}
	release, err := s.adm.acquire(r.Context())
	if err == nil {
		return release, true
	}
	if errors.Is(err, errShed) {
		ra := s.adm.retryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
			"error":               "overloaded: admission queue full",
			"retry_after_seconds": ra,
		})
		return nil, false
	}
	// The client disconnected while queued; nobody reads this body, but
	// the status keeps access logs truthful.
	writeErr(w, http.StatusServiceUnavailable, "client disconnected while queued")
	return nil, false
}
