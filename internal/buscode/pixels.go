package buscode

import "math/rand"

// SmoothRGB generates n pixels of a synthetic natural-image scanline: the
// R channel performs a Gaussian random walk (tonal locality) and G and B
// track R with small Gaussian offsets (inter-channel correlation). sigma
// controls horizontal smoothness; chroma controls how tightly G and B
// follow R. This is the statistical structure the chromatic-encoding
// abstract itself assumes of DVI traffic.
func SmoothRGB(seed int64, n int, sigma, chroma float64) []RGB {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RGB, n)
	clamp := func(v float64) uint8 {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v)
	}
	r := 128.0
	for i := range out {
		r += rng.NormFloat64() * sigma
		if r < 0 {
			r = 0
		}
		if r > 255 {
			r = 255
		}
		out[i] = RGB{
			R: clamp(r),
			G: clamp(r + rng.NormFloat64()*chroma),
			B: clamp(r + rng.NormFloat64()*chroma),
		}
	}
	return out
}

// MidtoneRGB generates a mean-reverting scanline hovering around a
// mid-tone level (sky gradients, studio backgrounds). Mid-tone content is
// the pathological case for plain binary transmission: every crossing of
// the 127/128 boundary toggles all eight lines of a channel, while a
// value-locality code toggles one. level is the tone the walk reverts to.
func MidtoneRGB(seed int64, n int, level, sigma, chroma float64) []RGB {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RGB, n)
	clamp := func(v float64) uint8 {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v)
	}
	r := level
	for i := range out {
		r += rng.NormFloat64()*sigma + 0.1*(level-r)
		out[i] = RGB{
			R: clamp(r),
			G: clamp(r + rng.NormFloat64()*chroma),
			B: clamp(r + rng.NormFloat64()*chroma),
		}
	}
	return out
}

// MeasurePixels drives a pixel stream through a pixel-capable encoder.
func MeasurePixels(enc Encoder, pixels []RGB) Measurement {
	words := make([]uint32, len(pixels))
	for i, px := range pixels {
		words[i] = PixelWord(px)
	}
	return Measure(enc, words)
}
