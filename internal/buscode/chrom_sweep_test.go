package buscode

import "testing"

// TestChromaticSweep characterises chromatic-encoding savings across image
// smoothness, reproducing the "up to 75%" envelope of the abstract on
// mid-tone content.
func TestChromaticSweep(t *testing.T) {
	measure := func(pixels []RGB) float64 {
		raw := MeasurePixels(RawPixel{}, pixels)
		chr := MeasurePixels(&Chromatic{}, pixels)
		return 100 * float64(raw.Transitions-chr.Transitions) / float64(raw.Transitions)
	}
	for _, p := range []struct{ sigma, chroma float64 }{
		{8, 6}, {3, 2}, {1.5, 0.8}, {0.8, 0.4},
	} {
		pixels := SmoothRGB(7, 20000, p.sigma, p.chroma)
		t.Logf("smooth sigma=%.1f chroma=%.2f saving=%.1f%%", p.sigma, p.chroma, measure(pixels))
	}
	for _, lvl := range []float64{128, 64, 192} {
		pixels := MidtoneRGB(7, 20000, lvl, 0.8, 0.3)
		saving := measure(pixels)
		t.Logf("midtone level=%.0f saving=%.1f%%", lvl, saving)
		if lvl == 128 && saving < 55 {
			t.Errorf("mid-tone saving = %.1f%%, want >= 55%%", saving)
		}
	}
}
