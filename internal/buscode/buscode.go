// Package buscode implements low-power and signal-integrity bus encoding
// schemes evaluated at DATE'03: classic binary, Gray, T0 and bus-invert
// codes, the one-extra-line shielded address encoding of session 6F.3, and
// the chromatic DVI pixel encoding of session 8B.3 (chromatic.go).
//
// An Encoder maps a logical word sequence onto a physical line-pattern
// sequence; one logical word may occupy several bus cycles (that is how
// the shielded code buys its integrity guarantee). Costs are measured by
// Measure: self transitions, opposite-direction adjacent-line coupling
// events, bus cycles and physical line count.
package buscode

import (
	"math/bits"
)

// Encoder maps one logical word to one or more physical line patterns.
// Encoders are stateful (most codes depend on the previous word); Reset
// restores the initial state.
type Encoder interface {
	// Name identifies the scheme in tables.
	Name() string
	// Lines is the number of physical bus lines used.
	Lines() int
	// Encode appends the physical pattern(s) for word to dst and returns
	// the extended slice.
	Encode(dst []uint64, word uint32) []uint64
	// Reset restores initial encoder state.
	Reset()
}

// Measure drives the word stream through the encoder and accounts the
// physical activity.
type Measurement struct {
	// Transitions is the total number of line toggles.
	Transitions uint64
	// Couplings is the number of opposite-direction toggles on adjacent
	// line pairs (the crosstalk/energy-relevant events).
	Couplings uint64
	// Cycles is the number of bus cycles used (≥ len(words)).
	Cycles uint64
	// Lines is the physical line count.
	Lines int
}

// PerfOverhead returns the fractional cycle overhead versus one word per
// cycle.
func (m Measurement) PerfOverhead(words int) float64 {
	if words == 0 {
		return 0
	}
	return float64(m.Cycles)/float64(words) - 1
}

// Measure runs words through enc and returns the accounting.
func Measure(enc Encoder, words []uint32) Measurement {
	enc.Reset()
	var patterns []uint64
	for _, w := range words {
		patterns = enc.Encode(patterns, w)
	}
	m := Measurement{Cycles: uint64(len(patterns)), Lines: enc.Lines()}
	for i := 1; i < len(patterns); i++ {
		prev, cur := patterns[i-1], patterns[i]
		m.Transitions += uint64(bits.OnesCount64(prev ^ cur))
		rise := ^prev & cur
		fall := prev & ^cur
		for l := 0; l < enc.Lines()-1; l++ {
			a := rise>>uint(l)&1 == 1
			b := fall>>uint(l+1)&1 == 1
			c := fall>>uint(l)&1 == 1
			d := rise>>uint(l+1)&1 == 1
			if (a && b) || (c && d) {
				m.Couplings++
			}
		}
	}
	return m
}

// Binary is the unencoded baseline.
type Binary struct {
	// Width is the logical word width in bits (default 32).
	Width int
}

// Name returns "binary".
func (b *Binary) Name() string { return "binary" }

// Lines returns the line count.
func (b *Binary) Lines() int { return b.width() }

func (b *Binary) width() int {
	if b.Width == 0 {
		return 32
	}
	return b.Width
}

// Encode emits the word unchanged.
func (b *Binary) Encode(dst []uint64, word uint32) []uint64 {
	mask := uint64(1)<<uint(b.width()) - 1
	return append(dst, uint64(word)&mask)
}

// Reset is a no-op.
func (b *Binary) Reset() {}

// Gray transmits the Gray code of each word: consecutive numeric values
// differ on exactly one line, ideal for sequential address streams.
type Gray struct {
	Width int
}

// Name returns "gray".
func (g *Gray) Name() string { return "gray" }

// Lines returns the line count.
func (g *Gray) Lines() int {
	if g.Width == 0 {
		return 32
	}
	return g.Width
}

// Encode emits word ^ (word >> 1).
func (g *Gray) Encode(dst []uint64, word uint32) []uint64 {
	mask := uint64(1)<<uint(g.Lines()) - 1
	return append(dst, uint64(word^(word>>1))&mask)
}

// Reset is a no-op.
func (g *Gray) Reset() {}

// T0 freezes the bus on in-sequence addresses and signals them on a
// dedicated INC line (one extra line, zero transitions for sequential
// streams).
type T0 struct {
	// Stride is the expected sequential increment (4 for a 32-bit
	// instruction bus).
	Stride uint32
	Width  int

	prev    uint32
	started bool
	lastPat uint64
}

// Name returns "t0".
func (t *T0) Name() string { return "t0" }

// Lines returns data width + 1 (INC line).
func (t *T0) Lines() int {
	w := t.Width
	if w == 0 {
		w = 32
	}
	return w + 1
}

// Encode emits either the frozen pattern with INC set, or the raw word.
func (t *T0) Encode(dst []uint64, word uint32) []uint64 {
	w := t.Lines() - 1
	mask := uint64(1)<<uint(w) - 1
	incBit := uint64(1) << uint(w)
	var pat uint64
	if t.started && word == t.prev+t.Stride {
		// In sequence: keep data lines, raise INC.
		pat = (t.lastPat & mask) | incBit
	} else {
		pat = uint64(word) & mask
	}
	t.prev = word
	t.started = true
	t.lastPat = pat
	return append(dst, pat)
}

// Reset clears the sequence state.
func (t *T0) Reset() { t.prev, t.started, t.lastPat = 0, false, 0 }

// BusInvert sends the complemented word (with an invert line raised) when
// that halves the Hamming distance to the previous pattern.
type BusInvert struct {
	Width int

	lastPat uint64
	started bool
}

// Name returns "businvert".
func (b *BusInvert) Name() string { return "businvert" }

// Lines returns data width + 1 (invert line).
func (b *BusInvert) Lines() int {
	w := b.Width
	if w == 0 {
		w = 32
	}
	return w + 1
}

// Encode emits word or its complement, whichever toggles fewer lines.
func (b *BusInvert) Encode(dst []uint64, word uint32) []uint64 {
	w := b.Lines() - 1
	mask := uint64(1)<<uint(w) - 1
	invBit := uint64(1) << uint(w)
	plain := uint64(word) & mask
	inverted := ^uint64(word)&mask | invBit
	pat := plain
	if b.started {
		if bits.OnesCount64(b.lastPat^inverted) < bits.OnesCount64(b.lastPat^plain) {
			pat = inverted
		}
	}
	b.lastPat = pat
	b.started = true
	return append(dst, pat)
}

// Reset clears the history.
func (b *BusInvert) Reset() { b.lastPat, b.started = 0, false }

// Shielded implements the one-extra-line signal-integrity address encoding
// of DATE'03 6F.3 (Lv, Wolf, Henkel, Lekatsas): data is driven only on
// every other physical line, so any two signal-carrying lines are
// separated by a grounded line and opposite-direction coupling is
// impossible by construction. A 32-bit address therefore needs two bus
// cycles (16 data lines interleaved with grounds) — except that address
// streams are overwhelmingly in-sequence, and in-sequence addresses are
// signalled in a single cycle by toggling the dedicated SEQ line alone.
// Physical lines: 16 data (even positions) + 16 grounds (odd positions) +
// SEQ = 33, one more than the plain 32-bit bus.
type Shielded struct {
	// Stride is the in-sequence increment.
	Stride uint32

	prev    uint32
	started bool
	seqLvl  uint64 // SEQ line level (toggles per sequential word)
	dataPat uint64 // current data-line pattern
}

// Name returns "shielded".
func (s *Shielded) Name() string { return "shielded" }

// Lines returns the 33 physical lines.
func (s *Shielded) Lines() int { return 33 }

// spread places the low 16 bits of half onto even line positions 0,2,..30.
func spread(half uint32) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		if half>>uint(i)&1 == 1 {
			out |= 1 << uint(2*i)
		}
	}
	return out
}

// Encode emits one cycle for in-sequence words, two otherwise.
func (s *Shielded) Encode(dst []uint64, word uint32) []uint64 {
	const seqLine = 32 // position of the SEQ line
	if s.started && word == s.prev+s.Stride {
		s.prev = word
		s.seqLvl ^= 1
		return append(dst, s.dataPat|s.seqLvl<<seqLine)
	}
	s.prev = word
	s.started = true
	lo := spread(word & 0xFFFF)
	hi := spread(word >> 16)
	dst = append(dst, lo|s.seqLvl<<seqLine)
	s.dataPat = hi
	return append(dst, hi|s.seqLvl<<seqLine)
}

// Reset clears the sequence state.
func (s *Shielded) Reset() { s.prev, s.started, s.seqLvl, s.dataPat = 0, false, 0, 0 }
