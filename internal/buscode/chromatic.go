package buscode

import "math/bits"

// Chromatic encoding for the Digital Visual Interface (DATE'03 8B.3,
// Cheng & Pedram: "Chromatic Encoding: a Low Power Encoding Technique for
// Digital Visual Interface").
//
// The scheme rests on two observations about natural video ("tonal
// locality"): (1) differences between horizontally adjacent pixels follow
// a peaked, Gaussian-like distribution, so codes should be assigned to
// pixel values such that nearby values get nearby codes — realized here by
// the Gray map, under which values differing by one toggle exactly one
// line; and (2) the three colour channels of a pixel are strongly
// correlated, so one or two channels can be sent as the (small) difference
// from a reference channel. One redundant bit per channel (3 per 24-bit
// pixel, exactly the paper's overhead) signals whether the channel is
// direct or reciprocal, chosen per pixel to minimize transitions.

// RGB is one 24-bit pixel.
type RGB struct {
	R, G, B uint8
}

// grayByte returns the 8-bit Gray code of v.
func grayByte(v uint8) uint8 { return v ^ (v >> 1) }

// Chromatic is the encoder: 27 physical lines (3×8 data + 3 mode bits).
type Chromatic struct {
	lastPat uint64
	started bool
}

// Name returns "chromatic".
func (c *Chromatic) Name() string { return "chromatic" }

// Lines returns 27.
func (c *Chromatic) Lines() int { return 27 }

// Reset clears the pattern history.
func (c *Chromatic) Reset() { c.lastPat, c.started = 0, false }

// EncodePixel encodes one pixel, choosing per-channel direct vs reciprocal
// representation to minimize transitions against the previous pattern.
func (c *Chromatic) EncodePixel(dst []uint64, px RGB) []uint64 {
	// Candidate representations per channel: direct Gray(v), or
	// reciprocal Gray(v - ref) with the R channel as the reference.
	// R itself is always direct (it is the reference).
	r := uint64(grayByte(px.R))
	gDirect := uint64(grayByte(px.G))
	gRecip := uint64(grayByte(px.G-px.R)) | 1<<24 // mode bit 24
	bDirect := uint64(grayByte(px.B))
	bRecip := uint64(grayByte(px.B-px.R)) | 1<<25 // mode bit 25

	best := uint64(0)
	bestCost := -1
	for _, g := range []uint64{gDirect, gRecip} {
		for _, b := range []uint64{bDirect, bRecip} {
			pat := r | (g&0xFF)<<8 | (b&0xFF)<<16 | (g &^ 0xFF) | (b &^ 0xFF)
			cost := 0
			if c.started {
				cost = bits.OnesCount64(c.lastPat ^ pat)
			}
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				best = pat
			}
		}
	}
	c.lastPat = best
	c.started = true
	return append(dst, best)
}

// Encode satisfies Encoder by treating the low 24 bits of word as an RGB
// pixel (R low byte).
func (c *Chromatic) Encode(dst []uint64, word uint32) []uint64 {
	return c.EncodePixel(dst, RGB{R: uint8(word), G: uint8(word >> 8), B: uint8(word >> 16)})
}

// DecodePixel inverts EncodePixel given a pattern (for correctness tests).
func DecodePixel(pat uint64) RGB {
	inv := func(g uint8) uint8 {
		// Inverse Gray.
		v := g
		for s := uint(1); s < 8; s <<= 1 {
			v ^= v >> s
		}
		return v
	}
	r := inv(uint8(pat))
	g := inv(uint8(pat >> 8))
	b := inv(uint8(pat >> 16))
	if pat>>24&1 == 1 {
		g += r
	}
	if pat>>25&1 == 1 {
		b += r
	}
	return RGB{R: r, G: g, B: b}
}

// RawPixel is the unencoded 24-bit baseline.
type RawPixel struct{}

// Name returns "raw24".
func (RawPixel) Name() string { return "raw24" }

// Lines returns 24.
func (RawPixel) Lines() int { return 24 }

// Encode emits the pixel bits unchanged.
func (RawPixel) Encode(dst []uint64, word uint32) []uint64 {
	return append(dst, uint64(word)&0xFFFFFF)
}

// Reset is a no-op.
func (RawPixel) Reset() {}

// PixelWord packs an RGB pixel into the uint32 convention used by Encode.
func PixelWord(px RGB) uint32 {
	return uint32(px.R) | uint32(px.G)<<8 | uint32(px.B)<<16
}
