package buscode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

// sequentialAddrs returns a mostly in-sequence address stream with the
// given fraction of jumps, like an instruction address bus.
func sequentialAddrs(seed int64, n int, jumpFrac float64) []uint32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]uint32, n)
	addr := uint32(0x1000)
	for i := range out {
		if r.Float64() < jumpFrac {
			addr = uint32(r.Intn(1 << 20))
		} else {
			addr += 4
		}
		out[i] = addr
	}
	return out
}

func TestGrayBeatsBinaryOnSequential(t *testing.T) {
	addrs := sequentialAddrs(1, 10000, 0.01)
	bin := Measure(&Binary{}, addrs)
	gray := Measure(&Gray{}, addrs)
	if gray.Transitions >= bin.Transitions {
		t.Errorf("gray %d >= binary %d on sequential stream", gray.Transitions, bin.Transitions)
	}
}

func TestT0NearZeroOnPureSequential(t *testing.T) {
	addrs := make([]uint32, 1000)
	for i := range addrs {
		addrs[i] = 0x400 + uint32(i)*4
	}
	t0 := &T0{Stride: 4}
	m := Measure(t0, addrs)
	// Only the INC line toggles: at most one transition per word after
	// the first two.
	if m.Transitions > uint64(len(addrs)) {
		t.Errorf("t0 transitions = %d on pure sequential stream", m.Transitions)
	}
	bin := Measure(&Binary{}, addrs)
	if m.Transitions*5 > bin.Transitions {
		t.Errorf("t0 should be dramatically below binary: %d vs %d", m.Transitions, bin.Transitions)
	}
}

func TestBusInvertNeverWorseThanBinaryPlusOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		words := make([]uint32, 200)
		for i := range words {
			words[i] = r.Uint32()
		}
		bi := Measure(&BusInvert{}, words)
		bin := Measure(&Binary{}, words)
		// Bus-invert bounds per-cycle toggles to width/2 + invert line.
		return bi.Transitions <= bin.Transitions+uint64(len(words))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBusInvertCapsHalfWidth(t *testing.T) {
	// Alternating 0x00000000 / 0xFFFFFFFF is the worst case for binary
	// (32 toggles) and the best showcase for bus-invert (1 toggle).
	words := make([]uint32, 100)
	for i := range words {
		if i%2 == 1 {
			words[i] = 0xFFFFFFFF
		}
	}
	bi := Measure(&BusInvert{}, words)
	if bi.Transitions > uint64(len(words)) {
		t.Errorf("bus-invert transitions = %d, want <= %d", bi.Transitions, len(words))
	}
}

func TestShieldedZeroCoupling(t *testing.T) {
	// The shielding guarantee must hold for ANY stream.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		words := make([]uint32, 300)
		addr := uint32(0)
		for i := range words {
			if r.Intn(10) == 0 {
				addr = r.Uint32()
			} else {
				addr += 4
			}
			words[i] = addr
		}
		m := Measure(&Shielded{Stride: 4}, words)
		return m.Couplings == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShieldedOverheadSmallOnSequential(t *testing.T) {
	addrs := sequentialAddrs(2, 20000, 0.004)
	m := Measure(&Shielded{Stride: 4}, addrs)
	if m.Lines != 33 {
		t.Fatalf("shielded lines = %d, want 33", m.Lines)
	}
	if ov := m.PerfOverhead(len(addrs)); ov > 0.01 {
		t.Errorf("shielded perf overhead = %.4f on 0.4%% jump stream, want < 1%%", ov)
	}
	bin := Measure(&Binary{}, addrs)
	if bin.Couplings == 0 {
		t.Fatal("binary baseline should suffer coupling events")
	}
}

func TestChromaticRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		c := &Chromatic{}
		var pats []uint64
		pats = c.EncodePixel(pats, RGB{r, g, b})
		got := DecodePixel(pats[0])
		return got == RGB{r, g, b}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestChromaticBeatsRawOnNaturalImages(t *testing.T) {
	pixels := SmoothRGB(7, 20000, 3.0, 2.0)
	raw := MeasurePixels(RawPixel{}, pixels)
	chr := MeasurePixels(&Chromatic{}, pixels)
	saving := 100 * float64(raw.Transitions-chr.Transitions) / float64(raw.Transitions)
	t.Logf("raw=%d chromatic=%d saving=%.1f%%", raw.Transitions, chr.Transitions, saving)
	// Moderately smooth content: savings grow toward the paper's 75%
	// envelope as content gets smoother (see TestChromaticSweep).
	if saving < 20 {
		t.Errorf("chromatic saving = %.1f%%, want >= 20%% on smooth correlated stream", saving)
	}
}

// TestEncodersOnRealFetchStream checks all address encoders against the
// instruction address stream of a real kernel.
func TestEncodersOnRealFetchStream(t *testing.T) {
	k, _ := workloads.ByName("fir")
	res := workloads.MustRun(k.Build(1))
	var addrs []uint32
	for _, a := range res.Trace.Accesses {
		if a.Kind == trace.Fetch {
			addrs = append(addrs, a.Addr)
		}
	}
	bin := Measure(&Binary{}, addrs)
	for _, enc := range []Encoder{&Gray{}, &T0{Stride: 4}, &BusInvert{}, &Shielded{Stride: 4}} {
		m := Measure(enc, addrs)
		t.Logf("%-10s lines=%d transitions=%d couplings=%d cycles=%d",
			enc.Name(), m.Lines, m.Transitions, m.Couplings, m.Cycles)
		if m.Transitions == 0 {
			t.Errorf("%s: zero transitions is implausible", enc.Name())
		}
	}
	if bin.Transitions == 0 {
		t.Fatal("binary baseline had no transitions")
	}
}
