// Package cache implements a data-holding set-associative cache simulator
// with LRU replacement, write-back/write-through and write-allocate
// policies, and hooks on refill and write-back. It is the substrate for
// the compression (E2), way-determination (E7) and stack-memory (E9)
// experiments: all of them need exact hit/miss behaviour, the way that
// served each access, and — for compression — the actual line contents
// crossing the cache/memory boundary.
//
//lint:hotpath
package cache

import (
	"fmt"

	"lpmem/internal/trace"
)

// Config describes a cache geometry and policy.
type Config struct {
	// Sets is the number of sets (power of two).
	Sets int
	// Ways is the associativity.
	Ways int
	// LineSize is the line length in bytes (power of two).
	LineSize int
	// WriteBack selects write-back (true) or write-through (false).
	WriteBack bool
	// WriteAllocate controls whether a store miss allocates the line.
	WriteAllocate bool
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d must be a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineSize)
	}
	return nil
}

// SizeBytes returns the total data capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

// Stats accumulates access outcomes.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Refills    uint64
	WriteBacks uint64
	// WriteThroughs counts words forwarded to memory by a write-through
	// cache.
	WriteThroughs uint64
}

// HitRate returns hits/accesses (0 for no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// line is one cache line with data.
type line struct {
	valid bool
	dirty bool
	tag   uint32
	lru   uint64 // last-use timestamp
	data  []byte
}

// Result describes the outcome of a single access.
type Result struct {
	// Hit reports whether the access hit.
	Hit bool
	// Way is the way that served (or was filled by) the access.
	Way int
	// WroteBack reports whether a dirty line was evicted.
	WroteBack bool
	// WriteBackAddr is the base address of the written-back line.
	WriteBackAddr uint32
	// Evicted reports whether any valid line (clean or dirty) was
	// displaced by this access.
	Evicted bool
	// EvictedAddr is the base address of the displaced line.
	EvictedAddr uint32
}

// Backing supplies refill data and absorbs write-backs. The zero-value
// NullBacking can be used when contents don't matter.
type Backing interface {
	ReadLine(addr uint32, dst []byte)
	WriteLine(addr uint32, src []byte)
}

// NullBacking ignores writes and refills zeroes.
type NullBacking struct{}

// ReadLine fills dst with zeroes.
func (NullBacking) ReadLine(_ uint32, dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
}

// WriteLine discards the line.
func (NullBacking) WriteLine(uint32, []byte) {}

// MapBacking is a simple sparse backing store.
type MapBacking struct {
	m map[uint32]byte
}

// NewMapBacking returns an empty sparse backing store.
func NewMapBacking() *MapBacking { return &MapBacking{m: make(map[uint32]byte)} }

// ReadLine copies the line at addr into dst.
func (b *MapBacking) ReadLine(addr uint32, dst []byte) {
	for i := range dst {
		dst[i] = b.m[addr+uint32(i)]
	}
}

// WriteLine stores the line at addr.
func (b *MapBacking) WriteLine(addr uint32, src []byte) {
	for i, v := range src {
		b.m[addr+uint32(i)] = v
	}
}

// StoreByte stores a single byte (used to pre-load images).
func (b *MapBacking) StoreByte(addr uint32, v byte) {
	b.m[addr] = v
}

// Cache is the simulator proper.
type Cache struct {
	cfg     Config
	sets    [][]line
	stats   Stats
	backing Backing
	clock   uint64
	// OnWriteBack, when non-nil, observes every write-back with the line
	// base address and its (pre-eviction) contents.
	OnWriteBack func(addr uint32, data []byte)
	// OnRefill, when non-nil, observes every refill with the line base
	// address and the refilled contents.
	OnRefill func(addr uint32, data []byte)

	offBits uint32
	setMask uint32
	// scratch is the write-around line buffer, reused across misses so
	// the no-allocate store path does not allocate per access. Safe
	// because Backing implementations copy rather than retain the slice.
	scratch []byte
}

// New builds a cache. A nil backing defaults to NullBacking.
func New(cfg Config, backing Backing) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backing == nil {
		backing = NullBacking{}
	}
	c := &Cache{cfg: cfg, backing: backing}
	// One flat allocation each for the way metadata and the line data,
	// sliced up per set/way: 2 allocations instead of Sets*(Ways+1), and
	// the replay loop walks contiguous memory.
	c.sets = make([][]line, cfg.Sets)
	lines := make([]line, cfg.Sets*cfg.Ways)
	data := make([]byte, cfg.Sets*cfg.Ways*cfg.LineSize)
	for i := range lines {
		lines[i].data = data[i*cfg.LineSize : (i+1)*cfg.LineSize : (i+1)*cfg.LineSize]
	}
	for i := range c.sets {
		c.sets[i] = lines[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	c.scratch = make([]byte, cfg.LineSize)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		c.offBits++
	}
	c.setMask = uint32(cfg.Sets - 1)
	return c, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config, backing Backing) *Cache {
	c, err := New(cfg, backing)
	if err != nil {
		//lint:allow panicfree Must* helper; panicking on a bad static config is the documented contract
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint32) (set uint32, tag uint32, lineBase uint32) {
	lineBase = addr &^ (uint32(c.cfg.LineSize) - 1)
	set = (addr >> c.offBits) & c.setMask
	tag = addr >> c.offBits >> trailingBits(uint32(c.cfg.Sets))
	return
}

func trailingBits(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Lookup reports whether addr is present, without disturbing LRU state or
// statistics. It returns the way index, or -1.
func (c *Cache) Lookup(addr uint32) int {
	set, tag, _ := c.index(addr)
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			return w
		}
	}
	return -1
}

// Access performs a read or write of width bytes at addr, with value used
// to update line contents on writes.
func (c *Cache) Access(addr uint32, isWrite bool, width uint8, value uint32) Result {
	c.clock++
	c.stats.Accesses++
	set, tag, lineBase := c.index(addr)
	ways := c.sets[set]

	// Hit path.
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			ways[w].lru = c.clock
			c.stats.Hits++
			if isWrite {
				c.storeToLine(&ways[w], addr, width, value)
				if c.cfg.WriteBack {
					ways[w].dirty = true
				} else {
					c.stats.WriteThroughs++
					c.backing.WriteLine(lineBase, ways[w].data)
				}
			}
			return Result{Hit: true, Way: w}
		}
	}

	// Miss path.
	c.stats.Misses++
	if isWrite && !c.cfg.WriteAllocate {
		// Write around: forward to memory, no allocation.
		c.stats.WriteThroughs++
		line := c.scratch
		c.backing.ReadLine(lineBase, line)
		storeBytes(line, addr-lineBase, width, value)
		c.backing.WriteLine(lineBase, line)
		return Result{Hit: false, Way: -1}
	}

	// Choose victim: invalid way first, else LRU.
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	res := Result{Hit: false, Way: victim}
	v := &ways[victim]
	if v.valid {
		res.Evicted = true
		res.EvictedAddr = c.rebuildAddr(v.tag, set)
	}
	if v.valid && v.dirty {
		oldBase := res.EvictedAddr
		c.stats.WriteBacks++
		res.WroteBack = true
		res.WriteBackAddr = oldBase
		if c.OnWriteBack != nil {
			c.OnWriteBack(oldBase, v.data)
		}
		c.backing.WriteLine(oldBase, v.data)
	}
	// Refill.
	c.stats.Refills++
	c.backing.ReadLine(lineBase, v.data)
	if c.OnRefill != nil {
		c.OnRefill(lineBase, v.data)
	}
	v.valid = true
	v.dirty = false
	v.tag = tag
	v.lru = c.clock
	if isWrite {
		c.storeToLine(v, addr, width, value)
		if c.cfg.WriteBack {
			v.dirty = true
		} else {
			c.stats.WriteThroughs++
			c.backing.WriteLine(lineBase, v.data)
		}
	}
	return res
}

func (c *Cache) rebuildAddr(tag, set uint32) uint32 {
	return (tag<<trailingBits(uint32(c.cfg.Sets))|set)<<c.offBits | 0
}

func (c *Cache) storeToLine(l *line, addr uint32, width uint8, value uint32) {
	off := addr & (uint32(c.cfg.LineSize) - 1)
	storeBytes(l.data, off, width, value)
}

func storeBytes(dst []byte, off uint32, width uint8, value uint32) {
	for i := uint32(0); i < uint32(width) && off+i < uint32(len(dst)); i++ {
		dst[off+i] = byte(value >> (8 * i))
	}
}

// Flush writes back all dirty lines (invoking OnWriteBack) and invalidates
// the cache. It returns the number of lines written back.
func (c *Cache) Flush() int {
	n := 0
	for set := range c.sets {
		for w := range c.sets[set] {
			l := &c.sets[set][w]
			if l.valid && l.dirty {
				base := c.rebuildAddr(l.tag, uint32(set))
				c.stats.WriteBacks++
				if c.OnWriteBack != nil {
					c.OnWriteBack(base, l.data)
				}
				c.backing.WriteLine(base, l.data)
				n++
			}
			l.valid = false
			l.dirty = false
		}
	}
	return n
}

// Replay runs a whole data trace (loads and stores; fetches are skipped)
// through the cache and returns the statistics.
func (c *Cache) Replay(t *trace.Trace) Stats {
	// A SliceCursor cannot fail, so the error is structurally nil here.
	st, _ := c.ReplayCursor(t.Cursor())
	return st
}

// ReplayCursor streams an access cursor (loads and stores; fetches are
// skipped) through the cache. It is the zero-allocation replay path:
// paired with trace.NewReader it replays a binary on-disk trace of any
// length without materialising a []Access. The returned error is the
// cursor's: a decode failure ends the replay with the statistics
// accumulated so far.
func (c *Cache) ReplayCursor(cur trace.Cursor) (Stats, error) {
	for cur.Next() {
		a := cur.Access()
		if a.Kind == trace.Fetch {
			continue
		}
		c.Access(a.Addr, a.Kind == trace.Write, a.Width, a.Value)
	}
	return c.stats, cur.Err()
}
