package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lpmem/internal/trace"
	"lpmem/internal/workloads"
)

func small() Config {
	return Config{Sets: 4, Ways: 2, LineSize: 16, WriteBack: true, WriteAllocate: true}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Sets: 3, Ways: 1, LineSize: 16},
		{Sets: 4, Ways: 0, LineSize: 16},
		{Sets: 4, Ways: 1, LineSize: 12},
		{Sets: 0, Ways: 1, LineSize: 16},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
	if err := small().Validate(); err != nil {
		t.Errorf("small config should validate: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(small(), nil)
	r1 := c.Access(0x100, false, 4, 0)
	if r1.Hit {
		t.Fatal("cold access must miss")
	}
	r2 := c.Access(0x104, false, 4, 0)
	if !r2.Hit {
		t.Fatal("same-line access must hit")
	}
	if got := c.Stats(); got.Hits != 1 || got.Misses != 1 || got.Refills != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(small(), nil)
	// Set 0 holds lines with addresses that map to set 0: line size 16,
	// 4 sets -> set = (addr>>4)&3. Addresses 0x000, 0x040, 0x080 all map
	// to set 0.
	c.Access(0x000, false, 4, 0)
	c.Access(0x040, false, 4, 0)
	c.Access(0x000, false, 4, 0) // touch line 0 so 0x040 is LRU
	c.Access(0x080, false, 4, 0) // evicts 0x040
	if c.Lookup(0x040) != -1 {
		t.Error("0x040 should have been evicted")
	}
	if c.Lookup(0x000) == -1 {
		t.Error("0x000 should still be resident")
	}
	if c.Lookup(0x080) == -1 {
		t.Error("0x080 should be resident")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	backing := NewMapBacking()
	c := MustNew(small(), backing)
	var wbAddr uint32
	wbSeen := 0
	c.OnWriteBack = func(addr uint32, data []byte) {
		wbAddr = addr
		wbSeen++
		if len(data) != 16 {
			t.Errorf("write-back data length %d, want 16", len(data))
		}
	}
	c.Access(0x000, true, 4, 0xDEADBEEF)
	c.Access(0x040, false, 4, 0)
	c.Access(0x080, false, 4, 0) // evicts 0x000 (dirty)
	if wbSeen != 1 {
		t.Fatalf("want 1 write-back, got %d", wbSeen)
	}
	if wbAddr != 0x000 {
		t.Fatalf("write-back addr = %#x, want 0", wbAddr)
	}
	// Backing must now contain the stored word.
	var buf [16]byte
	backing.ReadLine(0, buf[:])
	got := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	if got != 0xDEADBEEF {
		t.Fatalf("backing word = %#x, want 0xDEADBEEF", got)
	}
}

func TestWriteThrough(t *testing.T) {
	backing := NewMapBacking()
	cfg := small()
	cfg.WriteBack = false
	c := MustNew(cfg, backing)
	c.Access(0x20, true, 4, 0x12345678)
	if c.Stats().WriteThroughs == 0 {
		t.Fatal("write-through count should be nonzero")
	}
	var buf [16]byte
	backing.ReadLine(0x20, buf[:])
	got := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	if got != 0x12345678 {
		t.Fatalf("backing word = %#x", got)
	}
}

func TestNoWriteAllocate(t *testing.T) {
	cfg := small()
	cfg.WriteAllocate = false
	c := MustNew(cfg, NewMapBacking())
	res := c.Access(0x300, true, 4, 7)
	if res.Hit || res.Way != -1 {
		t.Fatalf("write-around miss should not allocate: %+v", res)
	}
	if c.Lookup(0x300) != -1 {
		t.Fatal("line must not be resident after write-around")
	}
}

func TestFlushWritesDirtyLines(t *testing.T) {
	c := MustNew(small(), NewMapBacking())
	c.Access(0x00, true, 4, 1)
	c.Access(0x10, true, 4, 2)
	c.Access(0x20, false, 4, 0)
	n := c.Flush()
	if n != 2 {
		t.Fatalf("flushed %d dirty lines, want 2", n)
	}
	if c.Lookup(0x00) != -1 || c.Lookup(0x20) != -1 {
		t.Fatal("flush must invalidate all lines")
	}
}

// TestCacheCoherentWithBacking is a property test: after any access
// sequence plus a flush, the backing store must hold exactly the bytes the
// access sequence would produce on a plain flat memory.
func TestCacheCoherentWithBacking(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		backing := NewMapBacking()
		c := MustNew(Config{Sets: 8, Ways: 2, LineSize: 16, WriteBack: true, WriteAllocate: true}, backing)
		flat := make(map[uint32]byte)
		for i := 0; i < int(n)+1; i++ {
			addr := uint32(r.Intn(1024)) &^ 3
			if r.Intn(2) == 0 {
				v := r.Uint32()
				c.Access(addr, true, 4, v)
				for b := uint32(0); b < 4; b++ {
					flat[addr+b] = byte(v >> (8 * b))
				}
			} else {
				c.Access(addr, false, 4, 0)
			}
		}
		c.Flush()
		var buf [16]byte
		for addr := uint32(0); addr < 1024; addr += 16 {
			backing.ReadLine(addr, buf[:])
			for i := uint32(0); i < 16; i++ {
				if buf[i] != flat[addr+i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHitRateImprovesWithSize sanity-checks the simulator against a real
// workload trace: a bigger cache must not have a lower hit rate.
func TestHitRateImprovesWithSize(t *testing.T) {
	k, _ := workloads.ByName("matmul")
	res := workloads.MustRun(k.Build(1))
	prev := -1.0
	for _, sets := range []int{4, 16, 64} {
		c := MustNew(Config{Sets: sets, Ways: 2, LineSize: 16, WriteBack: true, WriteAllocate: true}, nil)
		st := c.Replay(res.Trace)
		hr := st.HitRate()
		if hr < prev-0.001 {
			t.Errorf("hit rate decreased with size: sets=%d hr=%.3f prev=%.3f", sets, hr, prev)
		}
		prev = hr
	}
}

// TestReplaySkipsFetches ensures Replay only feeds data accesses.
func TestReplaySkipsFetches(t *testing.T) {
	tr := trace.New(4)
	tr.Append(trace.Access{Addr: 0, Kind: trace.Fetch, Width: 4})
	tr.Append(trace.Access{Addr: 16, Kind: trace.Read, Width: 4})
	c := MustNew(small(), nil)
	st := c.Replay(tr)
	if st.Accesses != 1 {
		t.Fatalf("accesses = %d, want 1", st.Accesses)
	}
}
