package cache

import (
	"bytes"
	"sync"
	"testing"

	"lpmem/internal/trace"
)

// benchTraceLen is the replay length of the streaming benchmarks: a
// full million-access trace, the scale the binary format exists for.
const benchTraceLen = 1 << 20

var benchCacheCfg = Config{Sets: 256, Ways: 4, LineSize: 32, WriteBack: true, WriteAllocate: true}

// benchTraceEncoded memoises a 2^20-access synthetic trace in both
// formats so every benchmark replays identical accesses.
var benchTraceEncoded = sync.OnceValue(func() (enc struct{ bin, text []byte }) {
	tr := trace.Synthesize(trace.SynthConfig{
		Seed: 42,
		N:    benchTraceLen,
		Regions: []trace.Region{
			{Base: 0x1000, Size: 64 << 10, Weight: 8, Stride: 4},
			{Base: 0x100000, Size: 1 << 20, Weight: 2},
			{Base: 0x8000000, Size: 8 << 20, Weight: 1},
		},
		WriteFraction: 0.3,
	})
	var bin, text bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		panic(err)
	}
	if err := tr.WriteText(&text); err != nil {
		panic(err)
	}
	enc.bin = bin.Bytes()
	enc.text = text.Bytes()
	return enc
})

// BenchmarkReplayBinaryCursor is the zero-allocation fast path: stream
// a binary trace through the cache without materialising a []Access.
// One op = one full million-access replay, so per-op allocations are
// the *per-replay* constant (cache image, reader buffers) and the
// per-access allocation count must be exactly zero — asserted by
// TestBinaryReplayZeroAllocPerAccess.
func BenchmarkReplayBinaryCursor(b *testing.B) {
	enc := benchTraceEncoded().bin
	b.ReportAllocs()
	b.SetBytes(benchTraceLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := MustNew(benchCacheCfg, nil)
		r, err := trace.NewReader(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		st, err := c.ReplayCursor(r)
		if err != nil {
			b.Fatal(err)
		}
		if st.Accesses != benchTraceLen {
			b.Fatalf("replayed %d accesses, want %d", st.Accesses, benchTraceLen)
		}
	}
}

// BenchmarkReplayTextMaterialised is the old slow path for comparison:
// parse the text format into a []Access, then replay it.
func BenchmarkReplayTextMaterialised(b *testing.B) {
	enc := benchTraceEncoded().text
	b.ReportAllocs()
	b.SetBytes(benchTraceLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := trace.ReadText(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		c := MustNew(benchCacheCfg, nil)
		st := c.Replay(tr)
		if st.Accesses != benchTraceLen {
			b.Fatalf("replayed %d accesses, want %d", st.Accesses, benchTraceLen)
		}
	}
}

// TestBinaryReplayZeroAllocPerAccess is the acceptance gate for the
// streaming replay path: replaying a million-access binary trace must
// allocate 0 bytes and 0 objects per access. The per-op totals of the
// benchmark are the per-replay constants (cache image, bufio reader,
// column buffers); tight absolute caps keep "0 per access" from hiding
// a creeping constant, and the per-access division is the headline
// number recorded in BENCH_PR8.json.
func TestBinaryReplayZeroAllocPerAccess(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrated benchmark run; skipped in -short")
	}
	res := testing.Benchmark(BenchmarkReplayBinaryCursor)
	allocsPerAccess := res.AllocsPerOp() / benchTraceLen
	bytesPerAccess := res.AllocedBytesPerOp() / benchTraceLen
	if allocsPerAccess != 0 || bytesPerAccess != 0 {
		t.Fatalf("binary cursor replay allocates %d allocs / %d bytes per access, want 0/0 (per replay: %d allocs, %d bytes)",
			allocsPerAccess, bytesPerAccess, res.AllocsPerOp(), res.AllocedBytesPerOp())
	}
	// Per-replay constants: a handful of fixed structures, nothing that
	// scales with trace length.
	if res.AllocsPerOp() > 256 {
		t.Fatalf("binary cursor replay performs %d allocations per million-access replay; setup is no longer O(1)",
			res.AllocsPerOp())
	}
	if res.AllocedBytesPerOp() > 1<<20 {
		t.Fatalf("binary cursor replay allocates %d bytes per million-access replay; setup is no longer O(block)",
			res.AllocedBytesPerOp())
	}
}
