package cache_test

import (
	"math/rand"
	"testing"

	"lpmem/internal/cache"
	"lpmem/internal/trace"
)

// randomConfig draws a well-formed geometry: power-of-two sets and line
// size, small associativity, random policies.
func randomConfig(r *rand.Rand) cache.Config {
	return cache.Config{
		Sets:          1 << r.Intn(7),
		Ways:          1 + r.Intn(4),
		LineSize:      4 << r.Intn(5),
		WriteBack:     r.Intn(2) == 0,
		WriteAllocate: r.Intn(2) == 0,
	}
}

// randomTrace draws width-aligned reads and writes over an address pool
// small enough to produce both hits and conflict misses.
func randomTrace(r *rand.Rand) *trace.Trace {
	widths := []uint8{1, 2, 4}
	t := trace.New(256)
	span := uint32(1) << (8 + r.Intn(8))
	for i, n := 0, 16+r.Intn(512); i < n; i++ {
		w := widths[r.Intn(len(widths))]
		a := trace.Access{
			Addr:  (r.Uint32() % span) &^ uint32(w-1),
			Value: r.Uint32(),
			Width: w,
			Kind:  trace.Read,
		}
		if r.Intn(3) == 0 {
			a.Kind = trace.Write
		}
		t.Append(a)
	}
	return t
}

// TestReplayStatsInvariants: across random geometries, policies and
// traces, the accounting identities every experiment table is built on
// must hold — hit rate in [0,1], hits+misses == accesses, and refills
// never exceeding misses.
func TestReplayStatsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		cfg := randomConfig(r)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced bad config: %v", trial, err)
		}
		c, err := cache.New(cfg, cache.NewMapBacking())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tr := randomTrace(r)
		st := c.Replay(tr)
		if hr := st.HitRate(); hr < 0 || hr > 1 {
			t.Fatalf("trial %d: hit rate %v outside [0,1] (cfg %+v)", trial, hr, cfg)
		}
		if st.Hits+st.Misses != st.Accesses {
			t.Fatalf("trial %d: hits %d + misses %d != accesses %d (cfg %+v)",
				trial, st.Hits, st.Misses, st.Accesses, cfg)
		}
		if st.Accesses != uint64(tr.Len()) {
			t.Fatalf("trial %d: %d accesses counted for a %d-access trace", trial, st.Accesses, tr.Len())
		}
		if st.Refills > st.Misses {
			t.Fatalf("trial %d: refills %d > misses %d (cfg %+v)", trial, st.Refills, st.Misses, cfg)
		}
		if !cfg.WriteBack && st.WriteBacks != 0 {
			t.Fatalf("trial %d: write-through cache recorded %d write-backs", trial, st.WriteBacks)
		}
		// Flushing after the run can only write back lines that exist.
		if flushed := c.Flush(); flushed > cfg.Sets*cfg.Ways {
			t.Fatalf("trial %d: flushed %d lines from a %d-line cache", trial, flushed, cfg.Sets*cfg.Ways)
		}
	}
}

// TestEmptyTraceHitRate: the documented zero-accesses convention.
func TestEmptyTraceHitRate(t *testing.T) {
	var st cache.Stats
	if st.HitRate() != 0 {
		t.Fatalf("empty stats hit rate %v, want 0", st.HitRate())
	}
}
