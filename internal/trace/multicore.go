package trace

import (
	"fmt"
	"math/rand"
)

// Multi-core interleaved synthetic streams.
//
// A chip-multiprocessor's shared last-level cache sees one interleaved
// reference stream tagged with the issuing core. The generators here
// model the three canonical CMP sharing shapes the NUCA experiments
// sweep: fully private working sets (each core streams over its own
// arrays), a shared read-mostly region (one copy of common data serves
// every core), and pairwise producer-consumer rings (core c writes what
// core c+1 reads). All are deterministic given the seed, and values
// follow per-core random walks with small steps so the differential
// line codec sees the value locality real media/DSP data has.

// SharingPattern names a multi-core access-stream shape.
type SharingPattern string

// The modelled sharing patterns.
const (
	// SharingPrivate gives every core a disjoint working set.
	SharingPrivate SharingPattern = "private"
	// SharingShared directs a fraction of every core's accesses at one
	// common read-mostly region walked by all cores.
	SharingShared SharingPattern = "shared"
	// SharingProducerConsumer streams data through per-pair ring
	// buffers: core c produces into ring c, core (c+1) mod N consumes it.
	SharingProducerConsumer SharingPattern = "producer-consumer"
)

// SharingPatterns lists the patterns in canonical order.
func SharingPatterns() []SharingPattern {
	return []SharingPattern{SharingPrivate, SharingShared, SharingProducerConsumer}
}

// MultiCoreConfig parameterises SynthesizeMultiCore.
type MultiCoreConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Cores is the number of cores interleaved into the stream (1..256).
	Cores int
	// AccessesPerCore is the number of accesses each core issues.
	AccessesPerCore int
	// Pattern selects the sharing shape.
	Pattern SharingPattern
	// SharedFraction in [0,1] is the probability an access targets the
	// shared region (SharingShared) or a ring buffer
	// (SharingProducerConsumer); ignored for SharingPrivate. Zero
	// defaults to 0.4.
	SharedFraction float64
	// PrivateBytes is each core's private footprint. Zero defaults to
	// 64 KiB.
	PrivateBytes uint32
	// SharedBytes is the footprint of the shared region or of the ring
	// buffer pool. Zero defaults to 128 KiB.
	SharedBytes uint32
	// WriteFraction in [0,1] is the store probability of private
	// accesses. Zero defaults to 0.25.
	WriteFraction float64
}

// withDefaults fills the zero-value knobs.
func (cfg MultiCoreConfig) withDefaults() MultiCoreConfig {
	if cfg.SharedFraction == 0 {
		cfg.SharedFraction = 0.4
	}
	if cfg.PrivateBytes == 0 {
		cfg.PrivateBytes = 64 << 10
	}
	if cfg.SharedBytes == 0 {
		cfg.SharedBytes = 128 << 10
	}
	if cfg.WriteFraction == 0 {
		cfg.WriteFraction = 0.25
	}
	return cfg
}

// validate rejects configurations no hardware could mean.
func (cfg MultiCoreConfig) validate() error {
	if cfg.Cores < 1 || cfg.Cores > 256 {
		return fmt.Errorf("trace: multi-core synth needs 1..256 cores, got %d", cfg.Cores)
	}
	if cfg.AccessesPerCore < 0 {
		return fmt.Errorf("trace: negative accesses per core %d", cfg.AccessesPerCore)
	}
	switch cfg.Pattern {
	case SharingPrivate, SharingShared, SharingProducerConsumer:
	default:
		return fmt.Errorf("trace: unknown sharing pattern %q", cfg.Pattern)
	}
	if cfg.SharedFraction < 0 || cfg.SharedFraction > 1 {
		return fmt.Errorf("trace: shared fraction %v outside [0,1]", cfg.SharedFraction)
	}
	if cfg.WriteFraction < 0 || cfg.WriteFraction > 1 {
		return fmt.Errorf("trace: write fraction %v outside [0,1]", cfg.WriteFraction)
	}
	return nil
}

// coreState is the per-core generation state.
type coreState struct {
	// privCursor walks the core's private region with stride 4,
	// occasionally jumping (a loop nest over a few arrays).
	privCursor uint32
	// sharedCursor walks the shared region (SharingShared).
	sharedCursor uint32
	// prodPos and consPos are the core's ring write position and its
	// read position into the predecessor's ring.
	prodPos, consPos uint32
	// value is the core's value random walk.
	value uint32
	// issued counts the accesses the core has produced so far.
	issued int
}

// SynthesizeMultiCore generates one interleaved multi-core trace. Each
// core issues exactly cfg.AccessesPerCore accesses; the interleaving
// order is a seeded uniform shuffle over the cores with outstanding
// work, so the stream has no fixed round-robin phase for a banked cache
// to resonate with. The returned trace has MultiCore set.
func SynthesizeMultiCore(cfg MultiCoreConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Cores * cfg.AccessesPerCore
	t := New(total)
	t.MultiCore = true

	// Address map: per-core private regions first, shared pool after.
	privBase := func(c int) uint32 { return uint32(c) * cfg.PrivateBytes }
	sharedBase := uint32(cfg.Cores) * cfg.PrivateBytes
	ringBytes := cfg.SharedBytes / uint32(cfg.Cores)
	ringBytes &^= 3
	if ringBytes < 64 {
		ringBytes = 64
	}
	ringBase := func(c int) uint32 { return sharedBase + uint32(c)*ringBytes }

	cores := make([]coreState, cfg.Cores)
	for c := range cores {
		// Each core starts its walks at a seeded phase of its own, so
		// private footprints overlap in time but not in address.
		cores[c].privCursor = uint32(rng.Intn(int(cfg.PrivateBytes/4))) * 4 % cfg.PrivateBytes
		cores[c].value = rng.Uint32()
		// Producer and consumer both start at the ring head; the coin
		// flip between produce and consume keeps them tracking each
		// other, so consumed lines really were produced recently.
	}

	// live tracks cores that still owe accesses; the pick below stays
	// uniform over them, so completion order is seed-dependent but the
	// per-core counts are exact.
	live := make([]int, cfg.Cores)
	for c := range live {
		live[c] = c
	}
	for len(live) > 0 {
		li := rng.Intn(len(live))
		c := live[li]
		st := &cores[c]

		var a Access
		a.Core = uint8(c)
		a.Width = 4
		// Value random walk: adjacent values differ by a small signed
		// step, the locality the differential codec keys on.
		st.value += uint32(rng.Intn(1024)) - 512
		a.Value = st.value

		shared := cfg.Pattern != SharingPrivate && rng.Float64() < cfg.SharedFraction
		switch {
		case !shared:
			// Private strided walk with occasional jumps between arrays.
			if rng.Intn(64) == 0 {
				st.privCursor = uint32(rng.Intn(int(cfg.PrivateBytes/4))) * 4
			}
			a.Addr = privBase(c) + st.privCursor%cfg.PrivateBytes
			st.privCursor += 4
			a.Kind = Read
			if rng.Float64() < cfg.WriteFraction {
				a.Kind = Write
			}
		case cfg.Pattern == SharingShared:
			// Read-mostly walk over the one shared image; every core
			// touches the same addresses, so a shared cache keeps one
			// copy where private caches would keep N.
			if rng.Intn(32) == 0 {
				st.sharedCursor = uint32(rng.Intn(int(cfg.SharedBytes/4))) * 4
			}
			a.Addr = sharedBase + st.sharedCursor%cfg.SharedBytes
			st.sharedCursor += 4
			a.Kind = Read
			if rng.Intn(16) == 0 { // rare shared writes (reduction variables)
				a.Kind = Write
			}
		default: // SharingProducerConsumer
			if rng.Intn(2) == 0 {
				// Produce: write the next word of this core's ring.
				a.Addr = ringBase(c) + st.prodPos
				st.prodPos = (st.prodPos + 4) % ringBytes
				a.Kind = Write
			} else {
				// Consume: read the predecessor's ring at a lagged offset.
				pred := (c + cfg.Cores - 1) % cfg.Cores
				a.Addr = ringBase(pred) + st.consPos
				st.consPos = (st.consPos + 4) % ringBytes
				a.Kind = Read
			}
		}

		t.Append(a)
		st.issued++
		if st.issued == cfg.AccessesPerCore {
			live[li] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return t, nil
}
