package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Trace {
	t := New(4)
	t.Append(Access{Addr: 0x1000, Value: 0xAB, Width: 4, Kind: Read})
	t.Append(Access{Addr: 0x1004, Value: 0xCD, Width: 2, Kind: Write})
	t.Append(Access{Addr: 0x0000, Value: 0x11, Width: 4, Kind: Fetch})
	t.Append(Access{Addr: 0x2000, Value: 0x22, Width: 1, Kind: Read})
	return t
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Read: "R", Write: "W", Fetch: "F", Kind(9): "?"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", k, got, want)
		}
	}
	if _, err := ParseKind("Z"); err == nil {
		t.Error("ParseKind(Z) should fail")
	}
}

func TestFilterAndData(t *testing.T) {
	tr := sample()
	data := tr.Data()
	if data.Len() != 3 {
		t.Fatalf("Data() kept %d accesses, want 3", data.Len())
	}
	for _, a := range data.Accesses {
		if a.Kind == Fetch {
			t.Fatal("Data() must drop fetches")
		}
	}
	if tr.Len() != 4 {
		t.Fatal("Filter must not mutate the receiver")
	}
}

func TestRemap(t *testing.T) {
	tr := sample()
	out := tr.Remap(func(a uint32) uint32 { return a + 0x100 })
	if out.Accesses[0].Addr != 0x1100 {
		t.Fatalf("remapped addr = %#x", out.Accesses[0].Addr)
	}
	if tr.Accesses[0].Addr != 0x1000 {
		t.Fatal("Remap must not mutate the receiver")
	}
}

func TestAddressRange(t *testing.T) {
	tr := sample()
	lo, hi, ok := tr.AddressRange()
	if !ok || lo != 0 || hi != 0x2000 {
		t.Fatalf("range = (%#x,%#x,%v)", lo, hi, ok)
	}
	if _, _, ok := New(0).AddressRange(); ok {
		t.Fatal("empty trace must report !ok")
	}
}

func TestProfileOf(t *testing.T) {
	tr := sample()
	p := ProfileOf(tr, 0x1000)
	if p.Total != 4 {
		t.Fatalf("total = %d", p.Total)
	}
	if p.Counts[0x1000] != 2 || p.Counts[0x0000] != 1 || p.Counts[0x2000] != 1 {
		t.Fatalf("counts = %v", p.Counts)
	}
	blocks := p.Blocks()
	if len(blocks) != 3 || blocks[0] != 0 || blocks[2] != 0x2000 {
		t.Fatalf("blocks = %v", blocks)
	}
	hot := p.Hot(1)
	if len(hot) != 1 || hot[0] != 0x1000 {
		t.Fatalf("hot = %v", hot)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two block size must panic")
		}
	}()
	ProfileOf(tr, 3)
}

// TestTextRoundTrip: WriteText then ReadText is the identity.
func TestTextRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("lengths differ: %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Accesses {
		if tr.Accesses[i] != back.Accesses[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, tr.Accesses[i], back.Accesses[i])
		}
	}
}

// TestTextRoundTripProperty extends the round-trip to arbitrary accesses.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, kinds []uint8) bool {
		tr := New(len(addrs))
		for i, a := range addrs {
			k := Read
			if i < len(kinds) {
				k = Kind(kinds[i] % 3)
			}
			tr.Append(Access{Addr: a, Value: a ^ 0xFFFF, Width: 4, Kind: k})
		}
		var buf bytes.Buffer
		if err := tr.WriteText(&buf); err != nil {
			return false
		}
		back, err := ReadText(&buf)
		if err != nil || back.Len() != tr.Len() {
			return false
		}
		for i := range tr.Accesses {
			if tr.Accesses[i] != back.Accesses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"R 1000",      // too few fields
		"Z 1000 4 0",  // bad kind
		"R zz 4 0",    // bad addr
		"R 1000 x 0",  // bad width
		"R 1000 4 zz", // bad value
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("line %q should fail to parse", c)
		}
	}
	// Comments and blanks are fine.
	tr, err := ReadText(strings.NewReader("# comment\n\nR 10 4 ff\n"))
	if err != nil || tr.Len() != 1 {
		t.Fatalf("comment handling broken: %v len=%d", err, tr.Len())
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthConfig{
		Seed: 5, N: 1000,
		Regions:       []Region{{Base: 0, Size: 4096, Weight: 1, Stride: 4}, {Base: 8192, Size: 4096, Weight: 2}},
		WriteFraction: 0.5,
	}
	a := Synthesize(cfg)
	b := Synthesize(cfg)
	if a.Len() != 1000 || b.Len() != 1000 {
		t.Fatal("wrong length")
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatal("Synthesize is not deterministic")
		}
	}
	var writes int
	for _, acc := range a.Accesses {
		if acc.Kind == Write {
			writes++
		}
	}
	if writes < 400 || writes > 600 {
		t.Errorf("write fraction off: %d/1000", writes)
	}
}

func TestSynthesizeRespectsRegions(t *testing.T) {
	cfg := SynthConfig{
		Seed:    9,
		N:       500,
		Regions: []Region{{Base: 0x1000, Size: 256, Weight: 1, Stride: 4}},
	}
	tr := Synthesize(cfg)
	for _, a := range tr.Accesses {
		if a.Addr < 0x1000 || a.Addr >= 0x1100 {
			t.Fatalf("access %#x outside region", a.Addr)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty regions must panic")
		}
	}()
	Synthesize(SynthConfig{N: 1})
}

func TestGaussianPixels(t *testing.T) {
	px := GaussianPixels(3, 10000, 2.0)
	if len(px) != 10000 {
		t.Fatal("wrong length")
	}
	// Adjacent deltas should be small on average for small sigma.
	sum := 0.0
	for i := 1; i < len(px); i++ {
		d := float64(px[i]) - float64(px[i-1])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	if avg := sum / float64(len(px)-1); avg > 4 {
		t.Errorf("avg |delta| = %.2f, want small for sigma=2", avg)
	}
}

func TestInterleavedArrays(t *testing.T) {
	tr := InterleavedArrays(1, 10, []uint32{0x1000, 0x2000, 0x3000}, 4)
	if tr.Len() != 30 {
		t.Fatalf("len = %d, want 30", tr.Len())
	}
	// Last array per iteration is written.
	if tr.Accesses[2].Kind != Write || tr.Accesses[0].Kind != Read {
		t.Fatal("read/write pattern wrong")
	}
	if tr.Accesses[3].Addr != 0x1004 {
		t.Fatalf("stride wrong: %#x", tr.Accesses[3].Addr)
	}
}
