package trace

import (
	"bytes"
	"testing"
)

// fuzzSeedBinary encodes a small trace so the fuzzer starts from valid
// encodings and mutates its way into the interesting corruption space
// (header, varint boundaries, delta chains, column framing).
func fuzzSeedBinary(accesses []Access) []byte {
	return fuzzSeedBinaryFlagged(accesses, false)
}

// fuzzSeedBinaryFlagged is fuzzSeedBinary with an explicit MultiCore
// flag, seeding the five-column (core column) encoding path.
func fuzzSeedBinaryFlagged(accesses []Access, multiCore bool) []byte {
	t := New(len(accesses))
	t.MultiCore = multiCore
	for _, a := range accesses {
		t.Append(a)
	}
	var buf bytes.Buffer
	if err := t.WriteBinary(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadBinary checks the binary decoder on arbitrary bytes: it must
// never panic or over-allocate, and any input it accepts must survive a
// WriteBinary → ReadBinary round-trip bit-identically. The streaming
// Reader and the materialising ReadBinary must also agree on every
// input — same accesses on success, and they must agree on whether the
// input is acceptable at all.
func FuzzReadBinary(f *testing.F) {
	valid := fuzzSeedBinary([]Access{
		{Kind: Read, Addr: 0x10, Width: 4, Value: 0xff},
		{Kind: Write, Addr: 0x20, Width: 2, Value: 1},
		{Kind: Fetch, Addr: 0, Width: 4, Value: 0xdeadbeef},
		{Kind: Read, Addr: 0xffffffff, Width: 1, Value: 0},
	})
	f.Add(valid)
	f.Add(fuzzSeedBinary(nil)) // header-only: the empty trace
	f.Add(fuzzSeedBinary([]Access{{Kind: Write, Addr: 0xffffffff, Width: 255, Value: 0xffffffff}}))

	// Multi-core encodings: flag bit 0 set, fifth (core) column present.
	f.Add(fuzzSeedBinaryFlagged([]Access{
		{Kind: Read, Addr: 0x10, Width: 4, Value: 0xff, Core: 0},
		{Kind: Write, Addr: 0x20, Width: 2, Value: 1, Core: 3},
		{Kind: Read, Addr: 0x24, Width: 4, Value: 2, Core: 255},
		{Kind: Fetch, Addr: 0x100, Width: 4, Value: 3, Core: 1},
	}, true))
	f.Add(fuzzSeedBinaryFlagged(nil, true)) // flagged empty trace

	// Header corruption: wrong magic, future version, reserved flags,
	// truncated mid-header.
	f.Add([]byte("LPMX\x01\x00"))
	f.Add([]byte("LPMT\x7f\x00"))
	f.Add([]byte("LPMT\x01\xff"))
	f.Add([]byte("LPM"))

	// Varint corruption: a block count that never terminates, and one
	// far beyond maxBlockAccesses.
	f.Add([]byte("LPMT\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("LPMT\x01\x00\x80\x80\x80\x80\x08"))

	// Delta/framing corruption: flip a byte inside a valid encoding's
	// column region, and truncate a column mid-way.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x55
	f.Add(flipped)
	f.Add(valid[:len(valid)-2])

	f.Fuzz(func(t *testing.T, input []byte) {
		t1, err := ReadBinary(bytes.NewReader(input))

		// The streaming Reader must agree with the materialised path.
		sr, srErr := NewReader(bytes.NewReader(input))
		if srErr != nil {
			if err == nil {
				t.Fatalf("NewReader rejected input ReadBinary accepted: %v", srErr)
			}
			return
		}
		var streamed []Access
		for sr.Next() {
			streamed = append(streamed, *sr.Access())
		}
		if (sr.Err() == nil) != (err == nil) {
			t.Fatalf("stream/materialise disagree: Reader err %v, ReadBinary err %v", sr.Err(), err)
		}
		if err != nil {
			return // rejected input: only no-panic and agreement are required
		}
		if sr.MultiCore() != t1.MultiCore {
			t.Fatalf("stream/materialise disagree on MultiCore: %v vs %v", sr.MultiCore(), t1.MultiCore)
		}
		if len(streamed) != len(t1.Accesses) {
			t.Fatalf("stream decoded %d accesses, materialise %d", len(streamed), len(t1.Accesses))
		}
		for i := range streamed {
			if streamed[i] != t1.Accesses[i] {
				t.Fatalf("access %d diverged: stream %+v, materialise %+v", i, streamed[i], t1.Accesses[i])
			}
		}

		// Accepted input must round-trip bit-identically through the
		// canonical encoder.
		var buf bytes.Buffer
		if err := t1.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary on decoded trace: %v", err)
		}
		t2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-read of WriteBinary output: %v", err)
		}
		if t1.MultiCore != t2.MultiCore {
			t.Fatalf("round-trip changed MultiCore: %v -> %v", t1.MultiCore, t2.MultiCore)
		}
		if len(t1.Accesses) != len(t2.Accesses) {
			t.Fatalf("round-trip length %d -> %d", len(t1.Accesses), len(t2.Accesses))
		}
		for i := range t1.Accesses {
			if t1.Accesses[i] != t2.Accesses[i] {
				t.Fatalf("access %d changed: %+v -> %+v", i, t1.Accesses[i], t2.Accesses[i])
			}
		}
	})
}
