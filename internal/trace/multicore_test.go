package trace

import (
	"bytes"
	"strings"
	"testing"
)

// multiCoreTrace builds one interleaved trace per sharing pattern for
// the serialisation tests.
func multiCoreTrace(t *testing.T, pattern SharingPattern, cores, perCore int) *Trace {
	t.Helper()
	tr, err := SynthesizeMultiCore(MultiCoreConfig{
		Seed:            42,
		Cores:           cores,
		AccessesPerCore: perCore,
		Pattern:         pattern,
	})
	if err != nil {
		t.Fatalf("SynthesizeMultiCore(%s): %v", pattern, err)
	}
	return tr
}

func TestSynthesizeMultiCoreDeterministic(t *testing.T) {
	for _, pattern := range SharingPatterns() {
		a := multiCoreTrace(t, pattern, 4, 500)
		b := multiCoreTrace(t, pattern, 4, 500)
		if a.Len() != 4*500 {
			t.Fatalf("%s: want %d accesses, got %d", pattern, 4*500, a.Len())
		}
		if !a.MultiCore {
			t.Fatalf("%s: synthesised trace not marked MultiCore", pattern)
		}
		if a.CoreCount() != 4 {
			t.Fatalf("%s: CoreCount = %d, want 4", pattern, a.CoreCount())
		}
		for i := range a.Accesses {
			if a.Accesses[i] != b.Accesses[i] {
				t.Fatalf("%s: access %d differs across identical seeds: %+v vs %+v",
					pattern, i, a.Accesses[i], b.Accesses[i])
			}
		}
	}
}

func TestSynthesizeMultiCorePerCoreCounts(t *testing.T) {
	const cores, perCore = 6, 333
	for _, pattern := range SharingPatterns() {
		tr := multiCoreTrace(t, pattern, cores, perCore)
		counts := make([]int, cores)
		for _, a := range tr.Accesses {
			if int(a.Core) >= cores {
				t.Fatalf("%s: core ID %d out of range", pattern, a.Core)
			}
			counts[a.Core]++
		}
		for c, n := range counts {
			if n != perCore {
				t.Fatalf("%s: core %d issued %d accesses, want %d", pattern, c, n, perCore)
			}
		}
	}
}

func TestSynthesizeMultiCoreSharingShapes(t *testing.T) {
	// Private pattern: per-core address ranges must be disjoint.
	priv := multiCoreTrace(t, SharingPrivate, 4, 2000)
	const footprint = 64 << 10 // default PrivateBytes
	for _, a := range priv.Accesses {
		region := a.Addr / footprint
		if region != uint32(a.Core) {
			t.Fatalf("private pattern: core %d touched address %#x in core %d's region",
				a.Core, a.Addr, region)
		}
	}

	// Shared pattern: at least two cores must touch a common address.
	shared := multiCoreTrace(t, SharingShared, 4, 2000)
	byAddr := make(map[uint32]uint8)
	overlap := false
	for _, a := range shared.Accesses {
		if prev, ok := byAddr[a.Addr]; ok && prev != a.Core {
			overlap = true
			break
		}
		byAddr[a.Addr] = a.Core
	}
	if !overlap {
		t.Fatal("shared pattern: no address was touched by two cores")
	}

	// Producer-consumer: some address must be written by one core and
	// read by its successor.
	pc := multiCoreTrace(t, SharingProducerConsumer, 4, 2000)
	writers := make(map[uint32]uint8)
	for _, a := range pc.Accesses {
		if a.Kind == Write {
			writers[a.Addr] = a.Core
		}
	}
	crossRead := false
	for _, a := range pc.Accesses {
		if a.Kind == Read {
			if w, ok := writers[a.Addr]; ok && w != a.Core {
				crossRead = true
				break
			}
		}
	}
	if !crossRead {
		t.Fatal("producer-consumer pattern: no cross-core read of a written address")
	}
}

func TestSynthesizeMultiCoreValidation(t *testing.T) {
	cases := []MultiCoreConfig{
		{Cores: 0, AccessesPerCore: 10, Pattern: SharingPrivate},
		{Cores: 257, AccessesPerCore: 10, Pattern: SharingPrivate},
		{Cores: 2, AccessesPerCore: -1, Pattern: SharingPrivate},
		{Cores: 2, AccessesPerCore: 10, Pattern: "exotic"},
		{Cores: 2, AccessesPerCore: 10, Pattern: SharingShared, SharedFraction: 1.5},
		{Cores: 2, AccessesPerCore: 10, Pattern: SharingPrivate, WriteFraction: -0.1},
	}
	for i, cfg := range cases {
		if _, err := SynthesizeMultiCore(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}

// TestMultiCoreTextRoundTrip checks the five-field text shape survives
// text → trace → text byte-identically, with MultiCore intact.
func TestMultiCoreTextRoundTrip(t *testing.T) {
	tr := multiCoreTrace(t, SharingProducerConsumer, 3, 400)
	var first bytes.Buffer
	if err := tr.WriteText(&first); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !got.MultiCore {
		t.Fatal("five-field text read back without MultiCore set")
	}
	var second bytes.Buffer
	if err := got.WriteText(&second); err != nil {
		t.Fatalf("re-WriteText: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("multi-core text round-trip not byte-identical")
	}
}

// TestMultiCoreBinaryRoundTrip checks text → binary → text: the LPMT
// core column must preserve every CoreID so the regenerated text is
// byte-identical to the original.
func TestMultiCoreBinaryRoundTrip(t *testing.T) {
	for _, pattern := range SharingPatterns() {
		tr := multiCoreTrace(t, pattern, 5, 3000)
		var text1 bytes.Buffer
		if err := tr.WriteText(&text1); err != nil {
			t.Fatalf("%s: WriteText: %v", pattern, err)
		}
		parsed, err := ReadText(bytes.NewReader(text1.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadText: %v", pattern, err)
		}
		var bin bytes.Buffer
		if err := parsed.WriteBinary(&bin); err != nil {
			t.Fatalf("%s: WriteBinary: %v", pattern, err)
		}
		decoded, err := ReadBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadBinary: %v", pattern, err)
		}
		if !decoded.MultiCore {
			t.Fatalf("%s: binary decode dropped MultiCore", pattern)
		}
		var text2 bytes.Buffer
		if err := decoded.WriteText(&text2); err != nil {
			t.Fatalf("%s: re-WriteText: %v", pattern, err)
		}
		if !bytes.Equal(text1.Bytes(), text2.Bytes()) {
			t.Fatalf("%s: text→binary→text not byte-identical", pattern)
		}
	}
}

// TestMultiCoreStreamingMatchesMaterialised replays an interleaved
// binary stream through the streaming Reader and compares every access
// — including Core — against the materialised decode.
func TestMultiCoreStreamingMatchesMaterialised(t *testing.T) {
	tr := multiCoreTrace(t, SharingShared, 8, 2500)
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	raw := bin.Bytes()

	mat, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	sr, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if !sr.MultiCore() {
		t.Fatal("streaming Reader did not report MultiCore")
	}
	i := 0
	for sr.Next() {
		if i >= mat.Len() {
			t.Fatalf("stream produced more than %d accesses", mat.Len())
		}
		if *sr.Access() != mat.Accesses[i] {
			t.Fatalf("access %d: stream %+v, materialised %+v", i, *sr.Access(), mat.Accesses[i])
		}
		i++
	}
	if err := sr.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if i != mat.Len() {
		t.Fatalf("stream produced %d accesses, materialised %d", i, mat.Len())
	}
}

func TestReadTextRejectsMixedCoreShape(t *testing.T) {
	const mixed = "R 10 4 ff 0\nW 20 4 1\n"
	if _, err := ReadText(strings.NewReader(mixed)); err == nil {
		t.Fatal("mixed 4- and 5-field input accepted")
	} else if !strings.Contains(err.Error(), "mixed") {
		t.Fatalf("unexpected error for mixed input: %v", err)
	}
	// And the opposite order.
	const mixed2 = "W 20 4 1\nR 10 4 ff 0\n"
	if _, err := ReadText(strings.NewReader(mixed2)); err == nil {
		t.Fatal("mixed 5- after 4-field input accepted")
	}
}

func TestReadTextRejectsBadCore(t *testing.T) {
	for _, bad := range []string{"R 10 4 ff 256\n", "R 10 4 ff -1\n", "R 10 4 ff x\n"} {
		if _, err := ReadText(strings.NewReader(bad)); err == nil {
			t.Fatalf("bad core field accepted: %q", bad)
		}
	}
}

// TestSingleCoreWriterRejectsCoreID pins the guard that keeps core IDs
// from being silently dropped by the four-column encoding.
func TestSingleCoreWriterRejectsCoreID(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Write(Access{Kind: Read, Addr: 4, Width: 4, Core: 3}); err == nil {
		t.Fatal("single-core writer accepted an access with a core ID")
	}
}

// TestMultiCoreFlagWithoutCores pins the other direction: a MultiCore
// trace whose accesses all come from core 0 must still round-trip with
// the flag (and the core column) intact.
func TestMultiCoreFlagWithoutCores(t *testing.T) {
	tr := New(2)
	tr.MultiCore = true
	tr.Append(Access{Kind: Read, Addr: 0x10, Width: 4, Value: 1})
	tr.Append(Access{Kind: Write, Addr: 0x14, Width: 4, Value: 2})
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&bin)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !got.MultiCore {
		t.Fatal("all-core-0 multi-core trace lost its flag")
	}
}
