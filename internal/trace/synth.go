package trace

import "math/rand"

// Synthetic trace generators.
//
// The generators model the statistical structure the DATE'03 techniques key
// on: spatial locality (strided array walks), temporal locality (hot loops),
// scattered cold data, and call-stack traffic. All generators are
// deterministic given the seed.

// SynthConfig parameterises Synthesize.
type SynthConfig struct {
	// Seed drives all randomness.
	Seed int64
	// N is the number of accesses to generate.
	N int
	// Regions describes the address regions and their relative heat.
	Regions []Region
	// WriteFraction in [0,1] is the probability an access is a store.
	WriteFraction float64
}

// Region is an address interval with an access weight and stride behaviour.
type Region struct {
	// Base is the first byte address of the region.
	Base uint32
	// Size is the region length in bytes.
	Size uint32
	// Weight is the relative probability of accessing this region.
	Weight float64
	// Stride, when non-zero, makes accesses walk the region sequentially
	// with the given byte stride (spatial locality). When zero, accesses
	// are uniform random within the region.
	Stride uint32
}

// Synthesize generates a trace per cfg. It panics on an empty region list,
// which is always a configuration bug.
func Synthesize(cfg SynthConfig) *Trace {
	if len(cfg.Regions) == 0 {
		//lint:allow panicfree documented config-bug guard; region lists are literals in experiment code
		panic("trace: Synthesize requires at least one region")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := 0.0
	for _, r := range cfg.Regions {
		total += r.Weight
	}
	cursors := make([]uint32, len(cfg.Regions))
	t := New(cfg.N)
	for i := 0; i < cfg.N; i++ {
		// Pick a region by weight.
		x := rng.Float64() * total
		ri := 0
		for j, r := range cfg.Regions {
			if x < r.Weight {
				ri = j
				break
			}
			x -= r.Weight
			ri = j
		}
		r := cfg.Regions[ri]
		var addr uint32
		if r.Stride != 0 {
			addr = r.Base + cursors[ri]
			cursors[ri] += r.Stride
			if cursors[ri] >= r.Size {
				cursors[ri] = 0
			}
		} else {
			addr = r.Base + uint32(rng.Int63n(int64(r.Size)))&^3
		}
		kind := Read
		if rng.Float64() < cfg.WriteFraction {
			kind = Write
		}
		t.Append(Access{Addr: addr, Value: rng.Uint32(), Width: 4, Kind: kind})
	}
	return t
}

// GaussianPixels generates a stream of 8-bit pixel values whose adjacent
// deltas are (approximately) Gaussian with the given standard deviation:
// the "tonal locality" assumption of the DVI chromatic-encoding experiment
// (DATE'03 8B.3). The first return value is the pixel sequence.
func GaussianPixels(seed int64, n int, sigma float64) []uint8 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint8, n)
	cur := 128.0
	for i := range out {
		cur += rng.NormFloat64() * sigma
		if cur < 0 {
			cur = 0
		}
		if cur > 255 {
			cur = 255
		}
		out[i] = uint8(cur)
	}
	return out
}

// InterleavedArrays emits the access pattern of a loop that touches k
// arrays per iteration (a[i], b[i], c[i], ...): the canonical pattern whose
// partitioning benefits from address clustering, because the per-iteration
// working set is spread across distant regions.
func InterleavedArrays(seed int64, iters int, bases []uint32, elemSize uint32) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := New(iters * len(bases))
	for i := 0; i < iters; i++ {
		for j, b := range bases {
			kind := Read
			// Last array in the set is written (c[i] = a[i] op b[i]).
			if j == len(bases)-1 {
				kind = Write
			}
			t.Append(Access{
				Addr:  b + uint32(i)*elemSize,
				Value: rng.Uint32(),
				Width: uint8(elemSize),
				Kind:  kind,
			})
		}
	}
	return t
}
