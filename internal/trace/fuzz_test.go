package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText checks that any input ReadText accepts survives a
// write/re-read round-trip bit-identically: parse → WriteText →
// ReadText must reproduce the same access sequence, and WriteText
// output must itself always be parseable. Inputs ReadText rejects are
// fine; the parser just must not panic or hang.
func FuzzReadText(f *testing.F) {
	f.Add("R 10 4 ff\nW 20 2 1\nF 0 4 deadbeef\n")
	f.Add("# comment\n\n  R 0 1 0  \n")
	f.Add("W ffffffff 4 ffffffff\n")
	f.Add("R 10 4\n")        // too few fields
	f.Add("X 10 4 ff\n")     // unknown kind
	f.Add("R zz 4 ff\n")     // bad hex
	f.Add("R 10 400 ff\n")   // width overflows uint8
	f.Add("R 100000000 4 0") // address overflows uint32

	f.Fuzz(func(t *testing.T, input string) {
		t1, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejected input: only no-panic is required
		}
		var buf bytes.Buffer
		if err := t1.WriteText(&buf); err != nil {
			t.Fatalf("WriteText on parsed trace: %v", err)
		}
		t2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-read of WriteText output: %v", err)
		}
		if len(t1.Accesses) != len(t2.Accesses) {
			t.Fatalf("round-trip length %d -> %d", len(t1.Accesses), len(t2.Accesses))
		}
		for i := range t1.Accesses {
			if t1.Accesses[i] != t2.Accesses[i] {
				t.Fatalf("access %d changed: %+v -> %+v", i, t1.Accesses[i], t2.Accesses[i])
			}
		}
	})
}
