package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// mixedTrace builds a trace that exercises every column encoding path:
// tiny and huge address deltas in both directions, repeated and random
// values, all kinds and widths, and enough accesses to span several
// writer blocks.
func mixedTrace(n int) *Trace {
	t := New(n)
	tr := Synthesize(SynthConfig{
		Seed: 7,
		N:    n - 8,
		Regions: []Region{
			{Base: 0x1000, Size: 4096, Weight: 5, Stride: 4},
			{Base: 0x8000_0000, Size: 1 << 20, Weight: 1},
		},
		WriteFraction: 0.4,
	})
	t.Accesses = append(t.Accesses, tr.Accesses...)
	t.Append(Access{Addr: 0, Value: 0, Width: 1, Kind: Read})
	t.Append(Access{Addr: 0xffffffff, Value: 0xffffffff, Width: 4, Kind: Write})
	t.Append(Access{Addr: 0, Value: 0xdeadbeef, Width: 2, Kind: Fetch})
	t.Append(Access{Addr: 0xffffffff, Value: 0, Width: 1, Kind: Read})
	t.Append(Access{Addr: 1, Value: 1, Width: 1, Kind: Fetch})
	t.Append(Access{Addr: 1, Value: 1, Width: 1, Kind: Fetch})
	t.Append(Access{Addr: 0x7fffffff, Value: 42, Width: 4, Kind: Write})
	t.Append(Access{Addr: 0x80000000, Value: 42, Width: 4, Kind: Read})
	return t
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{8, 9, blockAccesses, blockAccesses + 1, 3*blockAccesses + 17} {
		tr := mixedTrace(n)
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			t.Fatalf("n=%d: WriteBinary: %v", n, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: ReadBinary: %v", n, err)
		}
		if got.Len() != tr.Len() {
			t.Fatalf("n=%d: round-trip length %d -> %d", n, tr.Len(), got.Len())
		}
		for i := range tr.Accesses {
			if tr.Accesses[i] != got.Accesses[i] {
				t.Fatalf("n=%d: access %d changed: %+v -> %+v", n, i, tr.Accesses[i], got.Accesses[i])
			}
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New(0).WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary(empty): %v", err)
	}
	if buf.Len() != headerLen {
		t.Fatalf("empty trace encodes to %d bytes, want bare %d-byte header", buf.Len(), headerLen)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary(empty): %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round-trip yielded %d accesses", got.Len())
	}
}

func TestBinaryMatchesTextSemantics(t *testing.T) {
	// The two formats must describe the same access sequence: text ->
	// parse -> binary -> parse must be identity.
	text := "R 10 4 ff\nW 20 2 1\nF 0 4 deadbeef\nR ffffffff 1 0\n"
	t1, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := t1.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	t2, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := t2.WriteText(&back); err != nil {
		t.Fatal(err)
	}
	if back.String() != text {
		t.Fatalf("text->binary->text changed the trace:\n in: %q\nout: %q", text, back.String())
	}
}

func TestBinaryStreamingReaderMatchesMaterialised(t *testing.T) {
	tr := mixedTrace(2*blockAccesses + 5)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for r.Next() {
		if *r.Access() != tr.Accesses[i] {
			t.Fatalf("access %d: stream %+v != source %+v", i, *r.Access(), tr.Accesses[i])
		}
		i++
	}
	if err := r.Err(); err != nil {
		t.Fatalf("stream error after %d accesses: %v", i, err)
	}
	if i != tr.Len() {
		t.Fatalf("stream yielded %d accesses, want %d", i, tr.Len())
	}
	if r.Blocks() != 3 {
		t.Fatalf("stream decoded %d blocks, want 3", r.Blocks())
	}
	// Exhausted cursor stays exhausted.
	if r.Next() {
		t.Fatal("Next returned true after exhaustion")
	}
}

func TestBinaryWriterRejectsUnknownKind(t *testing.T) {
	bw := NewBinaryWriter(io.Discard)
	if err := bw.Write(Access{Kind: Kind(7)}); err == nil {
		t.Fatal("Write accepted kind 7")
	}
	if err := bw.Flush(); err == nil {
		t.Fatal("error did not stick on the writer")
	}
}

// corrupt returns a valid encoding of a small trace with one mutation
// applied.
func corrupt(t *testing.T, mutate func([]byte) []byte) []byte {
	t.Helper()
	tr := mixedTrace(64)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return mutate(buf.Bytes())
}

func TestBinaryCorruptionDetected(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future version", func(b []byte) []byte { b[4] = 99; return b }},
		{"reserved flags", func(b []byte) []byte { b[5] = 2; return b }},
		{"core flag without core column", func(b []byte) []byte { b[5] = FlagMultiCore; return b }},
		{"truncated header", func(b []byte) []byte { return b[:3] }},
		{"truncated mid-block", func(b []byte) []byte { return b[:len(b)-7] }},
		{"trailing garbage block", func(b []byte) []byte { return append(b, 0xff, 0xff, 0xff) }},
		{"zero-length block", func(b []byte) []byte { return append(b, 0) }},
		{"oversized block length", func(b []byte) []byte {
			return append(b, binary.AppendUvarint(nil, maxBlockAccesses+1)...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := corrupt(t, tc.mutate)
			if _, err := ReadBinary(bytes.NewReader(enc)); err == nil {
				t.Fatalf("%s: corruption not detected", tc.name)
			}
		})
	}
}

func TestBinaryTextIsNotBinary(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("R 10 4 ff\n")); err == nil {
		t.Fatal("ReadBinary accepted a text trace")
	}
	if HasBinaryMagic([]byte("R 10 4 ff")) {
		t.Fatal("HasBinaryMagic matched text")
	}
	if !HasBinaryMagic([]byte(binaryMagic + "\x01\x00")) {
		t.Fatal("HasBinaryMagic rejected a real header")
	}
}

func TestBinaryCompression(t *testing.T) {
	// A strided walk with value locality must beat the text format by a
	// wide margin: that is the point of delta+varint columns.
	tr := New(1 << 14)
	for i := 0; i < 1<<14; i++ {
		tr.Append(Access{Addr: 0x2000 + uint32(i)*4, Value: uint32(1000 + i%3), Width: 4, Kind: Read})
	}
	var text, bin bytes.Buffer
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*3 > text.Len() {
		t.Fatalf("binary %d bytes not at least 3x smaller than text %d bytes", bin.Len(), text.Len())
	}
	perAccess := float64(bin.Len()) / float64(tr.Len())
	if perAccess > 4 {
		t.Fatalf("strided trace costs %.2f bytes/access, want <= 4", perAccess)
	}
}

func TestSliceCursor(t *testing.T) {
	tr := mixedTrace(10)
	c := tr.Cursor()
	i := 0
	for c.Next() {
		if *c.Access() != tr.Accesses[i] {
			t.Fatalf("access %d: cursor %+v != slice %+v", i, *c.Access(), tr.Accesses[i])
		}
		i++
	}
	if i != tr.Len() || c.Err() != nil {
		t.Fatalf("cursor yielded %d accesses (err %v), want %d", i, c.Err(), tr.Len())
	}
	if c.Next() {
		t.Fatal("Next returned true after exhaustion")
	}
	empty := New(0).Cursor()
	if empty.Next() {
		t.Fatal("empty cursor advanced")
	}
}

func TestForEach(t *testing.T) {
	tr := mixedTrace(32)
	var n int
	if err := ForEach(tr.Cursor(), func(*Access) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != tr.Len() {
		t.Fatalf("ForEach visited %d of %d accesses", n, tr.Len())
	}
	errStop := io.ErrClosedPipe
	if err := ForEach(tr.Cursor(), func(*Access) error { return errStop }); err != errStop {
		t.Fatalf("ForEach did not propagate the callback error: %v", err)
	}
}

func TestProfileOfCursorMatchesProfileOf(t *testing.T) {
	tr := mixedTrace(1000)
	want := ProfileOf(tr, 256)
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&bin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ProfileOfCursor(r, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total || len(got.Counts) != len(want.Counts) {
		t.Fatalf("profile mismatch: total %d/%d, blocks %d/%d",
			got.Total, want.Total, len(got.Counts), len(want.Counts))
	}
	for b, c := range want.Counts {
		if got.Counts[b] != c {
			t.Fatalf("block %#x: count %d != %d", b, got.Counts[b], c)
		}
	}
	if _, err := ProfileOfCursor(tr.Cursor(), 3); err == nil {
		t.Fatal("ProfileOfCursor accepted non-power-of-two block size")
	}
}

func TestReadTextLongLine(t *testing.T) {
	// A line over the old 64 KiB scanner default must now parse (the
	// explicit buffer) and a line over the new 1 MiB ceiling must fail
	// with a trace-prefixed, line-numbered error.
	long := "R 10 4 ff\n# " + strings.Repeat("x", 100_000) + "\nW 20 2 1\n"
	tr, err := ReadText(strings.NewReader(long))
	if err != nil {
		t.Fatalf("100KB comment line rejected: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("parsed %d accesses, want 2", tr.Len())
	}
	huge := "R 10 4 ff\n# " + strings.Repeat("y", maxTextLine+1) + "\n"
	_, err = ReadText(strings.NewReader(huge))
	if err == nil {
		t.Fatal("line over maxTextLine accepted")
	}
	if !strings.Contains(err.Error(), "trace: line 2:") {
		t.Fatalf("oversized-line error lacks trace prefix/line number: %v", err)
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	tr := mixedTrace(1 << 16)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

func BenchmarkReadBinaryStream(b *testing.B) {
	tr := mixedTrace(1 << 16)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for r.Next() {
			n++
		}
		if r.Err() != nil || n != tr.Len() {
			b.Fatalf("stream yielded %d accesses, err %v", n, r.Err())
		}
	}
	b.SetBytes(int64(tr.Len()))
}
