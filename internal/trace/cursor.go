package trace

// Cursor is a forward, zero-allocation iterator over an access stream.
// It is the contract the replay loops consume: a cursor yields one
// access at a time from a reused buffer, so a million-access trace can
// be replayed without ever materialising a []Access.
//
// The canonical loop is
//
//	for cur.Next() {
//		a := cur.Access()
//		...
//	}
//	if err := cur.Err(); err != nil { ... }
//
// The *Access returned by Access is only valid until the next call to
// Next: implementations overwrite it in place. Callers that need to
// retain an access must copy the value.
type Cursor interface {
	// Next advances to the next access. It returns false when the
	// stream is exhausted or a decode error occurred; the two cases are
	// distinguished by Err.
	Next() bool
	// Access returns the current access. It must only be called after a
	// Next that returned true, and the pointee is overwritten by the
	// following Next.
	Access() *Access
	// Err returns the first error encountered, or nil on clean
	// exhaustion.
	Err() error
}

// SliceCursor iterates an in-memory access slice. It adapts *Trace (and
// any []Access) to the Cursor contract so the streaming replay paths
// are the single implementation for both in-memory and on-disk traces.
type SliceCursor struct {
	accesses []Access
	i        int
}

// Cursor returns a cursor over the trace's accesses.
func (t *Trace) Cursor() *SliceCursor { return NewSliceCursor(t.Accesses) }

// NewSliceCursor returns a cursor over an access slice.
func NewSliceCursor(accesses []Access) *SliceCursor {
	return &SliceCursor{accesses: accesses, i: -1}
}

// Next advances the cursor.
func (c *SliceCursor) Next() bool {
	if c.i+1 >= len(c.accesses) {
		return false
	}
	c.i++
	return true
}

// Access returns the current access.
func (c *SliceCursor) Access() *Access { return &c.accesses[c.i] }

// Err always returns nil: an in-memory slice cannot fail mid-iteration.
func (c *SliceCursor) Err() error { return nil }

// ForEach drains a cursor, invoking fn for every access. It stops at
// the first error from fn or from the cursor itself.
func ForEach(c Cursor, fn func(*Access) error) error {
	for c.Next() {
		if err := fn(c.Access()); err != nil {
			return err
		}
	}
	return c.Err()
}
