// Package trace provides memory-access traces: the lingua franca of every
// optimization in this repository.
//
// A Trace is an ordered sequence of Access records (address, kind, width,
// value). Traces are produced by the µRISC interpreter (internal/isa), the
// VLIW engine (internal/vliw) or by the synthetic generators in this
// package, and consumed by the partitioning, clustering, caching, encoding
// and scheduling passes.
//
//lint:hotpath
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the access type.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
	// Fetch is an instruction fetch.
	Fetch
)

// String returns the single-letter mnemonic used in the text format.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case Fetch:
		return "F"
	default:
		return "?"
	}
}

// ParseKind converts a mnemonic back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "R":
		return Read, nil
	case "W":
		return Write, nil
	case "F":
		return Fetch, nil
	}
	return 0, fmt.Errorf("trace: unknown access kind %q", s)
}

// Access is a single memory reference.
type Access struct {
	// Addr is the byte address of the reference.
	Addr uint32
	// Value is the datum transferred (zero-extended for narrow widths).
	Value uint32
	// Width is the transfer size in bytes (1, 2 or 4).
	Width uint8
	// Kind is the access type.
	Kind Kind
	// Core identifies the issuing core in a multi-core interleaved
	// trace. Single-core traces leave it zero; it is serialised (text
	// fifth field, LPMT core column) only when Trace.MultiCore is set.
	Core uint8
}

// Trace is an ordered sequence of accesses.
type Trace struct {
	Accesses []Access
	// MultiCore marks a per-core annotated trace: accesses carry
	// meaningful Core IDs and both serialisation formats persist them.
	// The flag — not the presence of non-zero Core values — decides the
	// on-disk representation, so a multi-core trace in which every
	// access happens to come from core 0 still round-trips losslessly.
	MultiCore bool
}

// New returns an empty trace with the given capacity hint.
func New(capacity int) *Trace {
	return &Trace{Accesses: make([]Access, 0, capacity)}
}

// Append adds a single access.
func (t *Trace) Append(a Access) { t.Accesses = append(t.Accesses, a) }

// Len returns the number of accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// Filter returns a new trace containing only accesses for which keep
// returns true. The receiver is unmodified.
func (t *Trace) Filter(keep func(Access) bool) *Trace {
	out := New(len(t.Accesses) / 2)
	out.MultiCore = t.MultiCore
	for _, a := range t.Accesses {
		if keep(a) {
			out.Append(a)
		}
	}
	return out
}

// CoreCount returns the number of cores the trace was generated for:
// max Core + 1 for a multi-core trace, 1 otherwise (including the empty
// multi-core trace, which still has the implicit core 0).
func (t *Trace) CoreCount() int {
	if !t.MultiCore {
		return 1
	}
	max := uint8(0)
	for i := range t.Accesses {
		if t.Accesses[i].Core > max {
			max = t.Accesses[i].Core
		}
	}
	return int(max) + 1
}

// Data returns the sub-trace of loads and stores (no fetches).
func (t *Trace) Data() *Trace {
	return t.Filter(func(a Access) bool { return a.Kind != Fetch })
}

// Remap returns a new trace with every address passed through f.
// It is the hook used by address clustering: the clustering pass computes a
// permutation of the address space and Remap applies it.
func (t *Trace) Remap(f func(uint32) uint32) *Trace {
	out := New(len(t.Accesses))
	out.MultiCore = t.MultiCore
	for _, a := range t.Accesses {
		a.Addr = f(a.Addr)
		out.Append(a)
	}
	return out
}

// AddressRange reports the smallest and largest address referenced.
// ok is false for an empty trace.
func (t *Trace) AddressRange() (lo, hi uint32, ok bool) {
	if len(t.Accesses) == 0 {
		return 0, 0, false
	}
	lo, hi = t.Accesses[0].Addr, t.Accesses[0].Addr
	for _, a := range t.Accesses[1:] {
		if a.Addr < lo {
			lo = a.Addr
		}
		if a.Addr > hi {
			hi = a.Addr
		}
	}
	return lo, hi, true
}

// Profile is a per-address access histogram: the "memory access profile"
// that memory partitioning operates on (DATE'03 1B.1 terminology).
type Profile struct {
	// Counts maps a block-aligned address to the number of accesses
	// falling in that block.
	Counts map[uint32]uint64
	// BlockSize is the granularity, in bytes, at which addresses were
	// aggregated. It is always a power of two.
	BlockSize uint32
	// Total is the total number of accesses profiled.
	Total uint64
}

// ProfileOf aggregates a trace into per-block access counts.
// blockSize must be a power of two; ProfileOf panics otherwise, because a
// non-power-of-two granularity is always a programming error.
func ProfileOf(t *Trace, blockSize uint32) *Profile {
	p, err := ProfileOfCursor(t.Cursor(), blockSize)
	if err != nil {
		// A SliceCursor cannot fail mid-stream, so the only error here is
		// the geometry guard documented above.
		//lint:allow panicfree documented programming-error guard, per the doc comment above
		panic(err)
	}
	return p
}

// ProfileOfCursor aggregates an access stream into per-block counts
// without materialising the trace; it is ProfileOf for streamed (e.g.
// binary on-disk) traces. Bad geometry and stream decode failures are
// reported as errors.
func ProfileOfCursor(c Cursor, blockSize uint32) (*Profile, error) {
	if blockSize == 0 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("trace: block size %d is not a power of two", blockSize)
	}
	p := &Profile{Counts: make(map[uint32]uint64), BlockSize: blockSize}
	mask := ^(blockSize - 1)
	for c.Next() {
		p.Counts[c.Access().Addr&mask]++
		p.Total++
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// Blocks returns the profiled block addresses in ascending order.
func (p *Profile) Blocks() []uint32 {
	blocks := make([]uint32, 0, len(p.Counts))
	for b := range p.Counts {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	return blocks
}

// Hot returns the n most frequently accessed blocks, most frequent first.
// Ties are broken by ascending address so the result is deterministic.
func (p *Profile) Hot(n int) []uint32 {
	blocks := p.Blocks()
	sort.SliceStable(blocks, func(i, j int) bool {
		ci, cj := p.Counts[blocks[i]], p.Counts[blocks[j]]
		if ci != cj {
			return ci > cj
		}
		return blocks[i] < blocks[j]
	})
	if n > len(blocks) {
		n = len(blocks)
	}
	return blocks[:n]
}

// WriteText serialises the trace in a line-oriented text format:
//
//	<kind> <addr-hex> <width> <value-hex>
//
// A multi-core trace appends a fifth field, the decimal core ID:
//
//	<kind> <addr-hex> <width> <value-hex> <core>
//
// The format is intentionally trivial so traces can be inspected, diffed
// and crafted by hand in tests.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// strconv.Append* into one reused buffer: serialising a trace is one
	// write per access, and fmt's boxing used to dominate the profile.
	buf := make([]byte, 0, 36)
	for _, a := range t.Accesses {
		buf = buf[:0]
		buf = append(buf, a.Kind.String()...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(a.Addr), 16)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(a.Width), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(a.Value), 16)
		if t.MultiCore {
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, uint64(a.Core), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxTextLine bounds a single line of the text format. The default
// bufio.Scanner limit (64 KiB) is plenty for well-formed lines (four
// short fields), but garbage or machine-generated input used to die
// with an unhelpful "bufio.Scanner: token too long"; the explicit
// buffer raises the ceiling and lets ReadText attribute the failure to
// a line number.
const maxTextLine = 1 << 20

// ReadText parses the format produced by WriteText. A file must commit
// to one shape: all accesses carry a core field (five fields per line,
// the trace comes back MultiCore) or none do; mixing the two is
// reported as a parse error rather than silently defaulting cores.
func ReadText(r io.Reader) (*Trace, error) {
	t := New(1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTextLine)
	line := 0
	sawCore, sawPlain := false, false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 && len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 4 or 5 fields, got %d", line, len(fields))
		}
		kind, err := ParseKind(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		addr, err := strconv.ParseUint(fields[1], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %w", line, err)
		}
		width, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad width: %w", line, err)
		}
		value, err := strconv.ParseUint(fields[3], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad value: %w", line, err)
		}
		var core uint64
		if len(fields) == 5 {
			core, err = strconv.ParseUint(fields[4], 10, 8)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad core ID: %w", line, err)
			}
			sawCore = true
		} else {
			sawPlain = true
		}
		if sawCore && sawPlain {
			return nil, fmt.Errorf("trace: line %d: mixed 4- and 5-field lines (core IDs must be on every access or none)", line)
		}
		t.Append(Access{Addr: uint32(addr), Value: uint32(value), Width: uint8(width), Kind: kind, Core: uint8(core)})
	}
	t.MultiCore = sawCore
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("trace: line %d: line longer than %d bytes: %w", line+1, maxTextLine, err)
		}
		return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
	}
	return t, nil
}
