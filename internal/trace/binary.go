package trace

// Binary columnar trace format.
//
// The text format (WriteText/ReadText) is the hand-craftable, diffable
// representation; this file is the fast path. A binary trace is a fixed
// header followed by a sequence of self-contained blocks. Each block
// holds up to blockAccesses accesses split into four per-column byte
// runs, so the same field of consecutive accesses is stored adjacently
// (columnar layout) and each column can use the encoding its
// distribution wants:
//
//	header:  "LPMT" magic | version byte (1) | flags byte
//	block:   uvarint n (accesses in block, n >= 1)
//	         column kind:  uvarint len | ceil(2n/8) bytes, 2-bit codes
//	         column addr:  uvarint len | n x varint zigzag(addr delta)
//	         column width: uvarint len | n x uvarint width
//	         column value: uvarint len | n x uvarint (value XOR prev)
//	         column core:  uvarint len | n raw bytes   (flag bit 0 only)
//	eof:     clean end of input at a block boundary
//
// The flags byte carries format extensions within version 1: bit 0
// (FlagMultiCore) marks a multi-core trace and adds the per-access core
// column to every block. All other bits are reserved and rejected.
//
// Addresses are delta-encoded against the previous access in the block
// (starting from zero), which turns strided walks and hot loops into
// streams of tiny zigzag varints. Values are XOR-chained, so repeated
// and slowly-varying data shrinks while random data costs at most five
// bytes. Kinds pack four accesses per byte. Deltas and XOR chains reset
// at every block boundary, so a corrupt block cannot poison decoding
// past its own extent and future versions can seek block-at-a-time.
//
// Versioning/compat rules: the version byte is bumped on any
// incompatible layout change and readers reject versions they do not
// know; the flags byte must be zero in version 1 and gives version 1
// readers a defined failure mode for version 1.x extensions.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// binaryMagic starts every binary trace file.
	binaryMagic = "LPMT"
	// BinaryVersion is the format version this package writes.
	BinaryVersion = 1
	// blockAccesses is the writer's accesses-per-block target. Blocks
	// are decoded into reused buffers, so the block size bounds the
	// reader's working set, not the trace size.
	blockAccesses = 4096
	// maxBlockAccesses bounds the block size a reader accepts, so a
	// corrupt or hostile header cannot demand an unbounded allocation.
	maxBlockAccesses = 1 << 20
	// headerLen is magic + version + flags.
	headerLen = len(binaryMagic) + 2
	// FlagMultiCore marks a trace whose blocks carry the per-access
	// core-ID column (Trace.MultiCore round-trips through it).
	FlagMultiCore = 0x01
	// knownFlags is the mask of flag bits version 1 defines.
	knownFlags = FlagMultiCore
)

// HasBinaryMagic reports whether p starts with the binary trace magic.
// Four bytes of prefix are enough to sniff the format.
func HasBinaryMagic(p []byte) bool {
	return len(p) >= len(binaryMagic) && string(p[:len(binaryMagic)]) == binaryMagic
}

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag reverses zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// BinaryWriter streams accesses into the binary columnar format. Create
// one with NewBinaryWriter, Write accesses, then Flush. The writer
// buffers one block of accesses and encodes it column-at-a-time into
// reused buffers, so writing a trace of any length allocates O(block),
// not O(trace).
type BinaryWriter struct {
	w   *bufio.Writer
	err error
	// multiCore selects the core-column layout; fixed at construction
	// because it is written into the header flags.
	multiCore bool
	// pending is the current un-encoded block.
	pending []Access
	// Per-column encode buffers, reused across blocks.
	kindBuf, addrBuf, widthBuf, valueBuf, coreBuf, varBuf []byte
}

// NewBinaryWriter returns a streaming writer for a single-core trace;
// any access carrying a non-zero Core ID is rejected so core
// information can never be dropped silently.
func NewBinaryWriter(w io.Writer) *BinaryWriter { return newBinaryWriter(w, false) }

// NewMultiCoreBinaryWriter returns a streaming writer that persists the
// per-access core IDs (header flag FlagMultiCore, core column in every
// block).
func NewMultiCoreBinaryWriter(w io.Writer) *BinaryWriter { return newBinaryWriter(w, true) }

func newBinaryWriter(w io.Writer, multiCore bool) *BinaryWriter {
	bw := &BinaryWriter{
		w:         bufio.NewWriter(w),
		multiCore: multiCore,
		pending:   make([]Access, 0, blockAccesses),
		kindBuf:   make([]byte, 0, blockAccesses/4+1),
		addrBuf:   make([]byte, 0, blockAccesses*binary.MaxVarintLen64),
		widthBuf:  make([]byte, 0, blockAccesses*2),
		valueBuf:  make([]byte, 0, blockAccesses*binary.MaxVarintLen32),
		varBuf:    make([]byte, binary.MaxVarintLen64),
	}
	if multiCore {
		bw.coreBuf = make([]byte, 0, blockAccesses)
	}
	bw.err = bw.writeHeader()
	return bw
}

func (bw *BinaryWriter) writeHeader() error {
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("trace: writing binary header: %w", err)
	}
	if err := bw.w.WriteByte(BinaryVersion); err != nil {
		return fmt.Errorf("trace: writing binary header: %w", err)
	}
	var flags byte
	if bw.multiCore {
		flags |= FlagMultiCore
	}
	if err := bw.w.WriteByte(flags); err != nil {
		return fmt.Errorf("trace: writing binary header: %w", err)
	}
	return nil
}

// Write appends one access to the stream. Kinds beyond Fetch have no
// 2-bit code and are rejected, mirroring the text format's alphabet.
func (bw *BinaryWriter) Write(a Access) error {
	if bw.err != nil {
		return bw.err
	}
	if a.Kind > Fetch {
		//lint:allow hotalloc cold rejection path: formats once, then every later Write returns the stored error
		bw.err = fmt.Errorf("trace: cannot encode access kind %d in binary format", a.Kind)
		return bw.err
	}
	if !bw.multiCore && a.Core != 0 {
		//lint:allow hotalloc cold rejection path: formats once, then every later Write returns the stored error
		bw.err = fmt.Errorf("trace: access with core ID %d in a single-core stream (use NewMultiCoreBinaryWriter)", a.Core)
		return bw.err
	}
	bw.pending = append(bw.pending, a)
	if len(bw.pending) == blockAccesses {
		bw.err = bw.encodeBlock()
	}
	return bw.err
}

// Flush encodes any partial block and flushes the underlying writer.
// The writer remains usable, so Flush can also checkpoint a stream.
func (bw *BinaryWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	if len(bw.pending) > 0 {
		if bw.err = bw.encodeBlock(); bw.err != nil {
			return bw.err
		}
	}
	if err := bw.w.Flush(); err != nil {
		bw.err = fmt.Errorf("trace: flushing binary trace: %w", err)
	}
	return bw.err
}

// putUvarint appends a uvarint to dst using the writer's scratch.
func (bw *BinaryWriter) putUvarint(dst []byte, v uint64) []byte {
	n := binary.PutUvarint(bw.varBuf, v)
	return append(dst, bw.varBuf[:n]...)
}

// encodeBlock serialises and emits the pending accesses as one block.
func (bw *BinaryWriter) encodeBlock() error {
	accs := bw.pending
	bw.kindBuf = bw.kindBuf[:(2*len(accs)+7)/8]
	for i := range bw.kindBuf {
		bw.kindBuf[i] = 0
	}
	bw.addrBuf = bw.addrBuf[:0]
	bw.widthBuf = bw.widthBuf[:0]
	bw.valueBuf = bw.valueBuf[:0]
	bw.coreBuf = bw.coreBuf[:0]
	var prevAddr, prevVal uint32
	for i := range accs {
		a := &accs[i]
		bw.kindBuf[i/4] |= byte(a.Kind) << uint((i%4)*2)
		bw.addrBuf = bw.putUvarint(bw.addrBuf, zigzag(int64(a.Addr)-int64(prevAddr)))
		bw.widthBuf = bw.putUvarint(bw.widthBuf, uint64(a.Width))
		bw.valueBuf = bw.putUvarint(bw.valueBuf, uint64(a.Value^prevVal))
		if bw.multiCore {
			bw.coreBuf = append(bw.coreBuf, a.Core)
		}
		prevAddr = a.Addr
		prevVal = a.Value
	}
	if err := bw.writeChunk(uint64(len(accs)), nil); err != nil {
		return err
	}
	cols := [...][]byte{bw.kindBuf, bw.addrBuf, bw.widthBuf, bw.valueBuf, bw.coreBuf}
	n := len(cols)
	if !bw.multiCore {
		n-- // no core column in a single-core stream
	}
	for _, col := range cols[:n] {
		if err := bw.writeChunk(uint64(len(col)), col); err != nil {
			return err
		}
	}
	bw.pending = bw.pending[:0]
	return nil
}

// writeChunk writes a uvarint followed by an optional payload.
func (bw *BinaryWriter) writeChunk(v uint64, payload []byte) error {
	n := binary.PutUvarint(bw.varBuf, v)
	if _, err := bw.w.Write(bw.varBuf[:n]); err != nil {
		return fmt.Errorf("trace: writing binary block: %w", err)
	}
	if payload != nil {
		if _, err := bw.w.Write(payload); err != nil {
			return fmt.Errorf("trace: writing binary block: %w", err)
		}
	}
	return nil
}

// WriteBinary serialises the trace in the binary columnar format. A
// MultiCore trace writes the core-column layout (FlagMultiCore).
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := newBinaryWriter(w, t.MultiCore)
	for _, a := range t.Accesses {
		if err := bw.Write(a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Reader is a streaming decoder for the binary columnar format. It
// implements Cursor: replay loops iterate it directly and never hold
// more than one block of column bytes in memory. All decode state lives
// in buffers reused across blocks, so iteration performs zero
// per-access allocations.
type Reader struct {
	br        *bufio.Reader
	err       error
	done      bool
	multiCore bool
	a         Access

	// Current block: raw column bytes and decode positions.
	n, i                       int
	kinds                      []byte
	addrs, widths, vals, cores []byte
	ap, wp, vp                 int
	prevAddr, prevVal          uint32
	blocks, accessesRead       uint64
}

// NewReader validates the header and returns a streaming reader
// positioned before the first access.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading binary header: %w", err)
	}
	if !HasBinaryMagic(hdr[:]) {
		return nil, fmt.Errorf("trace: bad magic %q: not a binary trace", hdr[:len(binaryMagic)])
	}
	if v := hdr[len(binaryMagic)]; v != BinaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary trace version %d (reader supports %d)", v, BinaryVersion)
	}
	if f := hdr[len(binaryMagic)+1]; f&^knownFlags != 0 {
		return nil, fmt.Errorf("trace: unsupported binary trace flags %#x (version %d defines %#x)", f, BinaryVersion, knownFlags)
	}
	return &Reader{br: br, multiCore: hdr[len(binaryMagic)+1]&FlagMultiCore != 0}, nil
}

// Version returns the format version of the open stream.
func (r *Reader) Version() int { return BinaryVersion }

// MultiCore reports whether the stream carries per-access core IDs
// (header flag FlagMultiCore).
func (r *Reader) MultiCore() bool { return r.multiCore }

// Blocks returns the number of blocks decoded so far.
func (r *Reader) Blocks() uint64 { return r.blocks }

// Next advances to the next access, loading the next block when the
// current one is exhausted.
func (r *Reader) Next() bool {
	if r.err != nil || r.done {
		return false
	}
	if r.i >= r.n {
		if !r.loadBlock() {
			return false
		}
	}
	i := r.i
	code := r.kinds[i/4] >> uint((i%4)*2) & 3
	if code > uint8(Fetch) {
		r.err = fmt.Errorf("trace: block %d access %d: invalid kind code %d", r.blocks, i, code)
		return false
	}
	du, nb := binary.Uvarint(r.addrs[r.ap:])
	if nb <= 0 {
		r.err = fmt.Errorf("trace: block %d access %d: truncated address delta", r.blocks, i)
		return false
	}
	r.ap += nb
	addr := int64(r.prevAddr) + unzigzag(du)
	if addr < 0 || addr > int64(^uint32(0)) {
		r.err = fmt.Errorf("trace: block %d access %d: address delta leaves 32-bit range", r.blocks, i)
		return false
	}
	wu, nb := binary.Uvarint(r.widths[r.wp:])
	if nb <= 0 {
		r.err = fmt.Errorf("trace: block %d access %d: truncated width", r.blocks, i)
		return false
	}
	if wu > 255 {
		r.err = fmt.Errorf("trace: block %d access %d: width %d overflows uint8", r.blocks, i, wu)
		return false
	}
	r.wp += nb
	vu, nb := binary.Uvarint(r.vals[r.vp:])
	if nb <= 0 {
		r.err = fmt.Errorf("trace: block %d access %d: truncated value", r.blocks, i)
		return false
	}
	if vu > uint64(^uint32(0)) {
		r.err = fmt.Errorf("trace: block %d access %d: value %d overflows uint32", r.blocks, i, vu)
		return false
	}
	r.vp += nb
	r.prevAddr = uint32(addr)
	r.prevVal = uint32(vu) ^ r.prevVal
	var core uint8
	if r.multiCore {
		core = r.cores[i]
	}
	r.a = Access{Addr: r.prevAddr, Value: r.prevVal, Width: uint8(wu), Kind: Kind(code), Core: core}
	r.i++
	r.accessesRead++
	if r.i == r.n {
		// Strict column framing: every column must be consumed exactly.
		switch {
		case r.ap != len(r.addrs):
			r.err = fmt.Errorf("trace: block %d: %d trailing bytes in address column", r.blocks, len(r.addrs)-r.ap)
		case r.wp != len(r.widths):
			r.err = fmt.Errorf("trace: block %d: %d trailing bytes in width column", r.blocks, len(r.widths)-r.wp)
		case r.vp != len(r.vals):
			r.err = fmt.Errorf("trace: block %d: %d trailing bytes in value column", r.blocks, len(r.vals)-r.vp)
		}
		if r.err != nil {
			return false
		}
	}
	return true
}

// Access returns the current access; the pointee is overwritten by the
// next call to Next.
func (r *Reader) Access() *Access { return &r.a }

// Err returns the first decode error, or nil after clean exhaustion.
func (r *Reader) Err() error { return r.err }

// loadBlock reads and frames the next block into the reused column
// buffers. It returns false at clean EOF or on error.
func (r *Reader) loadBlock() bool {
	nu, err := binary.ReadUvarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			r.done = true // clean end at a block boundary
		} else {
			r.err = fmt.Errorf("trace: block %d: reading block length: %w", r.blocks, err)
		}
		return false
	}
	if nu == 0 || nu > maxBlockAccesses {
		r.err = fmt.Errorf("trace: block %d: block length %d outside [1,%d]", r.blocks, nu, maxBlockAccesses)
		return false
	}
	n := int(nu)
	kindLen := (2*n + 7) / 8
	if r.kinds, err = r.readColumn("kind", r.kinds, kindLen, kindLen); err != nil {
		r.err = err
		return false
	}
	// Each varint costs 1..MaxVarintLen64 bytes, so the column lengths
	// are hard-bounded by n; a length outside the bounds is corruption,
	// caught before any allocation is sized by it.
	if r.addrs, err = r.readColumn("address", r.addrs, n, n*binary.MaxVarintLen64); err != nil {
		r.err = err
		return false
	}
	if r.widths, err = r.readColumn("width", r.widths, n, n*2); err != nil {
		r.err = err
		return false
	}
	if r.vals, err = r.readColumn("value", r.vals, n, n*binary.MaxVarintLen32); err != nil {
		r.err = err
		return false
	}
	if r.multiCore {
		// Core IDs are raw bytes, so the column length is exactly n;
		// readColumn's bounds make the framing check implicit.
		if r.cores, err = r.readColumn("core", r.cores, n, n); err != nil {
			r.err = err
			return false
		}
	}
	r.n, r.i = n, 0
	r.ap, r.wp, r.vp = 0, 0, 0
	r.prevAddr, r.prevVal = 0, 0
	r.blocks++
	return true
}

// readColumn reads one length-prefixed column into buf (grown as
// needed, reused across blocks), validating the length bounds first.
func (r *Reader) readColumn(name string, buf []byte, minLen, maxLen int) ([]byte, error) {
	lu, err := binary.ReadUvarint(r.br)
	if err != nil {
		return buf, fmt.Errorf("trace: block %d: reading %s column length: %w", r.blocks, name, noEOF(err))
	}
	if lu < uint64(minLen) || lu > uint64(maxLen) {
		return buf, fmt.Errorf("trace: block %d: %s column length %d outside [%d,%d]", r.blocks, name, lu, minLen, maxLen)
	}
	l := int(lu)
	if cap(buf) < l {
		buf = make([]byte, l)
	}
	buf = buf[:l]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return buf, fmt.Errorf("trace: block %d: reading %s column: %w", r.blocks, name, noEOF(err))
	}
	return buf, nil
}

// noEOF upgrades a bare EOF to ErrUnexpectedEOF: inside a block, an EOF
// is always a truncation, and the distinction matters to callers that
// treat io.EOF as clean.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadBinary materialises a whole binary trace. Replay paths should
// prefer NewReader and stream; ReadBinary is for tools and tests that
// need the []Access form.
func ReadBinary(r io.Reader) (*Trace, error) {
	br, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := New(1024)
	t.MultiCore = br.MultiCore()
	for br.Next() {
		t.Append(*br.Access())
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
